package pipemare_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pipemare"
	"pipemare/internal/faults"
	"pipemare/internal/transport"
)

// startJoiner runs pipemare.JoinFollower in a goroutine over a fresh
// loopback pair and returns the join listener (hand it to
// Trainer.AcceptJoins) plus a wait for the joiner's exit error. The
// joiner rebuilds the task from the same constructor; no initial-state
// agreement is needed — the live handoff replaces every tensor.
func startJoiner(t *testing.T, build func() pipemare.Task, opts []pipemare.Option) (pipemare.Listener, func() error) {
	t.Helper()
	lis, dial := pipemare.Loopback()
	done := make(chan error, 1)
	go func() {
		done <- pipemare.JoinFollower(context.Background(), dial, build(), opts...)
	}()
	return lis, func() error { return <-done }
}

// TestJoinMatchesFreshLargerRun is the headline elastic-membership pin,
// in both commit modes: a third replica joining an R=2 loopback run at
// step 2 — weights, T2 state, optimizer moments, version rings and
// clocks arriving by live handoff, the reduce tree and commit plan
// rebuilt over R=3 — must leave the curve bit-identical to the
// single-replica reference. The determinism invariant makes the
// post-join group indistinguishable from a run that always had three
// replicas, and that in turn from R=1; one reference pins both halves.
func TestJoinMatchesFreshLargerRun(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 29) }
	base := ftBase()
	ref := runCurve(t, build, 4, 1, base...)
	for _, sharded := range []bool{false, true} {
		name := fmt.Sprintf("join/sharded=%t", sharded)
		dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
		jlis, jwait := startJoiner(t, build,
			append(append([]pipemare.Option{}, base...), pipemare.WithJoinAt(2)))
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(sharded),
			pipemare.WithElastic(),
			pipemare.WithTransport(dialers...))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.AcceptJoins(jlis); err != nil {
			t.Fatalf("%s: accept joins: %v", name, err)
		}
		got, err := tr.Run(context.Background(), 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Replicas() != 3 {
			t.Fatalf("%s: %d replicas after the join, want 3", name, tr.Replicas())
		}
		if joins, demotions, handoffNs := tr.ElasticStats(); joins != 1 || demotions != 0 || handoffNs <= 0 {
			t.Fatalf("%s: elastic stats (%d joins, %d demotions, %dns handoff), want 1 join, 0 demotions, positive handoff time",
				name, joins, demotions, handoffNs)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if err := jwait(); err != nil {
			t.Fatalf("%s: joiner: %v", name, err)
		}
		for i, werr := range wait() {
			if werr != nil {
				t.Fatalf("%s: worker %d: %v", name, i+1, werr)
			}
		}
		requireIdentical(t, name, ref, got)
	}
}

// TestStragglerDemoteRejoinZeroDeviation pins the degraded reduce: a
// follower whose chunk reply stalls 100ms against a 20ms straggler
// deadline (2 misses) is demoted to standby mid-minibatch, the
// minibatch replays over the survivors, and — once the late reply
// drains — the standby rejoins through the same handoff path at a later
// boundary. Demotion and rejoin must both leave the curve bit-identical
// to the single-replica reference.
func TestStragglerDemoteRejoinZeroDeviation(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 30) }
	base := ftBase()
	ref := runCurve(t, build, 4, 1, base...)
	dialers, _, wait := startWorkers(t, 2, build, func() []pipemare.Option { return base })
	// Stall the leader's read of replica 2's very first chunk reply: the
	// reply exists — the worker is healthy, just slow — so after the
	// demotion the drain recovers it and the member turns ready standby.
	dialers[1] = &faults.Dialer{Inner: dialers[1], Script: faults.NewScript(
		faults.Rule{Dir: faults.Recv, Type: transport.MsgChunkDone, Nth: 1,
			Op: faults.Delay, Delay: 100 * time.Millisecond})}
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithReplicas(3), pipemare.WithShardedStep(false),
		pipemare.WithFaultTolerance(), pipemare.WithElastic(),
		pipemare.WithStragglerPolicy(pipemare.StragglerDemote, 20*time.Millisecond, 2),
		pipemare.WithTransport(dialers...),
		pipemare.WithObserver(func(epochs int, run *pipemare.Run) {
			if epochs == 1 {
				// Give the demoted member's 100ms drain time to finish, so
				// the rejoin lands at an epoch-2 boundary.
				time.Sleep(400 * time.Millisecond)
			}
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	var got *pipemare.Run
	err = runWithin(t, 60*time.Second, "demote-rejoin", func() error {
		r, err := tr.Run(context.Background(), 4)
		got = r
		return err
	})
	if err != nil {
		t.Fatalf("straggler demotion did not keep the run alive: %v", err)
	}
	joins, demotions, handoffNs := tr.ElasticStats()
	if demotions != 1 || joins != 1 || handoffNs <= 0 {
		t.Fatalf("elastic stats (%d joins, %d demotions, %dns handoff), want the demoted member back via 1 rejoin",
			joins, demotions, handoffNs)
	}
	if tr.Replicas() != 3 {
		t.Fatalf("%d replicas after demote+rejoin, want 3", tr.Replicas())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	requireIdentical(t, "demote-rejoin", ref, got)
}

// TestChurnCompositions pins membership changes composing with each
// other and with the rest of the robustness surface, all against the
// single-replica reference curve.
func TestChurnCompositions(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 31) }
	base := ftBase()
	ref := runCurve(t, build, 4, 1, base...)

	// A fatal fault evicting replica 2 at its 2nd chunk while a joiner is
	// already parked for step 8: the reduce tree shrinks to R=2, then
	// grows back to R=3 when the parked joiner is admitted.
	t.Run("evict-during-pending-join", func(t *testing.T) {
		dialers, _, wait := startWorkers(t, 2, build, func() []pipemare.Option { return base })
		dialers[1] = &faults.Dialer{Inner: dialers[1], Script: faults.NewScript(
			faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 2, Op: faults.Kill})}
		jlis, jwait := startJoiner(t, build,
			append(append([]pipemare.Option{}, base...), pipemare.WithJoinAt(8)))
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(3), pipemare.WithShardedStep(false),
			pipemare.WithFaultTolerance(), pipemare.WithElastic(),
			pipemare.WithTransport(dialers...))...)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.AcceptJoins(jlis); err != nil {
			t.Fatal(err)
		}
		var got *pipemare.Run
		err = runWithin(t, 60*time.Second, "evict+join", func() error {
			r, err := tr.Run(context.Background(), 4)
			got = r
			return err
		})
		if err != nil {
			t.Fatalf("run did not survive eviction with a parked joiner: %v", err)
		}
		if tr.Replicas() != 3 {
			t.Fatalf("%d replicas after evict+join, want 3 (one out, one in)", tr.Replicas())
		}
		if joins, _, _ := tr.ElasticStats(); joins != 1 {
			t.Fatalf("%d joins, want 1", joins)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := jwait(); err != nil {
			t.Fatalf("joiner: %v", err)
		}
		errs := wait()
		if errs[0] != nil {
			t.Fatalf("surviving worker: %v", errs[0])
		}
		if errs[1] == nil {
			t.Fatal("killed worker's serve loop ended without error")
		}
		requireIdentical(t, "evict-during-pending-join", ref, got)
	})

	// A join admitted at a boundary that also writes a checkpoint every
	// step: admission runs strictly after the write, and both keep the
	// curve on the reference.
	t.Run("join-during-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
		jlis, jwait := startJoiner(t, build,
			append(append([]pipemare.Option{}, base...), pipemare.WithJoinAt(2)))
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(false),
			pipemare.WithElastic(), pipemare.WithCheckpoint(dir, 1),
			pipemare.WithTransport(dialers...))...)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.AcceptJoins(jlis); err != nil {
			t.Fatal(err)
		}
		got, err := tr.Run(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Replicas() != 3 {
			t.Fatalf("%d replicas after the join, want 3", tr.Replicas())
		}
		if writes, _ := tr.CheckpointStats(); writes != 16 {
			t.Fatalf("%d checkpoint writes, want 16 (every step)", writes)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := jwait(); err != nil {
			t.Fatalf("joiner: %v", err)
		}
		for i, werr := range wait() {
			if werr != nil {
				t.Fatalf("worker %d: %v", i+1, werr)
			}
		}
		requireIdentical(t, "join-during-checkpoint", ref, got)
		// The post-join checkpoints are loadable: restoring the newest into
		// a fresh trainer lands on the final step.
		files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pm"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no checkpoints on disk (%v)", err)
		}
		tr2, err := pipemare.New(build(), base...)
		if err != nil {
			t.Fatal(err)
		}
		if step, err := tr2.RestoreLatest(dir); err != nil || step != 16 {
			t.Fatalf("restore of a post-join checkpoint: step %d, err %v, want 16, nil", step, err)
		}
	})

	// A member demoted for straggling, rejoined, then fatally killed on
	// its first post-rejoin reply: demotion, handoff and eviction chain
	// on one link without deadlock or curve deviation.
	t.Run("demotion-racing-fatal", func(t *testing.T) {
		dialers, _, wait := startWorkers(t, 2, build, func() []pipemare.Option { return base })
		dialers[1] = &faults.Dialer{Inner: dialers[1], Script: faults.NewScript(
			faults.Rule{Dir: faults.Recv, Type: transport.MsgChunkDone, Nth: 1,
				Op: faults.Delay, Delay: 100 * time.Millisecond},
			faults.Rule{Dir: faults.Recv, Type: transport.MsgChunkDone, Nth: 2, Op: faults.Kill})}
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(3), pipemare.WithShardedStep(false),
			pipemare.WithFaultTolerance(), pipemare.WithElastic(),
			pipemare.WithStragglerPolicy(pipemare.StragglerDemote, 20*time.Millisecond, 2),
			pipemare.WithTransport(dialers...),
			pipemare.WithObserver(func(epochs int, run *pipemare.Run) {
				if epochs == 1 {
					time.Sleep(400 * time.Millisecond)
				}
			}))...)
		if err != nil {
			t.Fatal(err)
		}
		var got *pipemare.Run
		err = runWithin(t, 60*time.Second, "demote+kill", func() error {
			r, err := tr.Run(context.Background(), 4)
			got = r
			return err
		})
		if err != nil {
			t.Fatalf("run did not survive the demote→rejoin→kill chain: %v", err)
		}
		if tr.Replicas() != 2 {
			t.Fatalf("%d replicas at the end, want 2 (rejoined member evicted)", tr.Replicas())
		}
		joins, demotions, _ := tr.ElasticStats()
		if demotions != 1 || joins != 1 {
			t.Fatalf("elastic stats (%d joins, %d demotions), want 1 and 1", joins, demotions)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		errs := wait()
		if errs[0] != nil {
			t.Fatalf("surviving worker: %v", errs[0])
		}
		if errs[1] == nil {
			t.Fatal("killed worker's serve loop ended without error")
		}
		requireIdentical(t, "demotion-racing-fatal", ref, got)
	})
}

// TestJoinRejectsMismatchedShape pins the join handshake's guard rails:
// a joiner announcing the wrong stage count is rejected with a clean
// error at its first admission boundary — the run itself never notices —
// and a joiner parked past the end of training is released with an error
// when the leader closes.
func TestJoinRejectsMismatchedShape(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 32) }
	base := ftBase()
	ref := runCurve(t, build, 2, 1, base...)
	dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	badLis, badWait := startJoiner(t, build,
		append(append([]pipemare.Option{}, base...), pipemare.WithStages(2)))
	lateLis, lateWait := startJoiner(t, build,
		append(append([]pipemare.Option{}, base...), pipemare.WithJoinAt(1000)))
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithReplicas(2), pipemare.WithShardedStep(false),
		pipemare.WithElastic(),
		pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	for _, lis := range []pipemare.Listener{badLis, lateLis} {
		if err := tr.AcceptJoins(lis); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Replicas() != 2 {
		t.Fatalf("%d replicas after rejected joins, want 2", tr.Replicas())
	}
	if joins, _, _ := tr.ElasticStats(); joins != 0 {
		t.Fatalf("%d joins, want 0", joins)
	}
	if err := badWait(); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("mismatched joiner: err = %v, want a rejection", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lateWait(); err == nil {
		t.Fatal("never-admitted joiner returned nil after the leader closed")
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	requireIdentical(t, "rejected-joins", ref, got)
}

// TestCloseDuringCollectiveUnwinds extends the Close contract to a
// trainer caught mid-collective: with the leader's chunk request to its
// worker stalled on the wire, Close severs the connection without
// waiting for the stuck round trip to come home, the in-flight Run
// unwinds with an error (the sharded commit keeps the severed member
// non-evictable, so the run cannot quietly finish solo), the second
// Close is a nil no-op, and no goroutine — serve loop, heartbeat
// pinger — leaks.
func TestCloseDuringCollectiveUnwinds(t *testing.T) {
	baseline := runtime.NumGoroutine()
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 33) }
	base := ftBase()
	dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	dialers[0] = &faults.Dialer{Inner: dialers[0], Script: faults.NewScript(
		faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 2,
			Op: faults.Delay, Delay: 400 * time.Millisecond})}
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithShardedStep(true),
		pipemare.WithHeartbeat(20*time.Millisecond),
		pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.Run(context.Background(), 4)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the run reach the stalled send
	if err := tr.Close(); err != nil {
		t.Fatalf("close mid-collective: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run survived its trainer closing mid-collective")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung after Close severed its member")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	wait() // the severed worker's serve loop may error; the point is it exits
	// Every goroutine the trainer spawned — serve loop, pinger, straggler
	// drain — must be gone; poll briefly for the unwinding to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+1 {
		t.Fatalf("%d goroutines after close, baseline %d — a watcher leaked", n, baseline)
	}
}

// TestElasticOptionValidation pins the new options' error paths.
func TestElasticOptionValidation(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 34) }
	if _, err := pipemare.New(build(), append(append([]pipemare.Option{}, ftBase()...),
		pipemare.WithElastic())...); err == nil ||
		!strings.Contains(err.Error(), "elastic") {
		t.Fatalf("elastic with R=1: err = %v", err)
	}
	if _, err := pipemare.New(build(),
		pipemare.WithStragglerPolicy(pipemare.StragglerDemote, 0, 2)); err == nil ||
		!strings.Contains(err.Error(), "straggler") {
		t.Fatalf("demote policy without a deadline: err = %v", err)
	}
	if _, err := pipemare.New(build(),
		pipemare.WithStragglerPolicy(pipemare.StragglerDemote, time.Second, 0)); err == nil ||
		!strings.Contains(err.Error(), "straggler") {
		t.Fatalf("demote policy without a miss budget: err = %v", err)
	}
	if _, err := pipemare.New(build(),
		pipemare.WithStragglerPolicy(pipemare.StragglerPolicy(99), time.Second, 1)); err == nil ||
		!strings.Contains(err.Error(), "straggler") {
		t.Fatalf("unknown straggler policy: err = %v", err)
	}
	if _, err := pipemare.New(build(), pipemare.WithJoinAt(-1)); err == nil ||
		!strings.Contains(err.Error(), "join") {
		t.Fatalf("negative join step: err = %v", err)
	}
	// The wait policy is the default and composes with everything.
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, ftBase()...),
		pipemare.WithStragglerPolicy(pipemare.StragglerWait, 0, 0))...)
	if err != nil {
		t.Fatalf("wait policy: %v", err)
	}
	tr.Close()
	// AcceptJoins needs the elastic option, and refuses a closed trainer.
	lis, _ := pipemare.Loopback()
	tr2, err := pipemare.New(build(), append(append([]pipemare.Option{}, ftBase()...),
		pipemare.WithReplicas(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.AcceptJoins(lis); err == nil || !strings.Contains(err.Error(), "elastic") {
		t.Fatalf("AcceptJoins without WithElastic: err = %v", err)
	}
	tr2.Close()
	tr3, err := pipemare.New(build(), append(append([]pipemare.Option{}, ftBase()...),
		pipemare.WithReplicas(2), pipemare.WithElastic())...)
	if err != nil {
		t.Fatal(err)
	}
	tr3.Close()
	if err := tr3.AcceptJoins(lis); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("AcceptJoins after Close: err = %v", err)
	}
}
