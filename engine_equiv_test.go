package pipemare_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

// quadTask is a multi-stage quadratic model: group g holds a small weight
// vector w_g and the loss on sample i is Σ_g ½·λ_g·‖w_g − t_i[g]‖², the
// pipeline analogue of the §3 quadratic stability model. Parameter
// gradients use the *installed* forward weights, so the task exercises the
// trainer's weight-version machinery exactly like a real network.
type quadTask struct {
	groups []pipemare.ParamGroup
	params []*nn.Param
	lambda []float64
	train  [][]float64 // train[i][g]: target of group g on sample i
	test   [][]float64

	fwd [][2]float64 // per-group mean residuals cached by Forward

	nGroups, nTrain, nTest int // ctor args, kept for CloneTask
	seed                   int64
}

func newQuadTask(groups, train, test int, seed int64) *quadTask {
	rng := rand.New(rand.NewSource(seed))
	t := &quadTask{fwd: make([][2]float64, groups),
		nGroups: groups, nTrain: train, nTest: test, seed: seed}
	for g := 0; g < groups; g++ {
		p := nn.NewParam("q", 2)
		p.Data.Data[0] = rng.NormFloat64()
		p.Data.Data[1] = rng.NormFloat64()
		t.params = append(t.params, p)
		t.groups = append(t.groups, pipemare.ParamGroup{Name: "q", Params: []*nn.Param{p}})
		t.lambda = append(t.lambda, 0.5+rng.Float64())
	}
	gen := func(n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = make([]float64, groups)
			for g := range out[i] {
				out[i][g] = rng.NormFloat64()
			}
		}
		return out
	}
	t.train, t.test = gen(train), gen(test)
	return t
}

func (t *quadTask) Groups() []pipemare.ParamGroup { return t.groups }
func (t *quadTask) NumTrain() int                 { return len(t.train) }

// CloneTask makes quadTask Replicable: it is a monolithic (non-StageTask)
// task, so it exercises the replicated engine's monolithic fallback.
func (t *quadTask) CloneTask() pipemare.Task {
	return newQuadTask(t.nGroups, t.nTrain, t.nTest, t.seed)
}

func (t *quadTask) lossOn(set [][]float64, idx []int, record bool) float64 {
	loss := 0.0
	for g, p := range t.params {
		r0, r1 := 0.0, 0.0
		for _, i := range idx {
			d0 := p.Data.Data[0] - set[i][g]
			d1 := p.Data.Data[1] - set[i][g]
			loss += 0.5 * t.lambda[g] * (d0*d0 + d1*d1) / float64(len(idx))
			r0 += d0 / float64(len(idx))
			r1 += d1 / float64(len(idx))
		}
		if record {
			t.fwd[g] = [2]float64{r0, r1}
		}
	}
	return loss
}

func (t *quadTask) Forward(idx []int) float64 { return t.lossOn(t.train, idx, true) }

func (t *quadTask) Backward() {
	for g, p := range t.params {
		p.Grad.Data[0] += t.lambda[g] * t.fwd[g][0]
		p.Grad.Data[1] += t.lambda[g] * t.fwd[g][1]
	}
}

func (t *quadTask) EvalTest() float64 {
	idx := make([]int, len(t.test))
	for i := range idx {
		idx[i] = i
	}
	return 100 / (1 + t.lossOn(t.test, idx, false))
}

// trainPair runs the same configuration under the Reference and concurrent
// engines and returns both curves.
func trainPair(t *testing.T, build func() pipemare.Task, epochs int, opts ...pipemare.Option) (ref, conc *pipemare.Run) {
	t.Helper()
	run := func(eng pipemare.Engine) *pipemare.Run {
		tr, err := pipemare.New(build(), append(opts, pipemare.WithEngine(eng))...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := tr.Run(context.Background(), epochs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	return run(pipemare.NewReferenceEngine()), run(concurrent.New())
}

// requireIdentical asserts two curves match bit for bit: the concurrent
// engine must not perturb a single floating-point operation.
func requireIdentical(t *testing.T, name string, ref, conc *pipemare.Run) {
	t.Helper()
	if ref.Epochs() != conc.Epochs() || ref.Diverged != conc.Diverged {
		t.Fatalf("%s: curves differ in shape: reference %d epochs (diverged=%v), concurrent %d epochs (diverged=%v)",
			name, ref.Epochs(), ref.Diverged, conc.Epochs(), conc.Diverged)
	}
	for e := 0; e < ref.Epochs(); e++ {
		if ref.Loss[e] != conc.Loss[e] {
			t.Fatalf("%s epoch %d: loss %v (reference) != %v (concurrent)", name, e+1, ref.Loss[e], conc.Loss[e])
		}
		if ref.Metric[e] != conc.Metric[e] {
			t.Fatalf("%s epoch %d: metric %v (reference) != %v (concurrent)", name, e+1, ref.Metric[e], conc.Metric[e])
		}
		if ref.ParamNorm[e] != conc.ParamNorm[e] {
			t.Fatalf("%s epoch %d: param norm %v (reference) != %v (concurrent)", name, e+1, ref.ParamNorm[e], conc.ParamNorm[e])
		}
	}
}

func methodOpts(m pipemare.Method) []pipemare.Option {
	opts := []pipemare.Option{pipemare.WithMethod(m), pipemare.WithSeed(11)}
	if m == pipemare.PipeMare {
		// Enable every technique so the whole install/commit surface is
		// compared: T1, T2, T3 warmup, clipping and recompute.
		opts = append(opts, pipemare.WithT1(12), pipemare.WithT2(0.3),
			pipemare.WithT3(1), pipemare.WithClipNorm(2), pipemare.WithRecompute(2))
	}
	return opts
}

func TestEnginesEquivalentOnQuadratic(t *testing.T) {
	for _, m := range []pipemare.Method{pipemare.GPipe, pipemare.PipeDream, pipemare.PipeMare} {
		build := func() pipemare.Task { return newQuadTask(6, 64, 16, 5) }
		opts := append(methodOpts(m),
			pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
			pipemare.WithSchedule(optim.Constant(0.05)))
		ref, conc := trainPair(t, build, 6, opts...)
		requireIdentical(t, "quadratic/"+m.String(), ref, conc)
	}
}

func TestEnginesEquivalentOnSmallDNN(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 64, Test: 32, Noise: 0.4, Seed: 1})
	for _, m := range []pipemare.Method{pipemare.GPipe, pipemare.PipeDream, pipemare.PipeMare} {
		build := func() pipemare.Task { return model.NewResNetMLP(images, 8, 4, 3) }
		opts := append(methodOpts(m),
			pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
			pipemare.WithSchedule(optim.Constant(0.05)))
		ref, conc := trainPair(t, build, 3, opts...)
		requireIdentical(t, "dnn/"+m.String(), ref, conc)
	}
}

func TestEnginesEquivalentOnTransformer(t *testing.T) {
	ds := data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5,
		Train: 64, Test: 16, Seed: 2})
	build := func() pipemare.Task {
		return model.NewTranslation(ds, model.TransformerConfig{
			Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	}
	opts := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(8),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 20}))
	ref, conc := trainPair(t, build, 2, opts...)
	requireIdentical(t, "transformer/PipeMare", ref, conc)
}

// TestEnginesEquivalentUnderOverlapStress drives the pipelined engine at
// its deepest overlap: a stage-split task with N ≫ P microbatches in
// flight per minibatch and the Appendix D recompute climb on every chain,
// so each stage worker continuously interleaves forward, recompute and
// backward slots of different microbatches. The curves must still match
// the serial Reference engine bit for bit.
func TestEnginesEquivalentUnderOverlapStress(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	for _, m := range []pipemare.Method{pipemare.PipeDream, pipemare.PipeMare} {
		build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 4, 8) }
		opts := append(methodOpts(m),
			pipemare.WithStages(4),
			pipemare.WithBatchSize(32), pipemare.WithMicrobatches(16),
			pipemare.WithSchedule(optim.Constant(0.05)))
		if m == pipemare.PipeDream {
			opts = append(opts, pipemare.WithRecompute(2))
		}
		ref, conc := trainPair(t, build, 3, opts...)
		requireIdentical(t, "overlap-stress/"+m.String(), ref, conc)
	}
}

// TestEnginesEquivalentOnSplitDivergence pins the abort path under
// overlap: when a microbatch's loss blows past the cap mid-epoch with
// several stage-split chains in flight, the concurrent engine must drain,
// restore and record exactly the Reference curve.
func TestEnginesEquivalentOnSplitDivergence(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 8})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 3, 9) }
	opts := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(8),
		pipemare.WithSeed(4), pipemare.WithLossCap(15),
		pipemare.WithRecompute(2),
		pipemare.WithSchedule(optim.Constant(8)), // absurd rate: diverges
	}
	ref, conc := trainPair(t, build, 4, opts...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	requireIdentical(t, "split-divergence", ref, conc)
}

// TestConcurrentEngineSurvivesRepeatedRuns pins the Lifecycle contract:
// the same engine instance must restart cleanly across Run calls and
// trainers.
func TestConcurrentEngineSurvivesRepeatedRuns(t *testing.T) {
	eng := concurrent.New(concurrent.WithKernelWorkers(2), concurrent.WithWorkers(2))
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 9) }
	tr, err := pipemare.New(build(),
		pipemare.WithMethod(pipemare.PipeMare), pipemare.WithT1(8),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithSeed(3), pipemare.WithEngine(eng),
		pipemare.WithSchedule(optim.Constant(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	run := &pipemare.Run{}
	for i := 0; i < 3; i++ {
		if _, err := tr.RunInto(context.Background(), 2, run); err != nil {
			t.Fatal(err)
		}
	}
	if run.Epochs() != 6 {
		t.Fatalf("chunked runs recorded %d epochs, want 6", run.Epochs())
	}
	eng.Stop() // idempotent: already stopped at the end of each Run
	// The same instance must also serve a second trainer.
	tr2, err := pipemare.New(build(),
		pipemare.WithMethod(pipemare.GPipe),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(2),
		pipemare.WithEngine(eng), pipemare.WithSchedule(optim.Constant(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentEngineDetectsDivergence pins that divergence aborts and
// restores masters identically under both engines.
func TestEnginesEquivalentOnDivergence(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 7) }
	opts := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithSeed(2), pipemare.WithLossCap(10),
		pipemare.WithSchedule(optim.Constant(5)), // absurd rate: diverges
	}
	ref, conc := trainPair(t, build, 4, opts...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	requireIdentical(t, "divergence", ref, conc)
}

// --- work-stealing scheduler × partition-mode grid ---

// workersGrid returns the worker counts the scheduler-grid equivalence
// tests cover: {1, 2, P} by default (one worker = fully serial stealing,
// two = constant contention, P = one worker per stage like the old
// engine). PIPEMARE_WORKERS narrows the grid to one cell for the CI
// matrix.
func workersGrid(p int) []int {
	if v := os.Getenv("PIPEMARE_WORKERS"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil || w < 1 {
			panic("bad PIPEMARE_WORKERS: " + v)
		}
		return []int{w}
	}
	ws := []int{1, 2}
	if p > 2 {
		ws = append(ws, p)
	}
	return ws
}

// TestEnginesEquivalentAcrossSchedulerGrid pins the tentpole determinism
// claim: for every worker count W and partition mode, the work-stealing
// engine — sharded StepStage commit included — produces curves
// bit-identical to the serial Reference engine under the same partition.
// Covers the stage-split DNN with every PipeMare technique on, and the
// transformer (AdamW, stage boundaries inside attention blocks).
func TestEnginesEquivalentAcrossSchedulerGrid(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 64, Test: 32, Noise: 0.4, Seed: 1})
	ds := data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5,
		Train: 64, Test: 16, Seed: 2})
	cases := []struct {
		name   string
		p      int
		epochs int
		build  func() pipemare.Task
		opts   []pipemare.Option
	}{
		{
			name: "dnn", p: 4, epochs: 3,
			build: func() pipemare.Task { return model.NewResNetMLP(images, 8, 4, 3) },
			opts: append(methodOpts(pipemare.PipeMare),
				pipemare.WithStages(4),
				pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
				pipemare.WithSchedule(optim.Constant(0.05))),
		},
		{
			name: "transformer", p: 8, epochs: 2,
			build: func() pipemare.Task {
				return model.NewTranslation(ds, model.TransformerConfig{
					Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
			},
			opts: append(methodOpts(pipemare.PipeMare),
				pipemare.WithStages(8),
				pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
				pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
					return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
				}),
				pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 20})),
		},
	}
	for _, tc := range cases {
		for _, mode := range []pipemare.PartitionMode{pipemare.PartitionEven, pipemare.PartitionCost} {
			opts := append(append([]pipemare.Option{}, tc.opts...), pipemare.WithPartition(mode))
			ref := runCurve(t, tc.build, tc.epochs, 1,
				append(append([]pipemare.Option{}, opts...), pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
			for _, w := range workersGrid(tc.p) {
				// The facade constructor is the public face of the
				// scheduler: NewConcurrentEngine(w) ≡ concurrent.New(WithWorkers(w)).
				conc := runCurve(t, tc.build, tc.epochs, 1,
					append(append([]pipemare.Option{}, opts...),
						pipemare.WithEngine(pipemare.NewConcurrentEngine(w)))...)
				requireIdentical(t, fmt.Sprintf("%s/%s/W=%d", tc.name, mode, w), ref, conc)
			}
		}
	}
}

// TestEnginesEquivalentOnDivergenceUnderStealing pins the abort path with
// fewer workers than stages and a cost-balanced partition: the draining,
// restore and recorded curve must still match Reference exactly.
func TestEnginesEquivalentOnDivergenceUnderStealing(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 8})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 3, 9) }
	opts := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithPartition(pipemare.PartitionCost),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(8),
		pipemare.WithSeed(4), pipemare.WithLossCap(15),
		pipemare.WithRecompute(2),
		pipemare.WithSchedule(optim.Constant(8)), // absurd rate: diverges
	}
	ref := runCurve(t, build, 4, 1,
		append(append([]pipemare.Option{}, opts...), pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	conc := runCurve(t, build, 4, 1,
		append(append([]pipemare.Option{}, opts...),
			pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(2))))...)
	requireIdentical(t, "stealing-divergence/W=2", ref, conc)
}

// TestProfilePartitionMode pins the measured-cost path: a profile-mode
// trainer builds, trains, and its DP split is at least as balanced (under
// its own measured costs) as the even split; feeding the measured costs
// back through WithGroupCosts reproduces the partition exactly and gives
// bit-identical Reference/concurrent curves — the deterministic way to
// pin a profiled partition across trainers.
func TestProfilePartitionMode(t *testing.T) {
	ds := data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5,
		Train: 64, Test: 16, Seed: 2})
	build := func() pipemare.Task {
		return model.NewTranslation(ds, model.TransformerConfig{
			Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	}
	base := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(8),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
		pipemare.WithSeed(11),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 20}),
	}
	prof, err := pipemare.New(build(),
		append(append([]pipemare.Option{}, base...), pipemare.WithPartition(pipemare.PartitionProfile))...)
	if err != nil {
		t.Fatal(err)
	}
	if prof.PartitionMode() != pipemare.PartitionProfile {
		t.Fatalf("mode = %v", prof.PartitionMode())
	}
	costs := prof.GroupCosts()
	for g, c := range costs {
		if c <= 0 {
			t.Fatalf("measured cost of group %d is %g, want > 0", g, c)
		}
	}
	// DP optimality: the profiled split's bottleneck can't exceed even's
	// under the same measured costs.
	evenPart, err := pipemare.New(build(), base...)
	if err != nil {
		t.Fatal(err)
	}
	profMax, evenMax := 0.0, 0.0
	for _, c := range prof.StageCosts() {
		if c > profMax {
			profMax = c
		}
	}
	for _, c := range evenPart.Partition().StageCosts(costs) {
		if c > evenMax {
			evenMax = c
		}
	}
	if profMax > evenMax {
		t.Fatalf("profiled bottleneck %g worse than even %g", profMax, evenMax)
	}
	if _, err := prof.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	// Pinned measured costs: identical partitions and bit-identical curves
	// across engines.
	pinned := append(append([]pipemare.Option{}, base...),
		pipemare.WithPartition(pipemare.PartitionProfile), pipemare.WithGroupCosts(costs))
	refTr, err := pipemare.New(build(), append(append([]pipemare.Option{}, pinned...),
		pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
	if err != nil {
		t.Fatal(err)
	}
	for g, s := range refTr.Partition().StageOf {
		if s != prof.Partition().StageOf[g] {
			t.Fatalf("pinned costs gave different partition: %v vs %v",
				refTr.Partition().StageOf, prof.Partition().StageOf)
		}
	}
	ref := runCurve(t, build, 2, 1, append(append([]pipemare.Option{}, pinned...),
		pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
	conc := runCurve(t, build, 2, 1, append(append([]pipemare.Option{}, pinned...),
		pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(3))))...)
	requireIdentical(t, "profile-pinned/W=3", ref, conc)
}

// --- replicated data-parallel engine ---

// replicaGrid returns the (replicas, inner-engine) combinations the
// grid-shaped replicated equivalence tests (MatchesReference,
// MonolithicFallback, DivergenceAcrossReplicas) cover. CI narrows the
// grid per matrix job via PIPEMARE_REPLICAS / PIPEMARE_REPLICA_INNER;
// locally the full grid runs.
func replicaGrid() (rs []int, inners []string) {
	rs = []int{2, 4}
	inners = []string{"reference", "concurrent"}
	if v := os.Getenv("PIPEMARE_REPLICAS"); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil {
			panic("bad PIPEMARE_REPLICAS: " + v)
		}
		rs = []int{r}
	}
	if v := os.Getenv("PIPEMARE_REPLICA_INNER"); v != "" {
		if v != "reference" && v != "concurrent" {
			// A typo'd value must not silently fall back to the reference
			// inner and void the coverage the CI cell claims to run.
			panic("bad PIPEMARE_REPLICA_INNER: " + v)
		}
		inners = []string{v}
	}
	return rs, inners
}

// replicatedEngine builds the replicated engine over the named inner.
func replicatedEngine(inner string) pipemare.Engine {
	if inner == "concurrent" {
		return pipemare.NewReplicatedEngine(func() pipemare.Engine { return concurrent.New() })
	}
	return pipemare.NewReplicatedEngine(nil)
}

// runCurve trains a fresh task under the given options and returns the
// curve, asserting the trainer really owns wantReplicas replicas (so a
// silently single-replica run cannot fake an equivalence pass).
func runCurve(t *testing.T, build func() pipemare.Task, epochs, wantReplicas int, opts ...pipemare.Option) *pipemare.Run {
	t.Helper()
	tr, err := pipemare.New(build(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Replicas() != wantReplicas {
		t.Fatalf("trainer owns %d replicas, want %d", tr.Replicas(), wantReplicas)
	}
	r, err := tr.Run(context.Background(), epochs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplicatedEngineMatchesReference pins the data-parallel determinism
// claim: R replicas splitting every minibatch's microbatches — with every
// PipeMare technique on (T1, T2, T3 warmup, clipping, recompute) and
// either inner engine — must produce bit-identical curves to a
// single-replica Reference run of the same global microbatch set.
func TestReplicatedEngineMatchesReference(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 4, 8) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
	ref := runCurve(t, build, 3, 1, base...)
	rs, inners := replicaGrid()
	for _, r := range rs {
		for _, inner := range inners {
			opts := append(append([]pipemare.Option{}, base...),
				pipemare.WithReplicas(r), pipemare.WithEngine(replicatedEngine(inner)))
			got := runCurve(t, build, 3, r, opts...)
			requireIdentical(t, fmt.Sprintf("replicated/R=%d/%s", r, inner), ref, got)
		}
	}
}

// TestReplicatedEngineMatchesReferenceOnTransformer repeats the pin on the
// stage-split transformer (boundary activations in registers, AdamW,
// warmup-invsqrt schedule) with the pipelined inner engine, so replication
// composes with true microbatch overlap.
func TestReplicatedEngineMatchesReferenceOnTransformer(t *testing.T) {
	ds := data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5,
		Train: 64, Test: 16, Seed: 2})
	build := func() pipemare.Task {
		return model.NewTranslation(ds, model.TransformerConfig{
			Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	}
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(8),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 20}))
	ref := runCurve(t, build, 2, 1, base...)
	// The inner engines run the new work-stealing scheduler with fewer
	// workers than stages, so replication composes with stealing.
	inner := pipemare.NewReplicatedEngine(func() pipemare.Engine {
		return concurrent.New(concurrent.WithWorkers(2))
	})
	opts := append(append([]pipemare.Option{}, base...),
		pipemare.WithReplicas(2), pipemare.WithEngine(inner))
	got := runCurve(t, build, 2, 2, opts...)
	requireIdentical(t, "replicated-transformer/R=2/concurrent-W=2", ref, got)
}

// TestReplicatedEngineMonolithicFallback pins the monolithic path: a task
// that does not implement StageTask still trains under R > 1 — each
// replica runs its chunk one microbatch at a time (forward in the last
// stage's slot, backward in stage 0's, where all stages export) — and the
// curves still match single-replica Reference bit for bit.
func TestReplicatedEngineMonolithicFallback(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(6, 64, 16, 5) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithSchedule(optim.Constant(0.05)))
	ref := runCurve(t, build, 6, 1, base...)
	rs, inners := replicaGrid()
	for _, r := range rs {
		for _, inner := range inners {
			opts := append(append([]pipemare.Option{}, base...),
				pipemare.WithReplicas(r), pipemare.WithEngine(replicatedEngine(inner)))
			got := runCurve(t, build, 6, r, opts...)
			requireIdentical(t, fmt.Sprintf("monolithic/R=%d/%s", r, inner), ref, got)
		}
	}
}

// TestReplicatedEngineDivergenceAcrossReplicas pins the abort path under
// replication: when a microbatch in some replica's chunk blows past the
// loss cap, every replica must drain and restore, no commit or broadcast
// may run, and the recorded curve must equal the Reference divergence
// curve exactly.
func TestReplicatedEngineDivergenceAcrossReplicas(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 8})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 3, 9) }
	base := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(8),
		pipemare.WithSeed(4), pipemare.WithLossCap(15),
		pipemare.WithRecompute(2),
		pipemare.WithSchedule(optim.Constant(8)), // absurd rate: diverges
	}
	ref := runCurve(t, build, 4, 1, base...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	rs, inners := replicaGrid()
	for _, r := range rs {
		for _, inner := range inners {
			opts := append(append([]pipemare.Option{}, base...),
				pipemare.WithReplicas(r), pipemare.WithEngine(replicatedEngine(inner)))
			got := runCurve(t, build, 4, r, opts...)
			requireIdentical(t, fmt.Sprintf("replicated-divergence/R=%d/%s", r, inner), ref, got)
		}
	}
}

// TestReplicatedShardedCommitMatchesReference pins the replica-sharded
// (ZeRO-style) optimizer commit: with the sharded step explicitly
// required, R ∈ {2, 4} replicas × both inner engines × scheduler workers
// W ∈ {1, 2} must train the all-techniques DNN bit-identically to a
// single-replica Reference run — every replica stepping only its stage
// shard against its local optimizer state, with the all-gather replacing
// the full broadcast. The leader-serial path (WithShardedStep(false))
// stays pinned alongside so both commit modes remain ground-truth equal.
func TestReplicatedShardedCommitMatchesReference(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 4, 8) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
	ref := runCurve(t, build, 3, 1, base...)
	rs, inners := replicaGrid()
	for _, r := range rs {
		for _, inner := range inners {
			ws := []int{0} // reference inner: worker count is moot
			if inner == "concurrent" {
				ws = []int{1, 2}
			}
			for _, w := range ws {
				eng := pipemare.NewReplicatedEngine(nil)
				if inner == "concurrent" {
					w := w
					eng = pipemare.NewReplicatedEngine(func() pipemare.Engine {
						return concurrent.New(concurrent.WithWorkers(w))
					})
				}
				opts := append(append([]pipemare.Option{}, base...),
					pipemare.WithReplicas(r), pipemare.WithShardedStep(true),
					pipemare.WithEngine(eng))
				got := runCurve(t, build, 3, r, opts...)
				requireIdentical(t, fmt.Sprintf("sharded/R=%d/%s/W=%d", r, inner, w), ref, got)
			}
		}
		// The leader-serial commit must stay bit-identical too.
		serial := append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(r), pipemare.WithShardedStep(false),
			pipemare.WithEngine(pipemare.NewReplicatedEngine(nil)))
		got := runCurve(t, build, 3, r, serial...)
		requireIdentical(t, fmt.Sprintf("leader-serial/R=%d", r), ref, got)
	}
}

// TestReplicatedShardedCommitDivergenceAbort pins the abort path of the
// sharded commit: a capped loss in any replica's chunk must cancel the
// whole commit — no scatter, no shard steps, no gather — leaving every
// replica's state restored and the recorded curve equal to Reference's
// divergence curve.
func TestReplicatedShardedCommitDivergenceAbort(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 8})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 3, 9) }
	base := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(8),
		pipemare.WithSeed(4), pipemare.WithLossCap(15),
		pipemare.WithRecompute(2),
		pipemare.WithSchedule(optim.Constant(8)), // absurd rate: diverges
	}
	ref := runCurve(t, build, 4, 1, base...)
	if !ref.Diverged {
		t.Fatal("reference run was expected to diverge")
	}
	rs, _ := replicaGrid()
	for _, r := range rs {
		opts := append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(r), pipemare.WithShardedStep(true),
			pipemare.WithEngine(pipemare.NewReplicatedEngine(nil)))
		got := runCurve(t, build, 4, r, opts...)
		requireIdentical(t, fmt.Sprintf("sharded-divergence/R=%d", r), ref, got)
	}
}

// TestReplicatedEngineSurvivesRepeatedRuns pins the Lifecycle contract for
// the replicated engine: chunked RunInto calls and a second trainer must
// restart the replica group cleanly.
func TestReplicatedEngineSurvivesRepeatedRuns(t *testing.T) {
	eng := replicatedEngine("concurrent")
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 9) }
	tr, err := pipemare.New(build(),
		pipemare.WithMethod(pipemare.PipeMare), pipemare.WithT1(8),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithReplicas(2),
		pipemare.WithSeed(3), pipemare.WithEngine(eng),
		pipemare.WithSchedule(optim.Constant(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	run := &pipemare.Run{}
	for i := 0; i < 3; i++ {
		if _, err := tr.RunInto(context.Background(), 2, run); err != nil {
			t.Fatal(err)
		}
	}
	if run.Epochs() != 6 {
		t.Fatalf("chunked runs recorded %d epochs, want 6", run.Epochs())
	}
	// The same engine instance must also serve a second trainer.
	tr2, err := pipemare.New(build(),
		pipemare.WithMethod(pipemare.GPipe),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4),
		pipemare.WithReplicas(2),
		pipemare.WithEngine(eng), pipemare.WithSchedule(optim.Constant(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}
