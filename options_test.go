package pipemare_test

import (
	"context"
	"strings"
	"testing"

	"pipemare"
	"pipemare/internal/nn"
)

// newOptionProbeTask returns a tiny quadratic task suitable for exercising
// New's validation paths.
func newOptionProbeTask() pipemare.Task { return newQuadTask(4, 64, 8, 1) }

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  pipemare.Option
		frag string // expected error fragment
	}{
		{"method", pipemare.WithMethod(pipemare.Method(42)), "unknown method"},
		{"stages", pipemare.WithStages(-1), "stages"},
		{"batch", pipemare.WithBatchSize(0), "batch size"},
		{"microbatches", pipemare.WithMicrobatches(0), "microbatches"},
		{"microbatchSize", pipemare.WithMicrobatchSize(-2), "microbatch size"},
		{"partition", pipemare.WithPartition(pipemare.PartitionMode(9)), "partition mode"},
		{"groupcosts-empty", pipemare.WithGroupCosts(nil), "group costs"},
		{"t1", pipemare.WithT1(-1), "T1"},
		{"t2-negative", pipemare.WithT2(-0.1), "T2"},
		{"t2-above-one", pipemare.WithT2(1.0), "T2"},
		{"t3", pipemare.WithT3(-1), "warmup"},
		{"recompute", pipemare.WithRecompute(-1), "recompute"},
		{"optimizer", pipemare.WithOptimizer(nil), "optimizer"},
		{"schedule", pipemare.WithSchedule(nil), "schedule"},
		{"engine", pipemare.WithEngine(nil), "engine"},
		{"clip", pipemare.WithClipNorm(-1), "clip"},
		{"losscap", pipemare.WithLossCap(0), "loss cap"},
		{"observer", pipemare.WithObserver(nil), "observer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := pipemare.New(newOptionProbeTask(), c.opt)
			if err == nil {
				t.Fatalf("option %s: expected an error", c.name)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("option %s: error %q does not mention %q", c.name, err, c.frag)
			}
		})
	}
}

func TestOptionCrossValidation(t *testing.T) {
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithBatchSize(10), pipemare.WithMicrobatches(4)); err == nil {
		t.Fatal("batch 10 with N=4 must error (not divisible)")
	}
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithMicrobatches(4), pipemare.WithMicrobatchSize(8)); err == nil {
		t.Fatal("WithMicrobatches and WithMicrobatchSize together must error")
	}
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithMicrobatchSize(8), pipemare.WithMicrobatches(4)); err == nil {
		t.Fatal("WithMicrobatchSize then WithMicrobatches must error")
	}
	if _, err := pipemare.New(newOptionProbeTask(), pipemare.WithStages(99)); err == nil {
		t.Fatal("more stages than weight groups must error")
	}
	if _, err := pipemare.New(newOptionProbeTask(), nil); err == nil {
		t.Fatal("a nil Option must error")
	}
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithOptimizer(func([]*nn.Param) pipemare.Optimizer { return nil })); err == nil {
		t.Fatal("a factory returning nil must error")
	}
	if _, err := pipemare.New(newOptionProbeTask(), pipemare.WithBatchSize(128)); err == nil {
		t.Fatal("batch larger than the training set must error")
	}
	// Explicit group costs require a cost-driven partition mode …
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithGroupCosts([]float64{1, 1, 1, 1})); err == nil ||
		!strings.Contains(err.Error(), "partition mode") {
		t.Fatal("group costs without WithPartition(cost|profile) must error")
	}
	// … and must match the task's group count.
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithPartition(pipemare.PartitionCost),
		pipemare.WithGroupCosts([]float64{1, 2})); err == nil ||
		!strings.Contains(err.Error(), "weight groups") {
		t.Fatal("group-cost length mismatch must error")
	}
}

// TestWithShardedStepValidation pins the facade validation of the
// replica-sharded commit: requiring it without replicas (or with an
// engine that cannot drive replicas at all) must fail, disabling it must
// fall back to the leader-serial commit, and the default engages it for
// R > 1 with a shardable optimizer.
func TestWithShardedStepValidation(t *testing.T) {
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithShardedStep(true)); err == nil ||
		!strings.Contains(err.Error(), "replicas") {
		t.Fatalf("WithShardedStep(true) without WithReplicas: err = %v", err)
	}
	if _, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithReplicas(2), pipemare.WithShardedStep(true),
		pipemare.WithEngine(pipemare.NewReferenceEngine())); err == nil ||
		!strings.Contains(err.Error(), "replica-aware") {
		t.Fatalf("sharded step atop a non-replica-aware engine: err = %v", err)
	}
	tr, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithReplicas(2), pipemare.WithShardedStep(false))
	if err != nil {
		t.Fatal(err)
	}
	if tr.ShardedStep() {
		t.Fatal("WithShardedStep(false) did not disable the sharded commit")
	}
	tr, err = pipemare.New(newOptionProbeTask(), pipemare.WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ShardedStep() {
		t.Fatal("default (auto) did not shard the commit for R=2 with momentum SGD")
	}
}

func TestWithPartitionConfiguresTrainer(t *testing.T) {
	tr, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithStages(2),
		pipemare.WithPartition(pipemare.PartitionCost),
		pipemare.WithGroupCosts([]float64{10, 1, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if tr.PartitionMode() != pipemare.PartitionCost {
		t.Fatalf("mode = %v, want cost", tr.PartitionMode())
	}
	// The heavy group must sit alone on stage 0.
	if got := tr.Partition().StageOf; got[0] != 0 || got[1] != 1 {
		t.Fatalf("StageOf = %v, want heavy group isolated", got)
	}
	if im := tr.StageImbalance(); im <= 1 {
		t.Fatalf("imbalance = %g, want > 1 for skewed costs", im)
	}
	if _, err := tr.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsConfigureTrainer(t *testing.T) {
	tr, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(2),
		pipemare.WithBatchSize(16),
		pipemare.WithMicrobatches(8),
		pipemare.WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stages() != 2 {
		t.Fatalf("stages = %d, want 2", tr.Stages())
	}
	if tr.Microbatches() != 8 {
		t.Fatalf("microbatches = %d, want 8", tr.Microbatches())
	}
	if tr.Engine().Name() != "reference" {
		t.Fatalf("default engine = %q, want reference", tr.Engine().Name())
	}
	// τ_fwd of the first stage must follow Table 1 for P=2, N=8.
	if got, want := tr.Taus()[0], pipemare.FwdDelay(1, 2, 8); got != want {
		t.Fatalf("τ_fwd[0] = %g, want %g", got, want)
	}
}

func TestDefaultsTrainOutOfTheBox(t *testing.T) {
	// Zero options: GPipe, fine-grained stages, batch 32, N=4, momentum
	// SGD at a constant rate.
	tr, err := pipemare.New(newOptionProbeTask())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stages() != 4 || tr.Microbatches() != 4 {
		t.Fatalf("defaults: stages=%d N=%d, want 4 and 4", tr.Stages(), tr.Microbatches())
	}
	run, err := tr.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if run.Epochs() != 3 || run.Diverged {
		t.Fatalf("default run: epochs=%d diverged=%v", run.Epochs(), run.Diverged)
	}
	// The quadratic must make progress toward its targets.
	if run.Loss[2] >= run.Loss[0] {
		t.Fatalf("loss did not decrease: %v", run.Loss)
	}
}

// nonReplicableTask hides quadTask's CloneTask so WithReplicas validation
// can be exercised against a task without replica support.
type nonReplicableTask struct{ *quadTask }

// CloneTask is shadowed away: embed the quadTask but do not forward the
// method with the Replicable signature.
func (nonReplicableTask) CloneTask() {}

func TestWithReplicasValidation(t *testing.T) {
	// R < 1 fails eagerly in the option.
	if _, err := pipemare.New(newOptionProbeTask(), pipemare.WithReplicas(0)); err == nil ||
		!strings.Contains(err.Error(), "replicas") {
		t.Fatalf("WithReplicas(0) error = %v, want a replicas error", err)
	}
	// R must not exceed the microbatch count N.
	_, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4), pipemare.WithReplicas(8))
	if err == nil || !strings.Contains(err.Error(), "microbatches") {
		t.Fatalf("R=8 > N=4 error = %v, want a microbatches error", err)
	}
	// The task must implement Replicable.
	_, err = pipemare.New(nonReplicableTask{newQuadTask(4, 64, 8, 1)},
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4), pipemare.WithReplicas(2))
	if err == nil || !strings.Contains(err.Error(), "Replicable") {
		t.Fatalf("non-replicable task error = %v, want a Replicable error", err)
	}
	// A non-replica-aware engine is refused: it would silently train only
	// the leader.
	_, err = pipemare.New(newOptionProbeTask(),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4), pipemare.WithReplicas(2),
		pipemare.WithEngine(pipemare.NewReferenceEngine()))
	if err == nil || !strings.Contains(err.Error(), "replica-aware") {
		t.Fatalf("plain-engine error = %v, want a replica-aware error", err)
	}
	// R = 1 is valid with any engine, and R ≤ N with the default
	// (replicated) engine builds and reports its followers.
	tr, err := pipemare.New(newOptionProbeTask(),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(4), pipemare.WithReplicas(4))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Replicas() != 4 {
		t.Fatalf("trainer reports %d replicas, want 4", tr.Replicas())
	}
	if _, err := tr.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}
