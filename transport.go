package pipemare

import (
	"context"
	"fmt"
	"time"

	"pipemare/internal/core"
	"pipemare/internal/engine"
	"pipemare/internal/pipeline"
	"pipemare/internal/replica"
	"pipemare/internal/transport"
)

// Wire-transport surface (internal/transport): a leader process drives
// remote follower replicas with WithTransport(dialers...); each worker
// process hosts one follower with ServeFollower. Both transports — the
// in-process loopback pipe and real TCP sockets — speak the same framed
// binary protocol, so curves stay bit-identical to in-process replicas
// across the serialization boundary.
type (
	// Listener accepts framed transport connections (ServeFollower).
	Listener = transport.Listener
	// Dialer connects to a worker's endpoint (WithTransport).
	Dialer = transport.Dialer
)

// Loopback returns a connected in-process listener/dialer pair: the
// full wire protocol over net.Pipe, with zero network. Serve a follower
// on the listener from one goroutine and hand the dialer to
// WithTransport in another.
func Loopback() (Listener, Dialer) { return transport.Loopback() }

// ListenTCP listens for a leader connection on addr ("host:port"; port 0
// picks a free port — read it back from Addr).
func ListenTCP(addr string) (Listener, error) { return transport.ListenTCP(addr) }

// DialTCP returns a dialer for a worker's TCP endpoint that retries with
// exponential backoff and jitter until the WithDialTimeout budget ends,
// so a leader started before its workers converges.
func DialTCP(addr string) Dialer { return transport.NewTCPDialer(addr) }

// ServeFollower hosts one follower replica for a remote leader: it
// accepts a single connection on lis, rebuilds the follower from task
// and opts — which must construct the model, data and options exactly as
// the leader's process does (same seeds; the handshake checksums the
// initial weights to verify it) — and serves the leader's collectives
// until the leader says goodbye (Trainer.Close), the connection drops,
// or ctx ends. A clean goodbye returns nil.
//
// The leader's handshake fixes the follower's replica id, replica count
// and commit mode, so the same worker invocation serves any slot; a
// WithEngine option selects the engine that drives the worker's
// microbatch chunks (default Reference). WithTransport is a leader
// option and is rejected here.
func ServeFollower(ctx context.Context, lis Listener, task Task, opts ...Option) error {
	s, opt, err := resolveSettings(task, opts)
	if err != nil {
		return err
	}
	if len(s.dialers) > 0 {
		return fmt.Errorf("pipemare: WithTransport is a leader option; a follower serves, not dials")
	}
	inner := s.cfg.Engine
	if inner == nil {
		inner = engine.NewReference()
	}
	return transport.Serve(ctx, lis, followerBuilder(task, s, opt), inner)
}

// followerBuilder is the transport.Builder ServeFollower and
// JoinFollower share: rebuild the local follower trainer from the
// leader's announced spec, adopting the leader's resolved fault
// tolerance, commit mode and partition costs.
func followerBuilder(task Task, s *settings, opt Optimizer) transport.Builder {
	return func(spec transport.Spec) (replica.Member, error) {
		fcfg := s.cfg
		fcfg.Engine = nil
		fcfg.Replicas = spec.Replicas
		// The leader decides fault tolerance and checkpointing: the
		// handshake propagates its resolved mode (so stage-state layouts
		// agree), and a follower never writes checkpoints of its own.
		fcfg.FaultTolerant = spec.FT
		fcfg.CheckpointDir = ""
		fcfg.Elastic = false // joining and accepting joins are disjoint roles
		if spec.Sharded {
			fcfg.ShardedStep = core.ShardedStepOn
		} else {
			fcfg.ShardedStep = core.ShardedStepOff
		}
		if got := int(fcfg.Method); got != spec.Method {
			return nil, fmt.Errorf("worker trains method %d, leader method %d", got, spec.Method)
		}
		if got := fcfg.T2D > 0; got != spec.T2 {
			return nil, fmt.Errorf("worker T2 %t, leader T2 %t", got, spec.T2)
		}
		if fcfg.Partition != pipeline.PartitionEven && len(spec.GroupCosts) > 0 {
			// Land on the leader's exact stage boundaries: reuse its cost
			// vector instead of re-estimating (a noisy local profile pass
			// must not skew this follower's partition).
			fcfg.GroupCosts = spec.GroupCosts
		}
		return core.NewFollower(task, opt, s.sched, fcfg, spec.Replica)
	}
}

// JoinFollower joins a *running* leader mid-run as a fresh follower
// replica: it dials the leader's join listener (Trainer.AcceptJoins on
// a WithElastic leader), announces the task shape it was built for, and
// waits — arbitrarily long; admission happens at a minibatch boundary
// of the leader's choosing, or at the WithJoinAt step — for the
// leader's Welcome. It then builds the local follower from the Welcome
// spec, receives the live state handoff, and serves the leader's
// collectives until the leader says goodbye (a clean goodbye returns
// nil), the connection drops, or ctx ends. Unlike ServeFollower, no
// initial-state agreement is required: every tensor the follower trains
// from arrives in the handoff, so only the task architecture and
// options must match. The dial (with the dialer's backoff) is bounded
// by WithDialTimeout; the wait for admission is bounded only by ctx.
func JoinFollower(ctx context.Context, d Dialer, task Task, opts ...Option) error {
	s, opt, err := resolveSettings(task, opts)
	if err != nil {
		return err
	}
	if len(s.dialers) > 0 {
		return fmt.Errorf("pipemare: WithTransport is a leader option; a joiner dials its leader directly")
	}
	p := s.cfg.Stages
	if p == 0 {
		p = len(task.Groups())
	}
	cap := transport.JoinSpec{
		Stages: p,
		Method: int(s.cfg.Method),
		T2:     s.cfg.T2D > 0,
		JoinAt: s.joinAt,
	}
	timeout := s.dialTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	conn, err := d.Dial(dctx)
	cancel()
	if err != nil {
		return err
	}
	defer conn.Close()
	inner := s.cfg.Engine
	if inner == nil {
		inner = engine.NewReference()
	}
	return transport.ServeJoin(ctx, conn, cap, followerBuilder(task, s, opt), inner)
}
