package pipemare

import "fmt"

// Restore builds a trainer exactly as New would — task and opts must
// reconstruct the checkpointed run's configuration (same seeds, same
// options, including the WithCheckpoint that wrote the files) — then
// restores it from the newest valid checkpoint under dir, re-syncing any
// follower replicas (in-process or remote) with the restored state. The
// resumed run continues from the restored step with a curve bit-identical
// to the uninterrupted run's remaining steps: the data order is a pure
// function of (seed, epoch), the per-stage weight-version rings are
// restored wholesale, and the already-committed minibatches of the
// interrupted epoch are skipped.
//
// The replica count may differ from the checkpointed run's — restoring an
// R=3 run's checkpoint into an R=2 trainer is exactly the state a
// mid-run eviction converges to.
func Restore(dir string, task Task, opts ...Option) (*Trainer, error) {
	tr, err := New(task, opts...)
	if err != nil {
		return nil, err
	}
	if _, err := tr.RestoreLatest(dir); err != nil {
		tr.Close()
		return nil, fmt.Errorf("pipemare: %w", err)
	}
	return tr, nil
}
