package pipemare

import (
	"io"

	"pipemare/internal/trace"
)

// TraceRecorder collects the timestamped spans and instants of a traced
// run (pipemare.WithTrace): slot executions per stage/worker/microbatch,
// commit phases, replica collectives with byte counts, wire round-trips,
// and fault events. One recorder serves one run at a time; recording is
// allocation-bounded and never perturbs the training curve.
type TraceRecorder = trace.Recorder

// TraceReport is the derived utilization summary of a traced run:
// per-stage busy time, bubble fraction, overlap efficiency, and MFU
// against the cost-model ideal. Build one with BuildTraceReport and
// print it with its Format method.
type TraceReport = trace.Report

// NewTraceRecorder returns a trace recorder ready to hand to WithTrace.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// WriteChromeTrace exports a recording as Chrome trace-event JSON —
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing —
// with one track per replica×worker, separate tracks for collectives,
// wire traffic and control events, and instant markers for faults.
func WriteChromeTrace(w io.Writer, rec *TraceRecorder) error {
	return trace.WriteChrome(w, rec)
}

// BuildTraceReport derives the utilization report from a recording.
// stageCosts, when non-nil, are the per-stage relative compute costs
// (e.g. from the task's partition cost model) used for the MFU ideal;
// nil assumes uniform stages.
func BuildTraceReport(rec *TraceRecorder, stageCosts []float64) TraceReport {
	return trace.BuildReport(rec, stageCosts)
}
