package pipemare_test

import (
	"context"
	"math"
	"testing"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func TestFacadeTrainsEndToEnd(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 128, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(images, 12, 5, 2)
	var epochs int
	tr, err := pipemare.New(task,
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(4),
		pipemare.WithT1(20), pipemare.WithT2(0.5),
		pipemare.WithSeed(1),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewSGD(ps, 0.9, 0)
		}),
		pipemare.WithSchedule(optim.Constant(0.05)),
		pipemare.WithObserver(func(e int, run *pipemare.Run) { epochs = e }),
	)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tr.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if run.Diverged {
		t.Fatal("facade training diverged")
	}
	if run.Best() < 70 {
		t.Fatalf("facade best accuracy %.1f%%", run.Best())
	}
	if epochs != 10 {
		t.Fatalf("observer saw %d epochs, want 10", epochs)
	}
}

// TestTrainEpochsStillWorks keeps the deprecated curve-chaining entry
// point covered now that the NewTrainer shim is gone: trainers built with
// New must still honour TrainEpochs.
func TestTrainEpochsStillWorks(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 128, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(images, 12, 5, 2)
	tr, err := pipemare.New(task,
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatchSize(8),
		pipemare.WithT1(20), pipemare.WithT2(0.5), pipemare.WithSeed(1),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewSGD(ps, 0.9, 0)
		}),
		pipemare.WithSchedule(optim.Constant(0.05)))
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(10, nil)
	if run.Diverged {
		t.Fatal("training diverged")
	}
	if run.Best() < 70 {
		t.Fatalf("best accuracy %.1f%%", run.Best())
	}
}

// TestObserverIndexSafeAcrossChunkedRuns pins that the observer's epoch
// argument always indexes the curve it is handed, even when Run is called
// repeatedly with fresh curves.
func TestObserverIndexSafeAcrossChunkedRuns(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 64, Test: 32, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(images, 8, 3, 2)
	tr, err := pipemare.New(task,
		pipemare.WithMethod(pipemare.GPipe),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(4),
		pipemare.WithObserver(func(e int, run *pipemare.Run) {
			if e != run.Epochs() {
				t.Fatalf("observer epoch %d does not index the curve (%d entries)", e, run.Epochs())
			}
			_ = run.Loss[e-1] // must never panic
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // fresh curve per call
		if _, err := tr.Run(context.Background(), 2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunHonoursContextCancellation(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 128, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(images, 12, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	tr, err := pipemare.New(task,
		pipemare.WithMethod(pipemare.GPipe),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(4),
		pipemare.WithObserver(func(e int, run *pipemare.Run) {
			if e == 2 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	run, err := tr.Run(ctx, 100)
	if err != context.Canceled {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if run.Epochs() != 2 {
		t.Fatalf("cancelled run recorded %d epochs, want 2", run.Epochs())
	}
}

func TestFacadeHelpers(t *testing.T) {
	if got := pipemare.FwdDelay(1, 8, 4); math.Abs(got-15.0/4) > 1e-15 {
		t.Fatalf("FwdDelay = %g", got)
	}
	if got := pipemare.Lemma1Bound(0, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Lemma1Bound(0,1) = %g, want 2", got)
	}
	if pipemare.GPipe.String() != "GPipe" || pipemare.PipeMare.String() != "PipeMare" || pipemare.PipeDream.String() != "PipeDream" {
		t.Fatal("method constants wrong")
	}
	if pipemare.NewReferenceEngine().Name() != "reference" {
		t.Fatal("reference engine name wrong")
	}
}
