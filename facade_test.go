package pipemare

import (
	"math"
	"testing"

	"pipemare/internal/data"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func TestFacadeTrainsEndToEnd(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 128, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(images, 12, 5, 2)
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 0)
	tr, err := NewTrainer(task, opt, optim.Constant(0.05), Config{
		Method: PipeMare, BatchSize: 32, MicrobatchSize: 8, T1K: 20, T2D: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(10, nil)
	if run.Diverged {
		t.Fatal("facade training diverged")
	}
	if run.Best() < 70 {
		t.Fatalf("facade best accuracy %.1f%%", run.Best())
	}
}

func TestFacadeHelpers(t *testing.T) {
	if got := FwdDelay(1, 8, 4); math.Abs(got-15.0/4) > 1e-15 {
		t.Fatalf("FwdDelay = %g", got)
	}
	if got := Lemma1Bound(0, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Lemma1Bound(0,1) = %g, want 2", got)
	}
	if GPipe.String() != "GPipe" || PipeMare.String() != "PipeMare" || PipeDream.String() != "PipeDream" {
		t.Fatal("method constants wrong")
	}
}
