package pipemare_test

import (
	"context"
	"testing"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/model"
	"pipemare/internal/optim"
)

// traceBase is the all-techniques DNN recipe the equivalence suites pin
// (same shape as TestReplicatedEngineMatchesReference), shared by the
// traced-equivalence and trace-format tests.
func traceBase() (func() pipemare.Task, []pipemare.Option) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 96, Test: 32, Noise: 0.4, Seed: 6})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 10, 4, 8) }
	base := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(4),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
	return build, base
}

// requireComputeTraced asserts the recorder actually observed the run —
// a tracing hook that silently fell off would otherwise let these
// equivalence tests pass vacuously.
func requireComputeTraced(t *testing.T, name string, rec *pipemare.TraceRecorder, wantReplicas int) {
	t.Helper()
	rep := pipemare.BuildTraceReport(rec, nil)
	if rep.ComputeNs <= 0 || rep.WorkerTracks == 0 {
		t.Fatalf("%s: trace recorded no compute (%d ns over %d worker tracks)",
			name, rep.ComputeNs, rep.WorkerTracks)
	}
	if rep.Replicas != wantReplicas {
		t.Fatalf("%s: trace saw %d replicas computing, want %d", name, rep.Replicas, wantReplicas)
	}
	if rep.DroppedEvents != 0 {
		t.Fatalf("%s: %d events dropped at track caps", name, rep.DroppedEvents)
	}
}

// TestTracedRunsMatchReference pins the observability invariant: with
// tracing enabled — across the concurrent engine, the replica-sharded
// commit, and the loopback wire — every curve stays bit-identical to the
// untraced single-replica Reference run. Tracing only reads clocks and
// appends to goroutine-owned buffers; this is the test that keeps it so.
func TestTracedRunsMatchReference(t *testing.T) {
	build, base := traceBase()
	ref := runCurve(t, build, 3, 1, base...)

	t.Run("concurrent/W=2", func(t *testing.T) {
		rec := pipemare.NewTraceRecorder()
		opts := append(append([]pipemare.Option{}, base...),
			pipemare.WithTrace(rec),
			pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(2))))
		got := runCurve(t, build, 3, 1, opts...)
		requireIdentical(t, "traced/concurrent", ref, got)
		requireComputeTraced(t, "traced/concurrent", rec, 1)
	})

	t.Run("replicated/R=2/sharded", func(t *testing.T) {
		rec := pipemare.NewTraceRecorder()
		opts := append(append([]pipemare.Option{}, base...),
			pipemare.WithTrace(rec),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(true),
			pipemare.WithEngine(replicatedEngine("reference")))
		got := runCurve(t, build, 3, 2, opts...)
		requireIdentical(t, "traced/replicated", ref, got)
		requireComputeTraced(t, "traced/replicated", rec, 2)
	})

	t.Run("loopback/R=2", func(t *testing.T) {
		dialers, kill, wait := startWorkers(t, 1, build, func() []pipemare.Option {
			return append([]pipemare.Option{}, base...)
		})
		rec := pipemare.NewTraceRecorder()
		leaderOpts := append(append([]pipemare.Option{}, base...),
			pipemare.WithTrace(rec),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(true),
			pipemare.WithEngine(replicatedEngine("reference")),
			pipemare.WithTransport(dialers...))
		tr, err := pipemare.New(build(), leaderOpts...)
		if err != nil {
			kill()
			t.Fatal(err)
		}
		got, err := tr.Run(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		for i, werr := range wait() {
			if werr != nil {
				t.Fatalf("worker %d: %v", i+1, werr)
			}
		}
		requireIdentical(t, "traced/loopback", ref, got)
		// Only the leader computes in the recorder's process; the remote
		// replica shows up as wire traffic instead.
		requireComputeTraced(t, "traced/loopback", rec, 1)
		rep := pipemare.BuildTraceReport(rec, nil)
		if rep.WireNs <= 0 || rep.BytesMoved <= 0 {
			t.Fatalf("loopback trace recorded no wire traffic (%d ns, %d bytes)", rep.WireNs, rep.BytesMoved)
		}
	})
}
