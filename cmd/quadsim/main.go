// Command quadsim explores the PipeMare quadratic stability model from
// the command line: trajectories of fixed-delay asynchronous SGD, the
// Lemma 1/2 bounds, and companion-matrix spectral radii, with optional
// forward/backward delay discrepancy and T2 correction.
//
//	quadsim -tau 10 -alpha 0.2                 # Figure 3(a) divergence
//	quadsim -tau 10 -taub 6 -delta 5 -alpha .12  # Figure 5(a)
//	quadsim -tau 10 -taub 6 -delta 5 -alpha .12 -t2 -d 0.1
package main

import (
	"flag"
	"fmt"

	"pipemare/internal/poly"
	"pipemare/internal/quad"
)

func main() {
	tau := flag.Int("tau", 10, "forward delay τ_fwd")
	taub := flag.Int("taub", 0, "backward delay τ_bkwd")
	alpha := flag.Float64("alpha", 0.2, "step size α")
	lambda := flag.Float64("lambda", 1, "curvature λ")
	delta := flag.Float64("delta", 0, "discrepancy sensitivity Δ")
	noise := flag.Float64("noise", 1, "gradient noise std")
	steps := flag.Int("steps", 500, "iterations")
	t2 := flag.Bool("t2", false, "enable T2 discrepancy correction")
	d := flag.Float64("d", 0.1, "T2 decay hyperparameter D")
	flag.Parse()

	cfg := quad.Config{
		Lambda: *lambda, Alpha: *alpha, TauFwd: *tau, TauBkwd: *taub,
		Delta: *delta, NoiseStd: *noise, Steps: *steps, Seed: 1,
		T2: *t2, D: *d, LossCap: 1e9,
	}
	res := quad.Simulate(cfg)
	fmt.Printf("trajectory: loss@%d=%.4g  loss@%d=%.4g  diverged=%v\n",
		*steps/2, res.Loss[*steps/2], *steps-1, res.Loss[*steps-1], res.Diverged)

	fmt.Printf("Lemma 1 bound  (τ=%d): α* = %.6f\n", *tau, quad.Lemma1Bound(*tau, *lambda))
	if *delta > 0 && *tau > *taub {
		fmt.Printf("Lemma 2 bound  (Δ=%g): α ≤ %.6f\n", *delta, quad.Lemma2Bound(*tau, *taub, *lambda, *delta))
	}
	var p poly.Poly
	switch {
	case *t2:
		gamma := quad.GammaFromD(*d, float64(*tau), float64(*taub))
		p = quad.CharPolyT2(*tau, *taub, *alpha, *lambda, *delta, gamma)
	case *delta != 0:
		p = quad.CharPolyDiscrepancy(*tau, *taub, *alpha, *lambda, *delta)
	default:
		p = quad.CharPoly(*tau, *alpha, *lambda)
	}
	if r, err := p.SpectralRadius(); err == nil {
		fmt.Printf("companion spectral radius at α=%g: %.6f (stable iff < 1)\n", *alpha, r)
	} else {
		fmt.Printf("root finding failed: %v\n", err)
	}
}
