// Command pipemare-bench regenerates the tables and figures of the
// PipeMare paper's evaluation. Run with no arguments to list experiments,
// with experiment names to run them, or with "all" for everything.
//
//	pipemare-bench               # list experiments
//	pipemare-bench table1 fig3a  # run selected experiments (quick scale)
//	pipemare-bench -full table2  # reference-scale run
//	pipemare-bench all           # every experiment at quick scale
//	pipemare-bench -engine concurrent table2   # stage-scheduler engine
//	pipemare-bench -engine concurrent -workers 2 table2  # cap scheduler workers
//	pipemare-bench -partition cost table2      # cost-balanced stage split
//	pipemare-bench -replicas 2 table2          # 2 data-parallel replicas
//	pipemare-bench -json         # engine perf record, merged into BENCH_engine.json
//	pipemare-bench -json -transport loopback   # replicated rows over the wire protocol
//	pipemare-bench -json -transport tcp        # spawn pipemare-worker processes, real sockets
//	pipemare-bench -json -transport loopback -join join@2  # mid-run replica join, handoff-cost row
//	pipemare-bench -trace out.json -engine concurrent -replicas 2  # record a traced epoch, report bubble fraction + MFU
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
)

// dtypeName is the resolved -dtype flag value, threaded into every
// benchRecord and every spawned worker process so the recorded rows and
// the remote followers agree on the element type the run trained in.
var dtypeName = "float64"

func main() {
	full := flag.Bool("full", false, "run at reference (paper) scale instead of quick scale")
	engineName := flag.String("engine", "reference", "execution engine for training runs: reference | concurrent")
	workers := flag.Int("workers", 0, "scheduler workers for the concurrent engine (0 = min(P, GOMAXPROCS))")
	partitionName := flag.String("partition", "even", "stage partition mode: even | cost | profile")
	replicas := flag.Int("replicas", 1, "data-parallel pipeline replicas per training run (curves are bit-identical to -replicas 1)")
	jsonOut := flag.Bool("json", false, "benchmark the engines on the transformer workload and merge the records into BENCH_engine.json")
	transportName := flag.String("transport", "inproc", "where replicated followers live for -json or -smoke: inproc | loopback | tcp (tcp spawns pipemare-worker processes)")
	workerBin := flag.String("worker", "pipemare-worker", "pipemare-worker binary for -transport tcp (resolved via PATH)")
	smoke := flag.Bool("smoke", false, "train the benchmark workload R=2 for one epoch over -transport and exit (CI distributed smoke test)")
	traceOut := flag.String("trace", "", "record one traced training epoch, write Chrome trace-event JSON (Perfetto-loadable) to this file, and print the bubble-fraction/MFU report; honors -engine, -workers, -replicas and -transport")
	dtypeFlag := flag.String("dtype", "float64", "element type model state trains in: float64 | float32; each dtype records under its own BENCH_engine.json merge key")
	faultsSpec := flag.String("faults", "", `inject scripted faults into a -json replicated row and record the recovery overhead: comma-separated op@N[:dur] rules, e.g. "drop@2,kill@5" (see parseFaults); needs -transport loopback or tcp`)
	joinSpec := flag.String("join", "", `admit a replica mid-run into a -json replicated row and record the handoff overhead: a join@N rule, e.g. "join@2" joins at leader step 2 (see parseJoin); needs -transport loopback or tcp`)
	crashWorker := flag.Int("crash-worker", 0, "with -smoke -transport tcp: spawn the worker with -crash-after N so it exit(137)s at its Nth chunk, and require the leader to evict it and finish (0 disables)")
	joinWorker := flag.Bool("join-worker", false, "with -smoke -transport tcp -crash-worker N: also spawn a replacement pipemare-worker -join; the killed replica must be evicted, the replacement admitted mid-epoch via the live handoff, and the final loss must match an uninterrupted in-process run")
	joinListen := flag.String("join-listen", "", "with -smoke: accept mid-run joiners on this TCP address and train long enough to join by hand — run 'pipemare-worker -join <addr>' from another terminal while the smoke trains")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	switch *transportName {
	case "inproc", "loopback", "tcp":
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown transport %q (want inproc, loopback or tcp)\n", *transportName)
		os.Exit(2)
	}
	switch *dtypeFlag {
	case "float64":
	case "float32":
		experiments.DType = pipemare.Float32
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown dtype %q (want float64 or float32)\n", *dtypeFlag)
		os.Exit(2)
	}
	dtypeName = *dtypeFlag
	if *transportName != "inproc" && !*jsonOut && !*smoke && *traceOut == "" {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -transport %s applies to -json, -smoke or -trace\n", *transportName)
		os.Exit(2)
	}
	if *faultsSpec != "" && (!*jsonOut || *transportName == "inproc") {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -faults applies to -json with -transport loopback or tcp\n")
		os.Exit(2)
	}
	if *joinSpec != "" && (!*jsonOut || *transportName == "inproc") {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -join applies to -json with -transport loopback or tcp\n")
		os.Exit(2)
	}
	if *crashWorker != 0 && (!*smoke || *transportName != "tcp" || *crashWorker < 0) {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -crash-worker takes a positive chunk ordinal and applies to -smoke -transport tcp\n")
		os.Exit(2)
	}
	if *joinWorker && *crashWorker == 0 {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -join-worker applies to -smoke -transport tcp with -crash-worker N\n")
		os.Exit(2)
	}
	if *joinListen != "" && (!*smoke || *joinWorker) {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -join-listen applies to -smoke, without -join-worker\n")
		os.Exit(2)
	}
	if *smoke {
		if err := smokeRun(*transportName, *workerBin, *crashWorker, *joinWorker, *joinListen); err != nil {
			fmt.Fprintf(os.Stderr, "pipemare-bench: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var inner func() pipemare.Engine
	switch *engineName {
	case "reference":
	case "concurrent":
		inner = func() pipemare.Engine { return concurrent.New(concurrent.WithWorkers(*workers)) }
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown engine %q (want reference or concurrent)\n", *engineName)
		os.Exit(2)
	}
	switch *partitionName {
	case "even":
	case "cost":
		experiments.Partition = pipemare.PartitionCost
	case "profile":
		experiments.Partition = pipemare.PartitionProfile
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown partition mode %q (want even, cost or profile)\n", *partitionName)
		os.Exit(2)
	}
	switch {
	case *replicas < 1 || *replicas > 8:
		// Every replica needs at least one microbatch per minibatch; the
		// smallest workload recipe runs N = 8 microbatches (batch 64,
		// microbatch size 8).
		fmt.Fprintf(os.Stderr, "pipemare-bench: -replicas must be in [1, 8], got %d\n", *replicas)
		os.Exit(2)
	case *replicas > 1:
		// Replication wraps the chosen engine as the per-replica inner.
		experiments.Replicas = *replicas
		experiments.EngineFactory = func() pipemare.Engine { return pipemare.NewReplicatedEngine(inner) }
	case inner != nil:
		experiments.EngineFactory = inner
	}
	if *traceOut != "" {
		if err := traceRun(*traceOut, inner, *replicas, *transportName, *workerBin); err != nil {
			fmt.Fprintf(os.Stderr, "pipemare-bench: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := benchEngines("BENCH_engine.json", *workers, *transportName, *workerBin, *faultsSpec, *joinSpec); err != nil {
			fmt.Fprintf(os.Stderr, "pipemare-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("usage: pipemare-bench [-full] <experiment>... | all")
		fmt.Println("\navailable experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-11s %s\n", e.Name, e.Title)
		}
		return
	}
	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, name := range args {
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pipemare-bench: unknown experiment %q (run without arguments to list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
}

// benchEngines times one training epoch of the transformer workload under
// the Reference engine and the work-stealing concurrent engine at
// P ∈ {4, 8} × partition ∈ {even, cost}, plus the replicated engine at
// P = 4 with R ∈ {2, 4} Reference-inner replicas under both commit modes
// (leader-serial vs replica-sharded — the pair that shows the commit tail
// moving off the leader), then merges the measurements into the perf
// record so the engine trajectory is tracked across PRs without
// clobbering rows from other runs (see benchfile.go for the merge key).
//
// transportName places the replicated rows' followers: "inproc" keeps
// them in the leader's process, "loopback" serves them over the wire
// protocol on in-process pipes, and "tcp" spawns one workerBin process
// per follower and dials real sockets — what the wire costs shows up as
// the gap between the inproc and loopback/tcp rows at the same key.
// A non-empty faultsSpec adds one fault-injected recovery row (see
// benchFaults) under its own merge key, and a non-empty joinSpec adds
// one mid-run-join churn row (see benchJoin) likewise.
func benchEngines(path string, workers int, transportName, workerBin, faultsSpec, joinSpec string) error {
	out := loadBenchFile(path)
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	out.NumCPU = runtime.NumCPU()
	refNsAt := map[int]int64{}
	for _, p := range []int{4, 8} {
		w := workers
		if w == 0 {
			w = out.GoMaxProcs
		}
		if w > p {
			w = p
		}
		refNs, _, err := timeEpochs(p, 1, pipemare.NewReferenceEngine(), pipemare.PartitionEven)
		if err != nil {
			return err
		}
		refNsAt[p] = refNs
		bubble, mfu, err := tracedMetrics(p, 1, pipemare.NewReferenceEngine(), pipemare.PartitionEven)
		if err != nil {
			return err
		}
		out.upsert(benchRecord{Engine: "reference", Stages: p, Replicas: 1,
			Partition: "even", Transport: "inproc", Dtype: dtypeName, NsPerEpoch: refNs,
			BubbleFraction: bubble, MFU: mfu})
		for _, mode := range []pipemare.PartitionMode{pipemare.PartitionEven, pipemare.PartitionCost} {
			eng := concurrent.New(concurrent.WithWorkers(workers))
			ns, imbalance, err := timeEpochs(p, 1, eng, mode)
			if err != nil {
				return err
			}
			bubble, mfu, err := tracedMetrics(p, 1, concurrent.New(concurrent.WithWorkers(workers)), mode)
			if err != nil {
				return err
			}
			speedup := float64(refNs) / float64(ns)
			out.upsert(benchRecord{Engine: "concurrent", Stages: p, Replicas: 1,
				Partition: mode.String(), Workers: w, Transport: "inproc", Dtype: dtypeName, NsPerEpoch: ns,
				Speedup: speedup, OverlapEfficiency: speedup / float64(p),
				StageImbalance: imbalance, BubbleFraction: bubble, MFU: mfu})
			fmt.Printf("P=%d %s W=%d: reference %.2fs/epoch, concurrent %.2fs/epoch (speedup %.2fx, overlap efficiency %.2f, stage imbalance %.2f)\n",
				p, mode, w, float64(refNs)/1e9, float64(ns)/1e9, speedup, speedup/float64(p), imbalance)
		}
	}
	for _, r := range []int{2, 4} {
		const p = 4
		for _, commit := range []string{"serial", "sharded"} {
			dialers, release, err := startFollowers(transportName, workerBin, p, r-1)
			if err != nil {
				return err
			}
			extra := []pipemare.Option{pipemare.WithShardedStep(commit == "sharded")}
			if len(dialers) > 0 {
				extra = append(extra, pipemare.WithTransport(dialers...))
			}
			// nil engine: the default replicated engine over Reference inners.
			ns, _, err := timeEpochs(p, r, nil, pipemare.PartitionEven, extra...)
			if err != nil {
				return err
			}
			if err := release(); err != nil {
				return fmt.Errorf("%s follower: %w", transportName, err)
			}
			// The traced re-run needs its own followers: the timed run's were
			// consumed by the Close above.
			tdialers, trelease, err := startFollowers(transportName, workerBin, p, r-1)
			if err != nil {
				return err
			}
			textra := []pipemare.Option{pipemare.WithShardedStep(commit == "sharded")}
			if len(tdialers) > 0 {
				textra = append(textra, pipemare.WithTransport(tdialers...))
			}
			bubble, mfu, err := tracedMetrics(p, r, nil, pipemare.PartitionEven, textra...)
			if err != nil {
				return err
			}
			if err := trelease(); err != nil {
				return fmt.Errorf("%s follower: %w", transportName, err)
			}
			speedup := float64(refNsAt[p]) / float64(ns)
			out.upsert(benchRecord{Engine: "replicated(reference)", Stages: p, Replicas: r,
				Partition: "even", Commit: commit, Transport: transportName, Dtype: dtypeName, NsPerEpoch: ns,
				Speedup: speedup, ScalingEfficiency: speedup / float64(r),
				BubbleFraction: bubble, MFU: mfu})
			fmt.Printf("P=%d R=%d %s commit (%s): replicated %.2fs/epoch (speedup %.2fx, scaling efficiency %.2f)\n",
				p, r, commit, transportName, float64(ns)/1e9, speedup, speedup/float64(r))
		}
	}
	if faultsSpec != "" {
		if err := benchFaults(&out, faultsSpec, transportName, workerBin); err != nil {
			return err
		}
	}
	if joinSpec != "" {
		if err := benchJoin(&out, joinSpec, transportName, workerBin); err != nil {
			return err
		}
	}
	if err := out.write(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// traceRun trains the benchmark workload (P=4) for one traced epoch —
// replicas > 1 wraps the chosen engine in the replicated engine, like a
// timing run — writes the recording as Chrome trace-event JSON to path,
// and prints the derived utilization report (per-stage busy time, bubble
// fraction, MFU) against the measured wall clock.
func traceRun(path string, inner func() pipemare.Engine, replicas int, transportName, workerBin string) error {
	const stages = 4
	dialers, release, err := startFollowers(transportName, workerBin, stages, replicas-1)
	if err != nil {
		return err
	}
	rec := pipemare.NewTraceRecorder()
	extra := []pipemare.Option{pipemare.WithTrace(rec)}
	if len(dialers) > 0 {
		extra = append(extra, pipemare.WithTransport(dialers...))
	}
	var eng pipemare.Engine
	switch {
	case replicas > 1 && inner != nil:
		eng = pipemare.NewReplicatedEngine(inner)
	case inner != nil:
		eng = inner()
	}
	tr, err := experiments.NewReplicatedBenchTrainer(stages, replicas, eng, extra...)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := tr.Run(context.Background(), 1); err != nil {
		return err
	}
	wall := time.Since(start).Nanoseconds()
	costs := tr.StageCosts()
	if err := tr.Close(); err != nil {
		return err
	}
	if err := release(); err != nil {
		return fmt.Errorf("%s follower: %w", transportName, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pipemare.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rep := pipemare.BuildTraceReport(rec, costs)
	rep.Format(os.Stdout, wall)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// tracedMetrics re-runs one epoch of a -json row's configuration with
// tracing on and returns its bubble fraction and MFU. The traced run is
// separate from the timed run so recording overhead — small as it is —
// never lands in NsPerEpoch; rows living over a transport get fresh
// followers from the caller via extra.
func tracedMetrics(stages, replicas int, eng pipemare.Engine, mode pipemare.PartitionMode, extra ...pipemare.Option) (bubble, mfu float64, err error) {
	rec := pipemare.NewTraceRecorder()
	opts := append([]pipemare.Option{pipemare.WithTrace(rec)}, extra...)
	if mode != pipemare.PartitionEven {
		opts = append(opts, pipemare.WithPartition(mode))
	}
	tr, err := experiments.NewReplicatedBenchTrainer(stages, replicas, eng, opts...)
	if err != nil {
		return 0, 0, err
	}
	if _, err := tr.Run(context.Background(), 1); err != nil {
		tr.Close()
		return 0, 0, err
	}
	costs := tr.StageCosts()
	if err := tr.Close(); err != nil {
		return 0, 0, err
	}
	rep := pipemare.BuildTraceReport(rec, costs)
	return rep.BubbleFraction, rep.MFU, nil
}

// smokeRun trains the benchmark workload for one epoch with R=2 replicas
// over the chosen transport — the CI end-to-end check that a leader and a
// real worker process complete training together. It prints the final
// train loss so the log shows the run actually trained.
//
// crashWorker > 0 is the kill -9 smoke: the worker process hard-exits
// (status 137, no goodbye, no TCP FIN courtesy) upon receiving its
// crashWorker'th chunk request, and the run only passes if the leader
// detects the death, evicts the replica and finishes the epoch solo.
//
// joinWorker composes the crash smoke with elastic recovery: a
// replacement pipemare-worker -join process dials the leader's join
// listener and is admitted — no earlier than two steps past the crash,
// so the run demonstrably shrinks to R=1 first — via the live state
// handoff. The run passes only if the replacement is serving at exit
// (R=2 again) and the final loss bit-matches an uninterrupted
// in-process run: kill, eviction and rejoin cost zero curve deviation.
//
// joinListen is the interactive variant: the leader accepts joiners on
// the given TCP address and trains long enough (10 epochs) to run
// "pipemare-worker -join <addr>" by hand from another terminal; the
// exit line reports how many joined.
func smokeRun(transportName, workerBin string, crashWorker int, joinWorker bool, joinListen string) error {
	// The replacement joiner spawns first — it has a task to build and a
	// dial-with-backoff to win before it can park — and the run trains two
	// epochs (16 minibatch boundaries), so even a heavily loaded runner
	// admits it well before the run ends.
	epochs := 1
	var jlis pipemare.Listener
	joinDone := make(chan error, 1)
	if joinWorker {
		epochs = 2
		l, err := pipemare.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		jlis = l
		cmd := exec.Command(workerBin,
			"-join", jlis.Addr(), "-join-at", fmt.Sprint(crashWorker+2), "-stages", "4")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning join worker: %w", err)
		}
		go func() { joinDone <- cmd.Wait() }()
	}
	if joinListen != "" {
		epochs = 10
		l, err := pipemare.ListenTCP(joinListen)
		if err != nil {
			return err
		}
		jlis = l
		fmt.Printf("accepting joiners on %s (pipemare-worker -join %s)\n", l.Addr(), l.Addr())
	}
	var workerArgs []string
	if crashWorker > 0 {
		workerArgs = append(workerArgs, "-crash-after", fmt.Sprint(crashWorker))
	}
	dialers, release, err := startFollowers(transportName, workerBin, 4, 1, workerArgs...)
	if err != nil {
		return err
	}
	var extra []pipemare.Option
	if len(dialers) > 0 {
		extra = append(extra, pipemare.WithTransport(dialers...))
	}
	if crashWorker > 0 {
		extra = append(extra, pipemare.WithShardedStep(false), pipemare.WithFaultTolerance())
	}
	if jlis != nil {
		extra = append(extra, pipemare.WithElastic())
	}
	tr, err := experiments.NewReplicatedBenchTrainer(4, 2, nil, extra...)
	if err != nil {
		return err
	}
	if jlis != nil {
		if err := tr.AcceptJoins(jlis); err != nil {
			return err
		}
	}
	run, err := tr.Run(context.Background(), epochs)
	if err != nil {
		return err
	}
	if err := tr.Close(); err != nil {
		return err
	}
	relErr := release()
	if joinListen != "" {
		if relErr != nil {
			return fmt.Errorf("%s follower: %w", transportName, relErr)
		}
		joins, demotions, handoffNs := tr.ElasticStats()
		fmt.Printf("smoke ok: R=%d at exit over %s (%d joined mid-run, %d demoted, handoff %.1fms), train loss %.6f\n",
			tr.Replicas(), transportName, joins, demotions, float64(handoffNs)/1e6, run.Loss[run.Epochs()-1])
		return nil
	}
	if joinWorker {
		if got := tr.Replicas(); got != 2 {
			return fmt.Errorf("replacement did not restore R=2: %d replicas at exit", got)
		}
		joins, _, _ := tr.ElasticStats()
		if joins != 1 {
			return fmt.Errorf("leader admitted %d joiners, want 1", joins)
		}
		if err := <-joinDone; err != nil {
			return fmt.Errorf("join worker: %w", err)
		}
		ref, err := experiments.NewReplicatedBenchTrainer(4, 2, nil,
			pipemare.WithShardedStep(false), pipemare.WithFaultTolerance())
		if err != nil {
			return err
		}
		refRun, err := ref.Run(context.Background(), epochs)
		if err != nil {
			return err
		}
		if err := ref.Close(); err != nil {
			return err
		}
		got, want := run.Loss[run.Epochs()-1], refRun.Loss[refRun.Epochs()-1]
		if got != want {
			return fmt.Errorf("elastic run loss %.17g != uninterrupted loss %.17g", got, want)
		}
		fmt.Printf("smoke ok: R=2 over %s, worker killed at chunk %d, evicted to R=1, replacement joined, loss matches uninterrupted run (%.6f)\n",
			transportName, crashWorker, got)
		return nil
	}
	if crashWorker > 0 {
		// The killed worker's exit(137) is the point of the exercise; what
		// must hold is that the leader evicted it and trained on.
		if got := tr.Replicas(); got != 1 {
			return fmt.Errorf("killed worker was not evicted: %d replicas survive, want 1", got)
		}
		fmt.Printf("smoke ok: R=2 over %s, worker killed at chunk %d, evicted to R=1, train loss %.6f\n",
			transportName, crashWorker, run.Loss[run.Epochs()-1])
		return nil
	}
	if relErr != nil {
		return fmt.Errorf("%s follower: %w", transportName, relErr)
	}
	fmt.Printf("smoke ok: R=2 over %s, train loss %.6f\n", transportName, run.Loss[run.Epochs()-1])
	return nil
}

// startFollowers launches n follower endpoints for one timing run and
// returns the dialers for WithTransport plus a release function to call
// after Trainer.Close: it reaps the followers and returns the first
// session error. "inproc" returns no dialers — the trainer builds its
// followers in-process as before. workerArgs are passed through to each
// spawned tcp worker (e.g. -crash-after for the kill -9 smoke).
func startFollowers(transportName, workerBin string, stages, n int, workerArgs ...string) ([]pipemare.Dialer, func() error, error) {
	switch transportName {
	case "inproc":
		return nil, func() error { return nil }, nil
	case "loopback":
		errs := make([]error, n)
		var wg sync.WaitGroup
		var dialers []pipemare.Dialer
		for i := 0; i < n; i++ {
			lis, dial := pipemare.Loopback()
			dialers = append(dialers, dial)
			wg.Add(1)
			go func(i int, lis pipemare.Listener) {
				defer wg.Done()
				errs[i] = pipemare.ServeFollower(context.Background(), lis,
					experiments.EngineBenchTask(), experiments.EngineBenchOptions(stages)...)
			}(i, lis)
		}
		return dialers, func() error {
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "tcp":
		var dialers []pipemare.Dialer
		var cmds []*exec.Cmd
		release := func() error {
			var first error
			for _, cmd := range cmds {
				if err := cmd.Wait(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}
		for i := 0; i < n; i++ {
			args := append([]string{"-addr", "127.0.0.1:0", "-stages", fmt.Sprint(stages), "-dtype", dtypeName}, workerArgs...)
			cmd := exec.Command(workerBin, args...)
			cmd.Stderr = os.Stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				return nil, nil, err
			}
			if err := cmd.Start(); err != nil {
				return nil, nil, fmt.Errorf("spawning %s: %w", workerBin, err)
			}
			cmds = append(cmds, cmd)
			sc := bufio.NewScanner(stdout)
			addr := ""
			for sc.Scan() {
				if a, ok := strings.CutPrefix(sc.Text(), "listening "); ok {
					addr = a
					break
				}
			}
			if addr == "" {
				cmd.Process.Kill()
				release()
				return nil, nil, fmt.Errorf("%s exited without announcing its address", workerBin)
			}
			// Drain the remaining worker output in the background so the
			// child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			dialers = append(dialers, pipemare.DialTCP(addr))
		}
		return dialers, release, nil
	}
	return nil, nil, fmt.Errorf("unknown transport %q", transportName)
}

// timeEpochs builds the benchmark trainer (the same workload as the root
// BenchmarkEngine* benchmarks) under the given partition mode and returns
// ns per epoch — one warm epoch, then the mean of two timed epochs — plus
// the trainer's stage imbalance (max/mean per-stage cost). The trainer is
// closed before returning, releasing any remote followers.
func timeEpochs(stages, replicas int, eng pipemare.Engine, mode pipemare.PartitionMode, extra ...pipemare.Option) (int64, float64, error) {
	if mode != pipemare.PartitionEven {
		extra = append(extra, pipemare.WithPartition(mode))
	}
	tr, err := experiments.NewReplicatedBenchTrainer(stages, replicas, eng, extra...)
	if err != nil {
		return 0, 0, err
	}
	defer tr.Close()
	if _, err := tr.Run(context.Background(), 1); err != nil { // warm
		return 0, 0, err
	}
	const epochs = 2
	start := time.Now()
	if _, err := tr.Run(context.Background(), epochs); err != nil {
		return 0, 0, err
	}
	ns, imbalance := time.Since(start).Nanoseconds()/epochs, tr.StageImbalance()
	if err := tr.Close(); err != nil {
		return 0, 0, err
	}
	return ns, imbalance, nil
}
