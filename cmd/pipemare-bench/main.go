// Command pipemare-bench regenerates the tables and figures of the
// PipeMare paper's evaluation. Run with no arguments to list experiments,
// with experiment names to run them, or with "all" for everything.
//
//	pipemare-bench               # list experiments
//	pipemare-bench table1 fig3a  # run selected experiments (quick scale)
//	pipemare-bench -full table2  # reference-scale run
//	pipemare-bench all           # every experiment at quick scale
//	pipemare-bench -engine concurrent table2   # stage-scheduler engine
//	pipemare-bench -engine concurrent -workers 2 table2  # cap scheduler workers
//	pipemare-bench -partition cost table2      # cost-balanced stage split
//	pipemare-bench -replicas 2 table2          # 2 data-parallel replicas
//	pipemare-bench -json         # engine perf record, merged into BENCH_engine.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at reference (paper) scale instead of quick scale")
	engineName := flag.String("engine", "reference", "execution engine for training runs: reference | concurrent")
	workers := flag.Int("workers", 0, "scheduler workers for the concurrent engine (0 = min(P, GOMAXPROCS))")
	partitionName := flag.String("partition", "even", "stage partition mode: even | cost | profile")
	replicas := flag.Int("replicas", 1, "data-parallel pipeline replicas per training run (curves are bit-identical to -replicas 1)")
	jsonOut := flag.Bool("json", false, "benchmark the engines on the transformer workload and merge the records into BENCH_engine.json")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "pipemare-bench: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	var inner func() pipemare.Engine
	switch *engineName {
	case "reference":
	case "concurrent":
		inner = func() pipemare.Engine { return concurrent.New(concurrent.WithWorkers(*workers)) }
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown engine %q (want reference or concurrent)\n", *engineName)
		os.Exit(2)
	}
	switch *partitionName {
	case "even":
	case "cost":
		experiments.Partition = pipemare.PartitionCost
	case "profile":
		experiments.Partition = pipemare.PartitionProfile
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown partition mode %q (want even, cost or profile)\n", *partitionName)
		os.Exit(2)
	}
	switch {
	case *replicas < 1 || *replicas > 8:
		// Every replica needs at least one microbatch per minibatch; the
		// smallest workload recipe runs N = 8 microbatches (batch 64,
		// microbatch size 8).
		fmt.Fprintf(os.Stderr, "pipemare-bench: -replicas must be in [1, 8], got %d\n", *replicas)
		os.Exit(2)
	case *replicas > 1:
		// Replication wraps the chosen engine as the per-replica inner.
		experiments.Replicas = *replicas
		experiments.EngineFactory = func() pipemare.Engine { return pipemare.NewReplicatedEngine(inner) }
	case inner != nil:
		experiments.EngineFactory = inner
	}
	if *jsonOut {
		if err := benchEngines("BENCH_engine.json", *workers); err != nil {
			fmt.Fprintf(os.Stderr, "pipemare-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("usage: pipemare-bench [-full] <experiment>... | all")
		fmt.Println("\navailable experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-11s %s\n", e.Name, e.Title)
		}
		return
	}
	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, name := range args {
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pipemare-bench: unknown experiment %q (run without arguments to list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
}

// benchEngines times one training epoch of the transformer workload under
// the Reference engine and the work-stealing concurrent engine at
// P ∈ {4, 8} × partition ∈ {even, cost}, plus the replicated engine at
// P = 4 with R ∈ {2, 4} Reference-inner replicas under both commit modes
// (leader-serial vs replica-sharded — the pair that shows the commit tail
// moving off the leader), then merges the measurements into the perf
// record so the engine trajectory is tracked across PRs without
// clobbering rows from other runs (see benchfile.go for the merge key).
func benchEngines(path string, workers int) error {
	out := loadBenchFile(path)
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	out.NumCPU = runtime.NumCPU()
	refNsAt := map[int]int64{}
	for _, p := range []int{4, 8} {
		w := workers
		if w == 0 {
			w = out.GoMaxProcs
		}
		if w > p {
			w = p
		}
		refNs, _, err := timeEpochs(p, 1, pipemare.NewReferenceEngine(), pipemare.PartitionEven)
		if err != nil {
			return err
		}
		refNsAt[p] = refNs
		out.upsert(benchRecord{Engine: "reference", Stages: p, Replicas: 1,
			Partition: "even", NsPerEpoch: refNs})
		for _, mode := range []pipemare.PartitionMode{pipemare.PartitionEven, pipemare.PartitionCost} {
			eng := concurrent.New(concurrent.WithWorkers(workers))
			ns, imbalance, err := timeEpochs(p, 1, eng, mode)
			if err != nil {
				return err
			}
			speedup := float64(refNs) / float64(ns)
			out.upsert(benchRecord{Engine: "concurrent", Stages: p, Replicas: 1,
				Partition: mode.String(), Workers: w, NsPerEpoch: ns,
				Speedup: speedup, OverlapEfficiency: speedup / float64(p),
				StageImbalance: imbalance})
			fmt.Printf("P=%d %s W=%d: reference %.2fs/epoch, concurrent %.2fs/epoch (speedup %.2fx, overlap efficiency %.2f, stage imbalance %.2f)\n",
				p, mode, w, float64(refNs)/1e9, float64(ns)/1e9, speedup, speedup/float64(p), imbalance)
		}
	}
	for _, r := range []int{2, 4} {
		const p = 4
		for _, commit := range []string{"serial", "sharded"} {
			// nil engine: the default replicated engine over Reference inners.
			ns, _, err := timeEpochs(p, r, nil, pipemare.PartitionEven,
				pipemare.WithShardedStep(commit == "sharded"))
			if err != nil {
				return err
			}
			speedup := float64(refNsAt[p]) / float64(ns)
			out.upsert(benchRecord{Engine: "replicated(reference)", Stages: p, Replicas: r,
				Partition: "even", Commit: commit, NsPerEpoch: ns,
				Speedup: speedup, ScalingEfficiency: speedup / float64(r)})
			fmt.Printf("P=%d R=%d %s commit: replicated %.2fs/epoch (speedup %.2fx, scaling efficiency %.2f)\n",
				p, r, commit, float64(ns)/1e9, speedup, speedup/float64(r))
		}
	}
	if err := out.write(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// timeEpochs builds the benchmark trainer (the same workload as the root
// BenchmarkEngine* benchmarks) under the given partition mode and returns
// ns per epoch — one warm epoch, then the mean of two timed epochs — plus
// the trainer's stage imbalance (max/mean per-stage cost).
func timeEpochs(stages, replicas int, eng pipemare.Engine, mode pipemare.PartitionMode, extra ...pipemare.Option) (int64, float64, error) {
	if mode != pipemare.PartitionEven {
		extra = append(extra, pipemare.WithPartition(mode))
	}
	tr, err := experiments.NewReplicatedBenchTrainer(stages, replicas, eng, extra...)
	if err != nil {
		return 0, 0, err
	}
	if _, err := tr.Run(context.Background(), 1); err != nil { // warm
		return 0, 0, err
	}
	const epochs = 2
	start := time.Now()
	if _, err := tr.Run(context.Background(), epochs); err != nil {
		return 0, 0, err
	}
	return time.Since(start).Nanoseconds() / epochs, tr.StageImbalance(), nil
}
