// Command pipemare-bench regenerates the tables and figures of the
// PipeMare paper's evaluation. Run with no arguments to list experiments,
// with experiment names to run them, or with "all" for everything.
//
//	pipemare-bench               # list experiments
//	pipemare-bench table1 fig3a  # run selected experiments (quick scale)
//	pipemare-bench -full table2  # reference-scale run
//	pipemare-bench all           # every experiment at quick scale
//	pipemare-bench -engine concurrent table2   # stage-worker engine
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at reference (paper) scale instead of quick scale")
	engineName := flag.String("engine", "reference", "execution engine for training runs: reference | concurrent")
	flag.Parse()
	switch *engineName {
	case "reference":
	case "concurrent":
		experiments.EngineFactory = func() pipemare.Engine { return concurrent.New() }
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown engine %q (want reference or concurrent)\n", *engineName)
		os.Exit(2)
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("usage: pipemare-bench [-full] <experiment>... | all")
		fmt.Println("\navailable experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-11s %s\n", e.Name, e.Title)
		}
		return
	}
	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, name := range args {
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pipemare-bench: unknown experiment %q (run without arguments to list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
}
