// Command pipemare-bench regenerates the tables and figures of the
// PipeMare paper's evaluation. Run with no arguments to list experiments,
// with experiment names to run them, or with "all" for everything.
//
//	pipemare-bench               # list experiments
//	pipemare-bench table1 fig3a  # run selected experiments (quick scale)
//	pipemare-bench -full table2  # reference-scale run
//	pipemare-bench all           # every experiment at quick scale
//	pipemare-bench -engine concurrent table2   # stage-worker engine
//	pipemare-bench -json         # engine perf record → BENCH_engine.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at reference (paper) scale instead of quick scale")
	engineName := flag.String("engine", "reference", "execution engine for training runs: reference | concurrent")
	jsonOut := flag.Bool("json", false, "benchmark the engines on the transformer workload and write BENCH_engine.json")
	flag.Parse()
	switch *engineName {
	case "reference":
	case "concurrent":
		experiments.EngineFactory = func() pipemare.Engine { return concurrent.New() }
	default:
		fmt.Fprintf(os.Stderr, "pipemare-bench: unknown engine %q (want reference or concurrent)\n", *engineName)
		os.Exit(2)
	}
	if *jsonOut {
		if err := benchEngines("BENCH_engine.json"); err != nil {
			fmt.Fprintf(os.Stderr, "pipemare-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("usage: pipemare-bench [-full] <experiment>... | all")
		fmt.Println("\navailable experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-11s %s\n", e.Name, e.Title)
		}
		return
	}
	var selected []experiments.Experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments.All()
	} else {
		for _, name := range args {
			e, ok := experiments.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "pipemare-bench: unknown experiment %q (run without arguments to list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		start := time.Now()
		e.Run(os.Stdout, scale)
		fmt.Printf("--- %s done in %.1fs ---\n", e.Name, time.Since(start).Seconds())
	}
}

// benchRecord is one engine×stages measurement of the transformer
// workload. OverlapEfficiency is speedup/P: the fraction of perfect P-way
// stage overlap the concurrent engine realizes over Reference (1.0 would
// be a linear-in-P win; on a single-core runner it sits near 1/P because
// there is no hardware to overlap onto).
type benchRecord struct {
	Engine            string  `json:"engine"`
	Stages            int     `json:"stages"`
	NsPerEpoch        int64   `json:"ns_per_epoch"`
	Speedup           float64 `json:"speedup,omitempty"`            // vs reference at the same P
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"` // speedup / P
}

// benchFile is the BENCH_engine.json schema, one record per engine×P.
type benchFile struct {
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Records    []benchRecord `json:"records"`
}

// benchEngines times one training epoch of the transformer workload under
// the Reference and concurrent engines at P ∈ {4, 8} and writes the perf
// record, so the engine trajectory is tracked across PRs.
func benchEngines(path string) error {
	out := benchFile{Workload: experiments.EngineBenchWorkload,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, p := range []int{4, 8} {
		refNs, err := timeEpochs(p, pipemare.NewReferenceEngine())
		if err != nil {
			return err
		}
		concNs, err := timeEpochs(p, concurrent.New())
		if err != nil {
			return err
		}
		speedup := float64(refNs) / float64(concNs)
		out.Records = append(out.Records,
			benchRecord{Engine: "reference", Stages: p, NsPerEpoch: refNs},
			benchRecord{Engine: "concurrent", Stages: p, NsPerEpoch: concNs,
				Speedup: speedup, OverlapEfficiency: speedup / float64(p)})
		fmt.Printf("P=%d: reference %.2fs/epoch, concurrent %.2fs/epoch (speedup %.2fx, overlap efficiency %.2f)\n",
			p, float64(refNs)/1e9, float64(concNs)/1e9, speedup, speedup/float64(p))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// timeEpochs builds the benchmark trainer (the same workload as the root
// BenchmarkEngine* benchmarks) and returns ns per epoch: one warm epoch,
// then the mean of two timed epochs.
func timeEpochs(stages int, eng pipemare.Engine) (int64, error) {
	tr, err := experiments.NewEngineBenchTrainer(stages, eng)
	if err != nil {
		return 0, err
	}
	if _, err := tr.Run(context.Background(), 1); err != nil { // warm
		return 0, err
	}
	const epochs = 2
	start := time.Now()
	if _, err := tr.Run(context.Background(), epochs); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds() / epochs, nil
}
