package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pipemare"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/experiments"
	"pipemare/internal/faults"
	"pipemare/internal/transport"
)

// parseFaults compiles a -faults spec into an injection script. The spec
// is a comma-separated rule list, each rule op@N[:dur], counting the
// leader's outbound chunk requests (MsgRunChunk) on the first follower's
// link:
//
//	drop@N      swallow the Nth chunk request (transient; the retry
//	            layer resends it and the curve must not move)
//	delay@N:d   stall the Nth chunk request for d (default 2ms)
//	kill@N      sever the connection at the Nth chunk request (fatal;
//	            the leader must evict the replica and replay)
func parseFaults(spec string) (*faults.Script, error) {
	var rules []faults.Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault rule %q: want op@N[:dur]", part)
		}
		nStr, durStr, hasDur := strings.Cut(rest, ":")
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fault rule %q: N must be a positive chunk ordinal", part)
		}
		r := faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: n}
		switch op {
		case "drop":
			r.Op = faults.Drop
		case "delay":
			r.Op = faults.Delay
			r.Delay = 2 * time.Millisecond
			if hasDur {
				d, err := time.ParseDuration(durStr)
				if err != nil {
					return nil, fmt.Errorf("fault rule %q: %w", part, err)
				}
				r.Delay = d
			}
		case "kill":
			r.Op = faults.Kill
		default:
			return nil, fmt.Errorf("fault rule %q: unknown op (want drop, delay or kill)", part)
		}
		if hasDur && op != "delay" {
			return nil, fmt.Errorf("fault rule %q: only delay takes a duration", part)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("empty -faults spec")
	}
	return faults.NewScript(rules...), nil
}

// benchFaults measures what recovery costs: one epoch of the benchmark
// workload at P=4, R=2 with the spec's faults injected on the leader's
// link to its only remote follower, fault tolerance on and a checkpoint
// every 4 steps. The resulting row records the epoch wall time alongside
// how many replicas were evicted, the wall time spent inside
// eviction+replay, and the wall time spent writing checkpoints — the
// recovery overhead the fault-free rows at the same key don't pay.
func benchFaults(out *benchFile, spec, transportName, workerBin string) error {
	const p, r = 4, 2
	script, err := parseFaults(spec)
	if err != nil {
		return err
	}
	dialers, release, err := startFollowers(transportName, workerBin, p, r-1)
	if err != nil {
		return err
	}
	if len(dialers) == 0 {
		return fmt.Errorf("-faults needs a wire transport (loopback or tcp) to inject into")
	}
	dialers[0] = &faults.Dialer{Inner: dialers[0], Script: script}
	ckdir, err := os.MkdirTemp("", "pipemare-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(ckdir)
	rep := replicated.New()
	tr, err := experiments.NewReplicatedBenchTrainer(p, r, rep,
		pipemare.WithTransport(dialers...),
		pipemare.WithShardedStep(false),
		pipemare.WithFaultTolerance(),
		pipemare.WithCheckpoint(ckdir, 4))
	if err != nil {
		release()
		return err
	}
	start := time.Now()
	_, runErr := tr.Run(context.Background(), 1)
	ns := time.Since(start).Nanoseconds()
	evictions, recoveryNs := rep.FaultStats()
	_, checkpointNs := tr.CheckpointStats()
	closeErr := tr.Close()
	relErr := release()
	if runErr != nil {
		return fmt.Errorf("faulted run (%s): %w", spec, runErr)
	}
	if closeErr != nil {
		return closeErr
	}
	// A severed follower's serve loop ends in an error by design; only
	// surface release failures when nothing was evicted.
	if relErr != nil && evictions == 0 {
		return fmt.Errorf("%s follower: %w", transportName, relErr)
	}
	out.upsert(benchRecord{Engine: "replicated(reference)", Stages: p, Replicas: r,
		Partition: "even", Commit: "serial", Transport: transportName, Dtype: dtypeName, Faults: spec,
		NsPerEpoch: ns, Evictions: evictions, RecoveryNs: recoveryNs, CheckpointNs: checkpointNs})
	fmt.Printf("P=%d R=%d faults=%s (%s): %.2fs/epoch, %d evicted, recovery %.1fms, checkpoints %.1fms\n",
		p, r, spec, transportName, float64(ns)/1e9, evictions,
		float64(recoveryNs)/1e6, float64(checkpointNs)/1e6)
	return nil
}
