package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"pipemare"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/experiments"
)

// parseJoin validates a -join spec: a single join@N rule, where N is the
// leader optimizer step the joiner asks to be admitted at (it dials
// immediately and is parked until the first minibatch boundary at or
// after step N). The workload runs 8 steps per epoch, so N must leave
// room for the joiner to actually train.
func parseJoin(spec string) (int, error) {
	op, rest, ok := strings.Cut(strings.TrimSpace(spec), "@")
	if !ok || op != "join" {
		return 0, fmt.Errorf("join rule %q: want join@N", spec)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("join rule %q: N must be a positive leader step", spec)
	}
	if n > 6 {
		return 0, fmt.Errorf("join rule %q: the one-epoch workload runs 8 steps; join at 6 or earlier so the joiner trains", spec)
	}
	return n, nil
}

// benchJoin measures what elastic scale-up costs: one epoch of the
// benchmark workload starting at P=4, R=2 with a third replica joining
// mid-run at the spec's step over the chosen transport ("loopback" runs
// the joiner as an in-process goroutine, "tcp" spawns a `pipemare-worker
// -join` process). The resulting row records the epoch wall time
// alongside how many members were admitted and the wall time spent
// inside live state handoffs — the admission overhead the
// static-membership rows at the same key don't pay.
func benchJoin(out *benchFile, spec, transportName, workerBin string) error {
	const p, r = 4, 2
	joinStep, err := parseJoin(spec)
	if err != nil {
		return err
	}
	dialers, release, err := startFollowers(transportName, workerBin, p, r-1)
	if err != nil {
		return err
	}
	if len(dialers) == 0 {
		release()
		return fmt.Errorf("-join needs a wire transport (loopback or tcp) for the joiner")
	}
	jctx, jcancel := context.WithCancel(context.Background())
	defer jcancel()
	var jlis pipemare.Listener
	joinDone := make(chan error, 1)
	switch transportName {
	case "loopback":
		lis, dial := pipemare.Loopback()
		jlis = lis
		go func() {
			opts := append(experiments.EngineBenchOptions(p), pipemare.WithJoinAt(joinStep))
			joinDone <- pipemare.JoinFollower(jctx, dial, experiments.EngineBenchTask(), opts...)
		}()
	case "tcp":
		lis, err := pipemare.ListenTCP("127.0.0.1:0")
		if err != nil {
			release()
			return err
		}
		jlis = lis
		cmd := exec.Command(workerBin,
			"-join", lis.Addr(), "-join-at", strconv.Itoa(joinStep), "-stages", strconv.Itoa(p),
			"-dtype", dtypeName)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			release()
			return fmt.Errorf("spawning %s -join: %w", workerBin, err)
		}
		go func() { joinDone <- cmd.Wait() }()
	}
	rep := replicated.New()
	tr, err := experiments.NewReplicatedBenchTrainer(p, r, rep,
		pipemare.WithTransport(dialers...),
		pipemare.WithShardedStep(false),
		pipemare.WithElastic())
	if err != nil {
		release()
		return err
	}
	if err := tr.AcceptJoins(jlis); err != nil {
		tr.Close()
		release()
		return err
	}
	start := time.Now()
	_, runErr := tr.Run(context.Background(), 1)
	ns := time.Since(start).Nanoseconds()
	joins, demotions, handoffNs := tr.ElasticStats()
	grown := tr.Replicas()
	closeErr := tr.Close()
	jcancel()
	jerr := <-joinDone
	relErr := release()
	if runErr != nil {
		return fmt.Errorf("elastic run (%s): %w", spec, runErr)
	}
	if closeErr != nil {
		return closeErr
	}
	if relErr != nil {
		return fmt.Errorf("%s follower: %w", transportName, relErr)
	}
	if joins < 1 || grown != r+1 {
		return fmt.Errorf("elastic run (%s): %d joins grew membership to %d replicas, want 1 join growing to %d",
			spec, joins, grown, r+1)
	}
	if jerr != nil && !errors.Is(jerr, context.Canceled) {
		return fmt.Errorf("%s joiner: %w", transportName, jerr)
	}
	out.upsert(benchRecord{Engine: "replicated(reference)", Stages: p, Replicas: r,
		Partition: "even", Commit: "serial", Transport: transportName, Dtype: dtypeName, Join: spec,
		NsPerEpoch: ns, Joins: joins, Demotions: demotions, HandoffNs: handoffNs})
	fmt.Printf("P=%d R=%d join=%s (%s): %.2fs/epoch, %d joined (now R=%d), handoff %.1fms\n",
		p, r, spec, transportName, float64(ns)/1e9, joins, grown, float64(handoffNs)/1e6)
	return nil
}
