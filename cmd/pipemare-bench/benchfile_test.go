package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pipemare/internal/experiments"
)

// TestUpsertKeyKeepsAllVariantRows is the merge regression test: records
// differing in ANY key dimension — engine, stages, replicas, partition,
// workers, commit, transport, dtype, faults, join — must coexist, and
// re-measuring one key must replace exactly that row. Before PR 4 the
// workers dimension was missing from the key and W-variant rows
// clobbered each other; the commit, transport, faults and join
// dimensions get the same guard here (a fault-injected recovery row or
// a churn row must never overwrite the fault-free static-membership
// baseline at the same configuration, and vice versa).
func TestUpsertKeyKeepsAllVariantRows(t *testing.T) {
	base := benchRecord{Engine: "concurrent", Stages: 8, Replicas: 1, Partition: "even", Workers: 4, NsPerEpoch: 100}
	variants := []benchRecord{
		base,
		{Engine: "reference", Stages: 8, Replicas: 1, Partition: "even", NsPerEpoch: 101},
		{Engine: "concurrent", Stages: 4, Replicas: 1, Partition: "even", Workers: 4, NsPerEpoch: 102},
		{Engine: "concurrent", Stages: 8, Replicas: 1, Partition: "cost", Workers: 4, NsPerEpoch: 103},
		{Engine: "concurrent", Stages: 8, Replicas: 1, Partition: "even", Workers: 1, NsPerEpoch: 104},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", NsPerEpoch: 105},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "sharded", NsPerEpoch: 106},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 4, Partition: "even", Commit: "sharded", NsPerEpoch: 107},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "loopback", NsPerEpoch: 108},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "tcp", NsPerEpoch: 109},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "loopback", Faults: "kill@3", NsPerEpoch: 110, Evictions: 1},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "loopback", Faults: "drop@2", NsPerEpoch: 111},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "loopback", Join: "join@2", NsPerEpoch: 112, Joins: 1, HandoffNs: 5},
		{Engine: "replicated(reference)", Stages: 8, Replicas: 2, Partition: "even", Commit: "serial", Transport: "loopback", Join: "join@4", NsPerEpoch: 113, Joins: 1, HandoffNs: 6},
		{Engine: "concurrent", Stages: 8, Replicas: 1, Partition: "even", Workers: 4, Dtype: "float32", NsPerEpoch: 114},
	}
	var b benchFile
	for _, r := range variants {
		b.upsert(r)
	}
	if len(b.Records) != len(variants) {
		t.Fatalf("%d records after upserting %d distinct keys — variant rows clobbered each other", len(b.Records), len(variants))
	}
	// Replacing an existing key touches exactly that row.
	updated := base
	updated.NsPerEpoch = 999
	b.upsert(updated)
	if len(b.Records) != len(variants) {
		t.Fatalf("re-measuring an existing key changed the row count to %d", len(b.Records))
	}
	for _, r := range b.Records {
		want := int64(999)
		if r.key() != base.key() {
			continue
		}
		if r.NsPerEpoch != want {
			t.Fatalf("re-measured row holds %d ns, want %d", r.NsPerEpoch, want)
		}
	}
	for i, r := range variants[1:] {
		if got := b.Records[i+1].NsPerEpoch; got != r.NsPerEpoch {
			t.Fatalf("unrelated row %d changed: %d ns, want %d", i+1, got, r.NsPerEpoch)
		}
	}
}

// TestTraceMetricsAreNotKeyDimensions pins the observability fields'
// merge behavior: bubble_fraction and mfu are derived metrics, not key
// dimensions, so re-measuring a key replaces the old row's trace metrics
// instead of forking a duplicate row — and rows written before the
// fields existed (zero values) land on the same key as a traced
// re-measurement and survive normalize unchanged.
func TestTraceMetricsAreNotKeyDimensions(t *testing.T) {
	plain := benchRecord{Engine: "concurrent", Stages: 4, Replicas: 1,
		Partition: "even", Workers: 2, Transport: "inproc", NsPerEpoch: 100}
	traced := plain
	traced.NsPerEpoch = 90
	traced.BubbleFraction = 0.25
	traced.MFU = 0.75
	if plain.key() != traced.key() {
		t.Fatal("bubble_fraction/mfu leaked into the merge key")
	}
	var b benchFile
	b.upsert(plain)
	b.upsert(traced)
	if len(b.Records) != 1 {
		t.Fatalf("traced re-measurement forked %d rows, want 1", len(b.Records))
	}
	if r := b.Records[0]; r.BubbleFraction != 0.25 || r.MFU != 0.75 || r.NsPerEpoch != 90 {
		t.Fatalf("traced re-measurement did not replace the row: %+v", r)
	}
	// An untraced re-measurement clears the stale metrics with the row.
	b.upsert(plain)
	if r := b.Records[0]; r.BubbleFraction != 0 || r.MFU != 0 {
		t.Fatalf("untraced re-measurement kept stale trace metrics: %+v", r)
	}
	// Legacy rows (pre-field zero values) normalize without invention.
	recs := []benchRecord{{Engine: "reference", Stages: 4, NsPerEpoch: 1}}
	normalize(recs)
	if recs[0].BubbleFraction != 0 || recs[0].MFU != 0 {
		t.Fatalf("normalize invented trace metrics: %+v", recs[0])
	}
	// omitempty keeps legacy-shaped files legacy-shaped: a metric-less
	// row round-trips without the new fields appearing at all.
	raw, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"bubble_fraction", "mfu"} {
		if bytes.Contains(raw, []byte(field)) {
			t.Errorf("zero %s serialized: %s", field, raw)
		}
	}
	raw, err = json.Marshal(traced)
	if err != nil {
		t.Fatal(err)
	}
	var back benchRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.BubbleFraction != 0.25 || back.MFU != 0.75 {
		t.Fatalf("trace metrics did not round-trip: %+v", back)
	}
}

// TestParseFaults pins the -faults spec grammar: op@N[:dur] rules over
// the leader's outbound chunk requests, with malformed specs rejected
// before any trainer is built.
func TestParseFaults(t *testing.T) {
	for _, spec := range []string{"kill@3", "drop@1", "delay@2", "delay@2:5ms", "drop@2, kill@5"} {
		if _, err := parseFaults(spec); err != nil {
			t.Errorf("parseFaults(%q) = %v, want ok", spec, err)
		}
	}
	for _, spec := range []string{"", "kill", "kill@0", "kill@-1", "kill@x", "explode@3", "kill@3:5ms", "delay@2:xx"} {
		if _, err := parseFaults(spec); err == nil {
			t.Errorf("parseFaults(%q) succeeded, want error", spec)
		}
	}
}

// TestParseJoin pins the -join spec grammar: a single join@N rule where
// N is a leader step leaving the joiner room to train inside the
// one-epoch (8-step) workload.
func TestParseJoin(t *testing.T) {
	for spec, want := range map[string]int{"join@1": 1, "join@2": 2, " join@6 ": 6} {
		n, err := parseJoin(spec)
		if err != nil || n != want {
			t.Errorf("parseJoin(%q) = %d, %v, want %d, nil", spec, n, err, want)
		}
	}
	for _, spec := range []string{"", "join", "join@0", "join@-1", "join@x", "join@7", "demote@2", "join@2,join@4"} {
		if _, err := parseJoin(spec); err == nil {
			t.Errorf("parseJoin(%q) succeeded, want error", spec)
		}
	}
}

// TestNormalizeUpgradesLegacyRows pins the legacy-row upgrade rules, so
// old files merge onto the same keys a re-measurement produces: missing
// replicas/partition default to 1/"even", workers-less concurrent rows
// come from the goroutine-per-stage era (one worker per stage),
// commit-less replicated rows predate the sharded step (leader-serial),
// and transport-less rows predate the wire subsystem (in-process).
func TestNormalizeUpgradesLegacyRows(t *testing.T) {
	recs := []benchRecord{
		{Engine: "concurrent", Stages: 8, NsPerEpoch: 1},
		{Engine: "reference", Stages: 4, NsPerEpoch: 2},
		{Engine: "replicated(reference)", Stages: 4, Replicas: 2, Partition: "even", NsPerEpoch: 3},
	}
	normalize(recs)
	if r := recs[0]; r.Replicas != 1 || r.Partition != "even" || r.Workers != 8 || r.Commit != "" {
		t.Fatalf("legacy concurrent row normalized to %+v", r)
	}
	if r := recs[1]; r.Replicas != 1 || r.Partition != "even" || r.Workers != 0 {
		t.Fatalf("legacy reference row normalized to %+v", r)
	}
	if r := recs[2]; r.Commit != "serial" {
		t.Fatalf("legacy replicated row commit = %q, want serial", r.Commit)
	}
	for i, r := range recs {
		if r.Transport != "inproc" {
			t.Fatalf("legacy row %d transport = %q, want inproc", i, r.Transport)
		}
		if r.Dtype != "float64" {
			t.Fatalf("legacy row %d dtype = %q, want float64", i, r.Dtype)
		}
	}
}

// TestFloat32RowsNeverClobberFloat64 pins the dtype merge dimension: a
// float32 measurement of a configuration must coexist with the float64
// history at the otherwise-identical key — including legacy rows written
// before dtype existed, which normalize to "float64" — and re-measuring
// either dtype must replace exactly its own row. Without dtype in the
// key, the first `pipemare-bench -json -dtype float32` run would wipe
// every float64 baseline it re-measured.
func TestFloat32RowsNeverClobberFloat64(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	legacy := benchFile{Workload: experiments.EngineBenchWorkload, GoMaxProcs: 1, NumCPU: 1}
	// Pre-dtype rows: no dtype field on disk.
	legacy.Records = []benchRecord{
		{Engine: "reference", Stages: 4, Replicas: 1, Partition: "even", Transport: "inproc", NsPerEpoch: 3400},
		{Engine: "concurrent", Stages: 4, Replicas: 1, Partition: "even", Workers: 4, Transport: "inproc", NsPerEpoch: 2400},
	}
	if err := legacy.write(path); err != nil {
		t.Fatal(err)
	}
	b := loadBenchFile(path)
	// A -dtype float32 run measures the same configurations.
	b.upsert(benchRecord{Engine: "reference", Stages: 4, Replicas: 1,
		Partition: "even", Transport: "inproc", Dtype: "float32", NsPerEpoch: 1500})
	b.upsert(benchRecord{Engine: "concurrent", Stages: 4, Replicas: 1,
		Partition: "even", Workers: 4, Transport: "inproc", Dtype: "float32", NsPerEpoch: 1100})
	if len(b.Records) != 4 {
		t.Fatalf("float32 run left %d records, want 4 — it clobbered the float64 history", len(b.Records))
	}
	if b.Records[0].NsPerEpoch != 3400 || b.Records[1].NsPerEpoch != 2400 {
		t.Fatalf("float64 baselines changed: %+v", b.Records[:2])
	}
	// Re-measuring float32 replaces only the float32 row.
	b.upsert(benchRecord{Engine: "reference", Stages: 4, Replicas: 1,
		Partition: "even", Transport: "inproc", Dtype: "float32", NsPerEpoch: 1400})
	if len(b.Records) != 4 {
		t.Fatalf("float32 re-measurement forked to %d records, want 4", len(b.Records))
	}
	if b.Records[2].NsPerEpoch != 1400 || b.Records[0].NsPerEpoch != 3400 {
		t.Fatalf("float32 re-measurement landed wrong: %+v", b.Records)
	}
	// And a float64 re-measurement lands on the upgraded legacy row.
	b.upsert(benchRecord{Engine: "reference", Stages: 4, Replicas: 1,
		Partition: "even", Transport: "inproc", Dtype: "float64", NsPerEpoch: 3300})
	if len(b.Records) != 4 || b.Records[0].NsPerEpoch != 3300 {
		t.Fatalf("float64 re-measurement did not replace the legacy row: %+v", b.Records)
	}
	// Round-trip: both dtypes survive on disk.
	if err := b.write(path); err != nil {
		t.Fatal(err)
	}
	reread := loadBenchFile(path)
	if len(reread.Records) != 4 {
		t.Fatalf("file round-trip holds %d records, want 4", len(reread.Records))
	}
	dtypes := map[string]int{}
	for _, r := range reread.Records {
		dtypes[r.Dtype]++
	}
	if dtypes["float64"] != 2 || dtypes["float32"] != 2 {
		t.Fatalf("round-trip dtype split %v, want 2 float64 + 2 float32", dtypes)
	}
}

// TestLoadBenchFileMergesAcrossRuns pins the end-to-end merge: a file
// written by one "run" survives a second run measuring different keys,
// with legacy rows upgraded rather than duplicated.
func TestLoadBenchFileMergesAcrossRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	first := benchFile{Workload: experiments.EngineBenchWorkload, GoMaxProcs: 1, NumCPU: 1}
	// A legacy replicated row (no commit field) and a concurrent row.
	first.Records = []benchRecord{
		{Engine: "replicated(reference)", Stages: 4, Replicas: 2, Partition: "even", NsPerEpoch: 10},
		{Engine: "concurrent", Stages: 4, Replicas: 1, Partition: "even", Workers: 4, NsPerEpoch: 11},
	}
	if err := first.write(path); err != nil {
		t.Fatal(err)
	}
	second := loadBenchFile(path)
	if len(second.Records) != 2 {
		t.Fatalf("loaded %d records, want 2", len(second.Records))
	}
	// The second run re-measures the legacy replicated config serially and
	// adds a sharded row: the serial measurement must land on the upgraded
	// legacy row, the sharded one must be new.
	second.upsert(benchRecord{Engine: "replicated(reference)", Stages: 4, Replicas: 2,
		Partition: "even", Commit: "serial", Transport: "inproc", Dtype: "float64", NsPerEpoch: 20})
	second.upsert(benchRecord{Engine: "replicated(reference)", Stages: 4, Replicas: 2,
		Partition: "even", Commit: "sharded", Transport: "inproc", Dtype: "float64", NsPerEpoch: 21})
	if len(second.Records) != 3 {
		t.Fatalf("merge produced %d records, want 3 (serial replaced, sharded appended)", len(second.Records))
	}
	if second.Records[0].NsPerEpoch != 20 {
		t.Fatalf("serial re-measurement did not replace the upgraded legacy row: %+v", second.Records[0])
	}
	if err := second.write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk benchFile
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if len(onDisk.Records) != 3 {
		t.Fatalf("file round-trip holds %d records, want 3", len(onDisk.Records))
	}
	// A different workload starts fresh instead of mis-merging.
	other := benchFile{Workload: "something else"}
	if err := other.write(path); err != nil {
		t.Fatal(err)
	}
	if fresh := loadBenchFile(path); len(fresh.Records) != 0 || fresh.Workload != experiments.EngineBenchWorkload {
		t.Fatalf("different-workload file did not start fresh: %+v", fresh)
	}
}
