package main

import (
	"encoding/json"
	"os"

	"pipemare/internal/experiments"
)

// benchRecord is one engine×stages×replicas×partition×workers×commit
// measurement of the transformer workload. OverlapEfficiency is speedup/P:
// the fraction of perfect P-way stage overlap the concurrent engine
// realizes over Reference (on a single-core runner it sits near 1/P
// because there is no hardware to overlap onto). StageImbalance is
// max/mean per-stage cost under the record's partition — what cost
// balancing buys shows up as this dropping toward 1.0 together with the
// speedup rising. For replicated records the speedup is against
// single-replica Reference at the same P, ScalingEfficiency is speedup/R,
// and Commit records whether the optimizer step ran leader-serial
// ("serial") or replica-sharded ("sharded") — the sharded rows are what
// show the commit tail no longer scaling with total model size on the
// leader. BubbleFraction and MFU come from a one-epoch traced re-run of
// the row's configuration (see tracedMetrics): the idle share of
// worker-track time and the cost-model ideal wall over the traced wall.
// Like the other derived metrics they are not part of the merge key.
type benchRecord struct {
	Engine            string  `json:"engine"`
	Stages            int     `json:"stages"`
	Replicas          int     `json:"replicas"`
	Partition         string  `json:"partition"`
	Workers           int     `json:"workers,omitempty"`   // scheduler workers (concurrent engine)
	Commit            string  `json:"commit,omitempty"`    // replicated rows: serial | sharded
	Transport         string  `json:"transport,omitempty"` // inproc | loopback | tcp
	Dtype             string  `json:"dtype,omitempty"`     // float64 | float32 (element type of model state)
	Faults            string  `json:"faults,omitempty"`    // injected fault script (-faults), "" = fault-free
	Join              string  `json:"join,omitempty"`      // injected churn script (-join), "" = static membership
	NsPerEpoch        int64   `json:"ns_per_epoch"`
	Speedup           float64 `json:"speedup,omitempty"`            // vs reference at the same P, R=1
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"` // speedup / P
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"` // speedup / R
	StageImbalance    float64 `json:"stage_imbalance,omitempty"`    // max/mean per-stage cost
	Evictions         int     `json:"evictions,omitempty"`          // replicas evicted during the faulted run
	RecoveryNs        int64   `json:"recovery_ns,omitempty"`        // wall time spent in eviction + replay
	CheckpointNs      int64   `json:"checkpoint_ns,omitempty"`      // wall time spent writing checkpoints
	Joins             int     `json:"joins,omitempty"`              // members admitted mid-run (joins + rejoins)
	Demotions         int     `json:"demotions,omitempty"`          // stragglers demoted to standby
	HandoffNs         int64   `json:"handoff_ns,omitempty"`         // wall time spent in live state handoffs
	BubbleFraction    float64 `json:"bubble_fraction,omitempty"`    // traced idle share of worker-track time (1 epoch)
	MFU               float64 `json:"mfu,omitempty"`                // traced cost-model-ideal wall / measured wall
}

// key is the full merge identity of a record. Every dimension that can
// legitimately vary between measured rows must appear here, or a re-run
// measuring one variant clobbers the others (the workers dimension had
// exactly that bug before PR 4; the commit dimension is guarded by the
// regression tests alongside this file).
type benchKey struct {
	engine    string
	stages    int
	replicas  int
	partition string
	workers   int
	commit    string
	transport string
	dtype     string
	faults    string
	join      string
}

func (r benchRecord) key() benchKey {
	return benchKey{r.Engine, r.Stages, r.Replicas, r.Partition, r.Workers, r.Commit, r.Transport, r.Dtype, r.Faults, r.Join}
}

// benchFile is the BENCH_engine.json schema, one record per merge key.
type benchFile struct {
	Workload   string        `json:"workload"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Records    []benchRecord `json:"records"`
}

// normalize upgrades records written before a key dimension existed, so
// legacy rows land on the same merge identity a re-measurement of the
// same configuration produces instead of surviving as unreachable
// duplicates: replicas 1 and partition "even" predate those fields;
// concurrent rows without a workers count come from the
// goroutine-per-stage era, which pinned one worker to every stage; and
// replicated rows without a commit mode predate the sharded step, which
// only ever ran leader-serial; rows without a transport predate the
// wire subsystem, when every replica lived in the leader's process; and
// rows without a dtype predate the generic-dtype tensors, when every
// run trained float64 — so a float32 measurement lands on its own key
// and never clobbers the float64 history.
func normalize(recs []benchRecord) {
	for i := range recs {
		r := &recs[i]
		if r.Replicas == 0 {
			r.Replicas = 1
		}
		if r.Partition == "" {
			r.Partition = "even"
		}
		if r.Workers == 0 && r.Engine == "concurrent" {
			r.Workers = r.Stages
		}
		if r.Commit == "" && r.Replicas > 1 {
			r.Commit = "serial"
		}
		if r.Transport == "" {
			r.Transport = "inproc"
		}
		if r.Dtype == "" {
			r.Dtype = "float64"
		}
	}
}

// loadBenchFile reads an existing perf record so a re-run merges into it
// instead of overwriting rows it did not measure (e.g. another engine×P
// combination recorded on a different runner). A missing, unreadable or
// different-workload file starts fresh.
func loadBenchFile(path string) benchFile {
	out := benchFile{Workload: experiments.EngineBenchWorkload}
	raw, err := os.ReadFile(path)
	if err != nil {
		return out
	}
	var prev benchFile
	if json.Unmarshal(raw, &prev) != nil || prev.Workload != experiments.EngineBenchWorkload {
		return out
	}
	normalize(prev.Records)
	out.Records = prev.Records
	return out
}

// upsert replaces the record sharing rec's full merge key or appends it.
func (b *benchFile) upsert(rec benchRecord) {
	k := rec.key()
	for i, r := range b.Records {
		if r.key() == k {
			b.Records[i] = rec
			return
		}
	}
	b.Records = append(b.Records, rec)
}

// write persists the merged record set.
func (b *benchFile) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
