// Command pipeviz renders the bubble-free pipeline schedule of §2 as
// ASCII (Figure 1): which microbatch each stage is forwarding and
// backwarding at every slot, and the weight version it reads.
//
//	pipeviz -p 4 -n 2 -slots 16
package main

import (
	"flag"
	"fmt"
	"strings"

	"pipemare/internal/pipeline"
)

func main() {
	p := flag.Int("p", 4, "pipeline stages")
	n := flag.Int("n", 2, "microbatches per minibatch")
	slots := flag.Int("slots", 20, "time slots to render")
	flag.Parse()

	clock := pipeline.Clock{P: *p, N: *n}
	fmt.Printf("bubble-free pipeline: P=%d stages, N=%d microbatches/minibatch\n", *p, *n)
	fmt.Printf("forward of microbatch s at stage i occupies slot s+i-1; backward slot s+2P-i\n\n")

	header := "stage |"
	for t := 0; t < *slots; t++ {
		header += fmt.Sprintf("%8d", t)
	}
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for i1 := 1; i1 <= *p; i1++ {
		row := fmt.Sprintf("%5d |", i1)
		for t := 0; t < *slots; t++ {
			fwd, bwd := "  ", "  "
			if s := t - i1 + 1; s >= 0 {
				fwd = fmt.Sprintf("F%d", s%100)
			}
			if s := t - 2**p + i1; s >= 0 {
				bwd = fmt.Sprintf("B%d", s%100)
			}
			cell := "."
			if fwd != "  " || bwd != "  " {
				cell = strings.TrimSpace(fwd + ":" + bwd)
			}
			row += fmt.Sprintf("%8s", cell)
		}
		fmt.Println(row)
	}

	fmt.Printf("\nforward delays (Table 1): slot delay 2(P-i)+1, minibatch delay (2(P-i)+1)/N\n")
	for i1 := 1; i1 <= *p; i1++ {
		fmt.Printf("  stage %d: %2d slots = %.3f minibatches\n",
			i1, pipeline.FwdDelaySlots(i1, *p), pipeline.FwdDelay(i1, *p, *n))
	}
	s := 6 * *n
	fmt.Printf("\nweight versions read by microbatch %d (steady state):\n", s)
	for i1 := 1; i1 <= *p; i1++ {
		fmt.Printf("  stage %d: forward reads version %d; update consuming its gradient is %d\n",
			i1, clock.FwdVersion(s, i1), clock.Minibatch(s)+1)
	}
}
