// Command pipeviz renders the bubble-free pipeline schedule of §2 as
// ASCII (Figure 1): which microbatch each stage is forwarding and
// backwarding at every slot, and the weight version it reads. With
// -trace it renders a recorded run instead — the Chrome trace-event
// JSON written by `pipemare-bench -trace` or pipemare.WriteChromeTrace
// — as the same stage×time occupancy grid, so the analytic schedule and
// what the engines actually executed are compared side by side.
//
//	pipeviz -p 4 -n 2 -slots 16
//	pipeviz -trace out.json -replica 0 -slots 24
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"pipemare/internal/pipeline"
)

func main() {
	p := flag.Int("p", 4, "pipeline stages")
	n := flag.Int("n", 2, "microbatches per minibatch")
	slots := flag.Int("slots", 20, "time slots to render (analytic) or time buckets (trace)")
	traceFile := flag.String("trace", "", "render a recorded Chrome trace-event JSON (pipemare-bench -trace) instead of the analytic schedule")
	replica := flag.Int("replica", 0, "with -trace: the replica (trace pid) to render")
	flag.Parse()

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeviz: %v\n", err)
			os.Exit(1)
		}
		err = renderTrace(os.Stdout, f, *replica, *slots)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeviz: %v\n", err)
			os.Exit(1)
		}
		return
	}
	renderAnalytic(os.Stdout, *p, *n, *slots)
}

// renderAnalytic prints the paper's analytic bubble-free schedule:
// forward of microbatch s at stage i occupies slot s+i-1, backward slot
// s+2P-i, followed by the Table 1 forward delays and the steady-state
// weight versions.
func renderAnalytic(w io.Writer, p, n, slots int) {
	clock := pipeline.Clock{P: p, N: n}
	fmt.Fprintf(w, "bubble-free pipeline: P=%d stages, N=%d microbatches/minibatch\n", p, n)
	fmt.Fprintf(w, "forward of microbatch s at stage i occupies slot s+i-1; backward slot s+2P-i\n\n")

	header := "stage |"
	for t := 0; t < slots; t++ {
		header += fmt.Sprintf("%8d", t)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for i1 := 1; i1 <= p; i1++ {
		row := fmt.Sprintf("%5d |", i1)
		for t := 0; t < slots; t++ {
			fwd, bwd := "  ", "  "
			if s := t - i1 + 1; s >= 0 {
				fwd = fmt.Sprintf("F%d", s%100)
			}
			if s := t - 2*p + i1; s >= 0 {
				bwd = fmt.Sprintf("B%d", s%100)
			}
			cell := "."
			if fwd != "  " || bwd != "  " {
				cell = strings.TrimSpace(fwd + ":" + bwd)
			}
			row += fmt.Sprintf("%8s", cell)
		}
		fmt.Fprintln(w, row)
	}

	fmt.Fprintf(w, "\nforward delays (Table 1): slot delay 2(P-i)+1, minibatch delay (2(P-i)+1)/N\n")
	for i1 := 1; i1 <= p; i1++ {
		fmt.Fprintf(w, "  stage %d: %2d slots = %.3f minibatches\n",
			i1, pipeline.FwdDelaySlots(i1, p), pipeline.FwdDelay(i1, p, n))
	}
	s := 6 * n
	fmt.Fprintf(w, "\nweight versions read by microbatch %d (steady state):\n", s)
	for i1 := 1; i1 <= p; i1++ {
		fmt.Fprintf(w, "  stage %d: forward reads version %d; update consuming its gradient is %d\n",
			i1, clock.FwdVersion(s, i1), clock.Minibatch(s)+1)
	}
}

// traceEvent is the subset of a Chrome trace event pipeviz reads back.
// Ts and Dur are microseconds, as written by trace.WriteChrome.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Stage *int `json:"stage"`
		Micro *int `json:"micro"`
	} `json:"args"`
}

// computeSpan is one stage-scoped compute span of the rendered replica.
type computeSpan struct {
	kind       byte // 'F', 'B' or 'R'
	stage      int
	micro      int
	start, end float64 // µs
}

// renderTrace reads a Chrome trace-event JSON recording and renders one
// replica's compute spans (fwd/bwd/recompute) as a stage×time occupancy
// grid: time is bucketed into the requested number of columns, and each
// cell shows the microbatch whose forward (F), backward (B) or
// recompute (R) span covers most of the bucket on that stage — the
// recorded analogue of the analytic schedule's slot grid.
func renderTrace(w io.Writer, r io.Reader, replica, buckets int) error {
	var file struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("parsing trace: %w", err)
	}
	pids := map[int]bool{}
	var spans []computeSpan
	maxStage := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.Args.Stage == nil {
			continue
		}
		var kind byte
		switch ev.Name {
		case "fwd":
			kind = 'F'
		case "bwd":
			kind = 'B'
		case "recompute":
			kind = 'R'
		default:
			continue
		}
		pids[ev.Pid] = true
		if ev.Pid != replica {
			continue
		}
		micro := -1
		if ev.Args.Micro != nil {
			micro = *ev.Args.Micro
		}
		spans = append(spans, computeSpan{kind, *ev.Args.Stage, micro, ev.Ts, ev.Ts + ev.Dur})
		if *ev.Args.Stage > maxStage {
			maxStage = *ev.Args.Stage
		}
	}
	if len(spans) == 0 {
		var have []int
		for pid := range pids {
			have = append(have, pid)
		}
		sort.Ints(have)
		return fmt.Errorf("no compute spans for replica %d (replicas in trace: %v)", replica, have)
	}
	lo, hi := spans[0].start, spans[0].end
	for _, s := range spans[1:] {
		lo, hi = min(lo, s.start), max(hi, s.end)
	}
	if buckets < 1 {
		buckets = 1
	}
	width := (hi - lo) / float64(buckets)
	if width <= 0 {
		width = 1
	}

	fmt.Fprintf(w, "recorded pipeline occupancy: replica %d, %d stage(s), %v traced over %d buckets of %v\n",
		replica, maxStage+1, time.Duration((hi-lo)*1e3), buckets, time.Duration(width*1e3))
	fmt.Fprintf(w, "cells show the microbatch whose F(orward)/B(ackward)/R(ecompute) span covers most of the bucket\n\n")

	header := "stage |"
	for t := 0; t < buckets; t++ {
		header += fmt.Sprintf("%8d", t)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	busy := make(map[int]float64, maxStage+1)
	for st := 0; st <= maxStage; st++ {
		row := fmt.Sprintf("%5d |", st)
		for t := 0; t < buckets; t++ {
			bLo, bHi := lo+float64(t)*width, lo+float64(t+1)*width
			// Pick the span with the largest overlap with this bucket;
			// ties go to the earlier span so the rendering is stable.
			best, bestOv := computeSpan{}, 0.0
			for _, s := range spans {
				if s.stage != st {
					continue
				}
				ov := min(s.end, bHi) - max(s.start, bLo)
				if ov > bestOv {
					best, bestOv = s, ov
				}
			}
			cell := "."
			if bestOv > 0 {
				cell = fmt.Sprintf("%c%d", best.kind, best.micro%100)
			}
			row += fmt.Sprintf("%8s", cell)
		}
		fmt.Fprintln(w, row)
	}
	for _, s := range spans {
		busy[s.stage] += s.end - s.start
	}
	fmt.Fprintf(w, "\nper-stage busy time:\n")
	for st := 0; st <= maxStage; st++ {
		fmt.Fprintf(w, "  stage %d: %v (%.1f%% of the traced window)\n",
			st, time.Duration(busy[st]*1e3), 100*busy[st]/(hi-lo))
	}
	return nil
}
