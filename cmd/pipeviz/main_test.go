package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current rendering")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("rendering differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRenderAnalyticGolden(t *testing.T) {
	var buf bytes.Buffer
	renderAnalytic(&buf, 4, 2, 12)
	golden(t, "analytic.golden", buf.String())
}

// TestRenderAnalyticSchedule pins the schedule law independently of the
// golden file: forward of microbatch s at stage i sits in slot s+i-1.
func TestRenderAnalyticSchedule(t *testing.T) {
	var buf bytes.Buffer
	renderAnalytic(&buf, 2, 2, 6)
	out := buf.String()
	if !strings.Contains(out, "P=2 stages") {
		t.Errorf("missing header in:\n%s", out)
	}
	// Stage 2's first forward (s=0) lands in slot 1, its first backward
	// (s=0) in slot 2P-i = 2 — the row must show F1:B0 at slot 3.
	if !strings.Contains(out, "F1:B0") {
		t.Errorf("stage-2 steady state F1:B0 missing in:\n%s", out)
	}
}

func TestRenderTraceGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "sample_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var buf bytes.Buffer
	if err := renderTrace(&buf, f, 0, 8); err != nil {
		t.Fatal(err)
	}
	golden(t, "trace.golden", buf.String())
}

func TestRenderTraceSelectsReplica(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := renderTrace(&buf, bytes.NewReader(raw), 1, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replica 1") || !strings.Contains(out, "F2") {
		t.Errorf("replica 1 rendering missing its own span:\n%s", out)
	}
	if strings.Contains(out, "B0") {
		t.Errorf("replica 1 rendering leaked replica 0 spans:\n%s", out)
	}
}

func TestRenderTraceUnknownReplica(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	err = renderTrace(&bytes.Buffer{}, bytes.NewReader(raw), 7, 4)
	if err == nil || !strings.Contains(err.Error(), "replicas in trace: [0 1]") {
		t.Errorf("want an error listing the available replicas, got %v", err)
	}
}

func TestRenderTraceRejectsGarbage(t *testing.T) {
	if err := renderTrace(&bytes.Buffer{}, strings.NewReader("not json"), 0, 4); err == nil {
		t.Error("want a parse error for non-JSON input")
	}
}
