// Command pipemare-worker hosts one follower replica of the engine
// benchmark workload as a standalone process. A pipemare-bench leader
// (run with -transport tcp) dials it, and the handshake assigns the
// replica id, replica count and commit mode — the same invocation serves
// any follower slot.
//
//	pipemare-worker                    # listen on a free port, print it
//	pipemare-worker -addr :9400        # fixed port
//	pipemare-worker -engine concurrent # work-stealing chunk engine
//	pipemare-worker -crash-after 3     # kill -9 itself at its 3rd chunk
//	pipemare-worker -join :9500        # join a running elastic leader
//
// The worker prints "listening <addr>" once it accepts connections, so a
// spawning leader can scrape the resolved port, serves exactly one
// leader session, and exits 0 after a clean goodbye (Trainer.Close).
// SIGTERM drains: the serve loop unwinds at the next protocol boundary
// and the worker exits 0, so an orchestrator's ordinary stop is not an
// error. -crash-after N exits with status 137 (the kill -9 status) upon
// receiving the Nth chunk request — the reproducible mid-training crash
// the leader's fault-tolerance layer is tested against.
//
// With -join <addr> the worker dials instead of listening: it connects
// to a running WithElastic leader's join listener (retrying with
// backoff for up to -dial-timeout, so launch order does not matter),
// waits to be admitted at a minibatch boundary — no earlier than the
// leader step given by -join-at — receives the live state handoff, and
// serves as the new follower replica from there on. -addr and
// -crash-after are ignored when joining.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
	"pipemare/internal/faults"
	"pipemare/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	stages := flag.Int("stages", 4, "pipeline stages; must match the leader's -P")
	engineName := flag.String("engine", "reference", "chunk execution engine: reference | concurrent")
	workers := flag.Int("workers", 0, "scheduler workers for the concurrent engine (0 = min(P, GOMAXPROCS))")
	crashAfter := flag.Int("crash-after", 0, "exit(137) upon receiving the Nth chunk request (fault-injection testing; 0 disables)")
	joinAddr := flag.String("join", "", "dial a running elastic leader's join listener at this address instead of serving (mid-run join)")
	joinAt := flag.Int("join-at", 0, "earliest leader optimizer step to be admitted at (-join only; 0 = next minibatch boundary)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "dial retry/backoff budget for -join")
	dtypeName := flag.String("dtype", "float64", "element type model state trains in: float64 | float32; must match the leader's -dtype (the handshake checksum rejects a mismatch)")
	flag.Parse()

	switch *dtypeName {
	case "float64":
	case "float32":
		experiments.DType = pipemare.Float32
	default:
		fmt.Fprintf(os.Stderr, "pipemare-worker: unknown dtype %q (want float64 or float32)\n", *dtypeName)
		os.Exit(2)
	}

	opts := experiments.EngineBenchOptions(*stages)
	switch *engineName {
	case "reference":
	case "concurrent":
		opts = append(opts, pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(*workers))))
	default:
		fmt.Fprintf(os.Stderr, "pipemare-worker: unknown engine %q (want reference or concurrent)\n", *engineName)
		os.Exit(2)
	}

	if *joinAddr != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		opts = append(opts,
			pipemare.WithJoinAt(*joinAt),
			pipemare.WithDialTimeout(*dialTimeout))
		fmt.Printf("joining %s\n", *joinAddr)
		err := pipemare.JoinFollower(ctx, pipemare.DialTCP(*joinAddr), experiments.EngineBenchTask(), opts...)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, context.Canceled) {
				fmt.Println("drained (signal)")
				return
			}
			fmt.Fprintf(os.Stderr, "pipemare-worker: join: %v\n", err)
			os.Exit(1)
		}
		return
	}

	lis, err := pipemare.ListenTCP(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipemare-worker: %v\n", err)
		os.Exit(1)
	}
	defer lis.Close()
	fmt.Printf("listening %s\n", lis.Addr())

	served := pipemare.Listener(lis)
	if *crashAfter > 0 {
		served = &faults.Listener{Inner: lis, Script: faults.NewScript(faults.Rule{
			Dir: faults.Recv, Type: transport.MsgRunChunk, Nth: *crashAfter,
			Op: faults.Hook, Hook: func() { os.Exit(137) },
		})}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := pipemare.ServeFollower(ctx, served, experiments.EngineBenchTask(), opts...); err != nil {
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			// SIGTERM/SIGINT drain: an orchestrator asked us to stop; the
			// serve loop unwound cleanly at a protocol boundary.
			fmt.Println("drained (signal)")
			return
		}
		fmt.Fprintf(os.Stderr, "pipemare-worker: %v\n", err)
		os.Exit(1)
	}
}
