package pipemare_test

import (
	"context"
	"fmt"
	"testing"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

// dtypeTransformerBuild returns the small translation transformer the
// float32 equivalence tests train.
func dtypeTransformerBuild() (func() pipemare.Task, []pipemare.Option) {
	ds := data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5,
		Train: 64, Test: 16, Seed: 2})
	build := func() pipemare.Task {
		return model.NewTranslation(ds, model.TransformerConfig{
			Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	}
	opts := append(methodOpts(pipemare.PipeMare),
		pipemare.WithStages(8),
		pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 20}))
	return build, opts
}

// TestFloat32EnginesEquivalentOnTransformer pins the per-dtype
// determinism contract on the stage-split transformer: under
// WithDType(Float32), the float32 Reference curve is the ground truth,
// and the work-stealing engine must reproduce it bit for bit at every
// worker count — the same pin the float64 path has always had. The
// float32 curve must also differ from the float64 one: a cast that
// silently never happened would pass the equivalence vacuously.
func TestFloat32EnginesEquivalentOnTransformer(t *testing.T) {
	build, base := dtypeTransformerBuild()
	f64 := runCurve(t, build, 2, 1, append(append([]pipemare.Option{}, base...),
		pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
	f32 := append(append([]pipemare.Option{}, base...), pipemare.WithDType(pipemare.Float32))
	ref := runCurve(t, build, 2, 1, append(append([]pipemare.Option{}, f32...),
		pipemare.WithEngine(pipemare.NewReferenceEngine()))...)
	differs := false
	for e := 0; e < ref.Epochs(); e++ {
		if ref.Loss[e] != f64.Loss[e] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("float32 curve is bitwise equal to float64; WithDType did not take effect")
	}
	for _, w := range []int{1, 2, 8} {
		conc := runCurve(t, build, 2, 1, append(append([]pipemare.Option{}, f32...),
			pipemare.WithEngine(pipemare.NewConcurrentEngine(w)))...)
		requireIdentical(t, fmt.Sprintf("float32-transformer/W=%d", w), ref, conc)
	}
}

// TestFloat32EnginesEquivalentOnSmallDNN repeats the per-dtype pin on the
// all-techniques DNN (T1, T2, T3 warmup, clipping, recompute), so the
// whole install/commit surface is compared under float32.
func TestFloat32EnginesEquivalentOnSmallDNN(t *testing.T) {
	images := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4,
		Train: 64, Test: 32, Noise: 0.4, Seed: 1})
	build := func() pipemare.Task { return model.NewResNetMLP(images, 8, 4, 3) }
	for _, m := range []pipemare.Method{pipemare.GPipe, pipemare.PipeMare} {
		opts := append(methodOpts(m),
			pipemare.WithDType(pipemare.Float32),
			pipemare.WithBatchSize(16), pipemare.WithMicrobatches(4),
			pipemare.WithSchedule(optim.Constant(0.05)))
		ref, conc := trainPair(t, build, 3, opts...)
		requireIdentical(t, "float32-dnn/"+m.String(), ref, conc)
	}
}

// TestFloat32ReplicatedMatchesReference pins float32 data parallelism:
// R = 2 replicas splitting every minibatch (CloneTask re-applies the
// dtype, so both replicas round the shared float64 init identically)
// must match the single-replica float32 Reference curve bit for bit,
// under both commit modes.
func TestFloat32ReplicatedMatchesReference(t *testing.T) {
	build, base := dtypeTransformerBuild()
	f32 := append(append([]pipemare.Option{}, base...), pipemare.WithDType(pipemare.Float32))
	ref := runCurve(t, build, 2, 1, f32...)
	for _, sharded := range []bool{false, true} {
		opts := append(append([]pipemare.Option{}, f32...),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(sharded),
			pipemare.WithEngine(pipemare.NewReplicatedEngine(func() pipemare.Engine {
				return concurrent.New(concurrent.WithWorkers(2))
			})))
		got := runCurve(t, build, 2, 2, opts...)
		requireIdentical(t, fmt.Sprintf("float32-replicated/sharded=%t", sharded), ref, got)
	}
}

// TestFloat32TransportLoopbackMatchesReference pins the float32 wire
// path: a leader with one remote follower behind the loopback transport
// — every gradient, state gather and broadcast crossing the dtype-tagged
// tensor encoding, and the handshake checksum covering the dtype — must
// train bit-identically to the in-process float32 Reference run.
func TestFloat32TransportLoopbackMatchesReference(t *testing.T) {
	build, base := dtypeTransformerBuild()
	f32 := append(append([]pipemare.Option{}, base...), pipemare.WithDType(pipemare.Float32))
	ref := runCurve(t, build, 2, 1, f32...)
	dialers, kill, wait := startWorkers(t, 1, build, func() []pipemare.Option {
		return append([]pipemare.Option{}, f32...)
	})
	leaderOpts := append(append([]pipemare.Option{}, f32...),
		pipemare.WithReplicas(2),
		pipemare.WithEngine(pipemare.NewReplicatedEngine(nil)),
		pipemare.WithTransport(dialers...))
	tr, err := pipemare.New(build(), leaderOpts...)
	if err != nil {
		kill()
		t.Fatal(err)
	}
	got, err := tr.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	requireIdentical(t, "float32-loopback/R=2", ref, got)
}

// TestFloat32CheckpointRestoreResumesBitIdentical pins the dtype-tagged
// checkpoint frames: a float32 run checkpointed at an epoch boundary and
// restored into a fresh float32 trainer must retrace the uninterrupted
// float32 reference exactly.
func TestFloat32CheckpointRestoreResumesBitIdentical(t *testing.T) {
	build, base := dtypeTransformerBuild()
	f32 := append(append([]pipemare.Option{}, base...), pipemare.WithDType(pipemare.Float32))
	ref := runCurve(t, build, 4, 1, f32...)
	dir := t.TempDir()
	tr1, err := pipemare.New(build(), append(append([]pipemare.Option{}, f32...),
		pipemare.WithCheckpoint(dir, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	head, err := tr1.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "float32-ckpt-head", sliceRun(ref, 0, 2), head)
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := pipemare.Restore(dir, build(), append(append([]pipemare.Option{}, f32...),
		pipemare.WithCheckpoint(dir, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	tail, err := tr2.Run(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "float32-ckpt-tail", sliceRun(ref, 2, 4), tail)
}

// TestWithDTypeRequiresSettableTask pins the build-time error: a task
// without SetDType must fail New instead of silently training float64.
func TestWithDTypeRequiresSettableTask(t *testing.T) {
	_, err := pipemare.New(newQuadTask(4, 32, 8, 7),
		pipemare.WithDType(pipemare.Float32),
		pipemare.WithSchedule(optim.Constant(0.05)))
	if err == nil {
		t.Fatal("New accepted WithDType on a task without SetDType")
	}
}
