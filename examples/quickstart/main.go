// Quickstart: train one model three ways — synchronous GPipe, PipeDream
// weight stashing, and asynchronous PipeMare with the paper's T1+T2
// techniques — and compare their accuracy and hardware cost columns.
// Demonstrates the functional-options API: pipemare.New + Trainer.Run.
package main

import (
	"context"
	"fmt"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/memmodel"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func main() {
	// A synthetic 10-class image task and a 107-weight-group residual MLP:
	// the same fine-grained geometry as the paper's ResNet50 experiments.
	images := data.NewImages(data.ImagesConfig{
		Classes: 10, C: 3, H: 4, W: 4,
		Train: 1024, Test: 512, Noise: 0.9, LabelFlip: 0.05, Seed: 1,
	})
	fmt.Println("quickstart: 107 pipeline stages, minibatch 64, microbatch 8 (N=8)")
	fmt.Printf("%-22s %8s %8s %12s %12s\n", "method", "best acc", "final", "throughput", "weight+opt")

	for _, m := range []struct {
		name     string
		method   pipemare.Method
		t1k      int
		t2d      float64
		replicas int
	}{
		{"GPipe (sync)", pipemare.GPipe, 0, 0, 1},
		// The PipeMare row trains two data-parallel pipeline replicas
		// (WithReplicas): each minibatch's microbatches split across the
		// replicas and one shared step commits after a deterministic
		// gradient all-reduce — the curve is bit-identical to one replica,
		// so the table below does not change, only the wall-clock does.
		{"PipeDream (stash)", pipemare.PipeDream, 0, 0, 1},
		{"PipeMare (T1+T2)", pipemare.PipeMare, 480, 0.5, 2},
	} {
		task := model.NewResNetMLP(images, 16, 52, 7)
		var opt pipemare.Optimizer
		tr, err := pipemare.New(task,
			pipemare.WithMethod(m.method),
			pipemare.WithBatchSize(64), pipemare.WithMicrobatches(8),
			pipemare.WithT1(m.t1k), pipemare.WithT2(m.t2d),
			pipemare.WithReplicas(m.replicas),
			pipemare.WithSeed(7),
			pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
				opt = optim.NewSGD(ps, 0.9, 5e-4)
				return opt
			}),
			pipemare.WithSchedule(optim.StepDecay{Base: 0.05, DropEvery: 40 * 16, Factor: 0.1}),
		)
		if err != nil {
			panic(err)
		}
		run, err := tr.Run(context.Background(), 45)
		if err != nil {
			panic(err)
		}

		thr := 1.0
		if m.method == pipemare.GPipe {
			thr = 0.3
		}
		var ps []*nn.Param
		for _, g := range task.Groups() {
			ps = append(ps, g.Params...)
		}
		mem := memmodel.WeightOptimizer(memmodel.Method(m.method), opt.StateCopies(),
			tr.Partition().StageSizes(), tr.Microbatches(), m.t2d > 0) /
			float64(nn.TotalSize(ps)) / float64(opt.StateCopies())
		fmt.Printf("%-22s %7.1f%% %7.1f%% %11.1fx %11.2fx\n",
			m.name, run.Best(), run.Metric[run.Epochs()-1], thr, mem)
	}
	fmt.Println("\nPipeMare matches synchronous accuracy at full pipeline throughput;")
	fmt.Println("PipeDream matches it too but pays the weight-stash memory.")
}
