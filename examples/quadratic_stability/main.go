// Quadratic stability: reproduce the theory of §3 interactively — the
// Lemma 1 threshold α* = (2/λ)·sin(π/(4τ+2)), trajectories on both sides
// of it, and the effect of the T2 discrepancy correction on the stable
// range (Figure 8's headline).
package main

import (
	"fmt"

	"pipemare/internal/poly"
	"pipemare/internal/quad"
)

func main() {
	lambda := 1.0
	fmt.Println("Lemma 1: max stable step size for delayed SGD on f(w)=λw²/2, λ=1")
	fmt.Printf("%6s %12s %16s\n", "tau", "alpha* (thm)", "alpha* (numeric)")
	for _, tau := range []int{1, 2, 5, 10, 20, 50} {
		bound := quad.Lemma1Bound(tau, lambda)
		numeric, err := quad.MaxStableAlpha(func(a float64) poly.Poly {
			return quad.CharPoly(tau, a, lambda)
		}, 4, 1e-8)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%6d %12.6f %16.6f\n", tau, bound, numeric)
	}

	fmt.Println("\nTrajectories at τ=10 (bound ≈ 0.149): α=0.12 converges, α=0.20 diverges")
	for _, alpha := range []float64{0.12, 0.20} {
		res := quad.Simulate(quad.Config{Lambda: 1, Alpha: alpha, TauFwd: 10,
			W0: 1, Steps: 400, LossCap: 1e9})
		fmt.Printf("  α=%.2f: loss@100=%.3g loss@399=%.3g diverged=%v\n",
			alpha, res.Loss[100], res.Loss[399], res.Diverged)
	}

	fmt.Println("\nT2 discrepancy correction widens the stable range (τf=40, τb=10, Δ=20):")
	gamma := quad.GammaTaylor(40, 10)
	plain, _ := quad.MaxStableAlpha(func(a float64) poly.Poly {
		return quad.CharPolyDiscrepancy(40, 10, a, 1, 20)
	}, 2, 1e-7)
	corrected, _ := quad.MaxStableAlpha(func(a float64) poly.Poly {
		return quad.CharPolyT2(40, 10, a, 1, 20, gamma)
	}, 2, 1e-7)
	fmt.Printf("  uncorrected max α = %.5f\n", plain)
	fmt.Printf("  T2-corrected max α = %.5f  (γ = %.3f, D ≈ e⁻²)\n", corrected, gamma)
}
