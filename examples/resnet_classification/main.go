// ResNet classification: the paper's CIFAR10 scenario, including the
// failure mode — run with -t1k=0 -t2d=0 to watch raw asynchronous
// pipeline training blow up its parameter norm exactly as in Figure 7.
// Streaming output uses the per-epoch observer hook of the options API;
// -engine selects the execution engine.
package main

import (
	"context"
	"flag"
	"fmt"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func main() {
	blocks := flag.Int("blocks", 52, "residual blocks (stages = 2*blocks + 3)")
	t1k := flag.Int("t1k", 480, "T1 annealing steps (0 disables)")
	t2d := flag.Float64("t2d", 0.5, "T2 correction decay D (0 disables)")
	epochs := flag.Int("epochs", 40, "training epochs")
	engineName := flag.String("engine", "reference", "execution engine: reference | concurrent")
	workers := flag.Int("workers", 0, "scheduler workers for the concurrent engine (0 = min(P, GOMAXPROCS))")
	partition := flag.String("partition", "even", "stage partition: even | cost | profile")
	flag.Parse()

	images := data.NewImages(data.ImagesConfig{
		Classes: 10, C: 3, H: 4, W: 4,
		Train: 1024, Test: 512, Noise: 0.9, LabelFlip: 0.05, Seed: 1,
	})
	task := model.NewResNetMLP(images, 16, *blocks, 7)

	opts := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithBatchSize(64), pipemare.WithMicrobatches(8),
		pipemare.WithT1(*t1k), pipemare.WithT2(*t2d),
		pipemare.WithSeed(7),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewSGD(ps, 0.9, 5e-4)
		}),
		pipemare.WithSchedule(optim.StepDecay{Base: 0.05, DropEvery: 40 * 16, Factor: 0.1}),
		pipemare.WithObserver(func(e int, run *pipemare.Run) {
			if e%5 == 0 || e == 1 {
				fmt.Printf("epoch %3d  loss %8.3f  acc %5.1f%%  |w| %.3g\n",
					e, run.Loss[e-1], run.Metric[e-1], run.ParamNorm[e-1])
			}
		}),
	}
	switch *engineName {
	case "reference":
	case "concurrent":
		opts = append(opts, pipemare.WithEngine(concurrent.New(concurrent.WithWorkers(*workers))))
	default:
		panic("unknown engine " + *engineName + " (want reference or concurrent)")
	}
	switch *partition {
	case "even":
	case "cost":
		opts = append(opts, pipemare.WithPartition(pipemare.PartitionCost))
	case "profile":
		opts = append(opts, pipemare.WithPartition(pipemare.PartitionProfile))
	default:
		panic("unknown partition " + *partition + " (want even, cost or profile)")
	}
	tr, err := pipemare.New(task, opts...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PipeMare [%s engine, %s partition]: %d stages, stage imbalance %.2f, τ_fwd(first stage) = %.2f minibatches, T1K=%d, D=%g\n",
		tr.Engine().Name(), tr.PartitionMode(), tr.Stages(), tr.StageImbalance(), tr.Taus()[0], *t1k, *t2d)
	run, err := tr.Run(context.Background(), *epochs)
	if err != nil {
		panic(err)
	}
	if run.Diverged {
		fmt.Println("diverged (loss exceeded the cap)")
		return
	}
	fmt.Printf("best accuracy %.1f%%\n", run.Best())
}
