// ResNet classification: the paper's CIFAR10 scenario, including the
// failure mode — run with -t1k=0 -t2d=0 to watch raw asynchronous
// pipeline training blow up its parameter norm exactly as in Figure 7.
package main

import (
	"flag"
	"fmt"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/metrics"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func main() {
	blocks := flag.Int("blocks", 52, "residual blocks (stages = 2*blocks + 3)")
	t1k := flag.Int("t1k", 480, "T1 annealing steps (0 disables)")
	t2d := flag.Float64("t2d", 0.5, "T2 correction decay D (0 disables)")
	epochs := flag.Int("epochs", 40, "training epochs")
	flag.Parse()

	images := data.NewImages(data.ImagesConfig{
		Classes: 10, C: 3, H: 4, W: 4,
		Train: 1024, Test: 512, Noise: 0.9, LabelFlip: 0.05, Seed: 1,
	})
	task := model.NewResNetMLP(images, 16, *blocks, 7)
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 5e-4)
	sched := optim.StepDecay{Base: 0.05, DropEvery: 40 * 16, Factor: 0.1}
	tr, err := pipemare.NewTrainer(task, opt, sched, pipemare.Config{
		Method: pipemare.PipeMare, BatchSize: 64, MicrobatchSize: 8,
		T1K: *t1k, T2D: *t2d, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("PipeMare: %d stages, τ_fwd(first stage) = %.2f minibatches, T1K=%d, D=%g\n",
		tr.Stages(), tr.Taus()[0], *t1k, *t2d)
	run := &metrics.Run{}
	for done := 0; done < *epochs; done += 5 {
		step := 5
		if done+step > *epochs {
			step = *epochs - done
		}
		tr.TrainEpochs(step, run)
		n := run.Epochs()
		fmt.Printf("epoch %3d  loss %8.3f  acc %5.1f%%  |w| %.3g\n",
			n, run.Loss[n-1], run.Metric[n-1], run.ParamNorm[n-1])
		if run.Diverged {
			fmt.Println("diverged (loss exceeded the cap)")
			return
		}
	}
	fmt.Printf("best accuracy %.1f%%\n", run.Best())
}
