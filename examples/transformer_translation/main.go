// Transformer translation: the paper's IWSLT14 scenario on the synthetic
// translation task. Demonstrates why T3 (synchronous warmup) exists: it
// runs PipeMare with all three techniques and reports BLEU per epoch,
// including the warmup/async switch. The -timeout flag shows Run's
// context-awareness: training stops cleanly when the deadline passes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func main() {
	epochs := flag.Int("epochs", 40, "training epochs")
	method := flag.String("method", "pipemare", "gpipe | pipedream | pipemare")
	replicas := flag.Int("replicas", 1, "data-parallel pipeline replicas (bit-identical curves, faster wall-clock on multicore)")
	timeout := flag.Duration("timeout", 0, "optional wall-clock budget (0 = none)")
	flag.Parse()

	ds := data.NewTranslation(data.TranslationConfig{
		Vocab: 13, SrcLen: 6, Train: 1024, Test: 128, Seed: 2,
	})
	task := model.NewTranslation(ds, model.TransformerConfig{
		Dim: 32, Heads: 2, EncLayers: 2, DecLayers: 2, Seed: 5,
	})

	warmup := 0
	opts := []pipemare.Option{
		pipemare.WithBatchSize(64),
		pipemare.WithMicrobatchSize(4), // small microbatches reduce delay
		pipemare.WithReplicas(*replicas),
		pipemare.WithClipNorm(5),
		pipemare.WithSeed(3),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 5e-3, Init: 1e-7, Warmup: 100}),
	}
	switch *method {
	case "gpipe":
		opts = append(opts, pipemare.WithMethod(pipemare.GPipe))
	case "pipedream":
		opts = append(opts, pipemare.WithMethod(pipemare.PipeDream))
	case "pipemare":
		warmup = 6
		opts = append(opts,
			pipemare.WithMethod(pipemare.PipeMare),
			pipemare.WithT1(500), // 5× the LR warmup steps (paper's rule)
			pipemare.WithT2(0.1), // discrepancy correction decay
			pipemare.WithT3(warmup),
		)
	default:
		panic("unknown method " + *method)
	}
	opts = append(opts, pipemare.WithObserver(func(e int, run *pipemare.Run) {
		if e%5 != 0 && e != 1 {
			return
		}
		phase := "async"
		if *method == "gpipe" || e <= warmup {
			phase = "sync"
		}
		fmt.Printf("epoch %3d [%5s]  loss %.3f  BLEU %.1f\n", e, phase, run.Loss[e-1], run.Metric[e-1])
	}))

	tr, err := pipemare.New(task, opts...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("method=%s stages=%d microbatches/minibatch=%d engine=%s\n",
		*method, tr.Stages(), tr.Microbatches(), tr.Engine().Name())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	run, err := tr.Run(ctx, *epochs)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("stopped at the %s budget after %d epochs\n", *timeout, run.Epochs())
	case err != nil:
		panic(err)
	}
	if run.Diverged {
		fmt.Println("diverged")
		return
	}
	fmt.Printf("best BLEU %.1f\n", run.Best())
}
