// Transformer translation: the paper's IWSLT14 scenario on the synthetic
// translation task. Demonstrates why T3 (synchronous warmup) exists: it
// runs PipeMare with all three techniques and reports BLEU per epoch,
// including the warmup/async switch.
package main

import (
	"flag"
	"fmt"

	"pipemare"
	"pipemare/internal/data"
	"pipemare/internal/metrics"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func main() {
	epochs := flag.Int("epochs", 40, "training epochs")
	method := flag.String("method", "pipemare", "gpipe | pipedream | pipemare")
	flag.Parse()

	ds := data.NewTranslation(data.TranslationConfig{
		Vocab: 13, SrcLen: 6, Train: 1024, Test: 128, Seed: 2,
	})
	task := model.NewTranslation(ds, model.TransformerConfig{
		Dim: 32, Heads: 2, EncLayers: 2, DecLayers: 2, Seed: 5,
	})
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
	sched := optim.WarmupInvSqrt{Peak: 5e-3, Init: 1e-7, Warmup: 100}

	cfg := pipemare.Config{
		BatchSize: 64, MicrobatchSize: 4, // small microbatches reduce delay
		ClipNorm: 5, Seed: 3,
	}
	switch *method {
	case "gpipe":
		cfg.Method = pipemare.GPipe
	case "pipedream":
		cfg.Method = pipemare.PipeDream
	case "pipemare":
		cfg.Method = pipemare.PipeMare
		cfg.T1K = 500 // 5× the LR warmup steps (paper's rule)
		cfg.T2D = 0.1 // discrepancy correction decay
		cfg.WarmupEpochs = 6
	default:
		panic("unknown method " + *method)
	}
	tr, err := pipemare.NewTrainer(task, opt, sched, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("method=%s stages=%d microbatches/minibatch=%d\n", *method, tr.Stages(), tr.Microbatches())
	run := &metrics.Run{}
	for done := 0; done < *epochs; done += 5 {
		step := 5
		if done+step > *epochs {
			step = *epochs - done
		}
		tr.TrainEpochs(step, run)
		n := run.Epochs()
		phase := "async"
		if cfg.Method == pipemare.GPipe || n <= cfg.WarmupEpochs {
			phase = "sync"
		}
		fmt.Printf("epoch %3d [%5s]  loss %.3f  BLEU %.1f\n", n, phase, run.Loss[n-1], run.Metric[n-1])
		if run.Diverged {
			fmt.Println("diverged")
			return
		}
	}
	fmt.Printf("best BLEU %.1f\n", run.Best())
}
