package pipemare

import (
	"context"
	"fmt"
	"time"

	"pipemare/internal/core"
	"pipemare/internal/engine"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
	"pipemare/internal/transport"
)

// OptimizerFactory builds an optimizer over a task's parameters in
// partition (forward) order. Factories — rather than built optimizers —
// let New guarantee the optimizer covers exactly the trainer's parameters.
type OptimizerFactory func(ps []*nn.Param) Optimizer

// Observer receives the run curve after each completed epoch (1-based
// cumulative count), for streaming metrics while Run executes.
type Observer = core.Observer

// settings collects everything the options configure before New validates
// and assembles the trainer.
type settings struct {
	cfg          core.Config
	microbatches int // N; resolved against BatchSize at build time
	optFactory   OptimizerFactory
	sched        Schedule
	observer     Observer
	dialers      []transport.Dialer
	dialTimeout  time.Duration
	heartbeat    time.Duration // remote-follower liveness cadence
	heartbeatSet bool
	joinAt       int          // earliest leader step to join at (JoinFollower)
	dtype        tensor.DType // element type model state trains in
}

// Option configures New. Options validate eagerly: the first failing
// option aborts New with its error.
type Option func(*settings) error

// WithMethod selects GPipe, PipeDream or PipeMare execution
// (default GPipe).
func WithMethod(m Method) Option {
	return func(s *settings) error {
		switch m {
		case GPipe, PipeDream, PipeMare:
			s.cfg.Method = m
			return nil
		}
		return fmt.Errorf("pipemare: unknown method %d", int(m))
	}
}

// WithStages sets the pipeline stage count P; 0 (the default) means one
// stage per weight group, the paper's fine-grained maximum.
func WithStages(p int) Option {
	return func(s *settings) error {
		if p < 0 {
			return fmt.Errorf("pipemare: stages must be >= 0, got %d", p)
		}
		s.cfg.Stages = p
		return nil
	}
}

// WithBatchSize sets the minibatch size (default 32).
func WithBatchSize(b int) Option {
	return func(s *settings) error {
		if b <= 0 {
			return fmt.Errorf("pipemare: batch size must be positive, got %d", b)
		}
		s.cfg.BatchSize = b
		return nil
	}
}

// WithMicrobatches sets N, the number of microbatches per minibatch
// (default 4). The batch size must be divisible by N; the Table 1 delays
// scale as 1/N.
func WithMicrobatches(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("pipemare: microbatches must be positive, got %d", n)
		}
		if s.cfg.MicrobatchSize != 0 {
			return fmt.Errorf("pipemare: WithMicrobatches conflicts with WithMicrobatchSize")
		}
		s.microbatches = n
		return nil
	}
}

// WithMicrobatchSize sets the number of samples per microbatch directly,
// as an alternative to WithMicrobatches.
func WithMicrobatchSize(sz int) Option {
	return func(s *settings) error {
		if sz <= 0 {
			return fmt.Errorf("pipemare: microbatch size must be positive, got %d", sz)
		}
		if s.microbatches != 0 {
			return fmt.Errorf("pipemare: WithMicrobatchSize conflicts with WithMicrobatches")
		}
		s.cfg.MicrobatchSize = sz
		return nil
	}
}

// WithPartition selects how weight groups are split into the P stages:
// PartitionEven (the default — by group count, the paper's rule),
// PartitionCost (bottleneck-minimizing over the analytic per-group
// FLOP/byte cost model), or PartitionProfile (bottleneck-minimizing over
// measured per-group wall time from a one-microbatch profiling pass at
// build time). The partition determines each parameter's stage and
// therefore its delay τ_fwd; curves are deterministic per mode (profile
// mode is deterministic given a cost vector — see WithGroupCosts).
func WithPartition(m PartitionMode) Option {
	return func(s *settings) error {
		switch m {
		case PartitionEven, PartitionCost, PartitionProfile:
			s.cfg.Partition = m
			return nil
		}
		return fmt.Errorf("pipemare: unknown partition mode %d", int(m))
	}
}

// WithGroupCosts supplies explicit per-group costs for the cost/profile
// partition modes, overriding the built-in estimators — e.g. a cost
// vector captured from a previous trainer's GroupCosts(), which pins a
// measured (profile) partition exactly across trainers and processes.
// The slice length must match the task's weight-group count; it requires
// WithPartition(PartitionCost) or WithPartition(PartitionProfile).
func WithGroupCosts(costs []float64) Option {
	return func(s *settings) error {
		if len(costs) == 0 {
			return fmt.Errorf("pipemare: group costs must not be empty")
		}
		s.cfg.GroupCosts = append([]float64(nil), costs...)
		return nil
	}
}

// WithT1 enables Technique 1 (learning-rate rescheduling) with the given
// annealing length in optimizer steps; 0 disables it.
func WithT1(k int) Option {
	return func(s *settings) error {
		if k < 0 {
			return fmt.Errorf("pipemare: T1 annealing steps must be >= 0, got %d", k)
		}
		s.cfg.T1K = k
		return nil
	}
}

// WithT2 enables Technique 2 (discrepancy correction) with decay
// hyperparameter D in (0, 1); 0 disables it.
func WithT2(d float64) Option {
	return func(s *settings) error {
		if d < 0 || d >= 1 {
			return fmt.Errorf("pipemare: T2 decay D must be in [0, 1), got %g", d)
		}
		s.cfg.T2D = d
		return nil
	}
}

// WithT3 enables Technique 3 with the given number of initial synchronous
// (GPipe-style) warmup epochs; 0 disables it.
func WithT3(warmupEpochs int) Option {
	return func(s *settings) error {
		if warmupEpochs < 0 {
			return fmt.Errorf("pipemare: warmup epochs must be >= 0, got %d", warmupEpochs)
		}
		s.cfg.WarmupEpochs = warmupEpochs
		return nil
	}
}

// WithRecompute enables the Appendix D recompute delay path with the given
// number of gradient-checkpoint segments; 0 disables it.
func WithRecompute(segments int) Option {
	return func(s *settings) error {
		if segments < 0 {
			return fmt.Errorf("pipemare: recompute segments must be >= 0, got %d", segments)
		}
		s.cfg.RecomputeSegments = segments
		return nil
	}
}

// DTypeSettable is a Task that can cast its model state to a different
// element type (WithDType). The model tasks in internal/model implement
// it; a float32 model's parameters are the rounded image of the same
// float64 initialization, so every replica (local or remote) lands on
// bit-identical float32 state.
type DTypeSettable interface {
	SetDType(dt DType)
}

// WithDType selects the element type the model trains in: Float64 (the
// default) or Float32. Float32 halves memory traffic through the
// cache-blocked kernels — roughly 2× single-core throughput on
// matmul-bound models — and keeps the same determinism contract per
// dtype: every engine, worker count and replica count reproduces the
// float32 Reference curve bit-for-bit. The task must implement
// DTypeSettable; the cast happens before the optimizer factory runs, so
// optimizer moments are allocated in the same dtype. Checkpoints and the
// wire protocol tag every tensor with its dtype, and the transport
// handshake checksum covers it, so a leader/worker dtype mismatch fails
// the handshake instead of diverging.
func WithDType(dt DType) Option {
	return func(s *settings) error {
		switch dt {
		case Float64, Float32:
			s.dtype = dt
			return nil
		}
		return fmt.Errorf("pipemare: unknown dtype %d", int(dt))
	}
}

// WithOptimizer sets the optimizer factory (default: SGD with momentum
// 0.9 and no weight decay).
func WithOptimizer(f OptimizerFactory) Option {
	return func(s *settings) error {
		if f == nil {
			return fmt.Errorf("pipemare: optimizer factory must not be nil")
		}
		s.optFactory = f
		return nil
	}
}

// WithSchedule sets the base learning-rate schedule (default
// Constant(0.01)).
func WithSchedule(sched Schedule) Option {
	return func(s *settings) error {
		if sched == nil {
			return fmt.Errorf("pipemare: schedule must not be nil")
		}
		s.sched = sched
		return nil
	}
}

// WithEngine selects the execution engine (default: the single-goroutine
// Reference engine; see internal/engine/concurrent for the stage-worker
// engine).
func WithEngine(e Engine) Option {
	return func(s *settings) error {
		if e == nil {
			return fmt.Errorf("pipemare: engine must not be nil")
		}
		s.cfg.Engine = e
		return nil
	}
}

// WithReplicas sets the data-parallel replica count R (default 1). With
// R > 1 the task must implement Replicable (CloneTask): the trainer owns
// R−1 follower replicas, splits each minibatch's microbatches across
// them, and commits one shared optimizer step after a deterministic
// gradient all-reduce, so training curves are bit-identical to a
// single-replica run of the same global batch. R must not exceed the
// microbatch count N. The engine must be replica-aware; the default
// engine for R > 1 is the replicated engine over Reference inners (see
// NewReplicatedEngine to choose the inner engine).
func WithReplicas(r int) Option {
	return func(s *settings) error {
		if r < 1 {
			return fmt.Errorf("pipemare: replicas must be >= 1, got %d", r)
		}
		s.cfg.Replicas = r
		return nil
	}
}

// WithShardedStep enables (true) or disables (false) the ZeRO-style
// replica-sharded optimizer commit. When sharded, each replica owns a
// contiguous shard of the pipeline stages, holds optimizer moment state
// only for that shard (followers allocate nothing else), and steps it
// locally after the gradient all-reduce; the stepped weights, T2 state
// and version pushes all-gather back — so the commit tail no longer runs
// serially on the leader, while curves stay bit-identical to the
// leader-serial commit and to single-replica runs. Without this option
// the commit is sharded automatically whenever WithReplicas(R > 1) is set
// and the optimizer supports sharding (optim.ShardCloner — SGD and AdamW
// do). WithShardedStep(true) makes that a requirement: building the
// trainer fails when replicas < 2 or the optimizer cannot shard.
func WithShardedStep(on bool) Option {
	return func(s *settings) error {
		if on {
			s.cfg.ShardedStep = core.ShardedStepOn
		} else {
			s.cfg.ShardedStep = core.ShardedStepOff
		}
		return nil
	}
}

// WithTransport makes the trainer's follower replicas remote: instead of
// building R−1 in-process follower trainers, New dials one worker per
// follower (in replica order — dialer r−1 hosts replica r) and drives it
// over the wire transport (internal/transport). Each worker must be
// running ServeFollower with the same task construction and options as
// the leader; the handshake verifies topology, method, technique flags,
// commit mode and a checksum over the initial weights, so a mismatch
// fails New instead of silently diverging the curves. Exactly R−1
// dialers are required; with no WithReplicas option, R = len(dialers)+1
// is implied. Training curves stay bit-identical to in-process replicas
// and to a single-replica run (float64 bits cross the wire verbatim).
// Close the trainer (Trainer.Close) to release the worker connections.
func WithTransport(dialers ...Dialer) Option {
	return func(s *settings) error {
		if len(dialers) == 0 {
			return fmt.Errorf("pipemare: WithTransport needs at least one dialer")
		}
		for i, d := range dialers {
			if d == nil {
				return fmt.Errorf("pipemare: WithTransport dialer %d is nil", i)
			}
		}
		s.dialers = append([]transport.Dialer(nil), dialers...)
		return nil
	}
}

// WithDialTimeout bounds each WithTransport dial + handshake (default
// 30s). Dialers retry with backoff inside this budget, so a leader
// started before its workers converges.
func WithDialTimeout(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return fmt.Errorf("pipemare: dial timeout must be positive, got %v", d)
		}
		s.dialTimeout = d
		return nil
	}
}

// WithFaultTolerance makes follower failures survivable in every commit
// mode: each replica mirrors the full optimizer moment state (stage
// state carries the moments through every gather and broadcast), so
// when a follower dies mid-run the leader evicts it, rebuilds the
// reduce tree and commit plan over the survivors, and replays the
// interrupted minibatch — with a post-eviction curve bit-identical to a
// fresh run over the surviving replica count from the same state.
// Serial-commit (WithShardedStep(false)) groups evict without this
// option; the sharded commit requires it, because without mirrored
// moments a dead owner's optimizer shard is simply gone. Requires an
// optimizer exposing its moment state (optim.Stateful — SGD and AdamW
// do). Implied by WithCheckpoint under the sharded commit.
func WithFaultTolerance() Option {
	return func(s *settings) error {
		s.cfg.FaultTolerant = true
		return nil
	}
}

// WithElastic enables mid-run scale-up on a leader: call
// Trainer.AcceptJoins with a listener and fresh workers can dial in
// while training runs (JoinFollower, or pipemare-worker -join). Each
// joiner is parked until the next minibatch boundary, admitted with a
// live state handoff — masters, T2 state, optimizer moments, the
// weight-version rings, and the clocks, the same push a checkpoint
// restore uses — and the reduce tree and commit plan grow to R+1.
// Because the handed-off member is indistinguishable from one that
// trained from the start, the post-join curve is bit-identical to a
// fresh (R+1)-replica run from the handoff state. Requires
// WithReplicas/WithTransport >= 2 (a running group to grow); under the
// sharded commit it implies WithFaultTolerance, exactly as eviction
// does.
func WithElastic() Option {
	return func(s *settings) error {
		s.cfg.Elastic = true
		return nil
	}
}

// StragglerPolicy selects how the leader treats a remote follower that
// repeatedly misses its per-collective deadline (WithStragglerPolicy).
type StragglerPolicy int

const (
	// StragglerWait waits indefinitely (bar heartbeat liveness) — the
	// default: a slow follower stalls the minibatch but stays a member.
	StragglerWait StragglerPolicy = iota
	// StragglerDemote demotes a follower that misses the deadline K
	// consecutive times to standby: it stays alive and connected but is
	// excluded from the reduce tree and commit plan (its microbatches
	// redistribute over the survivors), and it automatically rejoins
	// through the live-handoff path once its late reply drains.
	StragglerDemote
)

// WithStragglerPolicy bounds how long the leader waits on a remote
// follower's collective reply: under StragglerDemote, a follower that
// misses `deadline` for `misses` consecutive deadline windows is
// demoted to standby and later readmitted via the same state handoff a
// mid-run joiner receives — so a transient slowdown costs bounded wall
// time instead of stalling every minibatch, while curves stay
// bit-identical to a run over the momentarily-smaller membership.
// StragglerWait (the default) ignores deadline and misses and disables
// demotion. Under the sharded commit, demotion implies
// WithFaultTolerance, exactly as eviction does.
func WithStragglerPolicy(p StragglerPolicy, deadline time.Duration, misses int) Option {
	return func(s *settings) error {
		switch p {
		case StragglerWait:
			s.cfg.StragglerDeadline = 0
			s.cfg.StragglerMisses = 0
			return nil
		case StragglerDemote:
			if deadline <= 0 {
				return fmt.Errorf("pipemare: straggler deadline must be positive, got %v", deadline)
			}
			if misses < 1 {
				return fmt.Errorf("pipemare: straggler miss count must be >= 1, got %d", misses)
			}
			s.cfg.StragglerDeadline = deadline
			s.cfg.StragglerMisses = misses
			return nil
		}
		return fmt.Errorf("pipemare: unknown straggler policy %d", int(p))
	}
}

// WithJoinAt asks the leader to park this joiner until its optimizer
// step clock reaches step (JoinFollower only; 0, the default, admits at
// the next minibatch boundary). A leader option list ignores it.
func WithJoinAt(step int) Option {
	return func(s *settings) error {
		if step < 0 {
			return fmt.Errorf("pipemare: join step must be >= 0, got %d", step)
		}
		s.joinAt = step
		return nil
	}
}

// WithCheckpoint makes the leader serialize its complete training state
// — master weights, optimizer moments, T2 accumulators, the per-stage
// weight-version rings, and the step/epoch/microbatch clocks — to a
// CRC'd frame file under dir every `every` optimizer steps (every <= 1
// means every step). Restore with pipemare.Restore, which resumes the
// run exactly where the newest valid checkpoint left it: the data order
// is a pure function of (seed, epoch), so the resumed curve is
// bit-identical to the uninterrupted run's from that step on. Followers
// never checkpoint.
func WithCheckpoint(dir string, every int) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("pipemare: checkpoint directory must not be empty")
		}
		if every < 0 {
			return fmt.Errorf("pipemare: checkpoint cadence must be >= 0, got %d", every)
		}
		s.cfg.CheckpointDir = dir
		s.cfg.CheckpointEvery = every
		return nil
	}
}

// WithHeartbeat sets the liveness cadence for remote followers
// (WithTransport): a worker pings its leader at this interval while
// computing a chunk, and the leader treats a peer silent for ten
// missed heartbeats as dead — surfacing a hang as a failure the
// fault-tolerance layer can evict instead of blocking until the context
// ends. 0 disables liveness detection. Without this option, liveness
// detection follows WithFaultTolerance: 1s when fault tolerance is on,
// off otherwise — a run that cannot evict a dead peer gains nothing
// from declaring one, and a heavily oversubscribed host (many
// in-process workers per core) can starve the ping goroutine past any
// fixed window. Fault-tolerant runs on such hosts should widen the
// cadence explicitly.
func WithHeartbeat(d time.Duration) Option {
	return func(s *settings) error {
		if d < 0 {
			return fmt.Errorf("pipemare: heartbeat must be >= 0, got %v", d)
		}
		s.heartbeat = d
		s.heartbeatSet = true
		return nil
	}
}

// WithTrace attaches a trace recorder to the trainer: every slot
// execution, commit phase, replica collective, wire round-trip and
// fault event of the run is recorded as a timestamped span or instant
// (package internal/trace). Export the recording with WriteChromeTrace
// (Chrome/Perfetto trace-event JSON) or summarize it with
// BuildTraceReport. Tracing only reads the clock and appends into
// buffers owned by the emitting goroutine, so the training curve is
// bit-identical with tracing on or off.
func WithTrace(rec *TraceRecorder) Option {
	return func(s *settings) error {
		if rec == nil {
			return fmt.Errorf("pipemare: trace recorder must not be nil")
		}
		s.cfg.Trace = rec
		return nil
	}
}

// WithSeed sets the data-order RNG seed.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithClipNorm sets the global gradient-norm clip; 0 (default) disables
// clipping.
func WithClipNorm(c float64) Option {
	return func(s *settings) error {
		if c < 0 {
			return fmt.Errorf("pipemare: clip norm must be >= 0, got %g", c)
		}
		s.cfg.ClipNorm = c
		return nil
	}
}

// WithLossCap sets the divergence threshold (default 1e6).
func WithLossCap(c float64) Option {
	return func(s *settings) error {
		if c <= 0 {
			return fmt.Errorf("pipemare: loss cap must be positive, got %g", c)
		}
		s.cfg.LossCap = c
		return nil
	}
}

// WithObserver registers a per-epoch observer invoked with the cumulative
// epoch count and the curve recorded so far.
func WithObserver(fn Observer) Option {
	return func(s *settings) error {
		if fn == nil {
			return fmt.Errorf("pipemare: observer must not be nil")
		}
		s.observer = fn
		return nil
	}
}

// New builds a pipeline-parallel trainer for task from functional options.
// Zero options gives synchronous GPipe training of a fine-grained
// partition with momentum SGD at a constant rate — every knob (method,
// stage count, microbatching, the three PipeMare techniques, recompute,
// optimizer, schedule, engine, seed) is an Option. Train with
// Trainer.Run(ctx, epochs).
func New(task Task, opts ...Option) (*Trainer, error) {
	s, opt, err := resolveSettings(task, opts)
	if err != nil {
		return nil, err
	}
	if len(s.dialers) > 0 {
		if s.cfg.Replicas == 0 {
			s.cfg.Replicas = len(s.dialers) + 1
		} else if s.cfg.Replicas != len(s.dialers)+1 {
			return nil, fmt.Errorf("pipemare: %d transport dialers for %d replicas; WithTransport needs exactly R-1", len(s.dialers), s.cfg.Replicas)
		}
		hb := s.heartbeat
		if !s.heartbeatSet && s.cfg.FaultTolerant {
			hb = transport.DefaultHeartbeat
		}
		// The core join path reuses the resolved cadence when welcoming
		// mid-run joiners (WithElastic), so record it on the config.
		s.cfg.Heartbeat = hb
		s.cfg.Followers = remoteFollowers(s.dialers, s.dialTimeout, hb,
			s.cfg.StragglerDeadline, s.cfg.StragglerMisses, s.cfg.Trace)
	}
	tr, err := core.New(task, opt, s.sched, s.cfg)
	if err != nil {
		return nil, err
	}
	if s.observer != nil {
		tr.Observe(s.observer)
	}
	return tr, nil
}

// resolveSettings applies the options and fills every default, returning
// the resolved settings and the built optimizer — the shared front half
// of New and ServeFollower, so a worker process resolving the same
// option list lands on the same configuration as its leader.
func resolveSettings(task Task, opts []Option) (*settings, Optimizer, error) {
	s := &settings{}
	s.cfg.BatchSize = 32
	for _, o := range opts {
		if o == nil {
			return nil, nil, fmt.Errorf("pipemare: nil Option")
		}
		if err := o(s); err != nil {
			return nil, nil, err
		}
	}
	if s.cfg.MicrobatchSize == 0 {
		n := s.microbatches
		if n == 0 {
			n = 4
		}
		if s.cfg.BatchSize%n != 0 {
			return nil, nil, fmt.Errorf("pipemare: batch size %d not divisible into %d microbatches", s.cfg.BatchSize, n)
		}
		s.cfg.MicrobatchSize = s.cfg.BatchSize / n
	}
	if s.dtype != tensor.Float64 {
		ds, ok := task.(DTypeSettable)
		if !ok {
			return nil, nil, fmt.Errorf("pipemare: task %T does not implement DTypeSettable (WithDType)", task)
		}
		// Cast before the optimizer factory runs so moment buffers are
		// allocated in the model dtype (optimizers size off Param.Data).
		ds.SetDType(s.dtype)
	}
	if s.optFactory == nil {
		s.optFactory = func(ps []*nn.Param) Optimizer { return optim.NewSGD(ps, 0.9, 0) }
	}
	if s.sched == nil {
		s.sched = optim.Constant(0.01)
	}
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := s.optFactory(ps)
	if opt == nil {
		return nil, nil, fmt.Errorf("pipemare: optimizer factory returned nil")
	}
	return s, opt, nil
}

// remoteFollowers returns the core follower factory for WithTransport:
// dial worker r's endpoint (with the backoff the dialer implements),
// announce the resolved replication spec, and wrap the connection as the
// leader-side member proxy.
func remoteFollowers(dialers []transport.Dialer, timeout, heartbeat, stragglerDeadline time.Duration, stragglerMisses int, rec *trace.Recorder) func(int, core.ReplicaEnv) (replica.Member, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return func(r int, env core.ReplicaEnv) (replica.Member, error) {
		lead, ok := env.Leader.(transport.LeaderState)
		if !ok {
			return nil, fmt.Errorf("pipemare: leader %T lacks the transport state surface", env.Leader)
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		conn, err := dialers[r-1].Dial(ctx)
		if err != nil {
			return nil, err
		}
		spec := transport.Spec{
			Replica: r, Replicas: env.Replicas, Stages: env.Stages,
			Method: int(env.Method), T2: env.T2, Sharded: env.Sharded,
			Step: lead.Step(), Epoch: lead.Epoch(),
			Checksum:   transport.StateChecksum(lead, env.Stages),
			GroupCosts: env.GroupCosts,
			FT:         env.FaultTolerant,
			Heartbeat:  heartbeat,
		}
		m, err := transport.NewRemoteMember(ctx, conn, spec, lead)
		if err != nil {
			conn.Close()
			return nil, err
		}
		m.SetTracer(rec) // nil-safe: a nil recorder leaves the wire track off
		if stragglerMisses > 0 {
			m.SetStragglerDeadline(stragglerDeadline, stragglerMisses)
		}
		return m, nil
	}
}

// ensure the engine package's types satisfy the facade aliases.
var _ Engine = engine.Reference{}
