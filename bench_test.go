package pipemare_test

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"pipemare"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/experiments"
	"pipemare/internal/tensor"
)

// benchExperiment runs a registered table/figure regenerator at Quick
// scale. One benchmark per table and figure of the paper's evaluation;
// run `go run ./cmd/pipemare-bench -full <name>` for reference-scale
// output.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard, experiments.Quick)
	}
}

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkFig1(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3a(b *testing.B)      { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)      { benchExperiment(b, "fig3b") }
func BenchmarkFig4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5a(b *testing.B)      { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)      { benchExperiment(b, "fig5b") }
func BenchmarkFig6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)      { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)      { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkAppendixA3(b *testing.B) { benchExperiment(b, "appendixA3") }

// Engine benchmarks: Reference vs the concurrent stage-worker engine on
// the transformer workload at P ∈ {4, 8} (one epoch per iteration). The
// speedup tracks the stage-parallel commit phase and the parallel dense
// kernels, so it grows with GOMAXPROCS; on a single core the two engines
// should be within noise of each other.

func benchEngineTransformer(b *testing.B, stages int, eng pipemare.Engine) {
	b.Helper()
	tr, err := experiments.NewEngineBenchTrainer(stages, eng)
	if err != nil {
		b.Fatal(err)
	}
	// One warm epoch so the per-microbatch machine pools and tape arenas
	// reach steady state; allocs/op then tracks the true hot-path churn.
	if _, err := tr.Run(context.Background(), 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Run(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReferenceP4(b *testing.B) {
	benchEngineTransformer(b, 4, pipemare.NewReferenceEngine())
}
func BenchmarkEngineConcurrentP4(b *testing.B) {
	benchEngineTransformer(b, 4, concurrent.New())
}
func BenchmarkEngineReferenceP8(b *testing.B) {
	benchEngineTransformer(b, 8, pipemare.NewReferenceEngine())
}
func BenchmarkEngineConcurrentP8(b *testing.B) {
	benchEngineTransformer(b, 8, concurrent.New())
}

// Replicated data-parallel benchmarks: R pipeline replicas split each
// minibatch's 8 microbatches and run concurrently (Reference inners, so
// the scaling isolates the replication axis from pipeline overlap). On
// GOMAXPROCS ≥ 4 the epoch time should drop as R grows; on a single core
// the replicas time-slice and R≈1 throughput is expected.

func benchEngineReplicated(b *testing.B, stages, replicas int) {
	b.Helper()
	tr, err := experiments.NewReplicatedBenchTrainer(stages, replicas, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tr.Run(context.Background(), 1); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Run(context.Background(), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReplicatedR1P4(b *testing.B) { benchEngineReplicated(b, 4, 1) }
func BenchmarkEngineReplicatedR2P4(b *testing.B) { benchEngineReplicated(b, 4, 2) }
func BenchmarkEngineReplicatedR4P4(b *testing.B) { benchEngineReplicated(b, 4, 4) }

// Substrate micro-benchmarks: the kernels the simulator spends its time
// in, for allocation and throughput tracking with -benchmem.

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(64, 64)
	y := tensor.New(64, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkIm2ColConv(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(8, 8, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(x, 3, 3, 1, 1)
	}
}
