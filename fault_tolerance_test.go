package pipemare_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pipemare"
	"pipemare/internal/faults"
	"pipemare/internal/optim"
	"pipemare/internal/transport"
)

// ftBase is the shared recipe of the fault-tolerance suite: the
// all-techniques PipeMare configuration on the 4-stage quadratic task,
// 4 minibatches per epoch (train 32, batch 8), 8 microbatches so three
// replicas each own a non-empty chunk.
func ftBase() []pipemare.Option {
	return append(methodOpts(pipemare.PipeMare),
		pipemare.WithBatchSize(8), pipemare.WithMicrobatches(8),
		pipemare.WithSchedule(optim.Constant(0.05)))
}

// sliceRun copies epochs [lo, hi) of a recorded curve, so a resumed
// run's entries can be compared against the matching reference window
// with requireIdentical.
func sliceRun(r *pipemare.Run, lo, hi int) *pipemare.Run {
	return &pipemare.Run{Loss: r.Loss[lo:hi], Metric: r.Metric[lo:hi],
		ParamNorm: r.ParamNorm[lo:hi], Diverged: r.Diverged}
}

// runWithin guards against the one failure mode eviction must never
// have: a hang. f runs in its own goroutine; a run that neither
// completes nor errors within d fails the test.
func runWithin(t *testing.T, d time.Duration, name string, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("%s: neither completed nor errored within %v (deadlock)", name, d)
		return nil
	}
}

// TestEvictionMatchesFreshSmallerRun is the headline fault-tolerance
// pin, in both commit modes: killing follower replica 2's link on its
// 6th chunk (epoch 2, minibatch 2 of an R=3 loopback run) must evict
// exactly that replica, replay the interrupted minibatch over the two
// survivors, and finish training with a curve bit-identical to the
// fault-free single-replica reference — the determinism invariant makes
// the post-eviction R=2 group indistinguishable from a run that never
// had a third replica. A fresh R=2 trainer restored from the checkpoint
// written just before the faulted minibatch must then retrace the same
// curve, pinning that "evicted run" ≡ "fresh smaller run from the
// checkpoint" end to end.
func TestEvictionMatchesFreshSmallerRun(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 21) }
	base := ftBase()
	ref := runCurve(t, build, 4, 1, base...)
	for _, sharded := range []bool{false, true} {
		name := fmt.Sprintf("evict/sharded=%t", sharded)
		dir := t.TempDir()
		dialers, _, wait := startWorkers(t, 2, build, func() []pipemare.Option { return base })
		dialers[1] = &faults.Dialer{Inner: dialers[1], Script: faults.NewScript(
			faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 6, Op: faults.Kill})}
		tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(3), pipemare.WithShardedStep(sharded),
			pipemare.WithFaultTolerance(),
			pipemare.WithCheckpoint(dir, 1),
			pipemare.WithTransport(dialers...))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := tr.Run(context.Background(), 4)
		if err != nil {
			t.Fatalf("%s: run did not survive the eviction: %v", name, err)
		}
		if tr.Replicas() != 2 {
			t.Fatalf("%s: %d replicas after the fault, want 2 (one evicted)", name, tr.Replicas())
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		errs := wait()
		if errs[0] != nil {
			t.Fatalf("%s: surviving worker: %v", name, errs[0])
		}
		if errs[1] == nil {
			t.Fatalf("%s: killed worker's serve loop ended without error", name)
		}
		requireIdentical(t, name, ref, got)

		// The fault hit epoch 2, minibatch 2 — so the step-5 checkpoint
		// (epoch 2, minibatch 1) predates it. A fresh R=2 trainer restored
		// from that file resumes mid-epoch: it reruns minibatches 2–4 of
		// epoch 2 and the remaining epochs. The partial epoch's averaged
		// loss covers 3 of 4 minibatches (not comparable), but its
		// end-of-epoch metric and parameter norm — functions of the state
		// alone — and every later epoch must match the reference exactly.
		tr2, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
			pipemare.WithReplicas(2), pipemare.WithShardedStep(sharded),
			pipemare.WithFaultTolerance())...)
		if err != nil {
			t.Fatalf("%s: fresh R=2 trainer: %v", name, err)
		}
		if err := tr2.RestoreFrom(filepath.Join(dir, "ckpt-00000005.pm")); err != nil {
			t.Fatalf("%s: restore: %v", name, err)
		}
		tail, err := tr2.Run(context.Background(), 3)
		if err != nil {
			t.Fatalf("%s: restored run: %v", name, err)
		}
		if tail.Epochs() != 3 {
			t.Fatalf("%s: restored run recorded %d epochs, want 3", name, tail.Epochs())
		}
		for e := 0; e < 3; e++ {
			if tail.Metric[e] != ref.Metric[e+1] || tail.ParamNorm[e] != ref.ParamNorm[e+1] {
				t.Fatalf("%s: restored epoch %d state (metric %v, norm %v) != reference (%v, %v)",
					name, e, tail.Metric[e], tail.ParamNorm[e], ref.Metric[e+1], ref.ParamNorm[e+1])
			}
			if e > 0 && tail.Loss[e] != ref.Loss[e+1] {
				t.Fatalf("%s: restored epoch %d loss %v != reference %v", name, e, tail.Loss[e], ref.Loss[e+1])
			}
		}
	}
}

// TestTransientFaultsRecoverWithZeroDeviation pins the retry layer:
// send-side drops — the request provably never reached the peer — and
// delays on the leader→worker link must be absorbed by bounded resends
// with no eviction and a curve bit-identical to the fault-free
// reference.
func TestTransientFaultsRecoverWithZeroDeviation(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 22) }
	base := ftBase()
	ref := runCurve(t, build, 3, 1, base...)
	dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	dialers[0] = &faults.Dialer{Inner: dialers[0], Script: faults.NewScript(
		faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 2, Op: faults.Drop},
		faults.Rule{Dir: faults.Send, Type: transport.MsgSetState, Nth: 3, Op: faults.Drop},
		faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 5, Op: faults.Delay, Delay: 5 * time.Millisecond})}
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithShardedStep(false), pipemare.WithFaultTolerance(),
		pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Run(context.Background(), 3)
	if err != nil {
		t.Fatalf("transient faults were not absorbed: %v", err)
	}
	if tr.Replicas() != 2 {
		t.Fatalf("%d replicas after transient faults, want 2 (no eviction)", tr.Replicas())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for i, werr := range wait() {
		if werr != nil {
			t.Fatalf("worker %d: %v", i+1, werr)
		}
	}
	requireIdentical(t, "transient-faults", ref, got)
}

// TestCrashMidCollectiveNeverDeadlocks kills a follower's link on the
// 2nd message of each collective that crosses the wire — scatter,
// sharded pre-step, step, gather, broadcast, clock sync — in every
// commit mode, under -race. The contract is eviction (run completes
// over the survivors) or a clean error naming the replica; never a
// hang. The sharded commit without fault tolerance is pinned to the
// clean-error side: the dead owner's moment shard is gone, so eviction
// is not sound there.
func TestCrashMidCollectiveNeverDeadlocks(t *testing.T) {
	cases := []struct {
		name        string
		typ         byte
		sharded, ft bool
	}{
		{"serial/broadcast", transport.MsgSetState, false, true},
		{"serial/clock-sync", transport.MsgSync, false, true},
		{"sharded/scatter", transport.MsgSetGrads, true, true},
		{"sharded/prepare", transport.MsgPrepare, true, true},
		{"sharded/step", transport.MsgStep, true, true},
		{"sharded/gather", transport.MsgGetState, true, true},
		{"sharded/broadcast", transport.MsgSetState, true, true},
		{"sharded/scatter/no-ft", transport.MsgSetGrads, true, false},
	}
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 23) }
	base := ftBase()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dialers, _, wait := startWorkers(t, 2, build, func() []pipemare.Option { return base })
			dialers[0] = &faults.Dialer{Inner: dialers[0], Script: faults.NewScript(
				faults.Rule{Dir: faults.Send, Type: tc.typ, Nth: 2, Op: faults.Kill})}
			opts := append(append([]pipemare.Option{}, base...),
				pipemare.WithReplicas(3), pipemare.WithShardedStep(tc.sharded),
				pipemare.WithTransport(dialers...))
			if tc.ft {
				opts = append(opts, pipemare.WithFaultTolerance())
			}
			tr, err := pipemare.New(build(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			err = runWithin(t, 60*time.Second, tc.name, func() error {
				_, err := tr.Run(context.Background(), 2)
				return err
			})
			switch {
			case err == nil && tr.Replicas() != 2:
				t.Fatalf("run completed with %d replicas — the killed link neither evicted nor errored", tr.Replicas())
			case err != nil && !strings.Contains(err.Error(), "replica 1"):
				t.Fatalf("error %q does not name the failed replica", err)
			case err != nil && tc.ft && !tc.sharded:
				// Serial-commit failures are always evictable; an error here
				// means the eviction path regressed.
				t.Fatalf("serial commit aborted instead of evicting: %v", err)
			case err == nil && !tc.ft && tc.sharded:
				t.Fatal("sharded commit without fault tolerance evicted; the dead owner's moments were unrecoverable")
			}
			tr.Close()
			wait() // the killed worker errors by design; the point is both exit
		})
	}
}

// TestCheckpointRestoreResumesBitIdentical pins the checkpoint/restore
// satellite at an epoch boundary: a run checkpointed every 4 steps (one
// epoch) for 3 epochs, restored via pipemare.Restore into a fresh
// trainer, must retrace epochs 4–6 of the uninterrupted reference
// exactly — loss, metric and parameter norm. The restored replica count
// also shrinks from 3 (in-process) to 2, exercising the elastic-
// membership claim without a transport in the loop.
func TestCheckpointRestoreResumesBitIdentical(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 24) }
	base := ftBase()
	ref := runCurve(t, build, 6, 1, base...)
	dir := t.TempDir()
	tr1, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithReplicas(3), pipemare.WithShardedStep(false),
		pipemare.WithCheckpoint(dir, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	head, err := tr1.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "checkpointed-head", sliceRun(ref, 0, 3), head)
	if writes, ns := tr1.CheckpointStats(); writes != 3 || ns <= 0 {
		t.Fatalf("checkpoint stats (%d writes, %dns), want 3 writes and positive time", writes, ns)
	}
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := pipemare.Restore(dir, build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithReplicas(2), pipemare.WithShardedStep(false),
		pipemare.WithCheckpoint(dir, 4))...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	tail, err := tr2.Run(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "restored-tail", sliceRun(ref, 3, 6), tail)
}

// TestRestoreLatestSkipsCorruptCheckpoint pins restore robustness: a
// corrupted newest checkpoint (one flipped payload byte, caught by the
// frame CRC) must not half-apply — RestoreLatest falls back to the next
// older file and reports its step; with every file damaged it returns
// an error and leaves the trainer untouched.
func TestRestoreLatestSkipsCorruptCheckpoint(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 25) }
	base := ftBase()
	dir := t.TempDir()
	tr1, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithCheckpoint(dir, 1))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr1.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// corrupt flips one payload byte at off — distinct offsets below, so
	// re-corrupting an already-damaged file never XORs it back to valid.
	corrupt := func(path string, off func(n int) int) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[off(len(b))] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(filepath.Join(dir, "ckpt-00000008.pm"), func(n int) int { return n / 2 })
	tr2, err := pipemare.New(build(), base...)
	if err != nil {
		t.Fatal(err)
	}
	step, err := tr2.RestoreLatest(dir)
	if err != nil {
		t.Fatalf("restore with one corrupt file: %v", err)
	}
	if step != 7 {
		t.Fatalf("restored step %d, want 7 (the newest valid checkpoint)", step)
	}
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		corrupt(f, func(n int) int { return n / 3 })
	}
	if _, err := tr2.RestoreLatest(dir); err == nil {
		t.Fatal("restore succeeded although every checkpoint is corrupt")
	}
}

// TestHeartbeatEvictsHungPeer pins hung-peer detection: a worker that
// stops replying without its connection dying is invisible to I/O
// errors — only the liveness window catches it. With a 10ms heartbeat
// the leader declares the peer dead after 10 silent intervals, evicts
// it, and finishes training bit-identically to the reference.
func TestHeartbeatEvictsHungPeer(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 26) }
	base := ftBase()
	ref := runCurve(t, build, 2, 1, base...)
	dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	// Hang the leader's read of the worker's 3rd chunk reply: the reply
	// arrives but the link then blocks until the liveness window expires.
	dialers[0] = &faults.Dialer{Inner: dialers[0], Script: faults.NewScript(
		faults.Rule{Dir: faults.Recv, Type: transport.MsgChunkDone, Nth: 3, Op: faults.Hang})}
	tr, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithShardedStep(false), pipemare.WithFaultTolerance(),
		pipemare.WithHeartbeat(10*time.Millisecond),
		pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	var got *pipemare.Run
	err = runWithin(t, 60*time.Second, "hung-peer", func() error {
		r, err := tr.Run(context.Background(), 2)
		got = r
		return err
	})
	if err != nil {
		t.Fatalf("hung peer was not evicted: %v", err)
	}
	if tr.Replicas() != 1 {
		t.Fatalf("%d replicas after the hang, want 1", tr.Replicas())
	}
	requireIdentical(t, "hung-peer", ref, got)
	tr.Close()
	wait() // the hung worker's serve loop ends in an error by design
}

// TestCloseIdempotent pins the Close contract: closing twice — after a
// successful run and after a failed one — returns nil the second time
// and never panics or double-releases followers.
func TestCloseIdempotent(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 27) }
	base := ftBase()
	tr, err := pipemare.New(build(), base...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Close after a failed Run: a killed link under the non-tolerant
	// sharded commit aborts the run; the trainer must still close, and
	// close again as a no-op.
	dialers, _, wait := startWorkers(t, 1, build, func() []pipemare.Option { return base })
	dialers[0] = &faults.Dialer{Inner: dialers[0], Script: faults.NewScript(
		faults.Rule{Dir: faults.Send, Type: transport.MsgRunChunk, Nth: 2, Op: faults.Kill})}
	tr2, err := pipemare.New(build(), append(append([]pipemare.Option{}, base...),
		pipemare.WithShardedStep(true), pipemare.WithTransport(dialers...))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Run(context.Background(), 2); err == nil {
		t.Fatal("run survived a killed link without fault tolerance")
	}
	tr2.Close() // first close may report the dead link
	if err := tr2.Close(); err != nil {
		t.Fatalf("close after failed run is not idempotent: %v", err)
	}
	wait()
}

// TestFaultToleranceOptionValidation pins the new options' error paths.
func TestFaultToleranceOptionValidation(t *testing.T) {
	build := func() pipemare.Task { return newQuadTask(4, 32, 8, 28) }
	if _, err := pipemare.New(build(), pipemare.WithCheckpoint("", 1)); err == nil ||
		!strings.Contains(err.Error(), "checkpoint directory") {
		t.Fatalf("empty checkpoint dir: err = %v", err)
	}
	if _, err := pipemare.New(build(), pipemare.WithCheckpoint(t.TempDir(), -1)); err == nil ||
		!strings.Contains(err.Error(), "cadence") {
		t.Fatalf("negative checkpoint cadence: err = %v", err)
	}
	if _, err := pipemare.New(build(), pipemare.WithHeartbeat(-time.Second)); err == nil ||
		!strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("negative heartbeat: err = %v", err)
	}
	if _, err := pipemare.Restore(t.TempDir(), build(), ftBase()...); err == nil ||
		!strings.Contains(err.Error(), "no checkpoints") {
		t.Fatalf("restore from empty dir: err = %v", err)
	}
}
