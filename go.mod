module pipemare

go 1.24
