// Package nn is a minimal layer-level neural-network library built for the
// PipeMare reproduction. Its defining feature is weight decoupling: every
// Param carries separate forward weights (Data) and backward weights (Bwd),
// so a pipeline simulator can compute the paper's two-argument gradient
// ∇f_t(u_fwd, u_bkwd) — backpropagation where the forward pass and the
// input-gradient computation see different weight versions — with real
// backprop rather than an approximation.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"pipemare/internal/tensor"
)

// Param is a trainable tensor with decoupled forward/backward values.
type Param struct {
	Name string
	// Data holds the weights used in the forward pass.
	Data *tensor.Tensor
	// Bwd, when non-nil, holds the weights used to compute input gradients
	// in the backward pass (u_bkwd in the paper). When nil, backward uses
	// Data, i.e. synchronous execution.
	Bwd *tensor.Tensor
	// Grad accumulates the parameter gradient.
	//
	// Accumulation contract: a layer's Backward adds its whole per-call
	// contribution with exactly ONE floating-point add per element (the
	// contribution is formed in a scratch buffer first and folded with a
	// single AddInto). Because each microbatch therefore lands as one add
	// of a value that does not depend on the accumulator, a gradient
	// computed into a zeroed buffer and folded in later is bit-identical
	// to direct accumulation — which is what lets the replica layer
	// (internal/replica) all-reduce per-microbatch gradients across
	// data-parallel replicas without perturbing training curves.
	Grad *tensor.Tensor
}

// NewParam returns a zero-initialized parameter of the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Data: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// BwdData returns the weights to use for input-gradient computation.
func (p *Param) BwdData() *tensor.Tensor {
	if p.Bwd != nil {
		return p.Bwd
	}
	return p.Data
}

// CastTo converts the parameter's weights, backward weights and gradient
// accumulator to dt in place (no-op when already that dtype). Casting
// float64→float32 rounds each element once, so a float32 model is the
// rounded image of the float64 initialization — the rng draw sequence is
// shared across dtypes.
func (p *Param) CastTo(dt tensor.DType) {
	p.Data.CastTo(dt)
	p.Grad.CastTo(dt)
	if p.Bwd != nil {
		p.Bwd.CastTo(dt)
	}
}

// Size returns the number of scalar elements in the parameter.
func (p *Param) Size() int { return p.Data.Size() }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// String identifies the parameter in diagnostics.
func (p *Param) String() string { return fmt.Sprintf("%s%v", p.Name, p.Data.Shape) }

// InitXavier fills p.Data with Xavier/Glorot-uniform values for the given
// fan-in and fan-out.
func (p *Param) InitXavier(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i, n := 0, p.Data.Size(); i < n; i++ {
		p.Data.SetFlat(i, (2*rng.Float64()-1)*limit)
	}
}

// InitHe fills p.Data with He-normal values for the given fan-in,
// appropriate before ReLU nonlinearities.
func (p *Param) InitHe(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i, n := 0, p.Data.Size(); i < n; i++ {
		p.Data.SetFlat(i, rng.NormFloat64()*std)
	}
}

// InitNormal fills p.Data with N(0, std²) values.
func (p *Param) InitNormal(rng *rand.Rand, std float64) {
	for i, n := 0, p.Data.Size(); i < n; i++ {
		p.Data.SetFlat(i, rng.NormFloat64()*std)
	}
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all parameter gradients,
// accumulated in float64 for both dtypes.
func GradNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		s += p.Grad.SumSq()
	}
	return math.Sqrt(s)
}

// ParamNorm returns the global L2 norm of all parameter values (forward
// weights), used for the divergence diagnostics of Figure 7.
func ParamNorm(params []*Param) float64 {
	s := 0.0
	for _, p := range params {
		s += p.Data.SumSq()
	}
	return math.Sqrt(s)
}

// TotalSize returns the total number of scalar weights.
func TotalSize(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	return n
}
