package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Embedding maps integer token ids (carried in a float64 tensor of shape
// (B, T)) to dense vectors, producing (B*T, D). The token id tensor is not
// differentiable; Backward returns a zero tensor of the input shape.
type Embedding struct {
	W *Param // table, shape (V, D)
}

type embState struct {
	ids   []int
	inShp []int
}

// NewEmbedding returns an embedding table with N(0, 0.02²) initialization.
func NewEmbedding(name string, vocab, d int, rng *rand.Rand) *Embedding {
	e := &Embedding{W: NewParam(name+".W", vocab, d)}
	e.W.InitNormal(rng, 0.02)
	return e
}

// Forward gathers rows of the table for each token id.
func (e *Embedding) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n := x.Size()
	d := e.W.Data.Shape[1]
	ids := t.Ints(n)
	inShp := t.Ints(len(x.Shape))
	copy(inShp, x.Shape)
	out := t.NewTensor(n, d)
	for i := 0; i < n; i++ {
		id := int(x.Data[i])
		ids[i] = id
		copy(out.Data[i*d:(i+1)*d], e.W.Data.Data[id*d:(id+1)*d])
	}
	t.Push(embState{ids, inShp})
	return out
}

// Backward scatter-adds dy rows into a compact per-unique-token temporary
// and folds each touched table row into the gradient with one add per
// element, keeping the one-add-per-element-per-call accumulation contract
// (see Param.Grad) even when a token id occurs several times in the
// microbatch — without touching the O(V·d) untouched remainder of the
// table.
func (e *Embedding) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(embState)
	v, d := e.W.Data.Shape[0], e.W.Data.Shape[1]
	n := len(st.ids)
	rowOf := t.Ints(v)
	for i := range rowOf {
		rowOf[i] = -1
	}
	uniq := t.Ints(n)
	dW := t.NewTensor(n, d)
	k := 0
	for i, id := range st.ids {
		r := rowOf[id]
		if r < 0 {
			r = k
			rowOf[id] = r
			uniq[k] = id
			k++
		}
		row := dy.Data[i*d : (i+1)*d]
		g := dW.Data[r*d : (r+1)*d]
		for j := range row {
			g[j] += row[j]
		}
	}
	for r := 0; r < k; r++ {
		g := e.W.Grad.Data[uniq[r]*d : (uniq[r]+1)*d]
		src := dW.Data[r*d : (r+1)*d]
		for j := range src {
			g[j] += src[j]
		}
	}
	return t.NewTensor(st.inShp...)
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// PositionalEncoding adds a learned position embedding of shape (T, D) to a
// (B*T, D) activation with fixed sequence length T.
type PositionalEncoding struct {
	W      *Param // (T, D)
	SeqLen int
}

// NewPositionalEncoding returns a learned positional encoding.
func NewPositionalEncoding(name string, seqLen, d int, rng *rand.Rand) *PositionalEncoding {
	p := &PositionalEncoding{W: NewParam(name+".W", seqLen, d), SeqLen: seqLen}
	p.W.InitNormal(rng, 0.02)
	return p
}

// Forward adds the position embedding row-cyclically.
func (p *PositionalEncoding) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Shape[0], x.Shape[1]
	out := t.NewTensor(n, d)
	for i := 0; i < n; i++ {
		ti := i % p.SeqLen
		for j := 0; j < d; j++ {
			out.Data[i*d+j] = x.Data[i*d+j] + p.W.Data.Data[ti*d+j]
		}
	}
	return out
}

// Backward accumulates the position gradient (via a temporary and a single
// AddInto — see Param.Grad) and passes dy through.
func (p *PositionalEncoding) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	n, d := dy.Shape[0], dy.Shape[1]
	dW := t.NewTensor(p.W.Data.Shape...)
	for i := 0; i < n; i++ {
		ti := i % p.SeqLen
		for j := 0; j < d; j++ {
			dW.Data[ti*d+j] += dy.Data[i*d+j]
		}
	}
	tensor.AddInto(p.W.Grad, dW)
	return dy
}

// Params returns the position table.
func (p *PositionalEncoding) Params() []*Param { return []*Param{p.W} }
