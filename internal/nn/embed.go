package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Embedding maps integer token ids (carried in a float64 tensor of shape
// (B, T)) to dense vectors, producing (B*T, D). The token id tensor is not
// differentiable; Backward returns a zero tensor of the input shape.
type Embedding struct {
	W *Param // table, shape (V, D)
}

type embState struct {
	ids   []int
	inShp []int
}

// NewEmbedding returns an embedding table with N(0, 0.02²) initialization.
func NewEmbedding(name string, vocab, d int, rng *rand.Rand) *Embedding {
	e := &Embedding{W: NewParam(name+".W", vocab, d)}
	e.W.InitNormal(rng, 0.02)
	return e
}

// Forward gathers rows of the table for each token id.
func (e *Embedding) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n := x.Size()
	d := e.W.Data.Shape[1]
	ids := t.Ints(n)
	inShp := t.Ints(len(x.Shape))
	copy(inShp, x.Shape)
	out := t.NewTensor(n, d)
	// Token ids arrive as float64 regardless of the model dtype (FlatAt
	// converts); the gathered rows copy raw since out and the table share
	// the model dtype.
	for i := 0; i < n; i++ {
		id := int(x.FlatAt(i))
		ids[i] = id
		tensor.CopyRange(out, i*d, e.W.Data, id*d, d)
	}
	t.Push(embState{ids, inShp})
	return out
}

// Backward scatter-adds dy rows into a compact per-unique-token temporary
// and folds each touched table row into the gradient with one add per
// element, keeping the one-add-per-element-per-call accumulation contract
// (see Param.Grad) even when a token id occurs several times in the
// microbatch — without touching the O(V·d) untouched remainder of the
// table.
func (e *Embedding) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(embState)
	v, d := e.W.Data.Shape[0], e.W.Data.Shape[1]
	n := len(st.ids)
	rowOf := t.Ints(v)
	for i := range rowOf {
		rowOf[i] = -1
	}
	uniq := t.Ints(n)
	dW := t.NewTensor(n, d)
	if dy.DType() == tensor.Float32 {
		k := embScatter(tensor.F32(dW), tensor.F32(dy), st.ids, rowOf, uniq, d)
		embFold(tensor.F32(e.W.Grad), tensor.F32(dW), uniq, k, d)
	} else {
		k := embScatter(tensor.F64(dW), tensor.F64(dy), st.ids, rowOf, uniq, d)
		embFold(tensor.F64(e.W.Grad), tensor.F64(dW), uniq, k, d)
	}
	return t.NewTensor(st.inShp...)
}

// embScatter compacts dy rows onto per-unique-token rows of dW, returning
// the number of unique tokens seen.
func embScatter[T tensor.Elem](dW, dy []T, ids, rowOf, uniq []int, d int) int {
	k := 0
	for i, id := range ids {
		r := rowOf[id]
		if r < 0 {
			r = k
			rowOf[id] = r
			uniq[k] = id
			k++
		}
		row := dy[i*d : (i+1)*d]
		g := dW[r*d : (r+1)*d]
		for j := range row {
			g[j] += row[j]
		}
	}
	return k
}

// embFold adds each compacted row into the table gradient: one add per
// touched element per call.
func embFold[T tensor.Elem](grad, dW []T, uniq []int, k, d int) {
	for r := 0; r < k; r++ {
		g := grad[uniq[r]*d : (uniq[r]+1)*d]
		src := dW[r*d : (r+1)*d]
		for j := range src {
			g[j] += src[j]
		}
	}
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }

// PositionalEncoding adds a learned position embedding of shape (T, D) to a
// (B*T, D) activation with fixed sequence length T.
type PositionalEncoding struct {
	W      *Param // (T, D)
	SeqLen int
}

// NewPositionalEncoding returns a learned positional encoding.
func NewPositionalEncoding(name string, seqLen, d int, rng *rand.Rand) *PositionalEncoding {
	p := &PositionalEncoding{W: NewParam(name+".W", seqLen, d), SeqLen: seqLen}
	p.W.InitNormal(rng, 0.02)
	return p
}

// Forward adds the position embedding row-cyclically.
func (p *PositionalEncoding) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Shape[0], x.Shape[1]
	out := t.NewTensor(n, d)
	if x.DType() == tensor.Float32 {
		peFwd(tensor.F32(out), tensor.F32(x), tensor.F32(p.W.Data), n, d, p.SeqLen)
	} else {
		peFwd(tensor.F64(out), tensor.F64(x), tensor.F64(p.W.Data), n, d, p.SeqLen)
	}
	return out
}

func peFwd[T tensor.Elem](out, x, w []T, n, d, seqLen int) {
	for i := 0; i < n; i++ {
		ti := i % seqLen
		for j := 0; j < d; j++ {
			out[i*d+j] = x[i*d+j] + w[ti*d+j]
		}
	}
}

// Backward accumulates the position gradient (via a temporary and a single
// AddInto — see Param.Grad) and passes dy through.
func (p *PositionalEncoding) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	n, d := dy.Shape[0], dy.Shape[1]
	dW := t.NewTensor(p.W.Data.Shape...)
	if dy.DType() == tensor.Float32 {
		peBwd(tensor.F32(dW), tensor.F32(dy), n, d, p.SeqLen)
	} else {
		peBwd(tensor.F64(dW), tensor.F64(dy), n, d, p.SeqLen)
	}
	tensor.AddInto(p.W.Grad, dW)
	return dy
}

func peBwd[T tensor.Elem](dW, dy []T, n, d, seqLen int) {
	for i := 0; i < n; i++ {
		ti := i % seqLen
		for j := 0; j < d; j++ {
			dW[ti*d+j] += dy[i*d+j]
		}
	}
}

// Params returns the position table.
func (p *PositionalEncoding) Params() []*Param { return []*Param{p.W} }
