package nn

import (
	"math"
	"math/rand"

	"pipemare/internal/tensor"
)

// MultiHeadAttention implements scaled dot-product attention with separate
// query/key/value/output projections. Activations are (B*T, D) matrices
// with a fixed sequence length per side, matching the synthetic translation
// task. The projections are Linear layers, so the decoupled-weight
// machinery applies to them automatically; the attention core itself is
// weightless.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Heads, D       int
	QLen, KLen     int  // sequence lengths on the query and key/value sides
	Causal         bool // mask future positions (QLen must equal KLen)

	batch   int
	q, k, v *tensor.Tensor   // cached post-projection activations
	probs   []*tensor.Tensor // cached softmax probabilities per (batch, head)
}

// NewMultiHeadAttention returns an attention block over dimension d with
// the given number of heads. qLen and kLen are the fixed query-side and
// key-side sequence lengths.
func NewMultiHeadAttention(name string, d, heads, qLen, kLen int, causal bool, rng *rand.Rand) *MultiHeadAttention {
	if d%heads != 0 {
		panic("nn: attention dimension must be divisible by heads")
	}
	if causal && qLen != kLen {
		panic("nn: causal attention requires qLen == kLen")
	}
	return &MultiHeadAttention{
		Wq:    NewLinear(name+".q", d, d, true, rng),
		Wk:    NewLinear(name+".k", d, d, true, rng),
		Wv:    NewLinear(name+".v", d, d, true, rng),
		Wo:    NewLinear(name+".o", d, d, true, rng),
		Heads: heads, D: d, QLen: qLen, KLen: kLen, Causal: causal,
	}
}

// ForwardQKV runs attention with queries from xq and keys/values from xkv.
// xq has shape (B*QLen, D) and xkv has shape (B*KLen, D).
func (m *MultiHeadAttention) ForwardQKV(xq, xkv *tensor.Tensor) *tensor.Tensor {
	m.batch = xq.Shape[0] / m.QLen
	m.q = m.Wq.Forward(xq)
	m.k = m.Wk.Forward(xkv)
	m.v = m.Wv.Forward(xkv)
	dk := m.D / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	y := tensor.New(m.batch*m.QLen, m.D)
	m.probs = m.probs[:0]
	for b := 0; b < m.batch; b++ {
		for h := 0; h < m.Heads; h++ {
			qh := m.sliceHead(m.q, b, h, m.QLen)
			kh := m.sliceHead(m.k, b, h, m.KLen)
			vh := m.sliceHead(m.v, b, h, m.KLen)
			s := tensor.MatMulT2(qh, kh)
			for i := range s.Data {
				s.Data[i] *= scale
			}
			if m.Causal {
				for i := 0; i < m.QLen; i++ {
					for j := i + 1; j < m.KLen; j++ {
						s.Data[i*m.KLen+j] = math.Inf(-1)
					}
				}
			}
			p := tensor.SoftmaxRows(s)
			m.probs = append(m.probs, p)
			yh := tensor.MatMul(p, vh)
			m.scatterHead(y, yh, b, h, m.QLen)
		}
	}
	return m.Wo.Forward(y)
}

// BackwardQKV backpropagates dy through the attention block, returning the
// gradients with respect to xq and xkv.
func (m *MultiHeadAttention) BackwardQKV(dy *tensor.Tensor) (dxq, dxkv *tensor.Tensor) {
	dYall := m.Wo.Backward(dy)
	dk := m.D / m.Heads
	scale := 1 / math.Sqrt(float64(dk))
	dQ := tensor.New(m.batch*m.QLen, m.D)
	dK := tensor.New(m.batch*m.KLen, m.D)
	dV := tensor.New(m.batch*m.KLen, m.D)
	for b := 0; b < m.batch; b++ {
		for h := 0; h < m.Heads; h++ {
			p := m.probs[b*m.Heads+h]
			qh := m.sliceHead(m.q, b, h, m.QLen)
			kh := m.sliceHead(m.k, b, h, m.KLen)
			vh := m.sliceHead(m.v, b, h, m.KLen)
			dyh := m.sliceHead(dYall, b, h, m.QLen)
			dvh := tensor.MatMulT1(p, dyh)
			dp := tensor.MatMulT2(dyh, vh)
			// Softmax backward: ds = p ⊙ (dp − rowsum(dp ⊙ p)).
			ds := tensor.New(m.QLen, m.KLen)
			for i := 0; i < m.QLen; i++ {
				dot := 0.0
				for j := 0; j < m.KLen; j++ {
					dot += dp.Data[i*m.KLen+j] * p.Data[i*m.KLen+j]
				}
				for j := 0; j < m.KLen; j++ {
					ds.Data[i*m.KLen+j] = p.Data[i*m.KLen+j] * (dp.Data[i*m.KLen+j] - dot) * scale
				}
			}
			dqh := tensor.MatMul(ds, kh)
			dkh := tensor.MatMulT1(ds, qh)
			m.scatterHead(dQ, dqh, b, h, m.QLen)
			m.scatterHead(dK, dkh, b, h, m.KLen)
			m.scatterHead(dV, dvh, b, h, m.KLen)
		}
	}
	dxq = m.Wq.Backward(dQ)
	dxkv = m.Wk.Backward(dK)
	tensor.AddInto(dxkv, m.Wv.Backward(dV))
	return dxq, dxkv
}

// sliceHead extracts the (seqLen, dk) block for batch b and head h from a
// (B*seqLen, D) activation.
func (m *MultiHeadAttention) sliceHead(x *tensor.Tensor, b, h, seqLen int) *tensor.Tensor {
	dk := m.D / m.Heads
	out := tensor.New(seqLen, dk)
	for t := 0; t < seqLen; t++ {
		src := x.Data[(b*seqLen+t)*m.D+h*dk:]
		copy(out.Data[t*dk:(t+1)*dk], src[:dk])
	}
	return out
}

// scatterHead adds the (seqLen, dk) block for batch b and head h into a
// (B*seqLen, D) activation.
func (m *MultiHeadAttention) scatterHead(dst, src *tensor.Tensor, b, h, seqLen int) {
	dk := m.D / m.Heads
	for t := 0; t < seqLen; t++ {
		d := dst.Data[(b*seqLen+t)*m.D+h*dk:]
		s := src.Data[t*dk : (t+1)*dk]
		for j := range s {
			d[j] += s[j]
		}
	}
}

// Params returns all projection parameters in q, k, v, o order.
func (m *MultiHeadAttention) Params() []*Param {
	var ps []*Param
	for _, l := range []*Linear{m.Wq, m.Wk, m.Wv, m.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SelfAttention adapts MultiHeadAttention to the Layer interface with
// queries, keys and values all drawn from the same input.
type SelfAttention struct {
	MHA *MultiHeadAttention
}

// NewSelfAttention returns a self-attention layer.
func NewSelfAttention(name string, d, heads, seqLen int, causal bool, rng *rand.Rand) *SelfAttention {
	return &SelfAttention{MHA: NewMultiHeadAttention(name, d, heads, seqLen, seqLen, causal, rng)}
}

// Forward runs self-attention on x.
func (s *SelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.MHA.ForwardQKV(x, x)
}

// Backward sums the query-side and key/value-side input gradients.
func (s *SelfAttention) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dxq, dxkv := s.MHA.BackwardQKV(dy)
	return tensor.Add(dxq, dxkv)
}

// Params returns the projection parameters.
func (s *SelfAttention) Params() []*Param { return s.MHA.Params() }
