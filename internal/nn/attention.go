package nn

import (
	"math"
	"math/rand"

	"pipemare/internal/tensor"
)

// AttnCore is the weightless scaled dot-product attention core over
// pre-projected (B*QLen, D) queries and (B*KLen, D) keys/values, split
// into Heads heads of dimension D/Heads. It is a separate piece so the
// stage-split op programs can place the q/k/v/o projections in different
// pipeline stages (they are distinct weight groups) with the core riding
// along with the output projection.
type AttnCore struct {
	Heads, D   int
	QLen, KLen int  // sequence lengths on the query and key/value sides
	Causal     bool // mask future positions (QLen must equal KLen)
	ElemBytes  int  // cost-model element size in bytes; 0 means float64
}

type attnState struct {
	batch   int
	q, k, v *tensor.Tensor
	probs   *tensor.Tensor // (batch*heads, QLen*KLen) softmax rows
}

// NewAttnCore returns an attention core.
func NewAttnCore(d, heads, qLen, kLen int, causal bool) *AttnCore {
	if d%heads != 0 {
		panic("nn: attention dimension must be divisible by heads")
	}
	if causal && qLen != kLen {
		panic("nn: causal attention requires qLen == kLen")
	}
	return &AttnCore{Heads: heads, D: d, QLen: qLen, KLen: kLen, Causal: causal}
}

// attnFlopsPerPair approximates the scalar work of one (batch, head) pair
// for the parallel work gate: two QLen×KLen×dk matmuls plus the softmax.
func (a *AttnCore) attnFlopsPerPair() int {
	dk := a.D / a.Heads
	return a.QLen * a.KLen * (4*dk + 16)
}

// Forward computes softmax(q·kᵀ/√dk)·v per (batch, head). The (batch, head)
// pairs are independent — each writes a disjoint probs row and a disjoint
// (head-column) block of y — so they are split across the tensor worker
// pool with one scratch set per chunk; every output element is produced by
// exactly one pair, so the parallel result is bit-identical to the serial
// loop.
func (a *AttnCore) Forward(t *Tape, q, k, v *tensor.Tensor) *tensor.Tensor {
	batch := q.Shape[0] / a.QLen
	dk := a.D / a.Heads
	scale := 1 / math.Sqrt(float64(dk))
	y := t.NewTensor(batch*a.QLen, a.D)
	probs := t.NewTensor(batch*a.Heads, a.QLen*a.KLen)
	pairs := batch * a.Heads
	w := tensor.PlanRows(pairs, pairs*a.attnFlopsPerPair())
	// Scratch per chunk, allocated from the tape on the calling goroutine.
	type fwdScratch struct{ s, qh, kh, vh, yh *tensor.Tensor }
	scr := make([]fwdScratch, w)
	for c := range scr {
		scr[c] = fwdScratch{
			s:  t.NewTensor(a.QLen, a.KLen),
			qh: t.NewTensor(a.QLen, dk),
			kh: t.NewTensor(a.KLen, dk),
			vh: t.NewTensor(a.KLen, dk),
			yh: t.NewTensor(a.QLen, dk),
		}
	}
	tensor.ParallelChunks(w, pairs, func(c, lo, hi int) {
		s, qh, kh, vh, yh := scr[c].s, scr[c].qh, scr[c].kh, scr[c].vh, scr[c].yh
		for idx := lo; idx < hi; idx++ {
			b, h := idx/a.Heads, idx%a.Heads
			a.sliceHead(qh, q, b, h, a.QLen)
			a.sliceHead(kh, k, b, h, a.KLen)
			a.sliceHead(vh, v, b, h, a.KLen)
			tensor.MatMulT2Into(s, qh, kh)
			if s.DType() == tensor.Float32 {
				attnScaleMask(tensor.F32(s), scale, a.Causal, a.QLen, a.KLen)
			} else {
				attnScaleMask(tensor.F64(s), scale, a.Causal, a.QLen, a.KLen)
			}
			p := probs.RowView(idx, a.QLen, a.KLen)
			tensor.SoftmaxRowsInto(p, s)
			yh.Zero()
			tensor.MatMulInto(yh, p, vh)
			a.scatterHead(y, yh, b, h, a.QLen)
		}
	})
	t.Push(attnState{batch, q, k, v, probs})
	return y
}

// attnScaleMask scales the score matrix in the dtype's native precision
// and applies the causal mask.
func attnScaleMask[T tensor.Elem](s []T, scale float64, causal bool, qLen, kLen int) {
	sc := T(scale)
	for i := range s {
		s[i] *= sc
	}
	if causal {
		ninf := T(math.Inf(-1))
		for i := 0; i < qLen; i++ {
			for j := i + 1; j < kLen; j++ {
				s[i*kLen+j] = ninf
			}
		}
	}
}

// Backward backpropagates dy through the attention core, returning the
// gradients with respect to q, k and v. Like Forward, the (batch, head)
// pairs write disjoint blocks of dQ/dK/dV and are split across the tensor
// worker pool with per-chunk scratch, bit-identical to the serial loop.
func (a *AttnCore) Backward(t *Tape, dy *tensor.Tensor) (dq, dk, dv *tensor.Tensor) {
	st := t.Pop().(attnState)
	dkh := a.D / a.Heads
	scale := 1 / math.Sqrt(float64(dkh))
	dQ := t.NewTensor(st.batch*a.QLen, a.D)
	dK := t.NewTensor(st.batch*a.KLen, a.D)
	dV := t.NewTensor(st.batch*a.KLen, a.D)
	pairs := st.batch * a.Heads
	w := tensor.PlanRows(pairs, 2*pairs*a.attnFlopsPerPair())
	type bwdScratch struct{ qh, kh, vh, dyh, dvh, dp, ds, dqh, dkhT *tensor.Tensor }
	scr := make([]bwdScratch, w)
	for c := range scr {
		scr[c] = bwdScratch{
			qh:   t.NewTensor(a.QLen, dkh),
			kh:   t.NewTensor(a.KLen, dkh),
			vh:   t.NewTensor(a.KLen, dkh),
			dyh:  t.NewTensor(a.QLen, dkh),
			dvh:  t.NewTensor(a.KLen, dkh),
			dp:   t.NewTensor(a.QLen, a.KLen),
			ds:   t.NewTensor(a.QLen, a.KLen),
			dqh:  t.NewTensor(a.QLen, dkh),
			dkhT: t.NewTensor(a.KLen, dkh),
		}
	}
	tensor.ParallelChunks(w, pairs, func(c, lo, hi int) {
		s := scr[c]
		for idx := lo; idx < hi; idx++ {
			b, h := idx/a.Heads, idx%a.Heads
			p := st.probs.RowView(idx, a.QLen, a.KLen)
			a.sliceHead(s.qh, st.q, b, h, a.QLen)
			a.sliceHead(s.kh, st.k, b, h, a.KLen)
			a.sliceHead(s.vh, st.v, b, h, a.KLen)
			a.sliceHead(s.dyh, dy, b, h, a.QLen)
			s.dvh.Zero()
			tensor.MatMulT1Into(s.dvh, p, s.dyh)
			tensor.MatMulT2Into(s.dp, s.dyh, s.vh)
			// Softmax backward: ds = p ⊙ (dp − rowsum(dp ⊙ p)).
			if p.DType() == tensor.Float32 {
				attnSoftmaxBwd(tensor.F32(s.ds), tensor.F32(s.dp), tensor.F32(p), a.QLen, a.KLen, scale)
			} else {
				attnSoftmaxBwd(tensor.F64(s.ds), tensor.F64(s.dp), tensor.F64(p), a.QLen, a.KLen, scale)
			}
			s.dqh.Zero()
			tensor.MatMulInto(s.dqh, s.ds, s.kh)
			s.dkhT.Zero()
			tensor.MatMulT1Into(s.dkhT, s.ds, s.qh)
			a.scatterHead(dQ, s.dqh, b, h, a.QLen)
			a.scatterHead(dK, s.dkhT, b, h, a.KLen)
			a.scatterHead(dV, s.dvh, b, h, a.KLen)
		}
	})
	return dQ, dK, dV
}

// attnSoftmaxBwd computes ds = p ⊙ (dp − rowsum(dp ⊙ p))·scale with the
// row dot accumulated in float64 for both dtypes.
func attnSoftmaxBwd[T tensor.Elem](ds, dp, p []T, qLen, kLen int, scale float64) {
	for i := 0; i < qLen; i++ {
		dot := 0.0
		for j := 0; j < kLen; j++ {
			dot += float64(dp[i*kLen+j]) * float64(p[i*kLen+j])
		}
		for j := 0; j < kLen; j++ {
			ds[i*kLen+j] = T(float64(p[i*kLen+j]) * (float64(dp[i*kLen+j]) - dot) * scale)
		}
	}
}

// sliceHead copies the (seqLen, dk) block for batch b and head h out of a
// (B*seqLen, D) activation.
func (a *AttnCore) sliceHead(dst, x *tensor.Tensor, b, h, seqLen int) {
	if x.DType() == tensor.Float32 {
		sliceHead(tensor.F32(dst), tensor.F32(x), b, h, seqLen, a.D, a.D/a.Heads)
	} else {
		sliceHead(tensor.F64(dst), tensor.F64(x), b, h, seqLen, a.D, a.D/a.Heads)
	}
}

func sliceHead[T tensor.Elem](dst, x []T, b, h, seqLen, d, dk int) {
	for ti := 0; ti < seqLen; ti++ {
		src := x[(b*seqLen+ti)*d+h*dk:]
		copy(dst[ti*dk:(ti+1)*dk], src[:dk])
	}
}

// scatterHead adds the (seqLen, dk) block for batch b and head h into a
// (B*seqLen, D) activation.
func (a *AttnCore) scatterHead(dst, src *tensor.Tensor, b, h, seqLen int) {
	if dst.DType() == tensor.Float32 {
		scatterHead(tensor.F32(dst), tensor.F32(src), b, h, seqLen, a.D, a.D/a.Heads)
	} else {
		scatterHead(tensor.F64(dst), tensor.F64(src), b, h, seqLen, a.D, a.D/a.Heads)
	}
}

func scatterHead[T tensor.Elem](dst, src []T, b, h, seqLen, d, dk int) {
	for ti := 0; ti < seqLen; ti++ {
		drow := dst[(b*seqLen+ti)*d+h*dk:]
		srow := src[ti*dk : (ti+1)*dk]
		for j := range srow {
			drow[j] += srow[j]
		}
	}
}

// MultiHeadAttention composes query/key/value/output projections around an
// AttnCore. Activations are (B*T, D) matrices with a fixed sequence length
// per side, matching the synthetic translation task. The projections are
// Linear layers, so the decoupled-weight machinery applies to them
// automatically.
type MultiHeadAttention struct {
	Wq, Wk, Wv, Wo *Linear
	Core           *AttnCore
}

// NewMultiHeadAttention returns an attention block over dimension d with
// the given number of heads. qLen and kLen are the fixed query-side and
// key-side sequence lengths.
func NewMultiHeadAttention(name string, d, heads, qLen, kLen int, causal bool, rng *rand.Rand) *MultiHeadAttention {
	return &MultiHeadAttention{
		Wq:   NewLinear(name+".q", d, d, true, rng),
		Wk:   NewLinear(name+".k", d, d, true, rng),
		Wv:   NewLinear(name+".v", d, d, true, rng),
		Wo:   NewLinear(name+".o", d, d, true, rng),
		Core: NewAttnCore(d, heads, qLen, kLen, causal),
	}
}

// ForwardQKV runs attention with queries from xq and keys/values from xkv.
// xq has shape (B*QLen, D) and xkv has shape (B*KLen, D).
func (m *MultiHeadAttention) ForwardQKV(t *Tape, xq, xkv *tensor.Tensor) *tensor.Tensor {
	q := m.Wq.Forward(t, xq)
	k := m.Wk.Forward(t, xkv)
	v := m.Wv.Forward(t, xkv)
	y := m.Core.Forward(t, q, k, v)
	return m.Wo.Forward(t, y)
}

// BackwardQKV backpropagates dy through the attention block, returning the
// gradients with respect to xq and xkv.
func (m *MultiHeadAttention) BackwardQKV(t *Tape, dy *tensor.Tensor) (dxq, dxkv *tensor.Tensor) {
	dYall := m.Wo.Backward(t, dy)
	dq, dk, dv := m.Core.Backward(t, dYall)
	// Pop order is the reverse of the pushes: Wv, then Wk, then Wq.
	dxv := m.Wv.Backward(t, dv)
	dxk := m.Wk.Backward(t, dk)
	dxq = m.Wq.Backward(t, dq)
	tensor.AddInto(dxk, dxv) // dxk is freshly owned: fold in place
	return dxq, dxk
}

// Params returns all projection parameters in q, k, v, o order.
func (m *MultiHeadAttention) Params() []*Param {
	var ps []*Param
	for _, l := range []*Linear{m.Wq, m.Wk, m.Wv, m.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SelfAttention adapts MultiHeadAttention to the Layer interface with
// queries, keys and values all drawn from the same input.
type SelfAttention struct {
	MHA *MultiHeadAttention
}

// NewSelfAttention returns a self-attention layer.
func NewSelfAttention(name string, d, heads, seqLen int, causal bool, rng *rand.Rand) *SelfAttention {
	return &SelfAttention{MHA: NewMultiHeadAttention(name, d, heads, seqLen, seqLen, causal, rng)}
}

// Forward runs self-attention on x.
func (s *SelfAttention) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	return s.MHA.ForwardQKV(t, x, x)
}

// Backward sums the query-side and key/value-side input gradients.
func (s *SelfAttention) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	dxq, dxkv := s.MHA.BackwardQKV(t, dy)
	tensor.AddInto(dxq, dxkv) // dxq is freshly owned: fold in place
	return dxq
}

// Params returns the projection parameters.
func (s *SelfAttention) Params() []*Param { return s.MHA.Params() }
