package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// Layer is a differentiable module. Forward pushes whatever Backward needs
// onto the tape; Backward pops it, consumes the upstream gradient dy,
// accumulates parameter gradients into Param.Grad using the saved forward
// activations, and returns the gradient with respect to the layer input,
// computed with the layer's backward weights (Param.BwdData).
//
// Layers hold no per-call state: all activations live on the caller's
// tape, so the same layer may serve several in-flight microbatches as long
// as each uses its own Tape and Forward/Backward pairs nest in stack
// order. Mutating the same Param set concurrently is still the caller's
// problem — the pipeline engines serialize per-stage work on one goroutine.
type Layer interface {
	Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor
	Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a Sequential over the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies each layer in order.
func (s *Sequential) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(t, x)
	}
	return x
}

// Backward applies each layer's backward in reverse order.
func (s *Sequential) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(t, dy)
	}
	return dy
}

// Params returns the concatenated parameters in forward order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ReLU is the rectified linear activation.
type ReLU struct{}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0) and saves x for the backward gate.
func (r *ReLU) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	out := t.NewTensor(x.Shape...)
	if x.DType() == tensor.Float32 {
		reluFwd(tensor.F32(out), tensor.F32(x))
	} else {
		reluFwd(tensor.F64(out), tensor.F64(x))
	}
	t.Push(x)
	return out
}

func reluFwd[T tensor.Elem](out, x []T) {
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
}

// Backward gates dy by the sign of the forward input.
func (r *ReLU) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	x := t.Pop().(*tensor.Tensor)
	out := t.NewTensor(dy.Shape...)
	if x.DType() == tensor.Float32 {
		reluBwd(tensor.F32(out), tensor.F32(dy), tensor.F32(x))
	} else {
		reluBwd(tensor.F64(out), tensor.F64(dy), tensor.F64(x))
	}
	return out
}

func reluBwd[T tensor.Elem](out, dy, x []T) {
	for i, v := range dy {
		if x[i] > 0 {
			out[i] = v
		}
	}
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// GELU is the Gaussian error linear unit (tanh approximation).
type GELU struct{}

// NewGELU returns a GELU layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/π)

// Forward computes 0.5x(1 + tanh(√(2/π)(x + 0.044715x³))). The tanh is
// evaluated in float64 for both dtypes; float32 rounds once at the store.
func (g *GELU) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	out := t.NewTensor(x.Shape...)
	if x.DType() == tensor.Float32 {
		geluFwd(tensor.F32(out), tensor.F32(x))
	} else {
		geluFwd(tensor.F64(out), tensor.F64(x))
	}
	t.Push(x)
	return out
}

func geluFwd[T tensor.Elem](out, x []T) {
	for i, xv := range x {
		v := float64(xv)
		u := geluC * (v + 0.044715*v*v*v)
		out[i] = T(0.5 * v * (1 + math.Tanh(u)))
	}
}

// Backward computes the GELU derivative times dy.
func (g *GELU) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	x := t.Pop().(*tensor.Tensor)
	out := t.NewTensor(dy.Shape...)
	if x.DType() == tensor.Float32 {
		geluBwd(tensor.F32(out), tensor.F32(dy), tensor.F32(x))
	} else {
		geluBwd(tensor.F64(out), tensor.F64(dy), tensor.F64(x))
	}
	return out
}

func geluBwd[T tensor.Elem](out, dy, x []T) {
	for i, xv := range x {
		v := float64(xv)
		u := geluC * (v + 0.044715*v*v*v)
		th := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		d := 0.5*(1+th) + 0.5*v*(1-th*th)*du
		out[i] = T(float64(dy[i]) * d)
	}
}

// Params returns nil: GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// Residual wraps an inner layer as y = x + f(x). The inner layer must
// preserve shape.
type Residual struct {
	Inner Layer
}

// NewResidual returns a residual wrapper around inner.
func NewResidual(inner Layer) *Residual { return &Residual{Inner: inner} }

// Forward computes x + Inner(x).
func (r *Residual) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	return t.Add(x, r.Inner.Forward(t, x))
}

// Backward routes dy through the inner layer and adds the skip gradient.
func (r *Residual) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	return t.Add(dy, r.Inner.Backward(t, dy))
}

// Params returns the inner layer's parameters.
func (r *Residual) Params() []*Param { return r.Inner.Params() }

// Flatten reshapes (B, ...) to (B, rest).
type Flatten struct{}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing axes into one.
func (f *Flatten) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	shp := t.Ints(len(x.Shape))
	copy(shp, x.Shape)
	t.Push(shp)
	b := x.Shape[0]
	return x.Reshape(b, x.Size()/b)
}

// Backward restores the original shape.
func (f *Flatten) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	shp := t.Pop().([]int)
	return dy.Reshape(shp...)
}

// Params returns nil: Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// GlobalAvgPool averages a (B,C,H,W) tensor over its spatial axes,
// producing (B,C).
type GlobalAvgPool struct{}

// NewGlobalAvgPool returns a GlobalAvgPool layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

type gapState struct{ b, c, h, w int }

// Forward averages over H and W.
func (g *GlobalAvgPool) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := t.NewTensor(b, c)
	if x.DType() == tensor.Float32 {
		gapFwd(tensor.F32(out), tensor.F32(x), b, c, h*w)
	} else {
		gapFwd(tensor.F64(out), tensor.F64(x), b, c, h*w)
	}
	t.Push(gapState{b, c, h, w})
	return out
}

func gapFwd[T tensor.Elem](out, x []T, b, c, hw int) {
	inv := float64(hw)
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			s := 0.0
			base := (n*c + ch) * hw
			for i := 0; i < hw; i++ {
				s += float64(x[base+i])
			}
			out[n*c+ch] = T(s / inv)
		}
	}
}

// Backward spreads dy uniformly over the pooled positions.
func (g *GlobalAvgPool) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(gapState)
	out := t.NewTensor(st.b, st.c, st.h, st.w)
	if dy.DType() == tensor.Float32 {
		gapBwd(tensor.F32(out), tensor.F32(dy), st.b, st.c, st.h*st.w)
	} else {
		gapBwd(tensor.F64(out), tensor.F64(dy), st.b, st.c, st.h*st.w)
	}
	return out
}

func gapBwd[T tensor.Elem](out, dy []T, b, c, hw int) {
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			v := T(float64(dy[n*c+ch]) / float64(hw))
			base := (n*c + ch) * hw
			for i := 0; i < hw; i++ {
				out[base+i] = v
			}
		}
	}
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }
