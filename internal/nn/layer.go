package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// Layer is a differentiable module. Forward caches whatever it needs for
// the subsequent Backward call; Backward consumes the upstream gradient dy,
// accumulates parameter gradients into Param.Grad using cached forward
// activations, and returns the gradient with respect to the layer input,
// computed with the layer's backward weights (Param.BwdData).
//
// Layers are single-use per step: Forward then Backward. They are not safe
// for concurrent use.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential returns a Sequential over the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies each layer in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward applies each layer's backward in reverse order.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns the concatenated parameters in forward order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0).
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward gates dy by the forward activation mask.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// GELU is the Gaussian error linear unit (tanh approximation).
type GELU struct {
	x *tensor.Tensor
}

// NewGELU returns a GELU layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/π)

// Forward computes 0.5x(1 + tanh(√(2/π)(x + 0.044715x³))).
func (g *GELU) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.x = x.Clone()
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		u := geluC * (v + 0.044715*v*v*v)
		out.Data[i] = 0.5 * v * (1 + math.Tanh(u))
	}
	return out
}

// Backward computes the GELU derivative times dy.
func (g *GELU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(dy.Shape...)
	for i, v := range g.x.Data {
		u := geluC * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		d := 0.5*(1+t) + 0.5*v*(1-t*t)*du
		out.Data[i] = dy.Data[i] * d
	}
	return out
}

// Params returns nil: GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// Residual wraps an inner layer as y = x + f(x). The inner layer must
// preserve shape.
type Residual struct {
	Inner Layer
}

// NewResidual returns a residual wrapper around inner.
func NewResidual(inner Layer) *Residual { return &Residual{Inner: inner} }

// Forward computes x + Inner(x).
func (r *Residual) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(x, r.Inner.Forward(x))
}

// Backward routes dy through the inner layer and adds the skip gradient.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.Add(dy, r.Inner.Backward(dy))
}

// Params returns the inner layer's parameters.
func (r *Residual) Params() []*Param { return r.Inner.Params() }

// Flatten reshapes (B, ...) to (B, rest).
type Flatten struct {
	shape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing axes into one.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.shape = append(f.shape[:0], x.Shape...)
	b := x.Shape[0]
	return x.Reshape(b, x.Size()/b)
}

// Backward restores the original shape.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.shape...)
}

// Params returns nil: Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// GlobalAvgPool averages a (B,C,H,W) tensor over its spatial axes,
// producing (B,C).
type GlobalAvgPool struct {
	b, c, h, w int
}

// NewGlobalAvgPool returns a GlobalAvgPool layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over H and W.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.b, g.c, g.h, g.w = x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := tensor.New(g.b, g.c)
	hw := float64(g.h * g.w)
	for n := 0; n < g.b; n++ {
		for c := 0; c < g.c; c++ {
			s := 0.0
			base := (n*g.c + c) * g.h * g.w
			for i := 0; i < g.h*g.w; i++ {
				s += x.Data[base+i]
			}
			out.Data[n*g.c+c] = s / hw
		}
	}
	return out
}

// Backward spreads dy uniformly over the pooled positions.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(g.b, g.c, g.h, g.w)
	hw := float64(g.h * g.w)
	for n := 0; n < g.b; n++ {
		for c := 0; c < g.c; c++ {
			v := dy.Data[n*g.c+c] / hw
			base := (n*g.c + c) * g.h * g.w
			for i := 0; i < g.h*g.w; i++ {
				out.Data[base+i] = v
			}
		}
	}
	return out
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }
