package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// LayerNorm normalizes the last axis of a (N, D) tensor and applies a
// learned per-feature gain and bias. Because its statistics are per-sample
// it is microbatch-size independent, which matters in fine-grained pipeline
// training (the paper avoids small-batch BatchNorm for the same reason,
// citing GroupNorm).
type LayerNorm struct {
	Gain *Param // γ, shape (D)
	Bias *Param // β, shape (D)
	Eps  float64

	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm returns a LayerNorm over feature dimension d with γ=1, β=0.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{Gain: NewParam(name+".g", d), Bias: NewParam(name+".b", d), Eps: 1e-5}
	ln.Gain.Data.Fill(1)
	return ln
}

// Forward normalizes each row and applies the affine transform.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Shape[0], x.Shape[1]
	ln.xhat = tensor.New(n, d)
	if cap(ln.invStd) < n {
		ln.invStd = make([]float64, n)
	}
	ln.invStd = ln.invStd[:n]
	out := tensor.New(n, d)
	for i := 0; i < n; i++ {
		row := x.Data[i*d : (i+1)*d]
		mu := 0.0
		for _, v := range row {
			mu += v
		}
		mu /= float64(d)
		va := 0.0
		for _, v := range row {
			va += (v - mu) * (v - mu)
		}
		va /= float64(d)
		is := 1 / math.Sqrt(va+ln.Eps)
		ln.invStd[i] = is
		for j, v := range row {
			xh := (v - mu) * is
			ln.xhat.Data[i*d+j] = xh
			out.Data[i*d+j] = ln.Gain.Data.Data[j]*xh + ln.Bias.Data.Data[j]
		}
	}
	return out
}

// Backward accumulates dγ, dβ and returns dx using the backward gain.
func (ln *LayerNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, d := dy.Shape[0], dy.Shape[1]
	gainB := ln.Gain.BwdData()
	out := tensor.New(n, d)
	for i := 0; i < n; i++ {
		dxhat := make([]float64, d)
		m1, m2 := 0.0, 0.0
		for j := 0; j < d; j++ {
			g := dy.Data[i*d+j]
			xh := ln.xhat.Data[i*d+j]
			ln.Gain.Grad.Data[j] += g * xh
			ln.Bias.Grad.Data[j] += g
			dx := g * gainB.Data[j]
			dxhat[j] = dx
			m1 += dx
			m2 += dx * xh
		}
		m1 /= float64(d)
		m2 /= float64(d)
		is := ln.invStd[i]
		for j := 0; j < d; j++ {
			xh := ln.xhat.Data[i*d+j]
			out.Data[i*d+j] = is * (dxhat[j] - m1 - xh*m2)
		}
	}
	return out
}

// Params returns the gain and bias.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gain, ln.Bias} }

// GroupNorm normalizes a (B, C, H, W) tensor per sample over channel
// groups, with learned per-channel gain and bias. Its statistics are
// independent of the microbatch size, which is why the paper prefers it to
// BatchNorm in fine-grained pipelines.
type GroupNorm struct {
	Gain   *Param // γ, shape (C)
	Bias   *Param // β, shape (C)
	Groups int
	Eps    float64

	xhat    *tensor.Tensor
	invStd  []float64 // per (b, group)
	c, h, w int
}

// NewGroupNorm returns a GroupNorm over c channels split into groups.
// groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if c%groups != 0 {
		panic("nn: GroupNorm channels must be divisible by groups")
	}
	gn := &GroupNorm{Gain: NewParam(name+".g", c), Bias: NewParam(name+".b", c), Groups: groups, Eps: 1e-5}
	gn.Gain.Data.Fill(1)
	return gn
}

// Forward normalizes each (sample, group) block.
func (gn *GroupNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	gn.c, gn.h, gn.w = c, h, w
	cg := c / gn.Groups
	blk := cg * h * w
	gn.xhat = tensor.New(b, c, h, w)
	need := b * gn.Groups
	if cap(gn.invStd) < need {
		gn.invStd = make([]float64, need)
	}
	gn.invStd = gn.invStd[:need]
	out := tensor.New(b, c, h, w)
	for n := 0; n < b; n++ {
		for g := 0; g < gn.Groups; g++ {
			base := (n*c + g*cg) * h * w
			mu := 0.0
			for i := 0; i < blk; i++ {
				mu += x.Data[base+i]
			}
			mu /= float64(blk)
			va := 0.0
			for i := 0; i < blk; i++ {
				d := x.Data[base+i] - mu
				va += d * d
			}
			va /= float64(blk)
			is := 1 / math.Sqrt(va+gn.Eps)
			gn.invStd[n*gn.Groups+g] = is
			for ch := 0; ch < cg; ch++ {
				gamma := gn.Gain.Data.Data[g*cg+ch]
				beta := gn.Bias.Data.Data[g*cg+ch]
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					xh := (x.Data[cbase+i] - mu) * is
					gn.xhat.Data[cbase+i] = xh
					out.Data[cbase+i] = gamma*xh + beta
				}
			}
		}
	}
	return out
}

// Backward accumulates dγ, dβ and returns dx using the backward gain.
func (gn *GroupNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := dy.Shape[0], gn.c, gn.h, gn.w
	cg := c / gn.Groups
	blk := cg * h * w
	gainB := gn.Gain.BwdData()
	out := tensor.New(b, c, h, w)
	dxhat := make([]float64, blk)
	for n := 0; n < b; n++ {
		for g := 0; g < gn.Groups; g++ {
			base := (n*c + g*cg) * h * w
			m1, m2 := 0.0, 0.0
			for ch := 0; ch < cg; ch++ {
				gamma := gainB.Data[g*cg+ch]
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					gv := dy.Data[cbase+i]
					xh := gn.xhat.Data[cbase+i]
					gn.Gain.Grad.Data[g*cg+ch] += gv * xh
					gn.Bias.Grad.Data[g*cg+ch] += gv
					dx := gv * gamma
					dxhat[ch*h*w+i] = dx
					m1 += dx
					m2 += dx * xh
				}
			}
			m1 /= float64(blk)
			m2 /= float64(blk)
			is := gn.invStd[n*gn.Groups+g]
			for ch := 0; ch < cg; ch++ {
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					xh := gn.xhat.Data[cbase+i]
					out.Data[cbase+i] = is * (dxhat[ch*h*w+i] - m1 - xh*m2)
				}
			}
		}
	}
	return out
}

// Params returns the gain and bias.
func (gn *GroupNorm) Params() []*Param { return []*Param{gn.Gain, gn.Bias} }
