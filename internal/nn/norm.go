package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// LayerNorm normalizes the last axis of a (N, D) tensor and applies a
// learned per-feature gain and bias. Because its statistics are per-sample
// it is microbatch-size independent, which matters in fine-grained pipeline
// training (the paper avoids small-batch BatchNorm for the same reason,
// citing GroupNorm).
type LayerNorm struct {
	Gain *Param // γ, shape (D)
	Bias *Param // β, shape (D)
	Eps  float64
}

type lnState struct {
	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm returns a LayerNorm over feature dimension d with γ=1, β=0.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{Gain: NewParam(name+".g", d), Bias: NewParam(name+".b", d), Eps: 1e-5}
	ln.Gain.Data.Fill(1)
	return ln
}

// lnFlopsPerElem approximates the per-element cost of a layernorm row for
// the parallel work gate.
const lnFlopsPerElem = 8

// Forward normalizes each row and applies the affine transform. Rows are
// independent, so they are split across goroutines bit-identically when
// kernel parallelism is enabled.
func (ln *LayerNorm) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Shape[0], x.Shape[1]
	xhat := t.NewTensor(n, d)
	invStd := t.Floats(n)
	out := t.NewTensor(n, d)
	gain, bias := ln.Gain.Data.Data, ln.Bias.Data.Data
	tensor.ParallelRows(n, lnFlopsPerElem*n*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*d : (i+1)*d]
			mu := 0.0
			for _, v := range row {
				mu += v
			}
			mu /= float64(d)
			va := 0.0
			for _, v := range row {
				va += (v - mu) * (v - mu)
			}
			va /= float64(d)
			is := 1 / math.Sqrt(va+ln.Eps)
			invStd[i] = is
			for j, v := range row {
				xh := (v - mu) * is
				xhat.Data[i*d+j] = xh
				out.Data[i*d+j] = gain[j]*xh + bias[j]
			}
		}
	})
	t.Push(lnState{xhat, invStd})
	return out
}

// Backward accumulates dγ, dβ and returns dx using the backward gain. The
// dγ/dβ column sums are split across feature columns and the dx rows
// across samples; each output element accumulates in the serial order, so
// the parallel result is bit-identical.
func (ln *LayerNorm) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(lnState)
	n, d := dy.Shape[0], dy.Shape[1]
	xhat, invStd := st.xhat, st.invStd
	gainB := ln.Gain.BwdData().Data
	gGrad, bGrad := ln.Gain.Grad.Data, ln.Bias.Grad.Data
	// dγ_j = Σ_i dy_ij·xhat_ij and dβ_j = Σ_i dy_ij: columns are
	// independent, rows accumulate in ascending order per column.
	tensor.ParallelRows(d, 4*n*d, func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			sg, sb := 0.0, 0.0
			for i := 0; i < n; i++ {
				g := dy.Data[i*d+j]
				sg += g * xhat.Data[i*d+j]
				sb += g
			}
			gGrad[j] += sg
			bGrad[j] += sb
		}
	})
	out := t.NewTensor(n, d)
	tensor.ParallelRows(n, lnFlopsPerElem*n*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m1, m2 := 0.0, 0.0
			for j := 0; j < d; j++ {
				dx := dy.Data[i*d+j] * gainB[j]
				m1 += dx
				m2 += dx * xhat.Data[i*d+j]
			}
			m1 /= float64(d)
			m2 /= float64(d)
			is := invStd[i]
			for j := 0; j < d; j++ {
				xh := xhat.Data[i*d+j]
				dx := dy.Data[i*d+j] * gainB[j]
				out.Data[i*d+j] = is * (dx - m1 - xh*m2)
			}
		}
	})
	return out
}

// Params returns the gain and bias.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gain, ln.Bias} }

// GroupNorm normalizes a (B, C, H, W) tensor per sample over channel
// groups, with learned per-channel gain and bias. Its statistics are
// independent of the microbatch size, which is why the paper prefers it to
// BatchNorm in fine-grained pipelines.
type GroupNorm struct {
	Gain   *Param // γ, shape (C)
	Bias   *Param // β, shape (C)
	Groups int
	Eps    float64
}

type gnState struct {
	xhat    *tensor.Tensor
	invStd  []float64 // per (b, group)
	c, h, w int
}

// NewGroupNorm returns a GroupNorm over c channels split into groups.
// groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if c%groups != 0 {
		panic("nn: GroupNorm channels must be divisible by groups")
	}
	gn := &GroupNorm{Gain: NewParam(name+".g", c), Bias: NewParam(name+".b", c), Groups: groups, Eps: 1e-5}
	gn.Gain.Data.Fill(1)
	return gn
}

// Forward normalizes each (sample, group) block. Samples are independent,
// so the batch is split across goroutines bit-identically when kernel
// parallelism is enabled.
func (gn *GroupNorm) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cg := c / gn.Groups
	blk := cg * h * w
	xhat := t.NewTensor(b, c, h, w)
	invStd := t.Floats(b * gn.Groups)
	out := t.NewTensor(b, c, h, w)
	gain, bias := gn.Gain.Data.Data, gn.Bias.Data.Data
	tensor.ParallelRows(b, lnFlopsPerElem*b*c*h*w, func(nLo, nHi int) {
		for n := nLo; n < nHi; n++ {
			for g := 0; g < gn.Groups; g++ {
				base := (n*c + g*cg) * h * w
				mu := 0.0
				for i := 0; i < blk; i++ {
					mu += x.Data[base+i]
				}
				mu /= float64(blk)
				va := 0.0
				for i := 0; i < blk; i++ {
					d := x.Data[base+i] - mu
					va += d * d
				}
				va /= float64(blk)
				is := 1 / math.Sqrt(va+gn.Eps)
				invStd[n*gn.Groups+g] = is
				for ch := 0; ch < cg; ch++ {
					gamma := gain[g*cg+ch]
					beta := bias[g*cg+ch]
					cbase := base + ch*h*w
					for i := 0; i < h*w; i++ {
						xh := (x.Data[cbase+i] - mu) * is
						xhat.Data[cbase+i] = xh
						out.Data[cbase+i] = gamma*xh + beta
					}
				}
			}
		}
	})
	t.Push(gnState{xhat, invStd, c, h, w})
	return out
}

// Backward accumulates dγ, dβ and returns dx using the backward gain. The
// per-channel sums are formed in tape temporaries and folded with a single
// AddInto each, keeping the one-add-per-element-per-call accumulation
// contract (see Param.Grad).
func (gn *GroupNorm) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(gnState)
	b, c, h, w := dy.Shape[0], st.c, st.h, st.w
	cg := c / gn.Groups
	blk := cg * h * w
	gainB := gn.Gain.BwdData().Data
	dGain := t.NewTensor(c)
	dBias := t.NewTensor(c)
	out := t.NewTensor(b, c, h, w)
	for n := 0; n < b; n++ {
		for g := 0; g < gn.Groups; g++ {
			base := (n*c + g*cg) * h * w
			m1, m2 := 0.0, 0.0
			for ch := 0; ch < cg; ch++ {
				gamma := gainB[g*cg+ch]
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					gv := dy.Data[cbase+i]
					xh := st.xhat.Data[cbase+i]
					dGain.Data[g*cg+ch] += gv * xh
					dBias.Data[g*cg+ch] += gv
					dx := gv * gamma
					m1 += dx
					m2 += dx * xh
				}
			}
			m1 /= float64(blk)
			m2 /= float64(blk)
			is := st.invStd[n*gn.Groups+g]
			for ch := 0; ch < cg; ch++ {
				gamma := gainB[g*cg+ch]
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					xh := st.xhat.Data[cbase+i]
					dx := dy.Data[cbase+i] * gamma
					out.Data[cbase+i] = is * (dx - m1 - xh*m2)
				}
			}
		}
	}
	tensor.AddInto(gn.Gain.Grad, dGain)
	tensor.AddInto(gn.Bias.Grad, dBias)
	return out
}

// Params returns the gain and bias.
func (gn *GroupNorm) Params() []*Param { return []*Param{gn.Gain, gn.Bias} }
