package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// LayerNorm normalizes the last axis of a (N, D) tensor and applies a
// learned per-feature gain and bias. Because its statistics are per-sample
// it is microbatch-size independent, which matters in fine-grained pipeline
// training (the paper avoids small-batch BatchNorm for the same reason,
// citing GroupNorm).
type LayerNorm struct {
	Gain *Param // γ, shape (D)
	Bias *Param // β, shape (D)
	Eps  float64
}

type lnState struct {
	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm returns a LayerNorm over feature dimension d with γ=1, β=0.
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{Gain: NewParam(name+".g", d), Bias: NewParam(name+".b", d), Eps: 1e-5}
	ln.Gain.Data.Fill(1)
	return ln
}

// lnFlopsPerElem approximates the per-element cost of a layernorm row for
// the parallel work gate.
const lnFlopsPerElem = 8

// Forward normalizes each row and applies the affine transform. Rows are
// independent, so they are split across goroutines bit-identically when
// kernel parallelism is enabled. Statistics accumulate in float64 for both
// dtypes; float32 rounds once at each store.
func (ln *LayerNorm) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	n, d := x.Shape[0], x.Shape[1]
	xhat := t.NewTensor(n, d)
	invStd := t.Floats(n)
	out := t.NewTensor(n, d)
	if x.DType() == tensor.Float32 {
		lnFwd(tensor.F32(out), tensor.F32(xhat), tensor.F32(x),
			tensor.F32(ln.Gain.Data), tensor.F32(ln.Bias.Data), invStd, n, d, ln.Eps)
	} else {
		lnFwd(tensor.F64(out), tensor.F64(xhat), tensor.F64(x),
			tensor.F64(ln.Gain.Data), tensor.F64(ln.Bias.Data), invStd, n, d, ln.Eps)
	}
	t.Push(lnState{xhat, invStd})
	return out
}

func lnFwd[T tensor.Elem](out, xhat, x, gain, bias []T, invStd []float64, n, d int, eps float64) {
	tensor.ParallelRows(n, lnFlopsPerElem*n*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x[i*d : (i+1)*d]
			mu := 0.0
			for _, v := range row {
				mu += float64(v)
			}
			mu /= float64(d)
			va := 0.0
			for _, v := range row {
				va += (float64(v) - mu) * (float64(v) - mu)
			}
			va /= float64(d)
			is := 1 / math.Sqrt(va+eps)
			invStd[i] = is
			for j, v := range row {
				xh := (float64(v) - mu) * is
				xhat[i*d+j] = T(xh)
				out[i*d+j] = T(float64(gain[j])*xh + float64(bias[j]))
			}
		}
	})
}

// Backward accumulates dγ, dβ and returns dx using the backward gain. The
// dγ/dβ column sums are split across feature columns and the dx rows
// across samples; each output element accumulates in the serial order, so
// the parallel result is bit-identical.
func (ln *LayerNorm) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(lnState)
	n, d := dy.Shape[0], dy.Shape[1]
	out := t.NewTensor(n, d)
	if dy.DType() == tensor.Float32 {
		lnBwd(tensor.F32(out), tensor.F32(dy), tensor.F32(st.xhat),
			tensor.F32(ln.Gain.BwdData()), tensor.F32(ln.Gain.Grad), tensor.F32(ln.Bias.Grad),
			st.invStd, n, d)
	} else {
		lnBwd(tensor.F64(out), tensor.F64(dy), tensor.F64(st.xhat),
			tensor.F64(ln.Gain.BwdData()), tensor.F64(ln.Gain.Grad), tensor.F64(ln.Bias.Grad),
			st.invStd, n, d)
	}
	return out
}

func lnBwd[T tensor.Elem](out, dy, xhat, gainB, gGrad, bGrad []T, invStd []float64, n, d int) {
	// dγ_j = Σ_i dy_ij·xhat_ij and dβ_j = Σ_i dy_ij: columns are
	// independent, rows accumulate in ascending order per column. The sums
	// form in float64 and land on the gradient with one add per element.
	tensor.ParallelRows(d, 4*n*d, func(jLo, jHi int) {
		for j := jLo; j < jHi; j++ {
			sg, sb := 0.0, 0.0
			for i := 0; i < n; i++ {
				g := float64(dy[i*d+j])
				sg += g * float64(xhat[i*d+j])
				sb += g
			}
			gGrad[j] += T(sg)
			bGrad[j] += T(sb)
		}
	})
	tensor.ParallelRows(n, lnFlopsPerElem*n*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m1, m2 := 0.0, 0.0
			for j := 0; j < d; j++ {
				dx := float64(dy[i*d+j]) * float64(gainB[j])
				m1 += dx
				m2 += dx * float64(xhat[i*d+j])
			}
			m1 /= float64(d)
			m2 /= float64(d)
			is := invStd[i]
			for j := 0; j < d; j++ {
				xh := float64(xhat[i*d+j])
				dx := float64(dy[i*d+j]) * float64(gainB[j])
				out[i*d+j] = T(is * (dx - m1 - xh*m2))
			}
		}
	})
}

// Params returns the gain and bias.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gain, ln.Bias} }

// GroupNorm normalizes a (B, C, H, W) tensor per sample over channel
// groups, with learned per-channel gain and bias. Its statistics are
// independent of the microbatch size, which is why the paper prefers it to
// BatchNorm in fine-grained pipelines.
type GroupNorm struct {
	Gain   *Param // γ, shape (C)
	Bias   *Param // β, shape (C)
	Groups int
	Eps    float64
}

type gnState struct {
	xhat    *tensor.Tensor
	invStd  []float64 // per (b, group)
	c, h, w int
}

// NewGroupNorm returns a GroupNorm over c channels split into groups.
// groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if c%groups != 0 {
		panic("nn: GroupNorm channels must be divisible by groups")
	}
	gn := &GroupNorm{Gain: NewParam(name+".g", c), Bias: NewParam(name+".b", c), Groups: groups, Eps: 1e-5}
	gn.Gain.Data.Fill(1)
	return gn
}

// Forward normalizes each (sample, group) block. Samples are independent,
// so the batch is split across goroutines bit-identically when kernel
// parallelism is enabled.
func (gn *GroupNorm) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	xhat := t.NewTensor(b, c, h, w)
	invStd := t.Floats(b * gn.Groups)
	out := t.NewTensor(b, c, h, w)
	if x.DType() == tensor.Float32 {
		gnFwd(tensor.F32(out), tensor.F32(xhat), tensor.F32(x),
			tensor.F32(gn.Gain.Data), tensor.F32(gn.Bias.Data), invStd,
			b, c, h, w, gn.Groups, gn.Eps)
	} else {
		gnFwd(tensor.F64(out), tensor.F64(xhat), tensor.F64(x),
			tensor.F64(gn.Gain.Data), tensor.F64(gn.Bias.Data), invStd,
			b, c, h, w, gn.Groups, gn.Eps)
	}
	t.Push(gnState{xhat, invStd, c, h, w})
	return out
}

func gnFwd[T tensor.Elem](out, xhat, x, gain, bias []T, invStd []float64, b, c, h, w, groups int, eps float64) {
	cg := c / groups
	blk := cg * h * w
	tensor.ParallelRows(b, lnFlopsPerElem*b*c*h*w, func(nLo, nHi int) {
		for n := nLo; n < nHi; n++ {
			for g := 0; g < groups; g++ {
				base := (n*c + g*cg) * h * w
				mu := 0.0
				for i := 0; i < blk; i++ {
					mu += float64(x[base+i])
				}
				mu /= float64(blk)
				va := 0.0
				for i := 0; i < blk; i++ {
					d := float64(x[base+i]) - mu
					va += d * d
				}
				va /= float64(blk)
				is := 1 / math.Sqrt(va+eps)
				invStd[n*groups+g] = is
				for ch := 0; ch < cg; ch++ {
					gamma := float64(gain[g*cg+ch])
					beta := float64(bias[g*cg+ch])
					cbase := base + ch*h*w
					for i := 0; i < h*w; i++ {
						xh := (float64(x[cbase+i]) - mu) * is
						xhat[cbase+i] = T(xh)
						out[cbase+i] = T(gamma*xh + beta)
					}
				}
			}
		}
	})
}

// Backward accumulates dγ, dβ and returns dx using the backward gain. The
// per-channel sums are formed in tape temporaries and folded with a single
// AddInto each, keeping the one-add-per-element-per-call accumulation
// contract (see Param.Grad).
func (gn *GroupNorm) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(gnState)
	b, c, h, w := dy.Shape[0], st.c, st.h, st.w
	dGain := t.NewTensor(c)
	dBias := t.NewTensor(c)
	out := t.NewTensor(b, c, h, w)
	if dy.DType() == tensor.Float32 {
		gnBwd(tensor.F32(out), tensor.F32(dy), tensor.F32(st.xhat),
			tensor.F32(gn.Gain.BwdData()), tensor.F32(dGain), tensor.F32(dBias),
			st.invStd, b, c, h, w, gn.Groups)
	} else {
		gnBwd(tensor.F64(out), tensor.F64(dy), tensor.F64(st.xhat),
			tensor.F64(gn.Gain.BwdData()), tensor.F64(dGain), tensor.F64(dBias),
			st.invStd, b, c, h, w, gn.Groups)
	}
	tensor.AddInto(gn.Gain.Grad, dGain)
	tensor.AddInto(gn.Bias.Grad, dBias)
	return out
}

func gnBwd[T tensor.Elem](out, dy, xhat, gainB, dGain, dBias []T, invStd []float64, b, c, h, w, groups int) {
	cg := c / groups
	blk := cg * h * w
	for n := 0; n < b; n++ {
		for g := 0; g < groups; g++ {
			base := (n*c + g*cg) * h * w
			m1, m2 := 0.0, 0.0
			for ch := 0; ch < cg; ch++ {
				gamma := float64(gainB[g*cg+ch])
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					gv := float64(dy[cbase+i])
					xh := float64(xhat[cbase+i])
					dGain[g*cg+ch] += T(gv * xh)
					dBias[g*cg+ch] += T(gv)
					dx := gv * gamma
					m1 += dx
					m2 += dx * xh
				}
			}
			m1 /= float64(blk)
			m2 /= float64(blk)
			is := invStd[n*groups+g]
			for ch := 0; ch < cg; ch++ {
				gamma := float64(gainB[g*cg+ch])
				cbase := base + ch*h*w
				for i := 0; i < h*w; i++ {
					xh := float64(xhat[cbase+i])
					dx := float64(dy[cbase+i]) * gamma
					out[cbase+i] = T(is * (dx - m1 - xh*m2))
				}
			}
		}
	}
}

// Params returns the gain and bias.
func (gn *GroupNorm) Params() []*Param { return []*Param{gn.Gain, gn.Bias} }
