package nn

import (
	"math/rand"
	"testing"

	"pipemare/internal/tensor"
)

// buildChain returns a small program (linear → relu → layernorm → linear →
// loss) plus its input/logit registers and the underlying layers.
func buildChain(rng *rand.Rand) (*Program, Reg, []*Param) {
	l1 := NewLinear("fc1", 6, 10, true, rng)
	ln := NewLayerNorm("ln", 10)
	l2 := NewLinear("fc2", 10, 4, true, rng)
	ce := NewCrossEntropy()
	rIn, rH1, rH2, rH3, rLogits := Reg(0), Reg(1), Reg(2), Reg(3), Reg(4)
	prog := &Program{
		Ops: []Op{
			&ApplyOp{L: l1, In: rIn, Out: rH1},
			&ApplyOp{L: NewReLU(), In: rH1, Out: rH2},
			&ApplyOp{L: ln, In: rH2, Out: rH3},
			&ApplyOp{L: l2, In: rH3, Out: rLogits},
			&LossOp{CE: ce, Logits: rLogits},
		},
		GroupOf: []int{0, 0, 1, 2, 2},
		NumRegs: 5,
	}
	var ps []*Param
	for _, l := range []Layer{l1, ln, l2} {
		ps = append(ps, l.Params()...)
	}
	return prog, rIn, ps
}

func runChain(prog *Program, m *Machine, rIn Reg, x *tensor.Tensor, labels []int) float64 {
	m.ResetRun()
	xm := m.Tape.NewTensor(x.Shape...)
	xm.CopyFrom(x)
	m.SetVal(rIn, xm)
	m.Labels = append(m.Labels[:0], labels...)
	prog.ForwardRange(m, 0, len(prog.Ops))
	prog.BackwardRange(m, 0, len(prog.Ops))
	return m.Loss
}

// TestInterleavedMachinesMatchSerial pins the property the pipelined
// engine relies on: two microbatches executing the same layers through
// separate machines — with their stage segments interleaved — produce
// exactly the loss and gradient accumulation of serial execution.
func TestInterleavedMachinesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prog, rIn, ps := buildChain(rng)
	xA := randTensor(rng, 3, 6)
	xB := randTensor(rng, 3, 6)
	lbA, lbB := []int{0, 2, 1}, []int{3, 1, 0}

	// Serial: microbatch A fully, then B.
	ZeroGrads(ps)
	mA, mB := NewMachine(prog.NumRegs), NewMachine(prog.NumRegs)
	lossA := runChain(prog, mA, rIn, xA, lbA)
	lossB := runChain(prog, mB, rIn, xB, lbB)
	serialGrads := make([][]float64, len(ps))
	for i, p := range ps {
		serialGrads[i] = append([]float64(nil), p.Grad.Data...)
	}

	// Interleaved: A and B alternate per-op "stages" on fresh machines,
	// with per-stage order A-before-B — the pipeline's per-stage
	// microbatch order.
	ZeroGrads(ps)
	bind := func(m *Machine, x *tensor.Tensor, lb []int) {
		m.ResetRun()
		xm := m.Tape.NewTensor(x.Shape...)
		xm.CopyFrom(x)
		m.SetVal(rIn, xm)
		m.Labels = append(m.Labels[:0], lb...)
	}
	mA2, mB2 := NewMachine(prog.NumRegs), NewMachine(prog.NumRegs)
	bind(mA2, xA, lbA)
	bind(mB2, xB, lbB)
	n := len(prog.Ops)
	for op := 0; op < n; op++ {
		prog.ForwardRange(mA2, op, op+1)
		if op > 0 {
			prog.ForwardRange(mB2, op-1, op)
		}
	}
	prog.ForwardRange(mB2, n-1, n)
	for op := n - 1; op >= 0; op-- {
		prog.BackwardRange(mA2, op, op+1)
		if op < n-1 {
			prog.BackwardRange(mB2, op+1, op+2)
		}
	}
	prog.BackwardRange(mB2, 0, 1)

	if mA2.Loss != lossA || mB2.Loss != lossB {
		t.Fatalf("interleaved losses (%v, %v) != serial (%v, %v)", mA2.Loss, mB2.Loss, lossA, lossB)
	}
	for i, p := range ps {
		for j := range p.Grad.Data {
			if p.Grad.Data[j] != serialGrads[i][j] {
				t.Fatalf("param %s grad[%d] differs interleaved vs serial", p.Name, j)
			}
		}
	}
}

// TestMachineRerunIsBitIdentical pins machine reuse (the engine's machine
// pool): resetting and re-running the same microbatch must reproduce the
// loss exactly, and the tape arena must serve the rerun from recycled
// buffers.
func TestMachineRerunIsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prog, rIn, ps := buildChain(rng)
	x := randTensor(rng, 4, 6)
	lb := []int{1, 0, 3, 2}
	m := NewMachine(prog.NumRegs)
	ZeroGrads(ps)
	loss1 := runChain(prog, m, rIn, x, lb)
	probe := m.Tape.NewTensor(2, 2) // position of the arena after run 1
	ZeroGrads(ps)
	loss2 := runChain(prog, m, rIn, x, lb)
	probe2 := m.Tape.NewTensor(2, 2)
	if loss1 != loss2 {
		t.Fatalf("rerun loss %v != %v", loss2, loss1)
	}
	if probe2 != probe {
		t.Fatal("tape arena did not recycle buffers across ResetRun")
	}
}

// TestStageRanges pins the op-range computation for a 3-stage split of the
// chain program, and the group-order validation.
func TestStageRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog, _, _ := buildChain(rng)
	// Groups {0,1,2} onto 3 stages: ops [0,2), [2,3), [3,5).
	lo, hi, err := prog.StageRanges([]int{0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, want := range [][2]int{{0, 2}, {2, 3}, {3, 5}} {
		if lo[s] != want[0] || hi[s] != want[1] {
			t.Fatalf("stage %d range [%d,%d), want [%d,%d)", s, lo[s], hi[s], want[0], want[1])
		}
	}
	// Regressing group order must be rejected.
	bad := &Program{Ops: prog.Ops, GroupOf: []int{0, 1, 0, 2, 2}, NumRegs: prog.NumRegs}
	if _, _, err := bad.StageRanges([]int{0, 1, 2}, 3); err == nil {
		t.Fatal("StageRanges accepted a regressing group order")
	}
}

// TestGroupCostsAnalytic pins the analytic cost model's shape: op costs
// accumulate onto the op's group, projection-dominated groups dwarf glue,
// and wider layers cost more than narrow ones.
func TestGroupCostsAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog, _, _ := buildChain(rng)
	costs := prog.GroupCosts(3)
	if len(costs) != 3 {
		t.Fatalf("got %d group costs, want 3", len(costs))
	}
	w := make([]float64, 3)
	for i, c := range costs {
		w[i] = c.Weight()
		if c.FLOPs <= 0 || c.Bytes <= 0 {
			t.Fatalf("group %d cost %+v not positive", i, c)
		}
	}
	// Group 0 (6×10 linear + relu glue) must out-cost group 1 (layernorm
	// over 10) and group 2 (10×4 linear + loss glue) — matmuls dominate.
	if w[0] <= w[1] {
		t.Fatalf("linear group %g not costlier than layernorm group %g", w[0], w[1])
	}
	if w[0] <= w[2] {
		t.Fatalf("6×10 linear group %g not costlier than 10×4 group %g", w[0], w[2])
	}
	// The attention core's cost grows with its key length and width.
	small := NewAttnCore(8, 2, 4, 4, false).EstimateCost()
	large := NewAttnCore(16, 2, 4, 16, false).EstimateCost()
	if large.Weight() <= small.Weight() {
		t.Fatalf("attn core cost %g not above smaller core %g", large.Weight(), small.Weight())
	}
}

// TestMeasureGroupCosts pins the profiling pass: every group accrues
// positive wall time, and the pass is a real forward+backward (gradients
// accumulate, the loss is computed).
func TestMeasureGroupCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prog, rIn, ps := buildChain(rng)
	m := NewMachine(prog.NumRegs)
	x := randTensor(rng, 3, 6)
	m.ResetRun()
	xm := m.Tape.NewTensor(x.Shape...)
	xm.CopyFrom(x)
	m.SetVal(rIn, xm)
	m.Labels = append(m.Labels[:0], 1, 0, 3)
	costs := make([]float64, 3)
	prog.MeasureGroupCosts(m, costs)
	for g, c := range costs {
		if c <= 0 {
			t.Fatalf("group %d measured cost %g, want > 0", g, c)
		}
	}
	if m.Loss == 0 {
		t.Fatal("profiling pass did not compute a loss")
	}
	nonZero := false
	for _, p := range ps {
		for _, g := range p.Grad.Data {
			if g != 0 {
				nonZero = true
			}
		}
	}
	if !nonZero {
		t.Fatal("profiling pass did not accumulate gradients")
	}
}
