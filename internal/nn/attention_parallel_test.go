package nn

import (
	"math/rand"
	"testing"

	"pipemare/internal/tensor"
)

// attnRun executes one AttnCore forward+backward on fresh tapes and
// returns the outputs and input gradients.
func attnRun(a *AttnCore, q, k, v, dy *tensor.Tensor) (y, dq, dk, dv *tensor.Tensor) {
	t := NewTape()
	y = a.Forward(t, q, k, v)
	dq, dk, dv = a.Backward(t, dy)
	return y, dq, dk, dv
}

// TestAttnCoreParallelBitIdentical pins the determinism contract for the
// head-parallel attention core: splitting the per-(batch, head) loops of
// Forward and Backward across the tensor worker pool must not change a
// single bit of the outputs or gradients relative to the serial loop. The
// problem sizes are chosen to clear the parallel work gate so the split
// actually happens.
func TestAttnCoreParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fill := func(shape ...int) *tensor.Tensor {
		x := tensor.New(shape...)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		return x
	}
	for _, tc := range []struct {
		name       string
		heads, d   int
		qLen, kLen int
		batch      int
		causal     bool
	}{
		{"self", 4, 64, 12, 12, 6, false},
		{"causal", 4, 64, 12, 12, 6, true},
		{"cross", 2, 32, 10, 14, 5, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAttnCore(tc.d, tc.heads, tc.qLen, tc.kLen, tc.causal)
			q := fill(tc.batch*tc.qLen, tc.d)
			k := fill(tc.batch*tc.kLen, tc.d)
			v := fill(tc.batch*tc.kLen, tc.d)
			dy := fill(tc.batch*tc.qLen, tc.d)

			prev := tensor.SetWorkers(1)
			sy, sdq, sdk, sdv := attnRun(a, q, k, v, dy)
			tensor.SetWorkers(8)
			w := tensor.PlanRows(tc.batch*tc.heads, tc.batch*tc.heads*a.attnFlopsPerPair())
			py, pdq, pdk, pdv := attnRun(a, q, k, v, dy)
			tensor.SetWorkers(prev)

			if w <= 1 {
				t.Fatalf("work gate kept the split serial (w=%d); grow the problem size", w)
			}
			for _, pair := range []struct {
				name string
				s, p *tensor.Tensor
			}{{"y", sy, py}, {"dq", sdq, pdq}, {"dk", sdk, pdk}, {"dv", sdv, pdv}} {
				for i := range pair.s.Data {
					if pair.s.Data[i] != pair.p.Data[i] {
						t.Fatalf("%s element %d differs: serial %v parallel %v",
							pair.name, i, pair.s.Data[i], pair.p.Data[i])
					}
				}
			}
		})
	}
}
