package nn

import (
	"pipemare/internal/tensor"
)

// Tape is a per-call activation context. Layers push whatever their
// Backward needs onto the tape during Forward and pop it back in Backward;
// because forward and backward traverse a network in exactly opposite
// orders, the tape is a strict stack. Layers themselves hold no per-call
// state, so one set of layers (one set of weights) can serve many
// concurrently in-flight microbatches — each with its own tape — which is
// what lets the concurrent engine overlap pipeline stages.
//
// The tape doubles as a scratch arena: NewTensor, Floats and Ints hand out
// buffers that are recycled positionally on Reset. A training step runs
// the same op sequence with the same shapes every microbatch, so after the
// first microbatch the arena serves every request from its free list and
// the hot path stops allocating.
//
// A Tape is not safe for concurrent use; every microbatch in flight owns
// its own.
type Tape struct {
	stack []any

	dt   tensor.DType
	tens []*tensor.Tensor
	tpos int
	flts [][]float64
	fpos int
	ints [][]int
	ipos int
}

// NewTape returns an empty tape (float64 arena by default).
func NewTape() *Tape { return &Tape{} }

// SetDType switches the dtype of tensors handed out by NewTensor. Arena
// tensors of the other dtype are dropped on their next positional reuse.
func (t *Tape) SetDType(dt tensor.DType) { t.dt = dt }

// DType returns the arena element type.
func (t *Tape) DType() tensor.DType { return t.dt }

// Push saves v for the matching Pop in the layer's Backward.
func (t *Tape) Push(v any) { t.stack = append(t.stack, v) }

// Pop returns the most recently pushed value.
func (t *Tape) Pop() any {
	n := len(t.stack) - 1
	v := t.stack[n]
	t.stack[n] = nil
	t.stack = t.stack[:n]
	return v
}

// Depth returns the number of values currently on the tape (diagnostics).
func (t *Tape) Depth() int { return len(t.stack) }

// NewTensor returns a zeroed tensor of the given shape backed by the
// tape's arena. The tensor is valid until the next Reset; it must not
// escape the microbatch that allocated it.
func (t *Tape) NewTensor(shape ...int) *tensor.Tensor {
	if t.tpos < len(t.tens) {
		c := t.tens[t.tpos]
		if c.DType() == t.dt && sameShape(c.Shape, shape) {
			t.tpos++
			c.Zero()
			return c
		}
		c = tensor.NewOf(t.dt, shape...)
		t.tens[t.tpos] = c
		t.tpos++
		return c
	}
	c := tensor.NewOf(t.dt, shape...)
	t.tens = append(t.tens, c)
	t.tpos = len(t.tens)
	return c
}

// Add returns a + b elementwise in a fresh arena tensor (the residual-join
// kernel shared by layers and ops).
func (t *Tape) Add(a, b *tensor.Tensor) *tensor.Tensor {
	out := t.NewTensor(a.Shape...)
	if out.DType() == tensor.Float32 {
		addRows(tensor.F32(out), tensor.F32(a), tensor.F32(b))
	} else {
		addRows(tensor.F64(out), tensor.F64(a), tensor.F64(b))
	}
	return out
}

func addRows[T tensor.Elem](out, a, b []T) {
	for i := range out {
		out[i] = a[i] + b[i]
	}
}

// Floats returns a zeroed float scratch slice of length n from the arena.
func (t *Tape) Floats(n int) []float64 {
	if t.fpos < len(t.flts) && cap(t.flts[t.fpos]) >= n {
		s := t.flts[t.fpos][:n]
		t.fpos++
		for i := range s {
			s[i] = 0
		}
		return s
	}
	s := make([]float64, n)
	if t.fpos < len(t.flts) {
		t.flts[t.fpos] = s
	} else {
		t.flts = append(t.flts, s)
	}
	t.fpos++
	return s
}

// Ints returns an int scratch slice of length n from the arena. Contents
// are unspecified; callers overwrite every element.
func (t *Tape) Ints(n int) []int {
	if t.ipos < len(t.ints) && cap(t.ints[t.ipos]) >= n {
		s := t.ints[t.ipos][:n]
		t.ipos++
		return s
	}
	s := make([]int, n)
	if t.ipos < len(t.ints) {
		t.ints[t.ipos] = s
	} else {
		t.ints = append(t.ints, s)
	}
	t.ipos++
	return s
}

// Reset clears the state stack and rewinds the arenas so their buffers are
// reused by the next run. Everything previously handed out is invalidated.
func (t *Tape) Reset() {
	for i := range t.stack {
		t.stack[i] = nil
	}
	t.stack = t.stack[:0]
	t.tpos, t.fpos, t.ipos = 0, 0, 0
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
