package nn

import (
	"math"

	"pipemare/internal/tensor"
)

// CrossEntropy computes mean softmax cross-entropy over (N, C) logits with
// integer labels. Labels equal to Ignore (default -1) are masked out, which
// the translation task uses for padding. Like the layers, it keeps its
// per-call state (probabilities, labels) on the tape so several in-flight
// microbatches can share one instance.
type CrossEntropy struct {
	Ignore int
}

type ceState struct {
	probs  *tensor.Tensor
	labels []int
	count  int
}

// NewCrossEntropy returns a cross-entropy loss that ignores label -1.
func NewCrossEntropy() *CrossEntropy { return &CrossEntropy{Ignore: -1} }

// Forward returns the mean negative log-likelihood of labels under the
// row-softmax of logits. The labels slice is retained on the tape until
// the matching Backward.
func (c *CrossEntropy) Forward(t *Tape, logits *tensor.Tensor, labels []int) float64 {
	n, cl := logits.Shape[0], logits.Shape[1]
	if n != len(labels) {
		panic("nn: CrossEntropy label count mismatch")
	}
	probs := t.NewTensor(n, cl)
	tensor.SoftmaxRowsInto(probs, logits)
	lse := tensor.LogSumExpRows(logits)
	loss, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if labels[i] == c.Ignore {
			continue
		}
		loss += lse[i] - logits.FlatAt(i*cl+labels[i])
		cnt++
	}
	t.Push(ceState{probs, labels, cnt})
	if cnt == 0 {
		return 0
	}
	return loss / float64(cnt)
}

// Backward returns dLoss/dlogits = (softmax − onehot)/count, with ignored
// rows zeroed.
func (c *CrossEntropy) Backward(t *Tape) *tensor.Tensor {
	st := t.Pop().(ceState)
	n, cl := st.probs.Shape[0], st.probs.Shape[1]
	out := t.NewTensor(n, cl)
	if st.count == 0 {
		return out
	}
	inv := 1 / float64(st.count)
	if out.DType() == tensor.Float32 {
		ceBwd(tensor.F32(out), tensor.F32(st.probs), st.labels, c.Ignore, cl, inv)
	} else {
		ceBwd(tensor.F64(out), tensor.F64(st.probs), st.labels, c.Ignore, cl, inv)
	}
	return out
}

func ceBwd[T tensor.Elem](out, probs []T, labels []int, ignore, cl int, inv float64) {
	for i := range labels {
		if labels[i] == ignore {
			continue
		}
		for j := 0; j < cl; j++ {
			out[i*cl+j] = T(float64(probs[i*cl+j]) * inv)
		}
		out[i*cl+labels[i]] -= T(inv)
	}
}

// MSE computes mean squared error over all elements of (N, D) predictions.
type MSE struct {
	diff *tensor.Tensor
}

// NewMSE returns an MSE loss.
func NewMSE() *MSE { return &MSE{} }

// Forward returns mean((pred − target)²)/2.
func (m *MSE) Forward(pred, target *tensor.Tensor) float64 {
	m.diff = tensor.Sub(pred, target)
	return m.diff.SumSq() / (2 * float64(m.diff.Size()))
}

// Backward returns dLoss/dpred = diff/N.
func (m *MSE) Backward() *tensor.Tensor {
	return tensor.Scale(m.diff, 1/float64(m.diff.Size()))
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm. A non-positive maxNorm is a no-op.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 || math.IsNaN(norm) {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
	return norm
}
