package nn

import "time"

// This file implements the per-op cost model the cost-balanced stage
// partitioner consumes (pipeline.PartitionGroupsByCost). Two estimators
// exist: an analytic one — every layer that knows its own dimensions
// reports FLOP/byte counts per activation row, summed per weight group by
// Program.GroupCosts — and a measured one, Program.MeasureGroupCosts,
// which times one real forward+backward pass per op and attributes the
// wall time to the op's group. Only *relative* group costs matter for
// partitioning, so the analytic model normalizes everything to one
// activation row and ignores constant factors shared by all ops.

// Cost is an analytic estimate of one op's compute (floating-point
// operations) and memory traffic (bytes moved), per activation row.
type Cost struct {
	FLOPs float64
	Bytes float64
}

// Weight collapses a cost estimate to the single scalar the partition DP
// balances. Bytes are scaled by the approximate FLOPs-per-byte balance of
// the dense kernels, so a bandwidth-bound op (embedding gather) and a
// compute-bound op (matmul) land on a comparable axis.
func (c Cost) Weight() float64 { return c.FLOPs + c.Bytes/4 }

// add folds another estimate in.
func (c *Cost) add(o Cost) { c.FLOPs += o.FLOPs; c.Bytes += o.Bytes }

// Coster is implemented by layers (and weightless cores) that can estimate
// their per-row cost from their static dimensions. Ops whose layer does
// not implement Coster fall back to glueCost — elementwise glue such as
// activations and reshapes, which is negligible next to any projection.
type Coster interface {
	EstimateCost() Cost
}

// elemBytes returns the byte size of a parameter's element type, so the
// analytic byte estimates track the model dtype (3 matrices of float32
// move half the bytes of their float64 twins).
func elemBytes(p *Param) float64 { return float64(p.Data.DType().Size()) }

// glueCost is the fallback per-row estimate for dimensionless elementwise
// ops (ReLU, GELU, pooling, residual adds, the loss): a handful of FLOPs
// and two row reads. It only needs to be small relative to real layers.
var glueCost = Cost{FLOPs: 8, Bytes: 16}

// EstimateCost of a Linear covers y = x·Wᵀ (+b) forward and the dx/dW
// matmuls backward: 3 GEMMs of 2·in·out FLOPs per row, streaming the
// weight matrix each time.
func (l *Linear) EstimateCost() Cost {
	out := float64(l.W.Data.Shape[0])
	in := float64(l.W.Data.Shape[1])
	es := elemBytes(l.W)
	c := Cost{FLOPs: 6 * in * out, Bytes: 3 * es * in * out}
	if l.B != nil {
		c.FLOPs += 2 * out
	}
	return c
}

// EstimateCost of a Conv2d is per output pixel — the spatial extent is a
// property of the data, unknown at construction. Within a stack of
// equal-stride convs (and the per-pixel GroupNorms between them) the
// shared H·W factor cancels, so the heavy groups of a conv net are
// ranked correctly; against per-row ops (the Linear head after pooling)
// the conv side is *underestimated* by the spatial extent. Conv-heavy
// programs that need exact balance should use the profile partition
// mode, which measures real wall time.
func (c *Conv2d) EstimateCost() Cost {
	k := float64(c.kCols) * float64(c.OutC)
	es := elemBytes(c.W)
	return Cost{FLOPs: 6 * k, Bytes: 3 * es * k}
}

// EstimateCost of a LayerNorm covers the mean/variance reductions, the
// normalization and the dγ/dβ/dx backward over one row of width d.
func (ln *LayerNorm) EstimateCost() Cost {
	d := float64(ln.Gain.Data.Shape[0])
	return Cost{FLOPs: 24 * d, Bytes: 6 * elemBytes(ln.Gain) * d}
}

// EstimateCost of a GroupNorm mirrors LayerNorm per pixel over c channels.
func (gn *GroupNorm) EstimateCost() Cost {
	c := float64(gn.Gain.Data.Shape[0])
	return Cost{FLOPs: 24 * c, Bytes: 6 * elemBytes(gn.Gain) * c}
}

// EstimateCost of an Embedding is one table-row gather (bandwidth) plus
// the scatter-add backward.
func (e *Embedding) EstimateCost() Cost {
	d := float64(e.W.Data.Shape[1])
	return Cost{FLOPs: d, Bytes: 3 * elemBytes(e.W) * d}
}

// EstimateCost of a PositionalEncoding is one elementwise add per row and
// the pass-through/accumulate backward.
func (p *PositionalEncoding) EstimateCost() Cost {
	d := float64(p.W.Data.Shape[1])
	return Cost{FLOPs: 3 * d, Bytes: 5 * elemBytes(p.W) * d}
}

// EstimateCost of an AttnCore is per query row: the QKᵀ and probs·V GEMMs
// forward, their three counterparts backward, and the softmax over KLen
// scores per head.
func (a *AttnCore) EstimateCost() Cost {
	k := float64(a.KLen)
	d := float64(a.D)
	es := float64(a.ElemBytes)
	if es == 0 {
		es = 8
	}
	return Cost{
		FLOPs: 12*k*d + 10*k*float64(a.Heads),
		Bytes: 6 * es * k * d,
	}
}

// opCost estimates one op's per-row cost: the layer/core estimate when it
// has one, glue otherwise.
func opCost(op Op) Cost {
	switch o := op.(type) {
	case *ApplyOp:
		if c, ok := o.L.(Coster); ok {
			return c.EstimateCost()
		}
	case *AttnCoreOp:
		return o.Core.EstimateCost()
	}
	return glueCost
}

// GroupCosts returns the analytic per-weight-group cost of the program:
// each op's estimate accumulated onto the group it belongs to. nGroups
// must cover every index in GroupOf. The result feeds
// pipeline.PartitionGroupsByCost; only the relative magnitudes matter.
func (pr *Program) GroupCosts(nGroups int) []Cost {
	costs := make([]Cost, nGroups)
	for i, op := range pr.Ops {
		costs[pr.GroupOf[i]].add(opCost(op))
	}
	return costs
}

// MeasureGroupCosts runs one full forward and backward pass on m, timing
// every op individually and accumulating the wall time (in seconds) onto
// the op's weight group in costs (which must have room for every group
// index). The caller prepares the machine — reset, samples and labels
// bound — exactly as for a training microbatch, and owns cleanup: the
// backward half accumulates real parameter gradients, which must be
// zeroed before training starts.
func (pr *Program) MeasureGroupCosts(m *Machine, costs []float64) {
	for i, op := range pr.Ops {
		start := time.Now()
		op.Forward(m)
		costs[pr.GroupOf[i]] += time.Since(start).Seconds()
	}
	for i := len(pr.Ops) - 1; i >= 0; i-- {
		start := time.Now()
		pr.Ops[i].Backward(m)
		costs[pr.GroupOf[i]] += time.Since(start).Seconds()
	}
}
