package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Conv2d is a 2-D convolution over (B, C, H, W) inputs with square kernels,
// implemented via im2col lowering so forward and backward are matrix
// multiplies against the (possibly decoupled) kernel weights.
type Conv2d struct {
	W *Param // kernel, shape (outC, inC, K, K)
	B *Param // per-output-channel bias, nil when disabled

	InC, OutC, K, Stride, Pad int

	kCols int // InC*K*K
}

type convState struct {
	cols    *tensor.Tensor // im2col of the forward input
	b, h, w int            // input geometry
	oh, ow  int            // output geometry
}

// NewConv2d returns a Conv2d with He-initialized kernel weights.
func NewConv2d(name string, inC, outC, k, stride, pad int, bias bool, rng *rand.Rand) *Conv2d {
	c := &Conv2d{
		W:   NewParam(name+".W", outC, inC, k, k),
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		kCols: inC * k * k,
	}
	c.W.InitHe(rng, inC*k*k)
	if bias {
		c.B = NewParam(name+".b", outC)
	}
	return c
}

// Forward computes the convolution and saves the lowered input.
func (c *Conv2d) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	cols := tensor.Im2Col(x, c.K, c.K, c.Stride, c.Pad)
	wm := c.W.Data.Reshape(c.OutC, c.kCols)
	// rows are (b, oy, ox); columns are output channels.
	res := t.NewTensor(b*oh*ow, c.OutC)
	tensor.MatMulT2Into(res, cols, wm)
	out := t.NewTensor(b, c.OutC, oh, ow)
	hw := oh * ow
	if out.DType() == tensor.Float32 {
		var bias []float32
		if c.B != nil {
			bias = tensor.F32(c.B.Data)
		}
		convScatter(tensor.F32(out), tensor.F32(res), bias, b, c.OutC, hw)
	} else {
		var bias []float64
		if c.B != nil {
			bias = tensor.F64(c.B.Data)
		}
		convScatter(tensor.F64(out), tensor.F64(res), bias, b, c.OutC, hw)
	}
	t.Push(convState{cols, b, h, w, oh, ow})
	return out
}

// convScatter transposes (B*OH*OW, outC) matmul rows into (B, outC, OH, OW)
// image layout, adding the per-channel bias when present.
func convScatter[T tensor.Elem](out, res, bias []T, b, outC, hw int) {
	for n := 0; n < b; n++ {
		for p := 0; p < hw; p++ {
			row := res[(n*hw+p)*outC : (n*hw+p+1)*outC]
			for o := 0; o < outC; o++ {
				v := row[o]
				if bias != nil {
					v += bias[o]
				}
				out[(n*outC+o)*hw+p] = v
			}
		}
	}
}

// Backward accumulates kernel/bias gradients from the saved lowered input
// and returns the input gradient computed with the backward weights.
func (c *Conv2d) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(convState)
	hw := st.oh * st.ow
	// Rearrange dy (B, outC, OH, OW) into (B*OH*OW, outC) matching cols rows.
	dyr := t.NewTensor(st.b*hw, c.OutC)
	if dy.DType() == tensor.Float32 {
		convGather(tensor.F32(dyr), tensor.F32(dy), st.b, c.OutC, hw)
	} else {
		convGather(tensor.F64(dyr), tensor.F64(dy), st.b, c.OutC, hw)
	}
	// dW = dyrᵀ @ cols, shape (outC, inC*K*K).
	dW := t.NewTensor(c.OutC, c.kCols)
	tensor.MatMulT1Into(dW, dyr, st.cols)
	tensor.AddInto(c.W.Grad.Reshape(c.OutC, c.kCols), dW)
	if c.B != nil {
		// Bias gradient in a temporary, folded with one AddInto per call
		// (the one-add-per-element accumulation contract, see Param.Grad).
		db := t.NewTensor(c.OutC)
		if db.DType() == tensor.Float32 {
			colSum(tensor.F32(db), tensor.F32(dyr), dyr.Shape[0], c.OutC)
		} else {
			colSum(tensor.F64(db), tensor.F64(dyr), dyr.Shape[0], c.OutC)
		}
		tensor.AddInto(c.B.Grad, db)
	}
	// dcols = dyr @ W_bwd, then scatter back to image space.
	wb := c.W.BwdData().Reshape(c.OutC, c.kCols)
	dcols := t.NewTensor(st.b*hw, c.kCols)
	tensor.MatMulInto(dcols, dyr, wb)
	return tensor.Col2Im(dcols, st.b, c.InC, st.h, st.w, c.K, c.K, c.Stride, c.Pad)
}

// convGather transposes (B, outC, OH, OW) image-layout gradients into the
// (B*OH*OW, outC) row layout the weight-gradient matmuls expect.
func convGather[T tensor.Elem](dyr, dy []T, b, outC, hw int) {
	for n := 0; n < b; n++ {
		for o := 0; o < outC; o++ {
			base := (n*outC + o) * hw
			for p := 0; p < hw; p++ {
				dyr[(n*hw+p)*outC+o] = dy[base+p]
			}
		}
	}
}

// Params returns the kernel and, if present, the bias.
func (c *Conv2d) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}
