package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Conv2d is a 2-D convolution over (B, C, H, W) inputs with square kernels,
// implemented via im2col lowering so forward and backward are matrix
// multiplies against the (possibly decoupled) kernel weights.
type Conv2d struct {
	W *Param // kernel, shape (outC, inC, K, K)
	B *Param // per-output-channel bias, nil when disabled

	InC, OutC, K, Stride, Pad int

	kCols int // InC*K*K
}

type convState struct {
	cols    *tensor.Tensor // im2col of the forward input
	b, h, w int            // input geometry
	oh, ow  int            // output geometry
}

// NewConv2d returns a Conv2d with He-initialized kernel weights.
func NewConv2d(name string, inC, outC, k, stride, pad int, bias bool, rng *rand.Rand) *Conv2d {
	c := &Conv2d{
		W:   NewParam(name+".W", outC, inC, k, k),
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		kCols: inC * k * k,
	}
	c.W.InitHe(rng, inC*k*k)
	if bias {
		c.B = NewParam(name+".b", outC)
	}
	return c
}

// Forward computes the convolution and saves the lowered input.
func (c *Conv2d) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	b, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	ow := tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	cols := tensor.Im2Col(x, c.K, c.K, c.Stride, c.Pad)
	wm := c.W.Data.Reshape(c.OutC, c.kCols)
	// rows are (b, oy, ox); columns are output channels.
	res := t.NewTensor(b*oh*ow, c.OutC)
	tensor.MatMulT2Into(res, cols, wm)
	out := t.NewTensor(b, c.OutC, oh, ow)
	hw := oh * ow
	for n := 0; n < b; n++ {
		for p := 0; p < hw; p++ {
			row := res.Data[(n*hw+p)*c.OutC : (n*hw+p+1)*c.OutC]
			for o := 0; o < c.OutC; o++ {
				v := row[o]
				if c.B != nil {
					v += c.B.Data.Data[o]
				}
				out.Data[(n*c.OutC+o)*hw+p] = v
			}
		}
	}
	t.Push(convState{cols, b, h, w, oh, ow})
	return out
}

// Backward accumulates kernel/bias gradients from the saved lowered input
// and returns the input gradient computed with the backward weights.
func (c *Conv2d) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	st := t.Pop().(convState)
	hw := st.oh * st.ow
	// Rearrange dy (B, outC, OH, OW) into (B*OH*OW, outC) matching cols rows.
	dyr := t.NewTensor(st.b*hw, c.OutC)
	for n := 0; n < st.b; n++ {
		for o := 0; o < c.OutC; o++ {
			base := (n*c.OutC + o) * hw
			for p := 0; p < hw; p++ {
				dyr.Data[(n*hw+p)*c.OutC+o] = dy.Data[base+p]
			}
		}
	}
	// dW = dyrᵀ @ cols, shape (outC, inC*K*K).
	dW := t.NewTensor(c.OutC, c.kCols)
	tensor.MatMulT1Into(dW, dyr, st.cols)
	tensor.AddInto(c.W.Grad.Reshape(c.OutC, c.kCols), dW)
	if c.B != nil {
		// Bias gradient in a temporary, folded with one AddInto per call
		// (the one-add-per-element accumulation contract, see Param.Grad).
		db := t.NewTensor(c.OutC)
		for r := 0; r < dyr.Shape[0]; r++ {
			row := dyr.Data[r*c.OutC : (r+1)*c.OutC]
			for o := 0; o < c.OutC; o++ {
				db.Data[o] += row[o]
			}
		}
		tensor.AddInto(c.B.Grad, db)
	}
	// dcols = dyr @ W_bwd, then scatter back to image space.
	wb := c.W.BwdData().Reshape(c.OutC, c.kCols)
	dcols := t.NewTensor(st.b*hw, c.kCols)
	tensor.MatMulInto(dcols, dyr, wb)
	return tensor.Col2Im(dcols, st.b, c.InC, st.h, st.w, c.K, c.K, c.Stride, c.Pad)
}

// Params returns the kernel and, if present, the bias.
func (c *Conv2d) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}
