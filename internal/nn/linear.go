package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b with W of shape (out, in).
type Linear struct {
	W *Param
	B *Param // nil when constructed without bias

	x *tensor.Tensor // cached forward input
}

// NewLinear returns a Linear layer with Xavier-initialized weights and,
// when bias is true, a zero-initialized bias.
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(name+".W", out, in)}
	l.W.InitXavier(rng, in, out)
	if bias {
		l.B = NewParam(name+".b", out)
	}
	return l
}

// Forward computes x·Wᵀ + b and caches x.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.x = x
	out := tensor.MatMulT2(x, l.W.Data)
	if l.B != nil {
		rows, cols := out.Shape[0], out.Shape[1]
		for i := 0; i < rows; i++ {
			row := out.Data[i*cols : (i+1)*cols]
			for j := 0; j < cols; j++ {
				row[j] += l.B.Data.Data[j]
			}
		}
	}
	return out
}

// Backward accumulates dW = dyᵀ·x and db = Σrows(dy) into the gradients and
// returns dx = dy·W computed with the backward weights.
func (l *Linear) Backward(dy *tensor.Tensor) *tensor.Tensor {
	// Parameter gradients use the cached forward input.
	dW := tensor.MatMulT1(dy, l.x)
	tensor.AddInto(l.W.Grad, dW)
	if l.B != nil {
		rows, cols := dy.Shape[0], dy.Shape[1]
		for i := 0; i < rows; i++ {
			row := dy.Data[i*cols : (i+1)*cols]
			for j := 0; j < cols; j++ {
				l.B.Grad.Data[j] += row[j]
			}
		}
	}
	// Input gradient uses the (possibly delayed) backward weights.
	return tensor.MatMul(dy, l.W.BwdData())
}

// Params returns the weight and, if present, the bias.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}
