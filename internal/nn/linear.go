package nn

import (
	"math/rand"

	"pipemare/internal/tensor"
)

// Linear is a fully connected layer y = x·Wᵀ + b with W of shape (out, in).
type Linear struct {
	W *Param
	B *Param // nil when constructed without bias
}

// NewLinear returns a Linear layer with Xavier-initialized weights and,
// when bias is true, a zero-initialized bias.
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(name+".W", out, in)}
	l.W.InitXavier(rng, in, out)
	if bias {
		l.B = NewParam(name+".b", out)
	}
	return l
}

// Forward computes x·Wᵀ + b and saves x on the tape.
func (l *Linear) Forward(t *Tape, x *tensor.Tensor) *tensor.Tensor {
	out := t.NewTensor(x.Shape[0], l.W.Data.Shape[0])
	tensor.MatMulT2Into(out, x, l.W.Data)
	if l.B != nil {
		if out.DType() == tensor.Float32 {
			addBiasRows(tensor.F32(out), tensor.F32(l.B.Data), out.Shape[0], out.Shape[1])
		} else {
			addBiasRows(tensor.F64(out), tensor.F64(l.B.Data), out.Shape[0], out.Shape[1])
		}
	}
	t.Push(x)
	return out
}

// colSum accumulates the column sums of a (rows, cols) matrix into db,
// row by row in index order (shared by the Linear and Conv2d bias grads).
func colSum[T tensor.Elem](db, dy []T, rows, cols int) {
	for i := 0; i < rows; i++ {
		row := dy[i*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			db[j] += row[j]
		}
	}
}

func addBiasRows[T tensor.Elem](out, b []T, rows, cols int) {
	for i := 0; i < rows; i++ {
		row := out[i*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			row[j] += b[j]
		}
	}
}

// Backward accumulates dW = dyᵀ·x and db = Σrows(dy) into the gradients and
// returns dx = dy·W computed with the backward weights. Each gradient is
// formed in a tape temporary and folded with a single AddInto, keeping the
// one-add-per-element-per-call accumulation contract (see Param.Grad).
func (l *Linear) Backward(t *Tape, dy *tensor.Tensor) *tensor.Tensor {
	x := t.Pop().(*tensor.Tensor)
	// Parameter gradients use the saved forward input.
	dW := t.NewTensor(l.W.Data.Shape...)
	tensor.MatMulT1Into(dW, dy, x)
	tensor.AddInto(l.W.Grad, dW)
	if l.B != nil {
		rows, cols := dy.Shape[0], dy.Shape[1]
		db := t.NewTensor(cols)
		if db.DType() == tensor.Float32 {
			colSum(tensor.F32(db), tensor.F32(dy), rows, cols)
		} else {
			colSum(tensor.F64(db), tensor.F64(dy), rows, cols)
		}
		tensor.AddInto(l.B.Grad, db)
	}
	// Input gradient uses the (possibly delayed) backward weights.
	dx := t.NewTensor(dy.Shape[0], l.W.Data.Shape[1])
	tensor.MatMulInto(dx, dy, l.W.BwdData())
	return dx
}

// Params returns the weight and, if present, the bias.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}
