package nn

import (
	"fmt"

	"pipemare/internal/tensor"
)

// This file implements the stage-splittable execution form of a network:
// a Program of Ops over a register file. Models compile their forward
// graph into a linear op list whose ops are aligned with their weight
// groups, so any pipeline.Partition of the groups induces a contiguous op
// range per stage, and boundary activations are simply the registers that
// are live across the cut. A Machine holds one in-flight microbatch's
// registers, gradients and activation tape; stages of the same microbatch
// always execute on one goroutine at a time, handing the machine along the
// pipeline, so machines need no internal locking.

// Reg identifies a dataflow value (an activation tensor) in a Program.
type Reg int

// Op is one step of a compiled network: a unit of forward compute whose
// weights all belong to one weight group (possibly none). Forward reads
// and writes machine registers; Backward consumes the output registers'
// gradients and accumulates input-register gradients.
type Op interface {
	Forward(m *Machine)
	Backward(m *Machine)
}

// Program is a compiled network: ops in forward order plus, for each op,
// the index of the weight group it belongs to. GroupOf must be
// non-decreasing so that any contiguous partition of the groups induces a
// contiguous partition of the ops.
type Program struct {
	Ops     []Op
	GroupOf []int // op index → weight-group index
	NumRegs int
}

// StageRanges returns, for each of p stages, the half-open op range
// [lo[s], hi[s]) owned by the stage under the given group→stage
// assignment (pipeline.Partition.StageOf). Every op of group g runs on
// stage stageOf[g].
func (pr *Program) StageRanges(stageOf []int, p int) (lo, hi []int, err error) {
	lo = make([]int, p)
	hi = make([]int, p)
	prev := 0
	for i := range lo {
		lo[i] = -1
	}
	for op, g := range pr.GroupOf {
		if g < prev {
			return nil, nil, fmt.Errorf("nn: program group order regresses at op %d (group %d after %d)", op, g, prev)
		}
		prev = g
		s := stageOf[g]
		if lo[s] < 0 {
			lo[s] = op
		}
		hi[s] = op + 1
	}
	// Stages with no ops (cannot happen when every group has at least one
	// op, which compile enforces) collapse to empty ranges.
	next := len(pr.Ops)
	for s := p - 1; s >= 0; s-- {
		if lo[s] < 0 {
			lo[s], hi[s] = next, next
		} else {
			next = lo[s]
		}
	}
	return lo, hi, nil
}

// ForwardRange executes ops [lo, hi) forward on m.
func (pr *Program) ForwardRange(m *Machine, lo, hi int) {
	for i := lo; i < hi; i++ {
		pr.Ops[i].Forward(m)
	}
}

// BackwardRange executes ops [lo, hi) backward on m, in reverse order.
func (pr *Program) BackwardRange(m *Machine, lo, hi int) {
	for i := hi - 1; i >= lo; i-- {
		pr.Ops[i].Backward(m)
	}
}

// Machine is the per-microbatch execution state of a Program: the forward
// register file, the gradient registers and the activation tape. One
// machine serves one in-flight microbatch; the pipeline hands it from
// stage to stage, so at most one goroutine touches it at a time.
type Machine struct {
	Tape   Tape
	regs   []*tensor.Tensor
	grads  []*tensor.Tensor
	Labels []int   // loss-op labels, bound per microbatch
	Loss   float64 // written by the loss op
}

// NewMachine returns a machine with room for the program's registers.
func NewMachine(numRegs int) *Machine {
	return &Machine{regs: make([]*tensor.Tensor, numRegs), grads: make([]*tensor.Tensor, numRegs)}
}

// ResetRun clears registers, gradients and the tape for a fresh forward
// pass, recycling the tape arena. Tensors handed out by the previous run
// are invalidated.
func (m *Machine) ResetRun() {
	for i := range m.regs {
		m.regs[i] = nil
		m.grads[i] = nil
	}
	m.Loss = 0
	m.Tape.Reset()
}

// Val returns the value of register r.
func (m *Machine) Val(r Reg) *tensor.Tensor { return m.regs[r] }

// SetVal writes the value of register r.
func (m *Machine) SetVal(r Reg, v *tensor.Tensor) { m.regs[r] = v }

// Grad returns the accumulated gradient of register r (nil when no reader
// contributed one, e.g. for non-differentiable token inputs).
func (m *Machine) Grad(r Reg) *tensor.Tensor { return m.grads[r] }

// AddGradOwned folds g into register r's gradient, taking ownership: when
// r has no gradient yet, g itself becomes the accumulator (and may be
// mutated by later contributions). Callers must pass a tensor nothing else
// will read afterwards — a freshly computed layer input-gradient
// qualifies; a tensor also handed to another register does not (use
// AddGrad for the second one).
func (m *Machine) AddGradOwned(r Reg, g *tensor.Tensor) {
	if m.grads[r] == nil {
		m.grads[r] = g
		return
	}
	tensor.AddInto(m.grads[r], g)
}

// AddGrad folds g into register r's gradient without taking ownership: the
// first contribution is copied into an arena tensor.
func (m *Machine) AddGrad(r Reg, g *tensor.Tensor) {
	if m.grads[r] == nil {
		acc := m.Tape.NewTensor(g.Shape...)
		acc.CopyFrom(g)
		m.grads[r] = acc
		return
	}
	tensor.AddInto(m.grads[r], g)
}

// takeGrad returns r's gradient for consumption by the op that wrote r,
// failing loudly on a dataflow bug (a produced value whose gradient never
// arrived).
func (m *Machine) takeGrad(r Reg) *tensor.Tensor {
	g := m.grads[r]
	if g == nil {
		panic(fmt.Sprintf("nn: register %d has no gradient at its producer", r))
	}
	return g
}

// --- generic ops ---

// ApplyOp applies a unary Layer: Out = L(In).
type ApplyOp struct {
	L       Layer
	In, Out Reg
}

// Forward runs the layer on the input register.
func (o *ApplyOp) Forward(m *Machine) {
	m.SetVal(o.Out, o.L.Forward(&m.Tape, m.Val(o.In)))
}

// Backward routes the output gradient through the layer.
func (o *ApplyOp) Backward(m *Machine) {
	dx := o.L.Backward(&m.Tape, m.takeGrad(o.Out))
	m.AddGradOwned(o.In, dx)
}

// AddOp is a residual join: Out = A + B.
type AddOp struct {
	A, B, Out Reg
}

// Forward adds the two inputs elementwise.
func (o *AddOp) Forward(m *Machine) {
	m.SetVal(o.Out, m.Tape.Add(m.Val(o.A), m.Val(o.B)))
}

// Backward fans the output gradient out to both inputs. The first target
// may adopt the gradient tensor; the second must copy, or the two
// accumulators would alias.
func (o *AddOp) Backward(m *Machine) {
	dy := m.takeGrad(o.Out)
	m.AddGradOwned(o.A, dy)
	m.AddGrad(o.B, dy)
}

// AttnCoreOp runs a weightless attention core: Out = core(Q, K, V).
type AttnCoreOp struct {
	Core         *AttnCore
	Q, K, V, Out Reg
}

// Forward runs scaled dot-product attention over the projected inputs.
func (o *AttnCoreOp) Forward(m *Machine) {
	m.SetVal(o.Out, o.Core.Forward(&m.Tape, m.Val(o.Q), m.Val(o.K), m.Val(o.V)))
}

// Backward propagates to the query, key and value registers.
func (o *AttnCoreOp) Backward(m *Machine) {
	dq, dk, dv := o.Core.Backward(&m.Tape, m.takeGrad(o.Out))
	m.AddGradOwned(o.Q, dq)
	m.AddGradOwned(o.K, dk)
	m.AddGradOwned(o.V, dv)
}

// LossOp computes the scalar training loss from the logits register and
// the machine's bound labels, writing Machine.Loss. It seeds the backward
// pass.
type LossOp struct {
	CE     *CrossEntropy
	Logits Reg
}

// Forward computes the mean cross-entropy of the bound labels.
func (o *LossOp) Forward(m *Machine) {
	m.Loss = o.CE.Forward(&m.Tape, m.Val(o.Logits), m.Labels)
}

// Backward seeds the logits gradient.
func (o *LossOp) Backward(m *Machine) {
	m.AddGradOwned(o.Logits, o.CE.Backward(&m.Tape))
}
