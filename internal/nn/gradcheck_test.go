package nn

import (
	"math"
	"math/rand"
	"testing"

	"pipemare/internal/tensor"
)

// projLoss is the scalar test loss L = Σ y ⊙ r for a fixed random r, whose
// gradient with respect to y is exactly r.
func projLoss(y, r *tensor.Tensor) float64 {
	s := 0.0
	for i := range y.Data {
		s += y.Data[i] * r.Data[i]
	}
	return s
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// fwd runs a layer forward on a throwaway tape (for loss probes whose
// activations are consumed immediately).
func fwd(l Layer, x *tensor.Tensor) *tensor.Tensor {
	return l.Forward(NewTape(), x)
}

// checkLayerGrad verifies a layer's input and parameter gradients against
// central finite differences of the projection loss.
func checkLayerGrad(t *testing.T, name string, l Layer, x *tensor.Tensor, rng *rand.Rand, tol float64) {
	t.Helper()
	y := fwd(l, x)
	r := randTensor(rng, y.Shape...)
	ZeroGrads(l.Params())
	tp := NewTape()
	l.Forward(tp, x)
	dx := l.Backward(tp, r).Clone() // clone: the tape arena owns the original
	if tp.Depth() != 0 {
		t.Fatalf("%s: tape depth %d after forward+backward, want 0", name, tp.Depth())
	}

	const eps = 1e-5
	// Input gradient.
	for i := 0; i < len(x.Data); i += 1 + len(x.Data)/50 { // sample ≤ ~50 coords
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := projLoss(fwd(l, x), r)
		x.Data[i] = orig - eps
		lm := projLoss(fwd(l, x), r)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if diff := math.Abs(num - dx.Data[i]); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad [%d] = %g, numeric %g", name, i, dx.Data[i], num)
		}
	}
	// Parameter gradients.
	for _, p := range l.Params() {
		for i := 0; i < len(p.Data.Data); i += 1 + len(p.Data.Data)/40 {
			orig := p.Data.Data[i]
			p.Data.Data[i] = orig + eps
			lp := projLoss(fwd(l, x), r)
			p.Data.Data[i] = orig - eps
			lm := projLoss(fwd(l, x), r)
			p.Data.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - p.Grad.Data[i]); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %s grad [%d] = %g, numeric %g", name, p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLinearGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 7, 5, true, rng)
	checkLayerGrad(t, "Linear", l, randTensor(rng, 4, 7), rng, 1e-6)
}

func TestLinearNoBiasGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 6, 3, false, rng)
	if len(l.Params()) != 1 {
		t.Fatalf("no-bias linear has %d params, want 1", len(l.Params()))
	}
	checkLayerGrad(t, "LinearNoBias", l, randTensor(rng, 3, 6), rng, 1e-6)
}

func TestConv2dGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2d("conv", 2, 3, 3, 1, 1, true, rng)
	checkLayerGrad(t, "Conv2d", c, randTensor(rng, 2, 2, 5, 5), rng, 1e-6)
}

func TestConv2dStridedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2d("conv", 2, 4, 3, 2, 1, true, rng)
	checkLayerGrad(t, "Conv2dStrided", c, randTensor(rng, 1, 2, 6, 6), rng, 1e-6)
}

func TestReLUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checkLayerGrad(t, "ReLU", NewReLU(), randTensor(rng, 4, 9), rng, 1e-6)
}

func TestGELUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checkLayerGrad(t, "GELU", NewGELU(), randTensor(rng, 4, 9), rng, 1e-6)
}

func TestLayerNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkLayerGrad(t, "LayerNorm", NewLayerNorm("ln", 8), randTensor(rng, 5, 8), rng, 1e-5)
}

// TestLayerNormParallelBitIdentical pins the deterministic-parallelism
// contract for the row/column-parallel layernorm kernels.
func TestLayerNormParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	ln := NewLayerNorm("ln", 33)
	x := randTensor(rng, 65, 33)
	dy := randTensor(rng, 65, 33)

	run := func() (*tensor.Tensor, *tensor.Tensor, []float64, []float64) {
		ZeroGrads(ln.Params())
		tp := NewTape()
		y := ln.Forward(tp, x)
		dx := ln.Backward(tp, dy)
		return y.Clone(), dx.Clone(),
			append([]float64(nil), ln.Gain.Grad.Data...),
			append([]float64(nil), ln.Bias.Grad.Data...)
	}
	tensor.SetWorkers(1)
	y1, dx1, g1, b1 := run()
	tensor.SetWorkers(8)
	y2, dx2, g2, b2 := run()
	tensor.SetWorkers(1)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("forward element %d differs serial vs parallel", i)
		}
	}
	for i := range dx1.Data {
		if dx1.Data[i] != dx2.Data[i] {
			t.Fatalf("dx element %d differs serial vs parallel", i)
		}
	}
	for i := range g1 {
		if g1[i] != g2[i] || b1[i] != b2[i] {
			t.Fatalf("gain/bias grad %d differs serial vs parallel", i)
		}
	}
}

func TestGroupNormGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checkLayerGrad(t, "GroupNorm", NewGroupNorm("gn", 4, 2), randTensor(rng, 2, 4, 3, 3), rng, 1e-5)
}

func TestResidualGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inner := NewSequential(NewLinear("fc1", 6, 6, true, rng), NewReLU())
	checkLayerGrad(t, "Residual", NewResidual(inner), randTensor(rng, 3, 6), rng, 1e-6)
}

func TestSequentialGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := NewSequential(
		NewLinear("fc1", 5, 8, true, rng),
		NewReLU(),
		NewLayerNorm("ln", 8),
		NewLinear("fc2", 8, 4, true, rng),
	)
	checkLayerGrad(t, "Sequential", s, randTensor(rng, 3, 5), rng, 1e-5)
}

func TestSelfAttentionGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sa := NewSelfAttention("attn", 8, 2, 4, false, rng)
	checkLayerGrad(t, "SelfAttention", sa, randTensor(rng, 2*4, 8), rng, 1e-5)
}

func TestCausalSelfAttentionGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sa := NewSelfAttention("attn", 8, 2, 4, true, rng)
	checkLayerGrad(t, "CausalSelfAttention", sa, randTensor(rng, 2*4, 8), rng, 1e-5)
}

func TestCrossAttentionGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMultiHeadAttention("xattn", 8, 2, 3, 5, false, rng)
	xq := randTensor(rng, 2*3, 8)
	xkv := randTensor(rng, 2*5, 8)
	y := m.ForwardQKV(NewTape(), xq, xkv)
	r := randTensor(rng, y.Shape...)
	ZeroGrads(m.Params())
	tp := NewTape()
	m.ForwardQKV(tp, xq, xkv)
	dxqT, dxkvT := m.BackwardQKV(tp, r)
	dxq, dxkv := dxqT.Clone(), dxkvT.Clone()

	const eps = 1e-5
	check := func(x, dx *tensor.Tensor, label string) {
		for i := 0; i < len(x.Data); i += 3 {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp := projLoss(m.ForwardQKV(NewTape(), xq, xkv), r)
			x.Data[i] = orig - eps
			lm := projLoss(m.ForwardQKV(NewTape(), xq, xkv), r)
			x.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-dx.Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("cross-attention %s grad [%d] = %g, numeric %g", label, i, dx.Data[i], num)
			}
		}
	}
	check(xq, dxq, "query")
	check(xkv, dxkv, "kv")
}

func TestEmbeddingGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	e := NewEmbedding("emb", 10, 6, rng)
	ids := tensor.FromSlice([]float64{1, 3, 3, 7}, 2, 2)
	y := fwd(e, ids)
	r := randTensor(rng, y.Shape...)
	ZeroGrads(e.Params())
	tp := NewTape()
	e.Forward(tp, ids)
	e.Backward(tp, r)
	const eps = 1e-5
	for i := 0; i < e.W.Size(); i += 2 {
		orig := e.W.Data.Data[i]
		e.W.Data.Data[i] = orig + eps
		lp := projLoss(fwd(e, ids), r)
		e.W.Data.Data[i] = orig - eps
		lm := projLoss(fwd(e, ids), r)
		e.W.Data.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-e.W.Grad.Data[i]) > 1e-6*(1+math.Abs(num)) {
			t.Fatalf("embedding grad [%d] = %g, numeric %g", i, e.W.Grad.Data[i], num)
		}
	}
	// Repeated token 3 must receive the sum of both row gradients.
}

func TestPositionalEncodingGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := NewPositionalEncoding("pos", 3, 4, rng)
	checkLayerGrad(t, "PositionalEncoding", p, randTensor(rng, 2*3, 4), rng, 1e-6)
}

func TestGlobalAvgPoolGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	checkLayerGrad(t, "GlobalAvgPool", NewGlobalAvgPool(), randTensor(rng, 2, 3, 4, 4), rng, 1e-6)
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := NewFlatten()
	tp := NewTape()
	x := randTensor(rng, 2, 3, 2, 2)
	y := f.Forward(tp, x)
	if y.Shape[0] != 2 || y.Shape[1] != 12 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dy := randTensor(rng, 2, 12)
	dx := f.Backward(tp, dy)
	if dx.Rank() != 4 || dx.Shape[1] != 3 {
		t.Fatalf("flatten backward shape %v", dx.Shape)
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	logits := randTensor(rng, 5, 4)
	labels := []int{0, 3, -1, 2, 1} // row 2 ignored
	ce := NewCrossEntropy()
	tp := NewTape()
	ce.Forward(tp, logits, labels)
	grad := ce.Backward(tp).Clone()
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp := ce.Forward(NewTape(), logits, labels)
		logits.Data[i] = orig - eps
		lm := ce.Forward(NewTape(), logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6*(1+math.Abs(num)) {
			t.Fatalf("CE grad [%d] = %g, numeric %g", i, grad.Data[i], num)
		}
	}
	// Ignored row contributes zero gradient.
	for j := 0; j < 4; j++ {
		if grad.At(2, j) != 0 {
			t.Fatal("ignored row must have zero gradient")
		}
	}
}

func TestMSEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pred := randTensor(rng, 3, 4)
	target := randTensor(rng, 3, 4)
	m := NewMSE()
	m.Forward(pred, target)
	grad := m.Backward()
	const eps = 1e-6
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + eps
		lp := m.Forward(pred, target)
		pred.Data[i] = orig - eps
		lm := m.Forward(pred, target)
		pred.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-8 {
			t.Fatalf("MSE grad [%d] = %g, numeric %g", i, grad.Data[i], num)
		}
	}
}

func TestDecoupledBackwardWeights(t *testing.T) {
	// The defining property of the library: with Bwd set, the input gradient
	// is dy @ W_bwd while the parameter gradient still uses the saved
	// forward input — the paper's ∇f_t(u_fwd, u_bkwd).
	rng := rand.New(rand.NewSource(20))
	l := NewLinear("fc", 3, 2, false, rng)
	x := randTensor(rng, 1, 3)
	dy := randTensor(rng, 1, 2)

	wb := randTensor(rng, 2, 3)
	l.W.Bwd = wb
	tp := NewTape()
	l.Forward(tp, x)
	ZeroGrads(l.Params())
	dx := l.Backward(tp, dy).Clone()

	// dx must equal dy @ Bwd.
	want := tensor.MatMul(dy, wb)
	for i := range want.Data {
		if math.Abs(dx.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("dx[%d] = %g, want %g (must use backward weights)", i, dx.Data[i], want.Data[i])
		}
	}
	// dW must equal dyᵀ @ x regardless of Bwd.
	wantW := tensor.MatMulT1(dy, x)
	for i := range wantW.Data {
		if math.Abs(l.W.Grad.Data[i]-wantW.Data[i]) > 1e-12 {
			t.Fatalf("dW[%d] = %g, want %g (must use saved forward input)", i, l.W.Grad.Data[i], wantW.Data[i])
		}
	}
	// Clearing Bwd restores synchronous behaviour.
	l.W.Bwd = nil
	tp2 := NewTape()
	l.Forward(tp2, x)
	dxSync := l.Backward(tp2, dy)
	wantSync := tensor.MatMul(dy, l.W.Data)
	for i := range wantSync.Data {
		if math.Abs(dxSync.Data[i]-wantSync.Data[i]) > 1e-12 {
			t.Fatal("with Bwd nil the backward pass must use forward weights")
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", pre)
	}
	if post := GradNorm([]*Param{p}); math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
	// No-op below the threshold.
	ClipGradNorm([]*Param{p}, 10)
	if post := GradNorm([]*Param{p}); math.Abs(post-1) > 1e-12 {
		t.Fatal("clip below threshold must not rescale")
	}
}

func TestParamHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := NewParam("a", 2, 3)
	b := NewParam("b", 4)
	a.InitXavier(rng, 3, 2)
	b.InitNormal(rng, 0.1)
	if TotalSize([]*Param{a, b}) != 10 {
		t.Fatalf("TotalSize = %d, want 10", TotalSize([]*Param{a, b}))
	}
	if ParamNorm([]*Param{a, b}) <= 0 {
		t.Fatal("ParamNorm should be positive after init")
	}
	a.Grad.Fill(2)
	ZeroGrads([]*Param{a, b})
	if GradNorm([]*Param{a, b}) != 0 {
		t.Fatal("ZeroGrads must clear gradients")
	}
}
