package quad

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"pipemare/internal/poly"
)

func TestCharPolyMatchesEquation4(t *testing.T) {
	// p(ω) = ω^{τ+1} − ω^τ + αλ evaluated directly.
	p := CharPoly(3, 0.1, 2.0)
	for _, w := range []complex128{1, -1, complex(0.5, 0.5), complex(0, 1)} {
		want := cmplx.Pow(w, 4) - cmplx.Pow(w, 3) + complex(0.2, 0)
		if got := p.Eval(w); cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("CharPoly(%v) = %v, want %v", w, got, want)
		}
	}
}

func TestCharPolyZeroDelayIsGradientDescent(t *testing.T) {
	// τ = 0: p(ω) = ω − 1 + αλ, root 1 − αλ; stable iff 0 < α < 2/λ.
	p := CharPoly(0, 0.5, 1.0)
	r, err := p.SpectralRadius()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("spectral radius = %g, want 0.5", r)
	}
}

func TestCharPolyMomentumReducesToPlain(t *testing.T) {
	pm := CharPolyMomentum(4, 0.1, 1.0, 0)
	pp := CharPoly(4, 0.1, 1.0)
	for _, w := range []complex128{1, complex(0.3, 0.7), -1} {
		if cmplx.Abs(pm.Eval(w)-pp.Eval(w)) > 1e-12 {
			t.Fatal("β=0 momentum polynomial must equal the plain polynomial")
		}
	}
}

func TestCharPolyDiscrepancyReducesToPlain(t *testing.T) {
	pd := CharPolyDiscrepancy(5, 2, 0.1, 1.0, 0)
	pp := CharPoly(5, 0.1, 1.0)
	for _, w := range []complex128{1, complex(0.3, 0.7), -1, complex(0, 1)} {
		if cmplx.Abs(pd.Eval(w)-pp.Eval(w)) > 1e-12 {
			t.Fatal("Δ=0 discrepancy polynomial must equal the plain polynomial")
		}
	}
}

func TestLemma1BoundMatchesExactThreshold(t *testing.T) {
	// Property: the numerically found max stable α equals the closed form
	// (2/λ)·sin(π/(4τ+2)) for a grid of delays and curvatures.
	for _, tau := range []int{1, 2, 3, 5, 8, 13, 21, 34, 64} {
		for _, lambda := range []float64{0.5, 1.0, 3.0} {
			bound := Lemma1Bound(tau, lambda)
			got, err := MaxStableAlpha(func(a float64) poly.Poly {
				return CharPoly(tau, a, lambda)
			}, 4/lambda, 1e-7)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-bound) > 1e-4*bound {
				t.Errorf("τ=%d λ=%g: max stable α = %g, Lemma 1 bound = %g", tau, lambda, got, bound)
			}
		}
	}
}

func TestLemma1DoubleRoot(t *testing.T) {
	// At α from Lemma1DoubleRoot the polynomial has a double real root at
	// ω = τ/(τ+1): both p and p' vanish there.
	for _, tau := range []int{2, 5, 10, 20} {
		alpha, omega := Lemma1DoubleRoot(tau, 1.0)
		p := CharPoly(tau, alpha, 1.0)
		w := complex(omega, 0)
		if v := cmplx.Abs(p.Eval(w)); v > 1e-10 {
			t.Errorf("τ=%d: |p(ω*)| = %g", tau, v)
		}
		if v := cmplx.Abs(p.Derivative().Eval(w)); v > 1e-10 {
			t.Errorf("τ=%d: |p'(ω*)| = %g", tau, v)
		}
	}
}

func TestLemma2BoundUpperBoundsInstability(t *testing.T) {
	// Lemma 2: there exists an unstable α at or below the bound, i.e. the
	// first instability (max stable α) is ≤ the Lemma 2 bound.
	cases := []struct {
		tauFwd, tauBkwd int
		delta           float64
	}{
		{10, 6, 1}, {10, 6, 5}, {20, 5, 2}, {40, 10, 10}, {15, 0, 3},
	}
	for _, c := range cases {
		bound := Lemma2Bound(c.tauFwd, c.tauBkwd, 1.0, c.delta)
		got, err := MaxStableAlpha(func(a float64) poly.Poly {
			return CharPolyDiscrepancy(c.tauFwd, c.tauBkwd, a, 1.0, c.delta)
		}, 4, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if got > bound*(1+1e-4) {
			t.Errorf("τf=%d τb=%d Δ=%g: max stable α = %g exceeds Lemma 2 bound %g", c.tauFwd, c.tauBkwd, c.delta, got, bound)
		}
	}
}

func TestLemma3BoundUpperBoundsMomentumInstability(t *testing.T) {
	// Lemma 3: for any β ∈ (0,1], an unstable α exists with
	// α ≤ (4/λ)·sin(π/(4τ+2)).
	for _, tau := range []int{3, 8, 16} {
		for _, beta := range []float64{0.1, 0.5, 0.9, 1.0} {
			bound := Lemma3Bound(tau, 1.0)
			got, err := MaxStableAlpha(func(a float64) poly.Poly {
				return CharPolyMomentum(tau, a, 1.0, beta)
			}, 8, 1e-7)
			if err != nil {
				t.Fatal(err)
			}
			if got > bound*(1+1e-4) {
				t.Errorf("τ=%d β=%g: max stable α = %g exceeds Lemma 3 bound %g", tau, beta, got, bound)
			}
		}
	}
}

func TestGammaFromDRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 0.01 + 0.9*rng.Float64()
		tf := float64(2 + rng.Intn(40))
		tb := float64(rng.Intn(int(tf)))
		g := GammaFromD(d, tf, tb)
		return math.Abs(math.Pow(g, tf-tb)-d) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaTaylorApproachesDStar(t *testing.T) {
	// D = γ^{τf−τb} with γ = 1 − 2/(τf−τb+1) approaches e⁻² for large delay gaps.
	g := GammaTaylor(200, 0)
	d := math.Pow(g, 200)
	if math.Abs(d-DStar) > 5e-3 {
		t.Fatalf("implied D = %g, want ≈ %g", d, DStar)
	}
	if math.Abs(DStar-math.Exp(-2)) > 1e-15 {
		t.Fatalf("DStar constant = %g, want exp(-2)", DStar)
	}
}

func TestT2GammaCancelsDelta(t *testing.T) {
	// Appendix B.5: with γ = 1 − 2/(τf−τb+1), p(1), p'(1) and p''(1) of the
	// T2-corrected characteristic polynomial are all independent of Δ.
	tauFwd, tauBkwd := 17, 5
	alpha, lambda := 0.01, 1.3
	gamma := GammaTaylor(tauFwd, tauBkwd)
	eval2 := func(delta float64) (p0, p1, p2 complex128) {
		p := CharPolyT2(tauFwd, tauBkwd, alpha, lambda, delta, gamma)
		d1 := p.Derivative()
		d2 := d1.Derivative()
		return p.Eval(1), d1.Eval(1), d2.Eval(1)
	}
	a0, a1, a2 := eval2(0)
	b0, b1, b2 := eval2(25)
	if cmplx.Abs(a0-b0) > 1e-10 || cmplx.Abs(a1-b1) > 1e-10 {
		t.Fatalf("p(1), p'(1) must be Δ-independent for any γ: got %v vs %v, %v vs %v", a0, b0, a1, b1)
	}
	if cmplx.Abs(a2-b2) > 1e-8 {
		t.Fatalf("p''(1) not Δ-independent at Taylor γ: %v vs %v", a2, b2)
	}
	// And with a different γ the cancellation must fail.
	badGamma := gamma * 0.5
	p := CharPolyT2(tauFwd, tauBkwd, alpha, lambda, 0, badGamma)
	q := CharPolyT2(tauFwd, tauBkwd, alpha, lambda, 25, badGamma)
	if cmplx.Abs(p.Derivative().Derivative().Eval(1)-q.Derivative().Derivative().Eval(1)) < 1e-10 {
		t.Fatal("p''(1) unexpectedly Δ-independent for non-Taylor γ")
	}
	// Closed forms from the appendix: p(1) = αλ(1−γ), p'(1) = αλ + 1 − γ.
	wantP0 := complex(alpha*lambda*(1-gamma), 0)
	wantP1 := complex(alpha*lambda+1-gamma, 0)
	if cmplx.Abs(a0-wantP0) > 1e-10 || cmplx.Abs(a1-wantP1) > 1e-10 {
		t.Fatalf("closed forms violated: p(1)=%v want %v; p'(1)=%v want %v", a0, wantP0, a1, wantP1)
	}
}

func TestT2WidensStability(t *testing.T) {
	// Figure 8 claim: for Δ ≥ 0 the T2 correction (γ per eq. (15)) allows a
	// strictly larger stable step size than the uncorrected system.
	cases := []struct {
		tauFwd, tauBkwd int
		delta           float64
	}{
		{40, 10, 5}, {40, 10, 20}, {40, 10, 100}, {20, 4, 10}, {30, 0, 50},
	}
	for _, c := range cases {
		gamma := GammaTaylor(c.tauFwd, c.tauBkwd)
		plain, err := MaxStableAlpha(func(a float64) poly.Poly {
			return CharPolyDiscrepancy(c.tauFwd, c.tauBkwd, a, 1.0, c.delta)
		}, 2, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		corrected, err := MaxStableAlpha(func(a float64) poly.Poly {
			return CharPolyT2(c.tauFwd, c.tauBkwd, a, 1.0, c.delta, gamma)
		}, 2, 1e-7)
		if err != nil {
			t.Fatal(err)
		}
		if corrected <= plain {
			t.Errorf("τf=%d τb=%d Δ=%g: T2 max α %g not larger than uncorrected %g", c.tauFwd, c.tauBkwd, c.delta, corrected, plain)
		}
	}
}

func TestSimulateMatchesCharPolyStability(t *testing.T) {
	// Cross-validation: the noise-free trajectory is bounded exactly when
	// the companion polynomial is stable, on both sides of the threshold.
	for _, tau := range []int{4, 9, 15} {
		bound := Lemma1Bound(tau, 1.0)
		for _, f := range []float64{0.9, 1.1} {
			cfg := Config{Lambda: 1, Alpha: f * bound, TauFwd: tau, W0: 1, Steps: 6000, LossCap: 1e8}
			res := Simulate(cfg)
			wantDiverge := f > 1
			if wantDiverge {
				// Marginal instability grows slowly; check growth, not cap.
				grew := res.Diverged || res.FinalLoss() > res.Loss[0]
				if !grew {
					t.Errorf("τ=%d α=%.4g: expected growth above threshold, final loss %g", tau, cfg.Alpha, res.FinalLoss())
				}
			} else if res.Diverged || res.FinalLoss() > 0.5 {
				t.Errorf("τ=%d α=%.4g: expected decay below threshold, final loss %g", tau, cfg.Alpha, res.FinalLoss())
			}
		}
	}
}

func TestSimulateFigure3aSetup(t *testing.T) {
	// Figure 3(a): λ=1, α=0.2, noise N(0,1): τ ∈ {0,5} stays bounded,
	// τ=10 diverges.
	base := Config{Lambda: 1, Alpha: 0.2, NoiseStd: 1, W0: 0, Steps: 2500, Seed: 1, LossCap: 1e6}
	for _, tau := range []int{0, 5} {
		cfg := base
		cfg.TauFwd = tau
		if res := Simulate(cfg); res.Diverged {
			t.Errorf("τ=%d should remain bounded at α=0.2", tau)
		}
	}
	cfg := base
	cfg.TauFwd = 10
	if res := Simulate(cfg); !res.Diverged {
		t.Error("τ=10 should diverge at α=0.2 (Lemma 1 bound ≈ 0.149)")
	}
}

func TestSimulateFigure5aSetup(t *testing.T) {
	// Figure 5(a): τf=10, τb=6, λ=1. At a step size where Δ=0 converges,
	// Δ=5 diverges.
	alpha := 0.12 // below Lemma1Bound(10,1) ≈ 0.149, above 2/(Δ(τf−τb)) = 0.1
	conv := Simulate(Config{Lambda: 1, Alpha: alpha, TauFwd: 10, TauBkwd: 6, Delta: 0, NoiseStd: 1, Steps: 400, Seed: 2, LossCap: 1e6})
	if conv.Diverged {
		t.Fatal("Δ=0 should stay bounded")
	}
	div := Simulate(Config{Lambda: 1, Alpha: alpha, TauFwd: 10, TauBkwd: 6, Delta: 5, NoiseStd: 1, Steps: 400, Seed: 2, LossCap: 1e6})
	if !div.Diverged {
		t.Fatal("Δ=5 should diverge")
	}
}

func TestSimulateT2MatchesCharPolyT2(t *testing.T) {
	// The T2 simulator and the T2 companion polynomial must agree about
	// stability on both sides of the polynomial's threshold.
	tauFwd, tauBkwd := 12, 3
	d := 0.1
	gamma := GammaFromD(d, float64(tauFwd), float64(tauBkwd))
	delta := 4.0
	thr, err := MaxStableAlpha(func(a float64) poly.Poly {
		return CharPolyT2(tauFwd, tauBkwd, a, 1.0, delta, gamma)
	}, 2, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(alpha float64) *Result {
		return Simulate(Config{Lambda: 1, Alpha: alpha, TauFwd: tauFwd, TauBkwd: tauBkwd,
			Delta: delta, T2: true, D: d, W0: 1, Steps: 20000, LossCap: 1e10})
	}
	below := mk(0.9 * thr)
	if below.Diverged || below.FinalLoss() > below.Loss[0] {
		t.Errorf("below threshold (α=%.5g) should decay; final loss %g", 0.9*thr, below.FinalLoss())
	}
	above := mk(1.1 * thr)
	if !(above.Diverged || above.FinalLoss() > above.Loss[0]) {
		t.Errorf("above threshold (α=%.5g) should grow; final loss %g", 1.1*thr, above.FinalLoss())
	}
}

func TestRecomputeCorrectionWidensStability(t *testing.T) {
	// Figure 16 setup: Δ=10, Φ=−5, τf=10, τb=1, τr=4, λ=1. T2 correction
	// with D=0.1 must beat the uncorrected system's stability range.
	tauFwd, tauBkwd, tauRecomp := 10, 1, 4
	delta, phi := 10.0, -5.0
	gamma := GammaFromD(0.1, float64(tauFwd), float64(tauBkwd))
	plain, err := MaxStableAlpha(func(a float64) poly.Poly {
		return CharPolyRecomputeNoCorrection(tauFwd, tauBkwd, tauRecomp, a, 1.0, delta, phi)
	}, 2, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	corrected, err := MaxStableAlpha(func(a float64) poly.Poly {
		return CharPolyRecompute(tauFwd, tauBkwd, tauRecomp, a, 1.0, delta, phi, gamma)
	}, 2, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if corrected <= plain {
		t.Fatalf("recompute T2 max α %g not larger than uncorrected %g", corrected, plain)
	}
}

func TestCharPolyRecomputeReducesToT2(t *testing.T) {
	// Φ=0 and τr=τb collapses the recompute polynomial onto the T2 one.
	a := CharPolyRecompute(10, 2, 2, 0.05, 1, 3, 0, 0.7)
	b := CharPolyT2(10, 2, 0.05, 1, 3, 0.7)
	for _, w := range []complex128{1, complex(0.4, 0.6), -1} {
		if cmplx.Abs(a.Eval(w)-b.Eval(w)) > 1e-12 {
			t.Fatal("recompute polynomial with Φ=0 must equal T2 polynomial")
		}
	}
}

func TestLinearRegressionGradAndLoss(t *testing.T) {
	// f(w) = (1/2n)‖Xw − y‖² with X = I₂, y = (1,2): grad at 0 is (−.5,−1).
	lr := &LinearRegression{X: [][]float64{{1, 0}, {0, 1}}, Y: []float64{1, 2}}
	g := lr.Grad([]float64{0, 0})
	if math.Abs(g[0]+0.5) > 1e-12 || math.Abs(g[1]+1) > 1e-12 {
		t.Fatalf("grad = %v, want [-0.5 -1]", g)
	}
	if l := lr.Loss([]float64{1, 2}); l != 0 {
		t.Fatalf("loss at optimum = %g, want 0", l)
	}
}

func TestLinearRegressionMaxCurvature(t *testing.T) {
	// Diagonal design: X rows (2,0) and (0,1) → H = diag(4,1)/2 = diag(2,.5).
	lr := &LinearRegression{X: [][]float64{{2, 0}, {0, 1}}, Y: []float64{0, 0}}
	if got := lr.MaxCurvature(); math.Abs(got-2) > 1e-6 {
		t.Fatalf("MaxCurvature = %g, want 2", got)
	}
}

func TestDelayedSGDStabilityFollowsLemma1(t *testing.T) {
	// Figure 3(b) structure: the delayed full-batch GD on a linear
	// regression diverges just above (2/λmax)·sin(π/(4τ+2)) and converges
	// just below it.
	rng := rand.New(rand.NewSource(3))
	n, d := 60, 6
	lr := &LinearRegression{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		lr.X[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			lr.X[i][j] = rng.NormFloat64()
		}
		lr.Y[i] = rng.NormFloat64()
	}
	lam := lr.MaxCurvature()
	for _, tau := range []int{4, 16} {
		bound := Lemma1Bound(tau, lam)
		if l := lr.DelayedSGD(tau, 0.8*bound, 4000, 0, 1e8, 1); math.IsInf(l, 1) {
			t.Errorf("τ=%d: diverged below the Lemma 1 bound", tau)
		}
		if l := lr.DelayedSGD(tau, 1.3*bound, 4000, 0, 1e8, 1); !math.IsInf(l, 1) {
			t.Errorf("τ=%d: converged well above the Lemma 1 bound (loss %g)", tau, l)
		}
	}
}

func TestMaxStableAlphaEdgeCases(t *testing.T) {
	// A polynomial stable for every α in range returns hi.
	got, err := MaxStableAlpha(func(a float64) poly.Poly {
		return poly.FromReal(0.5, 1) // root −0.5 always
	}, 1.5, 1e-9)
	if err != nil || got != 1.5 {
		t.Fatalf("always-stable: got %g err %v, want 1.5", got, err)
	}
	// A polynomial unstable everywhere returns 0.
	got, err = MaxStableAlpha(func(a float64) poly.Poly {
		return poly.FromReal(-2, 1) // root 2 always
	}, 1.5, 1e-9)
	if err != nil || got != 0 {
		t.Fatalf("never-stable: got %g err %v, want 0", got, err)
	}
}
