// Package quad implements the quadratic-model theory of PipeMare §3 and
// Appendices B and D: fixed-delay asynchronous SGD on f(w) = (λ/2)w²,
// its companion-matrix characteristic polynomials, the Lemma 1–3 stability
// bounds, the T2 discrepancy correction and its recompute extension, and
// trajectory simulators used to regenerate Figures 3, 5, 8 and 16.
package quad

import (
	"fmt"
	"math"

	"pipemare/internal/poly"
)

// CharPoly returns the characteristic polynomial of plain fixed-delay
// asynchronous SGD on the quadratic model (eq. (4)):
//
//	p(ω) = ω^{τ+1} − ω^τ + αλ.
func CharPoly(tau int, alpha, lambda float64) poly.Poly {
	if tau < 0 {
		panic(fmt.Sprintf("quad: negative delay %d", tau))
	}
	p := make(poly.Poly, tau+2)
	p[0] = complex(alpha*lambda, 0)
	p[tau] += complex(-1, 0)
	p[tau+1] += complex(1, 0)
	return p
}

// CharPolyMomentum returns the characteristic polynomial of fixed-delay
// asynchronous SGD with heavy-ball momentum β (eq. (13)):
//
//	p(ω) = ω^{τ+1} − (1+β)ω^τ + βω^{τ−1} + αλ.
//
// τ must be at least 1 so the ω^{τ−1} term is well-formed.
func CharPolyMomentum(tau int, alpha, lambda, beta float64) poly.Poly {
	if tau < 1 {
		panic(fmt.Sprintf("quad: momentum characteristic polynomial needs tau >= 1, got %d", tau))
	}
	p := make(poly.Poly, tau+2)
	p[0] = complex(alpha*lambda, 0)
	p[tau-1] += complex(beta, 0)
	p[tau] += complex(-(1 + beta), 0)
	p[tau+1] += complex(1, 0)
	return p
}

// CharPolyDiscrepancy returns the characteristic polynomial with
// forward-backward delay discrepancy (eq. (6)):
//
//	p(ω) = ω^{τfwd}(ω − 1) − αΔ·ω^{τfwd−τbkwd} + α(λ+Δ).
func CharPolyDiscrepancy(tauFwd, tauBkwd int, alpha, lambda, delta float64) poly.Poly {
	if tauFwd < tauBkwd || tauBkwd < 0 {
		panic(fmt.Sprintf("quad: need tauFwd >= tauBkwd >= 0, got %d, %d", tauFwd, tauBkwd))
	}
	p := make(poly.Poly, tauFwd+2)
	p[tauFwd+1] += complex(1, 0)
	p[tauFwd] += complex(-1, 0)
	p[tauFwd-tauBkwd] += complex(-alpha*delta, 0)
	p[0] += complex(alpha*(lambda+delta), 0)
	return p
}

// CharPolyT2 returns the characteristic polynomial of the T2
// discrepancy-corrected update on the quadratic model (Appendix B.5):
//
//	p(ω) = (ω−1)(ω−γ)ω^{τfwd}
//	     + α(λ+Δ)(ω−γ)
//	     − αΔ·ω^{τfwd−τbkwd}(ω−γ)
//	     + αΔ·ω^{τfwd−τbkwd}(τfwd−τbkwd)(1−γ)(ω−1).
func CharPolyT2(tauFwd, tauBkwd int, alpha, lambda, delta, gamma float64) poly.Poly {
	if tauFwd < tauBkwd || tauBkwd < 0 {
		panic(fmt.Sprintf("quad: need tauFwd >= tauBkwd >= 0, got %d, %d", tauFwd, tauBkwd))
	}
	g := complex(gamma, 0)
	omegaMinus1 := poly.New(-1, 1)
	omegaMinusG := poly.New(-g, 1)
	d := tauFwd - tauBkwd

	p := omegaMinus1.Mul(omegaMinusG).MulXn(tauFwd)
	p = p.Add(omegaMinusG.Scale(complex(alpha*(lambda+delta), 0)))
	p = p.Add(omegaMinusG.Scale(complex(-alpha*delta, 0)).MulXn(d))
	p = p.Add(omegaMinus1.Scale(complex(alpha*delta*float64(d)*(1-gamma), 0)).MulXn(d))
	return p
}

// CharPolyRecompute returns the characteristic polynomial of the T2-corrected
// update with a recompute delay path (Appendix D):
//
//	p(ω) = (ω−1)(ω−γ)ω^{τfwd}
//	     + α(λ+Δ)(ω−γ)
//	     − α(Δ−Φ)ω^{τfwd−τbkwd}(ω−γ)
//	     + α(Δ−Φ)ω^{τfwd−τbkwd}(τfwd−τbkwd)(1−γ)(ω−1)
//	     − αΦ·ω^{τfwd−τrecomp}(ω−γ)
//	     + αΦ·ω^{τfwd−τrecomp}(τfwd−τrecomp)(1−γ)(ω−1).
//
// Setting gamma = 0 and dropping the correction terms' effect (1−γ)=1
// recovers the uncorrected three-delay model when the correction
// coefficients vanish, i.e. use NoCorrection below for the raw system.
func CharPolyRecompute(tauFwd, tauBkwd, tauRecomp int, alpha, lambda, delta, phi, gamma float64) poly.Poly {
	if !(tauFwd >= tauRecomp && tauRecomp >= tauBkwd && tauBkwd >= 0) {
		panic(fmt.Sprintf("quad: need tauFwd >= tauRecomp >= tauBkwd >= 0, got %d, %d, %d", tauFwd, tauRecomp, tauBkwd))
	}
	g := complex(gamma, 0)
	omegaMinus1 := poly.New(-1, 1)
	omegaMinusG := poly.New(-g, 1)
	db := tauFwd - tauBkwd
	dr := tauFwd - tauRecomp

	p := omegaMinus1.Mul(omegaMinusG).MulXn(tauFwd)
	p = p.Add(omegaMinusG.Scale(complex(alpha*(lambda+delta), 0)))
	p = p.Add(omegaMinusG.Scale(complex(-alpha*(delta-phi), 0)).MulXn(db))
	p = p.Add(omegaMinus1.Scale(complex(alpha*(delta-phi)*float64(db)*(1-gamma), 0)).MulXn(db))
	p = p.Add(omegaMinusG.Scale(complex(-alpha*phi, 0)).MulXn(dr))
	p = p.Add(omegaMinus1.Scale(complex(alpha*phi*float64(dr)*(1-gamma), 0)).MulXn(dr))
	return p
}

// CharPolyRecomputeNoCorrection returns the characteristic polynomial of the
// raw (uncorrected) three-delay model of Appendix D:
//
//	w_{t+1} = w_t − α[(λ+Δ)w_{t−τf} − (Δ−Φ)w_{t−τb} − Φ·w_{t−τr}] + αη_t.
func CharPolyRecomputeNoCorrection(tauFwd, tauBkwd, tauRecomp int, alpha, lambda, delta, phi float64) poly.Poly {
	if !(tauFwd >= tauRecomp && tauRecomp >= tauBkwd && tauBkwd >= 0) {
		panic(fmt.Sprintf("quad: need tauFwd >= tauRecomp >= tauBkwd >= 0, got %d, %d, %d", tauFwd, tauRecomp, tauBkwd))
	}
	p := make(poly.Poly, tauFwd+2)
	p[tauFwd+1] += complex(1, 0)
	p[tauFwd] += complex(-1, 0)
	p[0] += complex(alpha*(lambda+delta), 0)
	p[tauFwd-tauBkwd] += complex(-alpha*(delta-phi), 0)
	p[tauFwd-tauRecomp] += complex(-alpha*phi, 0)
	return p
}

// Lemma1Bound returns the largest stable step size from Lemma 1:
// α* = (2/λ)·sin(π/(4τ+2)). For τ = 0 this is 2/λ, the classical
// gradient-descent stability threshold on curvature λ.
func Lemma1Bound(tau int, lambda float64) float64 {
	return 2 / lambda * math.Sin(math.Pi/float64(4*tau+2))
}

// Lemma1DoubleRoot returns the step size at which the characteristic
// polynomial (4) has a real double root, together with the root location
// ω = τ/(τ+1). Derived in the proof of Lemma 1:
// α = (1/(λ(τ+1)))·(τ/(τ+1))^τ.
func Lemma1DoubleRoot(tau int, lambda float64) (alpha, omega float64) {
	t := float64(tau)
	omega = t / (t + 1)
	alpha = math.Pow(omega, t) / (lambda * (t + 1))
	return alpha, omega
}

// Lemma2Bound returns the Lemma 2 upper bound on the first unstable step
// size under delay discrepancy:
// min( 2/(Δ(τfwd−τbkwd)), (2/λ)·sin(π/(4τfwd+2)) ).
func Lemma2Bound(tauFwd, tauBkwd int, lambda, delta float64) float64 {
	l1 := Lemma1Bound(tauFwd, lambda)
	if delta <= 0 || tauFwd == tauBkwd {
		return l1
	}
	disc := 2 / (delta * float64(tauFwd-tauBkwd))
	return math.Min(disc, l1)
}

// Lemma3Bound returns the Lemma 3 bound for SGD with momentum: for any
// β ∈ (0,1] there is an unstable α with α ≤ (4/λ)·sin(π/(4τ+2)).
func Lemma3Bound(tau int, lambda float64) float64 {
	return 4 / lambda * math.Sin(math.Pi/float64(4*tau+2))
}

// GammaFromD converts the tunable global decay hyperparameter D into the
// per-stage accumulator decay rate γ = D^{1/(τfwd−τbkwd)} (§3.2).
// When the two delays are equal there is nothing to correct and γ is 0.
func GammaFromD(d float64, tauFwd, tauBkwd float64) float64 {
	if tauFwd <= tauBkwd || d <= 0 {
		return 0
	}
	return math.Pow(d, 1/(tauFwd-tauBkwd))
}

// GammaTaylor returns the γ for which the second-order Taylor expansion of
// the T2 characteristic polynomial around ω = 1 is independent of the
// discrepancy-sensitivity Δ (Appendix B.5, eq. (15)):
// γ = 1 − 2/(τfwd − τbkwd + 1).
func GammaTaylor(tauFwd, tauBkwd int) float64 {
	return 1 - 2/float64(tauFwd-tauBkwd+1)
}

// DStar is the asymptotic value of the decay hyperparameter implied by
// GammaTaylor for large delays: D = γ^{τf−τb} → e⁻² ≈ 0.135.
const DStar = 0.1353352832366127 // exp(-2)

// MaxStableAlpha returns the largest step size α for which the polynomial
// produced by build(α) has all roots within the unit disk, found by
// geometric bracketing followed by bisection. The search looks in
// (0, hi]; tol controls the bisection width.
func MaxStableAlpha(build func(alpha float64) poly.Poly, hi, tol float64) (float64, error) {
	const eps = 1e-9
	stableAt := func(a float64) (bool, error) {
		return build(a).Stable(eps)
	}
	lo := hi * 1e-8
	ok, err := stableAt(lo)
	if err != nil {
		return math.NaN(), err
	}
	if !ok {
		return 0, nil
	}
	// Grow lo geometrically until unstable or we pass hi.
	upper := hi
	a := lo
	for a < hi {
		next := a * 2
		if next > hi {
			next = hi
		}
		ok, err := stableAt(next)
		if err != nil {
			return math.NaN(), err
		}
		if !ok {
			upper = next
			break
		}
		a = next
		if a == hi {
			return hi, nil // stable throughout the search range
		}
	}
	loB, hiB := a, upper
	for hiB-loB > tol*(1+loB) {
		mid := 0.5 * (loB + hiB)
		ok, err := stableAt(mid)
		if err != nil {
			return math.NaN(), err
		}
		if ok {
			loB = mid
		} else {
			hiB = mid
		}
	}
	return loB, nil
}
