package quad

import (
	"fmt"
	"math"
	"math/rand"
)

// Config describes one fixed-delay asynchronous SGD run on the
// one-dimensional quadratic f(w) = (λ/2)w².
type Config struct {
	Lambda    float64 // curvature λ > 0
	Alpha     float64 // step size α
	TauFwd    int     // forward delay (τ in the zero-discrepancy model)
	TauBkwd   int     // backward delay; ignored when Delta == 0
	TauRecomp int     // recompute delay; used only when Phi != 0
	Delta     float64 // gradient sensitivity to fwd/bkwd discrepancy (Δ)
	Phi       float64 // gradient sensitivity to recompute discrepancy (Φ)
	Beta      float64 // heavy-ball momentum (0 = plain SGD)
	NoiseStd  float64 // std of gradient noise η_t ~ N(0, NoiseStd²)
	W0        float64 // initial weight value
	Steps     int     // number of iterations
	Seed      int64   // RNG seed for the noise sequence

	// T2 enables the discrepancy correction with decay hyperparameter D
	// (γ = D^{1/(τfwd−τbkwd)}).
	T2 bool
	D  float64

	// LossCap, if positive, truncates the run once the loss exceeds it
	// (the trajectory is still padded to Steps with +Inf for plotting).
	LossCap float64
}

// Result is the trajectory of a simulation run.
type Result struct {
	Loss     []float64 // loss (λ/2)w_t² at every step
	W        []float64 // the weight value at every step
	Diverged bool      // true if the loss exceeded LossCap or became non-finite
}

// FinalLoss returns the last finite loss value of the run, or +Inf if the
// trajectory diverged immediately.
func (r *Result) FinalLoss() float64 {
	for i := len(r.Loss) - 1; i >= 0; i-- {
		if !math.IsInf(r.Loss[i], 0) && !math.IsNaN(r.Loss[i]) {
			return r.Loss[i]
		}
	}
	return math.Inf(1)
}

// Simulate runs fixed-delay asynchronous SGD on the quadratic model with
// the exact update equations from §3.1–§3.2 and Appendix D:
//
//	∇f_t = (λ+Δ)·u_fwd − (Δ−Φ)·u_bkwd − Φ·u_recomp − η_t
//	v_{t+1} = β·v_t − α·∇f_t          (v ≡ 0 when β = 0)
//	w_{t+1} = w_t + v_{t+1}
//
// with u_fwd = w_{t−τfwd}, u_bkwd = w_{t−τbkwd} (optionally T2-corrected to
// w_{t−τbkwd} − (τfwd−τbkwd)·δ_t), u_recomp likewise. Weights with negative
// index equal W0.
func Simulate(cfg Config) *Result {
	if cfg.Steps <= 0 {
		panic("quad: Steps must be positive")
	}
	if cfg.TauFwd < cfg.TauBkwd {
		panic(fmt.Sprintf("quad: TauFwd (%d) < TauBkwd (%d)", cfg.TauFwd, cfg.TauBkwd))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hist := cfg.TauFwd + 1
	if hist < 2 {
		hist = 2
	}
	// Ring buffer of past weights; index t mod hist.
	w := make([]float64, hist)
	for i := range w {
		w[i] = cfg.W0
	}
	res := &Result{Loss: make([]float64, cfg.Steps), W: make([]float64, cfg.Steps)}
	lossCap := cfg.LossCap
	if lossCap <= 0 {
		lossCap = math.Inf(1)
	}
	gamma := GammaFromD(cfg.D, float64(cfg.TauFwd), float64(cfg.TauBkwd))
	// δ history ring: the backward pass physically happens τbkwd steps
	// before the update indexed t, so the correction reads δ_{t−τbkwd}
	// (and δ_{t−τrecomp} for the recompute path) — this matches the
	// companion matrix of Appendix B.5 exactly.
	dHist := make([]float64, hist)
	cur := cfg.W0
	vel := 0.0
	at := func(t int) float64 {
		if t < 0 {
			return cfg.W0
		}
		return w[t%hist]
	}
	dAt := func(t int) float64 {
		if t < 0 {
			return 0
		}
		return dHist[t%hist]
	}
	diverged := false
	for t := 0; t < cfg.Steps; t++ {
		res.W[t] = cur
		loss := 0.5 * cfg.Lambda * cur * cur
		res.Loss[t] = loss
		if diverged {
			res.Loss[t] = math.Inf(1)
			continue
		}
		if math.IsNaN(loss) || loss > lossCap {
			diverged = true
			res.Diverged = true
			res.Loss[t] = math.Inf(1)
			continue
		}
		uFwd := at(t - cfg.TauFwd)
		uBkwd := at(t - cfg.TauBkwd)
		uRecomp := at(t - cfg.TauRecomp)
		if cfg.T2 {
			uBkwd -= float64(cfg.TauFwd-cfg.TauBkwd) * dAt(t-cfg.TauBkwd)
			uRecomp -= float64(cfg.TauFwd-cfg.TauRecomp) * dAt(t-cfg.TauRecomp)
		}
		eta := 0.0
		if cfg.NoiseStd > 0 {
			eta = rng.NormFloat64() * cfg.NoiseStd
		}
		grad := (cfg.Lambda+cfg.Delta)*uFwd - (cfg.Delta-cfg.Phi)*uBkwd - cfg.Phi*uRecomp - eta
		vel = cfg.Beta*vel - cfg.Alpha*grad
		next := cur + vel
		if cfg.T2 {
			dHist[(t+1)%hist] = gamma*dAt(t) + (1-gamma)*(next-cur)
		}
		w[(t+1)%hist] = next
		cur = next
	}
	return res
}

// LinearRegression is a multivariate quadratic problem
// f(w) = (1/2n)·‖Xw − y‖² used for the Figure 3(b) heatmap; its largest
// curvature λmax = σmax(XᵀX/n) drives the Lemma 1 bound overlay.
type LinearRegression struct {
	X [][]float64 // n×d design matrix
	Y []float64   // n targets
}

// Dim returns the feature dimension d.
func (lr *LinearRegression) Dim() int {
	if len(lr.X) == 0 {
		return 0
	}
	return len(lr.X[0])
}

// Grad computes the full-batch gradient of f at w.
func (lr *LinearRegression) Grad(w []float64) []float64 {
	n, d := len(lr.X), lr.Dim()
	g := make([]float64, d)
	for i := 0; i < n; i++ {
		r := -lr.Y[i]
		for j := 0; j < d; j++ {
			r += lr.X[i][j] * w[j]
		}
		for j := 0; j < d; j++ {
			g[j] += r * lr.X[i][j] / float64(n)
		}
	}
	return g
}

// Loss computes f(w) = (1/2n)·‖Xw − y‖².
func (lr *LinearRegression) Loss(w []float64) float64 {
	n := len(lr.X)
	s := 0.0
	for i := 0; i < n; i++ {
		r := -lr.Y[i]
		for j := range w {
			r += lr.X[i][j] * w[j]
		}
		s += r * r
	}
	return s / (2 * float64(n))
}

// MaxCurvature returns λmax of the Hessian XᵀX/n via power iteration.
func (lr *LinearRegression) MaxCurvature() float64 {
	d := lr.Dim()
	n := len(lr.X)
	// Build H = XᵀX/n once (d is small: 12 for cpusmall).
	h := make([][]float64, d)
	for i := range h {
		h[i] = make([]float64, d)
	}
	for i := 0; i < n; i++ {
		for a := 0; a < d; a++ {
			xa := lr.X[i][a]
			if xa == 0 {
				continue
			}
			for b := 0; b < d; b++ {
				h[a][b] += xa * lr.X[i][b] / float64(n)
			}
		}
	}
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	lam := 0.0
	for it := 0; it < 500; it++ {
		nv := make([]float64, d)
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				nv[a] += h[a][b] * v[b]
			}
		}
		norm := 0.0
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range nv {
			nv[i] /= norm
		}
		lam = norm
		v = nv
	}
	return lam
}

// DelayedSGD runs fixed-delay full-batch gradient descent
// w_{t+1} = w_t − α∇f(w_{t−τ}) + noise and returns the final loss
// (∞ if the trajectory exceeded lossCap). This regenerates one cell of
// the Figure 3(b) heatmap.
func (lr *LinearRegression) DelayedSGD(tau int, alpha float64, steps int, noiseStd float64, lossCap float64, seed int64) float64 {
	d := lr.Dim()
	rng := rand.New(rand.NewSource(seed))
	hist := tau + 1
	w := make([][]float64, hist)
	for i := range w {
		w[i] = make([]float64, d)
	}
	cur := make([]float64, d)
	for t := 0; t < steps; t++ {
		loss := lr.Loss(cur)
		if math.IsNaN(loss) || loss > lossCap {
			return math.Inf(1)
		}
		src := w[((t-tau)%hist+hist)%hist]
		if t-tau < 0 {
			src = w[0] // initial weights
		}
		g := lr.Grad(src)
		for j := 0; j < d; j++ {
			cur[j] -= alpha * g[j]
			if noiseStd > 0 {
				cur[j] += alpha * noiseStd * rng.NormFloat64()
			}
		}
		next := make([]float64, d)
		copy(next, cur)
		w[(t+1)%hist] = next
	}
	loss := lr.Loss(cur)
	if math.IsNaN(loss) || loss > lossCap {
		return math.Inf(1)
	}
	return loss
}
