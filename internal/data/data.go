// Package data generates the synthetic datasets that stand in for the
// paper's CIFAR10/ImageNet, IWSLT14/WMT17 and cpusmall workloads (see
// DESIGN.md §1 for the substitution rationale). All generators are
// deterministic given their seed.
package data

import (
	"math"
	"math/rand"

	"pipemare/internal/tensor"
)

// Images is a synthetic image-classification dataset: each class has a
// fixed random template and samples are template + Gaussian noise, which
// gives a task that is learnable but not trivially separable at high noise.
type Images struct {
	Classes   int
	C, H, W   int
	TrainX    *tensor.Tensor // (Ntrain, C, H, W)
	TrainY    []int
	TestX     *tensor.Tensor
	TestY     []int
	templates *tensor.Tensor
}

// ImagesConfig configures the synthetic image generator.
type ImagesConfig struct {
	Classes int
	C, H, W int
	Train   int
	Test    int
	Noise   float64 // per-pixel noise std relative to unit templates
	// LabelFlip is the fraction of labels (train and test) replaced by a
	// uniformly random class, capping attainable accuracy near
	// 100·(1−LabelFlip·(Classes−1)/Classes) percent.
	LabelFlip float64
	Seed      int64
}

// NewImages generates a dataset.
func NewImages(cfg ImagesConfig) *Images {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Images{Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W}
	px := cfg.C * cfg.H * cfg.W
	d.templates = tensor.New(cfg.Classes, px)
	for i := range d.templates.Data {
		d.templates.Data[i] = rng.NormFloat64()
	}
	gen := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, cfg.C, cfg.H, cfg.W)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(cfg.Classes)
			y[i] = c
			for j := 0; j < px; j++ {
				x.Data[i*px+j] = d.templates.Data[c*px+j] + cfg.Noise*rng.NormFloat64()
			}
			if cfg.LabelFlip > 0 && rng.Float64() < cfg.LabelFlip {
				y[i] = rng.Intn(cfg.Classes)
			}
		}
		return x, y
	}
	d.TrainX, d.TrainY = gen(cfg.Train)
	d.TestX, d.TestY = gen(cfg.Test)
	return d
}

// FlatTrain returns the training images flattened to (N, C*H*W) feature
// vectors (shared data, no copy), for MLP models.
func (d *Images) FlatTrain() *tensor.Tensor {
	n := d.TrainX.Shape[0]
	return d.TrainX.Reshape(n, d.C*d.H*d.W)
}

// FlatTest returns the test images flattened to (N, C*H*W).
func (d *Images) FlatTest() *tensor.Tensor {
	n := d.TestX.Shape[0]
	return d.TestX.Reshape(n, d.C*d.H*d.W)
}

// Translation is a synthetic sequence-to-sequence task standing in for
// IWSLT14/WMT17: the target is the reversed source with a per-sentence
// cyclic token shift keyed by the first source token. A model must learn
// both the reversal (alignment) and the content-dependent substitution, so
// copying fails and attention is genuinely needed.
type Translation struct {
	Vocab  int // token ids 0..Vocab-1; 0=PAD, 1=BOS, 2=EOS, content ≥ 3
	SrcLen int // fixed source length
	TgtLen int // fixed target length = SrcLen + 1 (content + EOS)

	TrainSrc *tensor.Tensor // (Ntrain, SrcLen) token ids
	TrainDst *tensor.Tensor // (Ntrain, TgtLen) decoder input: BOS + content
	TrainLbl [][]int        // per-sample labels: content + EOS
	TestSrc  *tensor.Tensor
	TestDst  *tensor.Tensor
	TestLbl  [][]int
}

// Specials.
const (
	PAD = 0
	BOS = 1
	EOS = 2
)

// TranslationConfig configures the synthetic translation generator.
type TranslationConfig struct {
	Vocab  int
	SrcLen int
	Train  int
	Test   int
	Seed   int64
}

// NewTranslation generates a dataset.
func NewTranslation(cfg TranslationConfig) *Translation {
	if cfg.Vocab < 6 {
		panic("data: translation vocab must be at least 6")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Translation{Vocab: cfg.Vocab, SrcLen: cfg.SrcLen, TgtLen: cfg.SrcLen + 1}
	gen := func(n int) (*tensor.Tensor, *tensor.Tensor, [][]int) {
		src := tensor.New(n, cfg.SrcLen)
		dst := tensor.New(n, d.TgtLen)
		lbl := make([][]int, n)
		content := cfg.Vocab - 3
		for i := 0; i < n; i++ {
			toks := make([]int, cfg.SrcLen)
			for j := range toks {
				toks[j] = 3 + rng.Intn(content)
				src.Data[i*cfg.SrcLen+j] = float64(toks[j])
			}
			shift := toks[0] - 3
			out := make([]int, cfg.SrcLen)
			for j := range out {
				s := toks[cfg.SrcLen-1-j]
				out[j] = 3 + ((s-3)+shift)%content
			}
			dst.Data[i*d.TgtLen] = BOS
			lbl[i] = make([]int, d.TgtLen)
			for j := 0; j < cfg.SrcLen; j++ {
				dst.Data[i*d.TgtLen+j+1] = float64(out[j])
				lbl[i][j] = out[j]
			}
			lbl[i][cfg.SrcLen] = EOS
		}
		return src, dst, lbl
	}
	d.TrainSrc, d.TrainDst, d.TrainLbl = gen(cfg.Train)
	d.TestSrc, d.TestDst, d.TestLbl = gen(cfg.Test)
	return d
}

// Regression is a synthetic linear-regression dataset standing in for the
// cpusmall task of Figure 3(b): features with a controlled curvature
// spread and targets from a fixed linear model plus noise.
type Regression struct {
	X [][]float64
	Y []float64
}

// NewRegression generates n samples in d dimensions. scales controls the
// per-coordinate feature standard deviations (curvature spectrum); when
// nil, a geometric spread from 1 down to 0.1 is used, giving a
// cpusmall-like conditioning.
func NewRegression(n, d int, scales []float64, noise float64, seed int64) *Regression {
	rng := rand.New(rand.NewSource(seed))
	if scales == nil {
		scales = make([]float64, d)
		for j := range scales {
			scales[j] = 1.0
			if d > 1 {
				frac := float64(j) / float64(d-1)
				scales[j] = math.Pow(0.1, frac)
			}
		}
	}
	w := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	r := &Regression{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		r.X[i] = make([]float64, d)
		t := 0.0
		for j := 0; j < d; j++ {
			r.X[i][j] = rng.NormFloat64() * scales[j]
			t += r.X[i][j] * w[j]
		}
		r.Y[i] = t + noise*rng.NormFloat64()
	}
	return r
}

// Batches splits n indices into batches of the given size, optionally
// shuffled with the provided RNG (nil for sequential order). The final
// short batch is included.
func Batches(n, size int, rng *rand.Rand) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	var out [][]int
	for s := 0; s < n; s += size {
		e := s + size
		if e > n {
			e = n
		}
		out = append(out, idx[s:e])
	}
	return out
}

// Microbatches splits a batch into ⌈len/size⌉ microbatches of at most size
// elements each.
func Microbatches(batch []int, size int) [][]int {
	var out [][]int
	for s := 0; s < len(batch); s += size {
		e := s + size
		if e > len(batch) {
			e = len(batch)
		}
		out = append(out, batch[s:e])
	}
	return out
}
