package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImagesShapesAndDeterminism(t *testing.T) {
	cfg := ImagesConfig{Classes: 4, C: 3, H: 4, W: 4, Train: 20, Test: 10, Noise: 0.5, Seed: 1}
	a := NewImages(cfg)
	b := NewImages(cfg)
	if a.TrainX.Shape[0] != 20 || a.TrainX.Shape[1] != 3 {
		t.Fatalf("train shape %v", a.TrainX.Shape)
	}
	for i := range a.TrainX.Data {
		if a.TrainX.Data[i] != b.TrainX.Data[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	for _, y := range a.TrainY {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
	}
	flat := a.FlatTrain()
	if flat.Shape[1] != 3*4*4 {
		t.Fatalf("flat shape %v", flat.Shape)
	}
	// Flat view shares data.
	flat.Data[0] = 99
	if a.TrainX.Data[0] != 99 {
		t.Fatal("FlatTrain must be a view")
	}
}

func TestImagesSeparableAtLowNoise(t *testing.T) {
	// Nearest-template classification should be nearly perfect at low noise:
	// sanity that the task is learnable.
	d := NewImages(ImagesConfig{Classes: 5, C: 1, H: 4, W: 4, Train: 50, Test: 50, Noise: 0.1, Seed: 2})
	px := 16
	correct := 0
	for i := 0; i < 50; i++ {
		best, bi := 1e18, -1
		for c := 0; c < 5; c++ {
			s := 0.0
			for j := 0; j < px; j++ {
				diff := d.TestX.Data[i*px+j] - d.templates.Data[c*px+j]
				s += diff * diff
			}
			if s < best {
				best, bi = s, c
			}
		}
		if bi == d.TestY[i] {
			correct++
		}
	}
	if correct < 48 {
		t.Fatalf("nearest-template accuracy %d/50, task not separable", correct)
	}
}

func TestTranslationStructure(t *testing.T) {
	d := NewTranslation(TranslationConfig{Vocab: 12, SrcLen: 6, Train: 30, Test: 10, Seed: 3})
	if d.TgtLen != 7 {
		t.Fatalf("TgtLen = %d, want 7", d.TgtLen)
	}
	for i := 0; i < 30; i++ {
		// Decoder input starts with BOS.
		if int(d.TrainDst.At(i, 0)) != BOS {
			t.Fatal("decoder input must start with BOS")
		}
		// Labels end with EOS.
		if d.TrainLbl[i][6] != EOS {
			t.Fatal("labels must end with EOS")
		}
		// Teacher forcing alignment: dst[j+1] == lbl[j] for content tokens.
		for j := 0; j < 6; j++ {
			if int(d.TrainDst.At(i, j+1)) != d.TrainLbl[i][j] {
				t.Fatal("decoder input must be shifted labels")
			}
		}
	}
}

func TestTranslationTransformIsDeterministicFunctionOfSource(t *testing.T) {
	// The mapping src → target must be a pure function: rebuild the
	// expected output from the documented rule.
	d := NewTranslation(TranslationConfig{Vocab: 10, SrcLen: 5, Train: 20, Test: 5, Seed: 4})
	content := 10 - 3
	for i := 0; i < 20; i++ {
		src := make([]int, 5)
		for j := range src {
			src[j] = int(d.TrainSrc.At(i, j))
		}
		shift := src[0] - 3
		for j := 0; j < 5; j++ {
			want := 3 + ((src[5-1-j]-3)+shift)%content
			if d.TrainLbl[i][j] != want {
				t.Fatalf("sample %d pos %d: label %d, want %d", i, j, d.TrainLbl[i][j], want)
			}
		}
	}
}

func TestTranslationVocabTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTranslation(TranslationConfig{Vocab: 4, SrcLen: 3, Train: 1, Test: 1})
}

func TestRegressionShapes(t *testing.T) {
	r := NewRegression(40, 12, nil, 0.1, 5)
	if len(r.X) != 40 || len(r.X[0]) != 12 || len(r.Y) != 40 {
		t.Fatal("regression shapes wrong")
	}
	// Later coordinates must have smaller scale (conditioning spread).
	var v0, v11 float64
	for i := range r.X {
		v0 += r.X[i][0] * r.X[i][0]
		v11 += r.X[i][11] * r.X[i][11]
	}
	if v0 <= v11 {
		t.Fatal("coordinate scales should decrease")
	}
}

func TestBatchesCoverAllIndicesOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		size := 1 + rng.Intn(20)
		bs := Batches(n, size, rng)
		seen := make(map[int]bool)
		for _, b := range bs {
			if len(b) > size {
				return false
			}
			for _, i := range b {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchesSequentialWithoutRNG(t *testing.T) {
	bs := Batches(5, 2, nil)
	if len(bs) != 3 || bs[0][0] != 0 || bs[2][0] != 4 {
		t.Fatalf("sequential batches %v", bs)
	}
}

func TestMicrobatches(t *testing.T) {
	mb := Microbatches([]int{5, 6, 7, 8, 9}, 2)
	if len(mb) != 3 || len(mb[2]) != 1 || mb[2][0] != 9 {
		t.Fatalf("microbatches %v", mb)
	}
}
