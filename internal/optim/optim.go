// Package optim provides the optimizers and learning-rate schedules used in
// the PipeMare reproduction: SGD with momentum, AdamW, step-decay and
// linear-warmup/inverse-sqrt schedules, and the paper's Technique 1
// learning-rate rescheduler α_{k,i} = α_base(k) / τ_i^{p_k}.
package optim

import (
	"fmt"
	"math"

	"pipemare/internal/nn"
	"pipemare/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step takes
// one learning rate per parameter so that per-stage rescheduling (T1) can
// be applied; use UniformLR for a shared rate.
//
// The update is shardable: Advance moves the optimizer's step clock (Adam
// bias correction) exactly once per update, after which StepRange applies
// the update to any contiguous parameter range. Ranges of one update must
// be disjoint; distinct ranges may then run concurrently (each parameter's
// state is touched only by its own range), which is how the engines commit
// the step stage-parallel. Step ≡ Advance + StepRange over everything.
type Optimizer interface {
	Step(lrs []float64)
	// Advance moves the step clock for the next update. It must
	// happen-before every StepRange of that update.
	Advance()
	// StepRange applies the just-advanced update to params [lo, hi);
	// lrs[i] is the learning rate of parameter lo+i.
	StepRange(lo, hi int, lrs []float64)
	Params() []*nn.Param
	// StateCopies reports how many weight-sized buffers the optimizer
	// holds per parameter including the master weights and the gradient
	// (3 for momentum-SGD, 4 for Adam), used by the memory model.
	StateCopies() int
}

// UniformLR returns a slice of n copies of lr.
func UniformLR(lr float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lr
	}
	return out
}

// Shard is a contiguous range [Lo, Hi) of optimizer parameter indices. A
// sharded optimizer holds moment state (SGD velocity, Adam moments) only
// for its shard — the ZeRO / PipeDream-2BW weight-sharded update: each
// data-parallel replica owns the optimizer state of its shard and steps
// only that range, so no replica holds the full redundant state. The zero
// Shard is empty (a stateless placeholder for replicas that own nothing).
type Shard struct {
	Lo, Hi int
}

// FullShard covers all n parameters.
func FullShard(n int) Shard { return Shard{0, n} }

// Len returns the number of parameters in the shard.
func (s Shard) Len() int {
	if s.Hi <= s.Lo {
		return 0
	}
	return s.Hi - s.Lo
}

// Contains reports whether [lo, hi) lies within the shard.
func (s Shard) Contains(lo, hi int) bool { return s.Lo <= lo && hi <= s.Hi }

// ShardCloner is implemented by optimizers whose state can be sharded
// across data-parallel replicas. CloneShard builds an optimizer of the
// same type and hyperparameters over params — a replica's parameter
// copies, in the same order and shapes as Params() — holding moment state
// only for sh; its StepRange may only be called within sh. StateRange
// reports the shard an optimizer holds state for (the full range for the
// ordinary constructors).
type ShardCloner interface {
	Optimizer
	CloneShard(params []*nn.Param, sh Shard) Optimizer
	StateRange() Shard
}

// Stateful is implemented by optimizers whose moment state can be read
// and written tensor-by-tensor — the fault-tolerance and checkpoint
// surface. MomentTensors returns the live moment tensors of one
// parameter (it must lie within StateRange), in a fixed per-optimizer
// order; MomentCount is that order's length. Clock/SetClock expose the
// step clock Advance moves (0 and a no-op for clockless optimizers), so
// a restored optimizer resumes with bit-identical bias corrections.
type Stateful interface {
	Optimizer
	MomentTensors(i int) []*tensor.Tensor
	MomentCount() int
	Clock() int
	SetClock(t int)
}

// checkRange panics when a StepRange call leaves the optimizer's state
// shard or disagrees with its learning-rate count.
func checkRange(sh Shard, lo, hi, nLRs int) {
	if !sh.Contains(lo, hi) {
		panic(fmt.Sprintf("optim: param range [%d, %d) outside the optimizer's state shard [%d, %d)", lo, hi, sh.Lo, sh.Hi))
	}
	if nLRs != hi-lo {
		panic(fmt.Sprintf("optim: %d learning rates for param range [%d, %d)", nLRs, lo, hi))
	}
}

// SGD is stochastic gradient descent with heavy-ball momentum and L2
// weight decay (decay added to the gradient, as in the paper's ResNet
// recipe).
type SGD struct {
	ps          []*nn.Param
	Momentum    float64
	WeightDecay float64
	shard       Shard
	vel         []*tensor.Tensor // velocity of params [shard.Lo, shard.Hi), indexed i−shard.Lo
}

// NewSGD returns an SGD optimizer over params, holding state for all of
// them.
func NewSGD(params []*nn.Param, momentum, weightDecay float64) *SGD {
	return NewSGDShard(params, momentum, weightDecay, FullShard(len(params)))
}

// NewSGDShard returns an SGD optimizer over params holding velocity state
// only for the parameters in sh (see Shard).
func NewSGDShard(params []*nn.Param, momentum, weightDecay float64, sh Shard) *SGD {
	s := &SGD{ps: params, Momentum: momentum, WeightDecay: weightDecay, shard: sh}
	s.vel = make([]*tensor.Tensor, sh.Len())
	for i := range s.vel {
		s.vel[i] = tensor.NewLike(params[sh.Lo+i].Data)
	}
	return s
}

// CloneShard builds an SGD sibling over a replica's parameter copies with
// state only for sh (ShardCloner).
func (s *SGD) CloneShard(params []*nn.Param, sh Shard) Optimizer {
	return NewSGDShard(params, s.Momentum, s.WeightDecay, sh)
}

// StateRange reports the parameter shard this optimizer holds state for.
func (s *SGD) StateRange() Shard { return s.shard }

// Step applies v ← βv − lr·(g + wd·w); w ← w + v for each parameter.
func (s *SGD) Step(lrs []float64) {
	if len(lrs) != len(s.ps) {
		panic(fmt.Sprintf("optim: %d learning rates for %d params", len(lrs), len(s.ps)))
	}
	s.Advance()
	s.StepRange(0, len(s.ps), lrs)
}

// Advance is a no-op: momentum SGD keeps no step clock.
func (s *SGD) Advance() {}

// StepRange applies the update to params [lo, hi), which must lie within
// the optimizer's state shard.
func (s *SGD) StepRange(lo, hi int, lrs []float64) {
	checkRange(s.shard, lo, hi, len(lrs))
	for i := lo; i < hi; i++ {
		p := s.ps[i]
		v := s.vel[i-s.shard.Lo]
		lr := lrs[i-lo]
		if p.Data.DType() == tensor.Float32 {
			sgdStep(tensor.F32(p.Data), tensor.F32(p.Grad), tensor.F32(v), s.Momentum, s.WeightDecay, lr)
		} else {
			sgdStep(tensor.F64(p.Data), tensor.F64(p.Grad), tensor.F64(v), s.Momentum, s.WeightDecay, lr)
		}
	}
}

// sgdStep applies the momentum update to one parameter. The arithmetic
// runs in float64 for both dtypes (hyperparameters stay exact); float32
// rounds once at each store.
func sgdStep[T tensor.Elem](w, g, v []T, momentum, wd, lr float64) {
	for j := range w {
		gr := float64(g[j]) + wd*float64(w[j])
		vj := momentum*float64(v[j]) - lr*gr
		v[j] = T(vj)
		w[j] = T(float64(w[j]) + vj)
	}
}

// Params returns the optimized parameters.
func (s *SGD) Params() []*nn.Param { return s.ps }

// MomentTensors returns parameter i's live velocity tensor (Stateful).
func (s *SGD) MomentTensors(i int) []*tensor.Tensor {
	if !s.shard.Contains(i, i+1) {
		panic(fmt.Sprintf("optim: moment tensors of param %d outside state shard [%d, %d)", i, s.shard.Lo, s.shard.Hi))
	}
	return []*tensor.Tensor{s.vel[i-s.shard.Lo]}
}

// MomentCount is 1: the velocity.
func (s *SGD) MomentCount() int { return 1 }

// Clock is 0: momentum SGD keeps no step clock.
func (s *SGD) Clock() int { return 0 }

// SetClock is a no-op (see Clock).
func (s *SGD) SetClock(int) {}

// StateCopies is 3: master weights, gradient, momentum (the paper's
// footnote 2 accounting, which makes T2's extra buffer a 33% increase).
func (s *SGD) StateCopies() int { return 3 }

// AdamW is Adam with decoupled weight decay, the optimizer the paper uses
// for the Transformer tasks.
type AdamW struct {
	ps          []*nn.Param
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	shard Shard
	m, v  []*tensor.Tensor // moments of params [shard.Lo, shard.Hi), indexed i−shard.Lo
	t     int
}

// NewAdamW returns an AdamW optimizer with the paper's Transformer betas
// (0.9, 0.98) unless overridden, holding state for all params.
func NewAdamW(params []*nn.Param, beta1, beta2, eps, weightDecay float64) *AdamW {
	return NewAdamWShard(params, beta1, beta2, eps, weightDecay, FullShard(len(params)))
}

// NewAdamWShard returns an AdamW optimizer over params holding moment
// state only for the parameters in sh (see Shard).
func NewAdamWShard(params []*nn.Param, beta1, beta2, eps, weightDecay float64, sh Shard) *AdamW {
	a := &AdamW{ps: params, Beta1: beta1, Beta2: beta2, Eps: eps, WeightDecay: weightDecay, shard: sh}
	a.m = make([]*tensor.Tensor, sh.Len())
	a.v = make([]*tensor.Tensor, sh.Len())
	for i := range a.m {
		a.m[i] = tensor.NewLike(params[sh.Lo+i].Data)
		a.v[i] = tensor.NewLike(params[sh.Lo+i].Data)
	}
	return a
}

// CloneShard builds an AdamW sibling over a replica's parameter copies
// with state only for sh (ShardCloner).
func (a *AdamW) CloneShard(params []*nn.Param, sh Shard) Optimizer {
	return NewAdamWShard(params, a.Beta1, a.Beta2, a.Eps, a.WeightDecay, sh)
}

// StateRange reports the parameter shard this optimizer holds state for.
func (a *AdamW) StateRange() Shard { return a.shard }

// Step applies one AdamW update with bias correction.
func (a *AdamW) Step(lrs []float64) {
	if len(lrs) != len(a.ps) {
		panic(fmt.Sprintf("optim: %d learning rates for %d params", len(lrs), len(a.ps)))
	}
	a.Advance()
	a.StepRange(0, len(a.ps), lrs)
}

// Advance moves the Adam step clock; the bias corrections of the next
// StepRange calls are computed from the advanced clock.
func (a *AdamW) Advance() { a.t++ }

// StepRange applies the update to params [lo, hi), which must lie within
// the optimizer's state shard. The bias-correction factors depend only on
// the (already advanced) step clock, so disjoint ranges of one update are
// independent.
func (a *AdamW) StepRange(lo, hi int, lrs []float64) {
	checkRange(a.shard, lo, hi, len(lrs))
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := lo; i < hi; i++ {
		p := a.ps[i]
		lr := lrs[i-lo]
		m, v := a.m[i-a.shard.Lo], a.v[i-a.shard.Lo]
		if p.Data.DType() == tensor.Float32 {
			adamwStep(tensor.F32(p.Data), tensor.F32(p.Grad), tensor.F32(m), tensor.F32(v),
				a.Beta1, a.Beta2, a.Eps, a.WeightDecay, lr, bc1, bc2)
		} else {
			adamwStep(tensor.F64(p.Data), tensor.F64(p.Grad), tensor.F64(m), tensor.F64(v),
				a.Beta1, a.Beta2, a.Eps, a.WeightDecay, lr, bc1, bc2)
		}
	}
}

// adamwStep applies the bias-corrected AdamW update to one parameter. The
// per-element arithmetic (including the square root) runs in float64 for
// both dtypes; float32 rounds once at each moment/weight store.
func adamwStep[T tensor.Elem](w, g, m, v []T, b1, b2, eps, wd, lr, bc1, bc2 float64) {
	for j := range w {
		gr := float64(g[j])
		mj := b1*float64(m[j]) + (1-b1)*gr
		vj := b2*float64(v[j]) + (1-b2)*gr*gr
		m[j] = T(mj)
		v[j] = T(vj)
		mh := mj / bc1
		vh := vj / bc2
		w[j] = T(float64(w[j]) - lr*(mh/(math.Sqrt(vh)+eps)+wd*float64(w[j])))
	}
}

// Params returns the optimized parameters.
func (a *AdamW) Params() []*nn.Param { return a.ps }

// MomentTensors returns parameter i's live first and second moment
// tensors, in that order (Stateful).
func (a *AdamW) MomentTensors(i int) []*tensor.Tensor {
	if !a.shard.Contains(i, i+1) {
		panic(fmt.Sprintf("optim: moment tensors of param %d outside state shard [%d, %d)", i, a.shard.Lo, a.shard.Hi))
	}
	return []*tensor.Tensor{a.m[i-a.shard.Lo], a.v[i-a.shard.Lo]}
}

// MomentCount is 2: first and second moments.
func (a *AdamW) MomentCount() int { return 2 }

// Clock returns the Adam step clock (bias-correction exponent).
func (a *AdamW) Clock() int { return a.t }

// SetClock restores the Adam step clock (checkpoint restore).
func (a *AdamW) SetClock(t int) { a.t = t }

// StateCopies is 4: master weights, gradient, first and second moments.
func (a *AdamW) StateCopies() int { return 4 }

// Schedule maps an optimizer step index (0-based) to a base learning rate.
type Schedule interface {
	LR(step int) float64
}

// Constant is a fixed learning rate.
type Constant float64

// LR returns the constant rate.
func (c Constant) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor every DropEvery steps,
// matching the paper's ResNet recipe (drop 10× every 80/30 epochs).
type StepDecay struct {
	Base      float64
	DropEvery int
	Factor    float64
}

// LR returns Base·Factor^⌊step/DropEvery⌋.
func (s StepDecay) LR(step int) float64 {
	if s.DropEvery <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.DropEvery))
}

// WarmupInvSqrt is the Transformer schedule: linear warmup from Init to
// Peak over Warmup steps, then inverse-square-root decay.
type WarmupInvSqrt struct {
	Peak   float64
	Init   float64
	Warmup int
}

// LR returns the warmup/decay rate for the given step.
func (w WarmupInvSqrt) LR(step int) float64 {
	if w.Warmup <= 0 {
		return w.Peak
	}
	if step < w.Warmup {
		frac := float64(step) / float64(w.Warmup)
		return w.Init + (w.Peak-w.Init)*frac
	}
	return w.Peak * math.Sqrt(float64(w.Warmup)/float64(step))
}

// T1 is the paper's Technique 1 learning-rate rescheduler: during the first
// K steps, divide the base rate for parameter i by its delay raised to the
// annealing power p_k = 1 − min(k/K, 1), so early steps see α/τ and the
// schedule relaxes back to the baseline by step K.
type T1 struct {
	Base Schedule
	Taus []float64 // per-parameter forward delay in minibatch units
	K    int       // annealing steps; ≤ 0 disables the rescheduling
}

// LRs returns the per-parameter learning rates at the given step.
func (t *T1) LRs(step int) []float64 {
	base := t.Base.LR(step)
	out := make([]float64, len(t.Taus))
	p := 0.0
	if t.K > 0 {
		p = 1 - math.Min(float64(step)/float64(t.K), 1)
	}
	for i, tau := range t.Taus {
		if tau < 1 {
			// τ < 1 means the delay is under one optimizer step; dividing
			// by τ^p would *increase* the rate, so clamp at the baseline.
			tau = 1
		}
		out[i] = base / math.Pow(tau, p)
	}
	return out
}

var (
	_ Stateful = (*SGD)(nil)
	_ Stateful = (*AdamW)(nil)
)
