// Package optim provides the optimizers and learning-rate schedules used in
// the PipeMare reproduction: SGD with momentum, AdamW, step-decay and
// linear-warmup/inverse-sqrt schedules, and the paper's Technique 1
// learning-rate rescheduler α_{k,i} = α_base(k) / τ_i^{p_k}.
package optim

import (
	"fmt"
	"math"

	"pipemare/internal/nn"
	"pipemare/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step takes
// one learning rate per parameter so that per-stage rescheduling (T1) can
// be applied; use UniformLR for a shared rate.
//
// The update is shardable: Advance moves the optimizer's step clock (Adam
// bias correction) exactly once per update, after which StepRange applies
// the update to any contiguous parameter range. Ranges of one update must
// be disjoint; distinct ranges may then run concurrently (each parameter's
// state is touched only by its own range), which is how the engines commit
// the step stage-parallel. Step ≡ Advance + StepRange over everything.
type Optimizer interface {
	Step(lrs []float64)
	// Advance moves the step clock for the next update. It must
	// happen-before every StepRange of that update.
	Advance()
	// StepRange applies the just-advanced update to params [lo, hi);
	// lrs[i] is the learning rate of parameter lo+i.
	StepRange(lo, hi int, lrs []float64)
	Params() []*nn.Param
	// StateCopies reports how many weight-sized buffers the optimizer
	// holds per parameter including the master weights and the gradient
	// (3 for momentum-SGD, 4 for Adam), used by the memory model.
	StateCopies() int
}

// UniformLR returns a slice of n copies of lr.
func UniformLR(lr float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lr
	}
	return out
}

// SGD is stochastic gradient descent with heavy-ball momentum and L2
// weight decay (decay added to the gradient, as in the paper's ResNet
// recipe).
type SGD struct {
	ps          []*nn.Param
	Momentum    float64
	WeightDecay float64
	vel         []*tensor.Tensor
}

// NewSGD returns an SGD optimizer over params.
func NewSGD(params []*nn.Param, momentum, weightDecay float64) *SGD {
	s := &SGD{ps: params, Momentum: momentum, WeightDecay: weightDecay}
	s.vel = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		s.vel[i] = tensor.New(p.Data.Shape...)
	}
	return s
}

// Step applies v ← βv − lr·(g + wd·w); w ← w + v for each parameter.
func (s *SGD) Step(lrs []float64) {
	if len(lrs) != len(s.ps) {
		panic(fmt.Sprintf("optim: %d learning rates for %d params", len(lrs), len(s.ps)))
	}
	s.Advance()
	s.StepRange(0, len(s.ps), lrs)
}

// Advance is a no-op: momentum SGD keeps no step clock.
func (s *SGD) Advance() {}

// StepRange applies the update to params [lo, hi).
func (s *SGD) StepRange(lo, hi int, lrs []float64) {
	if len(lrs) != hi-lo {
		panic(fmt.Sprintf("optim: %d learning rates for param range [%d, %d)", len(lrs), lo, hi))
	}
	for i := lo; i < hi; i++ {
		p := s.ps[i]
		v := s.vel[i]
		lr := lrs[i-lo]
		for j := range p.Data.Data {
			g := p.Grad.Data[j] + s.WeightDecay*p.Data.Data[j]
			v.Data[j] = s.Momentum*v.Data[j] - lr*g
			p.Data.Data[j] += v.Data[j]
		}
	}
}

// Params returns the optimized parameters.
func (s *SGD) Params() []*nn.Param { return s.ps }

// StateCopies is 3: master weights, gradient, momentum (the paper's
// footnote 2 accounting, which makes T2's extra buffer a 33% increase).
func (s *SGD) StateCopies() int { return 3 }

// AdamW is Adam with decoupled weight decay, the optimizer the paper uses
// for the Transformer tasks.
type AdamW struct {
	ps          []*nn.Param
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	m, v []*tensor.Tensor
	t    int
}

// NewAdamW returns an AdamW optimizer with the paper's Transformer betas
// (0.9, 0.98) unless overridden.
func NewAdamW(params []*nn.Param, beta1, beta2, eps, weightDecay float64) *AdamW {
	a := &AdamW{ps: params, Beta1: beta1, Beta2: beta2, Eps: eps, WeightDecay: weightDecay}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Data.Shape...)
		a.v[i] = tensor.New(p.Data.Shape...)
	}
	return a
}

// Step applies one AdamW update with bias correction.
func (a *AdamW) Step(lrs []float64) {
	if len(lrs) != len(a.ps) {
		panic(fmt.Sprintf("optim: %d learning rates for %d params", len(lrs), len(a.ps)))
	}
	a.Advance()
	a.StepRange(0, len(a.ps), lrs)
}

// Advance moves the Adam step clock; the bias corrections of the next
// StepRange calls are computed from the advanced clock.
func (a *AdamW) Advance() { a.t++ }

// StepRange applies the update to params [lo, hi). The bias-correction
// factors depend only on the (already advanced) step clock, so disjoint
// ranges of one update are independent.
func (a *AdamW) StepRange(lo, hi int, lrs []float64) {
	if len(lrs) != hi-lo {
		panic(fmt.Sprintf("optim: %d learning rates for param range [%d, %d)", len(lrs), lo, hi))
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := lo; i < hi; i++ {
		p := a.ps[i]
		lr := lrs[i-lo]
		m, v := a.m[i], a.v[i]
		for j := range p.Data.Data {
			g := p.Grad.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.Data.Data[j] -= lr * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.Data.Data[j])
		}
	}
}

// Params returns the optimized parameters.
func (a *AdamW) Params() []*nn.Param { return a.ps }

// StateCopies is 4: master weights, gradient, first and second moments.
func (a *AdamW) StateCopies() int { return 4 }

// Schedule maps an optimizer step index (0-based) to a base learning rate.
type Schedule interface {
	LR(step int) float64
}

// Constant is a fixed learning rate.
type Constant float64

// LR returns the constant rate.
func (c Constant) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Factor every DropEvery steps,
// matching the paper's ResNet recipe (drop 10× every 80/30 epochs).
type StepDecay struct {
	Base      float64
	DropEvery int
	Factor    float64
}

// LR returns Base·Factor^⌊step/DropEvery⌋.
func (s StepDecay) LR(step int) float64 {
	if s.DropEvery <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Factor, float64(step/s.DropEvery))
}

// WarmupInvSqrt is the Transformer schedule: linear warmup from Init to
// Peak over Warmup steps, then inverse-square-root decay.
type WarmupInvSqrt struct {
	Peak   float64
	Init   float64
	Warmup int
}

// LR returns the warmup/decay rate for the given step.
func (w WarmupInvSqrt) LR(step int) float64 {
	if w.Warmup <= 0 {
		return w.Peak
	}
	if step < w.Warmup {
		frac := float64(step) / float64(w.Warmup)
		return w.Init + (w.Peak-w.Init)*frac
	}
	return w.Peak * math.Sqrt(float64(w.Warmup)/float64(step))
}

// T1 is the paper's Technique 1 learning-rate rescheduler: during the first
// K steps, divide the base rate for parameter i by its delay raised to the
// annealing power p_k = 1 − min(k/K, 1), so early steps see α/τ and the
// schedule relaxes back to the baseline by step K.
type T1 struct {
	Base Schedule
	Taus []float64 // per-parameter forward delay in minibatch units
	K    int       // annealing steps; ≤ 0 disables the rescheduling
}

// LRs returns the per-parameter learning rates at the given step.
func (t *T1) LRs(step int) []float64 {
	base := t.Base.LR(step)
	out := make([]float64, len(t.Taus))
	p := 0.0
	if t.K > 0 {
		p = 1 - math.Min(float64(step)/float64(t.K), 1)
	}
	for i, tau := range t.Taus {
		if tau < 1 {
			// τ < 1 means the delay is under one optimizer step; dividing
			// by τ^p would *increase* the rate, so clamp at the baseline.
			tau = 1
		}
		out[i] = base / math.Pow(tau, p)
	}
	return out
}
