package optim

import (
	"math"
	"math/rand"
	"testing"

	"pipemare/internal/nn"
	"pipemare/internal/tensor"
)

func quadParam(w0 float64) *nn.Param {
	p := nn.NewParam("w", 1)
	p.Data.Data[0] = w0
	return p
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize (1/2)w² with gradient w.
	p := quadParam(5)
	opt := NewSGD([]*nn.Param{p}, 0, 0)
	for i := 0; i < 200; i++ {
		p.Grad.Data[0] = p.Data.Data[0]
		opt.Step(UniformLR(0.1, 1))
	}
	if math.Abs(p.Data.Data[0]) > 1e-6 {
		t.Fatalf("SGD did not converge: w = %g", p.Data.Data[0])
	}
}

func TestSGDMomentumSingleSteps(t *testing.T) {
	// With β=0.5, lr=1, g=1 constant: v₁=-1, w₁=w₀-1; v₂=-1.5, w₂=w₀-2.5.
	p := quadParam(0)
	opt := NewSGD([]*nn.Param{p}, 0.5, 0)
	p.Grad.Data[0] = 1
	opt.Step(UniformLR(1, 1))
	if p.Data.Data[0] != -1 {
		t.Fatalf("after step 1 w = %g, want -1", p.Data.Data[0])
	}
	p.Grad.Data[0] = 1
	opt.Step(UniformLR(1, 1))
	if p.Data.Data[0] != -2.5 {
		t.Fatalf("after step 2 w = %g, want -2.5", p.Data.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	// With zero gradient, decay wd=0.1 and lr=1: w ← w − wd·w = 0.9w.
	p := quadParam(2)
	opt := NewSGD([]*nn.Param{p}, 0, 0.1)
	p.Grad.Data[0] = 0
	opt.Step(UniformLR(1, 1))
	if math.Abs(p.Data.Data[0]-1.8) > 1e-12 {
		t.Fatalf("w = %g, want 1.8", p.Data.Data[0])
	}
}

func TestAdamWFirstStepIsSignedLR(t *testing.T) {
	// Bias-corrected Adam's first update is −lr·g/(|g|+ε·corr) ≈ −lr·sign(g).
	p := quadParam(0)
	opt := NewAdamW([]*nn.Param{p}, 0.9, 0.999, 1e-12, 0)
	p.Grad.Data[0] = 7
	opt.Step(UniformLR(0.01, 1))
	if math.Abs(p.Data.Data[0]+0.01) > 1e-8 {
		t.Fatalf("first Adam step = %g, want ≈ -0.01", p.Data.Data[0])
	}
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	p := quadParam(3)
	opt := NewAdamW([]*nn.Param{p}, 0.9, 0.98, 1e-9, 0)
	for i := 0; i < 2000; i++ {
		p.Grad.Data[0] = p.Data.Data[0]
		opt.Step(UniformLR(0.05, 1))
	}
	if math.Abs(p.Data.Data[0]) > 1e-2 {
		t.Fatalf("AdamW did not converge: w = %g", p.Data.Data[0])
	}
}

func TestAdamWDecoupledDecay(t *testing.T) {
	// With zero gradient, AdamW still shrinks weights by lr·wd·w.
	p := quadParam(1)
	opt := NewAdamW([]*nn.Param{p}, 0.9, 0.98, 1e-9, 0.5)
	p.Grad.Data[0] = 0
	opt.Step(UniformLR(0.1, 1))
	if math.Abs(p.Data.Data[0]-0.95) > 1e-9 {
		t.Fatalf("w = %g, want 0.95", p.Data.Data[0])
	}
}

func TestStateCopies(t *testing.T) {
	p := []*nn.Param{quadParam(0)}
	if got := NewSGD(p, 0.9, 0).StateCopies(); got != 3 {
		t.Fatalf("SGD copies = %d, want 3", got)
	}
	if got := NewAdamW(p, 0.9, 0.98, 1e-9, 0).StateCopies(); got != 4 {
		t.Fatalf("AdamW copies = %d, want 4", got)
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Base: 0.1, DropEvery: 100, Factor: 0.1}
	cases := []struct {
		step int
		want float64
	}{{0, 0.1}, {99, 0.1}, {100, 0.01}, {250, 0.001}}
	for _, c := range cases {
		if got := s.LR(c.step); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("LR(%d) = %g, want %g", c.step, got, c.want)
		}
	}
}

func TestWarmupInvSqrtSchedule(t *testing.T) {
	s := WarmupInvSqrt{Peak: 1.0, Init: 0.0, Warmup: 100}
	if got := s.LR(0); got != 0 {
		t.Errorf("LR(0) = %g, want 0", got)
	}
	if got := s.LR(50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LR(50) = %g, want 0.5", got)
	}
	if got := s.LR(100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("LR(100) = %g, want 1", got)
	}
	if got := s.LR(400); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LR(400) = %g, want 0.5 (inv-sqrt decay)", got)
	}
	// Monotone non-increasing after the peak.
	prev := s.LR(100)
	for k := 101; k < 500; k += 7 {
		if cur := s.LR(k); cur > prev+1e-15 {
			t.Fatalf("schedule increased after warmup at %d", k)
		} else {
			prev = cur
		}
	}
}

func TestT1Rescheduler(t *testing.T) {
	taus := []float64{16, 4, 1, 0.25}
	t1 := &T1{Base: Constant(0.1), Taus: taus, K: 100}

	// At k=0 the rate is base/τ exactly (with τ clamped at 1).
	lrs := t1.LRs(0)
	want0 := []float64{0.1 / 16, 0.1 / 4, 0.1, 0.1}
	for i := range want0 {
		if math.Abs(lrs[i]-want0[i]) > 1e-12 {
			t.Errorf("LRs(0)[%d] = %g, want %g", i, lrs[i], want0[i])
		}
	}
	// At k=K and beyond the base rate is restored.
	for _, k := range []int{100, 500} {
		for i, lr := range t1.LRs(k) {
			if math.Abs(lr-0.1) > 1e-12 {
				t.Errorf("LRs(%d)[%d] = %g, want 0.1", k, i, lr)
			}
		}
	}
	// Halfway: exponent p = 0.5 → rate = base/√τ.
	lrs = t1.LRs(50)
	if math.Abs(lrs[0]-0.1/4) > 1e-12 {
		t.Errorf("LRs(50)[0] = %g, want %g", lrs[0], 0.1/4)
	}
	// Monotone non-decreasing in k for τ > 1.
	prev := t1.LRs(0)[0]
	for k := 1; k <= 120; k++ {
		cur := t1.LRs(k)[0]
		if cur < prev-1e-15 {
			t.Fatalf("T1 rate decreased at step %d", k)
		}
		prev = cur
	}
}

func TestT1DisabledKeepsBase(t *testing.T) {
	t1 := &T1{Base: Constant(0.2), Taus: []float64{8, 2}, K: 0}
	for _, lr := range t1.LRs(0) {
		if lr != 0.2 {
			t.Fatalf("K=0 must disable rescheduling, got %g", lr)
		}
	}
}

func TestUniformLR(t *testing.T) {
	lrs := UniformLR(0.3, 4)
	if len(lrs) != 4 {
		t.Fatalf("len = %d", len(lrs))
	}
	for _, v := range lrs {
		if v != 0.3 {
			t.Fatalf("value = %g", v)
		}
	}
}

func TestOptimizersTrainTinyNetwork(t *testing.T) {
	// End-to-end smoke test: a 2-layer MLP fits a linear map with both
	// optimizers.
	for _, mk := range []struct {
		name string
		make func(ps []*nn.Param) Optimizer
	}{
		{"sgd", func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.9, 0) }},
		{"adamw", func(ps []*nn.Param) Optimizer { return NewAdamW(ps, 0.9, 0.98, 1e-9, 0) }},
	} {
		rng := rand.New(rand.NewSource(42))
		net := nn.NewSequential(
			nn.NewLinear("fc1", 3, 16, true, rng),
			nn.NewReLU(),
			nn.NewLinear("fc2", 16, 1, true, rng),
		)
		opt := mk.make(net.Params())
		mse := nn.NewMSE()
		x := make([]float64, 24*3)
		y := make([]float64, 24)
		for i := 0; i < 24; i++ {
			a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
			x[i*3], x[i*3+1], x[i*3+2] = a, b, c
			y[i] = 2*a - b + 0.5*c
		}
		var final float64
		tp := nn.NewTape()
		for it := 0; it < 600; it++ {
			tp.Reset()
			xt := nnTensor(x, 24, 3)
			yt := nnTensor(y, 24, 1)
			out := net.Forward(tp, xt)
			final = mse.Forward(out, yt)
			nn.ZeroGrads(net.Params())
			net.Backward(tp, mse.Backward())
			opt.Step(UniformLR(0.01, len(net.Params())))
		}
		if final > 0.02 {
			t.Errorf("%s: final loss %g too high", mk.name, final)
		}
	}
}

// nnTensor builds a tensor from a flat slice for the smoke test.
func nnTensor(data []float64, shape ...int) *tensor.Tensor {
	return tensor.FromSlice(append([]float64(nil), data...), shape...)
}

// shardParams builds n scalar params with distinct weights and gradients.
func shardParams(n int) []*nn.Param {
	ps := make([]*nn.Param, n)
	for i := range ps {
		ps[i] = quadParam(float64(i + 1))
		ps[i].Grad.Data[0] = 0.5 * float64(i+1)
	}
	return ps
}

// TestShardedStepMatchesFullStep pins the ZeRO-style split: stepping the
// full optimizer once must be bit-identical to stepping each shard of a
// sharded sibling set over the same initial state — the arithmetic the
// replica-sharded commit distributes across replicas.
func TestShardedStepMatchesFullStep(t *testing.T) {
	const n = 7
	builders := []struct {
		name  string
		full  func(ps []*nn.Param) Optimizer
		shard func(ps []*nn.Param, sh Shard) Optimizer
	}{
		{"sgd",
			func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.9, 0.01) },
			func(ps []*nn.Param, sh Shard) Optimizer { return NewSGDShard(ps, 0.9, 0.01, sh) }},
		{"adamw",
			func(ps []*nn.Param) Optimizer { return NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4) },
			func(ps []*nn.Param, sh Shard) Optimizer { return NewAdamWShard(ps, 0.9, 0.98, 1e-9, 1e-4, sh) }},
	}
	shards := []Shard{{0, 3}, {3, 5}, {5, 7}} // uneven split
	for _, b := range builders {
		ref := shardParams(n)
		full := b.full(ref)
		split := shardParams(n)
		var parts []Optimizer
		for _, sh := range shards {
			parts = append(parts, b.shard(split, sh))
		}
		lrs := make([]float64, n)
		for i := range lrs {
			lrs[i] = 0.01 * float64(i+1)
		}
		for step := 0; step < 3; step++ {
			full.Step(lrs)
			for j, sh := range shards {
				parts[j].Advance()
				parts[j].StepRange(sh.Lo, sh.Hi, lrs[sh.Lo:sh.Hi])
			}
			for i := range ref {
				if ref[i].Data.Data[0] != split[i].Data.Data[0] {
					t.Fatalf("%s step %d param %d: full %v != sharded %v",
						b.name, step, i, ref[i].Data.Data[0], split[i].Data.Data[0])
				}
			}
		}
	}
}

// TestShardStateFootprint pins the memory point of the refactor: a
// sharded optimizer allocates moment state only for its shard, and an
// empty shard allocates none.
func TestShardStateFootprint(t *testing.T) {
	ps := shardParams(6)
	sgd := NewSGDShard(ps, 0.9, 0, Shard{Lo: 2, Hi: 5})
	if got := sgd.StateRange(); got != (Shard{2, 5}) {
		t.Fatalf("StateRange = %+v, want {2 5}", got)
	}
	if len(sgd.vel) != 3 {
		t.Fatalf("sharded SGD holds %d velocity buffers, want 3", len(sgd.vel))
	}
	adam := NewAdamWShard(ps, 0.9, 0.98, 1e-9, 0, Shard{})
	if len(adam.m) != 0 || len(adam.v) != 0 {
		t.Fatalf("empty-shard AdamW holds %d/%d moment buffers, want none", len(adam.m), len(adam.v))
	}
	if full := NewSGD(ps, 0.9, 0); full.StateRange() != FullShard(6) {
		t.Fatalf("full SGD StateRange = %+v, want {0 6}", full.StateRange())
	}
}

// TestShardCloneMatchesOriginal pins CloneShard: a clone over fresh
// parameter copies steps its shard bit-identically to the original.
func TestShardCloneMatchesOriginal(t *testing.T) {
	ps := shardParams(5)
	var full ShardCloner = NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
	clonePs := shardParams(5)
	sh := Shard{Lo: 1, Hi: 4}
	clone := full.CloneShard(clonePs, sh)
	lrs := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	full.Advance()
	full.StepRange(sh.Lo, sh.Hi, lrs[sh.Lo:sh.Hi])
	clone.Advance()
	clone.StepRange(sh.Lo, sh.Hi, lrs[sh.Lo:sh.Hi])
	for i := sh.Lo; i < sh.Hi; i++ {
		if ps[i].Data.Data[0] != clonePs[i].Data.Data[0] {
			t.Fatalf("param %d: original %v != clone %v", i, ps[i].Data.Data[0], clonePs[i].Data.Data[0])
		}
	}
	var _ ShardCloner = NewSGD(ps, 0, 0) // both optimizers support sharding
}

// TestShardOutOfRangePanics pins the ownership guard: stepping outside
// the optimizer's state shard is a programming error, not silent
// corruption.
func TestShardOutOfRangePanics(t *testing.T) {
	ps := shardParams(4)
	sgd := NewSGDShard(ps, 0.9, 0, Shard{Lo: 1, Hi: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("StepRange outside the state shard did not panic")
		}
	}()
	sgd.StepRange(0, 2, []float64{0.1, 0.1})
}
