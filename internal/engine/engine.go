// Package engine defines the pluggable execution-engine abstraction of the
// PipeMare reproduction. A trainer (internal/core.Trainer) owns the weight
// partition, version stores and technique state, and exposes them to an
// Engine through the Host interface as per-microbatch-slot operations:
// install-forward, install-backward, install-recompute, the per-stage
// forward/backward compute slots, and the per-stage commit phases of an
// optimizer step. An Engine decides *how* those operations are scheduled
// onto goroutines.
//
// Two engines exist: Reference (this package) executes every slot on the
// calling goroutine — it is the original single-goroutine simulator and the
// semantic ground truth — and internal/engine/concurrent runs a
// work-stealing pool of W workers over per-stage run queues with up to P
// microbatches in flight, overlapping the per-stage compute slots like a
// real fill/drain pipeline. Both produce bit-identical training curves for
// every worker count; the equivalence is pinned by tests at the repository
// root.
package engine

import (
	"context"
	"errors"
	"math"

	"pipemare/internal/trace"
)

// ErrDiverged is returned by Engine.Minibatch when a microbatch loss is
// non-finite or exceeds the trainer's loss cap. The trainer's master
// weights have been restored when it is returned.
var ErrDiverged = errors.New("engine: training diverged")

// Host is the trainer-side surface an Engine drives. It is implemented by
// internal/core.Trainer. Stage indices are 0-based; s is the global
// microbatch counter of the timing model (package pipeline).
//
// A microbatch's slots form a chain: BeginMicro, the forward slots of
// stages 0..P−1 in order, optionally a second (recompute) forward climb,
// the backward slots of stages P−1..0 in order, then EndMicro. The loss is
// returned by the last stage's forward slot.
//
// Concurrency contract: the Install*, Restore, PrepareStage, ScaleStage,
// StepStage and FinishStage methods touch only the named stage's
// parameters and state, so an engine may call them for different stages
// concurrently. StageForward and StageBackward read the named stage's
// installed weights and the microbatch's private activation state, so
// calls are safe to overlap when both the stage AND the microbatch differ;
// all slots of one stage must be serialized (ordered) with each other and
// with that stage's installs/restores, and a microbatch's chain must run
// in chain order. When Splittable reports false the substrate is
// monolithic: the forward compute happens entirely inside the last stage's
// forward slot and the backward inside stage 0's backward slot, so at most
// one microbatch may be in flight at a time. BeginMicro/EndMicro and
// ClipScale/BeginStep must be ordered (happen-before) with respect to the
// slots they bracket; BeginStep must happen-before every StepStage of the
// commit, and every StepStage before that stage's FinishStage.
type Host interface {
	// Stages returns P, the number of pipeline stages.
	Stages() int
	// Async reports whether the current epoch runs asynchronously
	// (false for GPipe and during T3 warmup epochs: no installs happen).
	Async() bool
	// Recompute reports whether the Appendix D recompute delay path is on.
	Recompute() bool
	// MicroBase returns the global microbatch counter at the start of the
	// minibatch being executed; microbatch k of the minibatch has
	// s = MicroBase()+k.
	MicroBase() int
	// Splittable reports whether the task executes as true per-stage
	// segments (the engine may overlap up to P microbatches) or as a
	// monolithic substrate (one microbatch in flight at a time).
	Splittable() bool

	// InstallForward points the stage's parameters at the delayed snapshot
	// its forward slot sees at global microbatch s (Table 1 delays).
	InstallForward(s, stage int)
	// InstallBackward sets the stage's backward weights for microbatch s:
	// the live master (or T2-corrected) weights for PipeMare, nothing for
	// PipeDream (backward falls back to the stashed forward snapshot).
	InstallBackward(s, stage int)
	// InstallRecompute points the stage's parameters at the version its
	// recompute pass reads (Appendix D), T2-corrected when enabled.
	InstallRecompute(s, stage int)
	// Restore points the stage's parameters back at the live master
	// weights and clears the backward decoupling.
	Restore(stage int)

	// BeginMicro opens microbatch s over the given sample indices,
	// acquiring its in-flight state.
	BeginMicro(s int, mb []int)
	// StageForward runs the stage's forward slot for microbatch s. The
	// last stage returns the microbatch's mean loss (other stages return
	// 0). Calling the chain a second time after the last stage reruns the
	// forward pass from scratch (the recompute climb).
	StageForward(s, stage int) float64
	// StageBackward runs the stage's backward slot for microbatch s,
	// accumulating the stage's parameter gradients.
	StageBackward(s, stage int)
	// EndMicro closes microbatch s and releases its in-flight state.
	EndMicro(s int)
	// BadLoss reports whether a loss is non-finite or above the cap.
	BadLoss(loss float64) bool

	// PrepareStage averages the stage's accumulated gradients over nMicro
	// microbatches, snapshots the stage's pre-step weights for the T2
	// velocity estimate, and returns the sum of squared (averaged)
	// gradients for global norm clipping.
	PrepareStage(stage, nMicro int) float64
	// ClipScale converts the global gradient sum-of-squares into the
	// clipping factor (1 when clipping is off or the norm is within
	// bounds).
	ClipScale(sumSq float64) float64
	// ScaleStage multiplies the stage's gradients by the clip factor.
	ScaleStage(stage int, scale float64)
	// BeginStep advances the trainer's and the optimizer's step clocks for
	// the update being committed. It runs exactly once per commit, after
	// every stage is scaled and before any StepStage.
	BeginStep()
	// StepStage computes the stage's per-parameter learning rates (T1 —
	// pure in the stage's parameter range given the step clock) and
	// applies the optimizer update to that range. Distinct stages may
	// step concurrently.
	StepStage(stage int)
	// FinishStage completes the step for one stage: updates the T2
	// velocity accumulator and corrected weights, pushes the stage's new
	// weight version, and zeroes the stage's gradients.
	FinishStage(stage int)
}

// Engine executes one minibatch — the micros slice holds the N microbatch
// index sets — against a Host, returning the mean microbatch loss. On
// divergence it restores the master weights and returns ErrDiverged; on
// context cancellation it restores the master weights and returns ctx.Err().
type Engine interface {
	Name() string
	Minibatch(ctx context.Context, h Host, micros [][]int) (float64, error)
}

// Lifecycle is optionally implemented by engines that keep per-run
// resources (worker goroutines, kernel parallelism settings). The trainer
// calls Start before the first minibatch of a Run and Stop when the Run
// returns.
type Lifecycle interface {
	Start(h Host)
	Stop()
}

// Reference is the single-goroutine engine: the paper's Appendix C.4
// "queue of weights per pipeline stage" simulation executed serially. It
// is the default engine and the semantic ground truth for every other
// engine.
type Reference struct{}

// NewReference returns the serial reference engine.
func NewReference() Reference { return Reference{} }

// Name identifies the engine.
func (Reference) Name() string { return "reference" }

// Minibatch executes the N microbatch chains and the commit phase serially.
func (Reference) Minibatch(ctx context.Context, h Host, micros [][]int) (float64, error) {
	p := h.Stages()
	async := h.Async()
	rec := h.Recompute()
	base := h.MicroBase()
	tr, rep := trace.FromCarrier(h)
	tk := tr.Track(rep, trace.TidWorkerBase, "worker 0")
	lossSum := 0.0
	for k, mb := range micros {
		if err := ctx.Err(); err != nil {
			restoreAll(h, p)
			return 0, err
		}
		s := base + k
		if async {
			for st := 0; st < p; st++ {
				h.InstallForward(s, st)
				h.InstallBackward(s, st)
			}
		}
		h.BeginMicro(s, mb)
		loss := 0.0
		for st := 0; st < p; st++ {
			t0 := tr.Now()
			l := h.StageForward(s, st)
			tk.Span(trace.NameFwd, t0, st, s, 0)
			if st == p-1 {
				loss = l
			}
		}
		lossSum += loss
		if h.BadLoss(loss) {
			h.EndMicro(s)
			restoreAll(h, p)
			return math.Inf(1), ErrDiverged
		}
		if async && rec {
			for st := 0; st < p; st++ {
				h.InstallRecompute(s, st)
			}
			// Recompute climb: regenerate activations with the recompute-
			// delayed weights before backprop (Appendix D).
			for st := 0; st < p; st++ {
				t0 := tr.Now()
				h.StageForward(s, st)
				tk.Span(trace.NameRecompute, t0, st, s, 0)
			}
		}
		for st := p - 1; st >= 0; st-- {
			t0 := tr.Now()
			h.StageBackward(s, st)
			tk.Span(trace.NameBwd, t0, st, s, 0)
		}
		h.EndMicro(s)
		restoreAll(h, p)
	}
	NewCommitPlan(p, 1).Commit(h, len(micros))
	return lossSum / float64(len(micros)), nil
}

func restoreAll(h Host, p int) {
	for st := 0; st < p; st++ {
		h.Restore(st)
	}
}
