package engine

import (
	"fmt"

	"pipemare/internal/trace"
)

// CommitPlan assigns the P stages of an optimizer commit to owners. It is
// the one sharding rule every engine commits through: the Reference engine
// runs a single-owner plan serially, the concurrent engine spreads a
// plan's owner shards across its scheduler workers, and the replicated
// engine assigns owners to replica members so each replica steps only its
// shard against its local copy of the optimizer state (the ZeRO /
// PipeDream-2BW weight-sharded update).
//
// Shards are contiguous ascending runs of stages whose sizes differ by at
// most one — the same deterministic rule the replica layer uses to chunk
// microbatches — so concatenating the owners' shards in owner order
// enumerates the stages exactly once, in stage order. That gives two
// invariants the determinism argument rests on: every stage (and hence
// every optimizer parameter index) has exactly one owner, and any
// stage-ordered reduction (the clip-norm sum) can be folded by walking
// owners in order.
type CommitPlan struct {
	p  int
	lo []int // owner r owns stages [lo[r], lo[r+1]); len = owners+1
}

// NewCommitPlan splits p stages across the given number of owners. Owners
// beyond the stage count receive empty shards.
func NewCommitPlan(p, owners int) CommitPlan {
	if p < 1 {
		panic(fmt.Sprintf("engine: commit plan needs at least one stage, got %d", p))
	}
	if owners < 1 {
		panic(fmt.Sprintf("engine: commit plan needs at least one owner, got %d", owners))
	}
	pl := CommitPlan{p: p, lo: make([]int, owners+1)}
	lo := 0
	for r := 0; r < owners; r++ {
		pl.lo[r] = lo
		sz := p / owners
		if r < p%owners {
			sz++
		}
		lo += sz
	}
	pl.lo[owners] = lo
	return pl
}

// Stages returns P.
func (pl CommitPlan) Stages() int { return pl.p }

// Owners returns the number of owners the plan shards across.
func (pl CommitPlan) Owners() int { return len(pl.lo) - 1 }

// Shard returns the stage range [lo, hi) owner r steps.
func (pl CommitPlan) Shard(r int) (lo, hi int) { return pl.lo[r], pl.lo[r+1] }

// OwnerOf returns the owner of a stage.
func (pl CommitPlan) OwnerOf(stage int) int {
	for r := 1; r < len(pl.lo); r++ {
		if stage < pl.lo[r] {
			return r - 1
		}
	}
	panic(fmt.Sprintf("engine: stage %d outside the %d-stage commit plan", stage, pl.p))
}

// Commit executes one full optimizer commit against a host whose gradients
// hold a full minibatch of nMicro microbatches, walking the plan's owners
// in order and each shard's stages in order — so for any owner count the
// arithmetic is exactly the serial stage-ordered commit: average+snapshot
// per stage, the stage-ordered clip-norm reduction, one step-clock
// advance, the per-stage optimizer updates, then per-stage finalization.
// It is the serial executor used by the Reference engine and by the
// replicated engine's leader-serial (non-sharded) commit; the concurrent
// and replica-sharded commits distribute the same shards across workers or
// replica members with barriers between the phases.
func (pl CommitPlan) Commit(h Host, nMicro int) {
	p := pl.p
	tr, rep := trace.FromCarrier(h)
	tk := tr.Track(rep, trace.TidWorkerBase, "worker 0")
	t0 := tr.Now()
	sumSq := 0.0
	for st := 0; st < p; st++ {
		sumSq += h.PrepareStage(st, nMicro)
	}
	tk.Span(trace.NameCommitPrepare, t0, -1, -1, 0)
	if scale := h.ClipScale(sumSq); scale != 1 {
		t0 = tr.Now()
		for st := 0; st < p; st++ {
			h.ScaleStage(st, scale)
		}
		tk.Span(trace.NameCommitScale, t0, -1, -1, 0)
	}
	t0 = tr.Now()
	h.BeginStep()
	for st := 0; st < p; st++ {
		h.StepStage(st)
	}
	tk.Span(trace.NameCommitStep, t0, -1, -1, 0)
	t0 = tr.Now()
	for st := 0; st < p; st++ {
		h.FinishStage(st)
	}
	tk.Span(trace.NameCommitFinish, t0, -1, -1, 0)
}
