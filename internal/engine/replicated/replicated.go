// Package replicated implements the multi-replica data-parallel execution
// engine: R pipeline replicas — the leader trainer plus the follower
// trainers it owns (Config.Replicas, pipemare.WithReplicas) — each run a
// contiguous share of every minibatch's microbatches through their own
// inner engine (Reference or the concurrent stage-worker engine, so
// pipeline overlap composes with replication), concurrently. One shared
// optimizer step commits after a deterministic tree all-reduce of the
// followers' per-microbatch gradients: leader-serial with a full-state
// broadcast when the sharded step is off, or — the default for R > 1 —
// the ZeRO-style replica-sharded commit in which every replica steps only
// its own stage shard against its local shard of the optimizer state and
// the stepped weights all-gather back (replica.Group.Commit).
//
// Training curves are bit-identical to a single-replica run of the same
// global microbatch set under the Reference engine, for any R, either
// inner engine and either commit mode: see package replica for the
// determinism argument (contiguous ordered chunks, one-add-per-element
// gradient export, all reduction arithmetic at the tree root in global
// microbatch order, copy-only scatter/gather around location-independent
// shard arithmetic). The equivalence is pinned by tests at the repository
// root.
package replicated

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"pipemare/internal/engine"
	"pipemare/internal/replica"
	"pipemare/internal/trace"
)

// Engine is the replicated data-parallel engine. It implements
// engine.Engine, engine.Lifecycle and replica.Aware. When its host is not
// a replica leader (or leads a single replica), it degenerates to its
// inner engine. An Engine instance must not be shared by concurrently
// running trainers.
type Engine struct {
	inner func() engine.Engine
	name  string

	h       engine.Host
	group   *replica.Group
	engines []engine.Engine
	running bool

	evictions  int   // members evicted over the engine's lifetime
	recoveryNs int64 // wall time spent recovering from those failures
	joins      int   // members admitted mid-run (joins and standby rejoins)
	demotions  int   // stragglers demoted to standby

	// standbys holds demoted stragglers: alive, out of the group, each
	// draining its late in-flight reply. The list survives Stop — a
	// standby's connection outlives the run that demoted it — and is
	// released only by CloseStandbys (Trainer.Close) or readmission.
	standbys []replica.Member

	// ctl is the leader's control track (nil when tracing is off).
	// Eviction and replay instants are emitted from Minibatch, which runs
	// on the trainer's run goroutine — the control track's single writer.
	ctl *trace.Track
}

// Option configures the engine.
type Option func(*Engine)

// WithInner sets the factory for the per-replica inner engines (default:
// the serial Reference engine). A factory — rather than an instance — is
// required because each replica's pipeline needs its own engine state.
func WithInner(f func() engine.Engine) Option {
	return func(e *Engine) { e.inner = f }
}

// New returns a replicated data-parallel engine.
func New(opts ...Option) *Engine {
	e := &Engine{inner: func() engine.Engine { return engine.NewReference() }}
	for _, o := range opts {
		o(e)
	}
	e.name = "replicated(" + e.inner().Name() + ")"
	return e
}

// Name identifies the engine and its inner engine.
func (e *Engine) Name() string { return e.name }

// DrivesReplicas marks the engine replica-aware (replica.Aware).
func (e *Engine) DrivesReplicas() {}

// Start builds the replica group for the host and starts one inner engine
// per replica.
func (e *Engine) Start(h engine.Host) {
	if e.running {
		if e.h == h {
			return
		}
		e.Stop()
	}
	e.h = h
	rec, rep := trace.FromCarrier(h)
	e.ctl = rec.Track(rep, trace.TidControl, "control")
	lead, ok := h.(replica.Leader)
	r := 1
	if ok {
		r = lead.Replicas()
	}
	if r == 1 {
		// Degenerate single-replica case: the inner engine drives the host
		// directly, commit included.
		e.group = nil
		e.engines = []engine.Engine{e.inner()}
		if lc, ok := e.engines[0].(engine.Lifecycle); ok {
			lc.Start(h)
		}
	} else {
		e.group = replica.NewGroup(lead)
		e.engines = make([]engine.Engine, r)
		for i := range e.engines {
			// Remote members run their chunks through the inner engine of
			// their own worker process; no local engine drives them.
			if c, ok := e.group.Member(i).(*replica.Compute); ok && c.Remote() {
				continue
			}
			e.engines[i] = e.inner()
			if lc, ok := e.engines[i].(engine.Lifecycle); ok {
				lc.Start(e.group.Member(i))
			}
		}
	}
	e.running = true
}

// Stop stops the inner engines and releases the replica group.
func (e *Engine) Stop() {
	if !e.running {
		return
	}
	for _, in := range e.engines {
		if lc, ok := in.(engine.Lifecycle); ok {
			lc.Stop()
		}
	}
	e.engines, e.group, e.h, e.ctl = nil, nil, nil, nil
	e.running = false
}

// Minibatch splits the minibatch across the replicas, runs the R chunk
// computations concurrently (each through its own inner engine), then
// tree-reduces the gradients into the leader and commits one shared
// optimizer step through the group — leader-serial + broadcast, or the
// replica-sharded owner protocol when the leader enables it.
//
// A fatal but evictable member failure (replica.MemberError — a dead
// remote follower under the serial commit, or any commit mode when the
// leader trains fault-tolerantly) does not abort the run: the member is
// evicted, the group re-chunks over the survivors, and the interrupted
// minibatch replays when its result was lost with the member. The
// replayed minibatch — and the whole curve after it — is bit-identical
// to a fresh (R−1)-replica run from the same state, because per-
// minibatch results are replica-count-invariant (package replica).
func (e *Engine) Minibatch(ctx context.Context, h engine.Host, micros [][]int) (float64, error) {
	if !e.running || e.h != h {
		e.Start(h)
	}
	if e.group == nil {
		return e.engines[0].Minibatch(ctx, h, micros)
	}
	var recoverStart time.Time
	for {
		loss, err := e.runOnce(ctx, micros)
		if err == nil && !recoverStart.IsZero() {
			e.recoveryNs += time.Since(recoverStart).Nanoseconds()
		}
		var se *replica.StragglerError
		if errors.As(err, &se) {
			// The member is alive but too slow: demote it to standby —
			// same group surgery as eviction, but the connection stays
			// open and the member drains its late reply so it can rejoin
			// through the admission path once it catches up.
			if recoverStart.IsZero() {
				recoverStart = time.Now()
			}
			e.demotions++
			e.ctl.Instant(trace.NameDemote, -1, -1, 0)
			e.demote(se.Replica)
			e.group.ResetGrads()
			e.ctl.Instant(trace.NameReplay, -1, -1, 0)
			continue
		}
		var me *replica.MemberError
		if !errors.As(err, &me) {
			return loss, err
		}
		if recoverStart.IsZero() {
			recoverStart = time.Now()
		}
		e.evictions++
		e.ctl.Instant(trace.NameEvict, -1, -1, 0)
		e.evict(me.Replica)
		if !me.Replay {
			// The commit completed before the failure surfaced (serial
			// commit: the leader stepped and every survivor synced
			// independently) — the minibatch stands, no replay.
			e.recoveryNs += time.Since(recoverStart).Nanoseconds()
			return loss, nil
		}
		e.group.ResetGrads()
		e.ctl.Instant(trace.NameReplay, -1, -1, 0)
	}
}

// runOnce drives one attempt at the minibatch over the current group.
func (e *Engine) runOnce(ctx context.Context, micros [][]int) (float64, error) {
	chunks := e.group.Begin(ctx, micros)
	r := e.group.Replicas()
	errs := make([]error, r)
	var wg sync.WaitGroup
	wg.Add(r)
	for i := 0; i < r; i++ {
		i := i
		go func() {
			defer wg.Done()
			host := e.group.Member(i)
			if c, ok := host.(*replica.Compute); ok && c.Remote() {
				// Remote replica: ship the chunk; the worker's inner engine
				// drives the pipeline and returns losses + gradient exports.
				errs[i] = c.Run(ctx, chunks[i])
				return
			}
			_, errs[i] = e.engines[i].Minibatch(ctx, host, chunks[i])
		}()
	}
	wg.Wait()

	// Every replica has drained and restored its master weights (the
	// inner-engine contract); follower stage accumulators are clean
	// because every follower backward slot exports-and-zeroes. A
	// divergence anywhere matches the serial run — the bad microbatch's
	// loss is computed from identical weights and samples there too — and
	// the leader's partial accumulation is dropped by the trainer. A
	// member failure is only evictable when no other member failed
	// non-evictably (a cancel or leader failure always aborts).
	var ctxErr error
	var straggleErr error
	evictPos, stragglePos := -1, -1
	for i, err := range errs {
		switch {
		case errors.Is(err, engine.ErrDiverged):
			return math.Inf(1), engine.ErrDiverged
		case err != nil && errors.Is(err, replica.ErrStraggler) && e.group.CanEvict(i, err):
			// Demotable, not evictable: the member did not latch a fault
			// — its late reply is still in flight. The eligibility
			// conditions are eviction's (never the leader, never without
			// fault tolerance under a sharded commit), because a demoted
			// member leaves the commit plan exactly like an evicted one.
			if stragglePos < 0 {
				stragglePos, straggleErr = i, err
			}
		case err != nil && e.group.CanEvict(i, err):
			if evictPos < 0 {
				evictPos = i
			}
		case err != nil && ctxErr == nil:
			ctxErr = err
		}
	}
	if ctxErr != nil {
		return 0, ctxErr
	}
	if stragglePos >= 0 {
		// Demotions are handled one per attempt: a second straggler's
		// RunChunk fails fast (ErrStraggler again, no I/O — the drain
		// guard) on the replay and demotes then. A concurrent evictable
		// fatal likewise resurfaces on the replay through its sticky
		// error and evicts then.
		return 0, &replica.StragglerError{Replica: stragglePos, Err: straggleErr}
	}
	if evictPos >= 0 {
		// The member died with its chunk: its losses and gradient exports
		// are gone, so the whole minibatch replays after eviction.
		return 0, &replica.MemberError{Replica: evictPos, Replay: true, Err: errs[evictPos]}
	}

	e.group.Reduce()
	loss := e.group.LossSum() / float64(len(micros))
	if err := e.group.Commit(len(micros)); err != nil {
		return loss, fmt.Errorf("replicated: commit: %w", err)
	}
	return loss, nil
}

// evict removes group member pos: its local inner engine (if any) stops,
// and the group closes the member, re-chunks, and rebuilds the leader's
// commit plan over the survivors.
func (e *Engine) evict(pos int) {
	if in := e.engines[pos]; in != nil {
		if lc, ok := in.(engine.Lifecycle); ok {
			lc.Stop()
		}
	}
	e.engines = append(e.engines[:pos], e.engines[pos+1:]...)
	e.group.Evict(pos)
}

// FaultStats reports how many members this engine has evicted and the
// cumulative wall time spent recovering (eviction, gradient reset, and
// minibatch replays until training resumed).
func (e *Engine) FaultStats() (evictions int, recoveryNs int64) {
	return e.evictions, e.recoveryNs
}

// ElasticStats reports how many members this engine has admitted mid-run
// (joins plus standby rejoins) and how many stragglers it has demoted.
func (e *Engine) ElasticStats() (joins, demotions int) {
	return e.joins, e.demotions
}

// demote moves group member pos to the standby pool: same splice as
// evict, but the member is not closed — it keeps draining its late
// reply and can rejoin via Admit once Ready.
func (e *Engine) demote(pos int) {
	m, ok := e.group.Demote(pos)
	if !ok {
		return
	}
	if in := e.engines[pos]; in != nil {
		if lc, ok := in.(engine.Lifecycle); ok {
			lc.Stop()
		}
	}
	e.engines = append(e.engines[:pos], e.engines[pos+1:]...)
	e.standbys = append(e.standbys, m)
}

// Admit grows the running group by one member at a minibatch boundary.
// The member must already hold the leader's full state (the trainer
// performs the handoff first) and must run its chunks out of process
// (replica.Runner) — no local inner engine drives it. The trainer calls
// Admit between minibatches, on the run goroutine, so no collective is
// in flight.
func (e *Engine) Admit(m replica.Member) error {
	if !e.running || e.group == nil {
		return errors.New("replicated: admit: no running replica group")
	}
	if _, ok := m.(replica.Runner); !ok {
		return fmt.Errorf("replicated: admit: member %T cannot run chunks remotely", m)
	}
	e.engines = append(e.engines, nil)
	e.group.Admit(m)
	e.joins++
	return nil
}

// TakeReadyStandbys removes and returns the demoted members that have
// finished draining and can rejoin. Standbys whose drain failed are
// closed and dropped — their connection is broken, so readmission is
// impossible.
func (e *Engine) TakeReadyStandbys() []replica.Member {
	var ready []replica.Member
	kept := e.standbys[:0]
	for _, m := range e.standbys {
		if er, ok := m.(replica.Erring); ok && er.Err() != nil {
			if cl, ok := m.(io.Closer); ok {
				cl.Close()
			}
			continue
		}
		if sb, ok := m.(replica.Standby); ok && sb.Ready() {
			ready = append(ready, m)
			continue
		}
		kept = append(kept, m)
	}
	e.standbys = kept
	if len(kept) == 0 {
		e.standbys = nil
	}
	return ready
}

// CloseStandbys closes every parked standby — the demoted members no
// longer reachable through the leader's follower list. Trainer.Close
// calls it so a run that ends with members still in standby leaks no
// connections.
func (e *Engine) CloseStandbys() error {
	var errs []error
	for _, m := range e.standbys {
		if cl, ok := m.(io.Closer); ok {
			if err := cl.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	e.standbys = nil
	return errors.Join(errs...)
}
