package replicated_test

import (
	"testing"

	"pipemare/internal/engine"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/replica"
)

// The behavioural coverage lives in internal/engine's contract tests
// (degenerate passthrough) and the repository-root equivalence tests
// (bit-identical curves for R∈{2,4} × inner engines); here we pin the
// construction surface.

func TestNameReflectsInnerEngine(t *testing.T) {
	if got := replicated.New().Name(); got != "replicated(reference)" {
		t.Fatalf("default Name() = %q, want replicated(reference)", got)
	}
	e := replicated.New(replicated.WithInner(func() engine.Engine { return concurrent.New() }))
	if got := e.Name(); got != "replicated(concurrent)" {
		t.Fatalf("Name() = %q, want replicated(concurrent)", got)
	}
}

func TestEngineIsReplicaAware(t *testing.T) {
	var e engine.Engine = replicated.New()
	if _, ok := e.(replica.Aware); !ok {
		t.Fatal("replicated.Engine must implement replica.Aware")
	}
	if _, ok := e.(engine.Lifecycle); !ok {
		t.Fatal("replicated.Engine must implement engine.Lifecycle")
	}
}

func TestStopWithoutStartIsIdempotent(t *testing.T) {
	e := replicated.New()
	e.Stop()
	e.Stop()
}
