package replicated_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pipemare/internal/engine"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
)

// The behavioural coverage lives in internal/engine's contract tests
// (degenerate passthrough) and the repository-root equivalence tests
// (bit-identical curves for R∈{2,4} × inner engines); here we pin the
// construction surface.

func TestNameReflectsInnerEngine(t *testing.T) {
	if got := replicated.New().Name(); got != "replicated(reference)" {
		t.Fatalf("default Name() = %q, want replicated(reference)", got)
	}
	e := replicated.New(replicated.WithInner(func() engine.Engine { return concurrent.New() }))
	if got := e.Name(); got != "replicated(concurrent)" {
		t.Fatalf("Name() = %q, want replicated(concurrent)", got)
	}
}

func TestEngineIsReplicaAware(t *testing.T) {
	var e engine.Engine = replicated.New()
	if _, ok := e.(replica.Aware); !ok {
		t.Fatal("replicated.Engine must implement replica.Aware")
	}
	if _, ok := e.(engine.Lifecycle); !ok {
		t.Fatal("replicated.Engine must implement engine.Lifecycle")
	}
}

func TestStopWithoutStartIsIdempotent(t *testing.T) {
	e := replicated.New()
	e.Stop()
	e.Stop()
}

// stubMember is a minimal replica surface for the cancellation test: it
// records the commit-phase calls that must NOT happen when a minibatch
// unwinds on a canceled context.
type stubMember struct {
	p  int
	mu sync.Mutex

	commits int // PrepareStage + BeginStep + StepStage calls
	synced  int // SyncFromLeader (serial broadcast)
	imports int // ImportStageState (sharded gather)
}

func (m *stubMember) Stages() int                         { return m.p }
func (m *stubMember) Async() bool                         { return false }
func (m *stubMember) Recompute() bool                     { return false }
func (m *stubMember) MicroBase() int                      { return 0 }
func (m *stubMember) Splittable() bool                    { return true }
func (m *stubMember) InstallForward(_, _ int)             {}
func (m *stubMember) InstallBackward(_, _ int)            {}
func (m *stubMember) InstallRecompute(_, _ int)           {}
func (m *stubMember) Restore(int)                         {}
func (m *stubMember) BeginMicro(int, []int)               {}
func (m *stubMember) StageForward(_, _ int) float64       { return 0.5 }
func (m *stubMember) StageBackward(_, _ int)              {}
func (m *stubMember) EndMicro(int)                        {}
func (m *stubMember) BadLoss(float64) bool                { return false }
func (m *stubMember) ClipScale(float64) float64           { return 1 }
func (m *stubMember) ScaleStage(int, float64)             {}
func (m *stubMember) FinishStage(int)                     {}
func (m *stubMember) StageState(int) []*tensor.Tensor     { return []*tensor.Tensor{tensor.New(1)} }
func (m *stubMember) SetStageGrads(int, []*tensor.Tensor) {}
func (m *stubMember) SyncEpoch()                          {}

func (m *stubMember) PrepareStage(_, _ int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits++
	return 0
}

func (m *stubMember) BeginStep() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits++
}

func (m *stubMember) StepStage(int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.commits++
}

func (m *stubMember) TakeStageGrads(_ int, bufs []*tensor.Tensor) []*tensor.Tensor {
	if bufs == nil {
		bufs = []*tensor.Tensor{tensor.New(1)}
	}
	return bufs
}

func (m *stubMember) FoldStageGrads(int, []*tensor.Tensor) {}

func (m *stubMember) ImportStageState(int, []*tensor.Tensor) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.imports++
}

func (m *stubMember) SyncFromLeader() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced++
}

// stubLeader owns one follower and enables the sharded commit, so the
// cancellation test exercises the sharded protocol's gate.
type stubLeader struct {
	*stubMember
	follower *stubMember
}

func (l *stubLeader) Replicas() int                   { return 2 }
func (l *stubLeader) Follower(int) replica.Member     { return l.follower }
func (l *stubLeader) ShardedStep() bool               { return true }
func (l *stubLeader) CommitShards() engine.CommitPlan { return engine.NewCommitPlan(l.p, 2) }

var _ replica.Leader = (*stubLeader)(nil)

// blockingEngine wedges until its context is canceled — a stand-in for a
// replica whose compute hangs (a stalled worker, a stuck collective).
type blockingEngine struct{ entered chan struct{} }

func (b blockingEngine) Name() string { return "blocking" }

func (b blockingEngine) Minibatch(ctx context.Context, h engine.Host, micros [][]int) (float64, error) {
	close(b.entered)
	<-ctx.Done()
	return 0, ctx.Err()
}

// TestCancelUnwindsBlockedMemberWithoutDeadlock pins the satellite
// contract: when one replica's compute blocks mid-minibatch, canceling
// the context must unwind the whole minibatch — the blocked member
// returns, the fan-in completes, and neither the tree reduce's commit nor
// the sharded gather runs — instead of deadlocking the followers.
func TestCancelUnwindsBlockedMemberWithoutDeadlock(t *testing.T) {
	lead := &stubLeader{stubMember: &stubMember{p: 2}, follower: &stubMember{p: 2}}
	entered := make(chan struct{})
	calls := 0
	e := replicated.New(replicated.WithInner(func() engine.Engine {
		calls++
		if calls == 2 { // the follower's inner engine wedges
			return blockingEngine{entered: entered}
		}
		return engine.NewReference()
	}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := e.Minibatch(ctx, lead, [][]int{{0}, {1}})
		done <- result{err}
	}()
	select {
	case <-entered: // the follower is wedged mid-minibatch
	case <-time.After(5 * time.Second):
		t.Fatal("follower engine never started")
	}
	cancel()
	select {
	case res := <-done:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("Minibatch error = %v, want context.Canceled", res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Minibatch deadlocked after cancellation with a blocked member")
	}
	e.Stop()
	for name, m := range map[string]*stubMember{"leader": lead.stubMember, "follower": lead.follower} {
		if m.commits != 0 {
			t.Fatalf("%s ran %d commit phases after cancellation, want none", name, m.commits)
		}
		if m.synced != 0 || m.imports != 0 {
			t.Fatalf("%s ran broadcast/gather (%d/%d) after cancellation, want none", name, m.synced, m.imports)
		}
	}
}
