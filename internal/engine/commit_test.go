package engine_test

import (
	"math/rand"
	"testing"

	"pipemare/internal/engine"
)

// TestCommitPlanCoversEveryStageExactlyOnce is the shard-assignment
// property the sharded commit's correctness rests on, swept over
// P ∈ {1..8} × owners ∈ {1..4} (the replica grid) plus owners > P: shards
// are contiguous, ascending, sizes differ by at most one, and
// concatenating them in owner order enumerates every stage exactly once.
func TestCommitPlanCoversEveryStageExactlyOnce(t *testing.T) {
	for p := 1; p <= 8; p++ {
		for owners := 1; owners <= 4; owners++ {
			pl := engine.NewCommitPlan(p, owners)
			if pl.Stages() != p || pl.Owners() != owners {
				t.Fatalf("P=%d owners=%d: plan reports %d stages, %d owners", p, owners, pl.Stages(), pl.Owners())
			}
			next, minSz, maxSz := 0, p, 0
			for r := 0; r < owners; r++ {
				lo, hi := pl.Shard(r)
				if lo != next || hi < lo {
					t.Fatalf("P=%d owners=%d: owner %d shard [%d, %d) not contiguous after %d", p, owners, r, lo, hi, next)
				}
				sz := hi - lo
				if sz < minSz {
					minSz = sz
				}
				if sz > maxSz {
					maxSz = sz
				}
				for st := lo; st < hi; st++ {
					if got := pl.OwnerOf(st); got != r {
						t.Fatalf("P=%d owners=%d: OwnerOf(%d) = %d, want %d", p, owners, st, got, r)
					}
				}
				next = hi
			}
			if next != p {
				t.Fatalf("P=%d owners=%d: shards cover %d stages, want %d", p, owners, next, p)
			}
			if owners <= p && maxSz-minSz > 1 {
				t.Fatalf("P=%d owners=%d: shard sizes span [%d, %d], want balanced within 1", p, owners, minSz, maxSz)
			}
		}
		// More owners than stages: the extras own empty shards, coverage holds.
		pl := engine.NewCommitPlan(p, p+3)
		covered := 0
		for r := 0; r < pl.Owners(); r++ {
			lo, hi := pl.Shard(r)
			covered += hi - lo
		}
		if covered != p {
			t.Fatalf("P=%d owners=%d: shards cover %d stages, want %d", p, p+3, covered, p)
		}
	}
}

// TestCommitPlanCoversEveryParamExactlyOnce lifts the property to
// optimizer parameter indices: under uneven per-stage parameter counts
// (the partition's stage ranges), the owner shards' induced parameter
// ranges still cover every index exactly once — no parameter is stepped
// twice or skipped, for P ∈ {1..8} × R ∈ {1..4}.
func TestCommitPlanCoversEveryParamExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for p := 1; p <= 8; p++ {
		for r := 1; r <= 4; r++ {
			// Uneven stage parameter counts, some stages heavy, none empty.
			stageLo := make([]int, p)
			stageHi := make([]int, p)
			n := 0
			for st := 0; st < p; st++ {
				stageLo[st] = n
				n += 1 + rng.Intn(5)
				stageHi[st] = n
			}
			steps := make([]int, n) // times each param index is stepped
			pl := engine.NewCommitPlan(p, r)
			for o := 0; o < pl.Owners(); o++ {
				lo, hi := pl.Shard(o)
				for st := lo; st < hi; st++ {
					for i := stageLo[st]; i < stageHi[st]; i++ {
						steps[i]++
					}
				}
			}
			for i, k := range steps {
				if k != 1 {
					t.Fatalf("P=%d R=%d: param %d stepped %d times, want exactly once", p, r, i, k)
				}
			}
		}
	}
}

// TestCommitPlanRejectsDegenerateInputs pins the constructor's contract.
func TestCommitPlanRejectsDegenerateInputs(t *testing.T) {
	for _, tc := range []struct{ p, owners int }{{0, 1}, {1, 0}, {-1, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCommitPlan(%d, %d) did not panic", tc.p, tc.owners)
				}
			}()
			engine.NewCommitPlan(tc.p, tc.owners)
		}()
	}
}
