package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pipemare/internal/engine"
	"pipemare/internal/engine/concurrent"
)

// fakeHost checks the Host ordering contract at call time: installs must
// precede the forward slot, the backward slot must follow it, restores
// must complete before the commit phases, and the commit phases must run
// in prepare → scale → step → finish order. It is safe for concurrent use
// so the same harness validates both engines.
type fakeHost struct {
	mu     sync.Mutex
	p      int
	async  bool
	rec    bool
	badAt  int // microbatch index whose loss is "bad" (-1: never)
	micro  int
	errs   []string
	losses []float64

	installed []bool
	recomped  []bool
	restored  []bool
	forwarded bool
	backward  bool
	prepared  int
	scaled    int
	stepped   bool
	finished  int
	mb        int // microbatches seen this minibatch
}

func newFakeHost(p int, async, rec bool, badAt int) *fakeHost {
	return &fakeHost{p: p, async: async, rec: rec, badAt: badAt,
		installed: make([]bool, p), recomped: make([]bool, p), restored: make([]bool, p)}
}

func (f *fakeHost) errf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}

func (f *fakeHost) Stages() int     { return f.p }
func (f *fakeHost) Async() bool     { return f.async }
func (f *fakeHost) Recompute() bool { return f.rec }
func (f *fakeHost) MicroBase() int  { return f.micro }

func (f *fakeHost) InstallForward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.async {
		f.errf("InstallForward during a synchronous epoch")
	}
	if f.forwarded {
		f.errf("InstallForward(stage %d) after the forward slot", stage)
	}
	f.installed[stage] = true
}

func (f *fakeHost) InstallBackward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.installed[stage] {
		f.errf("InstallBackward(stage %d) before InstallForward", stage)
	}
}

func (f *fakeHost) InstallRecompute(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.rec {
		f.errf("InstallRecompute with recompute disabled")
	}
	if !f.forwarded {
		f.errf("InstallRecompute(stage %d) before the forward slot", stage)
	}
	f.recomped[stage] = true
}

func (f *fakeHost) Restore(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restored[stage] = true
	f.installed[stage] = false
}

func (f *fakeHost) Forward(mb []int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.async && !f.forwarded {
		for st, ok := range f.installed {
			if !ok {
				f.errf("forward slot before InstallForward(stage %d)", st)
			}
		}
	}
	if f.rec && f.forwarded {
		// Second (recompute) forward: every stage must have re-installed.
		for st, ok := range f.recomped {
			if !ok {
				f.errf("recompute forward before InstallRecompute(stage %d)", st)
			}
		}
	}
	f.forwarded = true
	loss := 1.0
	if f.mb == f.badAt {
		loss = 1e12
	}
	f.losses = append(f.losses, loss)
	return loss
}

func (f *fakeHost) Backward() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.forwarded {
		f.errf("backward slot before forward")
	}
	f.backward = true
	f.forwarded = false
	f.recomped = make([]bool, f.p)
	f.mb++
}

func (f *fakeHost) BadLoss(loss float64) bool { return loss > 1e6 }

func (f *fakeHost) PrepareStage(stage, nMicro int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.restored[stage] {
		f.errf("PrepareStage(%d) before Restore", stage)
	}
	if !f.backward {
		f.errf("PrepareStage(%d) with no backward slot in the minibatch", stage)
	}
	f.prepared++
	return float64(stage + 1) // distinct partials: checks the reduction
}

func (f *fakeHost) ClipScale(sumSq float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	want := float64(f.p*(f.p+1)) / 2
	if sumSq != want {
		f.errf("ClipScale sum %g, want stage-ordered %g", sumSq, want)
	}
	return 0.5
}

func (f *fakeHost) ScaleStage(stage int, scale float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prepared != f.p {
		f.errf("ScaleStage(%d) before every PrepareStage", stage)
	}
	if scale != 0.5 {
		f.errf("ScaleStage scale %g, want 0.5", scale)
	}
	f.scaled++
}

func (f *fakeHost) StepAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prepared != f.p || f.scaled != f.p {
		f.errf("StepAll before prepare/scale completed (%d/%d)", f.prepared, f.scaled)
	}
	f.stepped = true
}

func (f *fakeHost) FinishStage(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.stepped {
		f.errf("FinishStage(%d) before StepAll", stage)
	}
	f.finished++
}

func engines() map[string]engine.Engine {
	return map[string]engine.Engine{
		"reference":  engine.NewReference(),
		"concurrent": concurrent.New(),
	}
}

func micros(n, sz int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, sz)
	}
	return out
}

func TestEnginesHonourHostOrderingContract(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			f := newFakeHost(5, true, true, -1)
			loss, err := eng.Minibatch(context.Background(), f, micros(4, 2))
			if lc, ok := eng.(engine.Lifecycle); ok {
				lc.Stop()
			}
			if err != nil {
				t.Fatal(err)
			}
			if loss != 1.0 {
				t.Fatalf("mean loss %g, want 1", loss)
			}
			if len(f.errs) > 0 {
				t.Fatalf("ordering violations: %v", f.errs)
			}
			// Two forward slots per microbatch (recompute on), 4 microbatches.
			if len(f.losses) != 8 {
				t.Fatalf("forward slots = %d, want 8", len(f.losses))
			}
			if f.finished != f.p || f.mb != 4 {
				t.Fatalf("finished %d stages, %d microbatches", f.finished, f.mb)
			}
		})
	}
}

func TestEnginesReportDivergence(t *testing.T) {
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			f := newFakeHost(3, true, false, 1)
			_, err := eng.Minibatch(context.Background(), f, micros(4, 2))
			if lc, ok := eng.(engine.Lifecycle); ok {
				lc.Stop()
			}
			if !errors.Is(err, engine.ErrDiverged) {
				t.Fatalf("error = %v, want ErrDiverged", err)
			}
			for st, ok := range f.restored {
				if !ok {
					t.Fatalf("stage %d not restored after divergence", st)
				}
			}
			if f.stepped || f.prepared > 0 {
				t.Fatal("no commit phase may run after divergence")
			}
			// The bad microbatch is index 1: exactly 2 forward slots ran.
			if len(f.losses) != 2 {
				t.Fatalf("forward slots = %d, want 2", len(f.losses))
			}
		})
	}
}

func TestEnginesHonourContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			f := newFakeHost(2, false, false, -1)
			_, err := eng.Minibatch(ctx, f, micros(2, 2))
			if lc, ok := eng.(engine.Lifecycle); ok {
				lc.Stop()
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			if len(f.losses) != 0 {
				t.Fatal("no forward slot may run after cancellation")
			}
		})
	}
}
