package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pipemare/internal/engine"
	"pipemare/internal/engine/concurrent"
	"pipemare/internal/engine/replicated"
)

// fakeHost checks the Host ordering contract at call time: installs must
// precede the stage's forward slot, a microbatch's slots must run in chain
// order (forward climbing 0..P−1, backward descending P−1..0, bracketed by
// BeginMicro/EndMicro), restores must complete before the commit phases,
// and the commit phases must run in prepare → scale → step → finish order.
// It is safe for concurrent use so the same harness validates both
// engines, and it records the peak number of in-flight microbatches so
// tests can pin the overlap behaviour.
type fakeHost struct {
	mu    sync.Mutex
	p     int
	async bool
	rec   bool
	split bool
	badAt int // microbatch index whose loss is "bad" (-1: never)

	fwdInst  []bool // per stage: forward/recompute weights installed since last restore
	restored []bool

	open        map[int]*microState
	maxInFlight int
	completed   int
	losses      []float64 // last-stage losses in arrival order
	sawBwd      bool

	prepared, scaled, finished int
	stepBegun                  bool
	stepped                    []bool // per stage: StepStage ran this commit

	errs []string
}

type microState struct {
	k       int
	fwdNext int // next stage whose forward slot should run
	climbs  int // completed forward climbs
	bwdNext int // next stage whose backward slot should run (-1: descent not started)
}

func newFakeHost(p int, async, rec, split bool, badAt int) *fakeHost {
	return &fakeHost{p: p, async: async, rec: rec, split: split, badAt: badAt,
		fwdInst: make([]bool, p), restored: make([]bool, p),
		stepped: make([]bool, p),
		open:    map[int]*microState{}}
}

func (f *fakeHost) errf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}

func (f *fakeHost) Stages() int      { return f.p }
func (f *fakeHost) Async() bool      { return f.async }
func (f *fakeHost) Recompute() bool  { return f.rec }
func (f *fakeHost) MicroBase() int   { return 0 }
func (f *fakeHost) Splittable() bool { return f.split }

func (f *fakeHost) InstallForward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.async {
		f.errf("InstallForward during a synchronous epoch")
	}
	f.fwdInst[stage] = true
}

func (f *fakeHost) InstallBackward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fwdInst[stage] {
		f.errf("InstallBackward(stage %d) before InstallForward", stage)
	}
}

func (f *fakeHost) InstallRecompute(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.rec {
		f.errf("InstallRecompute with recompute disabled")
	}
	f.fwdInst[stage] = true
}

func (f *fakeHost) Restore(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restored[stage] = true
	f.fwdInst[stage] = false
}

func (f *fakeHost) BeginMicro(s int, mb []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.open[s]; ok {
		f.errf("BeginMicro(%d) while already in flight", s)
	}
	f.open[s] = &microState{k: s, bwdNext: -1}
	if len(f.open) > f.maxInFlight {
		f.maxInFlight = len(f.open)
	}
}

func (f *fakeHost) StageForward(s, stage int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	ms := f.open[s]
	if ms == nil {
		f.errf("StageForward(%d, %d) without BeginMicro", s, stage)
		return 0
	}
	if f.async && !f.fwdInst[stage] {
		f.errf("forward slot (%d, %d) before the stage's install", s, stage)
	}
	if ms.fwdNext != stage {
		f.errf("forward slot (%d, %d) out of chain order (want stage %d)", s, stage, ms.fwdNext)
	}
	ms.fwdNext++
	if stage == f.p-1 {
		ms.fwdNext = 0
		ms.climbs++
		loss := 1.0
		if ms.climbs == 1 {
			if s == f.badAt {
				loss = 1e12
			}
			f.losses = append(f.losses, loss)
		}
		return loss
	}
	return 0
}

func (f *fakeHost) StageBackward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ms := f.open[s]
	if ms == nil {
		f.errf("StageBackward(%d, %d) without BeginMicro", s, stage)
		return
	}
	if ms.bwdNext == -1 {
		wantClimbs := 1
		if f.async && f.rec {
			wantClimbs = 2
		}
		if ms.climbs != wantClimbs {
			f.errf("backward of %d after %d forward climbs, want %d", s, ms.climbs, wantClimbs)
		}
		ms.bwdNext = f.p - 1
	}
	if stage != ms.bwdNext {
		f.errf("backward slot (%d, %d) out of chain order (want stage %d)", s, stage, ms.bwdNext)
	}
	ms.bwdNext--
	if ms.bwdNext < 0 {
		f.sawBwd = true
	}
}

func (f *fakeHost) EndMicro(s int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.open[s]; !ok {
		f.errf("EndMicro(%d) without BeginMicro", s)
		return
	}
	delete(f.open, s)
	f.completed++
}

func (f *fakeHost) BadLoss(loss float64) bool { return loss > 1e6 }

func (f *fakeHost) PrepareStage(stage, nMicro int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.restored[stage] {
		f.errf("PrepareStage(%d) before Restore", stage)
	}
	if len(f.open) > 0 {
		f.errf("PrepareStage(%d) with %d microbatches still in flight", stage, len(f.open))
	}
	if !f.sawBwd {
		f.errf("PrepareStage(%d) with no backward slot in the minibatch", stage)
	}
	f.prepared++
	return float64(stage + 1) // distinct partials: checks the reduction
}

func (f *fakeHost) ClipScale(sumSq float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	want := float64(f.p*(f.p+1)) / 2
	if sumSq != want {
		f.errf("ClipScale sum %g, want stage-ordered %g", sumSq, want)
	}
	return 0.5
}

func (f *fakeHost) ScaleStage(stage int, scale float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prepared != f.p {
		f.errf("ScaleStage(%d) before every PrepareStage", stage)
	}
	if scale != 0.5 {
		f.errf("ScaleStage scale %g, want 0.5", scale)
	}
	f.scaled++
}

func (f *fakeHost) BeginStep() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prepared != f.p || f.scaled != f.p {
		f.errf("BeginStep before prepare/scale completed (%d/%d)", f.prepared, f.scaled)
	}
	if f.stepBegun {
		f.errf("BeginStep called twice in one commit")
	}
	f.stepBegun = true
}

func (f *fakeHost) StepStage(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.stepBegun {
		f.errf("StepStage(%d) before BeginStep", stage)
	}
	if f.stepped[stage] {
		f.errf("StepStage(%d) called twice in one commit", stage)
	}
	f.stepped[stage] = true
}

func (f *fakeHost) FinishStage(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.stepped[stage] {
		f.errf("FinishStage(%d) before its StepStage", stage)
	}
	f.finished++
}

func engines() map[string]engine.Engine {
	// The replicated engine degenerates to its inner engine when the host
	// is not a replica leader (fakeHost is plain), so including it here
	// pins that passthrough against the full ordering contract.
	return map[string]engine.Engine{
		"reference":             engine.NewReference(),
		"concurrent":            concurrent.New(),
		"replicated(reference)": replicated.New(),
		"replicated(concurrent)": replicated.New(
			replicated.WithInner(func() engine.Engine { return concurrent.New() })),
	}
}

func micros(n, sz int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, sz)
	}
	return out
}

func TestEnginesHonourHostOrderingContract(t *testing.T) {
	for name, eng := range engines() {
		for _, split := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/split=%v", name, split), func(t *testing.T) {
				f := newFakeHost(5, true, true, split, -1)
				loss, err := eng.Minibatch(context.Background(), f, micros(4, 2))
				if lc, ok := eng.(engine.Lifecycle); ok {
					lc.Stop()
				}
				if err != nil {
					t.Fatal(err)
				}
				if loss != 1.0 {
					t.Fatalf("mean loss %g, want 1", loss)
				}
				if len(f.errs) > 0 {
					t.Fatalf("ordering violations: %v", f.errs)
				}
				if len(f.losses) != 4 || f.completed != 4 {
					t.Fatalf("losses %d, completed %d, want 4/4", len(f.losses), f.completed)
				}
				if f.finished != f.p {
					t.Fatalf("finished %d stages, want %d", f.finished, f.p)
				}
			})
		}
	}
}

// TestConcurrentEngineOverlapsMicrobatches pins the point of the stage-split
// refactor: with a splittable host the concurrent engine keeps P
// microbatches in flight, while a monolithic host caps the pipeline at one.
func TestConcurrentEngineOverlapsMicrobatches(t *testing.T) {
	for _, tc := range []struct {
		split bool
		want  int
	}{{true, 4}, {false, 1}} {
		eng := concurrent.New()
		f := newFakeHost(4, true, false, tc.split, -1)
		if _, err := eng.Minibatch(context.Background(), f, micros(8, 2)); err != nil {
			t.Fatal(err)
		}
		eng.Stop()
		if len(f.errs) > 0 {
			t.Fatalf("split=%v: ordering violations: %v", tc.split, f.errs)
		}
		if f.maxInFlight != tc.want {
			t.Fatalf("split=%v: max in flight = %d, want %d", tc.split, f.maxInFlight, tc.want)
		}
	}
	// The reference engine is serial regardless.
	f := newFakeHost(4, true, false, true, -1)
	if _, err := engine.NewReference().Minibatch(context.Background(), f, micros(8, 2)); err != nil {
		t.Fatal(err)
	}
	if f.maxInFlight != 1 {
		t.Fatalf("reference max in flight = %d, want 1", f.maxInFlight)
	}
}

func TestEnginesReportDivergence(t *testing.T) {
	for name, eng := range engines() {
		for _, split := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/split=%v", name, split), func(t *testing.T) {
				f := newFakeHost(3, true, false, split, 1)
				_, err := eng.Minibatch(context.Background(), f, micros(4, 2))
				if lc, ok := eng.(engine.Lifecycle); ok {
					lc.Stop()
				}
				if !errors.Is(err, engine.ErrDiverged) {
					t.Fatalf("error = %v, want ErrDiverged", err)
				}
				if len(f.errs) > 0 {
					t.Fatalf("ordering violations: %v", f.errs)
				}
				for st, ok := range f.restored {
					if !ok {
						t.Fatalf("stage %d not restored after divergence", st)
					}
				}
				if f.stepBegun || f.prepared > 0 {
					t.Fatal("no commit phase may run after divergence")
				}
				// The bad microbatch is index 1: exactly 2 losses were
				// computed (later in-flight chains are aborted).
				if len(f.losses) != 2 {
					t.Fatalf("computed losses = %d, want 2", len(f.losses))
				}
				if len(f.open) != 0 {
					t.Fatalf("%d microbatches left in flight after divergence", len(f.open))
				}
			})
		}
	}
}

func TestEnginesHonourContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, eng := range engines() {
		t.Run(name, func(t *testing.T) {
			f := newFakeHost(2, false, false, true, -1)
			_, err := eng.Minibatch(ctx, f, micros(2, 2))
			if lc, ok := eng.(engine.Lifecycle); ok {
				lc.Stop()
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			if len(f.losses) != 0 {
				t.Fatal("no forward slot may run after cancellation")
			}
			if len(f.open) != 0 {
				t.Fatalf("%d microbatches left in flight after cancellation", len(f.open))
			}
		})
	}
}
