// Package concurrent implements the work-stealing stage-scheduler engine:
// W workers (WithWorkers, default min(P, GOMAXPROCS)) drain per-stage run
// queues of microbatch slot jobs on the §2 slot schedule — a forward token
// climbs stage 1→P installing each stage's delayed weights and running
// that stage's forward segment, an optional recompute token climbs again
// with the Appendix D recompute versions, and a backward token descends
// P→1 re-installing each stage's weights and running its backward segment.
//
// A stage is a serialization domain, never a pinned goroutine: each stage
// owns a FIFO job queue, and an idle worker claims an entire *stage* (the
// queue's active flag guarantees at most one worker drains a stage at a
// time), runs its queued slots in order, and releases it. Workers
// therefore load-balance across stages automatically — with P ≫ cores the
// engine no longer pays for P mostly-idle goroutines, and a cost-balanced
// partition (pipeline.PartitionGroupsByCost) keeps the per-stage queues
// comparably heavy. With a stage-split task (core.StageTask), up to P
// microbatch chains are in flight at once — a real fill/drain pipeline.
//
// Determinism is preserved for every worker count because scheduling
// freedom never reorders a serialization domain: jobs enter a stage's
// queue in microbatch order (stage 0 from the in-order dispatcher, stage
// i+1 from stage i's in-order drain), the claiming worker runs them in
// FIFO order, and the active flag forbids two workers inside one stage —
// so per-stage per-parameter gradient accumulation is serial in s exactly
// as in the serial Reference engine. Weight installs happen per slot
// immediately before the segment that reads them; the commit phase runs
// through an engine.CommitPlan that shards the P stages contiguously
// across the W workers — every phase, optimizer step (Host.StepStage)
// included, is shard-parallel and the stage-partial norms are reduced in
// stage order; and microbatch losses are summed in microbatch order from
// the result collector. Training curves are therefore bit-identical to Reference for
// every W ∈ {1..P} — pinned by the equivalence tests at the repository
// root. Monolithic tasks (Host.Splittable() == false) cap the pipeline at
// one chain in flight; compute runs in the boundary stages' slots and the
// parallelism comes from the stage-parallel commit phase and the
// row-parallel dense kernels (tensor.SetWorkers).
package concurrent

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"pipemare/internal/engine"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
)

type jobKind int

const (
	jobFwd     jobKind = iota // climb: install forward+backward weights, run the stage's forward segment
	jobRecomp                 // climb: install recompute versions, rerun the stage's forward segment
	jobBwd                    // descend: re-install, run the stage's backward segment
	jobRestore                // broadcast: restore master weights
	jobPrepare                // commit shard: average grads, T2 snapshot, partial norms
	jobScale                  // commit shard: apply the global clip factor
	jobStep                   // commit shard: optimizer update for the stages' param ranges
	jobFinish                 // commit shard: T2 update, version push, zero grads
)

type job struct {
	kind   jobKind
	s      int // global microbatch counter
	k      int // index within the minibatch (loss ordering)
	async  bool
	rec    bool // recompute path active for this microbatch
	loss   float64
	bad    bool
	scale  float64
	nMicro int
	lo, hi int // commit jobs: the plan shard [lo, hi) of stages to process
}

// stageQueue is one stage's FIFO run queue. active marks the stage as
// claimed by a worker: between the claim and the release only that worker
// pops jobs, so the stage's slots execute serially in arrival order no
// matter which workers touch the stage over time.
type stageQueue struct {
	mu     sync.Mutex
	jobs   []job
	head   int
	active bool
}

// Engine is the work-stealing stage-scheduler engine. It implements
// engine.Engine and engine.Lifecycle; a Trainer starts the workers at the
// beginning of a run and stops them when the run returns. An Engine
// instance must not be shared by concurrently running trainers.
type Engine struct {
	kernelWorkers int
	workers       int // requested W; 0 = min(P, GOMAXPROCS)

	h        engine.Host
	p        int
	nw       int // workers actually started
	inflight int // microbatch chains allowed in flight (P, or 1 when monolithic)
	plan     engine.CommitPlan
	queues   []stageQueue
	ready    chan int // stages with queued work and no claiming worker
	results  chan job
	acks     chan struct{}
	aborted  atomic.Bool // set on the first bad loss: later chains skip compute
	wg       sync.WaitGroup
	running  bool

	losses []float64 // per-minibatch scratch, reused across calls
	sumSqs []float64

	// rec and tracks carry the run's trace recorder (nil when tracing is
	// off — every emission no-ops). tracks[w] is worker w's span buffer:
	// exactly one goroutine (worker w) writes it, so appends need no
	// locking, and the recorder never influences scheduling — curves are
	// bit-identical with tracing on or off.
	rec    *trace.Recorder
	tracks []*trace.Track
}

// Option configures the engine.
type Option func(*Engine)

// WithKernelWorkers sets how many goroutines the dense tensor kernels may
// use while the engine is running (default: GOMAXPROCS).
func WithKernelWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.kernelWorkers = n
	}
}

// WithWorkers sets W, the number of scheduler workers draining the stage
// queues (default: min(P, GOMAXPROCS)). Any W produces bit-identical
// curves; W only changes how many stages make progress simultaneously, so
// more workers than stages is clamped to P.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.workers = n
	}
}

// New returns a work-stealing stage-scheduler engine.
func New(opts ...Option) *Engine {
	e := &Engine{kernelWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name identifies the engine.
func (e *Engine) Name() string { return "concurrent" }

// Workers returns the configured worker count (0 = auto).
func (e *Engine) Workers() int { return e.workers }

// Start spawns the scheduler workers and raises the kernel parallelism for
// the duration of the run.
func (e *Engine) Start(h engine.Host) {
	if e.running {
		if e.h == h {
			return
		}
		e.Stop()
	}
	e.h = h
	e.p = h.Stages()
	e.inflight = 1
	if h.Splittable() {
		e.inflight = e.p
	}
	e.nw = e.workers
	if e.nw == 0 {
		e.nw = runtime.GOMAXPROCS(0)
	}
	if e.nw > e.p {
		e.nw = e.p
	}
	if e.nw < 1 {
		e.nw = 1
	}
	e.plan = engine.NewCommitPlan(e.p, e.nw)
	e.queues = make([]stageQueue, e.p)
	// Each stage is "ready" at most once (the active flag), so capacity P
	// makes every send non-blocking.
	e.ready = make(chan int, e.p)
	e.results = make(chan job, e.inflight)
	e.acks = make(chan struct{}, e.p)
	e.losses = make([]float64, 0, e.inflight)
	e.sumSqs = make([]float64, e.p)
	rec, rep := trace.FromCarrier(h)
	e.rec = rec
	e.tracks = make([]*trace.Track, e.nw)
	for i := range e.tracks {
		e.tracks[i] = rec.Track(rep, trace.TidWorkerBase+i, "worker "+strconv.Itoa(i))
	}
	e.wg.Add(e.nw)
	for i := 0; i < e.nw; i++ {
		go e.worker(i)
	}
	tensor.RaiseWorkers(e.kernelWorkers)
	e.running = true
}

// Stop joins the workers and restores the kernel parallelism. All queues
// are empty between minibatches (Minibatch drains every chain and commit
// phase before returning), so closing the ready channel releases every
// worker.
func (e *Engine) Stop() {
	if !e.running {
		return
	}
	close(e.ready)
	e.wg.Wait()
	tensor.LowerWorkers()
	e.queues, e.ready, e.results, e.acks = nil, nil, nil, nil
	e.losses, e.sumSqs = nil, nil
	e.rec, e.tracks = nil, nil
	e.h = nil
	e.running = false
}

// enqueue appends a job to a stage's queue and, when no worker currently
// claims the stage, marks it ready. FIFO append order is microbatch order
// for every producer (the dispatcher and upstream stage drains are both
// in-order), which is what makes any worker interleaving deterministic.
func (e *Engine) enqueue(stage int, jb job) {
	q := &e.queues[stage]
	q.mu.Lock()
	q.jobs = append(q.jobs, jb)
	wake := !q.active
	if wake {
		q.active = true
	}
	q.mu.Unlock()
	if wake {
		e.ready <- stage
	}
}

// worker claims ready stages and drains them until the engine stops. w
// is the worker's index — its identity for commit-plan sharding stayed
// implicit, but its trace track needs it explicitly (goroutines have no
// usable id).
func (e *Engine) worker(w int) {
	defer e.wg.Done()
	for i := range e.ready {
		e.drain(w, i)
	}
}

// drain runs the claimed stage's queued jobs in FIFO order until the
// queue is empty, then releases the claim. While the claim is held this
// goroutine is the only one touching the stage's installed weight
// pointers, T2 accumulators, version ring and parameter gradients — the
// same ownership the goroutine-per-stage design provided, held per burst
// instead of per run.
func (e *Engine) drain(w, i int) {
	q := &e.queues[i]
	for {
		q.mu.Lock()
		if q.head == len(q.jobs) {
			q.jobs = q.jobs[:0]
			q.head = 0
			q.active = false
			q.mu.Unlock()
			return
		}
		jb := q.jobs[q.head]
		q.head++
		q.mu.Unlock()
		e.process(w, i, jb)
	}
}

// process executes one slot job of stage i on worker w, emitting one
// trace span per executed compute slot or commit shard phase.
func (e *Engine) process(w, i int, jb job) {
	last := e.p - 1
	tk := e.tracks[w]
	switch jb.kind {
	case jobFwd:
		if !e.aborted.Load() {
			t0 := e.rec.Now()
			if jb.async {
				e.h.InstallForward(jb.s, i)
				e.h.InstallBackward(jb.s, i)
			}
			jb.loss = e.h.StageForward(jb.s, i)
			tk.Span(trace.NameFwd, t0, i, jb.s, 0)
		}
		if i < last {
			e.enqueue(i+1, jb)
			return
		}
		e.crest(w, i, jb)
	case jobRecomp:
		if !e.aborted.Load() {
			t0 := e.rec.Now()
			e.h.InstallRecompute(jb.s, i)
			e.h.StageForward(jb.s, i)
			tk.Span(trace.NameRecompute, t0, i, jb.s, 0)
		}
		if i < last {
			e.enqueue(i+1, jb)
			return
		}
		e.bwd(w, i, jb)
	case jobBwd:
		e.bwd(w, i, jb)
	case jobRestore:
		e.h.Restore(i)
		e.acks <- struct{}{}
	case jobPrepare:
		// Commit-shard jobs run on the claiming worker of their first
		// stage but touch every stage of the shard: all chains have
		// drained, so no other job can reference those stages.
		t0 := e.rec.Now()
		for st := jb.lo; st < jb.hi; st++ {
			e.sumSqs[st] = e.h.PrepareStage(st, jb.nMicro)
		}
		tk.Span(trace.NameCommitPrepare, t0, jb.lo, -1, 0)
		e.acks <- struct{}{}
	case jobScale:
		t0 := e.rec.Now()
		for st := jb.lo; st < jb.hi; st++ {
			e.h.ScaleStage(st, jb.scale)
		}
		tk.Span(trace.NameCommitScale, t0, jb.lo, -1, 0)
		e.acks <- struct{}{}
	case jobStep:
		t0 := e.rec.Now()
		for st := jb.lo; st < jb.hi; st++ {
			e.h.StepStage(st)
		}
		tk.Span(trace.NameCommitStep, t0, jb.lo, -1, 0)
		e.acks <- struct{}{}
	case jobFinish:
		t0 := e.rec.Now()
		for st := jb.lo; st < jb.hi; st++ {
			e.h.FinishStage(st)
		}
		tk.Span(trace.NameCommitFinish, t0, jb.lo, -1, 0)
		e.acks <- struct{}{}
	}
}

// crest handles the top of a forward climb at the last stage: the loss
// check, then either the divergence abort, the recompute climb, or the
// start of the backward descent.
func (e *Engine) crest(w, i int, jb job) {
	if e.aborted.Load() {
		// A previous microbatch diverged: this chain ends without a
		// backward pass; its loss is ignored by the collector.
		e.h.EndMicro(jb.s)
		e.results <- jb
		return
	}
	if e.h.BadLoss(jb.loss) {
		jb.bad = true
		e.aborted.Store(true)
		e.h.EndMicro(jb.s)
		e.results <- jb
		return
	}
	if jb.async && jb.rec {
		if e.p == 1 {
			// Single stage: run the recompute slot inline, then backward.
			t0 := e.rec.Now()
			e.h.InstallRecompute(jb.s, 0)
			e.h.StageForward(jb.s, 0)
			e.tracks[w].Span(trace.NameRecompute, t0, 0, jb.s, 0)
			e.bwd(w, 0, jb)
			return
		}
		jb.kind = jobRecomp
		e.enqueue(0, jb)
		return
	}
	e.bwd(w, i, jb)
}

// bwd runs stage i's backward slot for the chain and passes it down; at
// stage 0 the chain completes. Each slot re-installs the weights its
// backward reads — other chains' forward slots may have re-pointed the
// stage's parameters since this microbatch's forward ran.
func (e *Engine) bwd(w, i int, jb job) {
	if !e.aborted.Load() {
		t0 := e.rec.Now()
		if jb.async {
			if jb.rec {
				e.h.InstallRecompute(jb.s, i)
			} else {
				e.h.InstallForward(jb.s, i)
			}
			e.h.InstallBackward(jb.s, i)
		}
		e.h.StageBackward(jb.s, i)
		e.tracks[w].Span(trace.NameBwd, t0, i, jb.s, 0)
	}
	if i > 0 {
		jb.kind = jobBwd
		e.enqueue(i-1, jb)
		return
	}
	e.h.EndMicro(jb.s)
	e.results <- jb
}

// Minibatch executes the N microbatch chains with up to `inflight` of them
// overlapping across the stage queues, then runs the stage-parallel commit
// phase — including the sharded optimizer step, so no phase of a minibatch
// is serial in P.
func (e *Engine) Minibatch(ctx context.Context, h engine.Host, micros [][]int) (float64, error) {
	if !e.running || e.h != h {
		e.Start(h)
	}
	e.aborted.Store(false)
	async := h.Async()
	rec := h.Recompute()
	base := h.MicroBase()
	n := len(micros)
	losses := e.losses[:0]
	for len(losses) < n {
		losses = append(losses, 0)
	}
	e.losses = losses
	dispatched, completed := 0, 0
	badK := -1
	var ctxErr error
	for {
		for dispatched < n && dispatched-completed < e.inflight && badK < 0 && ctxErr == nil {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break
			}
			h.BeginMicro(base+dispatched, micros[dispatched])
			e.enqueue(0, job{kind: jobFwd, s: base + dispatched, k: dispatched, async: async, rec: rec})
			dispatched++
		}
		if completed == dispatched {
			if dispatched == n || badK >= 0 || ctxErr != nil {
				break
			}
		}
		res := <-e.results
		completed++
		losses[res.k] = res.loss
		if res.bad && badK < 0 {
			badK = res.k
		}
	}

	// Every chain has drained. Restore all stages to the master weights
	// before committing (or before handing a divergence/cancellation back
	// to the trainer, which restores-by-contract too).
	e.broadcast(job{kind: jobRestore})
	if ctxErr != nil {
		return 0, ctxErr
	}
	if badK >= 0 {
		return math.Inf(1), engine.ErrDiverged
	}
	lossSum := 0.0
	for _, l := range losses[:n] {
		lossSum += l
	}

	// Commit via the commit plan: the P stages shard contiguously across
	// the W workers (one owner-shard job per worker and phase, instead of
	// P per-stage jobs), with a barrier between phases — shard-parallel
	// prepare, the stage-ordered clip reduction, the step-clock advance,
	// the sharded optimizer step, then shard-parallel finalization.
	e.shardcast(job{kind: jobPrepare, nMicro: n})
	sumSq := 0.0
	for _, s := range e.sumSqs {
		sumSq += s
	}
	if scale := h.ClipScale(sumSq); scale != 1 {
		e.shardcast(job{kind: jobScale, scale: scale})
	}
	h.BeginStep()
	e.shardcast(job{kind: jobStep})
	e.shardcast(job{kind: jobFinish})
	return lossSum / float64(n), nil
}

// broadcast sends one job to every stage queue and waits for all acks.
func (e *Engine) broadcast(jb job) {
	for i := 0; i < e.p; i++ {
		e.enqueue(i, jb)
	}
	for i := 0; i < e.p; i++ {
		<-e.acks
	}
}

// shardcast sends one commit-phase job per owner shard of the commit plan
// (enqueued on the shard's first stage) and waits for all acks — the
// within-pipeline instantiation of the stage→owner commit sharding the
// replica layer uses across machines.
func (e *Engine) shardcast(jb job) {
	owners := 0
	for r := 0; r < e.plan.Owners(); r++ {
		lo, hi := e.plan.Shard(r)
		if lo == hi {
			continue
		}
		jb.lo, jb.hi = lo, hi
		e.enqueue(lo, jb)
		owners++
	}
	for ; owners > 0; owners-- {
		<-e.acks
	}
}
