// Package concurrent implements the goroutine-per-stage execution engine:
// a worker per pipeline stage owns that stage's parameters, weight
// versions and technique state, and job tokens flow between neighbouring
// workers through bounded channels on the §2 slot schedule — forward
// tokens climb stage 1→P installing each stage's delayed weights, backward
// tokens descend P→1 (installing the Appendix D recompute versions on the
// way) until the first stage runs the backward slot, and restore tokens
// climb again returning every stage to its master weights.
//
// Because the model substrate (internal/nn) is monolithic — activations
// are cached inside layers, so one microbatch's forward/backward cannot
// overlap another's — the compute slots execute on the worker that owns
// the boundary stage, and the engine's parallelism comes from two places:
// the commit phase (gradient averaging, clipping reduction, T2 velocity
// updates, weight-version snapshots) runs stage-parallel across all P
// workers, and the dense kernels split their output rows across goroutines
// (tensor.SetWorkers) for the duration of the run. Both sources are
// deterministic: every floating-point accumulation happens in the same
// order as the serial Reference engine, so training curves are
// bit-identical — pinned by the equivalence tests at the repository root.
package concurrent

import (
	"context"
	"math"
	"runtime"
	"sync"

	"pipemare/internal/engine"
	"pipemare/internal/tensor"
)

type jobKind int

const (
	jobUp      jobKind = iota // climb: install forward+backward weights
	jobDown                   // descend: recompute installs, backward at stage 1
	jobRestore                // climb: restore master weights, report result
	jobPrepare                // commit: average grads, T2 snapshot, partial norm
	jobScale                  // commit: apply the global clip factor
	jobFinish                 // commit: T2 update, version push, zero grads
)

type job struct {
	kind   jobKind
	s      int   // global microbatch counter
	mb     []int // microbatch sample indices
	async  bool
	rec    bool // recompute path active for this microbatch
	loss   float64
	bad    bool
	scale  float64
	nMicro int
}

type ack struct {
	stage int
	sumSq float64
}

// Engine is the concurrent stage-worker engine. It implements
// engine.Engine and engine.Lifecycle; a Trainer starts the workers at the
// beginning of a run and stops them when the run returns. An Engine
// instance must not be shared by concurrently running trainers.
type Engine struct {
	kernelWorkers int

	h       engine.Host
	p       int
	jobs    []chan job
	results chan job
	acks    chan ack
	wg      sync.WaitGroup
	running bool
}

// Option configures the engine.
type Option func(*Engine)

// WithKernelWorkers sets how many goroutines the dense tensor kernels may
// use while the engine is running (default: GOMAXPROCS).
func WithKernelWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.kernelWorkers = n
	}
}

// New returns a concurrent stage-worker engine.
func New(opts ...Option) *Engine {
	e := &Engine{kernelWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name identifies the engine.
func (e *Engine) Name() string { return "concurrent" }

// Start spawns one worker per pipeline stage and raises the kernel
// parallelism for the duration of the run.
func (e *Engine) Start(h engine.Host) {
	if e.running {
		if e.h == h {
			return
		}
		e.Stop()
	}
	e.h = h
	e.p = h.Stages()
	e.jobs = make([]chan job, e.p)
	for i := range e.jobs {
		e.jobs[i] = make(chan job, 1)
	}
	e.results = make(chan job, 1)
	e.acks = make(chan ack, e.p)
	e.wg.Add(e.p)
	for i := 0; i < e.p; i++ {
		go e.worker(i)
	}
	tensor.RaiseWorkers(e.kernelWorkers)
	e.running = true
}

// Stop joins the stage workers and restores the kernel parallelism.
func (e *Engine) Stop() {
	if !e.running {
		return
	}
	for i := range e.jobs {
		close(e.jobs[i])
	}
	e.wg.Wait()
	tensor.LowerWorkers()
	e.jobs, e.results, e.acks = nil, nil, nil
	e.h = nil
	e.running = false
}

// worker owns stage i: only this goroutine touches the stage's installed
// weight pointers, T2 accumulators and version ring while the engine runs.
func (e *Engine) worker(i int) {
	defer e.wg.Done()
	for jb := range e.jobs[i] {
		switch jb.kind {
		case jobUp:
			if jb.async {
				e.h.InstallForward(jb.s, i)
				e.h.InstallBackward(jb.s, i)
			}
			if i < e.p-1 {
				e.jobs[i+1] <- jb
				continue
			}
			// Last stage: the forward slot of the (monolithic) substrate.
			jb.loss = e.h.Forward(jb.mb)
			jb.bad = e.h.BadLoss(jb.loss)
			e.down(i, jb)
		case jobDown:
			e.down(i, jb)
		case jobRestore:
			e.h.Restore(i)
			if i < e.p-1 {
				e.jobs[i+1] <- jb
			} else {
				e.results <- jb
			}
		case jobPrepare:
			e.acks <- ack{i, e.h.PrepareStage(i, jb.nMicro)}
		case jobScale:
			e.h.ScaleStage(i, jb.scale)
			e.acks <- ack{stage: i}
		case jobFinish:
			e.h.FinishStage(i)
			e.acks <- ack{stage: i}
		}
	}
}

// down handles stage i's duties on the descending pass and, at stage 1
// (index 0), the backward slot followed by the start of the restore climb.
func (e *Engine) down(i int, jb job) {
	if jb.async && jb.rec && !jb.bad {
		e.h.InstallRecompute(jb.s, i)
	}
	if i > 0 {
		jb.kind = jobDown
		e.jobs[i-1] <- jb
		return
	}
	if !jb.bad {
		if jb.async && jb.rec {
			// Recompute pass: regenerate activations with the recompute-
			// delayed weights before backprop (Appendix D).
			e.h.Forward(jb.mb)
		}
		e.h.Backward()
	}
	jb.kind = jobRestore
	e.h.Restore(0)
	if e.p == 1 {
		e.results <- jb
	} else {
		e.jobs[1] <- jb
	}
}

// Minibatch executes the N microbatches on the stage workers and runs the
// stage-parallel commit phase.
func (e *Engine) Minibatch(ctx context.Context, h engine.Host, micros [][]int) (float64, error) {
	if !e.running || e.h != h {
		e.Start(h)
	}
	async := h.Async()
	rec := h.Recompute()
	base := h.MicroBase()
	lossSum := 0.0
	for k, mb := range micros {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		e.jobs[0] <- job{kind: jobUp, s: base + k, mb: mb, async: async, rec: rec}
		res := <-e.results
		lossSum += res.loss
		if res.bad {
			return math.Inf(1), engine.ErrDiverged
		}
	}

	// Commit: stage-parallel prepare, the stage-ordered clip reduction,
	// the (global) optimizer step, then stage-parallel finalization.
	sumSqs := make([]float64, e.p)
	e.broadcast(job{kind: jobPrepare, nMicro: len(micros)}, func(a ack) { sumSqs[a.stage] = a.sumSq })
	sumSq := 0.0
	for _, s := range sumSqs {
		sumSq += s
	}
	if scale := h.ClipScale(sumSq); scale != 1 {
		e.broadcast(job{kind: jobScale, scale: scale}, nil)
	}
	h.StepAll()
	e.broadcast(job{kind: jobFinish}, nil)
	return lossSum / float64(len(micros)), nil
}

// broadcast sends one job to every stage worker and waits for all acks,
// optionally folding them.
func (e *Engine) broadcast(jb job, fold func(ack)) {
	for i := 0; i < e.p; i++ {
		e.jobs[i] <- jb
	}
	for i := 0; i < e.p; i++ {
		a := <-e.acks
		if fold != nil {
			fold(a)
		}
	}
}
