// Package concurrent implements the goroutine-per-stage execution engine:
// a worker per pipeline stage owns that stage's parameters, weight
// versions and technique state, and microbatch chains flow between
// neighbouring workers through bounded channels on the §2 slot schedule —
// a forward token climbs stage 1→P installing each stage's delayed weights
// and running that stage's forward segment, an optional recompute token
// climbs again with the Appendix D recompute versions, and a backward
// token descends P→1 re-installing each stage's weights and running its
// backward segment.
//
// With a stage-split task (core.StageTask), up to P microbatch chains are
// in flight at once, so all P workers compute simultaneously on different
// microbatches — a real fill/drain pipeline. Determinism is preserved
// because every accumulation site is owned by exactly one worker and sees
// the same order as the serial Reference engine: a stage's backward tokens
// arrive in microbatch order (they descend from a single upstream worker),
// so per-stage per-parameter gradient accumulation is serial in s; weight
// installs happen per slot immediately before the segment that reads
// them; the commit phase reduces stage-partial norms in stage order; and
// microbatch losses are summed in microbatch order from the result
// collector. Training curves are therefore bit-identical to Reference —
// pinned by the equivalence tests at the repository root. Monolithic
// tasks (Host.Splittable() == false) cap the pipeline at one chain in
// flight, which reduces to the previous engine behaviour: compute runs in
// the boundary stages' slots and the parallelism comes from the
// stage-parallel commit phase and the row-parallel dense kernels
// (tensor.SetWorkers).
package concurrent

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"pipemare/internal/engine"
	"pipemare/internal/tensor"
)

type jobKind int

const (
	jobFwd     jobKind = iota // climb: install forward+backward weights, run the stage's forward segment
	jobRecomp                 // climb: install recompute versions, rerun the stage's forward segment
	jobBwd                    // descend: re-install, run the stage's backward segment
	jobRestore                // broadcast: restore master weights
	jobPrepare                // commit: average grads, T2 snapshot, partial norm
	jobScale                  // commit: apply the global clip factor
	jobFinish                 // commit: T2 update, version push, zero grads
)

type job struct {
	kind   jobKind
	s      int // global microbatch counter
	k      int // index within the minibatch (loss ordering)
	async  bool
	rec    bool // recompute path active for this microbatch
	loss   float64
	bad    bool
	scale  float64
	nMicro int
}

type ack struct {
	stage int
	sumSq float64
}

// Engine is the concurrent stage-worker engine. It implements
// engine.Engine and engine.Lifecycle; a Trainer starts the workers at the
// beginning of a run and stops them when the run returns. An Engine
// instance must not be shared by concurrently running trainers.
type Engine struct {
	kernelWorkers int

	h        engine.Host
	p        int
	inflight int // microbatch chains allowed in flight (P, or 1 when monolithic)
	jobs     []chan job
	results  chan job
	acks     chan ack
	aborted  atomic.Bool // set on the first bad loss: later chains skip compute
	wg       sync.WaitGroup
	running  bool
}

// Option configures the engine.
type Option func(*Engine)

// WithKernelWorkers sets how many goroutines the dense tensor kernels may
// use while the engine is running (default: GOMAXPROCS).
func WithKernelWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.kernelWorkers = n
	}
}

// New returns a concurrent stage-worker engine.
func New(opts ...Option) *Engine {
	e := &Engine{kernelWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Name identifies the engine.
func (e *Engine) Name() string { return "concurrent" }

// Start spawns one worker per pipeline stage and raises the kernel
// parallelism for the duration of the run.
func (e *Engine) Start(h engine.Host) {
	if e.running {
		if e.h == h {
			return
		}
		e.Stop()
	}
	e.h = h
	e.p = h.Stages()
	e.inflight = 1
	if h.Splittable() {
		e.inflight = e.p
	}
	e.jobs = make([]chan job, e.p)
	for i := range e.jobs {
		e.jobs[i] = make(chan job, e.inflight)
	}
	e.results = make(chan job, e.inflight)
	e.acks = make(chan ack, e.p)
	e.wg.Add(e.p)
	for i := 0; i < e.p; i++ {
		go e.worker(i)
	}
	tensor.RaiseWorkers(e.kernelWorkers)
	e.running = true
}

// Stop joins the stage workers and restores the kernel parallelism.
func (e *Engine) Stop() {
	if !e.running {
		return
	}
	for i := range e.jobs {
		close(e.jobs[i])
	}
	e.wg.Wait()
	tensor.LowerWorkers()
	e.jobs, e.results, e.acks = nil, nil, nil
	e.h = nil
	e.running = false
}

// worker owns stage i: only this goroutine touches the stage's installed
// weight pointers, T2 accumulators, version ring and parameter gradients
// while the engine runs, and it processes its slots in arrival order — so
// every per-stage accumulation happens in microbatch order.
func (e *Engine) worker(i int) {
	defer e.wg.Done()
	last := e.p - 1
	for jb := range e.jobs[i] {
		switch jb.kind {
		case jobFwd:
			if !e.aborted.Load() {
				if jb.async {
					e.h.InstallForward(jb.s, i)
					e.h.InstallBackward(jb.s, i)
				}
				jb.loss = e.h.StageForward(jb.s, i)
			}
			if i < last {
				e.jobs[i+1] <- jb
				continue
			}
			e.crest(i, jb)
		case jobRecomp:
			if !e.aborted.Load() {
				e.h.InstallRecompute(jb.s, i)
				e.h.StageForward(jb.s, i)
			}
			if i < last {
				e.jobs[i+1] <- jb
				continue
			}
			e.bwd(i, jb)
		case jobBwd:
			e.bwd(i, jb)
		case jobRestore:
			e.h.Restore(i)
			e.acks <- ack{stage: i}
		case jobPrepare:
			e.acks <- ack{i, e.h.PrepareStage(i, jb.nMicro)}
		case jobScale:
			e.h.ScaleStage(i, jb.scale)
			e.acks <- ack{stage: i}
		case jobFinish:
			e.h.FinishStage(i)
			e.acks <- ack{stage: i}
		}
	}
}

// crest handles the top of a forward climb at the last stage: the loss
// check, then either the divergence abort, the recompute climb, or the
// start of the backward descent.
func (e *Engine) crest(i int, jb job) {
	if e.aborted.Load() {
		// A previous microbatch diverged: this chain ends without a
		// backward pass; its loss is ignored by the collector.
		e.h.EndMicro(jb.s)
		e.results <- jb
		return
	}
	if e.h.BadLoss(jb.loss) {
		jb.bad = true
		e.aborted.Store(true)
		e.h.EndMicro(jb.s)
		e.results <- jb
		return
	}
	if jb.async && jb.rec {
		if e.p == 1 {
			// Single stage: run the recompute slot inline, then backward.
			e.h.InstallRecompute(jb.s, 0)
			e.h.StageForward(jb.s, 0)
			e.bwd(0, jb)
			return
		}
		jb.kind = jobRecomp
		e.jobs[0] <- jb
		return
	}
	e.bwd(i, jb)
}

// bwd runs stage i's backward slot for the chain and passes it down; at
// stage 0 the chain completes. Each slot re-installs the weights its
// backward reads — other chains' forward slots may have re-pointed the
// stage's parameters since this microbatch's forward ran.
func (e *Engine) bwd(i int, jb job) {
	if !e.aborted.Load() {
		if jb.async {
			if jb.rec {
				e.h.InstallRecompute(jb.s, i)
			} else {
				e.h.InstallForward(jb.s, i)
			}
			e.h.InstallBackward(jb.s, i)
		}
		e.h.StageBackward(jb.s, i)
	}
	if i > 0 {
		jb.kind = jobBwd
		e.jobs[i-1] <- jb
		return
	}
	e.h.EndMicro(jb.s)
	e.results <- jb
}

// Minibatch executes the N microbatch chains with up to `inflight` of them
// overlapping across the stage workers, then runs the stage-parallel
// commit phase.
func (e *Engine) Minibatch(ctx context.Context, h engine.Host, micros [][]int) (float64, error) {
	if !e.running || e.h != h {
		e.Start(h)
	}
	e.aborted.Store(false)
	async := h.Async()
	rec := h.Recompute()
	base := h.MicroBase()
	n := len(micros)
	losses := make([]float64, n)
	dispatched, completed := 0, 0
	badK := -1
	var ctxErr error
	for {
		for dispatched < n && dispatched-completed < e.inflight && badK < 0 && ctxErr == nil {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				break
			}
			h.BeginMicro(base+dispatched, micros[dispatched])
			e.jobs[0] <- job{kind: jobFwd, s: base + dispatched, k: dispatched, async: async, rec: rec}
			dispatched++
		}
		if completed == dispatched {
			if dispatched == n || badK >= 0 || ctxErr != nil {
				break
			}
		}
		res := <-e.results
		completed++
		losses[res.k] = res.loss
		if res.bad && badK < 0 {
			badK = res.k
		}
	}

	// Every chain has drained. Restore all stages to the master weights
	// before committing (or before handing a divergence/cancellation back
	// to the trainer, which restores-by-contract too).
	e.broadcast(job{kind: jobRestore}, nil)
	if ctxErr != nil {
		return 0, ctxErr
	}
	if badK >= 0 {
		return math.Inf(1), engine.ErrDiverged
	}
	lossSum := 0.0
	for _, l := range losses {
		lossSum += l
	}

	// Commit: stage-parallel prepare, the stage-ordered clip reduction,
	// the (global) optimizer step, then stage-parallel finalization.
	sumSqs := make([]float64, e.p)
	e.broadcast(job{kind: jobPrepare, nMicro: n}, func(a ack) { sumSqs[a.stage] = a.sumSq })
	sumSq := 0.0
	for _, s := range sumSqs {
		sumSq += s
	}
	if scale := h.ClipScale(sumSq); scale != 1 {
		e.broadcast(job{kind: jobScale, scale: scale}, nil)
	}
	h.StepAll()
	e.broadcast(job{kind: jobFinish}, nil)
	return lossSum / float64(n), nil
}

// broadcast sends one job to every stage worker and waits for all acks,
// optionally folding them.
func (e *Engine) broadcast(jb job, fold func(ack)) {
	for i := 0; i < e.p; i++ {
		e.jobs[i] <- jb
	}
	for i := 0; i < e.p; i++ {
		a := <-e.acks
		if fold != nil {
			fold(a)
		}
	}
}
