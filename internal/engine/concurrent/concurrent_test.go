package concurrent

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipemare/internal/tensor"
)

// stubHost is the minimal Host needed to start workers.
type stubHost struct{ p int }

func (s *stubHost) Stages() int                   { return s.p }
func (s *stubHost) Async() bool                   { return false }
func (s *stubHost) Recompute() bool               { return false }
func (s *stubHost) MicroBase() int                { return 0 }
func (s *stubHost) Splittable() bool              { return true }
func (s *stubHost) InstallForward(_, _ int)       {}
func (s *stubHost) InstallBackward(_, _ int)      {}
func (s *stubHost) InstallRecompute(_, _ int)     {}
func (s *stubHost) Restore(int)                   {}
func (s *stubHost) BeginMicro(int, []int)         {}
func (s *stubHost) StageForward(_, _ int) float64 { return 0 }
func (s *stubHost) StageBackward(_, _ int)        {}
func (s *stubHost) EndMicro(int)                  {}
func (s *stubHost) BadLoss(float64) bool          { return false }
func (s *stubHost) PrepareStage(_, _ int) float64 { return 0 }
func (s *stubHost) ClipScale(float64) float64     { return 1 }
func (s *stubHost) ScaleStage(int, float64)       {}
func (s *stubHost) BeginStep()                    {}
func (s *stubHost) StepStage(int)                 {}
func (s *stubHost) FinishStage(int)               {}

func TestOptionsAndName(t *testing.T) {
	if New().Name() != "concurrent" {
		t.Fatal("engine name wrong")
	}
	e := New(WithKernelWorkers(0))
	if e.kernelWorkers != 1 {
		t.Fatalf("WithKernelWorkers(0) must clamp to 1, got %d", e.kernelWorkers)
	}
	if e := New(WithKernelWorkers(6)); e.kernelWorkers != 6 {
		t.Fatalf("kernel workers = %d, want 6", e.kernelWorkers)
	}
}

func TestStopWithoutStartIsANoOp(t *testing.T) {
	e := New()
	e.Stop() // must not panic or wedge
	e.Stop()
}

func TestStartStopRestoresKernelWorkers(t *testing.T) {
	prev := tensor.SetWorkers(3)
	defer tensor.SetWorkers(prev)
	e := New(WithKernelWorkers(7))
	e.Start(&stubHost{p: 3})
	if tensor.Workers() != 7 {
		t.Fatalf("Start must raise kernel workers to 7, got %d", tensor.Workers())
	}
	e.Stop()
	if tensor.Workers() != 3 {
		t.Fatalf("Stop must restore kernel workers to 3, got %d", tensor.Workers())
	}
}

func TestOverlappingEnginesKeepKernelWorkersRaised(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	a := New(WithKernelWorkers(8))
	b := New(WithKernelWorkers(8))
	a.Start(&stubHost{p: 2})
	b.Start(&stubHost{p: 2})
	a.Stop() // b still running: its kernels must stay parallel
	if tensor.Workers() != 8 {
		t.Fatalf("after first Stop: Workers() = %d, want 8", tensor.Workers())
	}
	b.Stop()
	if tensor.Workers() != 1 {
		t.Fatalf("after last Stop: Workers() = %d, want 1", tensor.Workers())
	}
}

func TestWithWorkersOption(t *testing.T) {
	if e := New(WithWorkers(3)); e.workers != 3 {
		t.Fatalf("workers = %d, want 3", e.workers)
	}
	if e := New(WithWorkers(-2)); e.workers != 0 {
		t.Fatalf("WithWorkers(-2) must clamp to auto, got %d", e.workers)
	}
	// Auto resolves to min(P, GOMAXPROCS); explicit W > P clamps to P.
	e := New(WithWorkers(64))
	e.Start(&stubHost{p: 3})
	if e.nw != 3 {
		t.Fatalf("started %d workers for P=3, want 3", e.nw)
	}
	e.Stop()
	e = New()
	e.Start(&stubHost{p: 16})
	want := runtime.GOMAXPROCS(0)
	if want > 16 {
		want = 16
	}
	if e.nw != want {
		t.Fatalf("auto workers = %d, want min(P, GOMAXPROCS) = %d", e.nw, want)
	}
	e.Stop()
}

// exclusionHost records, for every stage, whether two slots of that stage
// ever overlapped in time — the stage-as-serialization-domain invariant —
// and whether a stage's slots arrived out of microbatch order.
type exclusionHost struct {
	p      int
	inSlot []atomic.Int32 // per stage: slots currently executing

	mu         sync.Mutex
	violations []string
	lastFwd    []int // per stage: last forward s seen
	lastBwd    []int // per stage: last backward s seen
}

func newExclusionHost(p int) *exclusionHost {
	h := &exclusionHost{p: p, inSlot: make([]atomic.Int32, p),
		lastFwd: make([]int, p), lastBwd: make([]int, p)}
	for i := range h.lastFwd {
		h.lastFwd[i], h.lastBwd[i] = -1, -1
	}
	return h
}

func (h *exclusionHost) violate(msg string) {
	h.mu.Lock()
	h.violations = append(h.violations, msg)
	h.mu.Unlock()
}

// enter/leave bracket a stage slot, spinning briefly so a scheduler bug
// that lets two workers into one stage actually overlaps.
func (h *exclusionHost) enter(stage int) {
	if h.inSlot[stage].Add(1) != 1 {
		h.violate("two slots of one stage ran concurrently")
	}
	time.Sleep(50 * time.Microsecond)
}
func (h *exclusionHost) leave(stage int) { h.inSlot[stage].Add(-1) }

func (h *exclusionHost) Stages() int                { return h.p }
func (h *exclusionHost) Async() bool                { return true }
func (h *exclusionHost) Recompute() bool            { return false }
func (h *exclusionHost) MicroBase() int             { return 0 }
func (h *exclusionHost) Splittable() bool           { return true }
func (h *exclusionHost) InstallForward(s, st int)   { h.enter(st); h.leave(st) }
func (h *exclusionHost) InstallBackward(s, st int)  { h.enter(st); h.leave(st) }
func (h *exclusionHost) InstallRecompute(s, st int) {}
func (h *exclusionHost) Restore(st int)             { h.enter(st); h.leave(st) }
func (h *exclusionHost) BeginMicro(int, []int)      {}

func (h *exclusionHost) StageForward(s, st int) float64 {
	h.enter(st)
	defer h.leave(st)
	h.mu.Lock()
	if s <= h.lastFwd[st] {
		h.violations = append(h.violations, "forward slots out of microbatch order")
	}
	h.lastFwd[st] = s
	h.mu.Unlock()
	return 0.5
}

func (h *exclusionHost) StageBackward(s, st int) {
	h.enter(st)
	defer h.leave(st)
	h.mu.Lock()
	if s <= h.lastBwd[st] {
		h.violations = append(h.violations, "backward slots out of microbatch order")
	}
	h.lastBwd[st] = s
	h.mu.Unlock()
}

func (h *exclusionHost) EndMicro(int)         {}
func (h *exclusionHost) BadLoss(float64) bool { return false }
func (h *exclusionHost) PrepareStage(st, n int) float64 {
	h.enter(st)
	defer h.leave(st)
	return 0
}
func (h *exclusionHost) ClipScale(float64) float64    { return 1 }
func (h *exclusionHost) ScaleStage(st int, f float64) {}
func (h *exclusionHost) BeginStep()                   {}
func (h *exclusionHost) StepStage(st int) {
	h.enter(st)
	h.leave(st)
}
func (h *exclusionHost) FinishStage(st int) {
	h.enter(st)
	h.leave(st)
}

// TestStageSlotsNeverOverlap pins the scheduler's core invariant under
// maximal contention: many workers, many stages, deep overlap — yet no
// two slots of one stage may ever run concurrently, and each stage's
// forward/backward sequences stay in microbatch order.
func TestStageSlotsNeverOverlap(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{1, 2, 4, 8} {
		h := newExclusionHost(6)
		e := New(WithWorkers(workers), WithKernelWorkers(1))
		micros := make([][]int, 24)
		for i := range micros {
			micros[i] = []int{i}
		}
		for mb := 0; mb < 3; mb++ {
			if _, err := e.Minibatch(context.Background(), h, micros); err != nil {
				t.Fatal(err)
			}
			for i := range h.lastFwd {
				h.lastFwd[i], h.lastBwd[i] = -1, -1
			}
		}
		e.Stop()
		if len(h.violations) > 0 {
			t.Fatalf("W=%d: %d violations, first: %s", workers, len(h.violations), h.violations[0])
		}
	}
}
