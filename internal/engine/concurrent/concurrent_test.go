package concurrent

import (
	"testing"

	"pipemare/internal/tensor"
)

// stubHost is the minimal Host needed to start workers.
type stubHost struct{ p int }

func (s *stubHost) Stages() int                   { return s.p }
func (s *stubHost) Async() bool                   { return false }
func (s *stubHost) Recompute() bool               { return false }
func (s *stubHost) MicroBase() int                { return 0 }
func (s *stubHost) Splittable() bool              { return true }
func (s *stubHost) InstallForward(_, _ int)       {}
func (s *stubHost) InstallBackward(_, _ int)      {}
func (s *stubHost) InstallRecompute(_, _ int)     {}
func (s *stubHost) Restore(int)                   {}
func (s *stubHost) BeginMicro(int, []int)         {}
func (s *stubHost) StageForward(_, _ int) float64 { return 0 }
func (s *stubHost) StageBackward(_, _ int)        {}
func (s *stubHost) EndMicro(int)                  {}
func (s *stubHost) BadLoss(float64) bool          { return false }
func (s *stubHost) PrepareStage(_, _ int) float64 { return 0 }
func (s *stubHost) ClipScale(float64) float64     { return 1 }
func (s *stubHost) ScaleStage(int, float64)       {}
func (s *stubHost) StepAll()                      {}
func (s *stubHost) FinishStage(int)               {}

func TestOptionsAndName(t *testing.T) {
	if New().Name() != "concurrent" {
		t.Fatal("engine name wrong")
	}
	e := New(WithKernelWorkers(0))
	if e.kernelWorkers != 1 {
		t.Fatalf("WithKernelWorkers(0) must clamp to 1, got %d", e.kernelWorkers)
	}
	if e := New(WithKernelWorkers(6)); e.kernelWorkers != 6 {
		t.Fatalf("kernel workers = %d, want 6", e.kernelWorkers)
	}
}

func TestStopWithoutStartIsANoOp(t *testing.T) {
	e := New()
	e.Stop() // must not panic or wedge
	e.Stop()
}

func TestStartStopRestoresKernelWorkers(t *testing.T) {
	prev := tensor.SetWorkers(3)
	defer tensor.SetWorkers(prev)
	e := New(WithKernelWorkers(7))
	e.Start(&stubHost{p: 3})
	if tensor.Workers() != 7 {
		t.Fatalf("Start must raise kernel workers to 7, got %d", tensor.Workers())
	}
	e.Stop()
	if tensor.Workers() != 3 {
		t.Fatalf("Stop must restore kernel workers to 3, got %d", tensor.Workers())
	}
}

func TestOverlappingEnginesKeepKernelWorkersRaised(t *testing.T) {
	prev := tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	a := New(WithKernelWorkers(8))
	b := New(WithKernelWorkers(8))
	a.Start(&stubHost{p: 2})
	b.Start(&stubHost{p: 2})
	a.Stop() // b still running: its kernels must stay parallel
	if tensor.Workers() != 8 {
		t.Fatalf("after first Stop: Workers() = %d, want 8", tensor.Workers())
	}
	b.Stop()
	if tensor.Workers() != 1 {
		t.Fatalf("after last Stop: Workers() = %d, want 1", tensor.Workers())
	}
}
