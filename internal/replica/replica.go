// Package replica implements the coordination layer for multi-replica
// data-parallel training: R pipeline replicas (each a full trainer weight
// partition driven by its own inner execution engine) split a minibatch's
// microbatches between them, and a deterministic tree all-reduce folds the
// per-microbatch gradients into the leader replica before one shared
// optimizer step, whose result is broadcast back to the followers — the
// PipeDream-style hybrid of pipeline and data parallelism.
//
// # Determinism
//
// The reduction is bit-identical to a single-replica run over the same
// global microbatch set, for any R. Three properties make that possible:
//
//  1. Chunks are contiguous and ordered: replica r computes global
//     microbatches [start_r, start_r+n_r) with start_{r+1} = start_r+n_r,
//     so concatenating the replicas' per-microbatch gradient lists in
//     replica order reproduces the global microbatch order.
//  2. Followers export one gradient per (microbatch, stage), computed
//     into a zeroed accumulator. By the nn accumulation contract (see
//     nn.Param.Grad), a layer adds its whole per-call contribution with
//     exactly one add per element, so the exported value is bitwise the
//     same scalar a serial run would have added to its running sum.
//  3. The all-reduce gathers the followers' ordered lists up a binary
//     tree (a communication schedule with no arithmetic) and performs
//     every floating-point add at the root: the leader — whose own chunk
//     is the fold's prefix, accumulated in place — folds the gathered
//     gradients in global microbatch order, one add per element.
//
// The fold order is therefore a pure left fold over microbatches 0..N−1
// regardless of R or tree shape — exactly the serial engine's order.
package replica

import (
	"sync"

	"pipemare/internal/engine"
	"pipemare/internal/tensor"
)

// Member is one replica's trainer-side surface: the engine.Host that
// drives its pipeline plus the gradient/weight exchange operations the
// replica layer needs. It is implemented by internal/core.Trainer's host.
type Member interface {
	engine.Host
	// TakeStageGrads moves the stage's accumulated parameter gradients
	// into bufs (allocating buffers when bufs is nil) and zeroes the
	// stage's accumulators. It must only be called from the goroutine
	// that owns the stage's slots.
	TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor
	// FoldStageGrads adds previously exported buffers into the stage's
	// accumulators with exactly one add per element.
	FoldStageGrads(stage int, bufs []*tensor.Tensor)
	// SyncFromLeader imports the leader replica's post-step state —
	// master weights and technique (T2) accumulators — and pushes the
	// replica's next per-stage weight version, keeping the follower's
	// version queue aligned with the leader's.
	SyncFromLeader()
}

// Leader extends Member for the replica that owns the followers (the
// trainer the user built with WithReplicas(R)).
type Leader interface {
	Member
	// Replicas returns the total replica count R (1 when replication is
	// off).
	Replicas() int
	// Follower returns follower r's member surface, 1 ≤ r < Replicas().
	Follower(r int) Member
}

// Aware marks execution engines that understand the replica surface and
// drive all R replicas of a Leader host. The trainer refuses a
// non-replica-aware engine when replication is configured, because such
// an engine would silently train only the leader.
type Aware interface {
	DrivesReplicas()
}

// Group coordinates one leader and its followers for a replicated
// execution engine: it owns the per-replica compute wrappers, splits each
// minibatch into contiguous per-replica chunks, and runs the reduce and
// broadcast phases around the leader's commit.
type Group struct {
	lead    Leader
	members []*Compute // members[0] wraps the leader
}

// NewGroup builds the coordination group for a leader and its followers.
func NewGroup(lead Leader) *Group {
	r := lead.Replicas()
	g := &Group{lead: lead, members: make([]*Compute, r)}
	g.members[0] = newCompute(lead, true)
	for i := 1; i < r; i++ {
		g.members[i] = newCompute(lead.Follower(i), false)
	}
	return g
}

// Replicas returns R.
func (g *Group) Replicas() int { return len(g.members) }

// Member returns replica r's compute wrapper — the engine.Host an inner
// engine drives for that replica's share of a minibatch.
func (g *Group) Member(r int) engine.Host { return g.members[r] }

// Begin prepares the group for one minibatch: it splits the N microbatch
// index sets into R contiguous, ordered chunks (sizes differing by at
// most one), snapshots the leader's epoch phase (async) and microbatch
// base, and resets the per-replica loss and gradient staging. It returns
// the chunk for each replica.
func (g *Group) Begin(micros [][]int) [][][]int {
	r := len(g.members)
	n := len(micros)
	base := g.lead.MicroBase()
	async := g.lead.Async()
	chunks := make([][][]int, r)
	lo := 0
	for i := 0; i < r; i++ {
		sz := n / r
		if i < n%r {
			sz++
		}
		chunks[i] = micros[lo : lo+sz]
		g.members[i].begin(base+lo, sz, async)
		lo += sz
	}
	return chunks
}

// Reduce performs the deterministic tree all-reduce: a binary-tree gather
// of the followers' ordered per-microbatch gradient lists (rounds of
// pairwise list handoffs — the communication schedule), then the root
// fold into the leader's accumulators in global microbatch order. Stages
// are folded concurrently; within a stage the order is fixed, so the
// result is bit-identical to serial single-replica accumulation.
func (g *Group) Reduce() {
	r := len(g.members)
	// Tree gather: at round d, member m (m ≡ 0 mod 2d) absorbs member
	// m+d's ordered list. Chunks are contiguous, so concatenation in
	// replica order preserves global microbatch order.
	lists := make([][][][]*tensor.Tensor, r)
	for i := 1; i < r; i++ {
		// Full-slice expression: appends during the gather must reallocate
		// rather than scribble over the member's pooled staging entries.
		lists[i] = g.members[i].grads[:g.members[i].n:g.members[i].n]
	}
	for d := 1; d < r; d *= 2 {
		for m := 0; m+d < r; m += 2 * d {
			lists[m] = append(lists[m], lists[m+d]...)
			lists[m+d] = nil
		}
	}
	// Root fold, one goroutine per stage (stages touch disjoint params).
	p := g.lead.Stages()
	var wg sync.WaitGroup
	wg.Add(p)
	for st := 0; st < p; st++ {
		st := st
		go func() {
			defer wg.Done()
			for _, micro := range lists[0] {
				g.lead.FoldStageGrads(st, micro[st])
			}
		}()
	}
	wg.Wait()
}

// Broadcast pushes the leader's post-step state to every follower
// (concurrently: followers write disjoint state and only read the
// leader's).
func (g *Group) Broadcast() {
	var wg sync.WaitGroup
	for _, m := range g.members[1:] {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.member.SyncFromLeader()
		}()
	}
	wg.Wait()
}

// LossSum folds the per-microbatch losses in global microbatch order —
// replica chunks are contiguous, so replica order then chunk order is the
// serial order — and returns the sum (the caller divides by N).
func (g *Group) LossSum() float64 {
	sum := 0.0
	for _, m := range g.members {
		for _, l := range m.losses[:m.n] {
			sum += l
		}
	}
	return sum
}

// Compute is the per-replica host wrapper a replicated engine hands to
// that replica's inner engine. It delegates the pipeline slots to the
// replica's member surface, overrides the minibatch framing (global
// microbatch base, leader's epoch phase), captures per-microbatch losses,
// exports per-(microbatch, stage) gradients on followers, and turns the
// commit phase into a no-op — the commit belongs to the replicated engine
// after the all-reduce.
type Compute struct {
	member Member
	leader bool
	p      int

	// Per-minibatch state, written by begin before the inner engine runs
	// and read by its workers (happens-before via the engine's channels).
	start  int // global microbatch counter of the chunk start
	n      int // chunk length
	async  bool
	losses []float64
	taken  []bool
	grads  [][][]*tensor.Tensor // [k][stage][param] exported grads (followers)
}

func newCompute(m Member, leader bool) *Compute {
	return &Compute{member: m, leader: leader, p: m.Stages()}
}

// begin resets the wrapper for a chunk of n microbatches starting at
// global counter start.
func (c *Compute) begin(start, n int, async bool) {
	c.start, c.n, c.async = start, n, async
	for len(c.losses) < n {
		c.losses = append(c.losses, 0)
		c.taken = append(c.taken, false)
	}
	for k := 0; k < n; k++ {
		c.losses[k] = 0
		c.taken[k] = false
	}
	if !c.leader {
		for len(c.grads) < n {
			c.grads = append(c.grads, make([][]*tensor.Tensor, c.p))
		}
	}
}

// Stages returns P.
func (c *Compute) Stages() int { return c.p }

// Async reports the leader's epoch phase: followers never advance their
// own epoch clock, so the leader's view is authoritative for all
// replicas.
func (c *Compute) Async() bool { return c.async }

// Recompute delegates to the replica (same configuration as the leader).
func (c *Compute) Recompute() bool { return c.member.Recompute() }

// MicroBase returns the global microbatch counter of this replica's
// chunk, so every slot sees the same global s as a single-replica run.
func (c *Compute) MicroBase() int { return c.start }

// Splittable delegates to the replica's task.
func (c *Compute) Splittable() bool { return c.member.Splittable() }

// InstallForward delegates to the replica.
func (c *Compute) InstallForward(s, stage int) { c.member.InstallForward(s, stage) }

// InstallBackward delegates to the replica.
func (c *Compute) InstallBackward(s, stage int) { c.member.InstallBackward(s, stage) }

// InstallRecompute delegates to the replica.
func (c *Compute) InstallRecompute(s, stage int) { c.member.InstallRecompute(s, stage) }

// Restore delegates to the replica.
func (c *Compute) Restore(stage int) { c.member.Restore(stage) }

// BeginMicro delegates to the replica.
func (c *Compute) BeginMicro(s int, mb []int) { c.member.BeginMicro(s, mb) }

// StageForward delegates to the replica and records the microbatch's loss
// at the last stage of its first forward climb (a recompute climb returns
// the loss again; first-write-wins keeps the original).
func (c *Compute) StageForward(s, stage int) float64 {
	loss := c.member.StageForward(s, stage)
	if stage == c.p-1 {
		if k := s - c.start; !c.taken[k] {
			c.losses[k] = loss
			c.taken[k] = true
		}
	}
	return loss
}

// StageBackward delegates to the replica and, on followers, immediately
// exports the stage's just-accumulated gradient into the per-microbatch
// staging area (zeroing the stage accumulator, so the next microbatch
// again accumulates from zero). Monolithic tasks run their whole backward
// in stage 0's slot, so that slot exports every stage.
func (c *Compute) StageBackward(s, stage int) {
	c.member.StageBackward(s, stage)
	if c.leader {
		return
	}
	k := s - c.start
	if c.member.Splittable() {
		c.grads[k][stage] = c.member.TakeStageGrads(stage, c.grads[k][stage])
		return
	}
	if stage == 0 {
		for st := 0; st < c.p; st++ {
			c.grads[k][st] = c.member.TakeStageGrads(st, c.grads[k][st])
		}
	}
}

// EndMicro delegates to the replica.
func (c *Compute) EndMicro(s int) { c.member.EndMicro(s) }

// BadLoss delegates to the replica (identical loss cap across replicas).
func (c *Compute) BadLoss(loss float64) bool { return c.member.BadLoss(loss) }

// PrepareStage is a no-op: the commit phase runs once, on the leader,
// after the all-reduce.
func (c *Compute) PrepareStage(stage, nMicro int) float64 { return 0 }

// ClipScale is a no-op (see PrepareStage).
func (c *Compute) ClipScale(sumSq float64) float64 { return 1 }

// ScaleStage is a no-op (see PrepareStage).
func (c *Compute) ScaleStage(stage int, scale float64) {}

// BeginStep is a no-op (see PrepareStage).
func (c *Compute) BeginStep() {}

// StepStage is a no-op (see PrepareStage).
func (c *Compute) StepStage(stage int) {}

// FinishStage is a no-op (see PrepareStage).
func (c *Compute) FinishStage(stage int) {}
