// Package replica implements the coordination layer for multi-replica
// data-parallel training: R pipeline replicas (each a full trainer weight
// partition driven by its own inner execution engine) split a minibatch's
// microbatches between them, and a deterministic tree all-reduce folds the
// per-microbatch gradients into the leader replica before one shared
// optimizer step — the PipeDream-style hybrid of pipeline and data
// parallelism. The step itself commits in one of two modes (Group.Commit):
// leader-serial, with the post-step state broadcast back to the followers,
// or — the default for R > 1 — replica-sharded ZeRO / PipeDream-2BW
// style: an engine.CommitPlan assigns each stage to a replica owner, the
// leader's reduced gradients scatter to their owners, every owner steps
// its shard against its local shard of the optimizer state, and the
// stepped weights all-gather back (the inverted broadcast), so the commit
// tail no longer runs serially on the leader and followers hold no
// redundant optimizer state.
//
// # Determinism
//
// The reduction is bit-identical to a single-replica run over the same
// global microbatch set, for any R. Three properties make that possible:
//
//  1. Chunks are contiguous and ordered: replica r computes global
//     microbatches [start_r, start_r+n_r) with start_{r+1} = start_r+n_r,
//     so concatenating the replicas' per-microbatch gradient lists in
//     replica order reproduces the global microbatch order.
//  2. Followers export one gradient per (microbatch, stage), computed
//     into a zeroed accumulator. By the nn accumulation contract (see
//     nn.Param.Grad), a layer adds its whole per-call contribution with
//     exactly one add per element, so the exported value is bitwise the
//     same scalar a serial run would have added to its running sum.
//  3. The all-reduce gathers the followers' ordered lists up a binary
//     tree (a communication schedule with no arithmetic) and performs
//     every floating-point add at the root: the leader — whose own chunk
//     is the fold's prefix, accumulated in place — folds the gathered
//     gradients in global microbatch order, one add per element.
//
// The fold order is therefore a pure left fold over microbatches 0..N−1
// regardless of R or tree shape — exactly the serial engine's order.
package replica

import (
	"context"
	"fmt"
	"sync"

	"pipemare/internal/engine"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
)

// Member is one replica's trainer-side surface: the engine.Host that
// drives its pipeline plus the gradient/weight/state exchange operations
// the replica layer needs. It is implemented by internal/core.Trainer's
// host.
type Member interface {
	engine.Host
	// TakeStageGrads moves the stage's accumulated parameter gradients
	// into bufs (allocating buffers when bufs is nil) and zeroes the
	// stage's accumulators. It must only be called from the goroutine
	// that owns the stage's slots.
	TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor
	// FoldStageGrads adds previously exported buffers into the stage's
	// accumulators with exactly one add per element.
	FoldStageGrads(stage int, bufs []*tensor.Tensor)
	// SetStageGrads overwrites the stage's gradient accumulators with
	// bufs (a pure copy) — the scatter half of the sharded commit.
	SetStageGrads(stage int, bufs []*tensor.Tensor)
	// StageState returns the stage's live post-step state tensors
	// (masters, then T2 δ and corrected when enabled) in a fixed layout;
	// the returned tensors are read-only for the gather.
	StageState(stage int) []*tensor.Tensor
	// ImportStageState copies a stage's post-step state from the owner's
	// StageState layout and pushes the replica's next weight version for
	// that stage — the gather half of the sharded commit.
	ImportStageState(stage int, src []*tensor.Tensor)
	// SyncEpoch aligns a follower's epoch clock with its leader's so the
	// commit-phase learning rates (T1/T3 phase) agree on every owner.
	SyncEpoch()
	// SyncFromLeader imports the leader replica's post-step state —
	// master weights and technique (T2) accumulators — and pushes the
	// replica's next per-stage weight version, keeping the follower's
	// version queue aligned with the leader's. It is the full-state
	// broadcast of the leader-serial (non-sharded) commit.
	SyncFromLeader()
}

// Leader extends Member for the replica that owns the followers (the
// trainer the user built with WithReplicas(R)).
type Leader interface {
	Member
	// Replicas returns the total replica count R (1 when replication is
	// off).
	Replicas() int
	// Follower returns follower r's member surface, 1 ≤ r < Replicas().
	Follower(r int) Member
	// ShardedStep reports whether the optimizer commit is sharded across
	// the replicas (the ZeRO-style owner protocol) instead of running
	// leader-serial with a full broadcast.
	ShardedStep() bool
	// CommitShards returns the stage→replica owner plan of the sharded
	// commit — the same plan the leader allocated its followers' optimizer
	// moment shards from, so commit ownership and state ownership cannot
	// drift apart.
	CommitShards() engine.CommitPlan
}

// Aware marks execution engines that understand the replica surface and
// drive all R replicas of a Leader host. The trainer refuses a
// non-replica-aware engine when replication is configured, because such
// an engine would silently train only the leader.
type Aware interface {
	DrivesReplicas()
}

// Runner is implemented by members whose microbatch chunk executes out
// of process (transport.RemoteMember): the replicated engine ships the
// whole chunk in one call — the worker drives it through its own inner
// engine — instead of driving the member's pipeline slots locally. The
// returned losses and per-(microbatch, stage) gradient exports are
// exactly what a local follower's Compute wrapper would have captured.
type Runner interface {
	RunChunk(ctx context.Context, start int, async bool, micros [][]int) (losses []float64, grads [][][]*tensor.Tensor, err error)
}

// Erring is implemented by members whose collective operations can fail
// after the fact — remote members latch the first transport error and
// fail every later operation fast. Group checks it after each collective
// phase, so an I/O failure surfaces as a wrapped error from Commit or
// Broadcast instead of a hang or a corrupted step.
type Erring interface {
	Err() error
}

// ContextBinder is implemented by members whose collective operations
// block on I/O: Group binds the minibatch context at Begin so a cancel
// mid-collective unwinds every blocked read and write.
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// Group coordinates one leader and its followers for a replicated
// execution engine: it owns the per-replica compute wrappers, splits each
// minibatch into contiguous per-replica chunks, and runs the reduce and
// commit phases — either the leader-serial commit with a full-state
// broadcast, or (when the leader reports ShardedStep) the replica-sharded
// commit protocol of Commit.
type Group struct {
	lead    Leader
	members []*Compute        // members[0] wraps the leader
	plan    engine.CommitPlan // stage→replica owners (sharded commit)
	serial  engine.CommitPlan // single-owner plan (leader-serial commit)
	sharded bool
	ft      bool // leader trains fault-tolerantly (full moments everywhere)

	scatter [][]*tensor.Tensor // per-stage staging for the grad scatter
	sumSqs  []float64          // per-stage clip-norm partials

	// rec and ctracks carry the leader's trace recorder (nil when tracing
	// is off). ctracks[i] is member i's collectives track: the orchestrator
	// goroutine writes ctracks[0] (reduce, scatter, gather) and each
	// eachMember/Broadcast goroutine writes only its own member's track,
	// with the phases' WaitGroup barriers ordering the handoffs.
	rec     *trace.Recorder
	ctracks []*trace.Track
}

// NewGroup builds the coordination group for a leader and its followers.
func NewGroup(lead Leader) *Group {
	r := lead.Replicas()
	g := &Group{lead: lead, members: make([]*Compute, r)}
	g.members[0] = newCompute(lead, true)
	for i := 1; i < r; i++ {
		g.members[i] = newCompute(lead.Follower(i), false)
	}
	g.plan = lead.CommitShards()
	g.serial = engine.NewCommitPlan(lead.Stages(), 1)
	g.sharded = r > 1 && lead.ShardedStep()
	if ftl, ok := lead.(FaultTolerer); ok {
		g.ft = ftl.FaultTolerant()
	}
	g.rec, _ = trace.FromCarrier(lead)
	g.ctracks = make([]*trace.Track, r)
	for i := range g.ctracks {
		g.ctracks[i] = g.rec.Track(i, trace.TidCollectives, "collectives")
	}
	return g
}

// tensorsBytes sums the payload size a tensor list moves (element count
// times the dtype's width) — called only when tracing is on.
func tensorsBytes(ts []*tensor.Tensor) int64 {
	var n int64
	for _, t := range ts {
		n += int64(t.Bytes())
	}
	return n
}

// Replicas returns R.
func (g *Group) Replicas() int { return len(g.members) }

// Member returns replica r's compute wrapper — the engine.Host an inner
// engine drives for that replica's share of a minibatch.
func (g *Group) Member(r int) engine.Host { return g.members[r] }

// Begin prepares the group for one minibatch: it splits the N microbatch
// index sets into R contiguous, ordered chunks (sizes differing by at
// most one), snapshots the leader's epoch phase (async) and microbatch
// base, resets the per-replica loss and gradient staging, and binds ctx
// into remote members so cancellation reaches their blocking I/O. It
// returns the chunk for each replica.
func (g *Group) Begin(ctx context.Context, micros [][]int) [][][]int {
	r := len(g.members)
	n := len(micros)
	base := g.lead.MicroBase()
	async := g.lead.Async()
	chunks := make([][][]int, r)
	lo := 0
	for i := 0; i < r; i++ {
		sz := n / r
		if i < n%r {
			sz++
		}
		chunks[i] = micros[lo : lo+sz]
		g.members[i].begin(base+lo, sz, async)
		if cb, ok := g.members[i].member.(ContextBinder); ok {
			cb.BindContext(ctx)
		}
		lo += sz
	}
	return chunks
}

// Err returns the first latched member failure (replica I/O errors are
// sticky), wrapped with the replica index, or nil.
func (g *Group) Err() error {
	for i, c := range g.members {
		if e, ok := c.member.(Erring); ok {
			if err := e.Err(); err != nil {
				return fmt.Errorf("replica %d: %w", i, err)
			}
		}
	}
	return nil
}

// Reduce performs the deterministic tree all-reduce: a binary-tree gather
// of the followers' ordered per-microbatch gradient lists (rounds of
// pairwise list handoffs — the communication schedule), then the root
// fold into the leader's accumulators in global microbatch order. Stages
// are folded concurrently; within a stage the order is fixed, so the
// result is bit-identical to serial single-replica accumulation.
func (g *Group) Reduce() {
	r := len(g.members)
	t0 := g.rec.Now()
	// Tree gather: at round d, member m (m ≡ 0 mod 2d) absorbs member
	// m+d's ordered list. Chunks are contiguous, so concatenation in
	// replica order preserves global microbatch order.
	lists := make([][][][]*tensor.Tensor, r)
	for i := 1; i < r; i++ {
		// Full-slice expression: appends during the gather must reallocate
		// rather than scribble over the member's pooled staging entries.
		lists[i] = g.members[i].grads[:g.members[i].n:g.members[i].n]
	}
	for d := 1; d < r; d *= 2 {
		for m := 0; m+d < r; m += 2 * d {
			lists[m] = append(lists[m], lists[m+d]...)
			lists[m+d] = nil
		}
	}
	// Root fold, one goroutine per stage (stages touch disjoint params).
	p := g.lead.Stages()
	var wg sync.WaitGroup
	wg.Add(p)
	for st := 0; st < p; st++ {
		st := st
		go func() {
			defer wg.Done()
			for _, micro := range lists[0] {
				g.lead.FoldStageGrads(st, micro[st])
			}
		}()
	}
	wg.Wait()
	if g.rec != nil {
		var bytes int64
		for _, micro := range lists[0] {
			for _, stage := range micro {
				bytes += tensorsBytes(stage)
			}
		}
		g.ctracks[0].Span(trace.NameReduce, t0, -1, -1, bytes)
	}
}

// Broadcast pushes the leader's post-step state to every follower
// (concurrently: followers write disjoint state and only read the
// leader's). It returns the first follower I/O failure.
func (g *Group) Broadcast() error {
	var wg sync.WaitGroup
	for j, m := range g.members[1:] {
		m, tk := m, g.ctracks[j+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := tk.Now()
			m.member.SyncFromLeader()
			tk.Span(trace.NameBroadcast, t0, -1, -1, 0)
		}()
	}
	wg.Wait()
	return g.Err()
}

// Commit commits one shared optimizer step for the minibatch Reduce just
// folded into the leader: the leader-serial commit followed by the full
// Broadcast when sharding is off, or the replica-sharded owner protocol.
// A member failure surfaces as *MemberError when eviction can handle it
// (CanEvict) and as a plain wrapped error otherwise; the group must not
// commit again after a non-evictable error.
func (g *Group) Commit(nMicro int) error {
	if !g.sharded {
		g.serial.Commit(g.lead, nMicro)
		g.Broadcast()
		if pos, err := g.firstFault(); pos >= 0 {
			// The leader has stepped and every healthy follower synced from
			// it independently, so a dead broadcast target evicts without
			// replay: the minibatch's loss and step are already final.
			return g.classify(pos, err, false)
		}
		return nil
	}
	return g.shardedCommit(nMicro)
}

// shardedCommit is the ZeRO / PipeDream-2BW style replica-sharded commit.
// The commit plan assigns each stage to a replica owner (contiguous
// shards, sizes differing by at most one); each owner runs the commit
// phases for its shard against its own parameter copies and its local
// shard of the optimizer state, so no replica — leader included — steps
// more than ⌈P/R⌉ stages and followers hold no moment state outside their
// shard.
//
// Determinism (bit-identical to the leader-serial commit, and hence to
// single-replica Reference):
//
//  1. The scatter is a pure copy. All gradient arithmetic stayed at the
//     tree root (Reduce); an owner's accumulator receives the leader's
//     reduced gradient bitwise.
//  2. Per-stage phase arithmetic is location-independent. PrepareStage,
//     ScaleStage, StepStage and FinishStage touch only the stage's
//     parameter range, and every input — masters (broadcast-synced),
//     reduced gradients (scattered), moment state (stepped only by the
//     owner, every step, from identical inputs), step clocks (every
//     member advances once per commit), τ delays and schedules (identical
//     by construction), the epoch phase (SyncEpoch) — is bitwise equal to
//     the leader's, so the owner performs bitwise the arithmetic the
//     leader would have.
//  3. Cross-stage reductions keep stage order. The clip-norm partials are
//     folded st = 0..P−1 on the orchestrator, exactly as the serial
//     commit sums them, and the resulting scale is computed once.
//  4. The gather is a pure copy. Every member imports each stage it does
//     not own from the owner's post-step state (the inverse of the old
//     leader broadcast) and pushes its version queue exactly once per
//     stage, so every replica's version history replays identically.
func (g *Group) shardedCommit(nMicro int) error {
	p := g.lead.Stages()
	// Scatter: move the leader's reduced gradients to their owners and
	// align follower epoch clocks. TakeStageGrads zeroes the leader's
	// accumulator, so gradient ownership moves wholesale.
	t0 := g.rec.Now()
	var scatterBytes int64
	for _, m := range g.members[1:] {
		m.member.SyncEpoch()
	}
	if g.scatter == nil {
		g.scatter = make([][]*tensor.Tensor, p)
		g.sumSqs = make([]float64, p)
	}
	for st := 0; st < p; st++ {
		if o := g.plan.OwnerOf(st); o != 0 {
			g.scatter[st] = g.lead.TakeStageGrads(st, g.scatter[st])
			g.members[o].member.SetStageGrads(st, g.scatter[st])
			if g.rec != nil {
				scatterBytes += tensorsBytes(g.scatter[st])
			}
		}
	}
	g.ctracks[0].Span(trace.NameScatter, t0, -1, -1, scatterBytes)
	// Prepare: owners average their shard's gradients and report the
	// per-stage clip partials.
	g.eachMember(func(i int, m Member, lo, hi int) {
		t0 := g.rec.Now()
		for st := lo; st < hi; st++ {
			g.sumSqs[st] = m.PrepareStage(st, nMicro)
		}
		g.ctracks[i].Span(trace.NameCommitPrepare, t0, lo, -1, 0)
	})
	if pos, err := g.firstFault(); pos >= 0 {
		// No member has advanced its step clock yet, so an evictable
		// failure up to Prepare replays the whole minibatch over the
		// survivors (ResetGrads first — the scatter moved gradients).
		return g.classify(pos, err, true)
	}
	sumSq := 0.0
	for _, s := range g.sumSqs {
		sumSq += s
	}
	scale := g.lead.ClipScale(sumSq)
	// Step: every member advances its step clocks (owners and idle
	// members alike, keeping the R trainers' step counters and Adam
	// clocks in lockstep), then owners scale, step and finish their
	// shards.
	g.eachMember(func(i int, m Member, lo, hi int) {
		tk := g.ctracks[i]
		m.BeginStep()
		if scale != 1 {
			t0 := g.rec.Now()
			for st := lo; st < hi; st++ {
				m.ScaleStage(st, scale)
			}
			tk.Span(trace.NameCommitScale, t0, lo, -1, 0)
		}
		t0 := g.rec.Now()
		for st := lo; st < hi; st++ {
			m.StepStage(st)
		}
		tk.Span(trace.NameCommitStep, t0, lo, -1, 0)
		t0 = g.rec.Now()
		for st := lo; st < hi; st++ {
			m.FinishStage(st)
		}
		tk.Span(trace.NameCommitFinish, t0, lo, -1, 0)
	})
	// Gather: the inverted broadcast — every member imports each stage
	// from the owner's post-step state, in stage order, pushing its own
	// version queue. Owner states are read once, before the fan-out: for
	// in-process owners that is the same live-tensor read as before, and
	// for remote owners it fetches the stage exactly once into a stable
	// buffer that the concurrent importers then only read.
	t0 = g.rec.Now()
	states := make([][]*tensor.Tensor, p)
	var gatherBytes int64
	for st := 0; st < p; st++ {
		states[st] = g.members[g.plan.OwnerOf(st)].member.StageState(st)
		if g.rec != nil {
			gatherBytes += tensorsBytes(states[st])
		}
	}
	g.eachMember(func(i int, m Member, _, _ int) {
		for st := 0; st < p; st++ {
			if g.plan.OwnerOf(st) != i && states[st] != nil {
				m.ImportStageState(st, states[st])
			}
		}
	})
	g.ctracks[0].Span(trace.NameGather, t0, -1, -1, gatherBytes)
	if pos, err := g.firstFault(); pos >= 0 {
		// Step clocks have advanced and a dead owner's stepped shard is
		// unrecoverable mid-commit: survivors hold a mix of pre- and
		// post-step stages. Only a checkpoint restore recovers this.
		return fmt.Errorf("replica %d: %w", pos, err)
	}
	return nil
}

// eachMember runs fn concurrently for every member with its owner shard,
// waiting for all: one goroutine per replica, each touching only its own
// trainer's state (plus read-only peers during the gather).
func (g *Group) eachMember(fn func(i int, m Member, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(len(g.members))
	for i, c := range g.members {
		i, c := i, c
		go func() {
			defer wg.Done()
			lo, hi := g.plan.Shard(i)
			fn(i, c.member, lo, hi)
		}()
	}
	wg.Wait()
}

// LossSum folds the per-microbatch losses in global microbatch order —
// replica chunks are contiguous, so replica order then chunk order is the
// serial order — and returns the sum (the caller divides by N).
func (g *Group) LossSum() float64 {
	sum := 0.0
	for _, m := range g.members {
		for _, l := range m.losses[:m.n] {
			sum += l
		}
	}
	return sum
}

// Compute is the per-replica host wrapper a replicated engine hands to
// that replica's inner engine. It delegates the pipeline slots to the
// replica's member surface, overrides the minibatch framing (global
// microbatch base, leader's epoch phase), captures per-microbatch losses,
// exports per-(microbatch, stage) gradients on followers, and turns the
// commit phase into a no-op — the commit belongs to the replicated engine
// after the all-reduce.
type Compute struct {
	member Member
	leader bool
	p      int

	// Per-minibatch state, written by begin before the inner engine runs
	// and read by its workers (happens-before via the engine's channels).
	start  int // global microbatch counter of the chunk start
	n      int // chunk length
	async  bool
	losses []float64
	taken  []bool
	grads  [][][]*tensor.Tensor // [k][stage][param] exported grads (followers)
}

func newCompute(m Member, leader bool) *Compute {
	return &Compute{member: m, leader: leader, p: m.Stages()}
}

// NewCompute wraps a follower member for chunk execution outside a
// Group — the worker-process side of the remote protocol, where the
// serve loop drives its local follower through an inner engine and ships
// the captured losses and gradient exports back (transport.ServeConn).
func NewCompute(m Member) *Compute { return newCompute(m, false) }

// BeginChunk resets the wrapper for a chunk of n microbatches starting
// at global microbatch counter start, under the leader's epoch phase.
func (c *Compute) BeginChunk(start, n int, async bool) { c.begin(start, n, async) }

// Losses returns the chunk's captured per-microbatch losses, in chunk
// order.
func (c *Compute) Losses() []float64 { return c.losses[:c.n] }

// Grads returns the chunk's exported per-(microbatch, stage) gradients.
func (c *Compute) Grads() [][][]*tensor.Tensor { return c.grads[:c.n] }

// Remote reports whether the wrapped member runs its chunks out of
// process (implements Runner) — in which case the replicated engine
// calls Run instead of driving an inner engine over this wrapper.
func (c *Compute) Remote() bool {
	_, ok := c.member.(Runner)
	return ok
}

// Run ships the chunk to a remote member and stores the returned losses
// and gradient exports where Reduce and LossSum read them — the remote
// counterpart of an inner engine driving the wrapper's slots locally.
func (c *Compute) Run(ctx context.Context, micros [][]int) error {
	r, ok := c.member.(Runner)
	if !ok {
		return fmt.Errorf("replica: member %T cannot run chunks remotely", c.member)
	}
	losses, grads, err := r.RunChunk(ctx, c.start, c.async, micros)
	if err != nil {
		return err
	}
	if len(losses) != c.n || len(grads) != c.n {
		return fmt.Errorf("replica: remote chunk returned %d losses and %d gradient exports, want %d", len(losses), len(grads), c.n)
	}
	copy(c.losses[:c.n], losses)
	for k := range grads {
		c.grads[k] = grads[k]
	}
	return nil
}

// begin resets the wrapper for a chunk of n microbatches starting at
// global counter start.
func (c *Compute) begin(start, n int, async bool) {
	c.start, c.n, c.async = start, n, async
	for len(c.losses) < n {
		c.losses = append(c.losses, 0)
		c.taken = append(c.taken, false)
	}
	for k := 0; k < n; k++ {
		c.losses[k] = 0
		c.taken[k] = false
	}
	if !c.leader {
		for len(c.grads) < n {
			c.grads = append(c.grads, make([][]*tensor.Tensor, c.p))
		}
	}
}

// Tracer implements trace.Carrier by delegating to the wrapped member
// (the follower trainer's host), so an inner engine driving this
// replica's pipeline finds the shared recorder and the replica's index.
// Remote members carry no local recorder — their compute happens in the
// worker process.
func (c *Compute) Tracer() (*trace.Recorder, int) {
	return trace.FromCarrier(c.member)
}

// Stages returns P.
func (c *Compute) Stages() int { return c.p }

// Async reports the leader's epoch phase: followers never advance their
// own epoch clock, so the leader's view is authoritative for all
// replicas.
func (c *Compute) Async() bool { return c.async }

// Recompute delegates to the replica (same configuration as the leader).
func (c *Compute) Recompute() bool { return c.member.Recompute() }

// MicroBase returns the global microbatch counter of this replica's
// chunk, so every slot sees the same global s as a single-replica run.
func (c *Compute) MicroBase() int { return c.start }

// Splittable delegates to the replica's task.
func (c *Compute) Splittable() bool { return c.member.Splittable() }

// InstallForward delegates to the replica.
func (c *Compute) InstallForward(s, stage int) { c.member.InstallForward(s, stage) }

// InstallBackward delegates to the replica.
func (c *Compute) InstallBackward(s, stage int) { c.member.InstallBackward(s, stage) }

// InstallRecompute delegates to the replica.
func (c *Compute) InstallRecompute(s, stage int) { c.member.InstallRecompute(s, stage) }

// Restore delegates to the replica.
func (c *Compute) Restore(stage int) { c.member.Restore(stage) }

// BeginMicro delegates to the replica.
func (c *Compute) BeginMicro(s int, mb []int) { c.member.BeginMicro(s, mb) }

// StageForward delegates to the replica and records the microbatch's loss
// at the last stage of its first forward climb (a recompute climb returns
// the loss again; first-write-wins keeps the original).
func (c *Compute) StageForward(s, stage int) float64 {
	loss := c.member.StageForward(s, stage)
	if stage == c.p-1 {
		if k := s - c.start; !c.taken[k] {
			c.losses[k] = loss
			c.taken[k] = true
		}
	}
	return loss
}

// StageBackward delegates to the replica and, on followers, immediately
// exports the stage's just-accumulated gradient into the per-microbatch
// staging area (zeroing the stage accumulator, so the next microbatch
// again accumulates from zero). Monolithic tasks run their whole backward
// in stage 0's slot, so that slot exports every stage.
func (c *Compute) StageBackward(s, stage int) {
	c.member.StageBackward(s, stage)
	if c.leader {
		return
	}
	k := s - c.start
	if c.member.Splittable() {
		c.grads[k][stage] = c.member.TakeStageGrads(stage, c.grads[k][stage])
		return
	}
	if stage == 0 {
		for st := 0; st < c.p; st++ {
			c.grads[k][st] = c.member.TakeStageGrads(st, c.grads[k][st])
		}
	}
}

// EndMicro delegates to the replica.
func (c *Compute) EndMicro(s int) { c.member.EndMicro(s) }

// BadLoss delegates to the replica (identical loss cap across replicas).
func (c *Compute) BadLoss(loss float64) bool { return c.member.BadLoss(loss) }

// PrepareStage is a no-op: the commit phase runs once, on the leader,
// after the all-reduce.
func (c *Compute) PrepareStage(stage, nMicro int) float64 { return 0 }

// ClipScale is a no-op (see PrepareStage).
func (c *Compute) ClipScale(sumSq float64) float64 { return 1 }

// ScaleStage is a no-op (see PrepareStage).
func (c *Compute) ScaleStage(stage int, scale float64) {}

// BeginStep is a no-op (see PrepareStage).
func (c *Compute) BeginStep() {}

// StepStage is a no-op (see PrepareStage).
func (c *Compute) StepStage(stage int) {}

// FinishStage is a no-op (see PrepareStage).
func (c *Compute) FinishStage(stage int) {}
