// Fault tolerance: deterministic member eviction.
//
// A fatal member failure mid-minibatch would otherwise abort the run.
// When the failure is evictable (see Group.CanEvict), the replicated
// engine instead removes the member from the group, the leader rebuilds
// its commit plan over the survivors, and — when the minibatch's result
// was lost with the member — the minibatch replays over the smaller
// group. Determinism survives eviction because the per-minibatch curve
// is replica-count-invariant: the reduce is a pure left fold in global
// microbatch order for any R, chunks re-split contiguously over the
// survivors, and the commit arithmetic is location-independent. The
// post-eviction curve is therefore bit-identical to a fresh (R−1)-
// replica run from the same state — the invariant the equivalence suite
// pins.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"

	"pipemare/internal/tensor"
)

// MemberError reports a fatal but evictable failure of one group member.
// The replicated engine catches it, evicts the member, and — when Replay
// is set — reruns the interrupted minibatch over the survivors.
type MemberError struct {
	Replica int  // the failed member's current group position
	Replay  bool // whether the interrupted minibatch's result was lost
	Err     error
}

func (e *MemberError) Error() string {
	return fmt.Sprintf("replica %d failed (evictable): %v", e.Replica, e.Err)
}

func (e *MemberError) Unwrap() error { return e.Err }

// FaultTolerer is implemented by leaders that train fault-tolerantly:
// every follower holds full optimizer moments (mirrored each commit), so
// an evicted owner's shard state survives on its peers and the sharded
// commit can rebuild over R−1 members. Serial-commit groups are always
// evictable; sharded groups only when the leader reports fault
// tolerance.
type FaultTolerer interface {
	FaultTolerant() bool
}

// Evictor is the leader-side eviction surface: drop follower r (1-based
// group position) and rebuild the commit plan over the survivors. The
// trainer's host satisfies it.
type Evictor interface {
	EvictFollower(r int)
}

// VersionRestorer is implemented by members that can replace a stage's
// weight-version ring wholesale — the checkpoint-restore surface. base
// is the ring's oldest version number; snaps are the versions oldest to
// newest. Restoring the ring (not just the latest weights) keeps
// historical-version installs after a resume bit-identical to the
// checkpointed run's.
type VersionRestorer interface {
	RestoreVersions(stage, base int, snaps [][]*tensor.Tensor)
}

// CanEvict reports whether member pos's failure err may be handled by
// eviction instead of aborting the run. The leader (pos 0) is never
// evictable, cancellation is the caller's intent rather than a fault,
// a member without sticky-error support gives no clean failure point,
// and a sharded commit without fault tolerance has lost the dead
// owner's moment shard.
func (g *Group) CanEvict(pos int, err error) bool {
	if pos <= 0 || pos >= len(g.members) || err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if _, ok := g.members[pos].member.(Erring); !ok {
		return false
	}
	return !g.sharded || g.ft
}

// Evict removes member pos from the group: the member's connection is
// closed (best effort), the leader drops the follower and rebuilds its
// commit plan over the survivors, and the group's reduce tree and commit
// mode shrink accordingly. Positions above pos shift down by one, in
// lockstep with the leader's follower list.
func (g *Group) Evict(pos int) {
	if pos <= 0 || pos >= len(g.members) {
		return
	}
	if cl, ok := g.members[pos].member.(io.Closer); ok {
		cl.Close()
	}
	g.members = append(g.members[:pos], g.members[pos+1:]...)
	// The collectives tracks splice in lockstep so survivors keep writing
	// the track created under their original replica index.
	if g.ctracks != nil {
		g.ctracks = append(g.ctracks[:pos], g.ctracks[pos+1:]...)
	}
	if ev, ok := g.lead.(Evictor); ok {
		ev.EvictFollower(pos)
	}
	g.plan = g.lead.CommitShards()
	g.sharded = len(g.members) > 1 && g.lead.ShardedStep()
}

// ResetGrads returns every member's gradient accumulators to zero before
// a minibatch replays. The leader needs it because its own chunk
// accumulates in place (a replay would double-count), and a surviving
// sharded-commit owner needs it because an interrupted scatter may have
// parked reduced gradients in its accumulators.
func (g *Group) ResetGrads() {
	p := g.lead.Stages()
	if g.scatter == nil {
		g.scatter = make([][]*tensor.Tensor, p)
		g.sumSqs = make([]float64, p)
	}
	for st := 0; st < p; st++ {
		g.scatter[st] = g.lead.TakeStageGrads(st, g.scatter[st])
		for _, t := range g.scatter[st] {
			t.Zero()
		}
		for _, m := range g.members[1:] {
			m.member.SetStageGrads(st, g.scatter[st])
		}
	}
}

// firstFault returns the position and latched error of the first failed
// member, or (-1, nil).
func (g *Group) firstFault() (int, error) {
	for i, c := range g.members {
		if e, ok := c.member.(Erring); ok {
			if err := e.Err(); err != nil {
				return i, err
			}
		}
	}
	return -1, nil
}

// classify turns a member failure into either a MemberError (evictable,
// with the given replay requirement) or a plain wrapped error that
// aborts the run.
func (g *Group) classify(pos int, err error, replay bool) error {
	if g.CanEvict(pos, err) {
		return &MemberError{Replica: pos, Replay: replay, Err: err}
	}
	return fmt.Errorf("replica %d: %w", pos, err)
}
