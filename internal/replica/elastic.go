// Elastic membership: mid-run admission and straggler demotion.
//
// Eviction (faults.go) lets a group shrink; this file lets it grow
// again. Admit appends a fully state-synced member and rebuilds the
// reduce tree and commit plan *upward* over R+1 members — the exact
// mirror of Evict — and Demote removes a slow-but-alive member without
// closing its connection, parking it as a standby that can later rejoin
// through the same Admit path. Determinism survives both directions for
// the same reason it survives eviction: the per-minibatch curve is
// replica-count-invariant (contiguous chunk re-split, all reduce
// arithmetic at the tree root in global microbatch order,
// location-independent commit arithmetic), so the post-join curve is
// bit-identical to a fresh (R+1)-replica run from the handoff state.
package replica

import (
	"errors"
	"fmt"

	"pipemare/internal/trace"
)

// ErrStraggler marks a member failure caused by a missed collective
// deadline rather than a broken transport: the member is alive (its
// heartbeats flow, its reply will still arrive) but too slow to keep in
// the reduce tree. The replicated engine demotes such members to
// standby instead of evicting them.
var ErrStraggler = errors.New("replica: collective deadline missed")

// StragglerError reports that member Replica missed its per-collective
// deadline K consecutive times during the interrupted minibatch. The
// replicated engine catches it, demotes the member to standby, and
// replays the minibatch over the survivors.
type StragglerError struct {
	Replica int // the straggler's current group position
	Err     error
}

func (e *StragglerError) Error() string {
	return fmt.Sprintf("replica %d straggling (demotable): %v", e.Replica, e.Err)
}

func (e *StragglerError) Unwrap() error { return e.Err }

// Joiner is the leader-side admission surface: append a new follower
// after the current tail and rebuild the commit plan over R+1 members —
// the inverse of Evictor. The trainer's host satisfies it.
type Joiner interface {
	JoinFollower(m Member)
}

// Standby is implemented by members that can sit out of the group after
// a demotion and later rejoin: Ready reports that the member has
// finished (and discarded) its late in-flight work and is drained,
// and Rearm resets its straggler accounting before readmission.
type Standby interface {
	Ready() bool
	Rearm()
}

// Admit appends a new member to the group at position R (the tail),
// growing the reduce tree, and rebuilds the leader's commit plan over
// R+1 members. The member must already hold the leader's full state
// (the caller performs the handoff before admission); Admit itself is
// pure membership bookkeeping, mirroring Evict.
func (g *Group) Admit(m Member) {
	pos := len(g.members)
	g.members = append(g.members, newCompute(m, false))
	if g.ctracks != nil {
		g.ctracks = append(g.ctracks, g.rec.Track(pos, trace.TidCollectives, "collectives"))
	}
	if j, ok := g.lead.(Joiner); ok {
		j.JoinFollower(m)
	}
	g.plan = g.lead.CommitShards()
	g.sharded = len(g.members) > 1 && g.lead.ShardedStep()
}

// Demote removes member pos from the group exactly like Evict — the
// leader drops the follower, the reduce tree and commit plan rebuild
// over the survivors, positions above pos shift down — but leaves the
// member's connection open and returns it, so the caller can park it as
// a standby and readmit it through Admit once it has caught up.
func (g *Group) Demote(pos int) (Member, bool) {
	if pos <= 0 || pos >= len(g.members) {
		return nil, false
	}
	m := g.members[pos].member
	g.members = append(g.members[:pos], g.members[pos+1:]...)
	if g.ctracks != nil {
		g.ctracks = append(g.ctracks[:pos], g.ctracks[pos+1:]...)
	}
	if ev, ok := g.lead.(Evictor); ok {
		ev.EvictFollower(pos)
	}
	g.plan = g.lead.CommitShards()
	g.sharded = len(g.members) > 1 && g.lead.ShardedStep()
	return m, true
}
