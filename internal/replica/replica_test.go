package replica_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"pipemare/internal/engine"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
)

// fakeMember is a minimal replica surface with one scalar "parameter" per
// stage. StageBackward "accumulates" the gradient s+1 for microbatch s, so
// exported buffers carry the global microbatch identity, and the leader's
// FoldStageGrads records the sequence of values it receives — making the
// fold ORDER directly observable, the property the tree reduction must
// preserve.
type fakeMember struct {
	p      int
	mu     sync.Mutex
	acc    []float64 // per-stage accumulator
	synced int       // SyncFromLeader calls
	folds  [][]float64

	// Sharded-commit recording: per-stage commit-phase call counts and
	// per-stage "state" scalars for the scatter/gather assertions.
	state      []float64 // per-stage post-step state (stepped by owner, imported elsewhere)
	prepared   []int
	stepped    []int
	finished   []int
	imported   []int
	beginSteps int
	epochSyncs int
}

func newFakeMember(p int) *fakeMember {
	return &fakeMember{p: p, acc: make([]float64, p), folds: make([][]float64, p),
		state: make([]float64, p), prepared: make([]int, p), stepped: make([]int, p),
		finished: make([]int, p), imported: make([]int, p)}
}

func (f *fakeMember) Stages() int                  { return f.p }
func (f *fakeMember) Async() bool                  { return true }
func (f *fakeMember) Recompute() bool              { return false }
func (f *fakeMember) MicroBase() int               { return 0 }
func (f *fakeMember) Splittable() bool             { return true }
func (f *fakeMember) InstallForward(s, stage int)  {}
func (f *fakeMember) InstallBackward(s, stage int) {}
func (f *fakeMember) InstallRecompute(s, st int)   {}
func (f *fakeMember) Restore(stage int)            {}
func (f *fakeMember) BeginMicro(s int, mb []int)   {}
func (f *fakeMember) StageForward(s, stage int) float64 {
	if stage == f.p-1 {
		return float64(100 + s) // distinct per-microbatch losses
	}
	return 0
}

func (f *fakeMember) StageBackward(s, stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acc[stage] += float64(s + 1)
}

func (f *fakeMember) EndMicro(s int)            {}
func (f *fakeMember) BadLoss(loss float64) bool { return false }

func (f *fakeMember) PrepareStage(stage, nMicro int) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prepared[stage]++
	return float64(stage + 1) // distinct partials: checks the stage-ordered fold
}

func (f *fakeMember) ClipScale(sumSq float64) float64     { return 1 }
func (f *fakeMember) ScaleStage(stage int, scale float64) {}

func (f *fakeMember) BeginStep() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.beginSteps++
}

// StepStage "steps" the stage by publishing the reduced gradient the owner
// holds into its state scalar, so the gather assertions can check that
// non-owners receive exactly the owner's post-step value.
func (f *fakeMember) StepStage(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stepped[stage]++
	f.state[stage] = 1000 + f.acc[stage]
}

func (f *fakeMember) FinishStage(stage int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.finished[stage]++
	f.acc[stage] = 0
}

func (f *fakeMember) TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor {
	f.mu.Lock()
	defer f.mu.Unlock()
	if bufs == nil {
		bufs = []*tensor.Tensor{tensor.New(1)}
	}
	bufs[0].Data[0] = f.acc[stage]
	f.acc[stage] = 0
	return bufs
}

func (f *fakeMember) FoldStageGrads(stage int, bufs []*tensor.Tensor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.folds[stage] = append(f.folds[stage], bufs[0].Data[0])
}

func (f *fakeMember) SetStageGrads(stage int, bufs []*tensor.Tensor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acc[stage] = bufs[0].Data[0]
}

func (f *fakeMember) StageState(stage int) []*tensor.Tensor {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := tensor.New(1)
	t.Data[0] = f.state[stage]
	return []*tensor.Tensor{t}
}

func (f *fakeMember) ImportStageState(stage int, src []*tensor.Tensor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.imported[stage]++
	f.state[stage] = src[0].Data[0]
}

func (f *fakeMember) SyncEpoch() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epochSyncs++
}

func (f *fakeMember) SyncFromLeader() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.synced++
}

// fakeLead is a fakeMember that owns followers.
type fakeLead struct {
	*fakeMember
	followers []*fakeMember
	sharded   bool
}

func (f *fakeLead) Replicas() int                 { return len(f.followers) + 1 }
func (f *fakeLead) Follower(r int) replica.Member { return f.followers[r-1] }
func (f *fakeLead) ShardedStep() bool             { return f.sharded }
func (f *fakeLead) CommitShards() engine.CommitPlan {
	return engine.NewCommitPlan(f.p, f.Replicas())
}

var _ replica.Leader = (*fakeLead)(nil)

// driveChunk simulates an inner engine running replica r's chunk through
// its compute wrapper: a forward climb and a backward descent per
// microbatch, in chain order.
func driveChunk(c *replica.Compute, chunk [][]int, p int) {
	base := c.MicroBase()
	for k := range chunk {
		s := base + k
		c.BeginMicro(s, chunk[k])
		for st := 0; st < p; st++ {
			c.StageForward(s, st)
		}
		for st := p - 1; st >= 0; st-- {
			c.StageBackward(s, st)
		}
		c.EndMicro(s)
	}
}

// TestGroupReduceFoldsInGlobalMicrobatchOrder drives a 4-replica group
// over an unevenly divisible minibatch and checks the contract the
// bit-identical claim rests on: the leader's own chunk is the untouched
// fold prefix, and the tree reduction hands the leader every follower
// microbatch's gradient exactly once, in global microbatch order.
func TestGroupReduceFoldsInGlobalMicrobatchOrder(t *testing.T) {
	const p, r, n = 3, 4, 10 // 10 microbatches over 4 replicas: chunks 3,3,2,2
	lead := &fakeLead{fakeMember: newFakeMember(p)}
	for i := 1; i < r; i++ {
		lead.followers = append(lead.followers, newFakeMember(p))
	}
	g := replica.NewGroup(lead)
	if g.Replicas() != r {
		t.Fatalf("group has %d replicas, want %d", g.Replicas(), r)
	}
	micros := make([][]int, n)
	for i := range micros {
		micros[i] = []int{i}
	}
	chunks := g.Begin(context.Background(), micros)
	wantSizes := []int{3, 3, 2, 2}
	start := 0
	for i, want := range wantSizes {
		if len(chunks[i]) != want {
			t.Fatalf("chunk %d has %d microbatches, want %d", i, len(chunks[i]), want)
		}
		if base := g.Member(i).MicroBase(); base != start {
			t.Fatalf("replica %d starts at global microbatch %d, want %d", i, base, start)
		}
		start += want
	}

	for i := 0; i < r; i++ {
		driveChunk(g.Member(i).(*replica.Compute), chunks[i], p)
	}
	g.Reduce()

	// The leader's direct accumulation holds exactly its own chunk's fold.
	wantLead := 1.0 + 2 + 3 // s = 0,1,2 → s+1
	for st := 0; st < p; st++ {
		if lead.acc[st] != wantLead {
			t.Fatalf("leader stage %d accumulated %g, want its chunk prefix %g", st, lead.acc[st], wantLead)
		}
	}
	// Every stage received the follower microbatches in global order.
	for st := 0; st < p; st++ {
		want := []float64{4, 5, 6, 7, 8, 9, 10} // s+1 for s = 3..9
		if got := fmt.Sprint(lead.folds[st]); got != fmt.Sprint(want) {
			t.Fatalf("stage %d folded %v, want global order %v", st, lead.folds[st], want)
		}
	}
	// Losses fold in global order too.
	wantLoss := 0.0
	for s := 0; s < n; s++ {
		wantLoss += float64(100 + s)
	}
	if got := g.LossSum(); got != wantLoss {
		t.Fatalf("loss sum %g, want %g", got, wantLoss)
	}

	if err := g.Broadcast(); err != nil {
		t.Fatal(err)
	}
	if lead.synced != 0 {
		t.Fatal("the leader must not sync from itself")
	}
	for i, f := range lead.followers {
		if f.synced != 1 {
			t.Fatalf("follower %d synced %d times, want 1", i+1, f.synced)
		}
	}
}

// TestGroupShardedCommitProtocol drives the replica-sharded commit over
// fake members with an uneven stage count (P=5 across R=3: shards of 2, 2
// and 1 stages) and checks the ownership contract the determinism claim
// rests on: every stage is prepared/stepped/finished exactly once, at its
// owner; the leader's reduced gradient reaches the owner by pure copy
// (and leaves the leader's accumulator empty); every member advances its
// step clock exactly once; every non-owner imports exactly the owner's
// post-step state; and no full SyncFromLeader broadcast runs.
func TestGroupShardedCommitProtocol(t *testing.T) {
	const p, r = 5, 3
	lead := &fakeLead{fakeMember: newFakeMember(p), sharded: true}
	for i := 1; i < r; i++ {
		lead.followers = append(lead.followers, newFakeMember(p))
	}
	g := replica.NewGroup(lead)
	// Stand in for Reduce: the leader holds the fully reduced minibatch
	// gradient, one distinct scalar per stage.
	for st := 0; st < p; st++ {
		lead.acc[st] = float64(10 * (st + 1))
	}
	if err := g.Commit(4); err != nil {
		t.Fatal(err)
	}

	members := append([]*fakeMember{lead.fakeMember}, lead.followers...)
	wantOwner := []int{0, 0, 1, 1, 2} // contiguous shards 2/2/1
	for st := 0; st < p; st++ {
		want := 1000.0 + float64(10*(st+1))
		for i, m := range members {
			owns := wantOwner[st] == i
			if owns {
				if m.prepared[st] != 1 || m.stepped[st] != 1 || m.finished[st] != 1 {
					t.Fatalf("owner %d of stage %d ran prepare/step/finish %d/%d/%d times, want 1/1/1",
						i, st, m.prepared[st], m.stepped[st], m.finished[st])
				}
				if m.imported[st] != 0 {
					t.Fatalf("owner %d imported its own stage %d", i, st)
				}
			} else {
				if m.prepared[st] != 0 || m.stepped[st] != 0 || m.finished[st] != 0 {
					t.Fatalf("non-owner %d of stage %d ran commit phases %d/%d/%d times, want none",
						i, st, m.prepared[st], m.stepped[st], m.finished[st])
				}
				if m.imported[st] != 1 {
					t.Fatalf("non-owner %d imported stage %d %d times, want 1", i, st, m.imported[st])
				}
			}
			if m.state[st] != want {
				t.Fatalf("member %d stage %d state %g, want the owner's post-step %g", i, st, m.state[st], want)
			}
		}
	}
	for i, m := range members {
		if m.beginSteps != 1 {
			t.Fatalf("member %d advanced its step clock %d times, want exactly 1", i, m.beginSteps)
		}
		if m.synced != 0 {
			t.Fatalf("member %d ran the full SyncFromLeader broadcast under the sharded commit", i)
		}
	}
	for i, m := range lead.followers {
		if m.epochSyncs != 1 {
			t.Fatalf("follower %d synced its epoch clock %d times, want 1", i+1, m.epochSyncs)
		}
	}
	// The scatter moved gradient ownership wholesale: the leader's
	// accumulators for follower-owned stages are empty.
	for st := 2; st < p; st++ {
		if lead.acc[st] != 0 {
			t.Fatalf("leader still holds %g gradient for scattered stage %d", lead.acc[st], st)
		}
	}
}

// TestGroupSerialCommitBroadcasts pins the non-sharded path: the whole
// commit runs on the leader and every follower receives the full-state
// broadcast.
func TestGroupSerialCommitBroadcasts(t *testing.T) {
	const p, r = 3, 2
	lead := &fakeLead{fakeMember: newFakeMember(p)}
	lead.followers = append(lead.followers, newFakeMember(p))
	g := replica.NewGroup(lead)
	if err := g.Commit(2); err != nil {
		t.Fatal(err)
	}
	for st := 0; st < p; st++ {
		if lead.prepared[st] != 1 || lead.stepped[st] != 1 || lead.finished[st] != 1 {
			t.Fatalf("leader stage %d prepare/step/finish = %d/%d/%d, want 1/1/1",
				st, lead.prepared[st], lead.stepped[st], lead.finished[st])
		}
	}
	if lead.beginSteps != 1 {
		t.Fatalf("leader advanced its step clock %d times, want 1", lead.beginSteps)
	}
	f := lead.followers[0]
	if f.synced != 1 {
		t.Fatalf("follower synced %d times, want the full broadcast once", f.synced)
	}
	if f.beginSteps != 0 || f.prepared[0] != 0 {
		t.Fatal("follower must stay inert under the leader-serial commit")
	}
}

// TestComputeSuppressesCommit pins that a compute wrapper's commit phase
// is inert: the replicated engine owns the real commit on the leader.
func TestComputeSuppressesCommit(t *testing.T) {
	lead := &fakeLead{fakeMember: newFakeMember(2)}
	lead.followers = append(lead.followers, newFakeMember(2))
	g := replica.NewGroup(lead)
	g.Begin(context.Background(), [][]int{{0}, {1}})
	c := g.Member(0).(*replica.Compute)
	if got := c.PrepareStage(0, 2); got != 0 {
		t.Fatalf("PrepareStage returned %g, want inert 0", got)
	}
	if got := c.ClipScale(123); got != 1 {
		t.Fatalf("ClipScale returned %g, want inert 1", got)
	}
	c.ScaleStage(0, 0.5)
	c.BeginStep()
	c.StepStage(0)
	c.FinishStage(0)
}
