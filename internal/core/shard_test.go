package core

import (
	"strings"
	"testing"

	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
)

// repTask is a minimal Replicable task for exercising the replica-sharded
// trainer construction: one multi-scalar parameter per group, inert
// forward/backward.
type repTask struct {
	groups   []pipeline.ParamGroup
	numTrain int
	nGroups  int
}

func newRepTask(groups, numTrain int) *repTask {
	t := &repTask{numTrain: numTrain, nGroups: groups}
	for g := 0; g < groups; g++ {
		p := nn.NewParam("rep", 2)
		t.groups = append(t.groups, pipeline.ParamGroup{Name: "g", Params: []*nn.Param{p}})
	}
	return t
}

func (t *repTask) Groups() []pipeline.ParamGroup { return t.groups }
func (t *repTask) NumTrain() int                 { return t.numTrain }
func (t *repTask) Forward(idx []int) float64     { return 0.1 }
func (t *repTask) Backward()                     {}
func (t *repTask) EvalTest() float64             { return 0 }
func (t *repTask) CloneTask() Task               { return newRepTask(t.nGroups, t.numTrain) }

func repParams(t *repTask) []*nn.Param {
	var ps []*nn.Param
	for _, g := range t.groups {
		ps = append(ps, g.Params...)
	}
	return ps
}

// TestFollowersHoldOnlyTheirOptimizerShard pins the memory half of the
// sharded commit: under the (auto-enabled) sharded step, follower r's
// optimizer holds moment state exactly for the parameter range of its
// stage shard — contiguous, disjoint, and jointly covering, with the
// leader's shard, every parameter exactly once.
func TestFollowersHoldOnlyTheirOptimizerShard(t *testing.T) {
	const groups, stages, replicas = 10, 5, 3
	task := newRepTask(groups, 64)
	tr, err := New(task, optim.NewSGD(repParams(task), 0.9, 0), optim.Constant(0.1), Config{
		Stages: stages, BatchSize: 16, MicrobatchSize: 4, Replicas: replicas, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ShardedStep() {
		t.Fatal("auto mode did not shard the step for R=3 + SGD")
	}
	covered := make([]int, groups)
	markShard := func(sh optim.Shard) {
		for i := sh.Lo; i < sh.Hi; i++ {
			covered[i]++
		}
	}
	markShard(tr.shardOf(0)) // the leader's own shard
	for r, m := range tr.followers {
		f := m.(host).t
		got := f.opt.(interface{ StateRange() optim.Shard }).StateRange()
		want := tr.shardOf(r + 1)
		if got != want {
			t.Fatalf("follower %d holds state for %+v, want its stage shard's params %+v", r+1, got, want)
		}
		markShard(got)
	}
	for i, k := range covered {
		if k != 1 {
			t.Fatalf("param %d covered by %d optimizer shards, want exactly 1", i, k)
		}
	}

	// More replicas than stages: the surplus replicas own nothing and
	// hold no state.
	task2 := newRepTask(4, 64)
	tr2, err := New(task2, optim.NewSGD(repParams(task2), 0.9, 0), optim.Constant(0.1), Config{
		Stages: 2, BatchSize: 16, MicrobatchSize: 4, Replicas: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 2; r <= 3; r++ {
		if sh := tr2.followers[r-1].(host).t.opt.(interface{ StateRange() optim.Shard }).StateRange(); sh.Len() != 0 {
			t.Fatalf("surplus replica %d holds state for %+v, want nothing", r, sh)
		}
	}
}

// TestShardedStepOffKeepsFollowersStateless pins the leader-serial path:
// followers never step, so they hold no moment state at all.
func TestShardedStepOffKeepsFollowersStateless(t *testing.T) {
	task := newRepTask(6, 64)
	tr, err := New(task, optim.NewSGD(repParams(task), 0.9, 0), optim.Constant(0.1), Config{
		Stages: 3, BatchSize: 16, MicrobatchSize: 4, Replicas: 2, Seed: 1,
		ShardedStep: ShardedStepOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ShardedStep() {
		t.Fatal("ShardedStepOff did not disable sharding")
	}
	f := tr.followers[0].(host).t
	if sh := f.opt.(interface{ StateRange() optim.Shard }).StateRange(); sh.Len() != 0 {
		t.Fatalf("leader-serial follower holds moment state %+v, want none", sh)
	}
}

// TestShardedStepValidation pins the option's error paths: requiring the
// sharded step without replicas, or with an optimizer that cannot shard,
// must fail at construction.
func TestShardedStepValidation(t *testing.T) {
	task := newRepTask(6, 64)
	base := Config{Stages: 3, BatchSize: 16, MicrobatchSize: 4, Seed: 1}

	cfg := base
	cfg.ShardedStep = ShardedStepOn
	if _, err := New(task, optim.NewSGD(repParams(task), 0.9, 0), optim.Constant(0.1), cfg); err == nil ||
		!strings.Contains(err.Error(), "at least 2 replicas") {
		t.Fatalf("ShardedStepOn without replicas: err = %v", err)
	}

	cfg = base
	cfg.ShardedStep = ShardedStepOn
	cfg.Replicas = 2
	co := &countingOptimizer{ps: repParams(task)}
	if _, err := New(task, co, optim.Constant(0.1), cfg); err == nil ||
		!strings.Contains(err.Error(), "does not support state sharding") {
		t.Fatalf("ShardedStepOn with unshardable optimizer: err = %v", err)
	}

	// Auto mode with an unshardable optimizer falls back to leader-serial
	// instead of failing.
	cfg = base
	cfg.Replicas = 2
	tr, err := New(task, &countingOptimizer{ps: repParams(task)}, optim.Constant(0.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ShardedStep() {
		t.Fatal("auto mode sharded the step for an unshardable optimizer")
	}

	cfg = base
	cfg.ShardedStep = ShardedStepMode(99)
	if _, err := New(task, optim.NewSGD(repParams(task), 0.9, 0), optim.Constant(0.1), cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown sharded-step mode") {
		t.Fatalf("unknown mode: err = %v", err)
	}
}
