package core

import (
	"math"
	"testing"

	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
)

// probeTask is a fake task with one scalar parameter per group whose
// Forward/Backward record the weight values the trainer installed. Paired
// with countingOptimizer (each update adds exactly +1 to every weight),
// the observed value of a weight IS its version number, so the trainer's
// version bookkeeping can be checked against the Clock formulas exactly.
type probeTask struct {
	groups   []pipeline.ParamGroup
	params   []*nn.Param
	numTrain int

	fwdSeen [][]float64 // fwdSeen[s][g]: forward weight seen at microbatch s
	bwdSeen [][]float64 // bwdSeen[s][g]: backward weight seen at microbatch s
}

func newProbeTask(groups, numTrain int) *probeTask {
	t := &probeTask{numTrain: numTrain}
	for g := 0; g < groups; g++ {
		p := nn.NewParam("probe", 1)
		t.params = append(t.params, p)
		t.groups = append(t.groups, pipeline.ParamGroup{Name: "g", Params: []*nn.Param{p}})
	}
	return t
}

func (t *probeTask) Groups() []pipeline.ParamGroup { return t.groups }
func (t *probeTask) NumTrain() int                 { return t.numTrain }

func (t *probeTask) Forward(idx []int) float64 {
	row := make([]float64, len(t.params))
	for i, p := range t.params {
		row[i] = p.Data.Data[0]
	}
	t.fwdSeen = append(t.fwdSeen, row)
	return 0.1
}

func (t *probeTask) Backward() {
	row := make([]float64, len(t.params))
	for i, p := range t.params {
		row[i] = p.BwdData().Data[0]
	}
	t.bwdSeen = append(t.bwdSeen, row)
}

func (t *probeTask) EvalTest() float64 { return 0 }

// countingOptimizer adds exactly 1 to every weight per step, making weight
// values equal version numbers.
type countingOptimizer struct{ ps []*nn.Param }

func (c *countingOptimizer) Step(lrs []float64) {
	c.Advance()
	c.StepRange(0, len(c.ps), lrs)
}
func (c *countingOptimizer) Advance() {}
func (c *countingOptimizer) StepRange(lo, hi int, _ []float64) {
	for _, p := range c.ps[lo:hi] {
		for i := range p.Data.Data {
			p.Data.Data[i]++
		}
	}
}
func (c *countingOptimizer) Params() []*nn.Param { return c.ps }
func (c *countingOptimizer) StateCopies() int    { return 3 }

func probeTrainer(t *testing.T, method Method, groups, stages, batch, micro, epochs int, t2d float64) (*probeTask, *Trainer) {
	t.Helper()
	task := newProbeTask(groups, 4*batch)
	opt := &countingOptimizer{ps: func() []*nn.Param {
		var ps []*nn.Param
		for _, g := range task.groups {
			ps = append(ps, g.Params...)
		}
		return ps
	}()}
	tr, err := New(task, opt, optim.Constant(0.1), Config{
		Method: method, Stages: stages, BatchSize: batch, MicrobatchSize: micro,
		T2D: t2d, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpochs(epochs, nil)
	return task, tr
}

func TestPipeMareForwardSeesDelayedVersions(t *testing.T) {
	const (
		groups = 6
		stages = 6
		batch  = 8
		micro  = 2 // N = 4
	)
	task, tr := probeTrainer(t, PipeMare, groups, stages, batch, micro, 3, 0)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	for s, row := range task.fwdSeen {
		for g, got := range row {
			stage1 := g + 1 // one group per stage
			want := float64(clock.FwdVersion(s, stage1))
			if got != want {
				t.Fatalf("microbatch %d stage %d: forward saw version %g, want %g", s, stage1, got, want)
			}
		}
	}
}

func TestPipeMareBackwardSeesMaster(t *testing.T) {
	task, tr := probeTrainer(t, PipeMare, 5, 5, 8, 2, 3, 0)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	for s, row := range task.bwdSeen {
		want := float64(clock.BwdVersion(s))
		for g, got := range row {
			if got != want {
				t.Fatalf("microbatch %d group %d: backward saw %g, want master version %g (τ_bkwd = 0)", s, g, got, want)
			}
		}
	}
}

func TestPipeDreamBackwardSeesStashedForwardWeights(t *testing.T) {
	task, tr := probeTrainer(t, PipeDream, 5, 5, 8, 2, 3, 0)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	for s := range task.bwdSeen {
		for g := range task.bwdSeen[s] {
			stage1 := g + 1
			want := float64(clock.FwdVersion(s, stage1))
			if task.bwdSeen[s][g] != want {
				t.Fatalf("microbatch %d stage %d: backward saw %g, want stashed forward version %g", s, stage1, task.bwdSeen[s][g], want)
			}
			if task.bwdSeen[s][g] != task.fwdSeen[s][g] {
				t.Fatal("PipeDream must use identical forward and backward weights")
			}
		}
	}
}

func TestGPipeSeesCurrentWeightsEverywhere(t *testing.T) {
	task, tr := probeTrainer(t, GPipe, 5, 5, 8, 2, 3, 0)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	for s := range task.fwdSeen {
		want := float64(clock.BwdVersion(s)) // = committed updates before s
		for g := range task.fwdSeen[s] {
			if task.fwdSeen[s][g] != want || task.bwdSeen[s][g] != want {
				t.Fatalf("microbatch %d: GPipe saw fwd %g bwd %g, want synchronous %g",
					s, task.fwdSeen[s][g], task.bwdSeen[s][g], want)
			}
		}
	}
}

func TestFirstStageDelayEqualsTable1(t *testing.T) {
	// Measured delay for the first stage must be τ_fwd = (2(P−1)+1)/N
	// minibatches: in steady state the forward version lags the consuming
	// update by ⌈(2(P−i)+1 − j)/N⌉ for microbatch j; check the average gap.
	const stages, batch, micro = 8, 8, 2 // N = 4
	task, tr := probeTrainer(t, PipeMare, stages, stages, batch, micro, 6, 0)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	n := clock.N
	// Steady-state minibatch index.
	t0 := len(task.fwdSeen)/n - 2
	gap := 0.0
	for j := 0; j < n; j++ {
		s := t0*n + j
		consuming := float64(clock.Minibatch(s) + 1)
		gap += consuming - task.fwdSeen[s][0]
	}
	gap /= float64(n)
	wantMean := float64(2*(stages-1)+n) / float64(n)
	if math.Abs(gap-wantMean) > 1e-12 {
		t.Fatalf("measured first-stage delay %g updates, want %g", gap, wantMean)
	}
	// And the trainer's τ table must match Table 1 exactly.
	if tau := tr.Taus()[0]; math.Abs(tau-float64(2*(stages-1)+1)/float64(n)) > 1e-12 {
		t.Fatalf("τ_fwd[first stage] = %g, want %g", tau, float64(2*(stages-1)+1)/float64(n))
	}
}

func TestT2CorrectionExtrapolatesVelocity(t *testing.T) {
	// With the counting optimizer every update moves each weight by exactly
	// +1, so δ converges to 1 and the corrected backward weights approach
	// master − τ_i — i.e. T2 exactly reconstructs the forward-time weights
	// for a constant-velocity trajectory.
	const stages, batch, micro = 6, 8, 2
	task, tr := probeTrainer(t, PipeMare, stages, stages, batch, micro, 30, 0.135)
	clock := pipeline.Clock{P: tr.Stages(), N: tr.Microbatches()}
	last := len(task.bwdSeen) - 1
	master := float64(clock.BwdVersion(last))
	for g, got := range task.bwdSeen[last] {
		tau := tr.Taus()[g]
		want := master - tau
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("stage %d: corrected backward weight %g, want ≈ master−τ = %g", g+1, got, want)
		}
	}
}

func TestSegmentEnds(t *testing.T) {
	ends := segmentEnds(8, 2)
	want := []int{4, 4, 4, 4, 8, 8, 8, 8}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("segmentEnds(8,2) = %v, want %v", ends, want)
		}
	}
	// One segment: everything ends at the last stage.
	for _, e := range segmentEnds(5, 1) {
		if e != 5 {
			t.Fatalf("segmentEnds(5,1) = %v", segmentEnds(5, 1))
		}
	}
	// Segments capped at P.
	ends = segmentEnds(3, 10)
	for i, e := range ends {
		if e != i+1 {
			t.Fatalf("segmentEnds(3,10) = %v", ends)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	task := newProbeTask(4, 64)
	opt := &countingOptimizer{ps: task.params}
	if _, err := New(task, opt, optim.Constant(0.1), Config{Stages: 9, BatchSize: 8, MicrobatchSize: 2}); err == nil {
		t.Fatal("more stages than groups must error")
	}
	if _, err := New(task, opt, optim.Constant(0.1), Config{BatchSize: 7, MicrobatchSize: 2}); err == nil {
		t.Fatal("batch not divisible by microbatch must error")
	}
	if _, err := New(task, opt, optim.Constant(0.1), Config{BatchSize: 0, MicrobatchSize: 2}); err == nil {
		t.Fatal("zero batch must error")
	}
}

func TestMethodString(t *testing.T) {
	if GPipe.String() != "GPipe" || PipeDream.String() != "PipeDream" || PipeMare.String() != "PipeMare" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method must still render")
	}
}

func TestWarmupEpochsRunSynchronously(t *testing.T) {
	// With T3 warmup, the first warmup epochs must behave like GPipe
	// (forward sees the live master everywhere).
	const stages, batch, micro = 5, 8, 2
	task := newProbeTask(stages, 4*batch)
	opt := &countingOptimizer{ps: task.params}
	tr, err := New(task, opt, optim.Constant(0.1), Config{
		Method: PipeMare, Stages: stages, BatchSize: batch, MicrobatchSize: micro,
		WarmupEpochs: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpochs(2, nil)
	clock := pipeline.Clock{P: stages, N: batch / micro}
	microsPerEpoch := 4 * (batch / micro)
	for s := 0; s < microsPerEpoch; s++ { // first epoch: synchronous
		want := float64(clock.BwdVersion(s))
		for g := range task.fwdSeen[s] {
			if task.fwdSeen[s][g] != want {
				t.Fatalf("warmup microbatch %d saw %g, want synchronous %g", s, task.fwdSeen[s][g], want)
			}
		}
	}
	// Second epoch: stage 1 must now see delayed versions.
	s := microsPerEpoch + 2*stages // steady-ish state inside epoch 2
	if task.fwdSeen[s][0] >= float64(clock.BwdVersion(s)) {
		t.Fatal("after warmup, the first stage must see stale weights")
	}
}

// --- cost-balanced partitioning ---

// sizedProbeTask builds a probe task whose group g holds a weight vector
// of sizes[g] scalars, so the monolithic cost proxy (weight counts) is
// skewed on purpose.
func sizedProbeTask(numTrain int, sizes ...int) *probeTask {
	t := &probeTask{numTrain: numTrain}
	for _, sz := range sizes {
		p := nn.NewParam("probe", sz)
		t.params = append(t.params, p)
		t.groups = append(t.groups, pipeline.ParamGroup{Name: "g", Params: []*nn.Param{p}})
	}
	return t
}

func TestPartitionCostModeBalancesMonolithicTaskBySize(t *testing.T) {
	// One huge group among tiny ones: even-by-count pairs it with a
	// neighbour, cost mode isolates it.
	task := sizedProbeTask(64, 1, 1, 100, 1, 1, 1)
	opt := &countingOptimizer{ps: task.params}
	tr, err := New(task, opt, optim.Constant(0.1), Config{
		Stages: 3, BatchSize: 8, MicrobatchSize: 2,
		Partition: pipeline.PartitionCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PartitionMode() != pipeline.PartitionCost {
		t.Fatalf("mode = %v", tr.PartitionMode())
	}
	gc := tr.GroupCosts()
	if len(gc) != 6 || gc[2] != 100 {
		t.Fatalf("group costs = %v, want size proxy with 100 at index 2", gc)
	}
	// The heavy group must sit alone on its stage.
	heavy := tr.Partition().StageOf[2]
	for g, s := range tr.Partition().StageOf {
		if g != 2 && s == heavy {
			t.Fatalf("group %d shares stage %d with the heavy group: %v", g, s, tr.Partition().StageOf)
		}
	}
	if im := tr.StageImbalance(); im != pipeline.Imbalance(tr.StageCosts()) {
		t.Fatalf("imbalance accessor inconsistent: %g", im)
	}
	// The trainer still trains under the skewed partition.
	tr.TrainEpochs(1, nil)
}

func TestPartitionEvenKeepsHistoricalSplit(t *testing.T) {
	task := sizedProbeTask(64, 1, 1, 100, 1, 1, 1)
	opt := &countingOptimizer{ps: task.params}
	tr, err := New(task, opt, optim.Constant(0.1), Config{
		Stages: 3, BatchSize: 8, MicrobatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2} // ⌊g·P/G⌋
	for g, s := range tr.Partition().StageOf {
		if s != want[g] {
			t.Fatalf("even StageOf = %v, want %v", tr.Partition().StageOf, want)
		}
	}
	// Even mode still reports costs (for imbalance tracking).
	if len(tr.GroupCosts()) != 6 {
		t.Fatalf("even mode lost group costs: %v", tr.GroupCosts())
	}
}

func TestPartitionExplicitGroupCosts(t *testing.T) {
	task := newProbeTask(4, 64)
	opt := &countingOptimizer{ps: task.params}
	costs := []float64{9, 1, 1, 1}
	tr, err := New(task, opt, optim.Constant(0.1), Config{
		Stages: 2, BatchSize: 8, MicrobatchSize: 2,
		Partition: pipeline.PartitionCost, GroupCosts: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Partition().StageOf; got[0] != 0 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("explicit-cost StageOf = %v", got)
	}
	// Feeding a trainer's GroupCosts back reproduces its partition.
	tr2, err := New(newProbeTask(4, 64), &countingOptimizer{ps: task.params}, optim.Constant(0.1), Config{
		Stages: 2, BatchSize: 8, MicrobatchSize: 2,
		Partition: pipeline.PartitionProfile, GroupCosts: tr.GroupCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := range costs {
		if tr.Partition().StageOf[g] != tr2.Partition().StageOf[g] {
			t.Fatalf("pinned costs gave different partition: %v vs %v",
				tr.Partition().StageOf, tr2.Partition().StageOf)
		}
	}
}

func TestPartitionConfigErrors(t *testing.T) {
	task := newProbeTask(4, 64)
	base := Config{Stages: 2, BatchSize: 8, MicrobatchSize: 2}
	mk := func(mut func(*Config)) error {
		cfg := base
		mut(&cfg)
		_, err := New(task, &countingOptimizer{ps: task.params}, optim.Constant(0.1), cfg)
		return err
	}
	if err := mk(func(c *Config) { c.GroupCosts = []float64{1, 1, 1, 1} }); err == nil {
		t.Fatal("explicit costs with even mode must fail")
	}
	if err := mk(func(c *Config) {
		c.Partition = pipeline.PartitionCost
		c.GroupCosts = []float64{1, 1}
	}); err == nil {
		t.Fatal("cost length mismatch must fail")
	}
	if err := mk(func(c *Config) { c.Partition = pipeline.PartitionMode(99) }); err == nil {
		t.Fatal("unknown partition mode must fail")
	}
}
