package core

import (
	"os"
	"path/filepath"
	"testing"

	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

// fuzzTrainer builds the small all-techniques trainer the fuzz target
// restores into: 4 probe groups over 4 stages with T2 on, so the
// checkpoint carries every section kind (meta, per-stage state with
// masters/delta/moments, version rings).
func fuzzTrainer(f testing.TB) *Trainer {
	task := newProbeTask(4, 32)
	var ps []*nn.Param
	for _, g := range task.groups {
		ps = append(ps, g.Params...)
	}
	tr, err := New(task, &countingOptimizer{ps: ps}, optim.Constant(0.1), Config{
		Method: PipeMare, Stages: 4, BatchSize: 8, MicrobatchSize: 2,
		T2D: 0.3, Seed: 7,
	})
	if err != nil {
		f.Fatal(err)
	}
	return tr
}

// FuzzRestoreFrom fuzzes the checkpoint parser behind RestoreFrom — the
// same codec the live join handoff reuses — with a real checkpoint as
// the seed corpus. The contract under arbitrary bytes is error-or-
// success, never a panic, and never a half-applied restore that later
// training trips over: after a failed restore the trainer must still
// train.
func FuzzRestoreFrom(f *testing.F) {
	seedTr := fuzzTrainer(f)
	seedTr.TrainEpochs(1, nil)
	path, err := seedTr.WriteCheckpoint(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add(raw[:len(raw)/2])
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	truncTail := append([]byte(nil), raw[:len(raw)-3]...)
	f.Add(truncTail)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "ckpt-00000001.pm")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tr := fuzzTrainer(t)
		if err := tr.RestoreFrom(p); err != nil {
			// A rejected restore must leave the trainer trainable.
			tr.TrainEpochs(1, nil)
		}
	})
}
