package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pipemare/internal/replica"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
	"pipemare/internal/transport"
)

// Checkpointing serializes the leader's complete training state to a
// file of wire frames (the transport's framed codec: magic, version and
// CRC per frame), so restore is as bit-exact as a collective: master
// weights, T2 δ and corrected buffers, the full optimizer moment state,
// the per-stage weight-version rings the asynchronous methods read
// historical versions from, and the step/epoch/microbatch clocks.
//
// The batch order is a pure function of (seed, epoch) — run() draws a
// fresh RNG per epoch — so no RNG state needs to be saved: a restored
// trainer replays the interrupted epoch's order and skips the
// minibatches the checkpoint already contains.

// Checkpoint section types (frame Header.Type within a checkpoint file —
// a namespace separate from the live wire protocol).
const (
	ckptMeta  = 1 // format version, clocks, and layout counts
	ckptStage = 2 // one stage's masters, T2 state, and moments
	ckptRing  = 3 // one stage's weight-version ring
	ckptEnd   = 4 // end marker: the file was written completely
)

// ckptFormat is the checkpoint format version. Version 2 switched the
// tensor encoding to carry a per-tensor dtype tag (float32 support), so
// version-1 files are rejected rather than mis-decoded.
const ckptFormat = 2

// ckptPattern matches checkpoint files in a directory; the step number
// is zero-padded so lexical order is step order.
const ckptPattern = "ckpt-*.pm"

// maybeCheckpoint writes a checkpoint when one is configured and the
// step clock hits the cadence. Called by run() after every committed
// minibatch.
func (t *Trainer) maybeCheckpoint() error {
	if t.cfg.CheckpointDir == "" || t.cfg.CheckpointEvery <= 0 || t.step%t.cfg.CheckpointEvery != 0 {
		return nil
	}
	start := time.Now()
	t0 := t.cfg.Trace.Now()
	if _, err := t.WriteCheckpoint(t.cfg.CheckpointDir); err != nil {
		return fmt.Errorf("core: checkpoint at step %d: %w", t.step, err)
	}
	t.ctlTrack().Span(trace.NameCkptWrite, t0, -1, -1, 0)
	t.ckptWrites++
	t.ckptNs += time.Since(start).Nanoseconds()
	return nil
}

// CheckpointStats reports how many checkpoints this trainer has written
// and the cumulative wall time spent writing them.
func (t *Trainer) CheckpointStats() (writes int, ns int64) {
	return t.ckptWrites, t.ckptNs
}

// WriteCheckpoint serializes the trainer's state to a new step-stamped
// file in dir (created if missing), written to a temp file and renamed
// so a crash mid-write never leaves a truncated file under the
// checkpoint name. It returns the file's path.
func (t *Trainer) WriteCheckpoint(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	momentCount := 0
	optClock := 0
	if t.stateful != nil {
		momentCount = t.stateful.MomentCount()
		optClock = t.stateful.Clock()
	}
	meta := transport.AppendU32(nil, ckptFormat)
	meta = transport.AppendU32(meta, uint32(t.step))
	meta = transport.AppendU32(meta, uint32(t.epoch))
	meta = transport.AppendU32(meta, uint32(t.micro))
	meta = transport.AppendU32(meta, uint32(t.clock.P))
	meta = transport.AppendU32(meta, uint32(len(t.params)))
	meta = transport.AppendBool(meta, t.delta != nil)
	meta = transport.AppendU32(meta, uint32(momentCount))
	meta = transport.AppendU32(meta, uint32(optClock))
	buf := transport.AppendMessage(nil, transport.Header{Type: ckptMeta, Stage: -1}, meta)
	for s := 0; s < t.clock.P; s++ {
		lo, hi := t.stageLo[s], t.stageHi[s]
		p := transport.AppendTensors(nil, t.masters[lo:hi])
		if t.delta != nil {
			p = transport.AppendTensors(p, t.delta[lo:hi])
			p = transport.AppendTensors(p, t.corrected[lo:hi])
		}
		for i := lo; momentCount > 0 && i < hi; i++ {
			p = transport.AppendTensors(p, t.stateful.MomentTensors(i))
		}
		buf = transport.AppendMessage(buf, transport.Header{Type: ckptStage, Stage: int32(s)}, p)
	}
	for s := 0; s < t.clock.P; s++ {
		base, snaps := t.store.History(s)
		p := transport.AppendU32(nil, uint32(base))
		p = transport.AppendU32(p, uint32(len(snaps)))
		for _, sn := range snaps {
			p = transport.AppendTensors(p, sn)
		}
		buf = transport.AppendMessage(buf, transport.Header{Type: ckptRing, Stage: int32(s)}, p)
	}
	buf = transport.AppendMessage(buf, transport.Header{Type: ckptEnd, Stage: -1}, nil)

	f, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%08d.pm", t.step))
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// ckptState is a fully parsed checkpoint, staged off to the side so a
// corrupt file is rejected before a single live tensor is touched.
type ckptState struct {
	step, epoch, micro int
	optClock           int
	stages             [][]*tensor.Tensor
	ringBase           []int
	ringSnaps          [][][]*tensor.Tensor
}

// parseCheckpoint decodes and validates b against this trainer's layout.
func (t *Trainer) parseCheckpoint(b []byte) (*ckptState, error) {
	h, payload, rest, err := transport.NextMessage(b)
	if err != nil {
		return nil, err
	}
	if h.Type != ckptMeta {
		return nil, fmt.Errorf("first section is type %d, want meta", h.Type)
	}
	c := transport.NewCursor(payload)
	format := c.I32()
	st := &ckptState{step: c.I32(), epoch: c.I32(), micro: c.I32()}
	stages, params := c.I32(), c.I32()
	t2 := c.Bool()
	momentCount := c.I32()
	st.optClock = c.I32()
	if err := c.Done(); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	if format != ckptFormat {
		return nil, fmt.Errorf("format version %d, want %d", format, ckptFormat)
	}
	if stages != t.clock.P || params != len(t.params) {
		return nil, fmt.Errorf("checkpoint has %d stages / %d params, trainer has %d / %d", stages, params, t.clock.P, len(t.params))
	}
	if t2 != (t.delta != nil) {
		return nil, fmt.Errorf("checkpoint T2 state %v, trainer %v", t2, t.delta != nil)
	}
	wantMoments := 0
	if t.stateful != nil {
		wantMoments = t.stateful.MomentCount()
	}
	if momentCount != wantMoments {
		return nil, fmt.Errorf("checkpoint has %d moment tensors per param, optimizer has %d (different optimizer?)", momentCount, wantMoments)
	}
	st.stages = make([][]*tensor.Tensor, stages)
	st.ringBase = make([]int, stages)
	st.ringSnaps = make([][][]*tensor.Tensor, stages)
	for s := 0; s < stages; s++ {
		h, payload, rest, err = transport.NextMessage(rest)
		if err != nil {
			return nil, err
		}
		if h.Type != ckptStage || int(h.Stage) != s {
			return nil, fmt.Errorf("section %d is type %d stage %d, want stage section %d", s, h.Type, h.Stage, s)
		}
		lo, hi := t.stageLo[s], t.stageHi[s]
		c := transport.NewCursor(payload)
		buf := c.TensorsInto(nil)
		if t.delta != nil {
			buf = append(buf, c.TensorsInto(nil)...)
			buf = append(buf, c.TensorsInto(nil)...)
		}
		for i := lo; momentCount > 0 && i < hi; i++ {
			buf = append(buf, c.TensorsInto(nil)...)
		}
		if err := c.Done(); err != nil {
			return nil, fmt.Errorf("stage %d: %w", s, err)
		}
		want := hi - lo
		if t.delta != nil {
			want *= 3
		}
		want += (hi - lo) * momentCount
		if len(buf) != want {
			return nil, fmt.Errorf("stage %d has %d tensors, want %d", s, len(buf), want)
		}
		st.stages[s] = buf
	}
	for s := 0; s < stages; s++ {
		h, payload, rest, err = transport.NextMessage(rest)
		if err != nil {
			return nil, err
		}
		if h.Type != ckptRing || int(h.Stage) != s {
			return nil, fmt.Errorf("section is type %d stage %d, want ring section %d", h.Type, h.Stage, s)
		}
		c := transport.NewCursor(payload)
		st.ringBase[s] = c.I32()
		n := c.Count(4)
		snaps := make([][]*tensor.Tensor, 0, n)
		for i := 0; i < n; i++ {
			snaps = append(snaps, c.TensorsInto(nil))
		}
		if err := c.Done(); err != nil {
			return nil, fmt.Errorf("ring %d: %w", s, err)
		}
		st.ringSnaps[s] = snaps
	}
	h, _, _, err = transport.NextMessage(rest)
	if err != nil {
		return nil, err
	}
	if h.Type != ckptEnd {
		return nil, fmt.Errorf("missing end marker (truncated checkpoint)")
	}
	return st, nil
}

// apply installs a parsed checkpoint into the live trainer state.
func (t *Trainer) apply(st *ckptState) error {
	for s := 0; s < t.clock.P; s++ {
		lo, hi := t.stageLo[s], t.stageHi[s]
		k := 0
		take := func(dst *tensor.Tensor) error {
			src := st.stages[s][k]
			k++
			if !dst.SameShape(src) {
				return fmt.Errorf("core: checkpoint stage %d tensor %d shape %v, want %v", s, k-1, src.Shape, dst.Shape)
			}
			if dst.DType() != src.DType() {
				return fmt.Errorf("core: checkpoint stage %d tensor %d dtype %v, want %v", s, k-1, src.DType(), dst.DType())
			}
			dst.CopyFrom(src)
			return nil
		}
		for i := lo; i < hi; i++ {
			if err := take(t.masters[i]); err != nil {
				return err
			}
		}
		if t.delta != nil {
			for i := lo; i < hi; i++ {
				if err := take(t.delta[i]); err != nil {
					return err
				}
			}
			for i := lo; i < hi; i++ {
				if err := take(t.corrected[i]); err != nil {
					return err
				}
			}
		}
		if t.stateful != nil {
			for i := lo; i < hi; i++ {
				for _, mt := range t.stateful.MomentTensors(i) {
					if err := take(mt); err != nil {
						return err
					}
				}
			}
		}
		t.store.RestoreStage(s, st.ringBase[s], st.ringSnaps[s])
	}
	t.setStep(st.step)
	if t.stateful != nil {
		t.stateful.SetClock(st.optClock)
	}
	t.epoch = st.epoch
	t.micro = st.micro
	t.diverged = false
	return nil
}

// RestoreFrom restores the trainer from one checkpoint file. The file is
// parsed and validated completely before any live state changes, so an
// invalid file leaves the trainer untouched.
func (t *Trainer) RestoreFrom(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := t.parseCheckpoint(b)
	if err != nil {
		return fmt.Errorf("core: restoring %s: %w", path, err)
	}
	if err := t.apply(st); err != nil {
		return err
	}
	t.ctlTrack().Instant(trace.NameCkptRestore, -1, -1, 0)
	return t.syncRestoredFollowers()
}

// RestoreLatest restores the trainer from the newest valid checkpoint in
// dir (older files are tried in turn when a newer one is corrupt) and
// returns the restored step. Followers — in-process or remote — are
// re-synchronized with the restored leader state, including their
// weight-version rings, so training resumes exactly where the
// checkpointed run would have continued.
func (t *Trainer) RestoreLatest(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, ckptPattern))
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("core: no checkpoints under %s", dir)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	var lastErr error
	for _, path := range paths {
		if err := t.RestoreFrom(path); err != nil {
			lastErr = err
			continue
		}
		return t.step, nil
	}
	return 0, fmt.Errorf("core: no valid checkpoint under %s: %w", dir, lastErr)
}

// syncRestoredFollowers pushes the restored leader state to every
// follower: epoch and step clocks, full per-stage state (with moments
// under the fault-tolerant layout), and the weight-version rings. It
// also computes how many of the restored epoch's minibatches are already
// committed, for run() to skip.
func (t *Trainer) syncRestoredFollowers() error {
	for i, m := range t.followers {
		if err := t.syncMember(m, i+1); err != nil {
			return err
		}
	}
	perEpoch := t.task.NumTrain() / t.cfg.BatchSize
	skip := t.step - t.epoch*perEpoch
	if skip == perEpoch {
		// Checkpoint taken at the last minibatch of an epoch, before the
		// epoch counter advanced: resume at the next epoch's start. (The
		// boundary epoch's metric entry belongs to the interrupted run.)
		t.epoch++
		skip = 0
	}
	if skip < 0 || skip > perEpoch {
		return fmt.Errorf("core: checkpoint clocks inconsistent: step %d, epoch %d, %d minibatches per epoch", t.step, t.epoch, perEpoch)
	}
	t.resumeSkip = skip
	return nil
}

// syncMember pushes the leader's complete live state to one member —
// epoch and step clocks, full per-stage state (with moments under the
// fault-tolerant layout), and the weight-version rings. It is the whole
// state a replica trains from, which makes it both the restore
// re-synchronization and the live handoff a mid-run joiner (or a
// rejoining standby) receives: a member that has seen syncMember is
// indistinguishable from one that trained alongside the leader from the
// start. r is the member's replica index, for error attribution.
func (t *Trainer) syncMember(m replica.Member, r int) error {
	m.SyncEpoch()
	m.SyncFromLeader()
	if vr, ok := m.(replica.VersionRestorer); ok {
		for s := 0; s < t.clock.P; s++ {
			base, snaps := t.store.History(s)
			vr.RestoreVersions(s, base, snaps)
		}
	}
	if er, ok := m.(replica.Erring); ok {
		if err := er.Err(); err != nil {
			return fmt.Errorf("core: syncing state to replica %d: %w", r, err)
		}
	}
	return nil
}

// epochSeed derives the per-epoch data-order seed: a fixed mix of the
// run seed and the epoch index, so the order is reproducible from the
// clocks alone (no RNG state to checkpoint).
func epochSeed(seed int64, epoch int) int64 {
	return seed ^ (int64(epoch)+1)*int64(-0x61C8864680B583EB) // 2^64 / φ, signed
}
