// Package core implements the PipeMare training system (§3 of the paper):
// asynchronous pipeline-parallel SGD with Technique 1 (learning-rate
// rescheduling), Technique 2 (discrepancy correction) and Technique 3
// (synchronous warmup epochs), plus the two baselines it is compared
// against — GPipe-style synchronous training and PipeDream-style weight
// stashing — and the recompute delay path of Appendix D.
//
// The trainer simulates the pipeline at microbatch granularity using the
// timing model of package pipeline: for every microbatch it installs the
// stage-appropriate delayed weight version for the forward pass, a
// method-dependent version for the backward pass, runs real backprop
// through the task's model, and commits optimizer updates at minibatch
// boundaries — the same "queue of weights per pipeline stage" simulation
// the paper describes in Appendix C.4.
//
// How those per-slot operations are scheduled onto goroutines is delegated
// to a pluggable engine (package engine): the trainer implements
// engine.Host — stage-indexed install/restore/commit primitives plus
// per-stage forward/backward compute slots over in-flight microbatch
// machines — and the configured engine.Engine drives one minibatch at a
// time through it. Tasks implementing StageTask execute as true per-stage
// segments (so engines can overlap microbatches across stages); plain
// Tasks run monolithically inside the last stage's forward slot and stage
// 0's backward slot. Config.Engine selects the engine; nil means the
// serial Reference engine.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"pipemare/internal/data"
	"pipemare/internal/engine"
	"pipemare/internal/engine/replicated"
	"pipemare/internal/metrics"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
	"pipemare/internal/replica"
	"pipemare/internal/tensor"
	"pipemare/internal/trace"
)

// Method selects the pipeline-parallel training method.
type Method int

// The three methods of Table 1.
const (
	// GPipe is synchronous training: no delay, pipeline bubbles.
	GPipe Method = iota
	// PipeDream stashes forward weights so τ_fwd = τ_bkwd = (2(P−i)+1)/N.
	PipeDream
	// PipeMare runs fully asynchronously: τ_fwd = (2(P−i)+1)/N, τ_bkwd = 0.
	PipeMare
)

// String names the method.
func (m Method) String() string {
	switch m {
	case GPipe:
		return "GPipe"
	case PipeDream:
		return "PipeDream"
	case PipeMare:
		return "PipeMare"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Task abstracts a model + loss over an indexed training set. Forward and
// Backward are split so the trainer can install different weight versions
// between them.
type Task interface {
	// Groups returns the model's parameters in topological order, grouped
	// so that weights that must share a stage stay together.
	Groups() []pipeline.ParamGroup
	// NumTrain returns the training-set size.
	NumTrain() int
	// Forward computes the mean loss on the given sample indices, caching
	// activations for Backward.
	Forward(idx []int) float64
	// Backward backpropagates from the last Forward, accumulating
	// parameter gradients.
	Backward()
	// EvalTest returns the task metric on the held-out set (accuracy in
	// percent, or BLEU) using the current forward weights.
	EvalTest() float64
}

// Replicable is a Task that can produce an architecturally identical
// fresh instance for data-parallel replication (Config.Replicas > 1).
// The clone must have the same weight-group structure and parameter
// shapes; its initial weights are overwritten with the leader's before
// training starts, so the clone's own initialization does not matter.
type Replicable interface {
	Task
	// CloneTask returns a fresh task instance over the same dataset with
	// the same architecture.
	CloneTask() Task
}

// StageTask is a Task whose network compiles to an op program aligned with
// its weight groups, so the trainer can execute it as per-stage segments:
// any stage partition of the groups induces contiguous op ranges, and the
// boundary activations live in per-microbatch machines. Tasks implementing
// StageTask let the concurrent engine overlap several microbatches across
// pipeline stages; plain Tasks fall back to monolithic execution (the
// whole forward runs in the last stage's slot, the whole backward in the
// first stage's).
type StageTask interface {
	Task
	// Program returns the compiled op program. Ops must be grouped in the
	// same order as Groups().
	Program() *nn.Program
	// BindMicro loads the indexed samples (inputs and labels) into a
	// freshly reset machine.
	BindMicro(m *nn.Machine, idx []int)
}

// Config configures a training run.
type Config struct {
	Method         Method
	Stages         int // P; 0 means one stage per weight group (fine-grained maximum)
	BatchSize      int
	MicrobatchSize int

	// Partition selects how weight groups are split into the P stages:
	// PartitionEven (the default, by group count), PartitionCost
	// (bottleneck-minimizing over the analytic per-group cost model), or
	// PartitionProfile (over measured per-group wall time from a
	// one-microbatch profiling pass at build time). The partition changes
	// each parameter's stage and therefore its delay τ_fwd — curves are
	// deterministic per mode, not across modes.
	Partition pipeline.PartitionMode

	// GroupCosts optionally supplies explicit per-group costs for the
	// cost/profile partition modes (e.g. from an offline profiler),
	// overriding the built-in estimators. Must match the task's group
	// count; requires a non-even partition mode.
	GroupCosts []float64

	// T1: learning-rate rescheduling annealing length in optimizer steps
	// (0 disables T1).
	T1K int
	// T2: discrepancy-correction decay hyperparameter D (0 disables T2).
	T2D float64
	// T3: number of initial synchronous (GPipe-style) warmup epochs.
	WarmupEpochs int

	// RecomputeSegments enables the Appendix D recompute delay path with
	// the given number of gradient-checkpoint segments (0 disables it).
	RecomputeSegments int

	ClipNorm float64 // global gradient-norm clip (0 disables)
	LossCap  float64 // divergence threshold (0 = 1e6)
	Seed     int64

	// Replicas is the data-parallel replica count R (0 or 1 disables
	// replication). With R > 1 the task must implement Replicable: the
	// trainer owns R−1 follower trainers, each minibatch's microbatches
	// are split contiguously across the replicas, and one shared
	// optimizer step commits on this (leader) trainer after a
	// deterministic gradient all-reduce — bit-identical to the
	// single-replica curves. R must not exceed the microbatch count N.
	Replicas int

	// ShardedStep selects whether the optimizer commit is sharded across
	// the data-parallel replicas (ZeRO / PipeDream-2BW style): each replica
	// owns a contiguous shard of the pipeline stages, holds the optimizer
	// moment state only for that shard, and steps it locally after the
	// gradient all-reduce; the stepped weights (and T2 state) then
	// all-gather back. Curves stay bit-identical to the leader-serial
	// commit. The default (ShardedStepAuto) shards whenever Replicas > 1
	// and the optimizer supports it (optim.ShardCloner).
	ShardedStep ShardedStepMode

	// Engine selects the execution engine; nil means the single-goroutine
	// Reference engine (or, with Replicas > 1, the replicated engine over
	// Reference inners). With Replicas > 1 the engine must be
	// replica-aware (replica.Aware).
	Engine engine.Engine

	// Followers optionally supplies the member surface for follower
	// replicas 1..Replicas-1 instead of building in-process follower
	// trainers — the hook the transport layer uses to connect remote
	// worker processes (pipemare.WithTransport). New calls it once per
	// follower, after the leader is fully built, with the resolved
	// replication environment.
	Followers func(r int, env ReplicaEnv) (replica.Member, error)

	// FaultTolerant makes follower failures survivable under the sharded
	// commit: every replica holds the full optimizer moment state
	// (optim.Stateful over the full parameter range), stage state carries
	// the moments through every gather and broadcast, and a dead owner's
	// shard therefore survives on its peers — the precondition for
	// deterministic eviction when the commit is sharded. Serial-commit
	// eviction needs no extra state and works regardless. Enabled
	// automatically when checkpointing is configured with a sharded
	// commit (the restore path needs the mirrored moments).
	FaultTolerant bool

	// Elastic enables mid-run scale-up: the leader accepts joining worker
	// connections (Trainer.AcceptJoins), parks each until the next
	// minibatch boundary — the only point with no collective in flight —
	// and admits it with a live state handoff (masters, T2 state,
	// optimizer moments, version rings, clocks), growing the reduce tree
	// and commit plan to R+1. Requires Replicas >= 2 (a running replica
	// group to grow). Under the sharded commit it implies FaultTolerant,
	// exactly as eviction does: admission reshuffles stage ownership.
	Elastic bool

	// StragglerDeadline and StragglerMisses configure straggler demotion
	// for remote followers: a follower whose collective reply misses
	// StragglerDeadline for StragglerMisses consecutive deadline windows
	// is demoted to standby — kept alive, excluded from the reduce tree
	// and commit plan, its microbatches redistributed — and automatically
	// readmitted through the join handoff path once its late reply drains.
	// Zero values disable demotion (the default: wait indefinitely, bar
	// heartbeat liveness).
	StragglerDeadline time.Duration
	StragglerMisses   int

	// Heartbeat is the resolved remote-follower liveness cadence
	// (pipemare.WithHeartbeat); the join path reuses it when welcoming
	// admitted members so joiners get the same liveness contract as
	// dial-time followers.
	Heartbeat time.Duration

	// CheckpointDir, when non-empty, makes the leader serialize its full
	// training state (masters, optimizer moments, T2 accumulators, the
	// per-stage weight-version rings, and the step/epoch/microbatch
	// clocks) to a CRC'd frame file in that directory every
	// CheckpointEvery optimizer steps. Restore with Trainer.RestoreLatest
	// (or pipemare.Restore). Followers never checkpoint.
	CheckpointDir   string
	CheckpointEvery int

	// Trace, when non-nil, is the event recorder every layer under this
	// trainer emits into (slot spans, commit phases, collectives, wire
	// round-trips, fault instants). The recorder only reads clocks and
	// appends to its own buffers, so curves stay bit-identical with
	// tracing on or off. TraceReplica is the replica index events from
	// this trainer are attributed to (0 = leader); New propagates the
	// recorder and the right index to in-process followers.
	Trace        *trace.Recorder
	TraceReplica int
}

// ReplicaEnv is what a Config.Followers factory needs to connect a
// follower: the leader's member surface (initial state, clocks) and the
// resolved replication topology the remote side must agree with.
type ReplicaEnv struct {
	Leader   replica.Leader
	Replicas int
	Stages   int
	Sharded  bool
	Method   Method
	T2       bool
	// GroupCosts is the per-group cost vector the leader's partitioner
	// balanced, so a measured (profile) partition pins identically on a
	// remote worker.
	GroupCosts []float64
	// FaultTolerant propagates the leader's resolved fault-tolerance mode
	// so a remote follower builds the same (moment-extended) stage-state
	// layout.
	FaultTolerant bool
}

// ShardedStepMode selects the replica-sharded optimizer commit
// (Config.ShardedStep).
type ShardedStepMode int

const (
	// ShardedStepAuto shards the commit when Replicas > 1 and the
	// optimizer implements optim.ShardCloner.
	ShardedStepAuto ShardedStepMode = iota
	// ShardedStepOn requires the sharded commit; building the trainer
	// fails when Replicas < 2 or the optimizer cannot shard.
	ShardedStepOn
	// ShardedStepOff forces the leader-serial commit + full broadcast.
	ShardedStepOff
)

// Observer receives the curve after each completed epoch. epoch is the
// 1-based index of the entry just recorded — run.Loss[epoch-1] is always
// valid. When a single curve is threaded through repeated calls (RunInto),
// it is also the cumulative epoch count.
type Observer func(epoch int, run *metrics.Run)

// Trainer drives pipeline-parallel training of a Task.
type Trainer struct {
	task  Task
	opt   optim.Optimizer
	sched optim.Schedule
	cfg   Config
	eng   engine.Engine

	part       *pipeline.Partition
	groupCosts []float64 // per-group costs the partitioner balanced
	clock      pipeline.Clock
	store      *pipeline.VersionStore
	params     []*nn.Param // in forward order (matches optimizer order)
	stage1     []int       // 1-indexed stage per param
	stageLo    []int       // params[stageLo[s]:stageHi[s]] belong to stage s
	stageHi    []int
	stageLRs   [][]float64 // per-stage learning-rate scratch (StepStage)
	taus       []float64   // per-param τ_fwd in minibatch units
	masters    []*tensor.Tensor

	// T2 state: per-param velocity accumulator δ and the materialized
	// corrected backward weights (master − τ·δ).
	delta     []*tensor.Tensor
	corrected []*tensor.Tensor
	gamma     []float64
	prev      []*tensor.Tensor // master weights before the last update

	// Recompute state: segment end (1-indexed stage) per stage, and the
	// per-param recompute-corrected buffers.
	segEnd1 []int

	// Stage-split execution state (nil program for monolithic tasks): the
	// op ranges each stage owns and the in-flight microbatch machines. The
	// flows map is the only trainer state shared between engine goroutines
	// outside the per-stage ownership contract, hence its own mutex.
	stageTask  StageTask
	prog       *nn.Program
	opLo, opHi []int
	flowMu     sync.Mutex
	flows      map[int]*flight
	freeFlows  []*flight

	// Data-parallel replication state: a leader trainer owns its follower
	// members — in-process follower trainers, or remote proxies from
	// Config.Followers; a follower trainer holds a pointer back to its
	// leader for the post-step weight broadcast (or epoch-clock sync
	// under the sharded commit). plan assigns each stage's optimizer
	// commit to a replica owner when the sharded step is on.
	followers  []replica.Member
	leader     *Trainer
	sharded    bool
	plan       engine.CommitPlan
	stageState [][]*tensor.Tensor // per-stage gather layout (masters, T2 δ, corrected, FT moments)

	// Fault-tolerance state: stateful is the optimizer's moment surface
	// when it spans the full parameter range (nil otherwise); momentShare
	// marks the fault-tolerant stage-state layout (moments ride along in
	// stageState, so gathers and broadcasts mirror them onto every
	// replica).
	stateful    optim.Stateful
	momentShare bool

	observer   Observer
	micro      int // global microbatch counter s
	step       int // optimizer step counter (minibatches committed)
	commitStep int // step index of the update being committed (BeginStep)
	epoch      int // cumulative epochs completed (persists across Run calls)
	diverged   bool
	resumeSkip int // full minibatches to skip in the first epoch after a restore
	closed     bool

	ckptWrites int   // checkpoints written
	ckptNs     int64 // cumulative wall time spent writing them

	// Elastic-membership state: parked joiner connections awaiting the
	// next minibatch boundary (fed by AcceptJoins goroutines, drained on
	// the run goroutine), the listeners and cancel that release them, and
	// the admission counters.
	joinMu     sync.Mutex
	pending    []pendingJoin
	joinLis    []io.Closer
	joinCtx    context.Context
	joinCancel context.CancelFunc
	joins      int   // members admitted mid-run (fresh joins and rejoins)
	handoffNs  int64 // cumulative wall time spent in state handoffs
}

// flight is one in-flight microbatch: its sample indices and, for
// stage-split tasks, its machine (registers, gradients, activation tape).
type flight struct {
	mb []int
	m  *nn.Machine
}

// New validates the configuration and builds a Trainer. The optimizer must
// have been constructed over exactly the parameters of task.Groups() in
// order (use Params on the returned trainer's partition, or build the
// optimizer from the same group traversal).
func New(task Task, opt optim.Optimizer, sched optim.Schedule, cfg Config) (*Trainer, error) {
	groups := task.Groups()
	p := cfg.Stages
	if p == 0 {
		p = len(groups)
	}
	if cfg.BatchSize <= 0 || cfg.MicrobatchSize <= 0 || cfg.BatchSize%cfg.MicrobatchSize != 0 {
		return nil, fmt.Errorf("core: batch size %d must be a positive multiple of microbatch size %d", cfg.BatchSize, cfg.MicrobatchSize)
	}
	if task.NumTrain() < cfg.BatchSize {
		return nil, fmt.Errorf("core: training set (%d samples) smaller than one batch (%d)", task.NumTrain(), cfg.BatchSize)
	}
	part, costs, err := buildPartition(task, groups, p, cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.BatchSize / cfg.MicrobatchSize
	if cfg.LossCap == 0 {
		cfg.LossCap = 1e6
	}
	if got, want := len(opt.Params()), len(part.Params()); got != want {
		return nil, fmt.Errorf("core: optimizer has %d params, partition has %d", got, want)
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("core: replicas must be >= 0, got %d", cfg.Replicas)
	}
	replicas := cfg.Replicas
	if replicas == 0 {
		replicas = 1
	}
	if replicas > n {
		return nil, fmt.Errorf("core: %d replicas exceed the %d microbatches per minibatch (every replica needs at least one)", replicas, n)
	}
	eng := cfg.Engine
	if eng == nil {
		if replicas > 1 {
			eng = replicated.New()
		} else {
			eng = engine.NewReference()
		}
	}
	if replicas > 1 {
		if _, ok := eng.(replica.Aware); !ok {
			return nil, fmt.Errorf("core: engine %q is not replica-aware; use the replicated engine (internal/engine/replicated) to train %d replicas", eng.Name(), replicas)
		}
		if _, ok := task.(Replicable); !ok && cfg.Followers == nil {
			return nil, fmt.Errorf("core: task %T does not implement Replicable; %d-replica training needs CloneTask (or a Followers factory)", task, replicas)
		}
	}
	sharded := false
	switch cfg.ShardedStep {
	case ShardedStepAuto:
		_, ok := opt.(optim.ShardCloner)
		sharded = replicas > 1 && ok
	case ShardedStepOn:
		if replicas < 2 {
			return nil, fmt.Errorf("core: the sharded optimizer step needs at least 2 replicas, got %d (it shards the commit across replicas)", replicas)
		}
		if _, ok := opt.(optim.ShardCloner); !ok {
			return nil, fmt.Errorf("core: optimizer %T does not support state sharding (optim.ShardCloner); use ShardedStepOff for the leader-serial commit", opt)
		}
		sharded = true
	case ShardedStepOff:
	default:
		return nil, fmt.Errorf("core: unknown sharded-step mode %d", int(cfg.ShardedStep))
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.CheckpointDir != "" && sharded {
		// Restoring a sharded run redistributes the leader's full state to
		// the followers, which needs the mirrored-moment layout.
		cfg.FaultTolerant = true
	}
	if cfg.StragglerMisses > 0 && cfg.StragglerDeadline <= 0 {
		return nil, fmt.Errorf("core: straggler demotion needs a positive deadline (got %v for %d misses)", cfg.StragglerDeadline, cfg.StragglerMisses)
	}
	if cfg.Elastic && replicas < 2 {
		return nil, fmt.Errorf("core: elastic membership needs a running replica group to grow (Replicas >= 2), got %d", replicas)
	}
	if sharded && (cfg.Elastic || cfg.StragglerMisses > 0) {
		// Admitting a joiner — or re-admitting a demoted straggler — under
		// the sharded commit reshuffles stage ownership, which needs the
		// mirrored-moment layout exactly as eviction does.
		cfg.FaultTolerant = true
	}
	// The fault-tolerant layout needs the full moment state resident on
	// this trainer: Stateful over the complete parameter range.
	var stateful optim.Stateful
	if st, ok := opt.(optim.Stateful); ok {
		if sc, ok := opt.(optim.ShardCloner); ok {
			if r := sc.StateRange(); r.Lo == 0 && r.Hi == len(opt.Params()) {
				stateful = st
			}
		}
	}
	momentShare := cfg.FaultTolerant && stateful != nil
	if cfg.FaultTolerant && replicas > 1 && stateful == nil {
		return nil, fmt.Errorf("core: fault-tolerant replication needs an optimizer exposing its full moment state (optim.Stateful + optim.ShardCloner over every parameter), got %T", opt)
	}
	t := &Trainer{
		task: task, opt: opt, sched: sched, cfg: cfg, eng: eng,
		part: part, groupCosts: costs,
		clock: pipeline.Clock{P: p, N: n},
	}
	t.stateful = stateful
	t.momentShare = momentShare
	t.params = part.Params()
	t.stageLo = make([]int, p)
	t.stageHi = make([]int, p)
	t.stageLRs = make([][]float64, p)
	for s, ps := range part.Stages {
		t.stageLo[s] = len(t.stage1)
		for range ps {
			t.stage1 = append(t.stage1, s+1)
		}
		t.stageHi[s] = len(t.stage1)
		t.stageLRs[s] = make([]float64, len(ps))
	}
	t.taus = make([]float64, len(t.params))
	for i := range t.params {
		t.taus[i] = pipeline.FwdDelay(t.stage1[i], p, n)
	}
	keep := (2*p+n)/n + 3
	t.store = pipeline.NewVersionStore(part.Stages, keep)
	t.masters = make([]*tensor.Tensor, len(t.params))
	for i, pm := range t.params {
		t.masters[i] = pm.Data
	}

	if cfg.T2D > 0 {
		t.delta = make([]*tensor.Tensor, len(t.params))
		t.corrected = make([]*tensor.Tensor, len(t.params))
		t.gamma = make([]float64, len(t.params))
		t.prev = make([]*tensor.Tensor, len(t.params))
		for i, pm := range t.params {
			t.delta[i] = tensor.NewLike(pm.Data)
			t.corrected[i] = pm.Data.Clone()
			t.prev[i] = pm.Data.Clone()
			// τ_bkwd = 0 for PipeMare, so γ_i = D^{1/τ_fwd,i}.
			t.gamma[i] = gammaFromD(cfg.T2D, t.taus[i])
		}
	}
	if cfg.RecomputeSegments > 0 {
		t.segEnd1 = segmentEnds(p, cfg.RecomputeSegments)
	}
	if st, ok := task.(StageTask); ok {
		prog := st.Program()
		lo, hi, err := prog.StageRanges(part.StageOf, p)
		if err != nil {
			return nil, err
		}
		t.stageTask, t.prog, t.opLo, t.opHi = st, prog, lo, hi
	}
	t.flows = make(map[int]*flight)
	t.sharded = sharded
	t.plan = engine.NewCommitPlan(p, replicas)
	// Per-stage state layout for the sharded-commit gather (StageState):
	// fixed after construction, so build it once instead of per commit.
	// Under the fault-tolerant layout the stage's optimizer moments ride
	// at the end (aliasing the live optimizer tensors), so every gather
	// and broadcast mirrors them onto all replicas.
	t.stageState = make([][]*tensor.Tensor, p)
	for s := 0; s < p; s++ {
		lo, hi := t.stageLo[s], t.stageHi[s]
		n := hi - lo
		if t.delta != nil {
			n *= 3
		}
		buf := make([]*tensor.Tensor, 0, n)
		for i := lo; i < hi; i++ {
			buf = append(buf, t.masters[i])
		}
		if t.delta != nil {
			for i := lo; i < hi; i++ {
				buf = append(buf, t.delta[i])
			}
			for i := lo; i < hi; i++ {
				buf = append(buf, t.corrected[i])
			}
		}
		if t.momentShare {
			for i := lo; i < hi; i++ {
				buf = append(buf, t.stateful.MomentTensors(i)...)
			}
		}
		t.stageState[s] = buf
	}
	if replicas > 1 && cfg.Followers != nil {
		env := ReplicaEnv{
			Leader: host{t}, Replicas: replicas, Stages: p,
			Sharded: sharded, Method: cfg.Method, T2: cfg.T2D > 0,
			GroupCosts:    costs,
			FaultTolerant: cfg.FaultTolerant,
		}
		for r := 1; r < replicas; r++ {
			m, err := cfg.Followers(r, env)
			if err != nil {
				return nil, fmt.Errorf("core: connecting replica %d: %w", r, err)
			}
			if m == nil {
				return nil, fmt.Errorf("core: follower factory returned nil member for replica %d", r)
			}
			t.followers = append(t.followers, m)
		}
		return t, nil
	}
	for r := 1; r < replicas; r++ {
		f, err := t.newFollower(task.(Replicable), r)
		if err != nil {
			return nil, err
		}
		t.followers = append(t.followers, host{f})
	}
	return t, nil
}

// shardOf maps replica r's stage shard to its optimizer parameter range
// under the current partition (empty when the replica owns no stages).
func (t *Trainer) shardOf(r int) optim.Shard {
	lo, hi := t.plan.Shard(r)
	if lo == hi {
		return optim.Shard{}
	}
	return optim.Shard{Lo: t.stageLo[lo], Hi: t.stageHi[hi-1]}
}

// buildPartition splits the task's weight groups into p stages under the
// configured partition mode, returning the partition and the per-group
// cost vector it balanced (the analytic estimate for even mode, so stage
// imbalance is always reportable).
func buildPartition(task Task, groups []pipeline.ParamGroup, p int, cfg Config) (*pipeline.Partition, []float64, error) {
	switch cfg.Partition {
	case pipeline.PartitionEven:
		if cfg.GroupCosts != nil {
			return nil, nil, fmt.Errorf("core: explicit group costs require the cost or profile partition mode")
		}
		part, err := pipeline.PartitionGroups(groups, p)
		if err != nil {
			return nil, nil, err
		}
		return part, analyticGroupCosts(task, groups), nil
	case pipeline.PartitionCost, pipeline.PartitionProfile:
		var costs []float64
		switch {
		case cfg.GroupCosts != nil:
			if len(cfg.GroupCosts) != len(groups) {
				return nil, nil, fmt.Errorf("core: %d group costs for %d weight groups", len(cfg.GroupCosts), len(groups))
			}
			costs = append([]float64(nil), cfg.GroupCosts...)
		case cfg.Partition == pipeline.PartitionProfile:
			if st, ok := task.(StageTask); ok {
				costs = measuredGroupCosts(st, groups, cfg.MicrobatchSize)
			} else {
				// Monolithic tasks cannot attribute wall time to groups;
				// fall back to the analytic proxy.
				costs = analyticGroupCosts(task, groups)
			}
		default:
			costs = analyticGroupCosts(task, groups)
		}
		part, err := pipeline.PartitionGroupsByCost(groups, costs, p)
		if err != nil {
			return nil, nil, err
		}
		return part, costs, nil
	}
	return nil, nil, fmt.Errorf("core: unknown partition mode %d", int(cfg.Partition))
}

// analyticGroupCosts is the static cost estimate the cost mode balances:
// the program's per-op FLOP/byte model for stage-split tasks, or scalar
// weight counts as a proxy for monolithic tasks.
func analyticGroupCosts(task Task, groups []pipeline.ParamGroup) []float64 {
	if st, ok := task.(StageTask); ok {
		cs := st.Program().GroupCosts(len(groups))
		out := make([]float64, len(cs))
		for i, c := range cs {
			out[i] = c.Weight()
		}
		return out
	}
	out := make([]float64, len(groups))
	for i, g := range groups {
		out[i] = float64(g.Size())
	}
	return out
}

// measuredGroupCosts is the profile mode's one-minibatch measurement pass:
// a warm forward+backward of one microbatch (machine pools and tape arenas
// reach steady state), then profileRuns timed passes accumulating per-op
// wall time onto the op's weight group. The gradients the backward halves
// accumulate are zeroed before training starts. Wall time is inherently
// noisy, so two builds may profile slightly different costs (and thus
// partitions); use Config.GroupCosts to pin a measured cost vector when
// exact reproducibility across trainers is required.
func measuredGroupCosts(st StageTask, groups []pipeline.ParamGroup, microbatchSize int) []float64 {
	const profileRuns = 3
	prog := st.Program()
	m := nn.NewMachine(prog.NumRegs)
	if len(groups) > 0 && len(groups[0].Params) > 0 {
		m.Tape.SetDType(groups[0].Params[0].Data.DType())
	}
	idx := make([]int, microbatchSize)
	for i := range idx {
		idx[i] = i
	}
	costs := make([]float64, len(groups))
	run := func(c []float64) {
		m.ResetRun()
		st.BindMicro(m, idx)
		if c == nil {
			prog.ForwardRange(m, 0, len(prog.Ops))
			prog.BackwardRange(m, 0, len(prog.Ops))
			return
		}
		prog.MeasureGroupCosts(m, c)
	}
	run(nil)
	for r := 0; r < profileRuns; r++ {
		run(costs)
	}
	var ps []*nn.Param
	for _, g := range groups {
		ps = append(ps, g.Params...)
	}
	nn.ZeroGrads(ps)
	return costs
}

// newFollower clones the leader's task, copies the leader's current
// (initial) weights into the clone — so the follower's version store
// seeds with the same version-0 snapshot — and builds the follower
// trainer. Under the sharded commit the follower's optimizer is a
// state-sharded sibling of the leader's (optim.ShardCloner) holding
// moment buffers only for the stages the follower owns; otherwise the
// follower is never stepped and gets a stateless placeholder.
func (t *Trainer) newFollower(rep Replicable, r int) (*Trainer, error) {
	ct := rep.CloneTask()
	var cps []*nn.Param
	for _, g := range ct.Groups() {
		cps = append(cps, g.Params...)
	}
	if len(cps) != len(t.params) {
		return nil, fmt.Errorf("core: replica %d clone has %d params, leader has %d", r, len(cps), len(t.params))
	}
	for i, cp := range cps {
		if !cp.Data.SameShape(t.params[i].Data) {
			return nil, fmt.Errorf("core: replica %d clone param %d (%s) shape %v differs from leader's %v",
				r, i, cp.Name, cp.Data.Shape, t.params[i].Data.Shape)
		}
		cp.Data.CopyFrom(t.params[i].Data)
	}
	fcfg := t.cfg
	fcfg.Replicas = 0
	fcfg.ShardedStep = ShardedStepOff
	fcfg.Engine = engine.NewReference() // follower engines are never used
	fcfg.Followers = nil
	fcfg.CheckpointDir = "" // only the leader checkpoints
	fcfg.Elastic = false    // only the leader admits joiners
	fcfg.StragglerDeadline, fcfg.StragglerMisses = 0, 0
	fcfg.TraceReplica = r // the shared recorder attributes this follower's events to replica r
	if fcfg.Partition != pipeline.PartitionEven {
		// Followers must land on the leader's exact partition: reuse its
		// (possibly measured) cost vector instead of re-estimating, so a
		// noisy profile pass cannot skew a follower's stage boundaries.
		fcfg.GroupCosts = t.groupCosts
	}
	var fopt optim.Optimizer
	switch {
	case t.cfg.FaultTolerant:
		// Fault tolerance mirrors the full moment state onto every replica
		// so any survivor can own any stage after an eviction.
		fopt = t.opt.(optim.ShardCloner).CloneShard(cps, optim.FullShard(len(cps)))
	case t.sharded:
		fopt = t.opt.(optim.ShardCloner).CloneShard(cps, t.shardOf(r))
	default:
		// Leader-serial commit: the follower never steps, so it holds no
		// moment state at all (an empty shard).
		fopt = optim.NewSGDShard(cps, 0, 0, optim.Shard{})
	}
	f, err := New(ct, fopt, t.sched, fcfg)
	if err != nil {
		return nil, fmt.Errorf("core: building replica %d: %w", r, err)
	}
	f.leader = t
	return f, nil
}

// NewFollower builds the standalone worker-process counterpart of the
// in-process followers New builds for Replicas > 1: a follower trainer
// for replica r of cfg.Replicas, returned as its member surface, ready
// to be served to a remote leader (internal/transport). The caller
// supplies a task, optimizer and schedule constructed exactly as the
// leader's — same seeds, same options — which the transport handshake
// verifies end to end with a checksum over the initial per-stage state.
// Unlike the in-process path the task is used directly, not cloned: the
// worker process owns it.
func NewFollower(task Task, opt optim.Optimizer, sched optim.Schedule, cfg Config, r int) (replica.Member, error) {
	R := cfg.Replicas
	if R < 2 {
		return nil, fmt.Errorf("core: a follower needs Replicas >= 2, got %d", R)
	}
	if r < 1 || r >= R {
		return nil, fmt.Errorf("core: follower replica %d out of range [1, %d)", r, R)
	}
	sharded := false
	switch cfg.ShardedStep {
	case ShardedStepAuto:
		_, sharded = opt.(optim.ShardCloner)
	case ShardedStepOn:
		if _, ok := opt.(optim.ShardCloner); !ok {
			return nil, fmt.Errorf("core: optimizer %T does not support state sharding (optim.ShardCloner); use ShardedStepOff for the leader-serial commit", opt)
		}
		sharded = true
	case ShardedStepOff:
	default:
		return nil, fmt.Errorf("core: unknown sharded-step mode %d", int(cfg.ShardedStep))
	}
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	fcfg := cfg
	fcfg.Replicas = 0
	fcfg.ShardedStep = ShardedStepOff
	fcfg.Engine = engine.NewReference() // chunks run through the serve loop's engine
	fcfg.Followers = nil
	fcfg.CheckpointDir = "" // only the leader checkpoints
	fcfg.Elastic = false    // only the leader admits joiners
	fcfg.StragglerDeadline, fcfg.StragglerMisses = 0, 0
	fcfg.TraceReplica = r // a worker-process recorder labels its events with its replica index
	fopt := optim.Optimizer(optim.NewSGDShard(ps, 0, 0, optim.Shard{}))
	if cfg.FaultTolerant {
		// The fault-tolerant stage-state layout aliases the live moment
		// tensors, so the real (full-state) optimizer must exist before the
		// trainer is built — it cannot be swapped in afterwards.
		sc, ok := opt.(optim.ShardCloner)
		if !ok {
			return nil, fmt.Errorf("core: fault-tolerant follower needs a shardable optimizer (optim.ShardCloner), got %T", opt)
		}
		fopt = sc.CloneShard(ps, optim.FullShard(len(ps)))
	}
	f, err := New(task, fopt, sched, fcfg)
	if err != nil {
		return nil, fmt.Errorf("core: building follower %d: %w", r, err)
	}
	if sharded && !cfg.FaultTolerant {
		// Same shard geometry as the leader's plan for R replicas, mapped
		// through this follower's (identical) stage boundaries. Without the
		// fault-tolerant layout no stage state aliases the optimizer, so
		// swapping it in after construction is safe.
		plan := engine.NewCommitPlan(f.clock.P, R)
		lo, hi := plan.Shard(r)
		sh := optim.Shard{}
		if lo != hi {
			sh = optim.Shard{Lo: f.stageLo[lo], Hi: f.stageHi[hi-1]}
		}
		f.opt = opt.(optim.ShardCloner).CloneShard(ps, sh)
	}
	return host{f}, nil
}

// gammaFromD mirrors quad.GammaFromD for τ_bkwd = 0 without importing the
// theory package into the trainer.
func gammaFromD(d, tauFwd float64) float64 {
	if tauFwd <= 0 || d <= 0 {
		return 0
	}
	return math.Pow(d, 1/tauFwd)
}

// segmentEnds returns, for each 0-indexed stage, the 1-indexed last stage
// of its recompute segment, for segments of near-equal length.
func segmentEnds(p, segments int) []int {
	if segments > p {
		segments = p
	}
	ends := make([]int, p)
	for s := 0; s < p; s++ {
		seg := s * segments / p
		// Last stage of segment seg is the largest s' with s'·segments/p == seg.
		end := (seg+1)*p/segments - 1
		if end >= p {
			end = p - 1
		}
		ends[s] = end + 1 // 1-indexed
	}
	return ends
}

// Taus returns the per-parameter forward delays in minibatch units.
func (t *Trainer) Taus() []float64 { return t.taus }

// Stages returns the number of pipeline stages.
func (t *Trainer) Stages() int { return t.clock.P }

// Microbatches returns N, the number of microbatches per minibatch.
func (t *Trainer) Microbatches() int { return t.clock.N }

// Diverged reports whether training was aborted on a non-finite or
// capped loss.
func (t *Trainer) Diverged() bool { return t.diverged }

// Partition exposes the stage partition (for the memory model).
func (t *Trainer) Partition() *pipeline.Partition { return t.part }

// PartitionMode returns the configured partition mode.
func (t *Trainer) PartitionMode() pipeline.PartitionMode { return t.cfg.Partition }

// GroupCosts returns a copy of the per-group cost vector the partitioner
// balanced: the analytic estimate (even/cost modes), the measured wall
// times (profile mode), or the explicitly configured costs. For the cost
// and profile modes, feeding it back through Config.GroupCosts reproduces
// this trainer's partition exactly — the escape hatch for pinning a
// profiled partition. (An even-mode trainer's partition ignores costs by
// definition; the vector is informational there, for imbalance tracking.)
func (t *Trainer) GroupCosts() []float64 {
	return append([]float64(nil), t.groupCosts...)
}

// StageCosts returns the per-stage cost totals under the active partition.
func (t *Trainer) StageCosts() []float64 { return t.part.StageCosts(t.groupCosts) }

// StageImbalance returns max/mean of the per-stage costs — 1.0 is a
// perfectly balanced pipeline; the bottleneck stage caps the concurrent
// engine's overlap at mean/max of ideal.
func (t *Trainer) StageImbalance() float64 { return pipeline.Imbalance(t.StageCosts()) }

// Engine returns the execution engine driving this trainer.
func (t *Trainer) Engine() engine.Engine { return t.eng }

// Replicas returns the data-parallel replica count R (1 when replication
// is off).
func (t *Trainer) Replicas() int { return len(t.followers) + 1 }

// Close releases the trainer's follower members: a remote transport
// proxy says goodbye to its worker process and closes the connection;
// in-process followers hold nothing to release. It also stops the join
// accept loops, releases parked joiners, and closes any demoted
// standbys the engine still holds. Close is idempotent — the second and
// later calls return nil — and joins every member's close error rather
// than stopping at the first.
func (t *Trainer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	var errs []error
	if t.joinCancel != nil {
		t.joinCancel()
	}
	for _, lis := range t.joinLis {
		if err := lis.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	t.joinMu.Lock()
	pend := t.pending
	t.pending = nil
	t.joinMu.Unlock()
	for _, pj := range pend {
		pj.conn.Close()
	}
	if cs, ok := t.eng.(standbyCloser); ok {
		if err := cs.CloseStandbys(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, m := range t.followers {
		if c, ok := m.(io.Closer); ok {
			if err := c.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// ShardedStep reports whether the optimizer commit is sharded across the
// replicas (always false for single-replica trainers).
func (t *Trainer) ShardedStep() bool { return t.sharded }

// Observe registers an observer invoked after every completed epoch.
func (t *Trainer) Observe(fn Observer) { t.observer = fn }

// synchronous reports whether the current epoch runs synchronously
// (GPipe method, or a T3 warmup epoch).
func (t *Trainer) synchronous() bool {
	return t.cfg.Method == GPipe || t.epoch < t.cfg.WarmupEpochs
}

// ratesInto fills out with the per-parameter learning rates of params
// [lo, hi) at optimizer step `step`: plain schedule while synchronous,
// T1-rescheduled once asynchronous (with the annealing clock starting at
// the async switch, so warmup epochs do not consume it). It is pure in the
// parameter range given the step index and the epoch phase — both frozen
// for the whole commit — so distinct stages may compute their rates
// concurrently (the stage-sharded StepStage commit).
func (t *Trainer) ratesInto(out []float64, step, lo, hi int) {
	base := t.sched.LR(step)
	if t.synchronous() || t.cfg.T1K <= 0 {
		for i := range out {
			out[i] = base
		}
		return
	}
	async := step - t.warmupSteps()
	if async < 0 {
		async = 0
	}
	// T1 uses the base schedule at the true step but anneals on async time.
	p := 1 - math.Min(float64(async)/float64(t.cfg.T1K), 1)
	for i := lo; i < hi; i++ {
		tau := t.taus[i]
		if tau < 1 {
			tau = 1
		}
		out[i-lo] = base / math.Pow(tau, p)
	}
}

// warmupSteps returns the number of optimizer steps spent in T3 warmup.
func (t *Trainer) warmupSteps() int {
	perEpoch := t.task.NumTrain() / t.cfg.BatchSize
	return t.cfg.WarmupEpochs * perEpoch
}

// recompVersion returns the number of updates committed at stage i
// (1-indexed) before the recompute slot of microbatch s for a segment
// ending at stage e1: the recompute of stage i runs 2(e−i)+1 slots before
// the gradient is applied.
func (t *Trainer) recompVersion(s, stage1, e1 int) int {
	num := s + 2*stage1 - 2*e1 - t.clock.N
	if num < 0 {
		return 0
	}
	return num/t.clock.N + 1
}

// host adapts the trainer to engine.Host without exporting the slot
// primitives on Trainer itself.
type host struct{ t *Trainer }

// Tracer implements trace.Carrier: engines, the replica layer and the
// commit plan discover the run's recorder (and which replica they are
// computing for) by type-asserting their Host against it.
func (h host) Tracer() (*trace.Recorder, int) { return h.t.cfg.Trace, h.t.cfg.TraceReplica }

// Stages returns P.
func (h host) Stages() int { return h.t.clock.P }

// Async reports whether the current epoch runs asynchronously.
func (h host) Async() bool { return !h.t.synchronous() }

// Recompute reports whether the Appendix D recompute path is enabled.
func (h host) Recompute() bool { return h.t.segEnd1 != nil }

// MicroBase returns the global microbatch counter for the minibatch start.
func (h host) MicroBase() int { return h.t.micro }

// InstallForward points the stage's parameters at the delayed snapshot
// visible at global microbatch s.
func (h host) InstallForward(s, stage int) {
	t := h.t
	v := t.clock.FwdVersion(s, stage+1)
	snap := t.store.Get(stage, v)
	for j, pm := range t.part.Stages[stage] {
		pm.Data = snap[j]
	}
}

// InstallBackward sets the stage's backward weights for microbatch s.
func (h host) InstallBackward(s, stage int) {
	t := h.t
	switch t.cfg.Method {
	case PipeDream:
		// Backward uses the stashed forward weights: Bwd stays nil so
		// BwdData falls back to the installed snapshot.
	case PipeMare:
		for i := t.stageLo[stage]; i < t.stageHi[stage]; i++ {
			if t.corrected != nil {
				t.params[i].Bwd = t.corrected[i]
			} else {
				t.params[i].Bwd = t.masters[i]
			}
		}
	}
}

// InstallRecompute points the stage's parameters at the version its
// recompute pass would read (Appendix D): stage i in a segment ending at
// stage e reads weights delayed by 2(e−i)+1 slots, corrected by the T2
// accumulator when enabled.
func (h host) InstallRecompute(s, stage int) {
	t := h.t
	st1 := stage + 1
	e1 := t.segEnd1[stage]
	v := t.recompVersion(s, st1, e1)
	snap := t.store.Get(stage, v)
	for j, pm := range t.part.Stages[stage] {
		i := t.stageLo[stage] + j
		if t.delta != nil {
			// u_recomp = w_{t−τr} − (τ_fwd − τ_recomp)·δ.
			tauR := float64(2*(e1-st1)+1) / float64(t.clock.N)
			coef := t.taus[i] - tauR
			buf := tensor.NewLike(snap[j])
			if buf.DType() == tensor.Float32 {
				recompCorrect(tensor.F32(buf), tensor.F32(snap[j]), tensor.F32(t.delta[i]), coef)
			} else {
				recompCorrect(tensor.F64(buf), tensor.F64(snap[j]), tensor.F64(t.delta[i]), coef)
			}
			pm.Data = buf
		} else {
			pm.Data = snap[j]
		}
	}
}

// Restore points the stage's parameters back at the live master weights
// and clears the backward decoupling.
func (h host) Restore(stage int) {
	t := h.t
	for i := t.stageLo[stage]; i < t.stageHi[stage]; i++ {
		t.params[i].Data = t.masters[i]
		t.params[i].Bwd = nil
	}
}

// Splittable reports whether the task runs as per-stage segments.
func (h host) Splittable() bool { return h.t.prog != nil }

// BeginMicro opens microbatch s, acquiring an in-flight machine from the
// pool. Safe to call from any engine goroutine.
func (h host) BeginMicro(s int, mb []int) {
	t := h.t
	t.flowMu.Lock()
	var fl *flight
	if n := len(t.freeFlows); n > 0 {
		fl = t.freeFlows[n-1]
		t.freeFlows = t.freeFlows[:n-1]
	} else {
		fl = &flight{}
		if t.prog != nil {
			fl.m = nn.NewMachine(t.prog.NumRegs)
			// Slot machines allocate activations from their own tape
			// arena, which must match the model dtype.
			if len(t.params) > 0 {
				fl.m.Tape.SetDType(t.params[0].Data.DType())
			}
		}
	}
	fl.mb = mb
	t.flows[s] = fl
	t.flowMu.Unlock()
}

// flight returns microbatch s's in-flight state.
func (h host) flight(s int) *flight {
	t := h.t
	t.flowMu.Lock()
	fl := t.flows[s]
	t.flowMu.Unlock()
	if fl == nil {
		panic(fmt.Sprintf("core: microbatch %d has no in-flight state (missing BeginMicro)", s))
	}
	return fl
}

// StageForward runs the stage's forward slot for microbatch s. Stage-split
// tasks execute the stage's op range on the microbatch's machine (stage 0
// resets the machine and binds the samples, so a second climb restarts the
// forward pass — the recompute path); monolithic tasks run their whole
// forward in the last stage's slot, by which point every stage's weights
// have been installed.
func (h host) StageForward(s, stage int) float64 {
	t := h.t
	fl := h.flight(s)
	last := t.clock.P - 1
	if t.prog == nil {
		if stage == last {
			return t.task.Forward(fl.mb)
		}
		return 0
	}
	if stage == 0 {
		fl.m.ResetRun()
		t.stageTask.BindMicro(fl.m, fl.mb)
	}
	t.prog.ForwardRange(fl.m, t.opLo[stage], t.opHi[stage])
	if stage == last {
		return fl.m.Loss
	}
	return 0
}

// StageBackward runs the stage's backward slot for microbatch s.
// Monolithic tasks run their whole backward in stage 0's slot, by which
// point every stage's backward weights have been (re-)installed.
func (h host) StageBackward(s, stage int) {
	t := h.t
	fl := h.flight(s)
	if t.prog == nil {
		if stage == 0 {
			t.task.Backward()
		}
		return
	}
	t.prog.BackwardRange(fl.m, t.opLo[stage], t.opHi[stage])
}

// EndMicro closes microbatch s and recycles its machine.
func (h host) EndMicro(s int) {
	t := h.t
	t.flowMu.Lock()
	if fl := t.flows[s]; fl != nil {
		delete(t.flows, s)
		fl.mb = nil
		t.freeFlows = append(t.freeFlows, fl)
	}
	t.flowMu.Unlock()
}

// BadLoss reports a non-finite or capped loss.
func (h host) BadLoss(loss float64) bool {
	return math.IsNaN(loss) || loss > h.t.cfg.LossCap
}

// PrepareStage averages the stage's gradients over the minibatch,
// snapshots the stage's pre-step weights for T2, and returns the stage's
// gradient sum-of-squares for clipping.
func (h host) PrepareStage(stage, nMicro int) float64 {
	t := h.t
	n := float64(nMicro)
	sumSq := 0.0
	for i := t.stageLo[stage]; i < t.stageHi[stage]; i++ {
		g := t.params[i].Grad
		g.DivScalar(n)
		sumSq += g.SumSq()
		if t.prev != nil {
			t.prev[i].CopyFrom(t.params[i].Data)
		}
	}
	return sumSq
}

// ClipScale converts the global gradient sum-of-squares into the clip
// factor, mirroring nn.ClipGradNorm's edge cases.
func (h host) ClipScale(sumSq float64) float64 {
	max := h.t.cfg.ClipNorm
	norm := math.Sqrt(sumSq)
	if max <= 0 || norm <= max || norm == 0 || math.IsNaN(norm) {
		return 1
	}
	return max / norm
}

// ScaleStage multiplies the stage's gradients by the clip factor.
func (h host) ScaleStage(stage int, scale float64) {
	t := h.t
	for i := t.stageLo[stage]; i < t.stageHi[stage]; i++ {
		t.params[i].Grad.ScaleInPlace(scale)
	}
}

// BeginStep advances the step clocks for the update being committed: the
// trainer's step counter and the optimizer's (Adam bias-correction) clock.
// The per-stage rates are computed at the pre-advance step index, exactly
// as the old monolithic step did.
func (h host) BeginStep() {
	t := h.t
	t.commitStep = t.step
	t.step++
	t.opt.Advance()
}

// StepStage applies the optimizer update to the stage's parameter range
// with that range's (T1) learning rates. Ranges are disjoint and the rate
// computation is pure given the step clock BeginStep advanced, so distinct
// stages step concurrently without any cross-stage arithmetic.
func (h host) StepStage(stage int) {
	t := h.t
	lo, hi := t.stageLo[stage], t.stageHi[stage]
	lrs := t.stageLRs[stage]
	t.ratesInto(lrs, t.commitStep, lo, hi)
	t.opt.StepRange(lo, hi, lrs)
}

// FinishStage zeroes the stage's gradients, updates the stage's T2
// accumulators, and pushes the stage's new weight version.
func (h host) FinishStage(stage int) {
	t := h.t
	for i := t.stageLo[stage]; i < t.stageHi[stage]; i++ {
		t.params[i].ZeroGrad()
		if t.delta != nil {
			pm := t.params[i]
			if pm.Data.DType() == tensor.Float32 {
				t2Update(tensor.F32(t.delta[i]), tensor.F32(t.corrected[i]),
					tensor.F32(pm.Data), tensor.F32(t.prev[i]), t.gamma[i], t.taus[i])
			} else {
				t2Update(tensor.F64(t.delta[i]), tensor.F64(t.corrected[i]),
					tensor.F64(pm.Data), tensor.F64(t.prev[i]), t.gamma[i], t.taus[i])
			}
		}
	}
	t.store.PushStage(stage)
}

// t2Update advances one parameter's T2 discrepancy accumulator in the
// parameter's own dtype, then refreshes the corrected backward weights:
// δ ← γδ + (1−γ)(w − w_prev) and u_bkwd = w − (τ_fwd − τ_bkwd)·δ.
func t2Update[T tensor.Elem](d, c, cur, prev []T, gamma, tau float64) {
	g := T(gamma)
	tt := T(tau)
	for j := range d {
		d[j] = g*d[j] + (1-g)*(cur[j]-prev[j])
	}
	for j := range c {
		c[j] = cur[j] - tt*d[j]
	}
}

// recompCorrect forms the recompute-corrected weights u_recomp =
// w_snap − coef·δ in the parameter's dtype.
func recompCorrect[T tensor.Elem](buf, snap, delta []T, coef float64) {
	cf := T(coef)
	for k := range buf {
		buf[k] = snap[k] - cf*delta[k]
	}
}

// --- replica surface (replica.Leader / replica.Member) ---

// Replicas returns the total replica count R (replica.Leader).
func (h host) Replicas() int { return len(h.t.followers) + 1 }

// Follower returns follower r's member surface (replica.Leader).
func (h host) Follower(r int) replica.Member { return h.t.followers[r-1] }

// Step returns the optimizer step clock (transport.LeaderState).
func (h host) Step() int { return h.t.step }

// Epoch returns the epoch clock (transport.LeaderState).
func (h host) Epoch() int { return h.t.epoch }

// SetStep aligns the step clock — the remote-worker counterpart of the
// SyncFromLeader step copy (transport.ClockSetter).
func (h host) SetStep(step int) { h.t.setStep(step) }

// setStep moves the optimizer step clock, keeping the optimizer's own
// update counter (AdamW bias correction) in lockstep when the full
// moment state is resident — the invariant a checkpoint restore or
// leader sync relies on.
func (t *Trainer) setStep(step int) {
	t.step = step
	if t.stateful != nil {
		t.stateful.SetClock(step)
	}
}

// SetEpoch aligns the epoch clock — the remote-worker counterpart of
// SyncEpoch (transport.ClockSetter).
func (h host) SetEpoch(epoch int) { h.t.epoch = epoch }

// ShardedStep reports whether the optimizer commit is sharded across the
// replicas (replica.Leader).
func (h host) ShardedStep() bool { return h.t.sharded }

// CommitShards returns the stage→replica owner plan (replica.Leader) —
// the same plan the followers' optimizer moment shards were allocated
// from (shardOf), so the replica layer steps exactly the state each
// member holds.
func (h host) CommitShards() engine.CommitPlan { return h.t.plan }

// TakeStageGrads moves the stage's accumulated gradients into bufs and
// zeroes the accumulators, so the next microbatch accumulates from zero
// again. Buffers are allocated on first use and recycled by the caller.
func (h host) TakeStageGrads(stage int, bufs []*tensor.Tensor) []*tensor.Tensor {
	t := h.t
	lo, hi := t.stageLo[stage], t.stageHi[stage]
	if bufs == nil {
		bufs = make([]*tensor.Tensor, hi-lo)
		for j := range bufs {
			bufs[j] = tensor.NewLike(t.params[lo+j].Grad)
		}
	}
	for j, i := 0, lo; i < hi; i, j = i+1, j+1 {
		bufs[j].CopyFrom(t.params[i].Grad)
		t.params[i].Grad.Zero()
	}
	return bufs
}

// FoldStageGrads adds exported buffers into the stage's accumulators with
// exactly one add per element — the arithmetic of the replica layer's
// tree reduction, matching the nn accumulation contract (nn.Param.Grad)
// so the fold is bit-identical to direct serial accumulation.
func (h host) FoldStageGrads(stage int, bufs []*tensor.Tensor) {
	t := h.t
	for j, i := 0, t.stageLo[stage]; i < t.stageHi[stage]; i, j = i+1, j+1 {
		tensor.AddInto(t.params[i].Grad, bufs[j])
	}
}

// SetStageGrads overwrites the stage's gradient accumulators with bufs —
// the scatter half of the sharded commit: the leader's fully reduced
// minibatch gradient moves to the stage's owner as a pure copy, no
// arithmetic, so the owner's PrepareStage sees bitwise the gradient the
// leader-serial commit would have averaged.
func (h host) SetStageGrads(stage int, bufs []*tensor.Tensor) {
	t := h.t
	for j, i := 0, t.stageLo[stage]; i < t.stageHi[stage]; i, j = i+1, j+1 {
		t.params[i].Grad.CopyFrom(bufs[j])
	}
}

// StageState returns the stage's live post-step state tensors — the
// master weights, then (when T2 is enabled) the δ velocity accumulators
// and corrected backward weights — in a fixed layout the gather copies
// from. Callers must treat the slice and its tensors as read-only.
func (h host) StageState(stage int) []*tensor.Tensor {
	return h.t.stageState[stage]
}

// ImportStageState copies a stage's post-step state from src (an owner's
// StageState layout) into this replica and pushes the stage's next weight
// version — the gather half of the sharded commit, mirroring the version
// push the owner's FinishStage did so every replica's version queue
// replays the same history.
func (h host) ImportStageState(stage int, src []*tensor.Tensor) {
	t := h.t
	lo, hi := t.stageLo[stage], t.stageHi[stage]
	want := hi - lo
	if t.delta != nil {
		want *= 3
	}
	if t.momentShare {
		want += (hi - lo) * t.stateful.MomentCount()
	}
	if len(src) != want {
		panic(fmt.Sprintf("core: stage %d state has %d tensors, want %d", stage, len(src), want))
	}
	k := 0
	for i := lo; i < hi; i++ {
		t.masters[i].CopyFrom(src[k])
		k++
	}
	if t.delta != nil {
		for i := lo; i < hi; i++ {
			t.delta[i].CopyFrom(src[k])
			k++
		}
		for i := lo; i < hi; i++ {
			t.corrected[i].CopyFrom(src[k])
			k++
		}
	}
	if t.momentShare {
		for i := lo; i < hi; i++ {
			for _, mt := range t.stateful.MomentTensors(i) {
				mt.CopyFrom(src[k])
				k++
			}
		}
	}
	t.store.PushStage(stage)
}

// SyncEpoch aligns a follower's epoch clock with its leader's so the
// commit-phase learning rates (T1 annealing, T3 warmup phase) are
// computed from the same epoch everywhere. The leader is its own clock.
func (h host) SyncEpoch() {
	if h.t.leader != nil {
		h.t.epoch = h.t.leader.epoch
	}
}

// SyncFromLeader imports the leader's post-step master weights and T2
// state, then pushes this replica's next per-stage weight version — the
// follower half of the broadcast protocol, mirroring what FinishStage
// did on the leader so both version queues stay aligned.
func (h host) SyncFromLeader() {
	t := h.t
	ld := t.leader
	for i := range t.masters {
		t.masters[i].CopyFrom(ld.masters[i])
	}
	if t.delta != nil {
		for i := range t.delta {
			t.delta[i].CopyFrom(ld.delta[i])
			t.corrected[i].CopyFrom(ld.corrected[i])
		}
	}
	if t.momentShare && ld.momentShare {
		for i := range t.masters {
			src := ld.stateful.MomentTensors(i)
			for j, mt := range t.stateful.MomentTensors(i) {
				mt.CopyFrom(src[j])
			}
		}
	}
	t.setStep(ld.step)
	for st := range t.part.Stages {
		t.store.PushStage(st)
	}
}

// FaultTolerant reports whether this trainer runs the fault-tolerant
// stage-state layout (replica.FaultTolerer) — the precondition for
// evicting a failed member under the sharded commit.
func (h host) FaultTolerant() bool { return h.t.momentShare }

// EvictFollower removes follower replica r from the trainer and rebuilds
// the commit plan over the survivors (replica.Evictor). The replica
// group drives this — it splices its own member list and re-chunks in
// lockstep.
func (h host) EvictFollower(r int) {
	t := h.t
	t.followers = append(t.followers[:r-1], t.followers[r:]...)
	t.plan = engine.NewCommitPlan(t.clock.P, len(t.followers)+1)
}

// JoinFollower appends an admitted member as the last follower and
// rebuilds the commit plan over R+1 replicas (replica.Joiner) — the
// exact mirror of EvictFollower. The replica group drives this from its
// Admit, growing its member list in lockstep.
func (h host) JoinFollower(m replica.Member) {
	t := h.t
	t.followers = append(t.followers, m)
	t.plan = engine.NewCommitPlan(t.clock.P, len(t.followers)+1)
}

// RestoreVersions replaces a stage's weight-version ring
// (replica.VersionRestorer) — the restore path for the historical
// versions the asynchronous methods read.
func (h host) RestoreVersions(stage, base int, snaps [][]*tensor.Tensor) {
	h.t.store.RestoreStage(stage, base, snaps)
}

// The trainer's host satisfies the full replica surface.
var _ replica.Leader = host{}

var (
	_ replica.FaultTolerer    = host{}
	_ replica.Evictor         = host{}
	_ replica.Joiner          = host{}
	_ replica.VersionRestorer = host{}
)

// Run trains for the given number of epochs under ctx, recording one entry
// per epoch. Epochs accumulate across calls: warmup (T3) and divergence
// state persist, so Run can be called repeatedly to continue training.
// Training stops early (without error) when a loss diverges — check
// Run.Diverged — and stops with ctx.Err() when the context is cancelled;
// the recorded curve up to that point is always returned.
func (t *Trainer) Run(ctx context.Context, epochs int) (*metrics.Run, error) {
	return t.run(ctx, epochs, nil)
}

// RunInto is Run appending into an existing curve (nil allocates one).
func (t *Trainer) RunInto(ctx context.Context, epochs int, run *metrics.Run) (*metrics.Run, error) {
	return t.run(ctx, epochs, run)
}

// ctlTrack returns this trainer's control track (epoch marks, eval,
// checkpoint and fault events) — nil, hence inert, when tracing is off.
// Its single writer is the goroutine driving run(): the engines'
// orchestration (including the replicated engine's fault instants) runs
// on that same goroutine.
func (t *Trainer) ctlTrack() *trace.Track {
	return t.cfg.Trace.Track(t.cfg.TraceReplica, trace.TidControl, "control")
}

func (t *Trainer) run(ctx context.Context, epochs int, run *metrics.Run) (*metrics.Run, error) {
	if run == nil {
		run = &metrics.Run{}
	}
	h := host{t}
	if lc, ok := t.eng.(engine.Lifecycle); ok {
		lc.Start(h)
		defer lc.Stop()
	}
	for e := 0; e < epochs; e++ {
		if err := ctx.Err(); err != nil {
			return run, err
		}
		epochLoss, batches := 0.0, 0
		// The batch order is a pure function of (seed, epoch) — no RNG
		// state survives between epochs — so a restored run replays the
		// interrupted epoch's order exactly.
		epochRng := rand.New(rand.NewSource(epochSeed(t.cfg.Seed, t.epoch)))
		skip := t.resumeSkip
		t.resumeSkip = 0
		for _, batch := range data.Batches(t.task.NumTrain(), t.cfg.BatchSize, epochRng) {
			if len(batch) < t.cfg.BatchSize {
				continue // keep N constant; drop the final short batch
			}
			if skip > 0 {
				// Minibatches already committed before the checkpoint this
				// run restored from; their state is baked in.
				skip--
				continue
			}
			micros := data.Microbatches(batch, t.cfg.MicrobatchSize)
			loss, err := t.eng.Minibatch(ctx, h, micros)
			if errors.Is(err, engine.ErrDiverged) {
				t.diverged = true
				// Drop the partial minibatch's gradient accumulation so a
				// later Run does not fold it into its first step.
				nn.ZeroGrads(t.params)
				run.Record(math.Inf(1), 0, nn.ParamNorm(t.params))
				run.Diverged = true
				return run, nil
			}
			if err != nil {
				// Cancelled mid-minibatch: drop the partial gradient
				// accumulation so a later Run starts from a clean slate.
				nn.ZeroGrads(t.params)
				return run, err
			}
			t.micro += len(micros)
			epochLoss += loss
			batches++
			if err := t.maybeCheckpoint(); err != nil {
				return run, err
			}
			// Minibatch-boundary admission: rejoin drained standbys and
			// admit parked joiners here, on the run goroutine, after the
			// checkpoint hook — so membership changes never race a
			// collective or a checkpoint write, and a post-join curve is a
			// pure function of the handed-off state.
			if err := t.admitBoundary(); err != nil {
				return run, err
			}
		}
		ctl := t.ctlTrack()
		t0 := t.cfg.Trace.Now()
		metric := t.task.EvalTest()
		ctl.Span(trace.NameEval, t0, -1, -1, 0)
		run.Record(epochLoss/float64(batches), metric, nn.ParamNorm(t.params))
		t.epoch++
		ctl.Instant(trace.NameEpoch, -1, -1, 0)
		if t.observer != nil {
			t.observer(run.Epochs(), run)
		}
	}
	return run, nil
}

// TrainEpochs trains for the given number of epochs, recording one entry
// per epoch in run. Training stops early on divergence. It returns run for
// chaining.
//
// Deprecated: use Run (or RunInto), which is context-aware and reports
// engine errors.
func (t *Trainer) TrainEpochs(epochs int, run *metrics.Run) *metrics.Run {
	run, _ = t.run(context.Background(), epochs, run)
	return run
}
