// Package core implements the PipeMare training system (§3 of the paper):
// asynchronous pipeline-parallel SGD with Technique 1 (learning-rate
// rescheduling), Technique 2 (discrepancy correction) and Technique 3
// (synchronous warmup epochs), plus the two baselines it is compared
// against — GPipe-style synchronous training and PipeDream-style weight
// stashing — and the recompute delay path of Appendix D.
//
// The trainer simulates the pipeline at microbatch granularity using the
// timing model of package pipeline: for every microbatch it installs the
// stage-appropriate delayed weight version for the forward pass, a
// method-dependent version for the backward pass, runs real backprop
// through the task's model, and commits optimizer updates at minibatch
// boundaries — the same "queue of weights per pipeline stage" simulation
// the paper describes in Appendix C.4.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"pipemare/internal/data"
	"pipemare/internal/metrics"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// Method selects the pipeline-parallel training method.
type Method int

// The three methods of Table 1.
const (
	// GPipe is synchronous training: no delay, pipeline bubbles.
	GPipe Method = iota
	// PipeDream stashes forward weights so τ_fwd = τ_bkwd = (2(P−i)+1)/N.
	PipeDream
	// PipeMare runs fully asynchronously: τ_fwd = (2(P−i)+1)/N, τ_bkwd = 0.
	PipeMare
)

// String names the method.
func (m Method) String() string {
	switch m {
	case GPipe:
		return "GPipe"
	case PipeDream:
		return "PipeDream"
	case PipeMare:
		return "PipeMare"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Task abstracts a model + loss over an indexed training set. Forward and
// Backward are split so the trainer can install different weight versions
// between them.
type Task interface {
	// Groups returns the model's parameters in topological order, grouped
	// so that weights that must share a stage stay together.
	Groups() []pipeline.ParamGroup
	// NumTrain returns the training-set size.
	NumTrain() int
	// Forward computes the mean loss on the given sample indices, caching
	// activations for Backward.
	Forward(idx []int) float64
	// Backward backpropagates from the last Forward, accumulating
	// parameter gradients.
	Backward()
	// EvalTest returns the task metric on the held-out set (accuracy in
	// percent, or BLEU) using the current forward weights.
	EvalTest() float64
}

// Config configures a training run.
type Config struct {
	Method         Method
	Stages         int // P; 0 means one stage per weight group (fine-grained maximum)
	BatchSize      int
	MicrobatchSize int

	// T1: learning-rate rescheduling annealing length in optimizer steps
	// (0 disables T1).
	T1K int
	// T2: discrepancy-correction decay hyperparameter D (0 disables T2).
	T2D float64
	// T3: number of initial synchronous (GPipe-style) warmup epochs.
	WarmupEpochs int

	// RecomputeSegments enables the Appendix D recompute delay path with
	// the given number of gradient-checkpoint segments (0 disables it).
	RecomputeSegments int

	ClipNorm float64 // global gradient-norm clip (0 disables)
	LossCap  float64 // divergence threshold (0 = 1e6)
	Seed     int64
}

// Trainer drives pipeline-parallel training of a Task.
type Trainer struct {
	task  Task
	opt   optim.Optimizer
	sched optim.Schedule
	cfg   Config

	part   *pipeline.Partition
	clock  pipeline.Clock
	store  *pipeline.VersionStore
	params []*nn.Param // in forward order (matches optimizer order)
	stage1 []int       // 1-indexed stage per param
	taus   []float64   // per-param τ_fwd in minibatch units

	// T2 state: per-param velocity accumulator δ and the materialized
	// corrected backward weights (master − τ·δ).
	delta     []*tensor.Tensor
	corrected []*tensor.Tensor
	gamma     []float64
	prev      []*tensor.Tensor // master weights before the last update

	// Recompute state: segment end (1-indexed stage) per stage, and the
	// per-param recompute-corrected buffers.
	segEnd1 []int

	rng      *rand.Rand
	micro    int // global microbatch counter s
	step     int // optimizer step counter (minibatches committed)
	epoch    int
	diverged bool
}

// New validates the configuration and builds a Trainer. The optimizer must
// have been constructed over exactly the parameters of task.Groups() in
// order (use Params on the returned trainer's partition, or build the
// optimizer from the same group traversal).
func New(task Task, opt optim.Optimizer, sched optim.Schedule, cfg Config) (*Trainer, error) {
	groups := task.Groups()
	p := cfg.Stages
	if p == 0 {
		p = len(groups)
	}
	part, err := pipeline.PartitionGroups(groups, p)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 || cfg.MicrobatchSize <= 0 || cfg.BatchSize%cfg.MicrobatchSize != 0 {
		return nil, fmt.Errorf("core: batch size %d must be a positive multiple of microbatch size %d", cfg.BatchSize, cfg.MicrobatchSize)
	}
	n := cfg.BatchSize / cfg.MicrobatchSize
	if cfg.LossCap == 0 {
		cfg.LossCap = 1e6
	}
	if got, want := len(opt.Params()), len(part.Params()); got != want {
		return nil, fmt.Errorf("core: optimizer has %d params, partition has %d", got, want)
	}
	t := &Trainer{
		task: task, opt: opt, sched: sched, cfg: cfg,
		part:  part,
		clock: pipeline.Clock{P: p, N: n},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	t.params = part.Params()
	for s, ps := range part.Stages {
		for range ps {
			t.stage1 = append(t.stage1, s+1)
		}
	}
	t.taus = make([]float64, len(t.params))
	for i := range t.params {
		t.taus[i] = pipeline.FwdDelay(t.stage1[i], p, n)
	}
	keep := (2*p+n)/n + 3
	t.store = pipeline.NewVersionStore(part.Stages, keep)

	if cfg.T2D > 0 {
		t.delta = make([]*tensor.Tensor, len(t.params))
		t.corrected = make([]*tensor.Tensor, len(t.params))
		t.gamma = make([]float64, len(t.params))
		t.prev = make([]*tensor.Tensor, len(t.params))
		for i, pm := range t.params {
			t.delta[i] = tensor.New(pm.Data.Shape...)
			t.corrected[i] = pm.Data.Clone()
			t.prev[i] = pm.Data.Clone()
			// τ_bkwd = 0 for PipeMare, so γ_i = D^{1/τ_fwd,i}.
			t.gamma[i] = gammaFromD(cfg.T2D, t.taus[i])
		}
	}
	if cfg.RecomputeSegments > 0 {
		t.segEnd1 = segmentEnds(p, cfg.RecomputeSegments)
	}
	return t, nil
}

// gammaFromD mirrors quad.GammaFromD for τ_bkwd = 0 without importing the
// theory package into the trainer.
func gammaFromD(d, tauFwd float64) float64 {
	if tauFwd <= 0 || d <= 0 {
		return 0
	}
	return math.Pow(d, 1/tauFwd)
}

// segmentEnds returns, for each 0-indexed stage, the 1-indexed last stage
// of its recompute segment, for segments of near-equal length.
func segmentEnds(p, segments int) []int {
	if segments > p {
		segments = p
	}
	ends := make([]int, p)
	for s := 0; s < p; s++ {
		seg := s * segments / p
		// Last stage of segment seg is the largest s' with s'·segments/p == seg.
		end := (seg+1)*p/segments - 1
		if end >= p {
			end = p - 1
		}
		ends[s] = end + 1 // 1-indexed
	}
	return ends
}

// Taus returns the per-parameter forward delays in minibatch units.
func (t *Trainer) Taus() []float64 { return t.taus }

// Stages returns the number of pipeline stages.
func (t *Trainer) Stages() int { return t.clock.P }

// Microbatches returns N, the number of microbatches per minibatch.
func (t *Trainer) Microbatches() int { return t.clock.N }

// Diverged reports whether training was aborted on a non-finite or
// capped loss.
func (t *Trainer) Diverged() bool { return t.diverged }

// Partition exposes the stage partition (for the memory model).
func (t *Trainer) Partition() *pipeline.Partition { return t.part }

// synchronous reports whether the current epoch runs synchronously
// (GPipe method, or a T3 warmup epoch).
func (t *Trainer) synchronous() bool {
	return t.cfg.Method == GPipe || t.epoch < t.cfg.WarmupEpochs
}

// installForward points every parameter's forward weights at the delayed
// snapshot its stage sees at global microbatch s.
func (t *Trainer) installForward(s int) {
	for i, pm := range t.params {
		v := t.clock.FwdVersion(s, t.stage1[i])
		snap := t.store.Get(t.stage1[i]-1, v)
		pm.Data = snapTensor(snap, t.part.Stages[t.stage1[i]-1], pm)
	}
}

// snapTensor finds pm's snapshot tensor within its stage snapshot.
func snapTensor(snap []*tensor.Tensor, stage []*nn.Param, pm *nn.Param) *tensor.Tensor {
	for j, q := range stage {
		if q == pm {
			return snap[j]
		}
	}
	panic("core: parameter not found in its stage")
}

// trainMinibatch runs one minibatch (N microbatches) through the pipeline
// simulation and commits one optimizer update. It returns the mean
// microbatch loss and false if training diverged.
func (t *Trainer) trainMinibatch(batch []int, masters []*tensor.Tensor) (float64, bool) {
	micros := data.Microbatches(batch, t.cfg.MicrobatchSize)
	sync := t.synchronous()
	lossSum := 0.0
	for _, mb := range micros {
		s := t.micro
		if !sync {
			t.installForward(s)
			switch t.cfg.Method {
			case PipeDream:
				// Backward uses the stashed forward weights: Bwd stays nil
				// so BwdData falls back to the installed snapshot.
			case PipeMare:
				for i, pm := range t.params {
					if t.corrected != nil {
						pm.Bwd = t.corrected[i]
					} else {
						pm.Bwd = masters[i]
					}
				}
			}
		}
		loss := t.task.Forward(mb)
		lossSum += loss
		if !sync && t.segEnd1 != nil {
			// Recompute pass: activations are regenerated with weights
			// delayed by the recompute path before backprop (Appendix D).
			t.installRecompute(s)
			t.task.Forward(mb)
		}
		if math.IsNaN(loss) || loss > t.cfg.LossCap {
			t.restoreMasters(masters)
			t.diverged = true
			return math.Inf(1), false
		}
		t.task.Backward()
		t.restoreMasters(masters)
		t.micro++
	}
	// Average the accumulated microbatch-mean gradients.
	n := float64(len(micros))
	for _, pm := range t.params {
		for j := range pm.Grad.Data {
			pm.Grad.Data[j] /= n
		}
	}
	if t.cfg.ClipNorm > 0 {
		nn.ClipGradNorm(t.params, t.cfg.ClipNorm)
	}
	lrs := t.learningRates()
	if t.prev != nil {
		for i, pm := range t.params {
			t.prev[i].CopyFrom(pm.Data)
		}
	}
	t.opt.Step(lrs)
	nn.ZeroGrads(t.params)
	t.afterStep()
	t.step++
	return lossSum / n, true
}

// restoreMasters points every parameter back at its live master weights
// and clears the backward decoupling.
func (t *Trainer) restoreMasters(masters []*tensor.Tensor) {
	for i, pm := range t.params {
		pm.Data = masters[i]
		pm.Bwd = nil
	}
}

// learningRates computes the per-parameter rates: plain schedule while
// synchronous, T1-rescheduled once asynchronous (with the annealing clock
// starting at the async switch, so warmup epochs do not consume it).
func (t *Trainer) learningRates() []float64 {
	if t.synchronous() || t.cfg.T1K <= 0 {
		return optim.UniformLR(t.sched.LR(t.step), len(t.params))
	}
	async := t.step - t.warmupSteps()
	if async < 0 {
		async = 0
	}
	// T1 uses the base schedule at the true step but anneals on async time.
	base := t.sched.LR(t.step)
	out := make([]float64, len(t.params))
	p := 1 - math.Min(float64(async)/float64(t.cfg.T1K), 1)
	for i, tau := range t.taus {
		if tau < 1 {
			tau = 1
		}
		out[i] = base / math.Pow(tau, p)
	}
	return out
}

// warmupSteps returns the number of optimizer steps spent in T3 warmup.
func (t *Trainer) warmupSteps() int {
	perEpoch := t.task.NumTrain() / t.cfg.BatchSize
	return t.cfg.WarmupEpochs * perEpoch
}

// afterStep updates the version store and the T2 accumulators after an
// optimizer update.
func (t *Trainer) afterStep() {
	t.store.Push()
	if t.delta == nil {
		return
	}
	for i, pm := range t.params {
		g := t.gamma[i]
		d := t.delta[i]
		for j := range d.Data {
			d.Data[j] = g*d.Data[j] + (1-g)*(pm.Data.Data[j]-t.prev[i].Data[j])
		}
		// Corrected backward weights: u_bkwd = w − (τ_fwd − τ_bkwd)·δ.
		c := t.corrected[i]
		tau := t.taus[i]
		for j := range c.Data {
			c.Data[j] = pm.Data.Data[j] - tau*d.Data[j]
		}
	}
}

// installRecompute points the forward weights of every stage at the
// version its recompute pass would read (Appendix D): stage i in a segment
// ending at stage e reads weights delayed by 2(e−i)+1 slots, corrected by
// the T2 accumulator when enabled.
func (t *Trainer) installRecompute(s int) {
	for i, pm := range t.params {
		st1 := t.stage1[i]
		e1 := t.segEnd1[st1-1]
		v := t.recompVersion(s, st1, e1)
		snap := snapTensor(t.store.Get(st1-1, v), t.part.Stages[st1-1], pm)
		if t.delta != nil {
			// u_recomp = w_{t−τr} − (τ_fwd − τ_recomp)·δ.
			tauR := float64(2*(e1-st1)+1) / float64(t.clock.N)
			coef := t.taus[i] - tauR
			buf := tensor.New(snap.Shape...)
			for j := range buf.Data {
				buf.Data[j] = snap.Data[j] - coef*t.delta[i].Data[j]
			}
			pm.Data = buf
		} else {
			pm.Data = snap
		}
	}
}

// recompVersion returns the number of updates committed at stage i
// (1-indexed) before the recompute slot of microbatch s for a segment
// ending at stage e1: the recompute of stage i runs 2(e−i)+1 slots before
// the gradient is applied.
func (t *Trainer) recompVersion(s, stage1, e1 int) int {
	num := s + 2*stage1 - 2*e1 - t.clock.N
	if num < 0 {
		return 0
	}
	return num/t.clock.N + 1
}

// TrainEpochs trains for the given number of epochs, recording one entry
// per epoch in run. Training stops early on divergence. It returns run for
// chaining.
func (t *Trainer) TrainEpochs(epochs int, run *metrics.Run) *metrics.Run {
	if run == nil {
		run = &metrics.Run{}
	}
	masters := make([]*tensor.Tensor, len(t.params))
	for i, pm := range t.params {
		masters[i] = pm.Data
	}
	for e := 0; e < epochs; e++ {
		t.epoch = e
		epochLoss, batches := 0.0, 0
		for _, batch := range data.Batches(t.task.NumTrain(), t.cfg.BatchSize, t.rng) {
			if len(batch) < t.cfg.BatchSize {
				continue // keep N constant; drop the final short batch
			}
			loss, ok := t.trainMinibatch(batch, masters)
			if !ok {
				run.Record(math.Inf(1), 0, nn.ParamNorm(t.params))
				run.Diverged = true
				return run
			}
			epochLoss += loss
			batches++
		}
		if batches == 0 {
			panic("core: training set smaller than one batch")
		}
		metric := t.task.EvalTest()
		run.Record(epochLoss/float64(batches), metric, nn.ParamNorm(t.params))
	}
	return run
}
