package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"pipemare/internal/replica"
	"pipemare/internal/trace"
	"pipemare/internal/transport"
)

// Elastic membership: mid-run scale-up. AcceptJoins parks joining
// worker connections; run() drains the park at minibatch boundaries —
// the only points with no optimizer state in flight — and admits each
// joiner with a live state handoff (the same syncMember push a
// checkpoint restore uses), then grows the reduce tree and commit plan
// to R+1 through the replica group. The same boundary also readmits
// demoted stragglers whose late replies have drained. Because a member
// that has seen the handoff is indistinguishable from one that trained
// from the start, and the curves are replica-count invariant, a
// post-join curve is bit-identical to a fresh (R+1)-replica run from
// the handed-off state.

// welcomeTimeout bounds the admission round-trip with one parked joiner
// (Welcome send + JoinOK reply + the handoff collectives) so a joiner
// that dies while parked cannot stall the training loop.
const welcomeTimeout = 30 * time.Second

// pendingJoin is one parked joiner: its connection and the capability
// spec it announced.
type pendingJoin struct {
	conn transport.MsgConn
	spec transport.JoinSpec
}

// admitter is the engine surface the admission path drives — the
// replicated engine implements it: Admit grows the running replica
// group, TakeReadyStandbys returns demoted members whose late replies
// have drained and that are ready to rejoin.
type admitter interface {
	Admit(m replica.Member) error
	TakeReadyStandbys() []replica.Member
}

// standbyCloser releases standbys the engine still holds at Close.
type standbyCloser interface {
	CloseStandbys() error
}

// AcceptJoins starts accepting mid-run join connections on lis: each
// accepted connection's join request is read and parked until the next
// minibatch boundary, where the run loop admits (or rejects) it. The
// accept loop runs until lis closes or the trainer does; Close releases
// the listener and every parked connection. Requires Config.Elastic.
// Call before or during Run; joiners that dial while no Run is active
// stay parked until the next Run reaches a boundary.
func (t *Trainer) AcceptJoins(lis transport.Listener) error {
	if !t.cfg.Elastic {
		return fmt.Errorf("core: AcceptJoins needs the elastic option (Config.Elastic)")
	}
	if t.closed {
		return fmt.Errorf("core: AcceptJoins on a closed trainer")
	}
	t.joinMu.Lock()
	if t.joinCtx == nil {
		t.joinCtx, t.joinCancel = context.WithCancel(context.Background())
	}
	ctx := t.joinCtx
	t.joinLis = append(t.joinLis, lis)
	t.joinMu.Unlock()
	go t.acceptJoins(ctx, lis)
	return nil
}

// acceptJoins is the accept-park loop for one listener. It owns nothing
// but the connection between Accept and park, so a trainer Close (which
// closes the listener and cancels ctx) unwinds it promptly.
func (t *Trainer) acceptJoins(ctx context.Context, lis transport.Listener) {
	for {
		conn, err := lis.Accept(ctx)
		if err != nil {
			return
		}
		spec, err := transport.AcceptJoin(ctx, conn)
		if err != nil {
			conn.Close()
			continue
		}
		t.joinMu.Lock()
		closed := t.closed
		if !closed {
			t.pending = append(t.pending, pendingJoin{conn: conn, spec: spec})
		}
		t.joinMu.Unlock()
		if closed {
			conn.Close()
			return
		}
	}
}

// admitBoundary is run()'s per-minibatch membership hook: readmit
// drained standbys first (they already hold a connection and a built
// follower), then admit parked joiners. Both run on the run goroutine,
// so membership changes serialize against collectives and checkpoints
// by construction.
func (t *Trainer) admitBoundary() error {
	if err := t.rejoinStandbys(); err != nil {
		return err
	}
	return t.admitJoins()
}

// admitJoins drains the parked-joiner queue: for each joiner whose
// capabilities match (and whose requested join step has arrived), send
// the Welcome spec, perform the live state handoff, and grow the
// replica group. A capability mismatch rejects that joiner without
// failing the run; joiners ahead of their JoinAt step stay parked.
func (t *Trainer) admitJoins() error {
	t.joinMu.Lock()
	pend := t.pending
	t.pending = nil
	t.joinMu.Unlock()
	if len(pend) == 0 {
		return nil
	}
	var parked []pendingJoin
	for _, pj := range pend {
		if pj.spec.JoinAt > t.step {
			parked = append(parked, pj)
			continue
		}
		if err := t.admitOne(pj); err != nil {
			// The joiner was told why (RejectJoin) and its connection is
			// closed; the run itself continues over the current members.
			continue
		}
	}
	if len(parked) > 0 {
		t.joinMu.Lock()
		t.pending = append(parked, t.pending...)
		t.joinMu.Unlock()
	}
	return nil
}

// admitOne admits a single parked joiner end to end: capability check,
// Welcome, handoff, group growth. On any failure the connection is
// closed and an error returned; the caller decides whether the run
// cares.
func (t *Trainer) admitOne(pj pendingJoin) error {
	reject := func(format string, args ...any) error {
		err := fmt.Errorf(format, args...)
		ctx, cancel := context.WithTimeout(context.Background(), welcomeTimeout)
		transport.RejectJoin(ctx, pj.conn, err.Error())
		cancel()
		pj.conn.Close()
		return fmt.Errorf("core: rejecting joiner: %w", err)
	}
	adm, ok := t.eng.(admitter)
	if !ok {
		return reject("engine %q cannot grow its replica group", t.eng.Name())
	}
	if pj.spec.Stages != t.clock.P {
		return reject("joiner has %d stages, leader has %d", pj.spec.Stages, t.clock.P)
	}
	if pj.spec.Method != int(t.cfg.Method) {
		return reject("joiner trains method %d, leader method %d", pj.spec.Method, int(t.cfg.Method))
	}
	if pj.spec.T2 != (t.delta != nil) {
		return reject("joiner T2 %t, leader T2 %t", pj.spec.T2, t.delta != nil)
	}
	newR := len(t.followers) + 1 // the joiner's replica index
	if newR+1 > t.clock.N {
		return reject("%d replicas would exceed the %d microbatches per minibatch", newR+1, t.clock.N)
	}
	spec := transport.Spec{
		Replica: newR, Replicas: newR + 1, Stages: t.clock.P,
		Method: int(t.cfg.Method), T2: t.delta != nil, Sharded: t.sharded,
		Step: t.step, Epoch: t.epoch,
		// No state checksum: the joiner's initial state is irrelevant —
		// every tensor it will train from arrives in the handoff below.
		GroupCosts: t.groupCosts,
		FT:         t.cfg.FaultTolerant,
		Heartbeat:  t.cfg.Heartbeat,
	}
	ctx, cancel := context.WithTimeout(context.Background(), welcomeTimeout)
	m, err := transport.Welcome(ctx, pj.conn, spec, host{t})
	cancel()
	if err != nil {
		pj.conn.Close()
		return fmt.Errorf("core: welcoming joiner as replica %d: %w", newR, err)
	}
	m.SetTracer(t.cfg.Trace)
	if t.cfg.StragglerMisses > 0 {
		m.SetStragglerDeadline(t.cfg.StragglerDeadline, t.cfg.StragglerMisses)
	}
	if err := t.handoffAndAdmit(adm, m, newR); err != nil {
		m.Close()
		return err
	}
	t.ctlTrack().Instant(trace.NameJoin, -1, -1, 0)
	return nil
}

// handoffAndAdmit performs the timed live state handoff to an admitted
// member and grows the engine's replica group (which appends the member
// to the followers and rebuilds the commit plan through replica.Joiner).
// Shared by fresh joins and standby rejoins.
func (t *Trainer) handoffAndAdmit(adm admitter, m replica.Member, r int) error {
	start := time.Now()
	t0 := t.cfg.Trace.Now()
	if err := t.syncMember(m, r); err != nil {
		return fmt.Errorf("core: handoff to replica %d: %w", r, err)
	}
	t.ctlTrack().Span(trace.NameHandoff, t0, -1, -1, 0)
	t.handoffNs += time.Since(start).Nanoseconds()
	if err := adm.Admit(m); err != nil {
		return fmt.Errorf("core: admitting replica %d: %w", r, err)
	}
	t.joins++
	return nil
}

// rejoinStandbys readmits demoted stragglers whose late replies have
// drained, through the same handoff path a fresh joiner takes: their
// state is stale by however many steps they sat out, so everything is
// re-pushed. A standby that fails its handoff is closed and dropped.
func (t *Trainer) rejoinStandbys() error {
	adm, ok := t.eng.(admitter)
	if !ok {
		return nil
	}
	for _, m := range adm.TakeReadyStandbys() {
		if sb, ok := m.(replica.Standby); ok {
			sb.Rearm()
		}
		if err := t.handoffAndAdmit(adm, m, len(t.followers)+1); err != nil {
			if cl, ok := m.(io.Closer); ok {
				cl.Close()
			}
			continue
		}
		t.ctlTrack().Instant(trace.NameRejoin, -1, -1, 0)
	}
	return nil
}

// ElasticStats reports the elastic-membership counters: members
// admitted mid-run (fresh joins and standby rejoins), stragglers
// demoted to standby, and the cumulative wall time spent in state
// handoffs.
func (t *Trainer) ElasticStats() (joins, demotions int, handoffNs int64) {
	if es, ok := t.eng.(interface{ ElasticStats() (int, int) }); ok {
		_, demotions = es.ElasticStats()
	}
	return t.joins, demotions, t.handoffNs
}
