package core_test

import (
	"testing"

	"pipemare/internal/core"
	"pipemare/internal/data"
	"pipemare/internal/metrics"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

// End-to-end trainer tests over real model tasks. They live in an
// external test package because package model implements core.Replicable
// (CloneTask) and therefore imports core.

func TestGPipeTrainerTrainsRealModel(t *testing.T) {
	d := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4, Train: 256, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(d, 16, 6, 2)
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 5e-4)
	tr, err := core.New(task, opt, optim.Constant(0.05), core.Config{
		Method: core.GPipe, BatchSize: 32, MicrobatchSize: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(12, nil)
	if run.Diverged {
		t.Fatal("GPipe diverged")
	}
	if best := run.Best(); best < 80 {
		t.Fatalf("GPipe best accuracy %.1f%%, want ≥ 80%%", best)
	}
}

func TestPipeMareT1TrainsRealModelAtFineGranularity(t *testing.T) {
	// The headline behaviour: fully asynchronous fine-grained training
	// (one stage per weight group) converges once T1 is enabled.
	d := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4, Train: 256, Test: 64, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(d, 16, 6, 2)
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 5e-4)
	tr, err := core.New(task, opt, optim.Constant(0.05), core.Config{
		Method: core.PipeMare, BatchSize: 32, MicrobatchSize: 8,
		T1K: 40, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(15, nil)
	if run.Diverged {
		t.Fatal("PipeMare with T1 diverged")
	}
	if best := run.Best(); best < 75 {
		t.Fatalf("PipeMare+T1 best accuracy %.1f%%, want ≥ 75%%", best)
	}
}

func TestDivergenceIsDetected(t *testing.T) {
	d := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4, Train: 128, Test: 32, Noise: 0.4, Seed: 1})
	task := model.NewResNetMLP(d, 16, 6, 2)
	var ps []*nn.Param
	for _, g := range task.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 0)
	// Absurdly large step size: must be caught, not crash.
	tr, err := core.New(task, opt, optim.Constant(50), core.Config{
		Method: core.PipeMare, BatchSize: 32, MicrobatchSize: 8, Seed: 1, LossCap: 1e4,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(5, &metrics.Run{})
	if !run.Diverged || !tr.Diverged() {
		t.Fatal("divergence must be detected and recorded")
	}
}
