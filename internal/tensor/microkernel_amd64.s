//go:build amd64

#include "textflag.h"

// func cpuid(op, op2 uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL op2+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func kern4x8f64(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int)
//
// 4×8 float64 register tile: accumulators Y0–Y7 (two 4-wide vectors per
// row), B panel vectors Y8/Y9, broadcast A value Y10, product Y11.
// Multiply and add are separate instructions (no FMA) so every element
// sees exactly the scalar rounding sequence, in ascending-p order.
TEXT ·kern4x8f64(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	SHLQ $3, SI            // row stride in bytes

	// Load the 4×8 c tile.
	MOVQ DI, DX
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	ADDQ SI, DX
	VMOVUPD (DX), Y2
	VMOVUPD 32(DX), Y3
	ADDQ SI, DX
	VMOVUPD (DX), Y4
	VMOVUPD 32(DX), Y5
	ADDQ SI, DX
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7

f64loop:
	VMOVUPD (BX), Y8
	VMOVUPD 32(BX), Y9

	VBROADCASTSD (AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1

	VBROADCASTSD 8(AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3

	VBROADCASTSD 16(AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5

	VBROADCASTSD 24(AX), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7

	ADDQ $32, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  f64loop

	// Store the tile back.
	MOVQ DI, DX
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ SI, DX
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)
	ADDQ SI, DX
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	ADDQ SI, DX
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func kern4x8f32(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int)
//
// 4×8 float32 tile: one 8-wide vector per row (Y0–Y3), B panel Y8,
// broadcast A Y10, product Y11.
TEXT ·kern4x8f32(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	SHLQ $2, SI            // row stride in bytes

	MOVQ DI, DX
	VMOVUPS (DX), Y0
	ADDQ SI, DX
	VMOVUPS (DX), Y1
	ADDQ SI, DX
	VMOVUPS (DX), Y2
	ADDQ SI, DX
	VMOVUPS (DX), Y3

f32loop:
	VMOVUPS (BX), Y8

	VBROADCASTSS (AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0

	VBROADCASTSS 4(AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y1, Y1

	VBROADCASTSS 8(AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2

	VBROADCASTSS 12(AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y3, Y3

	ADDQ $16, AX
	ADDQ $32, BX
	DECQ CX
	JNZ  f32loop

	MOVQ DI, DX
	VMOVUPS Y0, (DX)
	ADDQ SI, DX
	VMOVUPS Y1, (DX)
	ADDQ SI, DX
	VMOVUPS Y2, (DX)
	ADDQ SI, DX
	VMOVUPS Y3, (DX)
	VZEROUPPER
	RET
