package tensor

import (
	"sync"
	"sync/atomic"
)

// Kernel parallelism. The hot matrix kernels split their independent
// output rows across goroutines when SetWorkers has enabled it. Every
// output element is accumulated in exactly the same order as the serial
// code, so parallel results are bit-identical to serial ones — engines can
// turn this on without perturbing training curves.

var kernelWorkers atomic.Int32

// SetWorkers sets the number of goroutines the matrix kernels may use
// (values below 1 mean serial) and returns the previous setting. It is
// safe for concurrent use; the concurrent execution engine raises it for
// the duration of a run.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(kernelWorkers.Swap(int32(n)))
}

// Workers returns the current kernel parallelism setting.
func Workers() int {
	w := int(kernelWorkers.Load())
	if w < 1 {
		return 1
	}
	return w
}

// Raise/Lower scoping: engines raise kernel parallelism for the duration
// of a run. Raises nest — overlapping engines keep the highest request
// alive, and the baseline is restored only when the last raiser lowers —
// which a plain save-and-restore of SetWorkers cannot do.

var (
	raiseMu    sync.Mutex
	raiseCount int
	baseline   int
)

// RaiseWorkers raises kernel parallelism to at least n until the matching
// LowerWorkers call. Calls may nest across goroutines.
func RaiseWorkers(n int) {
	raiseMu.Lock()
	defer raiseMu.Unlock()
	if raiseCount == 0 {
		baseline = Workers()
	}
	raiseCount++
	if n > Workers() {
		SetWorkers(n)
	}
}

// LowerWorkers undoes one RaiseWorkers; the outermost call restores the
// setting that preceded the first raise. Unpaired calls are no-ops.
func LowerWorkers() {
	raiseMu.Lock()
	defer raiseMu.Unlock()
	if raiseCount == 0 {
		return
	}
	raiseCount--
	if raiseCount == 0 {
		SetWorkers(baseline)
	}
}

// parallelMinWork is the minimum number of scalar multiply-accumulates a
// goroutine must receive before splitting is worth the synchronization.
const parallelMinWork = 1 << 14

// ParallelRows runs fn over contiguous chunks of [0, rows), concurrently
// when kernel parallelism is enabled and flops (total scalar work) is
// large enough to amortize the goroutine handoff. Callers must ensure the
// chunks touch disjoint state and accumulate in a fixed per-element order,
// so parallel results stay bit-identical to serial ones; the nn substrate
// uses it for row-parallel layernorm and column-parallel norm gradients.
func ParallelRows(rows, flops int, fn func(lo, hi int)) {
	parallelRows(rows, flops, fn)
}

// parallelRows is the internal spelling of ParallelRows.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	ParallelChunks(PlanRows(rows, flops), rows, func(_, lo, hi int) { fn(lo, hi) })
}

// PlanRows returns the number of contiguous chunks ParallelRows would
// split [0, rows) into under the current kernel-parallelism setting and
// the given total scalar work. Callers that need per-goroutine scratch
// buffers (e.g. the attention core) plan first, allocate one scratch set
// per chunk on the calling goroutine, then run ParallelChunks.
func PlanRows(rows, flops int) int {
	w := Workers()
	if maxW := flops / parallelMinWork; w > maxW {
		w = maxW
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelChunks runs fn(chunk, lo, hi) over w contiguous chunks of
// [0, rows), concurrently when w > 1 — the chunk boundaries are exactly
// ParallelRows' for the same w. The chunk index lets fn address
// pre-allocated per-goroutine scratch; the same determinism contract as
// ParallelRows applies (disjoint state, fixed per-element accumulation
// order).
func ParallelChunks(w, rows int, fn func(chunk, lo, hi int)) {
	if w <= 1 {
		fn(0, 0, rows)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		k, lo, hi := k, k*rows/w, (k+1)*rows/w
		go func() {
			defer wg.Done()
			fn(k, lo, hi)
		}()
	}
	wg.Wait()
}
