package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %g, want 6", got)
	}
	x.Set(9, 0, 1)
	if got := x.At(0, 1); got != 9 {
		t.Fatalf("after Set, At(0,1) = %g, want 9", got)
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	cases := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Add", Add(a, b), []float64{5, 7, 9}},
		{"Sub", Sub(a, b), []float64{-3, -3, -3}},
		{"Mul", Mul(a, b), []float64{4, 10, 18}},
		{"Scale", Scale(a, 2), []float64{2, 4, 6}},
	}
	for _, c := range cases {
		for i := range c.want {
			if c.got.Data[i] != c.want[i] {
				t.Errorf("%s[%d] = %g, want %g", c.name, i, c.got.Data[i], c.want[i])
			}
		}
	}
}

func TestAxpy(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	Axpy(a, 0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("Axpy result %v, want [6 12]", a.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 5)
	b := New(5, 3)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	want := MatMul(a, b)
	got1 := MatMulT1(Transpose(a), b)
	got2 := MatMulT2(a, Transpose(b))
	for i := range want.Data {
		if !almostEq(want.Data[i], got1.Data[i], 1e-12) {
			t.Fatalf("MatMulT1 disagrees at %d: %g vs %g", i, got1.Data[i], want.Data[i])
		}
		if !almostEq(want.Data[i], got2.Data[i], 1e-12) {
			t.Fatalf("MatMulT2 disagrees at %d: %g vs %g", i, got2.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := Transpose(Transpose(a))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 5)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64() * 10
		}
		s := SoftmaxRows(a)
		for i := 0; i < 3; i++ {
			sum := 0.0
			for j := 0; j < 5; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if !almostEq(sum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxNumericallyStable(t *testing.T) {
	a := FromSlice([]float64{1000, 1001, 999}, 1, 3)
	s := SoftmaxRows(a)
	for _, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", s.Data)
		}
	}
}

func TestLogSumExpRows(t *testing.T) {
	a := FromSlice([]float64{0, math.Log(2), math.Log(3)}, 1, 3)
	got := LogSumExpRows(a)[0]
	want := math.Log(6)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("LogSumExp = %g, want %g", got, want)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	if a.Sum() != -1 {
		t.Errorf("Sum = %g", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Errorf("Mean = %g", a.Mean())
	}
	if a.Norm() != 5 {
		t.Errorf("Norm = %g", a.Norm())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g", a.MaxAbs())
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	if a.ArgMaxRow(0) != 1 {
		t.Errorf("row 0 argmax = %d", a.ArgMaxRow(0))
	}
	if a.ArgMaxRow(1) != 0 {
		t.Errorf("row 1 argmax = %d", a.ArgMaxRow(1))
	}
}

// naiveConv computes a reference 2-D convolution directly.
func naiveConv(x *Tensor, w *Tensor, stride, pad int) *Tensor {
	b, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oc, _, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(wd, kw, stride, pad)
	out := New(b, oc, oh, ow)
	for n := 0; n < b; n++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
								if iy >= 0 && iy < h && ix >= 0 && ix < wd {
									s += x.At(n, ch, iy, ix) * w.At(o, ch, ky, kx)
								}
							}
						}
					}
					out.Set(s, n, o, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range []struct{ b, c, h, w, oc, k, stride, pad int }{
		{1, 1, 4, 4, 1, 3, 1, 1},
		{2, 3, 5, 5, 4, 3, 1, 1},
		{1, 2, 6, 6, 3, 3, 2, 1},
		{2, 2, 4, 4, 2, 1, 1, 0},
	} {
		x := New(cfg.b, cfg.c, cfg.h, cfg.w)
		w := New(cfg.oc, cfg.c, cfg.k, cfg.k)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		want := naiveConv(x, w, cfg.stride, cfg.pad)
		cols := Im2Col(x, cfg.k, cfg.k, cfg.stride, cfg.pad)
		wm := w.Reshape(cfg.oc, cfg.c*cfg.k*cfg.k)
		// cols: (B*OH*OW, C*K*K); result rows are (b,oy,ox) and cols oc.
		res := MatMulT2(cols, wm)
		oh := ConvOutSize(cfg.h, cfg.k, cfg.stride, cfg.pad)
		ow := ConvOutSize(cfg.w, cfg.k, cfg.stride, cfg.pad)
		for n := 0; n < cfg.b; n++ {
			for o := 0; o < cfg.oc; o++ {
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						row := (n*oh+oy)*ow + ox
						got := res.At(row, o)
						if !almostEq(got, want.At(n, o, oy, ox), 1e-9) {
							t.Fatalf("cfg %+v mismatch at (%d,%d,%d,%d): %g vs %g", cfg, n, o, oy, ox, got, want.At(n, o, oy, ox))
						}
					}
				}
			}
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y: the defining property
	// of the adjoint, which is exactly what backprop needs.
	rng := rand.New(rand.NewSource(11))
	b, c, h, w, k, stride, pad := 2, 2, 5, 5, 3, 1, 1
	x := New(b, c, h, w)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	cols := Im2Col(x, k, k, stride, pad)
	y := New(cols.Shape...)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	lhs := 0.0
	for i := range cols.Data {
		lhs += cols.Data[i] * y.Data[i]
	}
	back := Col2Im(y, b, c, h, w, k, k, stride, pad)
	rhs := 0.0
	for i := range x.Data {
		rhs += x.Data[i] * back.Data[i]
	}
	if !almostEq(lhs, rhs, 1e-9) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	if got := ConvOutSize(8, 3, 1, 1); got != 8 {
		t.Errorf("same-pad conv out = %d, want 8", got)
	}
	if got := ConvOutSize(8, 3, 2, 1); got != 4 {
		t.Errorf("strided conv out = %d, want 4", got)
	}
}
