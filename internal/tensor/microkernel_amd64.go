//go:build amd64

package tensor

import "unsafe"

// haveSIMD reports whether the AVX microkernels may be used. Detected
// once at startup: the CPU must support AVX and the OS must have enabled
// YMM state (XGETBV). The kernels use only AVX1 instructions (VMULPD,
// VADDPD and memory-operand broadcasts), so AVX2 is not required.
//
// Using or not using the SIMD path never changes results: the kernels
// perform the same scalar-order multiply-then-add per output element as
// the generic fallback (no FMA), so a cluster mixing AVX and non-AVX
// hosts still agrees bitwise.
var haveSIMD = detectAVX()

func detectAVX() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	eax, _ := xgetbv()
	// XMM (bit 1) and YMM (bit 2) state must be OS-enabled.
	return eax&0x6 == 0x6
}

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(op, op2 uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0.
func xgetbv() (eax, edx uint32)

// kern4x8f64 accumulates a full 4×8 float64 tile at c (row stride ldc
// elements) over kc packed panel steps: ap is MR=4-interleaved, bp is
// NR=8-interleaved. Bounds are pre-checked by the caller.
//
//go:noescape
func kern4x8f64(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int)

// kern4x8f32 is the float32 twin of kern4x8f64.
//
//go:noescape
func kern4x8f32(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int)

// ptr returns the base address of a non-empty slice for the assembly
// kernels.
func ptr[T Elem](s []T) unsafe.Pointer { return unsafe.Pointer(&s[0]) }
