// Package tensor implements dense row-major tensors of float64 or
// float32 elements and the numerical kernels (matmul, convolution via
// im2col, reductions, softmax) used by the neural-network substrate.
// Float64 is the zero-value default; NewOf/NewLike/FromSlice32 build
// float32 tensors, and every kernel dispatches on the dtype to a generic
// implementation, so the two precisions share one deterministic code
// path. The package is deliberately small: the PipeMare reproduction
// needs correctness and determinism first — but the matmul family is a
// real cache-blocked, register-tiled implementation (see matmul.go),
// because per-core kernel speed is what the pipeline's speedups are
// measured against.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major tensor. Exactly one backing slice is
// non-nil: Data for Float64 tensors (the zero-value default, so legacy
// code reading .Data directly keeps working), Data32 for Float32 ones.
// The zero value is an empty float64 tensor; use New, NewOf or the
// factory helpers.
type Tensor struct {
	Shape  []int
	Data   []float64
	Data32 []float32
	dt     DType
}

// New returns a zero-filled float64 tensor with the given shape.
// It panics if any dimension is negative (a programmer error).
func New(shape ...int) *Tensor { return NewOf(Float64, shape...) }

// FromSlice wraps data in a float64 tensor of the given shape. The slice
// is used directly (not copied). It panics if len(data) does not match
// the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a float64 tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	if t.dt == Float32 {
		return len(t.Data32)
	}
	return len(t.Data)
}

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t (same dtype).
func (t *Tensor) Clone() *Tensor {
	c := NewLike(t)
	copy(c.Data, t.Data)
	copy(c.Data32, t.Data32)
	return c
}

// CopyFrom copies src's data into t. Sizes and dtypes must match; use
// CopyRange for converting copies.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Size() != src.Size() || t.dt != src.dt {
		panic(fmt.Sprintf("tensor: CopyFrom mismatch %v %s vs %v %s", t.Shape, t.dt, src.Shape, src.dt))
	}
	copy(t.Data, src.Data)
	copy(t.Data32, src.Data32)
}

// RowView returns a (rows, cols) view of row r of a rank-2 tensor whose
// rows hold rows*cols elements. The data is shared with t.
func (t *Tensor) RowView(r, rows, cols int) *Tensor {
	n := rows * cols
	if t.Rank() != 2 || t.Shape[1] != n {
		panic(fmt.Sprintf("tensor: RowView(%d,%d) of %v", rows, cols, t.Shape))
	}
	v := &Tensor{Shape: []int{rows, cols}, dt: t.dt}
	if t.dt == Float32 {
		v.Data32 = t.Data32[r*n : (r+1)*n]
	} else {
		v.Data = t.Data[r*n : (r+1)*n]
	}
	return v
}

// Reshape returns a view of t with a new shape of the same total size.
// The data is shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, t.Size(), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data, Data32: t.Data32, dt: t.dt}
}

// At returns the element at the given multi-index as a float64.
func (t *Tensor) At(idx ...int) float64 {
	return t.FlatAt(t.offset(idx))
}

// Set assigns v to the element at the given multi-index (rounded for
// float32 tensors).
func (t *Tensor) Set(v float64, idx ...int) {
	t.SetFlat(t.offset(idx), v)
}

// At2 is the non-variadic rank-2 fast path of At: no index slice, no
// allocation. Bounds beyond the row/column check are left to the slice
// index.
func (t *Tensor) At2(i, j int) float64 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: At2 on rank-%d tensor", len(t.Shape)))
	}
	cols := t.Shape[1]
	if i < 0 || i >= t.Shape[0] || j < 0 || j >= cols {
		panic(fmt.Sprintf("tensor: At2(%d,%d) out of range for shape %v", i, j, t.Shape))
	}
	return t.FlatAt(i*cols + j)
}

// Set2 is the non-variadic rank-2 fast path of Set.
func (t *Tensor) Set2(v float64, i, j int) {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Set2 on rank-%d tensor", len(t.Shape)))
	}
	cols := t.Shape[1]
	if i < 0 || i >= t.Shape[0] || j < 0 || j >= cols {
		panic(fmt.Sprintf("tensor: Set2(%d,%d) out of range for shape %v", i, j, t.Shape))
	}
	t.SetFlat(i*cols+j, v)
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank of shape %v", idx, t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Zero sets all elements of t to zero.
func (t *Tensor) Zero() {
	if t.dt == Float32 {
		zero(t.Data32)
	} else {
		zero(t.Data)
	}
}

func zero[T Elem](d []T) {
	for i := range d {
		d[i] = 0
	}
}

// Fill sets all elements of t to v (rounded for float32 tensors).
func (t *Tensor) Fill(v float64) {
	if t.dt == Float32 {
		fill(t.Data32, float32(v))
	} else {
		fill(t.Data, v)
	}
}

func fill[T Elem](d []T, v T) {
	for i := range d {
		d[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.Shape)
	if t.dt == Float32 {
		b.WriteString("f32")
	}
	if n := t.Size(); n <= 8 {
		b.WriteByte('[')
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", t.FlatAt(i))
		}
		b.WriteByte(']')
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.FlatAt(0), t.FlatAt(1), t.FlatAt(n-1))
	}
	return b.String()
}

// --- elementwise ---

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame(a, b, "Add")
	out := NewLike(a)
	if a.dt == Float32 {
		addOut(out.Data32, a.Data32, b.Data32)
	} else {
		addOut(out.Data, a.Data, b.Data)
	}
	return out
}

func addOut[T Elem](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame(a, b, "Sub")
	out := NewLike(a)
	if a.dt == Float32 {
		subOut(out.Data32, a.Data32, b.Data32)
	} else {
		subOut(out.Data, a.Data, b.Data)
	}
	return out
}

func subOut[T Elem](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame(a, b, "Mul")
	out := NewLike(a)
	if a.dt == Float32 {
		mulOut(out.Data32, a.Data32, b.Data32)
	} else {
		mulOut(out.Data, a.Data, b.Data)
	}
	return out
}

func mulOut[T Elem](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Scale returns s * a, with s rounded to a's dtype first.
func Scale(a *Tensor, s float64) *Tensor {
	out := NewLike(a)
	if a.dt == Float32 {
		scaleOut(out.Data32, a.Data32, float32(s))
	} else {
		scaleOut(out.Data, a.Data, s)
	}
	return out
}

func scaleOut[T Elem](dst, a []T, s T) {
	for i := range dst {
		dst[i] = s * a[i]
	}
}

// AddInto accumulates src into dst (dst += src).
func AddInto(dst, src *Tensor) {
	checkSame(dst, src, "AddInto")
	if dst.dt == Float32 {
		addInto(dst.Data32, src.Data32)
	} else {
		addInto(dst.Data, src.Data)
	}
}

func addInto[T Elem](dst, src []T) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Axpy computes dst += alpha*src, with alpha rounded to the dtype first.
func Axpy(dst *Tensor, alpha float64, src *Tensor) {
	checkSame(dst, src, "Axpy")
	if dst.dt == Float32 {
		axpy(dst.Data32, float32(alpha), src.Data32)
	} else {
		axpy(dst.Data, alpha, src.Data)
	}
}

func axpy[T Elem](dst []T, alpha T, src []T) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// ScaleInPlace multiplies every element of t by s (rounded to the dtype
// first).
func (t *Tensor) ScaleInPlace(s float64) {
	if t.dt == Float32 {
		scaleOut(t.Data32, t.Data32, float32(s))
	} else {
		scaleOut(t.Data, t.Data, s)
	}
}

// DivScalar divides every element of t by s, preserving the dtype's
// native division rounding (x/s, not x*(1/s)).
func (t *Tensor) DivScalar(s float64) {
	if t.dt == Float32 {
		divScalar(t.Data32, float32(s))
	} else {
		divScalar(t.Data, s)
	}
}

func divScalar[T Elem](d []T, s T) {
	for i := range d {
		d[i] /= s
	}
}

// Apply returns f applied elementwise to a; float32 tensors round f's
// float64 result back to float32.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := NewLike(a)
	if a.dt == Float32 {
		for i, v := range a.Data32 {
			out.Data32[i] = float32(f(float64(v)))
		}
	} else {
		for i, v := range a.Data {
			out.Data[i] = f(v)
		}
	}
	return out
}

func checkSame(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
	if a.dt != b.dt {
		panic(fmt.Sprintf("tensor: %s dtype mismatch %s vs %s", op, a.dt, b.dt))
	}
}

// --- reductions ---
// Reductions accumulate in float64 for both dtypes: they feed metrics and
// clipping scalars, which stay float64 end to end (and are deterministic
// because every engine runs this same serial-order code).

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	if t.dt == Float32 {
		return sum(t.Data32)
	}
	return sum(t.Data)
}

func sum[T Elem](d []T) float64 {
	s := 0.0
	for _, v := range d {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if t.Size() == 0 {
		return 0
	}
	return t.Sum() / float64(t.Size())
}

// Norm returns the Euclidean (L2) norm of all elements.
func (t *Tensor) Norm() float64 {
	if t.dt == Float32 {
		return norm(t.Data32)
	}
	return norm(t.Data)
}

func norm[T Elem](d []T) float64 {
	s := 0.0
	for _, v := range d {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// SumSq returns the sum of squared elements, accumulated in float64.
func (t *Tensor) SumSq() float64 {
	if t.dt == Float32 {
		return sumSq(t.Data32)
	}
	return sumSq(t.Data)
}

func sumSq[T Elem](d []T) float64 {
	s := 0.0
	for _, v := range d {
		s += float64(v) * float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	if t.dt == Float32 {
		return maxAbs(t.Data32)
	}
	return maxAbs(t.Data)
}

func maxAbs[T Elem](d []T) float64 {
	m := 0.0
	for _, v := range d {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns the index of the largest element of row r of a 2-D tensor.
func (t *Tensor) ArgMaxRow(r int) int {
	if t.Rank() != 2 {
		panic("tensor: ArgMaxRow requires a rank-2 tensor")
	}
	if t.dt == Float32 {
		return argMaxRow(t.Data32, r, t.Shape[1])
	}
	return argMaxRow(t.Data, r, t.Shape[1])
}

func argMaxRow[T Elem](d []T, r, cols int) int {
	base := r * cols
	best, bi := d[base], 0
	for j := 1; j < cols; j++ {
		if v := d[base+j]; v > best {
			best, bi = v, j
		}
	}
	return bi
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := NewOf(a.dt, n, m)
	if a.dt == Float32 {
		transpose(out.Data32, a.Data32, m, n)
	} else {
		transpose(out.Data, a.Data, m, n)
	}
	return out
}

func transpose[T Elem](dst, src []T, m, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst[j*m+i] = src[i*n+j]
		}
	}
}

// --- softmax family ---

// SoftmaxRows computes row-wise softmax of a 2-D tensor.
func SoftmaxRows(a *Tensor) *Tensor {
	out := NewLike(a)
	SoftmaxRowsInto(out, a)
	return out
}

// softmaxFlopsPerElem approximates the per-element cost of a softmax row
// (exp dominates) for the parallel work gate.
const softmaxFlopsPerElem = 16

// SoftmaxRowsInto computes the row-wise softmax of a into dst (same
// shape and dtype). Rows are independent, so they are split across
// goroutines with bit-identical results when kernel parallelism is
// enabled. Exponentials are evaluated in float64 for both dtypes and the
// row sum accumulates in float64; float32 rounds at each store — fixed
// arithmetic per element, hence deterministic per dtype.
func SoftmaxRowsInto(dst, a *Tensor) {
	if a.Rank() != 2 {
		panic("tensor: SoftmaxRows requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: SoftmaxRows destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	checkSame(dst, a, "SoftmaxRowsInto")
	if a.dt == Float32 {
		softmaxRows(dst.Data32, a.Data32, m, n)
	} else {
		softmaxRows(dst.Data, a.Data, m, n)
	}
}

func softmaxRows[T Elem](out, in []T, m, n int) {
	parallelRows(m, softmaxFlopsPerElem*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := in[i*n : (i+1)*n]
			orow := out[i*n : (i+1)*n]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for j, v := range row {
				e := math.Exp(float64(v - mx))
				orow[j] = T(e)
				s += e
			}
			inv := 1 / s
			for j := range orow {
				orow[j] = T(float64(orow[j]) * inv)
			}
		}
	})
}

// LogSumExpRows returns the log-sum-exp of each row of a 2-D tensor,
// always as float64 (it feeds the scalar loss path).
func LogSumExpRows(a *Tensor) []float64 {
	if a.Rank() != 2 {
		panic("tensor: LogSumExpRows requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := make([]float64, m)
	if a.dt == Float32 {
		logSumExpRows(out, a.Data32, m, n)
	} else {
		logSumExpRows(out, a.Data, m, n)
	}
	return out
}

func logSumExpRows[T Elem](out []float64, in []T, m, n int) {
	parallelRows(m, softmaxFlopsPerElem*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := in[i*n : (i+1)*n]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for _, v := range row {
				s += math.Exp(float64(v - mx))
			}
			out[i] = float64(mx) + math.Log(s)
		}
	})
}
