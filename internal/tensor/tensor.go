// Package tensor implements dense row-major float64 tensors and the
// numerical kernels (matmul, convolution via im2col, reductions, softmax)
// used by the neural-network substrate. It is deliberately small: the
// PipeMare reproduction needs correctness and determinism, not GPU speed.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major tensor of float64 values.
// The zero value is an empty tensor; use New or the factory helpers.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative (a programmer error).
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied). It panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.Shape, src.Shape))
	}
	copy(t.Data, src.Data)
}

// RowView returns a (rows, cols) view of row r of a rank-2 tensor whose
// rows hold rows*cols elements. The data is shared with t.
func (t *Tensor) RowView(r, rows, cols int) *Tensor {
	n := rows * cols
	if t.Rank() != 2 || t.Shape[1] != n {
		panic(fmt.Sprintf("tensor: RowView(%d,%d) of %v", rows, cols, t.Shape))
	}
	return &Tensor{Shape: []int{rows, cols}, Data: t.Data[r*n : (r+1)*n]}
}

// Reshape returns a view of t with a new shape of the same total size.
// The data is shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank of shape %v", idx, t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Zero sets all elements of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.Shape)
	if len(t.Data) <= 8 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.Data[0], t.Data[1], t.Data[len(t.Data)-1])
	}
	return b.String()
}

// --- elementwise ---

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame(a, b, "Add")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame(a, b, "Sub")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame(a, b, "Mul")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// AddInto accumulates src into dst (dst += src).
func AddInto(dst, src *Tensor) {
	checkSame(dst, src, "AddInto")
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// Axpy computes dst += alpha*src.
func Axpy(dst *Tensor, alpha float64, src *Tensor) {
	checkSame(dst, src, "Axpy")
	for i := range dst.Data {
		dst.Data[i] += alpha * src.Data[i]
	}
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

func checkSame(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// --- reductions ---

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Norm returns the Euclidean (L2) norm of all elements.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns the index of the largest element of row r of a 2-D tensor.
func (t *Tensor) ArgMaxRow(r int) int {
	if t.Rank() != 2 {
		panic("tensor: ArgMaxRow requires a rank-2 tensor")
	}
	cols := t.Shape[1]
	base := r * cols
	best, bi := t.Data[base], 0
	for j := 1; j < cols; j++ {
		if v := t.Data[base+j]; v > best {
			best, bi = v, j
		}
	}
	return bi
}

// --- matrix ops ---

// MatMul returns a @ b for rank-2 tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a @ b into dst, which must be an m×n tensor whose
// elements are zero (freshly allocated or zeroed; tape arenas hand out
// zeroed buffers).
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	out := dst
	// ikj loop order: the inner loop streams contiguously over b and out.
	// Output rows are independent, so they may be split across goroutines
	// with bit-identical results.
	parallelRows(m, 2*m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulT1 returns aᵀ @ b for a (k×m) and b (k×n): result is m×n.
func MatMulT1(a, b *Tensor) *Tensor {
	out := New(a.Shape[1], b.Shape[1])
	MatMulT1Into(out, a, b)
	return out
}

// MatMulT1Into computes aᵀ @ b into dst, an m×n tensor whose elements must
// be zero on entry.
func MatMulT1Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dimension mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT1 destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	out := dst
	if Workers() <= 1 {
		// pij loop order streams contiguously over a and b.
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i := 0; i < m; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
		return
	}
	// Parallel path: one output-row range per goroutine. Each element still
	// accumulates over p in ascending order, so the result is bit-identical
	// to the serial pij order.
	parallelRows(m, 2*m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulT2 returns a @ bᵀ for a (m×k) and b (n×k): result is m×n.
func MatMulT2(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[0])
	MatMulT2Into(out, a, b)
	return out
}

// MatMulT2Into computes a @ bᵀ into dst, an m×n tensor. Every element of
// dst is overwritten.
func MatMulT2Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dimension mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT2 destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	out := dst
	parallelRows(m, 2*m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
				orow[j] = s
			}
		}
	})
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// --- softmax family ---

// SoftmaxRows computes row-wise softmax of a 2-D tensor.
func SoftmaxRows(a *Tensor) *Tensor {
	out := New(a.Shape[0], a.Shape[1])
	SoftmaxRowsInto(out, a)
	return out
}

// softmaxFlopsPerElem approximates the per-element cost of a softmax row
// (exp dominates) for the parallel work gate.
const softmaxFlopsPerElem = 16

// SoftmaxRowsInto computes the row-wise softmax of a into dst (same
// shape). Rows are independent, so they are split across goroutines with
// bit-identical results when kernel parallelism is enabled.
func SoftmaxRowsInto(dst, a *Tensor) {
	if a.Rank() != 2 {
		panic("tensor: SoftmaxRows requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: SoftmaxRows destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	out := dst
	parallelRows(m, softmaxFlopsPerElem*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*n : (i+1)*n]
			orow := out.Data[i*n : (i+1)*n]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for j, v := range row {
				e := math.Exp(v - mx)
				orow[j] = e
				s += e
			}
			inv := 1 / s
			for j := range orow {
				orow[j] *= inv
			}
		}
	})
}

// LogSumExpRows returns the log-sum-exp of each row of a 2-D tensor.
func LogSumExpRows(a *Tensor) []float64 {
	if a.Rank() != 2 {
		panic("tensor: LogSumExpRows requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := make([]float64, m)
	parallelRows(m, softmaxFlopsPerElem*m*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Data[i*n : (i+1)*n]
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			s := 0.0
			for _, v := range row {
				s += math.Exp(v - mx)
			}
			out[i] = mx + math.Log(s)
		}
	})
	return out
}
