package tensor

import "fmt"

// Im2Col lowers a batched image tensor x with shape (B, C, H, W) into a
// matrix of shape (B*OH*OW, C*KH*KW) where each row holds one receptive
// field, so that convolution becomes a single MatMul with the reshaped
// kernel. Stride and same-style zero padding are supported. Output rows
// are independent, so they are split across goroutines (bit-identically)
// when kernel parallelism is enabled.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: Im2Col requires a rank-4 (B,C,H,W) tensor")
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	out := New(b*oh*ow, c*kh*kw)
	rows := b * oh * ow
	parallelRows(rows, rows*c*kh*kw, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			n := row / (oh * ow)
			oy := (row / ow) % oh
			ox := row % ow
			dst := out.Data[row*c*kh*kw : (row+1)*c*kh*kw]
			col := 0
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst[col] = x.Data[((n*c+ch)*h+iy)*w+ix]
						} else {
							dst[col] = 0
						}
						col++
					}
				}
			}
		}
	})
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters the lowered matrix cols of
// shape (B*OH*OW, C*KH*KW) back into an image tensor of shape (B, C, H, W),
// accumulating overlapping contributions. It is used for the convolution
// input gradient. Overlapping patches of one image accumulate into shared
// pixels, so the deterministic parallel split is per image: each goroutine
// owns a contiguous range of batch indices and scatters its images in the
// exact serial patch order.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Rank() != 2 || cols.Shape[0] != b*oh*ow || cols.Shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch: cols %v, expect (%d,%d)", cols.Shape, b*oh*ow, c*kh*kw))
	}
	out := New(b, c, h, w)
	parallelRows(b, b*oh*ow*c*kh*kw, func(nLo, nHi int) {
		for n := nLo; n < nHi; n++ {
			row := n * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := cols.Data[row*c*kh*kw : (row+1)*c*kh*kw]
					col := 0
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride - pad + ky
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride - pad + kx
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									out.Data[((n*c+ch)*h+iy)*w+ix] += src[col]
								}
								col++
							}
						}
					}
					row++
				}
			}
		}
	})
	return out
}

// ConvOutSize returns the spatial output size of a convolution along one axis.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
