package tensor

import "fmt"

// Im2Col lowers a batched image tensor x with shape (B, C, H, W) into a
// matrix of shape (B*OH*OW, C*KH*KW) where each row holds one receptive
// field, so that convolution becomes a single MatMul with the reshaped
// kernel. Stride and same-style zero padding are supported. Output rows
// are independent, so they are split across goroutines (bit-identically)
// when kernel parallelism is enabled. The output has x's dtype.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic("tensor: Im2Col requires a rank-4 (B,C,H,W) tensor")
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col produces empty output for input %v kernel %dx%d stride %d pad %d", x.Shape, kh, kw, stride, pad))
	}
	out := NewOf(x.dt, b*oh*ow, c*kh*kw)
	if x.dt == Float32 {
		im2col(out.Data32, x.Data32, b, c, h, w, kh, kw, oh, ow, stride, pad)
	} else {
		im2col(out.Data, x.Data, b, c, h, w, kh, kw, oh, ow, stride, pad)
	}
	return out
}

func im2col[T Elem](out, x []T, b, c, h, w, kh, kw, oh, ow, stride, pad int) {
	rows := b * oh * ow
	parallelRows(rows, rows*c*kh*kw, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			n := row / (oh * ow)
			oy := (row / ow) % oh
			ox := row % ow
			dst := out[row*c*kh*kw : (row+1)*c*kh*kw]
			col := 0
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							dst[col] = x[((n*c+ch)*h+iy)*w+ix]
						} else {
							dst[col] = 0
						}
						col++
					}
				}
			}
		}
	})
}

// Col2Im is the adjoint of Im2Col: it scatters the lowered matrix cols of
// shape (B*OH*OW, C*KH*KW) back into an image tensor of shape (B, C, H, W),
// accumulating overlapping contributions. It is used for the convolution
// input gradient. Overlapping patches of one image accumulate into shared
// pixels, so the deterministic parallel split is per image: each goroutine
// owns a contiguous range of batch indices and scatters its images in the
// exact serial patch order. The output has cols's dtype.
func Col2Im(cols *Tensor, b, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if cols.Rank() != 2 || cols.Shape[0] != b*oh*ow || cols.Shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch: cols %v, expect (%d,%d)", cols.Shape, b*oh*ow, c*kh*kw))
	}
	out := NewOf(cols.dt, b, c, h, w)
	if cols.dt == Float32 {
		col2im(out.Data32, cols.Data32, b, c, h, w, kh, kw, oh, ow, stride, pad)
	} else {
		col2im(out.Data, cols.Data, b, c, h, w, kh, kw, oh, ow, stride, pad)
	}
	return out
}

func col2im[T Elem](out, cols []T, b, c, h, w, kh, kw, oh, ow, stride, pad int) {
	parallelRows(b, b*oh*ow*c*kh*kw, func(nLo, nHi int) {
		for n := nLo; n < nHi; n++ {
			row := n * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := cols[row*c*kh*kw : (row+1)*c*kh*kw]
					col := 0
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride - pad + ky
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride - pad + kx
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									out[((n*c+ch)*h+iy)*w+ix] += src[col]
								}
								col++
							}
						}
					}
					row++
				}
			}
		}
	})
}

// ConvOutSize returns the spatial output size of a convolution along one axis.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
