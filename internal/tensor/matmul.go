package tensor

import (
	"fmt"
	"sync"
)

// The matmul family is implemented as one cache-blocked, register-tiled
// GEMM (GotoBLAS-style loop nest) shared by all three transpose
// variants:
//
//	MatMulInto    dst += a · b     (dst zero on entry by contract)
//	MatMulT1Into  dst += aᵀ · b    (dst zero on entry by contract)
//	MatMulT2Into  dst  = a · bᵀ    (dst overwritten: zeroed, then +=)
//
// Blocking: jc over columns (NC) → pc over the inner dimension (KC,
// packing a kc×nc panel of B into NR-interleaved scratch) → ic over the
// worker's row range (MC, packing an mc×kc panel of A into MR-interleaved
// scratch) → 4×8 register tiles. Packed panels make the microkernel's
// loads unit-stride and bounds-check-free. On amd64 with AVX the full
// tile runs as a hand-written SIMD kernel (microkernel_amd64.s) that
// vectorizes across the 8 independent output columns using separate
// multiply and add instructions — NOT fused multiply-add — so each
// output element performs exactly the same rounding steps as the scalar
// Go fallback and the naive reference loop: the SIMD path is a layout
// change, not a numeric one, and results are bit-identical on every
// machine. (gc does not auto-vectorize, and math.FMA would both change
// the rounding and crawl on pre-FMA hardware, so this is the only way to
// beat the scalar FLOP ceiling without giving up determinism.)
//
// Determinism: every output element accumulates its a[i,p]·b[p,j]
// contributions one floating-point add at a time in strictly ascending-p
// order, starting from the element's current dst value. Blocking only
// changes *when* each chain segment runs, never its order: the kc panels
// partition p in ascending runs, register accumulators carry the chain
// within a panel, and the store/reload between panels is exact. Packing
// copies values without arithmetic. The ragged-edge tail kernel walks the
// same packed panels in the same ascending-p order, and padding lanes are
// never stored. Hence blocked ≡ naive ≡ any ParallelRows row split,
// bitwise, per dtype — the property the engine equivalence suite pins.
//
// The kernels do not skip zero A elements (the old naive loops did). For
// finite inputs the skip is arithmetically invisible (x + 0·b == x, and a
// +0 accumulator stays +0), so this is bitwise identical on every value
// the trainers produce; the NaiveMatMul* reference kernels below use the
// same no-skip semantics.

const (
	mrTile  = 4   // register-tile rows
	nrTile  = 8   // register-tile columns (one or two SIMD vectors)
	mcBlock = 128 // A-panel rows (per pack)
	kcBlock = 256 // inner-dimension panel
	ncBlock = 512 // B-panel columns (per pack)

	// Shapes with m·n·k at or below this run the direct (unpacked)
	// loops: packing overhead beats the cache win on tiny operands.
	// The gate depends only on the shape, and direct and blocked are
	// bitwise identical anyway, so it cannot break determinism.
	directMaxWork = 32 * 1024
)

// packScratch holds the reusable packed A/B panels for one worker.
type packScratch[T Elem] struct {
	a []T
	b []T
}

// packPools is indexed by DType; entries hold *packScratch[float64] or
// *packScratch[float32] respectively.
var packPools [2]sync.Pool

func getPack[T Elem]() *packScratch[T] {
	if s, ok := packPools[dtypeOf[T]()].Get().(*packScratch[T]); ok {
		return s
	}
	return &packScratch[T]{
		a: make([]T, kcBlock*mcBlock),
		b: make([]T, kcBlock*ncBlock),
	}
}

func putPack[T Elem](s *packScratch[T]) {
	packPools[dtypeOf[T]()].Put(s)
}

// MatMul returns a @ b for rank-2 tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := NewOf(a.dt, a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a @ b into dst, which must be an m×n tensor whose
// elements are zero (freshly allocated or zeroed; tape arenas hand out
// zeroed buffers). All three tensors must share a dtype.
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v @ %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	checkDtypes(dst, a, b, "MatMul")
	if dst.dt == Float32 {
		gemm(F32(dst), F32(a), F32(b), m, n, k, false, false, false)
	} else {
		gemm(F64(dst), F64(a), F64(b), m, n, k, false, false, false)
	}
}

// MatMulT1 returns aᵀ @ b for a (k×m) and b (k×n): result is m×n.
func MatMulT1(a, b *Tensor) *Tensor {
	out := NewOf(a.dt, a.Shape[1], b.Shape[1])
	MatMulT1Into(out, a, b)
	return out
}

// MatMulT1Into computes aᵀ @ b into dst, an m×n tensor whose elements must
// be zero on entry. All three tensors must share a dtype.
func MatMulT1Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT1 requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dimension mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT1 destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	checkDtypes(dst, a, b, "MatMulT1")
	if dst.dt == Float32 {
		gemm(F32(dst), F32(a), F32(b), m, n, k, true, false, false)
	} else {
		gemm(F64(dst), F64(a), F64(b), m, n, k, true, false, false)
	}
}

// MatMulT2 returns a @ bᵀ for a (m×k) and b (n×k): result is m×n.
func MatMulT2(a, b *Tensor) *Tensor {
	out := NewOf(a.dt, a.Shape[0], b.Shape[0])
	MatMulT2Into(out, a, b)
	return out
}

// MatMulT2Into computes a @ bᵀ into dst, an m×n tensor. Every element of
// dst is overwritten. All three tensors must share a dtype.
func MatMulT2Into(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT2 requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dimension mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulT2 destination %v, want (%d,%d)", dst.Shape, m, n))
	}
	checkDtypes(dst, a, b, "MatMulT2")
	if dst.dt == Float32 {
		gemm(F32(dst), F32(a), F32(b), m, n, k, false, true, true)
	} else {
		gemm(F64(dst), F64(a), F64(b), m, n, k, false, true, true)
	}
}

func checkDtypes(dst, a, b *Tensor, op string) {
	if dst.dt != a.dt || dst.dt != b.dt {
		panic(fmt.Sprintf("tensor: %s dtype mismatch dst %s, a %s, b %s", op, dst.dt, a.dt, b.dt))
	}
}

// gemm accumulates the m×n product into dst. aT reads A as its transpose
// (A stored k×m); bT reads B as its transpose (B stored n×k). overwrite
// zeroes each worker's dst rows before accumulating (the T2 contract).
// Output rows are independent, so they are split across goroutines with
// bit-identical results.
func gemm[T Elem](dst, a, b []T, m, n, k int, aT, bT, overwrite bool) {
	lda := k
	if aT {
		lda = m
	}
	ldb := n
	if bT {
		ldb = k
	}
	parallelRows(m, 2*m*n*k, func(lo, hi int) {
		if overwrite {
			zero(dst[lo*n : hi*n])
		}
		if m*n*k <= directMaxWork {
			mmDirect(dst, a, b, n, k, lo, hi, lda, ldb, aT, bT)
			return
		}
		mmBlocked(dst, a, b, n, k, lo, hi, lda, ldb, aT, bT)
	})
}

// mmDirect is the unpacked small-shape path: ascending-p per-element
// accumulation, bitwise identical to mmBlocked.
func mmDirect[T Elem](dst, a, b []T, n, k, lo, hi, lda, ldb int, aT, bT bool) {
	for i := lo; i < hi; i++ {
		orow := dst[i*n : (i+1)*n]
		if bT {
			arow := a // placate the compiler when aT
			if !aT {
				arow = a[i*lda : i*lda+k]
			}
			for j := range orow {
				brow := b[j*ldb : j*ldb+k]
				acc := orow[j]
				if aT {
					for p := 0; p < k; p++ {
						acc += a[p*lda+i] * brow[p]
					}
				} else {
					for p := 0; p < k; p++ {
						acc += arow[p] * brow[p]
					}
				}
				orow[j] = acc
			}
			continue
		}
		for p := 0; p < k; p++ {
			var av T
			if aT {
				av = a[p*lda+i]
			} else {
				av = a[i*lda+p]
			}
			brow := b[p*ldb : p*ldb+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// mmBlocked runs the packed/blocked loop nest over the worker's row range
// [lo,hi). Each worker packs its own panels (duplicated O(k·n) packing
// work across workers, bought back many times over by the tiled compute).
func mmBlocked[T Elem](dst, a, b []T, n, k, lo, hi, lda, ldb int, aT, bT bool) {
	s := getPack[T]()
	for jc := 0; jc < n; jc += ncBlock {
		nc := min(ncBlock, n-jc)
		ncPad := roundUp(nc, nrTile)
		for pc := 0; pc < k; pc += kcBlock {
			kc := min(kcBlock, k-pc)
			bp := s.b[:kc*ncPad]
			packB(bp, b, ldb, jc, nc, pc, kc, bT)
			for ic := lo; ic < hi; ic += mcBlock {
				mc := min(mcBlock, hi-ic)
				ap := s.a[:kc*roundUp(mc, mrTile)]
				packA(ap, a, lda, ic, mc, pc, kc, aT)
				for jr := 0; jr < nc; jr += nrTile {
					nr := min(nrTile, nc-jr)
					bpp := bp[(jr/nrTile)*kc*nrTile:]
					for ir := 0; ir < mc; ir += mrTile {
						mr := min(mrTile, mc-ir)
						app := ap[(ir/mrTile)*kc*mrTile:]
						c := dst[(ic+ir)*n+jc+jr:]
						if mr == mrTile && nr == nrTile {
							microFull(c, n, app, bpp, kc)
						} else {
							microTail(c, n, app, bpp, kc, mr, nr)
						}
					}
				}
			}
		}
	}
	putPack(s)
}

func roundUp(x, m int) int { return (x + m - 1) / m * m }

// packA copies the mc×kc panel of A at (i0, p0) into MR-interleaved
// groups: group g holds rows i0+g·MR … interleaved p-major, so the
// microkernel reads its MR A values contiguously per p. Rows past mc are
// zero-padded; those lanes are only ever touched by micro4x4 on full
// tiles, which never exist in a padded group.
func packA[T Elem](ap, a []T, lda, i0, mc, p0, kc int, aT bool) {
	idx := 0
	for ir0 := 0; ir0 < mc; ir0 += mrTile {
		rows := min(mrTile, mc-ir0)
		for p := 0; p < kc; p++ {
			for r := 0; r < mrTile; r++ {
				var v T
				if r < rows {
					if aT {
						v = a[(p0+p)*lda+i0+ir0+r]
					} else {
						v = a[(i0+ir0+r)*lda+p0+p]
					}
				}
				ap[idx] = v
				idx++
			}
		}
	}
}

// packB copies the kc×nc panel of B at (p0, j0) into NR-interleaved
// groups, mirroring packA for columns.
func packB[T Elem](bp, b []T, ldb, j0, nc, p0, kc int, bT bool) {
	idx := 0
	for jr0 := 0; jr0 < nc; jr0 += nrTile {
		cols := min(nrTile, nc-jr0)
		for p := 0; p < kc; p++ {
			for c := 0; c < nrTile; c++ {
				var v T
				if c < cols {
					if bT {
						v = b[(j0+jr0+c)*ldb+p0+p]
					} else {
						v = b[(p0+p)*ldb+j0+jr0+c]
					}
				}
				bp[idx] = v
				idx++
			}
		}
	}
}

// microFull runs a full 4×8 tile: the AVX kernel on amd64 when available,
// otherwise a row-at-a-time generic kernel whose 8 accumulators fit the
// scalar register file. Both accumulate each element in ascending-p order
// with separate multiply and add, so they are bitwise interchangeable.
func microFull[T Elem](c []T, ldc int, ap, bp []T, kc int) {
	if kc == 0 {
		return
	}
	if haveSIMD {
		// The tile spans c[0 … 3*ldc+7]; the packed panels hold kc
		// MR/NR-groups. Checked here so the assembly needs no bounds logic.
		_ = c[3*ldc+7]
		_ = ap[4*kc-1]
		_ = bp[8*kc-1]
		if dtypeOf[T]() == Float64 {
			kern4x8f64(ptr(c), ldc, ptr(ap), ptr(bp), kc)
		} else {
			kern4x8f32(ptr(c), ldc, ptr(ap), ptr(bp), kc)
		}
		return
	}
	for ir := 0; ir < mrTile; ir++ {
		crow := c[ir*ldc : ir*ldc+8]
		c0, c1, c2, c3 := crow[0], crow[1], crow[2], crow[3]
		c4, c5, c6, c7 := crow[4], crow[5], crow[6], crow[7]
		a, b := ap[ir:], bp
		for p := 0; p < kc; p++ {
			av := a[0]
			bv := b[0:8]
			c0 += av * bv[0]
			c1 += av * bv[1]
			c2 += av * bv[2]
			c3 += av * bv[3]
			c4 += av * bv[4]
			c5 += av * bv[5]
			c6 += av * bv[6]
			c7 += av * bv[7]
			if p < kc-1 {
				a = a[4:]
				b = b[8:]
			}
		}
		crow[0], crow[1], crow[2], crow[3] = c0, c1, c2, c3
		crow[4], crow[5], crow[6], crow[7] = c4, c5, c6, c7
	}
}

// microTail handles ragged tiles (mr<4 or nr<4): each real element walks
// its packed lane in the same ascending-p order as a micro4x4 lane, so
// the two are bitwise interchangeable. Padded lanes are never read.
func microTail[T Elem](c []T, ldc int, ap, bp []T, kc, mr, nr int) {
	for ir := 0; ir < mr; ir++ {
		for jr := 0; jr < nr; jr++ {
			acc := c[ir*ldc+jr]
			for p := 0; p < kc; p++ {
				acc += ap[p*mrTile+ir] * bp[p*nrTile+jr]
			}
			c[ir*ldc+jr] = acc
		}
	}
}

// --- naive reference kernels ---
//
// The pre-blocking streaming loops, kept as the test-only ground truth
// the blocked kernels are pinned bit-equal to, and as the baseline the
// multicore CI speedup assertion measures against. Serial by design.

// NaiveMatMulInto computes dst += a @ b with the pre-blocking serial ikj
// loop (no zero-skip, matching the blocked kernel's semantics exactly).
func NaiveMatMulInto(dst, a, b *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	checkDtypes(dst, a, b, "NaiveMatMul")
	if dst.dt == Float32 {
		naiveMM(F32(dst), F32(a), F32(b), m, n, k)
	} else {
		naiveMM(F64(dst), F64(a), F64(b), m, n, k)
	}
}

func naiveMM[T Elem](dst, a, b []T, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			brow := b[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// NaiveMatMulT1Into computes dst += aᵀ @ b with the pre-blocking serial
// pij loop.
func NaiveMatMulT1Into(dst, a, b *Tensor) {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	checkDtypes(dst, a, b, "NaiveMatMulT1")
	if dst.dt == Float32 {
		naiveMMT1(F32(dst), F32(a), F32(b), m, n, k)
	} else {
		naiveMMT1(F64(dst), F64(a), F64(b), m, n, k)
	}
}

func naiveMMT1[T Elem](dst, a, b []T, m, n, k int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			orow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// NaiveMatMulT2Into computes dst = a @ bᵀ with the pre-blocking serial
// dot-product loop.
func NaiveMatMulT2Into(dst, a, b *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	checkDtypes(dst, a, b, "NaiveMatMulT2")
	if dst.dt == Float32 {
		naiveMMT2(F32(dst), F32(a), F32(b), m, n, k)
	} else {
		naiveMMT2(F64(dst), F64(a), F64(b), m, n, k)
	}
}

func naiveMMT2[T Elem](dst, a, b []T, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s T
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}
