package tensor

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// randOf returns a random tensor of the given dtype. Values are drawn in
// float64 and rounded, so a float32 tensor holds the rounded image of the
// float64 draw sequence.
func randOf(rng *rand.Rand, dt DType, shape ...int) *Tensor {
	t := NewOf(dt, shape...)
	for i := 0; i < t.Size(); i++ {
		v := rng.NormFloat64()
		if rng.Intn(8) == 0 {
			v = 0
		}
		t.SetFlat(i, v)
	}
	return t
}

func bitEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.DType() != want.DType() || !got.SameShape(want) {
		t.Fatalf("%s: shape/dtype mismatch %v vs %v", name, got, want)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got.Data[i], want.Data[i])
		}
	}
	for i := range got.Data32 {
		if got.Data32[i] != want.Data32[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got.Data32[i], want.Data32[i])
		}
	}
}

// matmulGrid holds shapes that exercise the direct small path, the
// blocked path, full register tiles, and ragged tails in every dimension
// (m, n, k not multiples of the 4×8 tile or the KC/MC/NC blocks).
var matmulGrid = [][3]int{
	{1, 1, 1},
	{3, 5, 7},
	{4, 8, 16},     // exact tiles, small path
	{17, 9, 33},    // ragged, small path
	{64, 64, 64},   // exact tiles, blocked path
	{65, 66, 67},   // ragged everywhere, blocked path
	{48, 130, 96},  // n ragged vs NR
	{130, 33, 258}, // m, k ragged; k spans two KC panels at KC=256? (k=33) — n=258 spans tiles
	{257, 70, 300}, // m spans two MC blocks with a ragged tail
}

// TestBlockedMatchesNaive pins the tentpole's correctness contract per
// dtype: the cache-blocked, register-tiled (and on amd64, SIMD) kernels
// produce bit-identical results to the pre-blocking naive loops, on
// shapes including ragged tails.
func TestBlockedMatchesNaive(t *testing.T) {
	for _, dt := range []DType{Float64, Float32} {
		rng := rand.New(rand.NewSource(7))
		for _, d := range matmulGrid {
			m, k, n := d[0], d[1], d[2]
			a := randOf(rng, dt, m, k)
			b := randOf(rng, dt, k, n)
			at := Transpose(a)
			bt := Transpose(b)

			got := MatMul(a, b)
			want := NewOf(dt, m, n)
			NaiveMatMulInto(want, a, b)
			bitEqual(t, dt.String()+" MatMul", got, want)

			got = MatMulT1(at, b)
			want = NewOf(dt, m, n)
			NaiveMatMulT1Into(want, at, b)
			bitEqual(t, dt.String()+" MatMulT1", got, want)

			got = MatMulT2(a, bt)
			want = NewOf(dt, m, n)
			NaiveMatMulT2Into(want, a, bt)
			bitEqual(t, dt.String()+" MatMulT2", got, want)
		}
	}
}

// TestMatMulAccumulates pins the += contract of MatMulInto/MatMulT1Into
// (dst need only be zero by convention; the kernel must accumulate into
// whatever is there, which the engines' tape reuse relies on).
func TestMatMulAccumulates(t *testing.T) {
	for _, dt := range []DType{Float64, Float32} {
		rng := rand.New(rand.NewSource(3))
		a := randOf(rng, dt, 65, 66)
		b := randOf(rng, dt, 66, 67)
		seed := randOf(rng, dt, 65, 67)

		got := seed.Clone()
		MatMulInto(got, a, b)
		want := seed.Clone()
		NaiveMatMulInto(want, a, b)
		bitEqual(t, dt.String()+" accumulate", got, want)
	}
}

// TestParallelBlockedBitIdentical extends the serial-vs-parallel
// determinism pin to both dtypes on blocked-path shapes.
func TestParallelBlockedBitIdentical(t *testing.T) {
	defer SetWorkers(1)
	for _, dt := range []DType{Float64, Float32} {
		rng := rand.New(rand.NewSource(11))
		for _, d := range [][3]int{{65, 66, 67}, {130, 96, 129}} {
			m, k, n := d[0], d[1], d[2]
			a := randOf(rng, dt, m, k)
			b := randOf(rng, dt, k, n)
			at, bt := Transpose(a), Transpose(b)

			SetWorkers(1)
			s1, s2, s3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
			SetWorkers(8)
			p1, p2, p3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
			SetWorkers(1)

			bitEqual(t, dt.String()+" parallel MatMul", p1, s1)
			bitEqual(t, dt.String()+" parallel MatMulT1", p2, s2)
			bitEqual(t, dt.String()+" parallel MatMulT2", p3, s3)
		}
	}
}

// TestIm2ColDtypes pins Im2Col/Col2Im float32 against the float64 path on
// integer-valued data, where both dtypes are exact.
func TestIm2ColDtypes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x64 := New(2, 3, 9, 9)
	x32 := NewOf(Float32, 2, 3, 9, 9)
	for i := 0; i < x64.Size(); i++ {
		v := float64(rng.Intn(17) - 8)
		x64.SetFlat(i, v)
		x32.SetFlat(i, v)
	}
	c64 := Im2Col(x64, 3, 3, 2, 1)
	c32 := Im2Col(x32, 3, 3, 2, 1)
	if c32.DType() != Float32 || !c32.SameShape(c64) {
		t.Fatalf("Im2Col float32 shape/dtype: %v vs %v", c32, c64)
	}
	for i := 0; i < c64.Size(); i++ {
		if c64.FlatAt(i) != c32.FlatAt(i) {
			t.Fatalf("Im2Col element %d: %v vs %v", i, c64.FlatAt(i), c32.FlatAt(i))
		}
	}
	i64 := Col2Im(c64, 2, 3, 9, 9, 3, 3, 2, 1)
	i32 := Col2Im(c32, 2, 3, 9, 9, 3, 3, 2, 1)
	if i32.DType() != Float32 {
		t.Fatalf("Col2Im dtype: %v", i32.DType())
	}
	for i := 0; i < i64.Size(); i++ {
		if i64.FlatAt(i) != i32.FlatAt(i) {
			t.Fatalf("Col2Im element %d: %v vs %v", i, i64.FlatAt(i), i32.FlatAt(i))
		}
	}
}

// TestSoftmaxRowsFloat32Deterministic pins that the float32 softmax is
// identical between serial and parallel execution.
func TestSoftmaxRowsFloat32Deterministic(t *testing.T) {
	defer SetWorkers(1)
	rng := rand.New(rand.NewSource(9))
	a := randOf(rng, Float32, 200, 65)
	SetWorkers(1)
	s := SoftmaxRows(a)
	SetWorkers(8)
	p := SoftmaxRows(a)
	SetWorkers(1)
	bitEqual(t, "softmax32", p, s)
}

// TestBlockedBeatsNaive asserts the satellite perf bound: the blocked
// float64 matmul beats the pre-blocking naive loop by ≥1.5× at 256³.
// Wall-clock sensitive, so it only runs when the CI kernels job opts in
// via PIPEMARE_KERNEL_PERF=1.
func TestBlockedBeatsNaive(t *testing.T) {
	if os.Getenv("PIPEMARE_KERNEL_PERF") != "1" {
		t.Skip("set PIPEMARE_KERNEL_PERF=1 to measure kernel speedup")
	}
	const n = 256
	rng := rand.New(rand.NewSource(1))
	a := randOf(rng, Float64, n, n)
	b := randOf(rng, Float64, n, n)
	dst := New(n, n)

	time1 := func(f func()) time.Duration {
		best := time.Duration(1 << 62)
		for r := 0; r < 5; r++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	blocked := time1(func() { dst.Zero(); MatMulInto(dst, a, b) })
	naive := time1(func() { dst.Zero(); NaiveMatMulInto(dst, a, b) })
	speedup := float64(naive) / float64(blocked)
	t.Logf("256³ float64: naive %v, blocked %v, speedup %.2fx", naive, blocked, speedup)
	if speedup < 1.5 {
		t.Fatalf("blocked matmul speedup %.2fx < 1.5x at 256³ (naive %v, blocked %v)", speedup, naive, blocked)
	}
}

// TestAt2Set2 pins the fast paths against the variadic originals and
// asserts they do not allocate (the variadic forms box their index slice
// on hot paths like gradcheck).
func TestAt2Set2(t *testing.T) {
	for _, dt := range []DType{Float64, Float32} {
		x := NewOf(dt, 5, 7)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 5; i++ {
			for j := 0; j < 7; j++ {
				v := float64(rng.Intn(100))
				x.Set2(v, i, j)
				if got := x.At(i, j); got != v {
					t.Fatalf("%s Set2/At mismatch at (%d,%d): %v vs %v", dt, i, j, got, v)
				}
				if got := x.At2(i, j); got != v {
					t.Fatalf("%s At2 mismatch at (%d,%d): %v vs %v", dt, i, j, got, v)
				}
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			x.Set2(x.At2(1, 2)+1, 3, 4)
		})
		if allocs != 0 {
			t.Fatalf("%s At2/Set2 allocated %.1f times per op, want 0", dt, allocs)
		}
	}
}

func benchMatMul(b *testing.B, dt DType, n int) {
	rng := rand.New(rand.NewSource(1))
	x := randOf(rng, dt, n, n)
	y := randOf(rng, dt, n, n)
	dst := NewOf(dt, n, n)
	// Bytes per op: the three operand arrays once each (the useful
	// traffic float32 halves); GFLOP/s is the kernel throughput metric.
	b.SetBytes(int64(3 * n * n * dt.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		MatMulInto(dst, x, y)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkMatMul64_128(b *testing.B) { benchMatMul(b, Float64, 128) }
func BenchmarkMatMul64_256(b *testing.B) { benchMatMul(b, Float64, 256) }
func BenchmarkMatMul64_512(b *testing.B) { benchMatMul(b, Float64, 512) }
func BenchmarkMatMul32_128(b *testing.B) { benchMatMul(b, Float32, 128) }
func BenchmarkMatMul32_256(b *testing.B) { benchMatMul(b, Float32, 256) }
func BenchmarkMatMul32_512(b *testing.B) { benchMatMul(b, Float32, 512) }

func benchNaive(b *testing.B, dt DType, n int) {
	rng := rand.New(rand.NewSource(1))
	x := randOf(rng, dt, n, n)
	y := randOf(rng, dt, n, n)
	dst := NewOf(dt, n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		NaiveMatMulInto(dst, x, y)
	}
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkNaiveMatMul64_256(b *testing.B) { benchNaive(b, Float64, 256) }
func BenchmarkNaiveMatMul32_256(b *testing.B) { benchNaive(b, Float32, 256) }

func BenchmarkAt2(b *testing.B) {
	x := New(64, 64)
	b.ReportAllocs()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += x.At2(i%64, (i+1)%64)
	}
	_ = s
}

func BenchmarkAtVariadic(b *testing.B) {
	x := New(64, 64)
	b.ReportAllocs()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += x.At(i%64, (i+1)%64)
	}
	_ = s
}
