//go:build !amd64

package tensor

import "unsafe"

// Non-amd64 builds always take the generic microkernel; results are
// bit-identical, only slower.
const haveSIMD = false

func kern4x8f64(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int) {
	panic("tensor: SIMD kernel unavailable")
}

func kern4x8f32(c unsafe.Pointer, ldc int, ap, bp unsafe.Pointer, kc int) {
	panic("tensor: SIMD kernel unavailable")
}

func ptr[T Elem](s []T) unsafe.Pointer { return unsafe.Pointer(&s[0]) }
