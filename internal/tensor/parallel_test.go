package tensor

import (
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			t.Data[i] = 0 // exercise the zero-skip path
		}
	}
	return t
}

// TestParallelKernelsBitIdentical pins the determinism contract that the
// concurrent execution engine relies on: enabling kernel parallelism must
// not change a single bit of any matmul result.
func TestParallelKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 48, 80}, {130, 33, 65}}
	for _, d := range dims {
		m, k, n := d[0], d[1], d[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		at, bt := Transpose(a), Transpose(b)

		SetWorkers(1)
		s1, s2, s3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
		SetWorkers(8)
		p1, p2, p3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
		SetWorkers(1)

		for _, pair := range []struct {
			name string
			s, p *Tensor
		}{{"MatMul", s1, p1}, {"MatMulT1", s2, p2}, {"MatMulT2", s3, p3}} {
			for i := range pair.s.Data {
				if pair.s.Data[i] != pair.p.Data[i] {
					t.Fatalf("%s %dx%dx%d: element %d differs: serial %v parallel %v",
						pair.name, m, k, n, i, pair.s.Data[i], pair.p.Data[i])
				}
			}
		}
	}
}

// TestParallelRowKernelsBitIdentical extends the determinism pin beyond
// the matmul family: row-parallel softmax/log-sum-exp and the im2col /
// col2im convolution lowering must match their serial results bit for bit.
func TestParallelRowKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := randTensor(rng, 129, 37)
	img := randTensor(rng, 5, 3, 9, 9)
	cols := randTensor(rng, 5*9*9, 3*3*3)

	type result struct {
		soft *Tensor
		lse  []float64
		i2c  *Tensor
		c2i  *Tensor
	}
	compute := func() result {
		return result{
			soft: SoftmaxRows(logits),
			lse:  LogSumExpRows(logits),
			i2c:  Im2Col(img, 3, 3, 1, 1),
			c2i:  Col2Im(cols, 5, 3, 9, 9, 3, 3, 1, 1),
		}
	}
	SetWorkers(1)
	serial := compute()
	SetWorkers(8)
	parallel := compute()
	SetWorkers(1)

	check := func(name string, s, p *Tensor) {
		t.Helper()
		for i := range s.Data {
			if s.Data[i] != p.Data[i] {
				t.Fatalf("%s: element %d differs: serial %v parallel %v", name, i, s.Data[i], p.Data[i])
			}
		}
	}
	check("SoftmaxRows", serial.soft, parallel.soft)
	check("Im2Col", serial.i2c, parallel.i2c)
	check("Col2Im", serial.c2i, parallel.c2i)
	for i := range serial.lse {
		if serial.lse[i] != parallel.lse[i] {
			t.Fatalf("LogSumExpRows: row %d differs: serial %v parallel %v", i, serial.lse[i], parallel.lse[i])
		}
	}
}

// TestIntoVariantsMatchAllocating pins that the Into kernels (used by the
// activation-tape arenas) agree with their allocating counterparts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randTensor(rng, 17, 9), randTensor(rng, 9, 13)
	at, bt := Transpose(a), Transpose(b)

	for _, c := range []struct {
		name string
		want *Tensor
		into func(dst *Tensor)
	}{
		{"MatMulInto", MatMul(a, b), func(d *Tensor) { MatMulInto(d, a, b) }},
		{"MatMulT1Into", MatMulT1(at, b), func(d *Tensor) { MatMulT1Into(d, at, b) }},
		{"MatMulT2Into", MatMulT2(a, bt), func(d *Tensor) { MatMulT2Into(d, a, bt) }},
		{"SoftmaxRowsInto", SoftmaxRows(a), func(d *Tensor) { SoftmaxRowsInto(d.Reshape(17, 9), a) }},
	} {
		dst := New(c.want.Shape...)
		c.into(dst)
		for i := range c.want.Data {
			if dst.Data[i] != c.want.Data[i] {
				t.Fatalf("%s: element %d differs", c.name, i)
			}
		}
	}
}

func TestRaiseWorkersNests(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	RaiseWorkers(8) // engine A starts
	RaiseWorkers(4) // engine B starts while A runs: max wins
	if Workers() != 8 {
		t.Fatalf("nested raise: Workers() = %d, want 8", Workers())
	}
	LowerWorkers() // A stops: B still running, setting must hold
	if Workers() != 8 {
		t.Fatalf("after first lower: Workers() = %d, want 8", Workers())
	}
	LowerWorkers() // B stops: baseline restored
	if Workers() != 1 {
		t.Fatalf("after last lower: Workers() = %d, want 1", Workers())
	}
	LowerWorkers() // unpaired: no-op
	if Workers() != 1 {
		t.Fatalf("unpaired lower changed Workers() to %d", Workers())
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) must clamp to 1, got %d", Workers())
	}
	if got := SetWorkers(4); got != 1 {
		t.Fatalf("SetWorkers must return the previous value, got %d", got)
	}
	if Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", Workers())
	}
	SetWorkers(prev)
}
