package tensor

import (
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
		if rng.Intn(8) == 0 {
			t.Data[i] = 0 // exercise the zero-skip path
		}
	}
	return t
}

// TestParallelKernelsBitIdentical pins the determinism contract that the
// concurrent execution engine relies on: enabling kernel parallelism must
// not change a single bit of any matmul result.
func TestParallelKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 48, 80}, {130, 33, 65}}
	for _, d := range dims {
		m, k, n := d[0], d[1], d[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		at, bt := Transpose(a), Transpose(b)

		SetWorkers(1)
		s1, s2, s3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
		SetWorkers(8)
		p1, p2, p3 := MatMul(a, b), MatMulT1(at, b), MatMulT2(a, bt)
		SetWorkers(1)

		for _, pair := range []struct {
			name string
			s, p *Tensor
		}{{"MatMul", s1, p1}, {"MatMulT1", s2, p2}, {"MatMulT2", s3, p3}} {
			for i := range pair.s.Data {
				if pair.s.Data[i] != pair.p.Data[i] {
					t.Fatalf("%s %dx%dx%d: element %d differs: serial %v parallel %v",
						pair.name, m, k, n, i, pair.s.Data[i], pair.p.Data[i])
				}
			}
		}
	}
}

func TestRaiseWorkersNests(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	RaiseWorkers(8) // engine A starts
	RaiseWorkers(4) // engine B starts while A runs: max wins
	if Workers() != 8 {
		t.Fatalf("nested raise: Workers() = %d, want 8", Workers())
	}
	LowerWorkers() // A stops: B still running, setting must hold
	if Workers() != 8 {
		t.Fatalf("after first lower: Workers() = %d, want 8", Workers())
	}
	LowerWorkers() // B stops: baseline restored
	if Workers() != 1 {
		t.Fatalf("after last lower: Workers() = %d, want 1", Workers())
	}
	LowerWorkers() // unpaired: no-op
	if Workers() != 1 {
		t.Fatalf("unpaired lower changed Workers() to %d", Workers())
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) must clamp to 1, got %d", Workers())
	}
	if got := SetWorkers(4); got != 1 {
		t.Fatalf("SetWorkers must return the previous value, got %d", got)
	}
	if Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", Workers())
	}
	SetWorkers(prev)
}
