package tensor

import "fmt"

// DType identifies a tensor's element type. The zero value is Float64 —
// the package's historical default — so zero-value construction and every
// pre-dtype call site keep their meaning.
type DType uint8

const (
	// Float64 is the default element type (and the zero DType).
	Float64 DType = iota
	// Float32 halves memory traffic; it is the dtype real trainers use.
	Float32
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	if d == Float32 {
		return 4
	}
	return 8
}

// String names the dtype the way the bench records spell it.
func (d DType) String() string {
	if d == Float32 {
		return "float32"
	}
	return "float64"
}

// ParseDType parses "float32"/"float64" (as spelled by DType.String).
func ParseDType(s string) (DType, error) {
	switch s {
	case "float64", "":
		return Float64, nil
	case "float32":
		return Float32, nil
	}
	return Float64, fmt.Errorf("tensor: unknown dtype %q (want float32 or float64)", s)
}

// Elem constrains the generic kernels to the two supported element types.
type Elem interface {
	float32 | float64
}

// dtypeOf returns the DType of the instantiated element type. The boxed
// zero value hits the runtime's static small-value cache, so this never
// allocates.
func dtypeOf[T Elem]() DType {
	var z T
	if _, ok := any(z).(float32); ok {
		return Float32
	}
	return Float64
}

// F64 returns t's float64 backing slice, panicking when t is not a
// Float64 tensor. Together with F32 it is how dispatch sites hand a
// tensor's storage to the generic kernels with zero boxing.
func F64(t *Tensor) []float64 {
	if t.dt != Float64 {
		panic("tensor: float64 access to a " + t.dt.String() + " tensor")
	}
	return t.Data
}

// F32 returns t's float32 backing slice, panicking when t is not a
// Float32 tensor.
func F32(t *Tensor) []float32 {
	if t.dt != Float32 {
		panic("tensor: float32 access to a " + t.dt.String() + " tensor")
	}
	return t.Data32
}

// NewOf returns a zero-filled tensor of the given dtype and shape.
func NewOf(dt DType, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{Shape: append([]int(nil), shape...), dt: dt}
	if dt == Float32 {
		t.Data32 = make([]float32, n)
	} else {
		t.Data = make([]float64, n)
	}
	return t
}

// NewLike returns a zero-filled tensor with t's dtype and shape.
func NewLike(t *Tensor) *Tensor { return NewOf(t.dt, t.Shape...) }

// FromSlice32 wraps data in a float32 tensor of the given shape. The
// slice is used directly (not copied).
func FromSlice32(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (=%d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data32: data, dt: Float32}
}

// DType returns t's element type.
func (t *Tensor) DType() DType { return t.dt }

// Bytes returns the storage size of t's elements in bytes.
func (t *Tensor) Bytes() int { return t.Size() * t.dt.Size() }

// FlatAt reads flat element i as a float64, whatever the dtype — the
// scalar escape hatch for token ids, labels and metric reads.
func (t *Tensor) FlatAt(i int) float64 {
	if t.dt == Float32 {
		return float64(t.Data32[i])
	}
	return t.Data[i]
}

// SetFlat stores v (rounded for float32 tensors) at flat element i.
func (t *Tensor) SetFlat(i int, v float64) {
	if t.dt == Float32 {
		t.Data32[i] = float32(v)
	} else {
		t.Data[i] = v
	}
}

// CopyRange copies n elements from src[so:] into dst[do:], converting
// elementwise when the dtypes differ (float64→float32 rounds; the
// reverse is exact). Same-dtype copies are raw copies.
func CopyRange(dst *Tensor, do int, src *Tensor, so, n int) {
	switch {
	case dst.dt == src.dt && dst.dt == Float32:
		copy(dst.Data32[do:do+n], src.Data32[so:so+n])
	case dst.dt == src.dt:
		copy(dst.Data[do:do+n], src.Data[so:so+n])
	case dst.dt == Float32:
		d, s := dst.Data32[do:do+n], src.Data[so:so+n]
		for i := range d {
			d[i] = float32(s[i])
		}
	default:
		d, s := dst.Data[do:do+n], src.Data32[so:so+n]
		for i := range d {
			d[i] = float64(s[i])
		}
	}
}

// CastTo converts t in place to dtype dt (a no-op when it already is):
// the backing store is reallocated and every element converted. Views
// sharing the old store are not chased — cast before creating views.
func (t *Tensor) CastTo(dt DType) {
	if t.dt == dt {
		return
	}
	if dt == Float32 {
		d := make([]float32, len(t.Data))
		for i, v := range t.Data {
			d[i] = float32(v)
		}
		t.Data, t.Data32, t.dt = nil, d, Float32
	} else {
		d := make([]float64, len(t.Data32))
		for i, v := range t.Data32 {
			d[i] = float64(v)
		}
		t.Data32, t.Data, t.dt = nil, d, Float64
	}
}
