// Package faults injects scripted transport failures for testing the
// fault-tolerance layer: a Conn wrapper over transport.MsgConn applies
// deterministic, message-counted rules — drop a send before it reaches
// the wire (a transient fault the retry layer must absorb), delay it,
// corrupt it (a fatal decode error on the peer), kill the connection,
// hang a receive until the heartbeat window expires, or run an
// arbitrary hook (e.g. os.Exit in a worker, simulating kill -9).
//
// Rules trigger on the Nth matching message, counted per rule, so a
// scenario like "kill replica 2's link on its 3rd RunChunk" is one Rule
// and is exactly reproducible: no randomness, no timing dependence.
package faults

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pipemare/internal/transport"
)

// Op is what a triggered rule does to the matching message.
type Op int

const (
	// Drop discards a send before it reaches the wire and reports a
	// transient error — the one fault class where a resend is provably
	// invisible to the peer, so the retry layer recovers with zero curve
	// deviation.
	Drop Op = iota
	// Delay sleeps Rule.Delay (context-aware), then proceeds normally.
	Delay
	// Corrupt truncates the message payload so the peer's decoder fails —
	// a deterministic fatal fault.
	Corrupt
	// Kill closes the underlying connection and fails the operation —
	// the clean model of a dead peer.
	Kill
	// Hang blocks the operation until its context ends — the model of a
	// hung peer, detected only by the heartbeat window.
	Hang
	// Hook runs Rule.Hook, then proceeds normally. A worker-side hook
	// that calls os.Exit models kill -9 at a precise protocol point.
	Hook
)

// Dir selects which side of the connection a rule watches.
type Dir int

const (
	// Send matches outgoing messages.
	Send Dir = iota
	// Recv matches incoming messages (applied after the read returns).
	Recv
)

// Rule is one scripted fault: on the Nth message in direction Dir whose
// type matches Type (0 = any type), apply Op. Each rule counts its own
// matches and triggers once by default; Count widens the trigger to a
// run of consecutive matches — the shape of a straggling peer, which is
// slow for a stretch of collectives, not exactly one.
type Rule struct {
	Dir   Dir
	Type  byte // message type to match; 0 matches every type
	Nth   int  // 1-based count of matching messages; 0 means 1
	Count int  // matches to fire on, starting at Nth: 0 or 1 = once, n = Nth..Nth+n-1, -1 = every match from Nth on
	Op    Op
	Delay time.Duration // Delay op only
	Hook  func()        // Hook op only
}

// Script holds a set of rules with their trigger state. One Script may
// back several connections (its counters are mutex-guarded), but the
// usual setup is one Script per faulty link.
type Script struct {
	mu    sync.Mutex
	rules []Rule
	seen  []int
	fired []bool
}

// NewScript builds a script from rules.
func NewScript(rules ...Rule) *Script {
	return &Script{rules: rules, seen: make([]int, len(rules)), fired: make([]bool, len(rules))}
}

// match returns the first untriggered rule that fires on this message,
// marking it fired.
func (s *Script) match(dir Dir, typ byte) *Rule {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.rules {
		r := &s.rules[i]
		if r.Dir != dir || (r.Type != 0 && r.Type != typ) || s.fired[i] {
			continue
		}
		s.seen[i]++
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		if s.seen[i] < nth {
			continue
		}
		switch {
		case r.Count < 0:
			// Unbounded: fires on every match from Nth on, never latches.
		case s.seen[i] >= nth+max(r.Count, 1)-1:
			// Last firing of the run: latch so later matches pass through.
			s.fired[i] = true
		}
		return r
	}
	return nil
}

// Conn wraps a transport connection, applying the script's rules to the
// messages crossing it.
type Conn struct {
	inner  transport.MsgConn
	script *Script
}

// Wrap applies script to conn.
func Wrap(conn transport.MsgConn, script *Script) *Conn {
	return &Conn{inner: conn, script: script}
}

// Send applies any matching send-side rule, then forwards to the inner
// connection.
func (c *Conn) Send(ctx context.Context, m transport.Msg) error {
	if r := c.script.match(Send, m.Type); r != nil {
		switch r.Op {
		case Drop:
			return fmt.Errorf("faults: dropped message type %d: %w", m.Type, transport.ErrTransient)
		case Delay:
			t := time.NewTimer(r.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		case Corrupt:
			m = corrupt(m)
		case Kill:
			c.inner.Close()
			return fmt.Errorf("faults: connection killed on message type %d", m.Type)
		case Hang:
			<-ctx.Done()
			return ctx.Err()
		case Hook:
			if r.Hook != nil {
				r.Hook()
			}
		}
	}
	return c.inner.Send(ctx, m)
}

// Recv forwards to the inner connection, then applies any matching
// recv-side rule to the message that arrived.
func (c *Conn) Recv(ctx context.Context) (transport.Msg, error) {
	m, err := c.inner.Recv(ctx)
	if err != nil {
		return m, err
	}
	if r := c.script.match(Recv, m.Type); r != nil {
		switch r.Op {
		case Drop:
			return transport.Msg{}, fmt.Errorf("faults: dropped received message type %d: %w", m.Type, transport.ErrTransient)
		case Delay:
			t := time.NewTimer(r.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return transport.Msg{}, ctx.Err()
			}
		case Corrupt:
			m = corrupt(m)
		case Kill:
			c.inner.Close()
			return transport.Msg{}, fmt.Errorf("faults: connection killed on received message type %d", m.Type)
		case Hang:
			<-ctx.Done()
			return transport.Msg{}, ctx.Err()
		case Hook:
			if r.Hook != nil {
				r.Hook()
			}
		}
	}
	return m, nil
}

// corrupt deterministically damages a message: the payload loses its
// last byte (or the type becomes invalid when there is none), so the
// peer's decoder reports a clean error.
func corrupt(m transport.Msg) transport.Msg {
	if len(m.Data) > 0 {
		m.Data = m.Data[:len(m.Data)-1]
	} else {
		m.Type = 0xFF
	}
	return m
}

// Close closes the inner connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr names the inner connection's local end.
func (c *Conn) LocalAddr() string { return c.inner.LocalAddr() }

var _ transport.MsgConn = (*Conn)(nil)

// Dialer wraps a transport dialer so every dialed connection carries the
// script — the leader-side injection point (wrap one replica's dialer to
// fault that link).
type Dialer struct {
	Inner  transport.Dialer
	Script *Script
}

// Dial dials through the inner dialer and wraps the result.
func (d *Dialer) Dial(ctx context.Context) (transport.MsgConn, error) {
	conn, err := d.Inner.Dial(ctx)
	if err != nil {
		return nil, err
	}
	return Wrap(conn, d.Script), nil
}

// Listener wraps a transport listener so every accepted connection
// carries the script — the worker-side injection point (crash-at flags
// in cmd/pipemare-worker).
type Listener struct {
	Inner  transport.Listener
	Script *Script
}

// Accept accepts through the inner listener and wraps the result.
func (l *Listener) Accept(ctx context.Context) (transport.MsgConn, error) {
	conn, err := l.Inner.Accept(ctx)
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.Script), nil
}

// Addr names the inner endpoint.
func (l *Listener) Addr() string { return l.Inner.Addr() }

// Close closes the inner listener.
func (l *Listener) Close() error { return l.Inner.Close() }

var (
	_ transport.Dialer   = (*Dialer)(nil)
	_ transport.Listener = (*Listener)(nil)
)
