// Package model builds the networks and tasks of the PipeMare evaluation:
// a deep residual MLP and a convolutional ResNet for the image
// classification substitutes, and an encoder–decoder Transformer for the
// translation substitute (see DESIGN.md §1 for the substitution table).
//
// Every task compiles its network to an nn.Program whose ops are aligned
// with the task's weight groups, so the trainer can execute it as
// per-stage segments (core.StageTask) and the concurrent engine can keep
// several microbatches in flight across pipeline stages at once. The
// monolithic Forward/Backward methods run the same program end to end on a
// private machine.
package model

import (
	"fmt"
	"math/rand"

	"pipemare/internal/core"
	"pipemare/internal/data"
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// Classification is a core.Task for image classification over a network
// whose outputs are class logits.
type Classification struct {
	CE     *nn.CrossEntropy
	groups []pipeline.ParamGroup
	prog   *nn.Program

	rIn     nn.Reg
	rLogits nn.Reg
	lossAt  int // op index of the loss op

	trainM, evalM *nn.Machine

	trainX, testX *tensor.Tensor // (N, D) or (N, C, H, W) features
	trainY, testY []int

	clone func() *Classification // rebuild for data-parallel replication

	dt tensor.DType
}

func newClassification(b *progBuilder, rIn, rLogits nn.Reg, ce *nn.CrossEntropy, d *data.Images, flat bool) *Classification {
	c := &Classification{
		CE: ce, groups: b.groups, prog: b.build(),
		rIn: rIn, rLogits: rLogits, lossAt: len(b.ops) - 1,
		trainY: d.TrainY, testY: d.TestY,
	}
	if flat {
		c.trainX, c.testX = d.FlatTrain(), d.FlatTest()
	} else {
		c.trainX, c.testX = d.TrainX, d.TestX
	}
	c.trainM = nn.NewMachine(c.prog.NumRegs)
	c.evalM = nn.NewMachine(c.prog.NumRegs)
	return c
}

// NewResNetMLP builds a deep pre-activation residual MLP classifier:
//
//	Linear(in→width) · [x + Linear(ReLU(LN(x)))]×blocks · LN · Linear(width→classes)
//
// One weight group per layer (weight+bias fused), so the maximum stage
// count is 2·blocks + 3 — analogous to the paper's "one stage per model
// weight" ResNet50 regime.
func NewResNetMLP(d *data.Images, width, blocks int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	in := d.C * d.H * d.W
	b := &progBuilder{}
	rIn := b.reg()

	stem := nn.NewLinear("stem", in, width, true, rng)
	x := b.apply(b.group("stem", stem.Params()), stem, rIn)
	for blk := 0; blk < blocks; blk++ {
		ln := nn.NewLayerNorm(fmt.Sprintf("blk%d.ln", blk), width)
		fc := nn.NewLinear(fmt.Sprintf("blk%d.fc", blk), width, width, true, rng)
		gLn := b.group(fmt.Sprintf("blk%d.ln", blk), ln.Params())
		gFc := b.group(fmt.Sprintf("blk%d.fc", blk), fc.Params())
		h := b.apply(gLn, ln, x)
		h = b.apply(gLn, nn.NewReLU(), h)
		f := b.apply(gFc, fc, h)
		x = b.add(gFc, x, f)
	}
	hn := nn.NewLayerNorm("head.ln", width)
	head := nn.NewLinear("head.fc", width, d.Classes, true, rng)
	x = b.apply(b.group("head.ln", hn.Params()), hn, x)
	gHead := b.group("head.fc", head.Params())
	logits := b.apply(gHead, head, x)
	ce := nn.NewCrossEntropy()
	b.loss(gHead, ce, logits)

	c := newClassification(b, rIn, logits, ce, d, true)
	c.clone = func() *Classification { return NewResNetMLP(d, width, blocks, seed) }
	return c
}

// NewConvNet builds a small convolutional residual classifier over
// (C, H, W) images:
//
//	Conv(C→ch) · GN · ReLU · [x + Conv(ReLU(GN(x)))]×blocks · GAP · Linear
func NewConvNet(d *data.Images, channels, blocks, groupsPerNorm int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	b := &progBuilder{}
	rIn := b.reg()

	stem := nn.NewConv2d("stem", d.C, channels, 3, 1, 1, true, rng)
	gn0 := nn.NewGroupNorm("stem.gn", channels, groupsPerNorm)
	x := b.apply(b.group("stem", stem.Params()), stem, rIn)
	gGn0 := b.group("stem.gn", gn0.Params())
	x = b.apply(gGn0, gn0, x)
	x = b.apply(gGn0, nn.NewReLU(), x)
	for blk := 0; blk < blocks; blk++ {
		gn := nn.NewGroupNorm(fmt.Sprintf("blk%d.gn", blk), channels, groupsPerNorm)
		cv := nn.NewConv2d(fmt.Sprintf("blk%d.conv", blk), channels, channels, 3, 1, 1, true, rng)
		gGn := b.group(fmt.Sprintf("blk%d.gn", blk), gn.Params())
		gCv := b.group(fmt.Sprintf("blk%d.conv", blk), cv.Params())
		h := b.apply(gGn, gn, x)
		h = b.apply(gGn, nn.NewReLU(), h)
		f := b.apply(gCv, cv, h)
		x = b.add(gCv, x, f)
	}
	head := nn.NewLinear("head", channels, d.Classes, true, rng)
	gHead := b.group("head", head.Params())
	x = b.apply(gHead, nn.NewGlobalAvgPool(), x)
	logits := b.apply(gHead, head, x)
	ce := nn.NewCrossEntropy()
	b.loss(gHead, ce, logits)

	c := newClassification(b, rIn, logits, ce, d, false)
	c.clone = func() *Classification { return NewConvNet(d, channels, blocks, groupsPerNorm, seed) }
	return c
}

// Groups returns the model's weight groups in forward order.
func (c *Classification) Groups() []pipeline.ParamGroup { return c.groups }

// CloneTask rebuilds an architecturally identical task over the same
// dataset (core.Replicable, for WithReplicas data parallelism). The
// clone re-applies the dtype so every replica rounds the same float64
// initialization identically.
func (c *Classification) CloneTask() core.Task {
	nc := c.clone()
	if c.dt != tensor.Float64 {
		nc.SetDType(c.dt)
	}
	return nc
}

// SetDType casts the model to dt. Parameters become the rounded image of
// their float64 initialization (the rng draw sequence is unchanged), and
// all tape-allocated activations follow. Call before training starts —
// the optimizer sizes its moments off the parameter dtype.
func (c *Classification) SetDType(dt tensor.DType) {
	c.dt = dt
	setProgDType(dt, c.groups, c.prog, c.trainM, c.evalM)
}

// Program returns the compiled op program (core.StageTask).
func (c *Classification) Program() *nn.Program { return c.prog }

// BindMicro loads the indexed samples and labels into a machine
// (core.StageTask). The machine must have been reset.
func (c *Classification) BindMicro(m *nn.Machine, idx []int) {
	m.SetVal(c.rIn, gatherRowsTape(&m.Tape, c.trainX, idx))
	m.Labels = m.Labels[:0]
	for _, ix := range idx {
		m.Labels = append(m.Labels, c.trainY[ix])
	}
}

// NumTrain returns the training-set size.
func (c *Classification) NumTrain() int { return len(c.trainY) }

// Forward computes the mean cross-entropy loss on the indexed samples.
func (c *Classification) Forward(idx []int) float64 {
	c.trainM.ResetRun()
	c.BindMicro(c.trainM, idx)
	c.prog.ForwardRange(c.trainM, 0, len(c.prog.Ops))
	return c.trainM.Loss
}

// Backward backpropagates from the last Forward.
func (c *Classification) Backward() {
	c.prog.BackwardRange(c.trainM, 0, len(c.prog.Ops))
}

// EvalTest returns test accuracy in percent.
func (c *Classification) EvalTest() float64 {
	n := len(c.testY)
	const chunk = 256
	correct := 0
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		idx := make([]int, e-s)
		for i := range idx {
			idx[i] = s + i
		}
		c.evalM.ResetRun()
		c.evalM.SetVal(c.rIn, gatherRowsTape(&c.evalM.Tape, c.testX, idx))
		c.prog.ForwardRange(c.evalM, 0, c.lossAt)
		logits := c.evalM.Val(c.rLogits)
		for i := range idx {
			if logits.ArgMaxRow(i) == c.testY[idx[i]] {
				correct++
			}
		}
	}
	return 100 * float64(correct) / float64(n)
}

// gatherRows selects rows (first axis) of x at the given indices.
func gatherRows(x *tensor.Tensor, idx []int) *tensor.Tensor {
	rowLen := x.Size() / x.Shape[0]
	shape := append([]int{len(idx)}, x.Shape[1:]...)
	out := tensor.New(shape...)
	for i, ix := range idx {
		copy(out.Data[i*rowLen:(i+1)*rowLen], x.Data[ix*rowLen:(ix+1)*rowLen])
	}
	return out
}
