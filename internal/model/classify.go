// Package model builds the networks and tasks of the PipeMare evaluation:
// a deep residual MLP and a convolutional ResNet for the image
// classification substitutes, and an encoder–decoder Transformer for the
// translation substitute (see DESIGN.md §1 for the substitution table).
package model

import (
	"fmt"
	"math/rand"

	"pipemare/internal/data"
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// Classification is a core.Task for image classification over a layer
// network whose outputs are class logits.
type Classification struct {
	Net    nn.Layer
	CE     *nn.CrossEntropy
	groups []pipeline.ParamGroup

	trainX, testX *tensor.Tensor // (N, D) features
	trainY, testY []int
}

// NewResNetMLP builds a deep pre-activation residual MLP classifier:
//
//	Linear(in→width) · [Residual(LN → ReLU → Linear)]×blocks · LN · Linear(width→classes)
//
// One weight group per layer (weight+bias fused), so the maximum stage
// count is 2·blocks + 4 — analogous to the paper's "one stage per model
// weight" ResNet50 regime.
func NewResNetMLP(d *data.Images, width, blocks int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	in := d.C * d.H * d.W
	var layers []nn.Layer
	var groups []pipeline.ParamGroup

	add := func(name string, l nn.Layer) nn.Layer {
		layers = append(layers, l)
		if ps := l.Params(); len(ps) > 0 {
			groups = append(groups, pipeline.ParamGroup{Name: name, Params: ps})
		}
		return l
	}
	add("stem", nn.NewLinear("stem", in, width, true, rng))
	for b := 0; b < blocks; b++ {
		ln := nn.NewLayerNorm(fmt.Sprintf("blk%d.ln", b), width)
		fc := nn.NewLinear(fmt.Sprintf("blk%d.fc", b), width, width, true, rng)
		inner := nn.NewSequential(ln, nn.NewReLU(), fc)
		layers = append(layers, nn.NewResidual(inner))
		groups = append(groups,
			pipeline.ParamGroup{Name: fmt.Sprintf("blk%d.ln", b), Params: ln.Params()},
			pipeline.ParamGroup{Name: fmt.Sprintf("blk%d.fc", b), Params: fc.Params()},
		)
	}
	add("head.ln", nn.NewLayerNorm("head.ln", width))
	add("head.fc", nn.NewLinear("head.fc", width, d.Classes, true, rng))

	return &Classification{
		Net:    nn.NewSequential(layers...),
		CE:     nn.NewCrossEntropy(),
		groups: groups,
		trainX: d.FlatTrain(), testX: d.FlatTest(),
		trainY: d.TrainY, testY: d.TestY,
	}
}

// NewConvNet builds a small convolutional residual classifier over
// (C, H, W) images:
//
//	Conv(C→ch) · GN · ReLU · [Residual(GN → ReLU → Conv)]×blocks · GAP · Linear
func NewConvNet(d *data.Images, channels, blocks, groupsPerNorm int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	var layers []nn.Layer
	var pgroups []pipeline.ParamGroup

	stem := nn.NewConv2d("stem", d.C, channels, 3, 1, 1, true, rng)
	gn0 := nn.NewGroupNorm("stem.gn", channels, groupsPerNorm)
	layers = append(layers, stem, gn0, nn.NewReLU())
	pgroups = append(pgroups,
		pipeline.ParamGroup{Name: "stem", Params: stem.Params()},
		pipeline.ParamGroup{Name: "stem.gn", Params: gn0.Params()},
	)
	for b := 0; b < blocks; b++ {
		gn := nn.NewGroupNorm(fmt.Sprintf("blk%d.gn", b), channels, groupsPerNorm)
		cv := nn.NewConv2d(fmt.Sprintf("blk%d.conv", b), channels, channels, 3, 1, 1, true, rng)
		layers = append(layers, nn.NewResidual(nn.NewSequential(gn, nn.NewReLU(), cv)))
		pgroups = append(pgroups,
			pipeline.ParamGroup{Name: fmt.Sprintf("blk%d.gn", b), Params: gn.Params()},
			pipeline.ParamGroup{Name: fmt.Sprintf("blk%d.conv", b), Params: cv.Params()},
		)
	}
	head := nn.NewLinear("head", channels, d.Classes, true, rng)
	layers = append(layers, nn.NewGlobalAvgPool(), head)
	pgroups = append(pgroups, pipeline.ParamGroup{Name: "head", Params: head.Params()})

	c := &Classification{
		Net:    nn.NewSequential(layers...),
		CE:     nn.NewCrossEntropy(),
		groups: pgroups,
		trainY: d.TrainY, testY: d.TestY,
	}
	// Conv nets consume (N, C, H, W) tensors directly.
	c.trainX = d.TrainX
	c.testX = d.TestX
	return c
}

// Groups returns the model's weight groups in forward order.
func (c *Classification) Groups() []pipeline.ParamGroup { return c.groups }

// NumTrain returns the training-set size.
func (c *Classification) NumTrain() int { return len(c.trainY) }

// Forward computes the mean cross-entropy loss on the indexed samples.
func (c *Classification) Forward(idx []int) float64 {
	x := gatherRows(c.trainX, idx)
	labels := make([]int, len(idx))
	for i, ix := range idx {
		labels[i] = c.trainY[ix]
	}
	logits := c.Net.Forward(x)
	return c.CE.Forward(logits, labels)
}

// Backward backpropagates from the last Forward.
func (c *Classification) Backward() {
	c.Net.Backward(c.CE.Backward())
}

// EvalTest returns test accuracy in percent.
func (c *Classification) EvalTest() float64 {
	n := len(c.testY)
	const chunk = 256
	correct := 0
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		idx := make([]int, e-s)
		for i := range idx {
			idx[i] = s + i
		}
		x := gatherRows(c.testX, idx)
		logits := c.Net.Forward(x)
		for i := range idx {
			if logits.ArgMaxRow(i) == c.testY[idx[i]] {
				correct++
			}
		}
	}
	return 100 * float64(correct) / float64(n)
}

// gatherRows selects rows (first axis) of x at the given indices.
func gatherRows(x *tensor.Tensor, idx []int) *tensor.Tensor {
	rowLen := x.Size() / x.Shape[0]
	shape := append([]int{len(idx)}, x.Shape[1:]...)
	out := tensor.New(shape...)
	for i, ix := range idx {
		copy(out.Data[i*rowLen:(i+1)*rowLen], x.Data[ix*rowLen:(ix+1)*rowLen])
	}
	return out
}
