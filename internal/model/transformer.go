package model

import (
	"fmt"
	"math/rand"

	"pipemare/internal/bleu"
	"pipemare/internal/data"
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// encLayer is one pre-LN Transformer encoder layer.
type encLayer struct {
	ln1  *nn.LayerNorm
	attn *nn.SelfAttention
	ln2  *nn.LayerNorm
	ff1  *nn.Linear
	act  *nn.GELU
	ff2  *nn.Linear
}

func (e *encLayer) forward(x *tensor.Tensor) *tensor.Tensor {
	x = tensor.Add(x, e.attn.Forward(e.ln1.Forward(x)))
	h := e.ff2.Forward(e.act.Forward(e.ff1.Forward(e.ln2.Forward(x))))
	return tensor.Add(x, h)
}

func (e *encLayer) backward(dy *tensor.Tensor) *tensor.Tensor {
	dh := e.ln2.Backward(e.ff1.Backward(e.act.Backward(e.ff2.Backward(dy))))
	dx := tensor.Add(dy, dh)
	da := e.ln1.Backward(e.attn.Backward(dx))
	return tensor.Add(dx, da)
}

// decLayer is one pre-LN Transformer decoder layer with causal
// self-attention and cross-attention over the encoder memory.
type decLayer struct {
	ln1   *nn.LayerNorm
	self  *nn.SelfAttention
	ln2   *nn.LayerNorm
	cross *nn.MultiHeadAttention
	ln3   *nn.LayerNorm
	ff1   *nn.Linear
	act   *nn.GELU
	ff2   *nn.Linear
}

func (d *decLayer) forward(x, mem *tensor.Tensor) *tensor.Tensor {
	x = tensor.Add(x, d.self.Forward(d.ln1.Forward(x)))
	x = tensor.Add(x, d.cross.ForwardQKV(d.ln2.Forward(x), mem))
	h := d.ff2.Forward(d.act.Forward(d.ff1.Forward(d.ln3.Forward(x))))
	return tensor.Add(x, h)
}

// backward returns (dx, dmem).
func (d *decLayer) backward(dy *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	dh := d.ln3.Backward(d.ff1.Backward(d.act.Backward(d.ff2.Backward(dy))))
	dx := tensor.Add(dy, dh)
	dq, dmem := d.cross.BackwardQKV(dx)
	dx = tensor.Add(dx, d.ln2.Backward(dq))
	ds := d.ln1.Backward(d.self.Backward(dx))
	return tensor.Add(dx, ds), dmem
}

// Translation is a core.Task: an encoder–decoder Transformer trained with
// teacher forcing on the synthetic translation dataset and evaluated with
// greedy decoding + corpus BLEU.
type Translation struct {
	ds *data.Translation

	srcEmb *nn.Embedding
	srcPos *nn.PositionalEncoding
	tgtEmb *nn.Embedding
	tgtPos *nn.PositionalEncoding
	enc    []*encLayer
	dec    []*decLayer
	lnf    *nn.LayerNorm
	out    *nn.Linear
	ce     *nn.CrossEntropy

	groups []pipeline.ParamGroup
	d      int
}

// TransformerConfig sizes the Translation model.
type TransformerConfig struct {
	Dim       int // model width (divisible by Heads)
	Heads     int
	EncLayers int
	DecLayers int
	FFMult    int // feed-forward width multiplier (default 2)
	Seed      int64
}

// NewTranslation builds the Transformer translation task over ds.
func NewTranslation(ds *data.Translation, cfg TransformerConfig) *Translation {
	if cfg.FFMult == 0 {
		cfg.FFMult = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Translation{ds: ds, d: cfg.Dim, ce: nn.NewCrossEntropy()}
	grp := func(name string, ps []*nn.Param) {
		t.groups = append(t.groups, pipeline.ParamGroup{Name: name, Params: ps})
	}

	t.srcEmb = nn.NewEmbedding("src.emb", ds.Vocab, cfg.Dim, rng)
	t.srcPos = nn.NewPositionalEncoding("src.pos", ds.SrcLen, cfg.Dim, rng)
	grp("src.emb", t.srcEmb.Params())
	grp("src.pos", t.srcPos.Params())
	ff := cfg.Dim * cfg.FFMult
	for i := 0; i < cfg.EncLayers; i++ {
		e := &encLayer{
			ln1:  nn.NewLayerNorm(fmt.Sprintf("enc%d.ln1", i), cfg.Dim),
			attn: nn.NewSelfAttention(fmt.Sprintf("enc%d.attn", i), cfg.Dim, cfg.Heads, ds.SrcLen, false, rng),
			ln2:  nn.NewLayerNorm(fmt.Sprintf("enc%d.ln2", i), cfg.Dim),
			ff1:  nn.NewLinear(fmt.Sprintf("enc%d.ff1", i), cfg.Dim, ff, true, rng),
			act:  nn.NewGELU(),
			ff2:  nn.NewLinear(fmt.Sprintf("enc%d.ff2", i), ff, cfg.Dim, true, rng),
		}
		t.enc = append(t.enc, e)
		grp(fmt.Sprintf("enc%d.ln1", i), e.ln1.Params())
		m := e.attn.MHA
		grp(fmt.Sprintf("enc%d.q", i), m.Wq.Params())
		grp(fmt.Sprintf("enc%d.k", i), m.Wk.Params())
		grp(fmt.Sprintf("enc%d.v", i), m.Wv.Params())
		grp(fmt.Sprintf("enc%d.o", i), m.Wo.Params())
		grp(fmt.Sprintf("enc%d.ln2", i), e.ln2.Params())
		grp(fmt.Sprintf("enc%d.ff1", i), e.ff1.Params())
		grp(fmt.Sprintf("enc%d.ff2", i), e.ff2.Params())
	}
	t.tgtEmb = nn.NewEmbedding("tgt.emb", ds.Vocab, cfg.Dim, rng)
	t.tgtPos = nn.NewPositionalEncoding("tgt.pos", ds.TgtLen, cfg.Dim, rng)
	grp("tgt.emb", t.tgtEmb.Params())
	grp("tgt.pos", t.tgtPos.Params())
	for i := 0; i < cfg.DecLayers; i++ {
		d := &decLayer{
			ln1:   nn.NewLayerNorm(fmt.Sprintf("dec%d.ln1", i), cfg.Dim),
			self:  nn.NewSelfAttention(fmt.Sprintf("dec%d.self", i), cfg.Dim, cfg.Heads, ds.TgtLen, true, rng),
			ln2:   nn.NewLayerNorm(fmt.Sprintf("dec%d.ln2", i), cfg.Dim),
			cross: nn.NewMultiHeadAttention(fmt.Sprintf("dec%d.cross", i), cfg.Dim, cfg.Heads, ds.TgtLen, ds.SrcLen, false, rng),
			ln3:   nn.NewLayerNorm(fmt.Sprintf("dec%d.ln3", i), cfg.Dim),
			ff1:   nn.NewLinear(fmt.Sprintf("dec%d.ff1", i), cfg.Dim, ff, true, rng),
			act:   nn.NewGELU(),
			ff2:   nn.NewLinear(fmt.Sprintf("dec%d.ff2", i), ff, cfg.Dim, true, rng),
		}
		t.dec = append(t.dec, d)
		grp(fmt.Sprintf("dec%d.ln1", i), d.ln1.Params())
		m := d.self.MHA
		grp(fmt.Sprintf("dec%d.self.q", i), m.Wq.Params())
		grp(fmt.Sprintf("dec%d.self.k", i), m.Wk.Params())
		grp(fmt.Sprintf("dec%d.self.v", i), m.Wv.Params())
		grp(fmt.Sprintf("dec%d.self.o", i), m.Wo.Params())
		grp(fmt.Sprintf("dec%d.ln2", i), d.ln2.Params())
		grp(fmt.Sprintf("dec%d.cross.q", i), d.cross.Wq.Params())
		grp(fmt.Sprintf("dec%d.cross.k", i), d.cross.Wk.Params())
		grp(fmt.Sprintf("dec%d.cross.v", i), d.cross.Wv.Params())
		grp(fmt.Sprintf("dec%d.cross.o", i), d.cross.Wo.Params())
		grp(fmt.Sprintf("dec%d.ln3", i), d.ln3.Params())
		grp(fmt.Sprintf("dec%d.ff1", i), d.ff1.Params())
		grp(fmt.Sprintf("dec%d.ff2", i), d.ff2.Params())
	}
	t.lnf = nn.NewLayerNorm("out.ln", cfg.Dim)
	t.out = nn.NewLinear("out.proj", cfg.Dim, ds.Vocab, true, rng)
	grp("out.ln", t.lnf.Params())
	grp("out.proj", t.out.Params())
	return t
}

// Groups returns the weight groups in forward order.
func (t *Translation) Groups() []pipeline.ParamGroup { return t.groups }

// NumTrain returns the training-set size.
func (t *Translation) NumTrain() int { return t.ds.TrainSrc.Shape[0] }

// encode runs the encoder on a (B, SrcLen) token tensor.
func (t *Translation) encode(src *tensor.Tensor) *tensor.Tensor {
	x := t.srcPos.Forward(t.srcEmb.Forward(src))
	for _, e := range t.enc {
		x = e.forward(x)
	}
	return x
}

// decode runs the decoder on (B, TgtLen) tokens over the encoder memory,
// returning (B*TgtLen, Vocab) logits.
func (t *Translation) decode(dst, mem *tensor.Tensor) *tensor.Tensor {
	x := t.tgtPos.Forward(t.tgtEmb.Forward(dst))
	for _, d := range t.dec {
		x = d.forward(x, mem)
	}
	return t.out.Forward(t.lnf.Forward(x))
}

// Forward computes the teacher-forced cross-entropy on the indexed
// training pairs.
func (t *Translation) Forward(idx []int) float64 {
	src := gatherRows(t.ds.TrainSrc, idx)
	dst := gatherRows(t.ds.TrainDst, idx)
	labels := make([]int, len(idx)*t.ds.TgtLen)
	for i, ix := range idx {
		copy(labels[i*t.ds.TgtLen:(i+1)*t.ds.TgtLen], t.ds.TrainLbl[ix])
	}
	mem := t.encode(src)
	logits := t.decode(dst, mem)
	return t.ce.Forward(logits, labels)
}

// Backward backpropagates from the last Forward through the decoder, the
// cross-attention memory path, and the encoder.
func (t *Translation) Backward() {
	dy := t.ce.Backward()
	dx := t.lnf.Backward(t.out.Backward(dy))
	var dmem *tensor.Tensor
	for i := len(t.dec) - 1; i >= 0; i-- {
		var dm *tensor.Tensor
		dx, dm = t.dec[i].backward(dx)
		if dmem == nil {
			dmem = dm
		} else {
			tensor.AddInto(dmem, dm)
		}
	}
	t.tgtEmb.Backward(t.tgtPos.Backward(dx))
	de := dmem
	for i := len(t.enc) - 1; i >= 0; i-- {
		de = t.enc[i].backward(de)
	}
	t.srcEmb.Backward(t.srcPos.Backward(de))
}

// EvalTest greedy-decodes the test set and returns corpus BLEU against the
// reference translations (content tokens up to EOS).
func (t *Translation) EvalTest() float64 {
	n := t.ds.TestSrc.Shape[0]
	const chunk = 64
	var cands, refs [][]int
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		idx := make([]int, e-s)
		for i := range idx {
			idx[i] = s + i
		}
		src := gatherRows(t.ds.TestSrc, idx)
		mem := t.encode(src)
		b := len(idx)
		dst := tensor.New(b, t.ds.TgtLen)
		for i := 0; i < b; i++ {
			dst.Data[i*t.ds.TgtLen] = data.BOS
		}
		pred := make([][]int, b)
		for step := 0; step < t.ds.TgtLen; step++ {
			logits := t.decode(dst, mem)
			for i := 0; i < b; i++ {
				tok := logits.ArgMaxRow(i*t.ds.TgtLen + step)
				pred[i] = append(pred[i], tok)
				if step+1 < t.ds.TgtLen {
					dst.Data[i*t.ds.TgtLen+step+1] = float64(tok)
				}
			}
		}
		for i := 0; i < b; i++ {
			cands = append(cands, trimEOS(pred[i]))
			refs = append(refs, trimEOS(t.ds.TestLbl[idx[i]]))
		}
	}
	return bleu.Corpus(cands, refs)
}

// trimEOS cuts a token sequence at the first EOS (exclusive).
func trimEOS(toks []int) []int {
	for i, tk := range toks {
		if tk == data.EOS {
			return toks[:i]
		}
	}
	return toks
}
