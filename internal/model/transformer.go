package model

import (
	"fmt"
	"math/rand"

	"pipemare/internal/bleu"
	"pipemare/internal/core"
	"pipemare/internal/data"
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// Translation is a core.Task: an encoder–decoder Transformer trained with
// teacher forcing on the synthetic translation dataset and evaluated with
// greedy decoding + corpus BLEU. The network is compiled to an op program
// whose ops align with the fine-grained weight groups (every projection is
// its own group), so a pipeline stage boundary may fall anywhere — even
// between the query and key projections of one attention block — and the
// boundary activations (including the encoder memory feeding every decoder
// cross-attention) travel through the machine's register file.
type Translation struct {
	ds  *data.Translation
	cfg TransformerConfig // kept for CloneTask
	ce  *nn.CrossEntropy

	groups []pipeline.ParamGroup
	prog   *nn.Program

	rSrc, rDst, rMem, rLogits nn.Reg
	encEnd                    int // op index where the decoder section starts
	lossAt                    int // op index of the loss op

	trainM, encM, decM *nn.Machine

	d  int
	dt tensor.DType
}

// TransformerConfig sizes the Translation model.
type TransformerConfig struct {
	Dim       int // model width (divisible by Heads)
	Heads     int
	EncLayers int
	DecLayers int
	FFMult    int // feed-forward width multiplier (default 2)
	Seed      int64
}

// NewTranslation builds the Transformer translation task over ds.
func NewTranslation(ds *data.Translation, cfg TransformerConfig) *Translation {
	if cfg.FFMult == 0 {
		cfg.FFMult = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Translation{ds: ds, cfg: cfg, d: cfg.Dim, ce: nn.NewCrossEntropy()}
	b := &progBuilder{}
	ff := cfg.Dim * cfg.FFMult

	t.rSrc = b.reg()
	t.rDst = b.reg()

	// Encoder: embedding, positions, then pre-LN blocks.
	srcEmb := nn.NewEmbedding("src.emb", ds.Vocab, cfg.Dim, rng)
	srcPos := nn.NewPositionalEncoding("src.pos", ds.SrcLen, cfg.Dim, rng)
	x := b.apply(b.group("src.emb", srcEmb.Params()), srcEmb, t.rSrc)
	x = b.apply(b.group("src.pos", srcPos.Params()), srcPos, x)
	for i := 0; i < cfg.EncLayers; i++ {
		x = t.buildSelfBlock(b, rng, fmt.Sprintf("enc%d", i), x, cfg, ds.SrcLen, false)
		x = t.buildFFBlock(b, rng, fmt.Sprintf("enc%d", i), x, cfg.Dim, ff)
	}
	t.rMem = x
	t.encEnd = len(b.ops)

	// Decoder: embedding, positions, causal self-attention, cross-attention
	// over the encoder memory, feed-forward.
	tgtEmb := nn.NewEmbedding("tgt.emb", ds.Vocab, cfg.Dim, rng)
	tgtPos := nn.NewPositionalEncoding("tgt.pos", ds.TgtLen, cfg.Dim, rng)
	y := b.apply(b.group("tgt.emb", tgtEmb.Params()), tgtEmb, t.rDst)
	y = b.apply(b.group("tgt.pos", tgtPos.Params()), tgtPos, y)
	for i := 0; i < cfg.DecLayers; i++ {
		name := fmt.Sprintf("dec%d", i)
		y = t.buildSelfBlockNamed(b, rng, name+".ln1", name+".self", y, cfg, ds.TgtLen, true)
		// Cross-attention sub-block: queries from the decoder stream, keys
		// and values from the encoder memory register.
		ln2 := nn.NewLayerNorm(name+".ln2", cfg.Dim)
		cross := nn.NewMultiHeadAttention(name+".cross", cfg.Dim, cfg.Heads, ds.TgtLen, ds.SrcLen, false, rng)
		h := b.apply(b.group(name+".ln2", ln2.Params()), ln2, y)
		cq := b.apply(b.group(name+".cross.q", cross.Wq.Params()), cross.Wq, h)
		ck := b.apply(b.group(name+".cross.k", cross.Wk.Params()), cross.Wk, t.rMem)
		cv := b.apply(b.group(name+".cross.v", cross.Wv.Params()), cross.Wv, t.rMem)
		gO := b.group(name+".cross.o", cross.Wo.Params())
		ca := b.attnCore(gO, cross.Core, cq, ck, cv)
		co := b.apply(gO, cross.Wo, ca)
		y = b.add(gO, y, co)
		y = t.buildFFBlockNamed(b, rng, name+".ln3", name, y, cfg.Dim, ff)
	}
	lnf := nn.NewLayerNorm("out.ln", cfg.Dim)
	out := nn.NewLinear("out.proj", cfg.Dim, ds.Vocab, true, rng)
	y = b.apply(b.group("out.ln", lnf.Params()), lnf, y)
	gOut := b.group("out.proj", out.Params())
	t.rLogits = b.apply(gOut, out, y)
	b.loss(gOut, t.ce, t.rLogits)

	t.groups = b.groups
	t.prog = b.build()
	t.lossAt = len(t.prog.Ops) - 1
	t.trainM = nn.NewMachine(t.prog.NumRegs)
	t.encM = nn.NewMachine(t.prog.NumRegs)
	t.decM = nn.NewMachine(t.prog.NumRegs)
	return t
}

// buildSelfBlock appends a pre-LN self-attention sub-block x + O(core(Q,K,V))
// using the encoder group names <name>.ln1 / <name>.{q,k,v,o}.
func (t *Translation) buildSelfBlock(b *progBuilder, rng *rand.Rand, name string, x nn.Reg, cfg TransformerConfig, seqLen int, causal bool) nn.Reg {
	return t.selfBlock(b, rng, name+".ln1", name+".attn", name, x, cfg, seqLen, causal)
}

// buildSelfBlockNamed is buildSelfBlock with decoder-style group names
// <lnName> / <attnName>.{q,k,v,o}.
func (t *Translation) buildSelfBlockNamed(b *progBuilder, rng *rand.Rand, lnName, attnName string, x nn.Reg, cfg TransformerConfig, seqLen int, causal bool) nn.Reg {
	return t.selfBlock(b, rng, lnName, attnName, attnName, x, cfg, seqLen, causal)
}

func (t *Translation) selfBlock(b *progBuilder, rng *rand.Rand, lnName, attnName, groupPrefix string, x nn.Reg, cfg TransformerConfig, seqLen int, causal bool) nn.Reg {
	ln := nn.NewLayerNorm(lnName, cfg.Dim)
	attn := nn.NewMultiHeadAttention(attnName, cfg.Dim, cfg.Heads, seqLen, seqLen, causal, rng)
	h := b.apply(b.group(lnName, ln.Params()), ln, x)
	q := b.apply(b.group(groupPrefix+".q", attn.Wq.Params()), attn.Wq, h)
	k := b.apply(b.group(groupPrefix+".k", attn.Wk.Params()), attn.Wk, h)
	v := b.apply(b.group(groupPrefix+".v", attn.Wv.Params()), attn.Wv, h)
	gO := b.group(groupPrefix+".o", attn.Wo.Params())
	a := b.attnCore(gO, attn.Core, q, k, v)
	o := b.apply(gO, attn.Wo, a)
	return b.add(gO, x, o)
}

// buildFFBlock appends a pre-LN feed-forward sub-block
// x + FF2(GELU(FF1(LN(x)))) with group names <name>.{ln2,ff1,ff2}.
func (t *Translation) buildFFBlock(b *progBuilder, rng *rand.Rand, name string, x nn.Reg, d, ff int) nn.Reg {
	return t.buildFFBlockNamed(b, rng, name+".ln2", name, x, d, ff)
}

func (t *Translation) buildFFBlockNamed(b *progBuilder, rng *rand.Rand, lnName, name string, x nn.Reg, d, ff int) nn.Reg {
	ln := nn.NewLayerNorm(lnName, d)
	ff1 := nn.NewLinear(name+".ff1", d, ff, true, rng)
	ff2 := nn.NewLinear(name+".ff2", ff, d, true, rng)
	h := b.apply(b.group(lnName, ln.Params()), ln, x)
	gFF1 := b.group(name+".ff1", ff1.Params())
	h = b.apply(gFF1, ff1, h)
	h = b.apply(gFF1, nn.NewGELU(), h)
	gFF2 := b.group(name+".ff2", ff2.Params())
	f := b.apply(gFF2, ff2, h)
	return b.add(gFF2, x, f)
}

// Groups returns the weight groups in forward order.
func (t *Translation) Groups() []pipeline.ParamGroup { return t.groups }

// CloneTask rebuilds an architecturally identical task over the same
// dataset (core.Replicable, for WithReplicas data parallelism). The
// clone re-applies the dtype so every replica rounds the same float64
// initialization identically.
func (t *Translation) CloneTask() core.Task {
	nt := NewTranslation(t.ds, t.cfg)
	if t.dt != tensor.Float64 {
		nt.SetDType(t.dt)
	}
	return nt
}

// SetDType casts the model to dt. Parameters become the rounded image of
// their float64 initialization (the rng draw sequence is unchanged), and
// all tape-allocated activations follow. Call before training starts —
// the optimizer sizes its moments off the parameter dtype.
func (t *Translation) SetDType(dt tensor.DType) {
	t.dt = dt
	setProgDType(dt, t.groups, t.prog, t.trainM, t.encM, t.decM)
}

// Program returns the compiled op program (core.StageTask).
func (t *Translation) Program() *nn.Program { return t.prog }

// BindMicro loads the indexed training pairs into a machine
// (core.StageTask). The machine must have been reset.
func (t *Translation) BindMicro(m *nn.Machine, idx []int) {
	m.SetVal(t.rSrc, gatherRowsTape(&m.Tape, t.ds.TrainSrc, idx))
	m.SetVal(t.rDst, gatherRowsTape(&m.Tape, t.ds.TrainDst, idx))
	m.Labels = m.Labels[:0]
	for _, ix := range idx {
		m.Labels = append(m.Labels, t.ds.TrainLbl[ix]...)
	}
}

// NumTrain returns the training-set size.
func (t *Translation) NumTrain() int { return t.ds.TrainSrc.Shape[0] }

// Forward computes the teacher-forced cross-entropy on the indexed
// training pairs.
func (t *Translation) Forward(idx []int) float64 {
	t.trainM.ResetRun()
	t.BindMicro(t.trainM, idx)
	t.prog.ForwardRange(t.trainM, 0, len(t.prog.Ops))
	return t.trainM.Loss
}

// Backward backpropagates from the last Forward through the decoder, the
// cross-attention memory path, and the encoder.
func (t *Translation) Backward() {
	t.prog.BackwardRange(t.trainM, 0, len(t.prog.Ops))
}

// EvalTest greedy-decodes the test set and returns corpus BLEU against the
// reference translations (content tokens up to EOS). The encoder section
// of the program runs once per chunk on one machine; the decoder section
// re-runs per decoding step on a second machine with the memory register
// re-bound, so the encoder memory stays valid across steps.
func (t *Translation) EvalTest() float64 {
	n := t.ds.TestSrc.Shape[0]
	const chunk = 64
	var cands, refs [][]int
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		idx := make([]int, e-s)
		for i := range idx {
			idx[i] = s + i
		}
		t.encM.ResetRun()
		t.encM.SetVal(t.rSrc, gatherRowsTape(&t.encM.Tape, t.ds.TestSrc, idx))
		t.prog.ForwardRange(t.encM, 0, t.encEnd)
		mem := t.encM.Val(t.rMem)
		b := len(idx)
		dst := tensor.New(b, t.ds.TgtLen)
		for i := 0; i < b; i++ {
			dst.Data[i*t.ds.TgtLen] = data.BOS
		}
		pred := make([][]int, b)
		for step := 0; step < t.ds.TgtLen; step++ {
			t.decM.ResetRun()
			t.decM.SetVal(t.rMem, mem)
			t.decM.SetVal(t.rDst, dst)
			t.prog.ForwardRange(t.decM, t.encEnd, t.lossAt)
			logits := t.decM.Val(t.rLogits)
			for i := 0; i < b; i++ {
				tok := logits.ArgMaxRow(i*t.ds.TgtLen + step)
				pred[i] = append(pred[i], tok)
				if step+1 < t.ds.TgtLen {
					dst.Data[i*t.ds.TgtLen+step+1] = float64(tok)
				}
			}
		}
		for i := 0; i < b; i++ {
			cands = append(cands, trimEOS(pred[i]))
			refs = append(refs, trimEOS(t.ds.TestLbl[idx[i]]))
		}
	}
	return bleu.Corpus(cands, refs)
}

// trimEOS cuts a token sequence at the first EOS (exclusive).
func trimEOS(toks []int) []int {
	for i, tk := range toks {
		if tk == data.EOS {
			return toks[:i]
		}
	}
	return toks
}
