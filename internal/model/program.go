package model

import (
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// progBuilder accumulates a weight-group list and the op program aligned
// with it. Ops are appended in forward order; each op names the group it
// belongs to, so the group order (and therefore any stage partition of the
// groups) induces contiguous op ranges per stage. Weightless glue —
// activations, residual joins, attention cores, pooling, the loss — is
// attached to a neighbouring weight group.
type progBuilder struct {
	groups  []pipeline.ParamGroup
	ops     []nn.Op
	groupOf []int
	nreg    int
}

// reg allocates a fresh dataflow register.
func (b *progBuilder) reg() nn.Reg {
	r := nn.Reg(b.nreg)
	b.nreg++
	return r
}

// group appends a weight group and returns its index.
func (b *progBuilder) group(name string, ps []*nn.Param) int {
	b.groups = append(b.groups, pipeline.ParamGroup{Name: name, Params: ps})
	return len(b.groups) - 1
}

// op appends an op belonging to group g.
func (b *progBuilder) op(g int, o nn.Op) {
	b.ops = append(b.ops, o)
	b.groupOf = append(b.groupOf, g)
}

// apply appends a unary layer op in group g and returns its output register.
func (b *progBuilder) apply(g int, l nn.Layer, in nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.ApplyOp{L: l, In: in, Out: out})
	return out
}

// add appends a residual join x + y in group g.
func (b *progBuilder) add(g int, x, y nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.AddOp{A: x, B: y, Out: out})
	return out
}

// attnCore appends a weightless attention core in group g.
func (b *progBuilder) attnCore(g int, core *nn.AttnCore, q, k, v nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.AttnCoreOp{Core: core, Q: q, K: k, V: v, Out: out})
	return out
}

// loss appends the cross-entropy loss op in group g.
func (b *progBuilder) loss(g int, ce *nn.CrossEntropy, logits nn.Reg) {
	b.op(g, &nn.LossOp{CE: ce, Logits: logits})
}

// build finalizes the program.
func (b *progBuilder) build() *nn.Program {
	return &nn.Program{Ops: b.ops, GroupOf: b.groupOf, NumRegs: b.nreg}
}

// gatherRowsTape selects rows (first axis) of x at the given indices into
// a tensor from the machine tape's arena.
func gatherRowsTape(t *nn.Tape, x *tensor.Tensor, idx []int) *tensor.Tensor {
	rowLen := x.Size() / x.Shape[0]
	shape := append([]int{len(idx)}, x.Shape[1:]...)
	out := t.NewTensor(shape...)
	for i, ix := range idx {
		copy(out.Data[i*rowLen:(i+1)*rowLen], x.Data[ix*rowLen:(ix+1)*rowLen])
	}
	return out
}
