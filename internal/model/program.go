package model

import (
	"pipemare/internal/nn"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// progBuilder accumulates a weight-group list and the op program aligned
// with it. Ops are appended in forward order; each op names the group it
// belongs to, so the group order (and therefore any stage partition of the
// groups) induces contiguous op ranges per stage. Weightless glue —
// activations, residual joins, attention cores, pooling, the loss — is
// attached to a neighbouring weight group.
type progBuilder struct {
	groups  []pipeline.ParamGroup
	ops     []nn.Op
	groupOf []int
	nreg    int
}

// reg allocates a fresh dataflow register.
func (b *progBuilder) reg() nn.Reg {
	r := nn.Reg(b.nreg)
	b.nreg++
	return r
}

// group appends a weight group and returns its index.
func (b *progBuilder) group(name string, ps []*nn.Param) int {
	b.groups = append(b.groups, pipeline.ParamGroup{Name: name, Params: ps})
	return len(b.groups) - 1
}

// op appends an op belonging to group g.
func (b *progBuilder) op(g int, o nn.Op) {
	b.ops = append(b.ops, o)
	b.groupOf = append(b.groupOf, g)
}

// apply appends a unary layer op in group g and returns its output register.
func (b *progBuilder) apply(g int, l nn.Layer, in nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.ApplyOp{L: l, In: in, Out: out})
	return out
}

// add appends a residual join x + y in group g.
func (b *progBuilder) add(g int, x, y nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.AddOp{A: x, B: y, Out: out})
	return out
}

// attnCore appends a weightless attention core in group g.
func (b *progBuilder) attnCore(g int, core *nn.AttnCore, q, k, v nn.Reg) nn.Reg {
	out := b.reg()
	b.op(g, &nn.AttnCoreOp{Core: core, Q: q, K: k, V: v, Out: out})
	return out
}

// loss appends the cross-entropy loss op in group g.
func (b *progBuilder) loss(g int, ce *nn.CrossEntropy, logits nn.Reg) {
	b.op(g, &nn.LossOp{CE: ce, Logits: logits})
}

// build finalizes the program.
func (b *progBuilder) build() *nn.Program {
	return &nn.Program{Ops: b.ops, GroupOf: b.groupOf, NumRegs: b.nreg}
}

// setProgDType casts a compiled model to dt: every weight group's
// parameters (master, gradient, and decoupled backward weights), the
// machines' tape arenas so activations come out in dt, and the weightless
// attention cores' analytic cost-model element width.
func setProgDType(dt tensor.DType, groups []pipeline.ParamGroup, prog *nn.Program, machines ...*nn.Machine) {
	for _, g := range groups {
		for _, p := range g.Params {
			p.CastTo(dt)
		}
	}
	for _, op := range prog.Ops {
		if a, ok := op.(*nn.AttnCoreOp); ok {
			a.Core.ElemBytes = dt.Size()
		}
	}
	for _, m := range machines {
		m.Tape.SetDType(dt)
	}
}

// gatherRowsTape selects rows (first axis) of x at the given indices into
// a tensor from the machine tape's arena. Datasets stay float64 whatever
// the model dtype; when the tape allocates float32, each gathered element
// is cast here — the single rounding that defines the float32 ground
// truth for inputs (token ids are small integers, so they cast exactly).
func gatherRowsTape(t *nn.Tape, x *tensor.Tensor, idx []int) *tensor.Tensor {
	rowLen := x.Size() / x.Shape[0]
	shape := append([]int{len(idx)}, x.Shape[1:]...)
	out := t.NewTensor(shape...)
	if out.DType() == x.DType() {
		for i, ix := range idx {
			tensor.CopyRange(out, i*rowLen, x, ix*rowLen, rowLen)
		}
		return out
	}
	for i, ix := range idx {
		for j := 0; j < rowLen; j++ {
			out.SetFlat(i*rowLen+j, x.FlatAt(ix*rowLen+j))
		}
	}
	return out
}
