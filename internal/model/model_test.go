package model

import (
	"math"
	"testing"

	"pipemare/internal/data"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
)

func smallImages() *data.Images {
	return data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4, Train: 128, Test: 64, Noise: 0.4, Seed: 1})
}

func smallTranslation() *data.Translation {
	return data.NewTranslation(data.TranslationConfig{Vocab: 11, SrcLen: 5, Train: 256, Test: 48, Seed: 2})
}

func learnableTranslation() *data.Translation {
	return data.NewTranslation(data.TranslationConfig{Vocab: 13, SrcLen: 6, Train: 1024, Test: 64, Seed: 2})
}

func TestResNetMLPGroupCount(t *testing.T) {
	c := NewResNetMLP(smallImages(), 12, 5, 3)
	// stem + 2 per block + head.ln + head.fc.
	want := 1 + 2*5 + 2
	if got := len(c.Groups()); got != want {
		t.Fatalf("groups = %d, want %d", got, want)
	}
	// Every group non-empty and named.
	for _, g := range c.Groups() {
		if len(g.Params) == 0 || g.Name == "" {
			t.Fatalf("bad group %+v", g)
		}
		if g.Size() <= 0 {
			t.Fatalf("group %s has size %d", g.Name, g.Size())
		}
	}
}

func TestConvNetGroupCount(t *testing.T) {
	c := NewConvNet(smallImages(), 4, 3, 2, 4)
	want := 2 + 2*3 + 1
	if got := len(c.Groups()); got != want {
		t.Fatalf("groups = %d, want %d", got, want)
	}
}

func TestClassificationForwardBackwardShapes(t *testing.T) {
	c := NewResNetMLP(smallImages(), 12, 3, 4)
	loss := c.Forward([]int{0, 1, 2, 3})
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("initial loss = %g", loss)
	}
	// Initial loss should be near ln(4) for 4 balanced classes.
	if loss > 3 {
		t.Fatalf("initial loss %g implausibly high", loss)
	}
	c.Backward()
	var ps []*nn.Param
	for _, g := range c.Groups() {
		ps = append(ps, g.Params...)
	}
	if nn.GradNorm(ps) == 0 {
		t.Fatal("backward produced zero gradients")
	}
}

func TestResNetMLPTrainsSynchronously(t *testing.T) {
	d := smallImages()
	c := NewResNetMLP(d, 16, 4, 5)
	var ps []*nn.Param
	for _, g := range c.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 0)
	for epoch := 0; epoch < 15; epoch++ {
		for _, b := range data.Batches(c.NumTrain(), 32, nil) {
			c.Forward(b)
			c.Backward()
			opt.Step(optim.UniformLR(0.05, len(ps)))
			nn.ZeroGrads(ps)
		}
	}
	if acc := c.EvalTest(); acc < 80 {
		t.Fatalf("plain training reached only %.1f%% accuracy", acc)
	}
}

func TestConvNetTrainsSynchronously(t *testing.T) {
	d := smallImages()
	c := NewConvNet(d, 6, 2, 2, 6)
	var ps []*nn.Param
	for _, g := range c.Groups() {
		ps = append(ps, g.Params...)
	}
	opt := optim.NewSGD(ps, 0.9, 0)
	for epoch := 0; epoch < 10; epoch++ {
		for _, b := range data.Batches(c.NumTrain(), 32, nil) {
			c.Forward(b)
			c.Backward()
			opt.Step(optim.UniformLR(0.05, len(ps)))
			nn.ZeroGrads(ps)
		}
	}
	if acc := c.EvalTest(); acc < 70 {
		t.Fatalf("conv training reached only %.1f%% accuracy", acc)
	}
}

func TestTranslationGroupsAndInitialLoss(t *testing.T) {
	ds := smallTranslation()
	tr := NewTranslation(ds, TransformerConfig{Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 3})
	// src emb/pos + enc(8) + tgt emb/pos + dec(13) + out ln/proj.
	want := 2 + 8 + 2 + 13 + 2
	if got := len(tr.Groups()); got != want {
		t.Fatalf("groups = %d, want %d", got, want)
	}
	loss := tr.Forward([]int{0, 1, 2, 3})
	// Initial loss ≈ ln(V) = ln(11) ≈ 2.4.
	if loss < 1 || loss > 4 {
		t.Fatalf("initial translation loss = %g, want ≈ ln(11)", loss)
	}
	tr.Backward()
	var ps []*nn.Param
	for _, g := range tr.Groups() {
		ps = append(ps, g.Params...)
	}
	if nn.GradNorm(ps) == 0 {
		t.Fatal("translation backward produced zero gradients")
	}
}

func TestTranslationNumericalGradient(t *testing.T) {
	// Full end-to-end gradient check through encoder, cross-attention and
	// decoder on a handful of parameters.
	ds := smallTranslation()
	tr := NewTranslation(ds, TransformerConfig{Dim: 8, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	idx := []int{0, 1}
	var ps []*nn.Param
	for _, g := range tr.Groups() {
		ps = append(ps, g.Params...)
	}
	tr.Forward(idx)
	nn.ZeroGrads(ps)
	tr.Forward(idx)
	tr.Backward()
	const eps = 1e-5
	// Probe params spread across the network: src emb, an encoder FF, a
	// cross-attention projection, the output projection.
	probes := []int{0, 8, len(ps) / 2, len(ps) - 2}
	for _, pi := range probes {
		p := ps[pi]
		for _, j := range []int{0, p.Size() / 2} {
			orig := p.Data.Data[j]
			p.Data.Data[j] = orig + eps
			lp := tr.Forward(idx)
			p.Data.Data[j] = orig - eps
			lm := tr.Forward(idx)
			p.Data.Data[j] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[j]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: grad %g, numeric %g", p.Name, j, p.Grad.Data[j], num)
			}
		}
	}
}

func TestTranslationLearnsAndBLEUImproves(t *testing.T) {
	ds := learnableTranslation()
	tr := NewTranslation(ds, TransformerConfig{Dim: 32, Heads: 2, EncLayers: 2, DecLayers: 2, Seed: 5})
	var ps []*nn.Param
	for _, g := range tr.Groups() {
		ps = append(ps, g.Params...)
	}
	before := tr.EvalTest()
	opt := optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 0)
	sched := optim.WarmupInvSqrt{Peak: 5e-3, Init: 1e-6, Warmup: 50}
	step := 0
	var loss float64
	for epoch := 0; epoch < 25; epoch++ {
		for _, b := range data.Batches(tr.NumTrain(), 64, nil) {
			loss = tr.Forward(b)
			tr.Backward()
			nn.ClipGradNorm(ps, 5)
			opt.Step(optim.UniformLR(sched.LR(step), len(ps)))
			nn.ZeroGrads(ps)
			step++
		}
	}
	after := tr.EvalTest()
	if after <= before+5 {
		t.Fatalf("BLEU did not improve: before %.1f, after %.1f (loss %.3f)", before, after, loss)
	}
	if after < 15 {
		t.Fatalf("BLEU after training = %.1f, task should be learnable", after)
	}
}

func TestTrimEOS(t *testing.T) {
	if got := trimEOS([]int{5, 6, data.EOS, 7}); len(got) != 2 {
		t.Fatalf("trimEOS = %v", got)
	}
	if got := trimEOS([]int{5, 6}); len(got) != 2 {
		t.Fatalf("trimEOS without EOS = %v", got)
	}
}

func TestGatherRows(t *testing.T) {
	d := smallImages()
	x := gatherRows(d.FlatTrain(), []int{3, 0})
	if x.Shape[0] != 2 || x.Shape[1] != 16 {
		t.Fatalf("gather shape %v", x.Shape)
	}
	for j := 0; j < 16; j++ {
		if x.At(0, j) != d.FlatTrain().At(3, j) {
			t.Fatal("gather row mismatch")
		}
	}
}

// TestModelGroupCostsDriveBalancedPartitions pins the cost model at the
// model level: the compiled programs yield per-group analytic costs whose
// bottleneck-balanced partition is no worse — and on the transformer's
// skewed groups strictly better — than the even-by-count split.
func TestModelGroupCostsDriveBalancedPartitions(t *testing.T) {
	tr := NewTranslation(smallTranslation(), TransformerConfig{
		Dim: 16, Heads: 2, EncLayers: 1, DecLayers: 1, Seed: 4})
	groups := tr.Groups()
	cs := tr.Program().GroupCosts(len(groups))
	costs := make([]float64, len(cs))
	for i, c := range cs {
		costs[i] = c.Weight()
		if costs[i] <= 0 {
			t.Fatalf("group %d (%s) has non-positive cost %g", i, groups[i].Name, costs[i])
		}
	}
	// A feed-forward projection group must dwarf a norm group: that skew
	// is what even-by-count splitting cannot see.
	var ffCost, lnCost float64
	for i, g := range groups {
		switch g.Name {
		case "enc0.ff1":
			ffCost = costs[i]
		case "enc0.ln1":
			lnCost = costs[i]
		}
	}
	if ffCost <= 4*lnCost {
		t.Fatalf("ff1 cost %g not ≫ ln1 cost %g", ffCost, lnCost)
	}
	for _, p := range []int{4, 8} {
		even, err := pipeline.PartitionGroups(groups, p)
		if err != nil {
			t.Fatal(err)
		}
		bal, err := pipeline.PartitionGroupsByCost(groups, costs, p)
		if err != nil {
			t.Fatal(err)
		}
		ie := pipeline.Imbalance(even.StageCosts(costs))
		ib := pipeline.Imbalance(bal.StageCosts(costs))
		if ib > ie {
			t.Fatalf("P=%d: balanced imbalance %.3f worse than even %.3f", p, ib, ie)
		}
		if p == 8 && ib >= ie {
			t.Fatalf("P=8: balanced imbalance %.3f not strictly better than even %.3f", ib, ie)
		}
	}

	// Same property on the residual MLP classifier.
	cl := NewResNetMLP(smallImages(), 12, 6, 3)
	cgs := cl.Groups()
	ccs := cl.Program().GroupCosts(len(cgs))
	ccosts := make([]float64, len(ccs))
	for i, c := range ccs {
		ccosts[i] = c.Weight()
	}
	even, err := pipeline.PartitionGroups(cgs, 5)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := pipeline.PartitionGroupsByCost(cgs, ccosts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ib, ie := pipeline.Imbalance(bal.StageCosts(ccosts)), pipeline.Imbalance(even.StageCosts(ccosts)); ib > ie {
		t.Fatalf("MLP P=5: balanced imbalance %.3f worse than even %.3f", ib, ie)
	}
}
