// Package poly implements complex polynomial arithmetic and root finding
// for the stability analysis of asynchronous pipeline-parallel SGD.
//
// The characteristic polynomials of the delay companion matrices (eqs. (4),
// (6) and (13) of the PipeMare paper, plus the T2-corrected and recompute
// variants) have degree τ+1 or τ+2; their roots determine whether the linear
// system W_{t+1} = C W_t + α η_t e₁ is stable. Stability holds iff every
// root lies strictly inside the complex unit disk.
package poly

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Poly is a complex polynomial stored coefficient-low-first:
// p(x) = c[0] + c[1]x + ... + c[n]xⁿ.
type Poly []complex128

// New returns a polynomial with the given coefficients, low order first.
func New(coeffs ...complex128) Poly { return Poly(coeffs) }

// FromReal returns a polynomial from real coefficients, low order first.
func FromReal(coeffs ...float64) Poly {
	p := make(Poly, len(coeffs))
	for i, c := range coeffs {
		p[i] = complex(c, 0)
	}
	return p
}

// Degree returns the degree of p after trimming trailing (near-)zero
// leading coefficients. The zero polynomial has degree -1.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Trim returns p without trailing zero coefficients.
func (p Poly) Trim() Poly {
	d := p.Degree()
	return p[:d+1]
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x complex128) complex128 {
	var v complex128
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{0}
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = p[i] * complex(float64(i), 0)
	}
	return d
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	for i := range out {
		if i < len(p) {
			out[i] += p[i]
		}
		if i < len(q) {
			out[i] += q[i]
		}
	}
	return out
}

// Scale returns s·p.
func (p Poly) Scale(s complex128) Poly {
	out := make(Poly, len(p))
	for i := range p {
		out[i] = s * p[i]
	}
	return out
}

// MulXn returns p(x)·xⁿ (a coefficient shift).
func (p Poly) MulXn(n int) Poly {
	out := make(Poly, len(p)+n)
	copy(out[n:], p)
	return out
}

// Mul returns p·q by direct convolution.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out
}

// Roots finds all complex roots of p using the Durand–Kerner
// (Weierstrass) simultaneous iteration. It returns an error if the
// iteration fails to converge, which for the well-conditioned
// characteristic polynomials in this repository does not happen in
// practice.
func (p Poly) Roots() ([]complex128, error) {
	q := p.Trim()
	n := q.Degree()
	if n < 0 {
		return nil, fmt.Errorf("poly: zero polynomial has no well-defined roots")
	}
	if n == 0 {
		return nil, nil
	}
	// Normalize to monic.
	lead := q[n]
	monic := make(Poly, n+1)
	for i := range monic {
		monic[i] = q[i] / lead
	}
	// Initial guesses: points on a circle of radius based on the Cauchy
	// bound, with an irrational angle offset to break symmetry.
	radius := 0.0
	for i := 0; i < n; i++ {
		if m := cmplx.Abs(monic[i]); m > radius {
			radius = m
		}
	}
	radius = 1 + radius
	roots := make([]complex128, n)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.4
		roots[i] = complex(radius*math.Cos(theta), radius*math.Sin(theta))
	}
	const maxIter = 2000
	const tol = 1e-13
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range roots {
			num := monic.Eval(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates slightly.
				roots[i] += complex(1e-8, 1e-8)
				maxStep = 1
				continue
			}
			step := num / den
			roots[i] -= step
			if s := cmplx.Abs(step); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < tol {
			return roots, nil
		}
	}
	// Check residuals: accept if all are tiny even without step convergence.
	worst := 0.0
	for _, r := range roots {
		if v := cmplx.Abs(monic.Eval(r)); v > worst {
			worst = v
		}
	}
	if worst < 1e-8*(1+radius) {
		return roots, nil
	}
	return roots, fmt.Errorf("poly: Durand-Kerner did not converge (residual %g, degree %d)", worst, n)
}

// SpectralRadius returns the largest root magnitude of p, i.e. the spectral
// radius of the companion matrix whose characteristic polynomial is p.
func (p Poly) SpectralRadius() (float64, error) {
	roots, err := p.Roots()
	if err != nil {
		return math.NaN(), err
	}
	r := 0.0
	for _, z := range roots {
		if m := cmplx.Abs(z); m > r {
			r = m
		}
	}
	return r, nil
}

// Stable reports whether all roots of p lie strictly inside the unit disk,
// within the given tolerance (a root of magnitude ≤ 1+tol counts as inside
// when tol > 0; pass 0 for a strict check).
func (p Poly) Stable(tol float64) (bool, error) {
	r, err := p.SpectralRadius()
	if err != nil {
		return false, err
	}
	return r <= 1+tol, nil
}
