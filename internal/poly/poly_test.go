package poly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDegreeAndTrim(t *testing.T) {
	p := FromReal(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("Degree = %d, want 1", p.Degree())
	}
	if got := len(p.Trim()); got != 2 {
		t.Fatalf("Trim length = %d, want 2", got)
	}
	var zero Poly
	if zero.Degree() != -1 {
		t.Fatalf("zero polynomial degree = %d, want -1", zero.Degree())
	}
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 1 + 2x + 3x².
	p := FromReal(1, 2, 3)
	if got := p.Eval(complex(2, 0)); got != complex(17, 0) {
		t.Fatalf("Eval(2) = %v, want 17", got)
	}
	if got := p.Eval(0); got != complex(1, 0) {
		t.Fatalf("Eval(0) = %v, want 1", got)
	}
}

func TestDerivative(t *testing.T) {
	p := FromReal(5, 3, 2) // 5 + 3x + 2x²
	d := p.Derivative()    // 3 + 4x
	if d.Eval(complex(1, 0)) != complex(7, 0) {
		t.Fatalf("p'(1) = %v, want 7", d.Eval(1))
	}
}

func TestAddScaleMul(t *testing.T) {
	p := FromReal(1, 1)  // 1 + x
	q := FromReal(-1, 1) // -1 + x
	s := p.Mul(q)        // x² - 1
	if s.Eval(complex(3, 0)) != complex(8, 0) {
		t.Fatalf("(x²-1)(3) = %v, want 8", s.Eval(3))
	}
	a := p.Add(q) // 2x
	if a.Eval(complex(5, 0)) != complex(10, 0) {
		t.Fatalf("Add eval = %v, want 10", a.Eval(5))
	}
	sc := p.Scale(complex(3, 0))
	if sc.Eval(complex(1, 0)) != complex(6, 0) {
		t.Fatalf("Scale eval = %v, want 6", sc.Eval(1))
	}
	sh := p.MulXn(2) // x² + x³
	if sh.Eval(complex(2, 0)) != complex(12, 0) {
		t.Fatalf("MulXn eval = %v, want 12", sh.Eval(2))
	}
}

func TestRootsQuadratic(t *testing.T) {
	// (x-2)(x+3) = x² + x - 6.
	p := FromReal(-6, 1, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{real(roots[0]), real(roots[1])}
	sort.Float64s(got)
	if math.Abs(got[0]+3) > 1e-9 || math.Abs(got[1]-2) > 1e-9 {
		t.Fatalf("roots = %v, want -3, 2", roots)
	}
}

func TestRootsComplexPair(t *testing.T) {
	// x² + 1 has roots ±i.
	p := FromReal(1, 0, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		if math.Abs(cmplx.Abs(r)-1) > 1e-9 || math.Abs(real(r)) > 1e-9 {
			t.Fatalf("roots = %v, want ±i", roots)
		}
	}
}

func TestRootsOfUnity(t *testing.T) {
	// x⁸ - 1: roots are the 8th roots of unity.
	p := make(Poly, 9)
	p[0], p[8] = -1, 1
	roots, err := p.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 8 {
		t.Fatalf("got %d roots, want 8", len(roots))
	}
	for _, r := range roots {
		if math.Abs(cmplx.Abs(r)-1) > 1e-8 {
			t.Fatalf("root %v not on unit circle", r)
		}
		if v := cmplx.Abs(p.Eval(r)); v > 1e-8 {
			t.Fatalf("residual %g at root %v", v, r)
		}
	}
}

func TestRootsReconstructPolynomial(t *testing.T) {
	// Property: for random real-coefficient polynomials, the product of
	// (x - root_i) scaled by the leading coefficient reproduces p.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := 2 + rng.Intn(8)
		p := make(Poly, deg+1)
		for i := range p {
			p[i] = complex(rng.NormFloat64(), 0)
		}
		p[deg] = complex(1+rng.Float64(), 0) // safely non-zero lead
		roots, err := p.Roots()
		if err != nil {
			return false
		}
		rec := Poly{p[deg]}
		for _, r := range roots {
			rec = rec.Mul(Poly{-r, 1})
		}
		for i := range p {
			if cmplx.Abs(rec[i]-p[i]) > 1e-6*(1+cmplx.Abs(p[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRootsHighDegreeCharacteristicShape(t *testing.T) {
	// The PipeMare characteristic polynomial ω^{τ+1} - ω^τ + αλ for τ=32,
	// α at half the Lemma 1 bound must be stable.
	tau := 32
	lambda := 1.0
	alpha := math.Sin(math.Pi/float64(4*tau+2)) / lambda // half of 2/λ·sin(...)
	p := make(Poly, tau+2)
	p[0] = complex(alpha*lambda, 0)
	p[tau] = -1
	p[tau+1] = 1
	stable, err := p.Stable(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("characteristic polynomial should be stable at half the Lemma 1 bound")
	}
}

func TestSpectralRadius(t *testing.T) {
	// (x-0.5)(x-2): spectral radius 2.
	p := FromReal(1, -2.5, 1)
	r, err := p.SpectralRadius()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-9 {
		t.Fatalf("SpectralRadius = %g, want 2", r)
	}
}

func TestStable(t *testing.T) {
	inside := FromReal(0.25, -1, 1) // roots 0.5, 0.5
	ok, err := inside.Stable(1e-12)
	if err != nil || !ok {
		t.Fatalf("expected stable, got %v err %v", ok, err)
	}
	outside := FromReal(-2, 1) // root 2
	ok, err = outside.Stable(1e-12)
	if err != nil || ok {
		t.Fatalf("expected unstable, got %v err %v", ok, err)
	}
}

func TestRootsDegreeZero(t *testing.T) {
	p := FromReal(3)
	roots, err := p.Roots()
	if err != nil || len(roots) != 0 {
		t.Fatalf("constant polynomial roots = %v err %v", roots, err)
	}
}

func TestRootsZeroPolynomialErrors(t *testing.T) {
	p := FromReal(0, 0)
	if _, err := p.Roots(); err == nil {
		t.Fatal("expected error for zero polynomial")
	}
}
