package experiments

import (
	"fmt"
	"io"
	"math"

	"pipemare/internal/data"
	"pipemare/internal/memmodel"
	"pipemare/internal/pipeline"
	"pipemare/internal/poly"
	"pipemare/internal/quad"
	"pipemare/internal/throughput"
)

func init() {
	register("table1", "Characterization of pipeline parallel training methods", table1)
	register("table4", "Activation memory with/without PipeMare Recompute (P=L)", table4)
	register("table5", "Activation memory of PipeMare across tasks", table5)
	register("fig1", "Pipelining modes (ASCII schedule)", fig1)
	register("fig3a", "Quadratic model divergence vs delay", fig3a)
	register("fig3b", "Step size × delay heatmap for delayed linear regression", fig3b)
	register("fig5a", "Quadratic model divergence vs discrepancy sensitivity", fig5a)
	register("fig5b", "Largest eigenvalue vs step size, with/without T2", fig5b)
	register("fig6", "Per-stage activation footprint of PipeMare Recompute", fig6)
	register("fig8", "Largest stable step size vs ∆, original vs T2", fig8)
	register("fig16", "Recompute quadratic model eigenvalues", fig16)
	register("appendixA3", "GPipe equal-budget throughput optimum", appendixA3)
}

// table1 prints Table 1 both symbolically and at the paper's reference
// geometry (first stage, P = 107, N = 8).
func table1(w io.Writer, _ Scale) {
	fmt.Fprintln(w, "Table 1: delays, throughput and weight memory (first stage i=1)")
	p, n := 107, 8
	tb := newTable("Method", "tau_fwd", "tau_bkwd", "Throughput", "WeightsMem")
	tauFwd := pipeline.FwdDelay(1, p, n)
	tb.add("PipeDream", fnum(tauFwd), fnum(tauFwd), fnum(throughput.Table1BubbleFree()), fmt.Sprintf("W x %s", fnum(float64(p)/float64(n))))
	tb.add("GPipe", "0", "0", fnum(throughput.Table1GPipe(p, n)), "W")
	tb.add("PipeMare", fnum(tauFwd), "0", fnum(throughput.Table1BubbleFree()), "W")
	tb.write(w)
	fmt.Fprintf(w, "\nper-stage tau_fwd = (2(P-i)+1)/N at P=%d, N=%d: stage 1 -> %.3f, stage P -> %.3f\n",
		p, n, pipeline.FwdDelay(1, p, n), pipeline.FwdDelay(p, p, n))
}

// table4 prints the Table 4 asymptotic activation-memory entries at a
// reference fine-grained geometry.
func table4(w io.Writer, _ Scale) {
	p, n := 107, 8
	fmt.Fprintf(w, "Table 4: activation memory in units of M (P=L=%d, N=%d)\n", p, n)
	tb := newTable("Mode", "No recompute", "With recompute")
	tb.add("GPipe", fmt.Sprintf("MPN = %.0f", memmodel.ActGPipe(p, n)), fmt.Sprintf("MPN^1/2 = %.0f", memmodel.ActGPipeRecompute(p, n)))
	tb.add("PipeMare/PipeDream", fmt.Sprintf("MP^2 = %.0f", memmodel.ActPipeMare(p)), fmt.Sprintf("MP^3/2 = %.0f", memmodel.ActPipeMareRecompute(p)))
	tb.write(w)
}

// table5 prints the Table 5 recompute ratios for the paper's stage counts.
func table5(w io.Writer, _ Scale) {
	fmt.Fprintln(w, "Table 5: PipeMare activation memory with recompute (ratio = 1/sqrt(P))")
	tb := newTable("Dataset", "Stages", "No recompute", "With recompute")
	for _, c := range []struct {
		name string
		p    int
	}{{"CIFAR10", 107}, {"ImageNet", 107}, {"IWSLT14", 93}, {"WMT17", 91}} {
		tb.add(c.name, c.p, "1X", fmt.Sprintf("%.3fX", memmodel.RecomputeRatio(c.p)))
	}
	tb.write(w)
}

// fig1 renders the three pipelining modes of Figure 1 as ASCII schedules
// for a 3-stage pipeline.
func fig1(w io.Writer, _ Scale) {
	fmt.Fprintln(w, "Figure 1: pipelining modes for P=3 (F=forward, B=backward, .=bubble)")
	fmt.Fprintln(w, "\n(a) Throughput-poor (GPipe, N=3: fill/drain bubbles at minibatch boundary)")
	fmt.Fprintln(w, "  stage1: F0 F1 F2 .  .  B0 B1 B2 | F3 ...")
	fmt.Fprintln(w, "  stage2: .  F0 F1 F2 .  .  B0 B1 | B2 ...")
	fmt.Fprintln(w, "  stage3: .  .  F0 F1 F2 B0 B1 B2 | .  ...")
	fmt.Fprintln(w, "\n(b) Memory-hungry (PipeDream: no bubbles, per-minibatch weight stash)")
	fmt.Fprintln(w, "  stage1: F0 F1 F2 F3 F4 F5 ...   stash w(t), w(t-1), ... per in-flight minibatch")
	fmt.Fprintln(w, "\n(c) PipeMare (no bubbles, single weight copy, asynchronous)")
	fmt.Fprintln(w, "  stage1: F0 F1 F2 F3 F4 F5 ...   forward on live (stale) weights, tau_bkwd = 0")
	// Quantify the bubble cost of (a) vs (c):
	tb := newTable("P", "N", "GPipe throughput", "PipeMare throughput")
	for _, p := range []int{3, 8, 47, 107} {
		tb.add(p, 8, fnum(throughput.Table1GPipe(p, 8)), "1.0")
	}
	fmt.Fprintln(w)
	tb.write(w)
}

// fig3a regenerates Figure 3(a): quadratic trajectories at λ=1, α=0.2 for
// τ ∈ {0, 5, 10}.
func fig3a(w io.Writer, _ Scale) {
	fmt.Fprintln(w, "Figure 3a: quadratic model, lambda=1 alpha=0.2, noise N(0,1)")
	tb := newTable("tau", "loss@50", "loss@100", "loss@200", "diverged", "Lemma1 bound")
	for _, tau := range []int{0, 5, 10} {
		res := quad.Simulate(quad.Config{Lambda: 1, Alpha: 0.2, TauFwd: tau, NoiseStd: 1, Steps: 4000, Seed: 1, LossCap: 1e6})
		tb.add(tau, fnum(res.Loss[50]), fnum(res.Loss[100]), fnum(res.Loss[200]), res.Diverged, fnum(quad.Lemma1Bound(tau, 1)))
	}
	tb.write(w)
	fmt.Fprintln(w, "tau=10 exceeds its stability bound (0.2 > 0.149) and diverges; tau in {0,5} stay bounded.")
}

// fig3b regenerates Figure 3(b): final loss of fixed-delay full-batch
// gradient descent on a cpusmall-like linear regression over an (α, τ)
// grid, with the Lemma 1 boundary using the largest curvature.
func fig3b(w io.Writer, s Scale) {
	lrg := data.NewRegression(200, 12, nil, 0.5, 7)
	lr := &quad.LinearRegression{X: lrg.X, Y: lrg.Y}
	lam := lr.MaxCurvature()
	steps := 20000
	taus := []int{1, 4, 16, 64, 256}
	if s == Full {
		steps = 200000
		taus = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
	}
	fmt.Fprintf(w, "Figure 3b: delayed GD on linear regression, lambda_max=%.3f (Inf = diverged)\n", lam)
	header := []string{"tau \\ alpha"}
	alphas := []float64{}
	for e := -12.0; e <= -2; e += 2 {
		alphas = append(alphas, math.Pow(2, e))
	}
	for _, a := range alphas {
		header = append(header, fmt.Sprintf("2^%d", int(math.Round(math.Log2(a)))))
	}
	header = append(header, "Lemma1 alpha*")
	tb := newTable(header...)
	for _, tau := range taus {
		row := []any{tau}
		for _, a := range alphas {
			l := lr.DelayedSGD(tau, a, steps, 0, 1e10, 1)
			if math.IsInf(l, 1) {
				row = append(row, "Inf")
			} else {
				row = append(row, fnum(l))
			}
		}
		row = append(row, fmt.Sprintf("%.2e", quad.Lemma1Bound(tau, lam)))
		tb.add(row...)
	}
	tb.write(w)
	fmt.Fprintln(w, "The divergence frontier tracks alpha* = (2/lambda_max) sin(pi/(4tau+2)) ~ 1/tau.")
}

// fig5a regenerates Figure 5(a): discrepancy-driven divergence at
// τf=10, τb=6, λ=1, α=0.12.
func fig5a(w io.Writer, _ Scale) {
	fmt.Fprintln(w, "Figure 5a: quadratic model with tau_fwd=10, tau_bkwd=6, lambda=1, alpha=0.12")
	tb := newTable("Delta", "loss@100", "loss@200", "diverged")
	for _, delta := range []float64{0, 3, 5} {
		res := quad.Simulate(quad.Config{Lambda: 1, Alpha: 0.12, TauFwd: 10, TauBkwd: 6, Delta: delta,
			NoiseStd: 1, Steps: 2000, Seed: 2, LossCap: 1e6})
		tb.add(fnum(delta), fnum(res.Loss[100]), fnum(res.Loss[200]), res.Diverged)
	}
	tb.write(w)
	fmt.Fprintln(w, "Nonzero Delta can diverge at an alpha where Delta=0 converges (Lemma 2).")
}

// fig5b regenerates Figure 5(b): largest companion eigenvalue vs α for
// discrepancy with no correction, no discrepancy, and T2 correction.
func fig5b(w io.Writer, s Scale) {
	tauF, tauB := 10, 6
	delta := 5.0
	d := 0.1
	gamma := quad.GammaFromD(d, float64(tauF), float64(tauB))
	alphas := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
	if s == Full {
		alphas = nil
		for a := 0.01; a <= 1.0; a *= 1.25 {
			alphas = append(alphas, a)
		}
	}
	fmt.Fprintf(w, "Figure 5b: spectral radius vs alpha (tau_fwd=%d, tau_bkwd=%d, Delta=%g, D=%g)\n", tauF, tauB, delta, d)
	tb := newTable("alpha", "discrepancy no corr", "no discrepancy", "T2 corrected")
	for _, a := range alphas {
		r1, _ := quad.CharPolyDiscrepancy(tauF, tauB, a, 1, delta).SpectralRadius()
		r2, _ := quad.CharPoly(tauF, a, 1).SpectralRadius()
		r3, _ := quad.CharPolyT2(tauF, tauB, a, 1, delta, gamma).SpectralRadius()
		tb.add(fnum(a), fnum(r1), fnum(r2), fnum(r3))
	}
	tb.write(w)
	fmt.Fprintln(w, "T2 pulls the largest eigenvalue toward the no-discrepancy curve.")
}

// fig6 regenerates Figure 6: per-stage cached activations with and without
// recompute, 16 stages in 4 segments.
func fig6(w io.Writer, _ Scale) {
	p, s := 16, 4
	with := memmodel.StageActivationsRecompute(p, s)
	without := memmodel.StageActivations(p)
	fmt.Fprintf(w, "Figure 6: cached activations per stage (P=%d, segment=%d)\n", p, s)
	tb := newTable("Stage", "w/ recompute", "w/o recompute")
	totW, totWo := 0, 0
	for i := 0; i < p; i++ {
		tb.add(i, with[i], without[i])
		totW += with[i]
		totWo += without[i]
	}
	tb.add("total", totW, totWo)
	tb.write(w)
}

// fig8 regenerates Figure 8: largest stable α vs ∆ for the original and
// T2-corrected quadratic model at τf=40, τb=10.
func fig8(w io.Writer, s Scale) {
	tauF, tauB := 40, 10
	gamma := quad.GammaTaylor(tauF, tauB)
	deltas := []float64{-100, -50, -10, 0, 10, 50, 100}
	if s == Full {
		deltas = []float64{-100, -75, -50, -25, -10, -5, -1, 0, 1, 5, 10, 25, 50, 75, 100}
	}
	fmt.Fprintf(w, "Figure 8: largest stable alpha vs Delta (tau_fwd=%d, tau_bkwd=%d, gamma=%.3f)\n", tauF, tauB, gamma)
	tb := newTable("Delta", "original", "T2 corrected")
	for _, delta := range deltas {
		orig, err := quad.MaxStableAlpha(func(a float64) poly.Poly {
			return quad.CharPolyDiscrepancy(tauF, tauB, a, 1, delta)
		}, 2, 1e-6)
		if err != nil {
			fmt.Fprintf(w, "error at Delta=%g: %v\n", delta, err)
			continue
		}
		corr, err := quad.MaxStableAlpha(func(a float64) poly.Poly {
			return quad.CharPolyT2(tauF, tauB, a, 1, delta, gamma)
		}, 2, 1e-6)
		if err != nil {
			fmt.Fprintf(w, "error at Delta=%g: %v\n", delta, err)
			continue
		}
		tb.add(fnum(delta), fmt.Sprintf("%.5f", orig), fmt.Sprintf("%.5f", corr))
	}
	tb.write(w)
	fmt.Fprintln(w, "T2 enlarges the stable range for Delta >= 0 (and can shrink it for some Delta < 0).")
}

// fig16 regenerates Figure 16: spectral radius vs α for the recompute
// model with ∆=10, Φ=−5, τ=(10,4,1).
func fig16(w io.Writer, s Scale) {
	tauF, tauB, tauR := 10, 1, 4
	delta, phi := 10.0, -5.0
	gamma := quad.GammaFromD(0.1, float64(tauF), float64(tauB))
	alphas := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
	if s == Full {
		alphas = nil
		for a := 0.001; a <= 1.0; a *= 1.3 {
			alphas = append(alphas, a)
		}
	}
	fmt.Fprintf(w, "Figure 16: recompute model spectral radius (Delta=%g, Phi=%g, tau=(%d,%d,%d), D=0.1)\n",
		delta, phi, tauF, tauB, tauR)
	tb := newTable("alpha", "discrepancy no corr", "no discrepancy", "no recompute (Phi=0)", "T2 corrected")
	for _, a := range alphas {
		r1, _ := quad.CharPolyRecomputeNoCorrection(tauF, tauB, tauR, a, 1, delta, phi).SpectralRadius()
		r2, _ := quad.CharPoly(tauF, a, 1).SpectralRadius()
		r3, _ := quad.CharPolyDiscrepancy(tauF, tauB, a, 1, delta).SpectralRadius()
		r4, _ := quad.CharPolyRecompute(tauF, tauB, tauR, a, 1, delta, phi, gamma).SpectralRadius()
		tb.add(fnum(a), fnum(r1), fnum(r2), fnum(r3), fnum(r4))
	}
	tb.write(w)
}

// appendixA3 prints the equal-budget throughput analysis.
func appendixA3(w io.Writer, _ Scale) {
	a1, t1 := throughput.GPipeOptimal()
	a2, t2 := throughput.GPipeOptimalRecompute()
	fmt.Fprintln(w, "Appendix A.3: GPipe throughput relative to PipeMare under equal budgets")
	tb := newTable("Variant", "optimal alpha", "max throughput", "paper")
	tb.add("plain", fnum(a1), fmt.Sprintf("%.4f", t1), "0.3")
	tb.add("with recompute", fnum(a2), fmt.Sprintf("%.4f", t2), "0.29")
	tb.write(w)
	fmt.Fprintln(w, "Note: the paper states the plain optimizer as alpha=sqrt(3/2); that point is outside")
	fmt.Fprintln(w, "its case-3 domain, and the true optimum of the stated model is 0.3 at alpha=3/2.")
}
