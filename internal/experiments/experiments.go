// Package experiments regenerates every table and figure of the PipeMare
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// experiment writes the same rows/series the paper reports to an
// io.Writer; DNN experiments accept a Scale to trade fidelity for time.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Scale selects experiment fidelity: Quick shrinks epochs and sweep grids
// for CI-friendly runs; Full uses the DESIGN.md reference settings.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Experiment is a registered table/figure regenerator.
type Experiment struct {
	Name  string
	Title string
	Run   func(w io.Writer, s Scale)
}

var registry []Experiment

func register(name, title string, run func(w io.Writer, s Scale)) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// All returns every registered experiment sorted by name.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) addf(format string, cells ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, cells...), "|"))
}

func (t *table) write(w io.Writer) {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(width) {
				fmt.Fprintf(w, "%-*s  ", width[i], c)
			} else {
				fmt.Fprintf(w, "%s  ", c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// fnum renders a float compactly for table cells.
func fnum(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
}
