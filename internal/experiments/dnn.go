package experiments

import (
	"fmt"
	"io"
	"math"

	"pipemare/internal/core"
	"pipemare/internal/metrics"
)

func init() {
	register("table2", "End-to-end comparison (best metric, speedup, epochs, throughput, memory)", table2)
	register("table3", "Ablation study of PipeMare techniques", table3)
	register("fig2", "Impact of pipeline stages (translation)", fig2)
	register("fig4", "Incremental techniques at 2x stages", fig4)
	register("fig7", "Divergence analysis: parameter norms and delay discrepancy", fig7)
	register("fig9", "ImageNet-like and WMT-like training curves", fig9)
	register("fig10", "Incremental techniques at 1x stages", fig10)
	register("fig11", "Deeper model (ResNet152-like): T1 vs T1+T2", fig11)
	register("fig12", "Sensitivity to annealing epochs (T1 K)", fig12)
	register("fig13", "Sensitivity to discrepancy-correction decay D", fig13)
	register("fig14", "Sensitivity to warmup epochs (T3)", fig14)
	register("fig15", "Impact of pipeline stages (classification)", fig15)
	register("fig17", "Recompute statistical performance (classification)", fig17)
	register("fig18", "Recompute statistical performance (translation)", fig18)
}

// scaleEpochs shrinks a reference epoch budget for Quick runs.
func scaleEpochs(s Scale, epochs int) int {
	if s == Full {
		return epochs
	}
	e := epochs / 4
	if e < 6 {
		e = 6
	}
	return e
}

// table2 regenerates Table 2: PipeDream vs GPipe vs PipeMare on all four
// workloads (classification only under Quick).
func table2(w io.Writer, s Scale) {
	workloads := []Workload{CIFARLike(), IWSLTLike()}
	if s == Full {
		workloads = []Workload{CIFARLike(), ImageNetLike(), IWSLTLike(), WMTLike()}
	}
	fmt.Fprintln(w, "Table 2: end-to-end comparison")
	for _, wl := range workloads {
		epochs := scaleEpochs(s, wl.Epochs)
		gp := wl.Run(RunSpec{Method: core.GPipe, Epochs: epochs, Seed: 11})
		pd := wl.Run(RunSpec{Method: core.PipeDream, Epochs: epochs, Seed: 11})
		pm := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, UseT3: true, WarmupEpochs: -1, Epochs: epochs, Seed: 11})
		target := wl.Target(gp, pd, pm)
		gpTime := gp.TimeTo(target, core.GPipe, 0)
		fmt.Fprintf(w, "\n%s  [%s]  stages=%d N=%d target=%.1f\n", wl.Name, wl.Paper, pm.Stages, pm.N, target)
		tb := newTable("Method", "Best", "Target", "Speedup", "EpochsToTgt", "Throughput", "Weight+Opt Mem")
		row := func(name string, r RunResult, m core.Method, warm int) {
			e := r.Run.EpochsToTarget(target)
			tt := r.TimeTo(target, m, warm)
			speed := metrics.Speedup(gpTime, tt)
			es, ss := "-", "-"
			if e > 0 {
				es = fmt.Sprint(e)
			}
			if !math.IsInf(tt, 1) && speed > 0 {
				ss = fmt.Sprintf("%.1fX", speed)
			}
			best := fmt.Sprintf("%.1f", r.Run.Best())
			if r.Run.Diverged {
				best += " (div)"
			}
			tb.add(name, best, fmt.Sprintf("%.1f", target), ss, es,
				fmt.Sprintf("%.2fX", r.Throughput), fmt.Sprintf("%.2fX", r.MemRatio))
		}
		row("PipeDream", pd, core.PipeDream, 0)
		row("GPipe", gp, core.GPipe, 0)
		row("PipeMare", pm, core.PipeMare, wl.WarmupEpochs)
		tb.write(w)
	}
}

// table3 regenerates the Table 3 ablation on the classification and
// translation workloads.
func table3(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Table 3: ablation study of PipeMare")
	type abl struct {
		name       string
		t1, t2, t3 bool
	}
	run := func(wl Workload, rows []abl) {
		epochs := scaleEpochs(s, wl.Epochs)
		gp := wl.Run(RunSpec{Method: core.GPipe, Epochs: epochs, Seed: 11})
		results := make([]RunResult, len(rows))
		for i, a := range rows {
			results[i] = wl.Run(RunSpec{Method: core.PipeMare, UseT1: a.t1, UseT2: a.t2, UseT3: a.t3,
				WarmupEpochs: -1, Epochs: epochs, Seed: 11})
		}
		all := append([]RunResult{gp}, results...)
		target := wl.Target(all...)
		gpTime := gp.TimeTo(target, core.GPipe, 0)
		fmt.Fprintf(w, "\n%s  target=%.1f (GPipe best %.1f)\n", wl.Name, target, gp.Run.Best())
		tb := newTable("Method", "Best", "Speedup", "EpochsToTgt", "Throughput", "Weight+Opt Mem")
		for i, a := range rows {
			r := results[i]
			e := r.Run.EpochsToTarget(target)
			warm := 0
			if a.t3 {
				warm = wl.WarmupEpochs
			}
			tt := r.TimeTo(target, core.PipeMare, warm)
			es, ss := "-", "-"
			if e > 0 {
				es = fmt.Sprint(e)
			}
			if sp := metrics.Speedup(gpTime, tt); sp > 0 {
				ss = fmt.Sprintf("%.1fX", sp)
			}
			best := fmt.Sprintf("%.1f", r.Run.Best())
			if r.Run.Diverged {
				best += " (div)"
			}
			tb.add(a.name, best, ss, es, fmt.Sprintf("%.2fX", r.Throughput), fmt.Sprintf("%.2fX", r.MemRatio))
		}
		tb.write(w)
	}
	run(CIFARLike(), []abl{
		{"T1 only", true, false, false},
		{"T2 only", false, true, false},
		{"T1+T2", true, true, false},
	})
	run(IWSLTLike(), []abl{
		{"T1 only", true, false, false},
		{"T2 only", false, true, false},
		{"T1+T2", true, true, false},
		{"T1+T2+T3", true, true, true},
	})
}

// ablationCurves prints the per-epoch metric for Sync / T1 / T1+T2 /
// T1+T2+T3 — the Figure 4 and Figure 10 series.
func ablationCurves(w io.Writer, s Scale, wl Workload, stages int, label string) {
	epochs := scaleEpochs(s, wl.Epochs)
	specs := []struct {
		name       string
		method     core.Method
		t1, t2, t3 bool
	}{
		{"Sync", core.GPipe, false, false, false},
		{"T1", core.PipeMare, true, false, false},
		{"T1+T2", core.PipeMare, true, true, false},
		{"T1+T2+T3", core.PipeMare, true, true, true},
	}
	results := make([]RunResult, len(specs))
	for i, sp := range specs {
		results[i] = wl.Run(RunSpec{Method: sp.method, Stages: stages, UseT1: sp.t1, UseT2: sp.t2,
			UseT3: sp.t3, WarmupEpochs: -1, Epochs: epochs, Seed: 11})
	}
	fmt.Fprintf(w, "\n%s (%s, stages=%d)\n", label, wl.Name, results[0].Stages)
	tb := newTable("Epoch", specs[0].name, specs[1].name, specs[2].name, specs[3].name)
	step := epochs / 6
	if step < 1 {
		step = 1
	}
	for e := step - 1; e < epochs; e += step {
		row := []any{e + 1}
		for _, r := range results {
			if e < r.Run.Epochs() {
				row = append(row, fmt.Sprintf("%.1f", r.Run.Metric[e]))
			} else {
				row = append(row, "div")
			}
		}
		tb.add(row...)
	}
	tb.write(w)
	tb2 := newTable("Variant", "Best", "Diverged")
	for i, sp := range specs {
		tb2.add(sp.name, fmt.Sprintf("%.1f", results[i].Run.Best()), results[i].Run.Diverged)
	}
	tb2.write(w)
}

// fig4 runs the ablation at ~2× the fine-grained stage count.
func fig4(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 4: incremental PipeMare techniques at 2x stages")
	wl := CIFARLike()
	wl.NewTask = doubleDepthClassifier(wl)
	wl.T1K = wl.T1K * 2
	ablationCurves(w, s, wl, 0, "classification, 213 weight groups")
	if s == Full {
		ablationCurves(w, s, IWSLTLike(), 0, "translation, all weight groups")
	}
}

// fig10 runs the ablation at the default (1×) stage counts.
func fig10(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 10: incremental PipeMare techniques at 1x stages")
	ablationCurves(w, s, CIFARLike(), 0, "classification")
	if s == Full {
		ablationCurves(w, s, IWSLTLike(), 0, "translation")
	}
}

// fig7 regenerates the divergence probes: parameter norm and accuracy for
// asynchronous training with and without forward/backward discrepancy.
func fig7(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 7: divergence analysis (parameter norm, accuracy)")
	wl := CIFARLike()
	epochs := scaleEpochs(s, 40)
	specs := []struct {
		name   string
		method core.Method
		deep   bool
	}{
		{"Sync", core.GPipe, false},
		{"tau_f != tau_b, 107 stages (PipeMare raw)", core.PipeMare, false},
		{"tau_f = tau_b, 107 stages (PipeDream)", core.PipeDream, false},
		{"tau_f = tau_b, 213 stages (PipeDream deep)", core.PipeDream, true},
	}
	tb := newTable("Run", "norm@5", "norm@end", "best acc", "diverged")
	for _, sp := range specs {
		w2 := wl
		if sp.deep {
			w2.NewTask = doubleDepthClassifier(wl)
		}
		r := w2.Run(RunSpec{Method: sp.method, Epochs: epochs, Seed: 7})
		n := r.Run.ParamNorm
		idx5 := 4
		if idx5 >= len(n) {
			idx5 = len(n) - 1
		}
		tb.add(sp.name, fmt.Sprintf("%.3g", n[idx5]), fmt.Sprintf("%.3g", n[len(n)-1]),
			fmt.Sprintf("%.1f", r.Run.Best()), r.Run.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
	fmt.Fprintln(w, "Raw asynchrony blows up the parameter norm; discrepancy (tau_f != tau_b) accelerates it,")
	fmt.Fprintln(w, "and even discrepancy-free delay (PipeDream) degrades when the stage count doubles.")
}

// doubleDepthClassifier doubles the residual-block count of the
// classification workload (213 weight groups).
func doubleDepthClassifier(wl Workload) func(int64) core.Task {
	return func(seed int64) core.Task {
		return classifierWithBlocks(105, seed)
	}
}

// fig9 prints the larger-workload curves for Sync / PipeDream / PipeMare.
func fig9(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 9: ImageNet-like and WMT-like training curves")
	workloads := []Workload{ImageNetLike()}
	if s == Full {
		workloads = append(workloads, WMTLike())
	}
	for _, wl := range workloads {
		epochs := scaleEpochs(s, wl.Epochs)
		gp := wl.Run(RunSpec{Method: core.GPipe, Epochs: epochs, Seed: 11})
		pd := wl.Run(RunSpec{Method: core.PipeDream, Epochs: epochs, Seed: 11})
		pm := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, UseT3: true,
			WarmupEpochs: -1, Epochs: epochs, Seed: 11})
		fmt.Fprintf(w, "\n%s\n", wl.Name)
		tb := newTable("Epoch", "Sync", "PipeDream", "PipeMare")
		step := epochs / 6
		if step < 1 {
			step = 1
		}
		for e := step - 1; e < epochs; e += step {
			row := []any{e + 1}
			for _, r := range []RunResult{gp, pd, pm} {
				if e < r.Run.Epochs() {
					row = append(row, fmt.Sprintf("%.1f", r.Run.Metric[e]))
				} else {
					row = append(row, "div")
				}
			}
			tb.add(row...)
		}
		tb.write(w)
	}
}

// fig11 contrasts T1-only and T1+T2 on a ~151-group model.
func fig11(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 11: deeper classifier (151 weight groups): T1 only vs T1+T2")
	wl := CIFARLike()
	wl.NewTask = func(seed int64) core.Task { return classifierWithBlocks(74, seed) }
	epochs := scaleEpochs(s, wl.Epochs)
	t1 := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, Epochs: epochs, Seed: 11})
	t12 := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, Epochs: epochs, Seed: 11})
	tb := newTable("Variant", "Best", "Final norm", "Diverged")
	for _, r := range []struct {
		name string
		r    RunResult
	}{{"T1 only", t1}, {"T1+T2 (D=0.5)", t12}} {
		n := r.r.Run.ParamNorm
		tb.add(r.name, fmt.Sprintf("%.1f", r.r.Run.Best()), fmt.Sprintf("%.3g", n[len(n)-1]),
			r.r.Run.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
}

// fig12 sweeps the T1 annealing length.
func fig12(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 12: sensitivity to the number of annealing steps K (classification)")
	wl := CIFARLike()
	epochs := scaleEpochs(s, wl.Epochs)
	perEpoch := 16
	tb := newTable("K (epochs)", "Best", "Final", "Diverged/blown")
	for _, kEpochs := range []int{5, 20, 30, 60} {
		w2 := wl
		w2.T1K = kEpochs * perEpoch
		r := w2.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, Epochs: epochs, Seed: 11})
		n := r.Run.ParamNorm
		last := "-"
		if !r.Run.Diverged {
			last = fmt.Sprintf("%.1f", r.Run.Metric[r.Run.Epochs()-1])
		}
		tb.add(kEpochs, fmt.Sprintf("%.1f", r.Run.Best()), last, r.Run.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
}

// fig13 sweeps the discrepancy-correction decay D, including D=0 (T1 only).
func fig13(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 13: sensitivity to correction decay D (classification)")
	wl := CIFARLike()
	epochs := scaleEpochs(s, wl.Epochs)
	tb := newTable("D", "Best", "Final", "Diverged/blown")
	for _, d := range []float64{0, 0.2, 0.5, 0.7} {
		w2 := wl
		w2.T2D = d
		r := w2.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: d > 0, Epochs: epochs, Seed: 11})
		n := r.Run.ParamNorm
		last := "-"
		if !r.Run.Diverged {
			last = fmt.Sprintf("%.1f", r.Run.Metric[r.Run.Epochs()-1])
		}
		tb.add(fnum(d), fmt.Sprintf("%.1f", r.Run.Best()), last, r.Run.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
}

// fig14 sweeps the number of synchronous warmup epochs on the translation
// workload (T3's tradeoff).
func fig14(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 14: sensitivity to warmup epochs (translation)")
	wl := IWSLTLike()
	epochs := scaleEpochs(s, wl.Epochs)
	tb := newTable("Warmup epochs", "Best", "EpochsToTgt(best-0.4)", "Amortized throughput")
	runs := []RunResult{}
	warms := []int{3, 5, 10}
	for _, m := range warms {
		r := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, UseT3: true,
			WarmupEpochs: m, Epochs: epochs, Seed: 11})
		runs = append(runs, r)
	}
	target := wl.Target(runs...)
	for i, m := range warms {
		r := runs[i]
		e := r.Run.EpochsToTarget(target)
		es := "-"
		if e > 0 {
			es = fmt.Sprint(e)
		}
		tb.add(m, fmt.Sprintf("%.1f", r.Run.Best()), es, fmt.Sprintf("%.2f", r.Throughput))
	}
	tb.write(w)
}

// stageSweep produces the four panels of Figures 2 and 15: normalized
// throughput, weight+optimizer memory, best metric, and time-to-target as
// the stage count varies.
func stageSweep(w io.Writer, s Scale, wl Workload, stages []int, label string) {
	fmt.Fprintf(w, "%s\n", label)
	epochs := scaleEpochs(s, wl.Epochs)
	type row struct {
		p                   int
		thrGP, thrPM        float64
		memGP, memPD, memPM float64
		bestPM              float64
		ttGP, ttPM          float64
	}
	var rows []row
	for _, p := range stages {
		gp := wl.Run(RunSpec{Method: core.GPipe, Stages: p, Epochs: epochs, Seed: 11})
		pd := wl.Run(RunSpec{Method: core.PipeDream, Stages: p, Epochs: epochs, Seed: 11})
		pm := wl.Run(RunSpec{Method: core.PipeMare, Stages: p, UseT1: true, UseT2: true, UseT3: true,
			WarmupEpochs: -1, Epochs: epochs, Seed: 11})
		target := wl.Target(gp, pd, pm)
		rows = append(rows, row{
			p: p,
			// Absolute throughput grows with P for bubble-free methods
			// (more parallel stages); GPipe pays the bubble factor.
			thrGP: float64(p) * 0.3,
			thrPM: float64(p) * pm.Throughput,
			memGP: gp.MemRatio, memPD: pd.MemRatio, memPM: pm.MemRatio,
			bestPM: pm.Run.Best(),
			ttGP:   gp.TimeTo(target, core.GPipe, 0),
			ttPM:   pm.TimeTo(target, core.PipeMare, wl.WarmupEpochs),
		})
	}
	tb := newTable("Stages", "Thr GPipe", "Thr PipeMare", "Mem GPipe", "Mem PipeDream", "Mem PipeMare",
		"Best PipeMare", "TimeToTgt GPipe", "TimeToTgt PipeMare")
	for _, r := range rows {
		tt1, tt2 := "Inf", "Inf"
		if !math.IsInf(r.ttGP, 1) {
			tt1 = fmt.Sprintf("%.0f", r.ttGP)
		}
		if !math.IsInf(r.ttPM, 1) {
			tt2 = fmt.Sprintf("%.0f", r.ttPM)
		}
		tb.add(r.p, fmt.Sprintf("%.1f", r.thrGP), fmt.Sprintf("%.1f", r.thrPM),
			fmt.Sprintf("%.2fX", r.memGP), fmt.Sprintf("%.2fX", r.memPD), fmt.Sprintf("%.2fX", r.memPM),
			fmt.Sprintf("%.1f", r.bestPM), tt1, tt2)
	}
	tb.write(w)
}

// fig2 is the translation stage sweep.
func fig2(w io.Writer, s Scale) {
	stages := []int{12, 24, 48}
	if s == Quick {
		stages = []int{12, 48}
	}
	stageSweep(w, s, IWSLTLike(), stages, "Figure 2: translation workload vs pipeline stages")
}

// fig15 is the classification stage sweep.
func fig15(w io.Writer, s Scale) {
	stages := []int{20, 53, 107}
	if s == Quick {
		stages = []int{20, 107}
	}
	stageSweep(w, s, CIFARLike(), stages, "Figure 15: classification workload vs pipeline stages")
}

// recomputeCurves runs PipeMare with the recompute delay path for several
// checkpoint-segment counts.
func recomputeCurves(w io.Writer, s Scale, wl Workload, segs []int, withT2 bool, label string) {
	epochs := scaleEpochs(s, wl.Epochs)
	fmt.Fprintf(w, "\n%s (T2=%v)\n", label, withT2)
	tb := newTable("Checkpoints", "Best", "Final", "Diverged/blown")
	for _, seg := range append([]int{0}, segs...) {
		r := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: withT2,
			Recompute: seg, Epochs: epochs, Seed: 11})
		name := "no recompute"
		if seg > 0 {
			name = fmt.Sprintf("%d segments", seg)
		}
		n := r.Run.ParamNorm
		last := "-"
		if !r.Run.Diverged {
			last = fmt.Sprintf("%.1f", r.Run.Metric[r.Run.Epochs()-1])
		}
		tb.add(name, fmt.Sprintf("%.1f", r.Run.Best()), last, r.Run.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
}

// fig17 is the classification recompute study.
func fig17(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 17: recompute on the classification workload")
	wl := CIFARLike()
	segs := []int{2, 4, 17}
	if s == Quick {
		segs = []int{4}
	}
	recomputeCurves(w, s, wl, segs, false, "T1 only")
	recomputeCurves(w, s, wl, segs, true, "T1+T2")
}

// fig18 is the translation recompute study.
func fig18(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 18: recompute on the translation workload")
	wl := IWSLTLike()
	segs := []int{2, 12}
	if s == Quick {
		segs = []int{4}
	}
	recomputeCurves(w, s, wl, segs, true, "T1+T2")
	if s == Full {
		recomputeCurves(w, s, wl, segs, false, "T1 only")
	}
}
