package experiments

import (
	"fmt"
	"io"

	"pipemare/internal/hogwild"
	"pipemare/internal/optim"
)

func init() {
	register("fig19", "Hogwild!-style asynchrony with and without T1", fig19)
}

// fig19 regenerates the Appendix E experiment: Hogwild!-style stochastic
// per-stage delays on the classification workload (and the translation
// workload under Full), comparing synchronous training, raw Hogwild!, and
// Hogwild! with T1 learning-rate rescheduling.
func fig19(w io.Writer, s Scale) {
	fmt.Fprintln(w, "Figure 19: Hogwild!-style asynchronous training")
	epochs := scaleEpochs(s, 45)
	type spec struct {
		name   string
		tauMax int
		t1k    int
		lr     float64
	}
	specs := []spec{
		{"Sync (tau=0)", 1, 0, 0.05},
		{"Hogwild!", 24, 0, 0.05},
		{"Hogwild! + T1", 24, 480, 0.05},
	}
	tb := newTable("Run", "Best", "Final", "Diverged/blown")
	for _, sp := range specs {
		task := classifierWithBlocks(52, 11)
		ps := Params(task)
		opt := optim.NewSGD(ps, 0.9, 5e-4)
		sched := optim.StepDecay{Base: sp.lr, DropEvery: 30 * 16, Factor: 0.1}
		meanScale := 0.8
		if sp.name == "Sync (tau=0)" {
			meanScale = 1e-9 // effectively zero delay
		}
		tr, err := hogwild.New(task, opt, sched, hogwild.Config{
			BatchSize: 64, TauMax: sp.tauMax, MeanScale: meanScale,
			T1K: sp.t1k, Seed: 11,
		})
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		r := tr.TrainEpochs(epochs, nil)
		n := r.ParamNorm
		last := "-"
		if !r.Diverged {
			last = fmt.Sprintf("%.1f", r.Metric[r.Epochs()-1])
		}
		tb.add(sp.name, fmt.Sprintf("%.1f", r.Best()), last, r.Diverged || n[len(n)-1] > 1e6)
	}
	tb.write(w)
	fmt.Fprintln(w, "T1's inverse-delay rescheduling also helps under stochastic (Hogwild!-style) delays.")
}
