package experiments

import (
	"context"
	"math"

	"pipemare"
	"pipemare/internal/core"
	"pipemare/internal/data"
	"pipemare/internal/memmodel"
	"pipemare/internal/metrics"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/throughput"
)

// EngineFactory, when non-nil, supplies the execution engine for every
// workload run (one fresh engine per run). It is set by pipemare-bench's
// -engine flag; nil means the default Reference engine.
var EngineFactory func() pipemare.Engine

// Replicas, when > 1, runs every workload with that many data-parallel
// pipeline replicas (pipemare.WithReplicas). It is set by pipemare-bench's
// -replicas flag; curves are bit-identical to single-replica runs, so the
// experiment tables do not change — only the wall-clock does.
var Replicas int

// Partition, when not PartitionEven, selects the stage-partition mode for
// every workload run (pipemare.WithPartition). It is set by
// pipemare-bench's -partition flag. Unlike the engine/replica hooks it
// changes each parameter's stage and therefore its delay τ_fwd, so the
// experiment tables shift with it — it exists to study how the paper's
// techniques behave under cost-balanced pipeline geometry.
var Partition pipemare.PartitionMode

// DType, when Float32, trains every workload run (and the engine
// benchmark) in float32 (pipemare.WithDType). It is set by
// pipemare-bench's -dtype flag. Each dtype is its own deterministic
// ground truth, so float32 results are comparable across engines and
// replica counts but not bit-comparable to float64 runs.
var DType pipemare.DType

// Workload bundles a task constructor with its training recipe, mirroring
// the paper's Appendix C.1 hyperparameter tables for the substituted
// tasks.
type Workload struct {
	Name string
	// Paper identifies which of the paper's benchmarks this substitutes.
	Paper string

	NewTask func(seed int64) core.Task
	// NewOptimizer builds the optimizer over the task's parameters.
	NewOptimizer func(ps []*nn.Param) optim.Optimizer
	NewSchedule  func() optim.Schedule

	BatchSize      int
	MicrobatchSize int
	Epochs         int     // reference epoch budget
	T1K            int     // reference annealing steps
	T2D            float64 // reference discrepancy-correction decay
	WarmupEpochs   int     // reference T3 warmup epochs
	ClipNorm       float64
	TargetSlack    float64 // target = best-across-methods − slack (1.0 acc / 0.4 BLEU)
}

// Params extracts the parameter list of a task in group order.
func Params(t core.Task) []*nn.Param {
	var ps []*nn.Param
	for _, g := range t.Groups() {
		ps = append(ps, g.Params...)
	}
	return ps
}

// classifierWithBlocks builds the standard synthetic classification task
// with a residual MLP of the given block count (2·blocks + 3 weight
// groups), used by the deeper-model experiments (Figures 4, 7 and 11).
func classifierWithBlocks(blocks int, seed int64) core.Task {
	d := data.NewImages(data.ImagesConfig{Classes: 10, C: 3, H: 4, W: 4,
		Train: 1024, Test: 512, Noise: 0.9, LabelFlip: 0.05, Seed: 1})
	return model.NewResNetMLP(d, 16, blocks, seed)
}

// CIFARLike is the CIFAR10/ResNet50 substitute: a 107-group residual MLP
// on synthetic images with 5% label noise, trained with momentum SGD and a
// step-decay schedule (Appendix C.1 Table 6 analogue).
func CIFARLike() Workload {
	return Workload{
		Name:  "cifar-like",
		Paper: "ResNet50 / CIFAR10 (107 stages)",
		NewTask: func(seed int64) core.Task {
			d := data.NewImages(data.ImagesConfig{Classes: 10, C: 3, H: 4, W: 4,
				Train: 1024, Test: 512, Noise: 0.9, LabelFlip: 0.05, Seed: 1})
			return model.NewResNetMLP(d, 16, 52, seed) // 107 weight groups
		},
		NewOptimizer: func(ps []*nn.Param) optim.Optimizer {
			return optim.NewSGD(ps, 0.9, 5e-4)
		},
		NewSchedule: func() optim.Schedule {
			// Drop 10x after 40 epochs (16 steps/epoch).
			return optim.StepDecay{Base: 0.05, DropEvery: 40 * 16, Factor: 0.1}
		},
		BatchSize: 64, MicrobatchSize: 8,
		Epochs: 60,
		// K = 1/4 of the first fixed-LR phase (paper's ResNet rule):
		// 40 epochs × 16 steps / 4 ... empirically 30 epochs works best here.
		T1K: 480, T2D: 0.5, WarmupEpochs: 0,
		TargetSlack: 1.0,
	}
}

// ImageNetLike is the ImageNet/ResNet50 substitute: a harder 20-class task
// with the same 107-group model family but wider layers.
func ImageNetLike() Workload {
	w := CIFARLike()
	w.Name = "imagenet-like"
	w.Paper = "ResNet50 / ImageNet (107 stages)"
	w.NewTask = func(seed int64) core.Task {
		d := data.NewImages(data.ImagesConfig{Classes: 20, C: 3, H: 4, W: 4,
			Train: 2048, Test: 512, Noise: 1.1, LabelFlip: 0.08, Seed: 2})
		return model.NewResNetMLP(d, 24, 52, seed)
	}
	w.NewSchedule = func() optim.Schedule {
		return optim.StepDecay{Base: 0.05, DropEvery: 30 * 32, Factor: 0.1}
	}
	w.Epochs = 45
	w.T1K = 32 * 20 // 20 epochs × 32 steps
	return w
}

// IWSLTLike is the IWSLT14/Transformer substitute: a 48-group
// encoder–decoder Transformer on the synthetic translation task with AdamW
// and linear-warmup/inverse-sqrt schedule (Appendix C.1 Table 7 analogue).
func IWSLTLike() Workload {
	return Workload{
		Name:  "iwslt-like",
		Paper: "12-layer Transformer / IWSLT14 (93 stages)",
		NewTask: func(seed int64) core.Task {
			ds := data.NewTranslation(data.TranslationConfig{Vocab: 13, SrcLen: 6,
				Train: 1024, Test: 128, Seed: 2})
			return model.NewTranslation(ds, model.TransformerConfig{
				Dim: 32, Heads: 2, EncLayers: 2, DecLayers: 2, Seed: seed})
		},
		NewOptimizer: func(ps []*nn.Param) optim.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		},
		NewSchedule: func() optim.Schedule {
			return optim.WarmupInvSqrt{Peak: 5e-3, Init: 1e-7, Warmup: 100}
		},
		BatchSize: 64, MicrobatchSize: 4,
		Epochs: 90,
		// Paper's Transformer rule: K = 5 × LR warmup steps.
		T1K: 500, T2D: 0.1, WarmupEpochs: 10,
		ClipNorm:    5,
		TargetSlack: 0.4,
	}
}

// WMTLike is the WMT17 substitute: a larger vocabulary/longer-sequence
// translation task over a deeper Transformer.
func WMTLike() Workload {
	w := IWSLTLike()
	w.Name = "wmt-like"
	w.Paper = "12-layer Transformer / WMT17 (91 stages, shared-embedding analogue)"
	w.NewTask = func(seed int64) core.Task {
		ds := data.NewTranslation(data.TranslationConfig{Vocab: 17, SrcLen: 7,
			Train: 2048, Test: 128, Seed: 3})
		return model.NewTranslation(ds, model.TransformerConfig{
			Dim: 32, Heads: 2, EncLayers: 2, DecLayers: 2, Seed: seed})
	}
	w.NewSchedule = func() optim.Schedule {
		return optim.WarmupInvSqrt{Peak: 7e-3, Init: 1e-7, Warmup: 100}
	}
	w.Epochs = 60
	w.WarmupEpochs = 4
	return w
}

// RunSpec describes one training run of a workload.
type RunSpec struct {
	Method       core.Method
	Stages       int // 0 = one stage per weight group
	UseT1        bool
	UseT2        bool
	WarmupEpochs int // −1 = workload default when UseT3
	UseT3        bool
	Epochs       int // 0 = workload default
	Seed         int64
	Recompute    int // recompute segments, 0 = off
}

// RunResult carries a run's curve plus the derived paper metrics.
type RunResult struct {
	Run          *metrics.Run
	Stages       int
	N            int
	Throughput   float64 // amortized normalized throughput over the full run
	WeightOptMem float64 // weight+optimizer memory in units of W
	MemRatio     float64 // relative to the synchronous base
	Taus         []float64
}

// Run executes one configuration of the workload through the public
// options API.
func (w Workload) Run(spec RunSpec) RunResult {
	task := w.NewTask(spec.Seed)
	var opt optim.Optimizer
	opts := []pipemare.Option{
		pipemare.WithMethod(spec.Method),
		pipemare.WithStages(spec.Stages),
		pipemare.WithBatchSize(w.BatchSize),
		pipemare.WithMicrobatchSize(w.MicrobatchSize),
		pipemare.WithSeed(spec.Seed),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			opt = w.NewOptimizer(ps)
			return opt
		}),
		pipemare.WithSchedule(w.NewSchedule()),
	}
	if w.ClipNorm > 0 {
		opts = append(opts, pipemare.WithClipNorm(w.ClipNorm))
	}
	if spec.UseT1 {
		opts = append(opts, pipemare.WithT1(w.T1K))
	}
	if spec.UseT2 {
		opts = append(opts, pipemare.WithT2(w.T2D))
	}
	warmup := 0
	if spec.UseT3 {
		warmup = w.WarmupEpochs
		if spec.WarmupEpochs >= 0 {
			warmup = spec.WarmupEpochs
		}
		opts = append(opts, pipemare.WithT3(warmup))
	}
	if spec.Recompute > 0 {
		opts = append(opts, pipemare.WithRecompute(spec.Recompute))
	}
	if EngineFactory != nil {
		opts = append(opts, pipemare.WithEngine(EngineFactory()))
	}
	if Replicas > 1 {
		opts = append(opts, pipemare.WithReplicas(Replicas))
	}
	if Partition != pipemare.PartitionEven {
		opts = append(opts, pipemare.WithPartition(Partition))
	}
	if DType != pipemare.Float64 {
		opts = append(opts, pipemare.WithDType(DType))
	}
	tr, err := pipemare.New(task, opts...)
	if err != nil {
		panic(err)
	}
	epochs := spec.Epochs
	if epochs == 0 {
		epochs = w.Epochs
	}
	run, err := tr.Run(context.Background(), epochs)
	if err != nil {
		panic(err)
	}

	res := RunResult{Run: run, Stages: tr.Stages(), N: tr.Microbatches(), Taus: tr.Taus()}
	ps := Params(task)
	warm := warmup
	main := 1.0
	if spec.Method == core.GPipe {
		main = throughput.PaperGPipeThroughput
		warm = 0
	}
	res.Throughput = metrics.AmortizedThroughput(run.Epochs(), warm, throughput.PaperGPipeThroughput, main)
	sizes := tr.Partition().StageSizes()
	mm := memmodel.Method(spec.Method)
	res.WeightOptMem = memmodel.WeightOptimizer(mm, opt.StateCopies(), sizes, res.N, spec.UseT2) / float64(nn.TotalSize(ps))
	base := float64(opt.StateCopies())
	res.MemRatio = res.WeightOptMem / base
	return res
}

// TimeTo returns the normalized time for this run to reach target, using
// the throughput model (GPipe at 0.3, async at 1.0, warmup epochs at 0.3).
func (r RunResult) TimeTo(target float64, method core.Method, warmupEpochs int) float64 {
	e := r.Run.EpochsToTarget(target)
	if method == core.GPipe {
		return metrics.TimeToTarget(e, 0, throughput.PaperGPipeThroughput, throughput.PaperGPipeThroughput)
	}
	return metrics.TimeToTarget(e, warmupEpochs, throughput.PaperGPipeThroughput, 1.0)
}

// Target computes the paper's target metric: best across the given runs
// minus the workload slack.
func (w Workload) Target(results ...RunResult) float64 {
	best := 0.0
	for _, r := range results {
		if b := r.Run.Best(); b > best {
			best = b
		}
	}
	return math.Max(best-w.TargetSlack, 0)
}

// EngineBenchWorkload describes the fixed transformer configuration shared
// by the root BenchmarkEngine{Reference,Concurrent}P{4,8} benchmarks and
// the BENCH_engine.json perf record (pipemare-bench -json), so the two
// cannot drift apart.
const EngineBenchWorkload = "transformer dim=128 enc=2 dec=2 batch=32 micro=8"

// NewEngineBenchTrainer builds the engine-benchmark trainer: the PipeMare
// method on the EngineBenchWorkload transformer at the given stage count,
// under the given execution engine. Extra options (e.g. WithPartition)
// are appended after the workload recipe.
func NewEngineBenchTrainer(stages int, eng pipemare.Engine, extra ...pipemare.Option) (*pipemare.Trainer, error) {
	return NewReplicatedBenchTrainer(stages, 1, eng, extra...)
}

// EngineBenchTask builds the EngineBenchWorkload transformer. Leader and
// worker processes both call it, so a remote bench run starts from
// bit-identical weights on every replica (the transport handshake
// verifies this with a state checksum).
func EngineBenchTask() core.Task {
	ds := data.NewTranslation(data.TranslationConfig{
		Vocab: 13, SrcLen: 6, Train: 256, Test: 32, Seed: 2})
	return model.NewTranslation(ds, model.TransformerConfig{
		Dim: 128, Heads: 4, EncLayers: 2, DecLayers: 2, Seed: 1})
}

// EngineBenchOptions returns the EngineBenchWorkload training recipe —
// the option set shared by the leader trainer and `pipemare-worker`
// follower processes (which pass it to ServeFollower).
func EngineBenchOptions(stages int) []pipemare.Option {
	opts := []pipemare.Option{
		pipemare.WithMethod(pipemare.PipeMare),
		pipemare.WithStages(stages),
		pipemare.WithBatchSize(32), pipemare.WithMicrobatches(8),
		pipemare.WithT1(100), pipemare.WithT2(0.1), pipemare.WithClipNorm(5),
		pipemare.WithSeed(1),
		pipemare.WithOptimizer(func(ps []*nn.Param) pipemare.Optimizer {
			return optim.NewAdamW(ps, 0.9, 0.98, 1e-9, 1e-4)
		}),
		pipemare.WithSchedule(optim.WarmupInvSqrt{Peak: 3e-3, Init: 1e-7, Warmup: 100}),
	}
	if DType != pipemare.Float64 {
		opts = append(opts, pipemare.WithDType(DType))
	}
	return opts
}

// NewReplicatedBenchTrainer is NewEngineBenchTrainer with a data-parallel
// replica count, for the BenchmarkEngineReplicated* benchmarks and the
// replicas dimension of BENCH_engine.json. replicas must not exceed the
// workload's 8 microbatches.
func NewReplicatedBenchTrainer(stages, replicas int, eng pipemare.Engine, extra ...pipemare.Option) (*pipemare.Trainer, error) {
	opts := EngineBenchOptions(stages)
	if replicas > 1 {
		opts = append(opts, pipemare.WithReplicas(replicas))
	}
	if eng != nil {
		opts = append(opts, pipemare.WithEngine(eng))
	}
	opts = append(opts, extra...)
	return pipemare.New(EngineBenchTask(), opts...)
}
