package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"pipemare/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig1", "fig2", "fig3a", "fig3b", "fig4", "fig5a", "fig5b", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "appendixA3",
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestAnalyticExperimentsProduceOutput(t *testing.T) {
	// The pure-theory experiments are fast enough to run in tests; each
	// must produce non-trivial output and not panic.
	for _, name := range []string{"table1", "table4", "table5", "fig1", "fig3a", "fig5a", "fig5b", "fig6", "fig16", "appendixA3"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		var buf bytes.Buffer
		e.Run(&buf, Quick)
		if buf.Len() < 80 {
			t.Errorf("%s produced only %d bytes", name, buf.Len())
		}
	}
}

func TestTable5OutputMatchesPaperRatios(t *testing.T) {
	e, _ := Lookup("table5")
	var buf bytes.Buffer
	e.Run(&buf, Quick)
	out := buf.String()
	for _, frag := range []string{"0.097X", "0.104X", "0.105X"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table5 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig3aOutputShowsDivergenceOnlyAtTau10(t *testing.T) {
	e, _ := Lookup("fig3a")
	var buf bytes.Buffer
	e.Run(&buf, Quick)
	lines := strings.Split(buf.String(), "\n")
	found := map[string]bool{}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) >= 5 && (f[0] == "0" || f[0] == "5" || f[0] == "10") {
			found[f[0]] = f[4] == "true"
		}
	}
	if found["0"] || found["5"] || !found["10"] {
		t.Fatalf("divergence flags wrong: %v\n%s", found, buf.String())
	}
}

func TestWorkloadConstructorsBuild(t *testing.T) {
	for _, wl := range []Workload{CIFARLike(), ImageNetLike(), IWSLTLike(), WMTLike()} {
		task := wl.NewTask(1)
		if len(task.Groups()) < 40 {
			t.Errorf("%s has only %d weight groups", wl.Name, len(task.Groups()))
		}
		if task.NumTrain() < wl.BatchSize {
			t.Errorf("%s training set smaller than a batch", wl.Name)
		}
	}
	// The CIFAR substitute matches the paper's 107-stage geometry.
	if got := len(CIFARLike().NewTask(1).Groups()); got != 107 {
		t.Fatalf("cifar-like has %d groups, want 107", got)
	}
}

func TestWorkloadRunSmoke(t *testing.T) {
	// A very short run through the full Run plumbing, checking the derived
	// throughput/memory columns.
	wl := CIFARLike()
	r := wl.Run(RunSpec{Method: core.PipeMare, UseT1: true, UseT2: true, Epochs: 2, Seed: 1})
	if r.Stages != 107 || r.N != 8 {
		t.Fatalf("stages=%d N=%d", r.Stages, r.N)
	}
	if r.Run.Epochs() != 2 {
		t.Fatalf("epochs recorded = %d", r.Run.Epochs())
	}
	// T2 on SGD costs 4/3 of the sync base (Table 2's 1.33X).
	if r.MemRatio < 1.32 || r.MemRatio > 1.34 {
		t.Fatalf("mem ratio = %g, want 1.33", r.MemRatio)
	}
	if r.Throughput != 1.0 {
		t.Fatalf("PipeMare throughput = %g, want 1.0", r.Throughput)
	}
	gp := wl.Run(RunSpec{Method: core.GPipe, Epochs: 2, Seed: 1})
	if gp.Throughput != 0.3 {
		t.Fatalf("GPipe throughput = %g, want 0.3", gp.Throughput)
	}
	if gp.MemRatio != 1.0 {
		t.Fatalf("GPipe mem ratio = %g, want 1.0", gp.MemRatio)
	}
	pd := wl.Run(RunSpec{Method: core.PipeDream, Epochs: 2, Seed: 1})
	if pd.MemRatio <= 1.5 {
		t.Fatalf("PipeDream mem ratio = %g, want well above PipeMare's", pd.MemRatio)
	}
}

func TestScaleEpochs(t *testing.T) {
	if scaleEpochs(Full, 60) != 60 {
		t.Fatal("Full must keep the reference budget")
	}
	if got := scaleEpochs(Quick, 60); got != 15 {
		t.Fatalf("Quick(60) = %d, want 15", got)
	}
	if got := scaleEpochs(Quick, 8); got != 6 {
		t.Fatalf("Quick(8) = %d, want floor of 6", got)
	}
}

func TestTablePrinter(t *testing.T) {
	tb := newTable("A", "B")
	tb.add("x", 1.5)
	tb.add("longer", "cell")
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "longer") || !strings.Contains(out, "1.5") {
		t.Fatalf("table output wrong:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("table must have header, separator and two rows:\n%s", out)
	}
}

func TestExperimentsWriteToWriter(t *testing.T) {
	// Experiments must honor the writer they are given (no stray stdout):
	// run one and ensure output lands in the buffer.
	e, _ := Lookup("fig6")
	var buf bytes.Buffer
	e.Run(&buf, Quick)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("fig6 must write its header to the provided writer")
	}
	// And io.Discard must be usable.
	e.Run(io.Discard, Quick)
}
