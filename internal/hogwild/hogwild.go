// Package hogwild implements the Appendix E extension of PipeMare:
// Hogwild!-style asynchronous training where each stage's gradient is
// computed entirely on weights with a stochastic, stage-specific delay
// drawn from a truncated exponential distribution (the maximum-entropy
// delay model of Mitliagkas et al.), with and without the paper's T1
// learning-rate rescheduling.
package hogwild

import (
	"fmt"
	"math"
	"math/rand"

	"pipemare/internal/data"
	"pipemare/internal/metrics"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
	"pipemare/internal/pipeline"
	"pipemare/internal/tensor"
)

// Task is the trained task; it matches core.Task.
type Task interface {
	Groups() []pipeline.ParamGroup
	NumTrain() int
	Forward(idx []int) float64
	Backward()
	EvalTest() float64
}

// Config configures a Hogwild!-style run.
type Config struct {
	Stages    int     // 0 = one stage per weight group
	BatchSize int     // minibatch size (no microbatching: delays are per update)
	TauMax    int     // truncation of the exponential delay distribution
	MeanScale float64 // stage i (1-indexed) has mean delay MeanScale·(P−i+1)/P·TauMax... see MeanDelay
	T1K       int     // T1 annealing steps (0 disables)
	ClipNorm  float64
	LossCap   float64
	Seed      int64
}

// Trainer runs Hogwild!-style asynchronous SGD.
type Trainer struct {
	task  Task
	opt   optim.Optimizer
	sched optim.Schedule
	cfg   Config

	part   *pipeline.Partition
	store  *pipeline.VersionStore
	params []*nn.Param
	stage1 []int
	means  []float64 // per-stage mean delay
	taus   []float64 // per-param expected delay (for T1)

	rng      *rand.Rand
	step     int
	diverged bool
}

// MeanDelay returns the mean of stage i's (1-indexed) delay distribution:
// earlier stages see longer delays, scaled so the first stage's mean is
// MeanScale·TauMax and the last stage's approaches MeanScale·TauMax/P.
func MeanDelay(stage1, p, tauMax int, meanScale float64) float64 {
	return meanScale * float64(tauMax) * float64(p-stage1+1) / float64(p)
}

// New builds a Hogwild trainer.
func New(task Task, opt optim.Optimizer, sched optim.Schedule, cfg Config) (*Trainer, error) {
	groups := task.Groups()
	p := cfg.Stages
	if p == 0 {
		p = len(groups)
	}
	part, err := pipeline.PartitionGroups(groups, p)
	if err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("hogwild: batch size must be positive")
	}
	if cfg.TauMax <= 0 {
		return nil, fmt.Errorf("hogwild: TauMax must be positive")
	}
	if cfg.MeanScale <= 0 {
		cfg.MeanScale = 0.5
	}
	if cfg.LossCap == 0 {
		cfg.LossCap = 1e6
	}
	t := &Trainer{
		task: task, opt: opt, sched: sched, cfg: cfg,
		part: part,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	t.params = part.Params()
	for s, ps := range part.Stages {
		for range ps {
			t.stage1 = append(t.stage1, s+1)
		}
	}
	t.means = make([]float64, p)
	for i1 := 1; i1 <= p; i1++ {
		t.means[i1-1] = MeanDelay(i1, p, cfg.TauMax, cfg.MeanScale)
	}
	t.taus = make([]float64, len(t.params))
	for i := range t.params {
		t.taus[i] = t.means[t.stage1[i]-1]
	}
	t.store = pipeline.NewVersionStore(part.Stages, cfg.TauMax+2)
	return t, nil
}

// sampleDelay draws an integer delay from Exp(mean) truncated at TauMax.
func (t *Trainer) sampleDelay(mean float64) int {
	d := int(t.rng.ExpFloat64() * mean)
	if d > t.cfg.TauMax {
		d = t.cfg.TauMax
	}
	return d
}

// Diverged reports whether training was aborted.
func (t *Trainer) Diverged() bool { return t.diverged }

// Taus returns the per-parameter expected delays used by T1.
func (t *Trainer) Taus() []float64 { return t.taus }

// TrainEpochs runs the Hogwild simulation, recording one entry per epoch.
func (t *Trainer) TrainEpochs(epochs int, run *metrics.Run) *metrics.Run {
	if run == nil {
		run = &metrics.Run{}
	}
	masters := make([]*tensor.Tensor, len(t.params))
	for i, pm := range t.params {
		masters[i] = pm.Data
	}
	for e := 0; e < epochs; e++ {
		epochLoss, batches := 0.0, 0
		for _, batch := range data.Batches(t.task.NumTrain(), t.cfg.BatchSize, t.rng) {
			if len(batch) < t.cfg.BatchSize {
				continue
			}
			// Sample one delay per stage; the whole gradient (forward and
			// backward) is computed on the stale snapshot w_{t−τ_i}.
			cur := t.store.Latest(0)
			delays := make([]int, len(t.means))
			for s := range delays {
				delays[s] = t.sampleDelay(t.means[s])
			}
			for i, pm := range t.params {
				st := t.stage1[i] - 1
				v := cur - delays[st]
				if v < 0 {
					v = 0
				}
				pm.Data = snapOf(t.store.Get(st, v), t.part.Stages[st], pm)
			}
			loss := t.task.Forward(batch)
			if math.IsNaN(loss) || loss > t.cfg.LossCap {
				for i, pm := range t.params {
					pm.Data = masters[i]
				}
				run.Record(math.Inf(1), 0, nn.ParamNorm(t.params))
				run.Diverged = true
				t.diverged = true
				return run
			}
			t.task.Backward()
			for i, pm := range t.params {
				pm.Data = masters[i]
			}
			if t.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(t.params, t.cfg.ClipNorm)
			}
			t.opt.Step(t.learningRates())
			nn.ZeroGrads(t.params)
			t.store.Push()
			t.step++
			epochLoss += loss
			batches++
		}
		run.Record(epochLoss/float64(batches), t.task.EvalTest(), nn.ParamNorm(t.params))
	}
	return run
}

// learningRates applies T1 with the per-stage expected delays.
func (t *Trainer) learningRates() []float64 {
	base := t.sched.LR(t.step)
	if t.cfg.T1K <= 0 {
		return optim.UniformLR(base, len(t.params))
	}
	p := 1 - math.Min(float64(t.step)/float64(t.cfg.T1K), 1)
	out := make([]float64, len(t.params))
	for i, tau := range t.taus {
		if tau < 1 {
			tau = 1
		}
		out[i] = base / math.Pow(tau, p)
	}
	return out
}

// snapOf finds pm's snapshot within its stage.
func snapOf(snap []*tensor.Tensor, stage []*nn.Param, pm *nn.Param) *tensor.Tensor {
	for j, q := range stage {
		if q == pm {
			return snap[j]
		}
	}
	panic("hogwild: parameter not found in its stage")
}
