package hogwild

import (
	"math"
	"testing"

	"pipemare/internal/data"
	"pipemare/internal/model"
	"pipemare/internal/nn"
	"pipemare/internal/optim"
)

func task() (*model.Classification, []*nn.Param) {
	d := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 4, W: 4, Train: 256, Test: 64, Noise: 0.4, Seed: 1})
	c := model.NewResNetMLP(d, 16, 5, 2)
	var ps []*nn.Param
	for _, g := range c.Groups() {
		ps = append(ps, g.Params...)
	}
	return c, ps
}

func TestMeanDelayMonotone(t *testing.T) {
	// Earlier stages must have larger expected delays.
	p := 10
	prev := math.Inf(1)
	for i1 := 1; i1 <= p; i1++ {
		m := MeanDelay(i1, p, 20, 0.5)
		if m >= prev {
			t.Fatalf("mean delay must decrease with stage: stage %d has %g ≥ %g", i1, m, prev)
		}
		prev = m
	}
	if got := MeanDelay(1, 10, 20, 0.5); math.Abs(got-10) > 1e-12 {
		t.Fatalf("first-stage mean = %g, want 10", got)
	}
}

func TestSampleDelayTruncated(t *testing.T) {
	c, ps := task()
	opt := optim.NewSGD(ps, 0, 0)
	tr, err := New(c, opt, optim.Constant(0.01), Config{BatchSize: 32, TauMax: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		d := tr.sampleDelay(5)
		if d < 0 || d > 7 {
			t.Fatalf("delay %d out of [0, 7]", d)
		}
	}
}

func TestHogwildTrainsWithModerateDelay(t *testing.T) {
	c, ps := task()
	opt := optim.NewSGD(ps, 0.9, 0)
	tr, err := New(c, opt, optim.Constant(0.02), Config{
		BatchSize: 32, TauMax: 4, MeanScale: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := tr.TrainEpochs(15, nil)
	if run.Diverged {
		t.Fatal("moderate-delay Hogwild diverged")
	}
	if best := run.Best(); best < 70 {
		t.Fatalf("Hogwild best accuracy %.1f%%, want ≥ 70%%", best)
	}
}

func TestT1ImprovesHogwildAtHighDelay(t *testing.T) {
	// Figure 19's claim: with large stochastic delays and an aggressive
	// step size, T1 rescheduling yields a better (or at least as good)
	// final metric than the unrescheduled baseline.
	run := func(t1k int, seed int64) (float64, bool) {
		c, ps := task()
		opt := optim.NewSGD(ps, 0.9, 0)
		tr, err := New(c, opt, optim.Constant(0.08), Config{
			BatchSize: 32, TauMax: 24, MeanScale: 0.8, T1K: t1k, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := tr.TrainEpochs(15, nil)
		return r.Best(), r.Diverged
	}
	baseBest, baseDiv := run(0, 3)
	t1Best, t1Div := run(60, 3)
	if t1Div {
		t.Fatal("T1 run diverged")
	}
	if !baseDiv && t1Best < baseBest-2 {
		t.Fatalf("T1 best %.1f%% clearly below baseline %.1f%%", t1Best, baseBest)
	}
	if t1Best < 65 {
		t.Fatalf("T1 Hogwild best %.1f%%, want ≥ 65%%", t1Best)
	}
}

func TestHogwildConfigValidation(t *testing.T) {
	c, ps := task()
	opt := optim.NewSGD(ps, 0, 0)
	if _, err := New(c, opt, optim.Constant(0.01), Config{BatchSize: 0, TauMax: 4}); err == nil {
		t.Fatal("zero batch must error")
	}
	if _, err := New(c, opt, optim.Constant(0.01), Config{BatchSize: 32, TauMax: 0}); err == nil {
		t.Fatal("zero TauMax must error")
	}
}

func TestHogwildTausExposed(t *testing.T) {
	c, ps := task()
	opt := optim.NewSGD(ps, 0, 0)
	tr, err := New(c, opt, optim.Constant(0.01), Config{BatchSize: 32, TauMax: 10, MeanScale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	taus := tr.Taus()
	if len(taus) != len(ps) {
		t.Fatalf("taus length %d, want %d", len(taus), len(ps))
	}
	// First parameter (stage 1) carries the largest expected delay.
	for _, tau := range taus[1:] {
		if tau > taus[0] {
			t.Fatal("first stage must have the largest expected delay")
		}
	}
}
