package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pipemare/internal/nn"
)

func mkGroups(sizes ...int) []ParamGroup {
	var gs []ParamGroup
	for i, sz := range sizes {
		p := nn.NewParam("p", sz)
		gs = append(gs, ParamGroup{Name: string(rune('a' + i)), Params: []*nn.Param{p}})
	}
	return gs
}

func TestPartitionEven(t *testing.T) {
	gs := mkGroups(1, 1, 1, 1, 1, 1)
	pt, err := PartitionGroups(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2}
	for i, s := range pt.StageOf {
		if s != want[i] {
			t.Fatalf("StageOf = %v, want %v", pt.StageOf, want)
		}
	}
}

func TestPartitionOneGroupPerStage(t *testing.T) {
	gs := mkGroups(1, 2, 3, 4)
	pt, err := PartitionGroups(gs, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := pt.StageSizes()
	for i, s := range sizes {
		if s != i+1 {
			t.Fatalf("StageSizes = %v", sizes)
		}
	}
}

func TestPartitionPropertyAllStagesNonEmptyAndOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 1 + rng.Intn(40)
		p := 1 + rng.Intn(g)
		pt, err := PartitionGroups(mkGroups(make([]int, g)...), p)
		if err != nil {
			return false
		}
		// Non-decreasing stage assignment and every stage non-empty.
		prev := 0
		seen := make([]bool, p)
		for _, s := range pt.StageOf {
			if s < prev || s >= p {
				return false
			}
			prev = s
			seen[s] = true
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := PartitionGroups(nil, 1); err == nil {
		t.Fatal("empty groups must error")
	}
	if _, err := PartitionGroups(mkGroups(1, 1), 3); err == nil {
		t.Fatal("more stages than groups must error")
	}
	if _, err := PartitionGroups(mkGroups(1, 1), 0); err == nil {
		t.Fatal("zero stages must error")
	}
}

func TestFwdDelaySlotsTable1(t *testing.T) {
	// Table 1: first stage delay 2P−1 slots, last stage 1 slot.
	p := 8
	if got := FwdDelaySlots(1, p); got != 2*p-1 {
		t.Fatalf("first-stage delay = %d, want %d", got, 2*p-1)
	}
	if got := FwdDelaySlots(p, p); got != 1 {
		t.Fatalf("last-stage delay = %d, want 1", got)
	}
	// In minibatch units: (2(P−i)+1)/N.
	if got := FwdDelay(1, 8, 4); math.Abs(got-15.0/4) > 1e-15 {
		t.Fatalf("FwdDelay = %g, want 3.75", got)
	}
}

func TestClockSlotDelayMatchesTable1(t *testing.T) {
	// The realized slot gap T_b − T_f must equal 2(P−i)+1 by construction;
	// verify via the version functions instead: in steady state, the mean
	// realized delay in updates over a minibatch's microbatches equals
	// (2(P−i)+N)/N, i.e. the paper's (2(P−i)+1)/N up to the ≤1-minibatch
	// accumulation offset, and the *last* microbatch's delay is exactly
	// ⌈(2(P−i)+1)/N⌉.
	c := Clock{P: 6, N: 4}
	for stage1 := 1; stage1 <= c.P; stage1++ {
		m := 2 * (c.P - stage1)
		// Steady state: pick a late minibatch.
		t0 := 50
		sum := 0
		for j := 0; j < c.N; j++ {
			s := t0*c.N + j
			sum += c.FwdDelayUpdates(s, stage1)
		}
		wantMean := float64(m+c.N) / float64(c.N)
		if got := float64(sum) / float64(c.N); math.Abs(got-wantMean) > 1e-12 {
			t.Errorf("stage %d: mean delay %g updates, want %g", stage1, got, wantMean)
		}
		// Last microbatch of the minibatch: delay ⌈(m+1)/N⌉.
		s := t0*c.N + c.N - 1
		want := (m + 1 + c.N - 1) / c.N
		if got := c.FwdDelayUpdates(s, stage1); got != want {
			t.Errorf("stage %d: last-microbatch delay %d, want %d", stage1, got, want)
		}
	}
}

func TestClockVersionsNeverExceedCommitted(t *testing.T) {
	// The forward version needed by microbatch s must always have been
	// committed before s is processed sequentially (materialization safety).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Clock{P: 1 + rng.Intn(20), N: 1 + rng.Intn(8)}
		for s := 0; s < 200; s++ {
			for stage1 := 1; stage1 <= c.P; stage1++ {
				v := c.FwdVersion(s, stage1)
				// Sequential sim has committed ⌊(s−1)/N⌋+1 versions after
				// processing microbatches 0..s−1 (commit after each full
				// minibatch); available = ⌊s/N⌋ counting version 0 pushes.
				available := s / c.N
				if v > available {
					return false
				}
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClockLastStageNearZeroDelay(t *testing.T) {
	c := Clock{P: 5, N: 4}
	// Last stage, last microbatch of a minibatch: delay exactly 1 update.
	s := 10*c.N + c.N - 1
	if got := c.FwdDelayUpdates(s, c.P); got != 1 {
		t.Fatalf("last-stage delay = %d updates, want 1", got)
	}
	// Backward version is stage independent and equals ⌊s/N⌋.
	if got := c.BwdVersion(s); got != 10 {
		t.Fatalf("BwdVersion = %d, want 10", got)
	}
}

func TestVersionStorePushGet(t *testing.T) {
	p := nn.NewParam("w", 2)
	p.Data.Data[0] = 1
	stages := [][]*nn.Param{{p}}
	vs := NewVersionStore(stages, 10)
	if vs.Latest(0) != 0 {
		t.Fatalf("latest = %d, want 0", vs.Latest(0))
	}
	for v := 1; v <= 5; v++ {
		p.Data.Data[0] = float64(v + 1)
		vs.Push()
	}
	for v := 0; v <= 5; v++ {
		got := vs.Get(0, v)[0].Data[0]
		if got != float64(v+1) {
			t.Fatalf("version %d = %g, want %d", v, got, v+1)
		}
	}
	// Snapshots are copies: mutating the live param must not change them.
	p.Data.Data[0] = 99
	if vs.Get(0, 5)[0].Data[0] == 99 {
		t.Fatal("snapshots must be deep copies")
	}
}

func TestVersionStorePruning(t *testing.T) {
	p := nn.NewParam("w", 1)
	vs := NewVersionStore([][]*nn.Param{{p}}, 3)
	for v := 1; v <= 10; v++ {
		p.Data.Data[0] = float64(v)
		vs.Push()
	}
	if vs.Latest(0) != 10 {
		t.Fatalf("latest = %d", vs.Latest(0))
	}
	// Requests below the window clamp to the oldest retained version (8).
	if got := vs.Get(0, 0)[0].Data[0]; got != 8 {
		t.Fatalf("clamped old version = %g, want 8", got)
	}
	// Requests beyond the newest clamp to the latest.
	if got := vs.Get(0, 99)[0].Data[0]; got != 10 {
		t.Fatalf("clamped new version = %g, want 10", got)
	}
}

// --- cost-balanced partitioning ---

// bruteBottleneck finds the optimal bottleneck cost by enumerating every
// contiguous split of g groups into p non-empty stages.
func bruteBottleneck(costs []float64, p int) float64 {
	g := len(costs)
	best := math.Inf(1)
	// Choose p−1 cut positions in 1..g−1 via recursion.
	var rec func(start, stagesLeft int, worst float64)
	rec = func(start, stagesLeft int, worst float64) {
		if stagesLeft == 1 {
			sum := 0.0
			for _, c := range costs[start:] {
				sum += c
			}
			if m := math.Max(worst, sum); m < best {
				best = m
			}
			return
		}
		sum := 0.0
		// The stage must leave at least stagesLeft−1 groups for the rest.
		for end := start + 1; end <= g-(stagesLeft-1); end++ {
			sum += costs[end-1]
			rec(end, stagesLeft-1, math.Max(worst, sum))
		}
	}
	rec(0, p, 0)
	return best
}

func stageCostsOf(pt *Partition, costs []float64) []float64 { return pt.StageCosts(costs) }

func TestPartitionByCostMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g := 2 + rng.Intn(9)
		p := 1 + rng.Intn(g)
		costs := make([]float64, g)
		for i := range costs {
			if rng.Intn(5) == 0 {
				costs[i] = 0 // exercise zero-cost groups
			} else {
				costs[i] = math.Floor(rng.Float64()*100) + 1
			}
		}
		pt, err := PartitionGroupsByCost(mkGroups(make([]int, g)...), costs, p)
		if err != nil {
			t.Fatal(err)
		}
		got := 0.0
		for _, c := range stageCostsOf(pt, costs) {
			if c > got {
				got = c
			}
		}
		want := bruteBottleneck(costs, p)
		if got != want {
			t.Fatalf("trial %d (g=%d p=%d costs=%v): DP bottleneck %g, brute force %g (stageOf=%v)",
				trial, g, p, costs, got, want, pt.StageOf)
		}
	}
}

func TestPartitionByCostEdgeCases(t *testing.T) {
	// Single group, single stage.
	pt, err := PartitionGroupsByCost(mkGroups(1), []float64{5}, 1)
	if err != nil || pt.StageOf[0] != 0 {
		t.Fatalf("single group: %v %v", pt, err)
	}
	// One stage swallows everything.
	pt, err = PartitionGroupsByCost(mkGroups(1, 1, 1), []float64{3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pt.StageOf {
		if s != 0 {
			t.Fatalf("p=1 StageOf = %v", pt.StageOf)
		}
	}
	// P == groups: exactly one group per stage regardless of cost skew.
	pt, err = PartitionGroupsByCost(mkGroups(1, 1, 1, 1), []float64{100, 0, 0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range pt.StageOf {
		if s != i {
			t.Fatalf("p=g StageOf = %v", pt.StageOf)
		}
	}
	// All-zero costs still yield a valid all-stages-non-empty partition.
	pt, err = PartitionGroupsByCost(mkGroups(1, 1, 1, 1, 1), make([]float64, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, 3)
	prev := 0
	for _, s := range pt.StageOf {
		if s < prev {
			t.Fatalf("stages regress: %v", pt.StageOf)
		}
		prev = s
		seen[s]++
	}
	for s, n := range seen {
		if n == 0 {
			t.Fatalf("stage %d empty: %v", s, pt.StageOf)
		}
	}
}

func TestPartitionByCostErrors(t *testing.T) {
	gs := mkGroups(1, 1, 1)
	if _, err := PartitionGroupsByCost(gs, []float64{1, 2}, 2); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := PartitionGroupsByCost(gs, []float64{1, -1, 2}, 2); err == nil {
		t.Fatal("negative cost must fail")
	}
	if _, err := PartitionGroupsByCost(gs, []float64{1, math.NaN(), 2}, 2); err == nil {
		t.Fatal("NaN cost must fail")
	}
	if _, err := PartitionGroupsByCost(gs, []float64{1, 1, 1}, 4); err == nil {
		t.Fatal("p > groups must fail")
	}
	if _, err := PartitionGroupsByCost(gs, []float64{1, 1, 1}, 0); err == nil {
		t.Fatal("p = 0 must fail")
	}
	if _, err := PartitionGroupsByCost(nil, nil, 1); err == nil {
		t.Fatal("no groups must fail")
	}
}

// TestPartitionByCostDeterministicTies pins the tie-breaking rule: equal
// inputs always produce the identical partition, including cost vectors
// where many splits share the optimal bottleneck.
func TestPartitionByCostDeterministicTies(t *testing.T) {
	costs := []float64{1, 1, 1, 1, 1, 1} // every 2-2-2 ish split ties
	var first []int
	for trial := 0; trial < 20; trial++ {
		pt, err := PartitionGroupsByCost(mkGroups(1, 1, 1, 1, 1, 1), costs, 3)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = append([]int(nil), pt.StageOf...)
			continue
		}
		for i := range first {
			if pt.StageOf[i] != first[i] {
				t.Fatalf("trial %d: StageOf = %v, first = %v", trial, pt.StageOf, first)
			}
		}
	}
	// The tied uniform case must still be perfectly balanced.
	pt, _ := PartitionGroupsByCost(mkGroups(1, 1, 1, 1, 1, 1), costs, 3)
	for _, c := range stageCostsOf(pt, costs) {
		if c != 2 {
			t.Fatalf("uniform tie not balanced: %v", stageCostsOf(pt, costs))
		}
	}
}

func TestPartitionByCostBeatsEvenOnSkewedCosts(t *testing.T) {
	// A transformer-like profile: a huge attention-core group between
	// cheap norm/bias groups. Even-by-count splits land the heavy group
	// with neighbours; cost balancing isolates it.
	costs := []float64{1, 1, 100, 1, 1, 1}
	gs := mkGroups(1, 1, 1, 1, 1, 1)
	even, err := PartitionGroups(gs, 3)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := PartitionGroupsByCost(gs, costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ib, ie := Imbalance(bal.StageCosts(costs)), Imbalance(even.StageCosts(costs)); ib >= ie {
		t.Fatalf("cost partition imbalance %.3f not better than even %.3f", ib, ie)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{2, 2, 2}); got != 1 {
		t.Fatalf("balanced imbalance = %g, want 1", got)
	}
	if got := Imbalance([]float64{4, 1, 1}); got != 2 {
		t.Fatalf("skewed imbalance = %g, want 2", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 1 {
		t.Fatalf("zero-cost imbalance = %g, want 1", got)
	}
}
