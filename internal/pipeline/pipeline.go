// Package pipeline implements the execution model of §2 of the PipeMare
// paper: partitioning model weights into P pipeline stages, the
// microbatch-exact timing of a bubble-free pipeline (which yields the
// Table 1 delays), and the per-stage weight-version store that the paper's
// own simulator calls "a queue of weights for each individual pipeline
// stage".
//
// Timing model (1-indexed stages i ∈ {1..P}, global microbatch counter s):
//
//	forward  of microbatch s at stage i occupies slot  T_f = s + i − 1
//	backward of microbatch s at stage i occupies slot  T_b = s + 2P − i
//
// so the weight read in the forward pass is T_b − T_f = 2(P−i)+1 microbatch
// slots older than the point where its gradient is applied — exactly the
// paper's τ_fwd. Stage i commits the optimizer update for minibatch t when
// the backward of the minibatch's last microbatch passes it, at slot
// t·N + N − 1 + 2P − i.
package pipeline

import (
	"fmt"
	"math"

	"pipemare/internal/nn"
	"pipemare/internal/tensor"
)

// ParamGroup is a set of parameters that must be assigned to the same
// pipeline stage — the paper always keeps the weight and bias of one layer
// together ("treating the weight and bias in the same layer as a single
// model weight").
type ParamGroup struct {
	Name   string
	Params []*nn.Param
}

// Size returns the number of scalar weights in the group.
func (g ParamGroup) Size() int { return nn.TotalSize(g.Params) }

// Partition is an assignment of param groups to P contiguous stages.
type Partition struct {
	P      int
	Groups []ParamGroup
	// StageOf maps group index to its (0-indexed) stage.
	StageOf []int
	// Stages lists the parameters of each stage in forward order.
	Stages [][]*nn.Param
}

// PartitionGroups assigns the groups, in topological (given) order, evenly
// to P stages: group g goes to stage ⌊g·P/G⌋, which is the paper's "divide
// these model weights evenly into P stages". P must be between 1 and the
// number of groups so every stage holds at least one model weight.
func PartitionGroups(groups []ParamGroup, p int) (*Partition, error) {
	g := len(groups)
	if g == 0 {
		return nil, fmt.Errorf("pipeline: no parameter groups to partition")
	}
	if p < 1 || p > g {
		return nil, fmt.Errorf("pipeline: cannot split %d weight groups into %d stages", g, p)
	}
	part := &Partition{P: p, Groups: groups, StageOf: make([]int, g), Stages: make([][]*nn.Param, p)}
	for i, grp := range groups {
		s := i * p / g
		part.StageOf[i] = s
		part.Stages[s] = append(part.Stages[s], grp.Params...)
	}
	return part, nil
}

// PartitionMode selects how weight groups are split into stages.
type PartitionMode int

// Partition modes.
const (
	// PartitionEven splits by group count — the paper's "divide these
	// model weights evenly into P stages" (the historical default).
	PartitionEven PartitionMode = iota
	// PartitionCost balances the analytic per-group compute cost
	// (nn.Program.GroupCosts, or scalar weight counts for monolithic
	// tasks) across stages, minimizing the bottleneck stage.
	PartitionCost
	// PartitionProfile balances measured per-group wall time from a
	// one-microbatch profiling pass (nn.Program.MeasureGroupCosts).
	PartitionProfile
)

// String names the mode (the spelling used by bench records and flags).
func (m PartitionMode) String() string {
	switch m {
	case PartitionEven:
		return "even"
	case PartitionCost:
		return "cost"
	case PartitionProfile:
		return "profile"
	}
	return fmt.Sprintf("PartitionMode(%d)", int(m))
}

// PartitionGroupsByCost assigns the groups, in topological (given) order,
// to p contiguous stages so that the maximum per-stage cost is minimized —
// the classic linear-partition dynamic program (the same bottleneck
// objective PipeDream's profiler-driven planner optimizes). costs[g] is
// group g's relative cost (any non-negative scale); every stage receives
// at least one group. Ties are broken deterministically: among splits with
// equal bottleneck cost, every stage boundary is placed as early as
// possible, so equal inputs always yield the identical partition.
func PartitionGroupsByCost(groups []ParamGroup, costs []float64, p int) (*Partition, error) {
	g := len(groups)
	if g == 0 {
		return nil, fmt.Errorf("pipeline: no parameter groups to partition")
	}
	if p < 1 || p > g {
		return nil, fmt.Errorf("pipeline: cannot split %d weight groups into %d stages", g, p)
	}
	if len(costs) != g {
		return nil, fmt.Errorf("pipeline: %d costs for %d weight groups", len(costs), g)
	}
	for i, c := range costs {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("pipeline: group %d (%s) has invalid cost %g", i, groups[i].Name, c)
		}
	}
	stageOf := boundaryDP(costs, p)
	part := &Partition{P: p, Groups: groups, StageOf: stageOf, Stages: make([][]*nn.Param, p)}
	for i, grp := range groups {
		part.Stages[stageOf[i]] = append(part.Stages[stageOf[i]], grp.Params...)
	}
	return part, nil
}

// boundaryDP solves the linear-partition problem: split costs[0..g) into p
// contiguous non-empty runs minimizing the maximum run sum. It returns the
// stage index of every group. dp[k][i] is the best achievable bottleneck
// using stages 0..k to cover groups 0..i; cut[k][i] is the first group of
// stage k in that solution. Scanning split points in ascending order with
// strict improvement makes tie-breaking deterministic (earliest cuts win).
func boundaryDP(costs []float64, p int) []int {
	g := len(costs)
	prefix := make([]float64, g+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	sum := func(lo, hi int) float64 { return prefix[hi] - prefix[lo] } // groups [lo, hi)

	dp := make([][]float64, p)
	cut := make([][]int, p)
	for k := range dp {
		dp[k] = make([]float64, g)
		cut[k] = make([]int, g)
	}
	for i := 0; i < g; i++ {
		dp[0][i] = sum(0, i+1)
	}
	for k := 1; k < p; k++ {
		for i := k; i < g; i++ {
			best := math.Inf(1)
			bestJ := k
			// Stage k covers groups [j, i]; stages 0..k−1 cover [0, j).
			for j := k; j <= i; j++ {
				b := math.Max(dp[k-1][j-1], sum(j, i+1))
				if b < best {
					best, bestJ = b, j
				}
			}
			dp[k][i] = best
			cut[k][i] = bestJ
		}
	}

	stageOf := make([]int, g)
	hi := g // one past the last group of the stage being reconstructed
	for k := p - 1; k >= 0; k-- {
		lo := 0
		if k > 0 {
			lo = cut[k][hi-1]
		}
		for i := lo; i < hi; i++ {
			stageOf[i] = k
		}
		hi = lo
	}
	return stageOf
}

// StageCosts sums the given per-group costs over the partition's stages.
func (pt *Partition) StageCosts(costs []float64) []float64 {
	out := make([]float64, pt.P)
	for g, s := range pt.StageOf {
		out[s] += costs[g]
	}
	return out
}

// Imbalance returns max/mean of the per-stage costs — 1.0 is a perfectly
// balanced pipeline; the bottleneck stage caps overlap at mean/max of the
// ideal throughput. A zero total reports 1.
func Imbalance(stageCosts []float64) float64 {
	max, total := 0.0, 0.0
	for _, c := range stageCosts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 1
	}
	return max / (total / float64(len(stageCosts)))
}

// Params returns all parameters in forward order.
func (pt *Partition) Params() []*nn.Param {
	var ps []*nn.Param
	for _, st := range pt.Stages {
		ps = append(ps, st...)
	}
	return ps
}

// StageSizes returns the scalar weight count per stage.
func (pt *Partition) StageSizes() []int {
	out := make([]int, pt.P)
	for s, ps := range pt.Stages {
		out[s] = nn.TotalSize(ps)
	}
	return out
}

// StageOfParam returns, for every parameter in forward order, its
// (0-indexed) stage.
func (pt *Partition) StageOfParam() []int {
	var out []int
	for s, ps := range pt.Stages {
		for range ps {
			out = append(out, s)
		}
	}
	return out
}

// FwdDelaySlots returns the forward delay in microbatch slots for
// 1-indexed stage i of a P-stage bubble-free pipeline: 2(P−i)+1 (Table 1).
func FwdDelaySlots(stage1, p int) int { return 2*(p-stage1) + 1 }

// FwdDelay returns the forward delay in minibatch (optimizer-step) units:
// (2(P−i)+1)/N for 1-indexed stage i with N microbatches per minibatch.
func FwdDelay(stage1, p, n int) float64 {
	return float64(FwdDelaySlots(stage1, p)) / float64(n)
}

// Clock converts global microbatch indices into the weight versions
// visible at each pipeline slot.
type Clock struct {
	P int // pipeline stages
	N int // microbatches per minibatch
}

// FwdVersion returns the number of optimizer updates committed at
// (1-indexed) stage i before the forward slot of global microbatch s.
func (c Clock) FwdVersion(s, stage1 int) int {
	num := s + 2*stage1 - 2*c.P - c.N
	if num < 0 {
		return 0
	}
	return num/c.N + 1
}

// BwdVersion returns the number of updates committed at any stage before
// the backward slot of global microbatch s (exclusive of the update this
// microbatch's own minibatch will commit): ⌊s/N⌋. It is stage-independent,
// which is why PipeMare's backward pass can simply read the live weights.
func (c Clock) BwdVersion(s int) int { return s / c.N }

// Minibatch returns the minibatch index of global microbatch s.
func (c Clock) Minibatch(s int) int { return s / c.N }

// FwdDelayUpdates returns the realized delay, in optimizer updates, between
// the weights read in the forward slot of microbatch s at stage i and the
// update that consumes its gradient (update index ⌊s/N⌋+1).
func (c Clock) FwdDelayUpdates(s, stage1 int) int {
	return c.Minibatch(s) + 1 - c.FwdVersion(s, stage1)
}

// VersionStore keeps per-stage snapshots of stage weights, indexed by
// update version. Version 0 is the initial weights; version v is the state
// after v optimizer updates. Old versions outside the pipeline's maximum
// lookback window are pruned automatically.
type VersionStore struct {
	stages [][]*nn.Param
	// snaps[stage][k] is the snapshot for version base+k.
	snaps [][][]*tensor.Tensor
	base  []int
	keep  int
}

// NewVersionStore snapshots the current weights of each stage as version 0.
// keep is the number of most recent versions retained (must cover the
// pipeline's maximum lookback, ⌈(2P+N)/N⌉+1).
func NewVersionStore(stages [][]*nn.Param, keep int) *VersionStore {
	if keep < 2 {
		keep = 2
	}
	vs := &VersionStore{stages: stages, keep: keep,
		snaps: make([][][]*tensor.Tensor, len(stages)), base: make([]int, len(stages))}
	for s := range stages {
		vs.push(s)
	}
	return vs
}

func (vs *VersionStore) push(stage int) {
	snap := make([]*tensor.Tensor, len(vs.stages[stage]))
	for i, p := range vs.stages[stage] {
		snap[i] = p.Data.Clone()
	}
	vs.snaps[stage] = append(vs.snaps[stage], snap)
	if len(vs.snaps[stage]) > vs.keep {
		drop := len(vs.snaps[stage]) - vs.keep
		vs.snaps[stage] = vs.snaps[stage][drop:]
		vs.base[stage] += drop
	}
}

// Push snapshots the current (just-updated) weights of every stage as the
// next version.
func (vs *VersionStore) Push() {
	for s := range vs.stages {
		vs.push(s)
	}
}

// PushStage snapshots one stage's current weights as its next version.
// Distinct stages may be pushed concurrently: each stage's ring is
// independent state.
func (vs *VersionStore) PushStage(stage int) { vs.push(stage) }

// Get returns the snapshot tensors of the given stage at the given
// version, clamped to the available window. The returned tensors are owned
// by the store and must not be mutated.
func (vs *VersionStore) Get(stage, version int) []*tensor.Tensor {
	k := version - vs.base[stage]
	if k < 0 {
		k = 0
	}
	if k >= len(vs.snaps[stage]) {
		k = len(vs.snaps[stage]) - 1
	}
	return vs.snaps[stage][k]
}

// Latest returns the most recent version number stored.
func (vs *VersionStore) Latest(stage int) int {
	return vs.base[stage] + len(vs.snaps[stage]) - 1
}

// History returns a stage's full version ring: the oldest retained
// version number and the live snapshots, oldest to newest. The tensors
// are owned by the store — checkpoint writers read, never mutate.
func (vs *VersionStore) History(stage int) (base int, snaps [][]*tensor.Tensor) {
	return vs.base[stage], vs.snaps[stage]
}

// RestoreStage replaces a stage's version ring wholesale with deep
// copies of snaps (versions base, base+1, ...) — the checkpoint-restore
// path. Restoring the ring, not just the latest weights, keeps
// historical-version installs after a resume bit-identical to the
// checkpointed run's.
func (vs *VersionStore) RestoreStage(stage, base int, snaps [][]*tensor.Tensor) {
	ring := make([][]*tensor.Tensor, len(snaps))
	for k, snap := range snaps {
		ring[k] = make([]*tensor.Tensor, len(snap))
		for i, t := range snap {
			ring[k][i] = t.Clone()
		}
	}
	vs.snaps[stage] = ring
	vs.base[stage] = base
}
