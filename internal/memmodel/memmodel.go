// Package memmodel implements the weight/optimizer and activation memory
// models of the PipeMare paper: the Table 1 weight-memory column, the
// Table 2 weight+optimizer accounting (footnote 2: T2 adds one
// weight-sized buffer, +33% on SGD and +25% on Adam), the Table 4/5
// activation-memory formulas with and without PipeMare Recompute, and the
// per-stage activation footprint of Figure 6.
package memmodel

import "math"

// WeightOptimizer returns the weight+optimizer memory of a method in
// weight-sized units (multiples of W).
//
//   - optCopies is the optimizer's buffer count including master weights
//     and gradient (3 for momentum SGD, 4 for Adam; optim.Optimizer's
//     StateCopies).
//   - stageSizes are the per-stage scalar weight counts (used for
//     PipeDream's stash); n is the number of microbatches per minibatch.
//   - t2 adds the discrepancy-correction buffer (one extra weight copy).
func WeightOptimizer(m Method, optCopies int, stageSizes []int, n int, t2 bool) float64 {
	total := 0
	for _, s := range stageSizes {
		total += s
	}
	w := float64(total)
	base := float64(optCopies) * w
	switch m {
	case PipeDream:
		return base + float64(StashExact(stageSizes, n))
	case PipeMare:
		if t2 {
			return base + w
		}
		return base
	default: // GPipe
		return base
	}
}

// Method mirrors the pipeline methods for memory lookups.
type Method int

// Method values.
const (
	GPipe Method = iota
	PipeDream
	PipeMare
)

// StashExact returns PipeDream's weight-stash size in scalars: stage i
// (1-indexed) keeps ⌈(2(P−i)+1)/N⌉ stashed copies of its weights — one per
// distinct in-flight weight version.
func StashExact(stageSizes []int, n int) int {
	p := len(stageSizes)
	total := 0
	for i1 := 1; i1 <= p; i1++ {
		copies := (2*(p-i1) + 1 + n - 1) / n
		total += stageSizes[i1-1] * copies
	}
	return total
}

// StashTable1 returns the Table 1 closed-form stash approximation W·P/N in
// scalars.
func StashTable1(totalWeights, p, n int) float64 {
	return float64(totalWeights) * float64(p) / float64(n)
}

// Activation memory, Table 4 (fine-grained regime P = L), in units of M
// (activation size per microbatch per layer). These are the asymptotic
// leading terms the paper tabulates.

// ActGPipe is M·P·N.
func ActGPipe(p, n int) float64 { return float64(p) * float64(n) }

// ActGPipeRecompute is M·P·N^½.
func ActGPipeRecompute(p, n int) float64 { return float64(p) * math.Sqrt(float64(n)) }

// ActPipeMare is M·P² (also PipeDream's).
func ActPipeMare(p int) float64 { return float64(p) * float64(p) }

// ActPipeMareRecompute is M·P^{3/2}, attained at segment size S = √P.
func ActPipeMareRecompute(p int) float64 { return math.Pow(float64(p), 1.5) }

// RecomputeRatio returns the Table 5 activation-memory ratio of PipeMare
// with recompute to PipeMare without: P^{3/2}/P² = 1/√P
// (0.097 at P = 107, 0.104 at P = 93, 0.105 at P = 91).
func RecomputeRatio(p int) float64 { return 1 / math.Sqrt(float64(p)) }

// OptimalSegment returns the segment size minimizing PipeMare-with-
// recompute activation memory, S = √P (rounded to nearest integer ≥ 1).
func OptimalSegment(p int) int {
	s := int(math.Round(math.Sqrt(float64(p))))
	if s < 1 {
		s = 1
	}
	return s
}

// StageActivations returns the Figure 6 per-stage cached-activation counts
// for a P-stage PipeMare pipeline without recompute: stage i (1-indexed)
// caches 2(P−i)+1 microbatch activations between its forward and backward.
func StageActivations(p int) []int {
	out := make([]int, p)
	for i1 := 1; i1 <= p; i1++ {
		out[i1-1] = 2*(p-i1) + 1
	}
	return out
}

// StageActivationsRecompute returns the Figure 6 per-stage counts with
// PipeMare Recompute and segments of size s: the first stage of each
// segment additionally caches its segment input for 2(P−b) slots, and
// stage at offset k within a segment of length L holds a recompute buffer
// of 2(L−k)−1 microbatches.
func StageActivationsRecompute(p, s int) []int {
	out := make([]int, p)
	for b := 0; b < p; b += s {
		l := s
		if b+l > p {
			l = p - b
		}
		for k := 0; k < l; k++ {
			out[b+k] = 2*(l-k) - 1
		}
		out[b] += 2 * (p - (b + 1))
	}
	return out
}

// TotalActivationsRecompute sums StageActivationsRecompute, matching the
// Appendix A.2 estimate O(M·P·(P/S + S)).
func TotalActivationsRecompute(p, s int) int {
	total := 0
	for _, v := range StageActivationsRecompute(p, s) {
		total += v
	}
	return total
}
