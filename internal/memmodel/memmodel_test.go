package memmodel

import (
	"math"
	"testing"
)

func TestRecomputeRatioMatchesTable5(t *testing.T) {
	// Table 5: 0.097X at P=107, 0.104X at P=93, 0.105X at P=91.
	cases := []struct {
		p    int
		want float64
	}{{107, 0.097}, {93, 0.104}, {91, 0.105}}
	for _, c := range cases {
		if got := RecomputeRatio(c.p); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("RecomputeRatio(%d) = %.4f, want %.3f (Table 5)", c.p, got, c.want)
		}
	}
}

func TestOptimalSegmentIsSqrtP(t *testing.T) {
	if got := OptimalSegment(16); got != 4 {
		t.Fatalf("OptimalSegment(16) = %d, want 4", got)
	}
	if got := OptimalSegment(1); got != 1 {
		t.Fatalf("OptimalSegment(1) = %d, want 1", got)
	}
	// S = √P minimizes the total recompute activation count over segment
	// sizes (within the integer grid).
	p := 64
	best := OptimalSegment(p)
	bestTotal := TotalActivationsRecompute(p, best)
	for s := 1; s <= p; s++ {
		if tot := TotalActivationsRecompute(p, s); tot < bestTotal-p {
			// Allow small integer-effects slack of one activation per stage.
			t.Fatalf("segment %d total %d beats √P segment %d total %d", s, tot, best, bestTotal)
		}
	}
}

func TestStageActivationsNoRecompute(t *testing.T) {
	// Figure 6 orange+green: stage i caches 2(P−i)+1, so first stage of a
	// 16-stage pipeline caches 31 and the last 1.
	acts := StageActivations(16)
	if acts[0] != 31 || acts[15] != 1 {
		t.Fatalf("StageActivations(16) = %v", acts)
	}
	// Strictly decreasing by 2.
	for i := 1; i < len(acts); i++ {
		if acts[i] != acts[i-1]-2 {
			t.Fatal("activation counts must decrease by 2 per stage")
		}
	}
}

func TestStageActivationsRecomputeFigure6(t *testing.T) {
	// Figure 6 example: 16 stages, 4 segments of 4. Segment heads carry the
	// long-lived input cache 2(P−b−1)... plus their recompute buffer.
	acts := StageActivationsRecompute(16, 4)
	if len(acts) != 16 {
		t.Fatalf("len = %d", len(acts))
	}
	// Within each segment, non-head stages hold 2(L−k)−1 ∈ {5,3,1}.
	for b := 0; b < 16; b += 4 {
		if acts[b+1] != 5 || acts[b+2] != 3 || acts[b+3] != 1 {
			t.Fatalf("segment at %d = %v", b, acts[b:b+4])
		}
		wantHead := 2*(4-0) - 1 + 2*(16-(b+1))
		if acts[b] != wantHead {
			t.Fatalf("head at %d = %d, want %d", b, acts[b], wantHead)
		}
	}
	// Recompute total must be far below the no-recompute total.
	tot := TotalActivationsRecompute(16, 4)
	noRec := 0
	for _, v := range StageActivations(16) {
		noRec += v
	}
	if tot >= noRec {
		t.Fatalf("recompute total %d not below plain total %d", tot, noRec)
	}
}

func TestTable4AsymptoticOrdering(t *testing.T) {
	// Table 4 at P = L = 100, N = 16: each recompute variant beats its
	// plain counterpart, and PipeMare costs more than GPipe within each
	// variant (P > N).
	p, n := 100, 16
	gpr := ActGPipeRecompute(p, n)
	gp := ActGPipe(p, n)
	pmr := ActPipeMareRecompute(p)
	pm := ActPipeMare(p)
	if !(gpr < gp && pmr < pm && pm > gp && pmr > gpr) {
		t.Fatalf("ordering violated: gpr=%g gp=%g pmr=%g pm=%g", gpr, gp, pmr, pm)
	}
	// Exact values.
	if gp != 1600 || pm != 10000 {
		t.Fatalf("GPipe %g want 1600; PipeMare %g want 10000", gp, pm)
	}
	if math.Abs(pmr-1000) > 1e-9 {
		t.Fatalf("PipeMare+recompute = %g, want P^1.5 = 1000", pmr)
	}
}

func TestStashExact(t *testing.T) {
	// P=4 equal stages of 10 weights, N=2: copies per stage are
	// ⌈7/2⌉,⌈5/2⌉,⌈3/2⌉,⌈1/2⌉ = 4,3,2,1 → 100 scalars.
	got := StashExact([]int{10, 10, 10, 10}, 2)
	if got != 100 {
		t.Fatalf("StashExact = %d, want 100", got)
	}
	// N=1 (no microbatching): copies are 7,5,3,1 → 160.
	if got := StashExact([]int{10, 10, 10, 10}, 1); got != 160 {
		t.Fatalf("StashExact N=1 = %d, want 160", got)
	}
}

func TestStashGrowsWithStagesAndShrinksWithN(t *testing.T) {
	eq := func(p int) []int {
		s := make([]int, p)
		for i := range s {
			s[i] = 100
		}
		return s
	}
	if StashExact(eq(16), 4) <= StashExact(eq(8), 4)*3/2 {
		t.Fatal("stash must grow superlinearly-ish with P at fixed per-stage size")
	}
	if StashExact(eq(8), 8) >= StashExact(eq(8), 2) {
		t.Fatal("stash must shrink with more microbatches")
	}
}

func TestStashTable1Approximation(t *testing.T) {
	// The Table 1 closed form W·P/N approximates the exact stash for
	// uniform stages within ~1.5×.
	p, n, per := 32, 4, 100
	sizes := make([]int, p)
	for i := range sizes {
		sizes[i] = per
	}
	exact := float64(StashExact(sizes, n))
	approx := StashTable1(p*per, p, n)
	if exact < approx*0.8 || exact > approx*1.6 {
		t.Fatalf("exact %g vs Table 1 approx %g diverge too much", exact, approx)
	}
}

func TestWeightOptimizerTable2Ratios(t *testing.T) {
	// Footnote 2 accounting: with momentum SGD (3 copies), PipeMare+T2 is
	// 4/3 ≈ 1.33× the GPipe base; with Adam (4 copies) it is 5/4 = 1.25×.
	sizes := []int{100, 100, 100, 100}
	gp := WeightOptimizer(GPipe, 3, sizes, 4, false)
	pmT2 := WeightOptimizer(PipeMare, 3, sizes, 4, true)
	if r := pmT2 / gp; math.Abs(r-4.0/3) > 1e-12 {
		t.Fatalf("SGD T2 ratio = %g, want 1.333 (Table 2)", r)
	}
	gpA := WeightOptimizer(GPipe, 4, sizes, 4, false)
	pmA := WeightOptimizer(PipeMare, 4, sizes, 4, true)
	if r := pmA / gpA; math.Abs(r-1.25) > 1e-12 {
		t.Fatalf("Adam T2 ratio = %g, want 1.25 (Table 2)", r)
	}
	// PipeMare without T2 costs exactly the GPipe base.
	if WeightOptimizer(PipeMare, 3, sizes, 4, false) != gp {
		t.Fatal("PipeMare without T2 must equal the base")
	}
	// PipeDream exceeds everything.
	pd := WeightOptimizer(PipeDream, 3, sizes, 4, false)
	if pd <= pmT2 {
		t.Fatalf("PipeDream %g must exceed PipeMare+T2 %g", pd, pmT2)
	}
}
