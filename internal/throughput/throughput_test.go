package throughput

import (
	"math"
	"testing"
)

func TestTable1GPipe(t *testing.T) {
	// N/(N+P−1): paper's bubble formula.
	if got := Table1GPipe(1, 8); got != 1 {
		t.Fatalf("single-stage GPipe throughput = %g, want 1", got)
	}
	if got := Table1GPipe(8, 8); math.Abs(got-8.0/15) > 1e-15 {
		t.Fatalf("GPipe(P=8,N=8) = %g, want 8/15", got)
	}
	// More stages → more bubble → lower throughput.
	if Table1GPipe(16, 8) >= Table1GPipe(8, 8) {
		t.Fatal("throughput must decrease with stages")
	}
	if Table1BubbleFree() != 1 {
		t.Fatal("bubble-free throughput must be 1")
	}
}

func TestGPipeOptimalIsPoint3(t *testing.T) {
	// Appendix A.3 reports maximum relative throughput 0.3. The paper
	// states the optimizer as α = √(3/2), but that point lies outside the
	// domain of its case 3 (3/2 < α < 3); the true optimum of the stated
	// piecewise latency model is exactly 3/10 at the case boundary
	// α = 3/2, which matches the paper's reported throughput of 0.3.
	alpha, thr := GPipeOptimal()
	if math.Abs(alpha-1.5) > 0.01 {
		t.Fatalf("optimal α = %g, want 3/2", alpha)
	}
	if math.Abs(thr-0.3) > 1e-6 {
		t.Fatalf("optimal throughput = %g, want exactly 0.3", thr)
	}
}

func TestGPipeCases(t *testing.T) {
	// Case 1 (α ≥ 3): latency/P = α+1, best 4 at α=3 → throughput 0.25.
	if got := GPipeRelative(3); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("GPipeRelative(3) = %g, want 0.25", got)
	}
	if got := GPipeRelative(6); math.Abs(got-1.0/7) > 1e-12 {
		t.Fatalf("GPipeRelative(6) = %g, want 1/7", got)
	}
	// Case 2 (α ≤ 3/2): latency/P = 2(1+1/α), best at α=3/2 → 3/10.
	if got := GPipeRelative(1.5); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("GPipeRelative(1.5) = %g, want 0.3", got)
	}
	if got := GPipeRelative(1); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("GPipeRelative(1) = %g, want 0.25", got)
	}
}

func TestGPipeOptimalRecomputeIsPoint29(t *testing.T) {
	// Appendix A.3 reports 0.29 with recompute via min latency (7/4+√3)P.
	// As with the plain case, that optimizer (α = 2/√3) violates its case
	// domain; the true optimum of the stated model is 2/7 ≈ 0.286 at the
	// boundary α = 4/3 — still 0.29 at the paper's reported precision.
	alpha, thr := GPipeOptimalRecompute()
	if math.Abs(alpha-4.0/3) > 0.01 {
		t.Fatalf("recompute optimal α = %g, want 4/3", alpha)
	}
	if math.Abs(thr-2.0/7) > 1e-6 {
		t.Fatalf("recompute optimum = %g, want exactly 2/7", thr)
	}
	if math.Abs(thr-0.29) > 0.01 {
		t.Fatalf("recompute optimum = %g, paper reports 0.29", thr)
	}
}

func TestRecomputeOptimumBelowPlain(t *testing.T) {
	_, plain := GPipeOptimal()
	_, rec := GPipeOptimalRecompute()
	if rec >= plain {
		t.Fatalf("recompute optimum %g must be below plain %g", rec, plain)
	}
}

func TestEndToEnd(t *testing.T) {
	if EndToEnd(GPipe) != PaperGPipeThroughput {
		t.Fatal("GPipe end-to-end throughput must be 0.3")
	}
	if EndToEnd(PipeDream) != 1 || EndToEnd(PipeMare) != 1 {
		t.Fatal("async methods run at 1.0")
	}
}

func TestGPipeRelativeZeroAlpha(t *testing.T) {
	if GPipeRelative(0) != 0 || GPipeRelativeRecompute(-1) != 0 {
		t.Fatal("non-positive α must give zero throughput")
	}
}
