// Package throughput implements the analytic pipeline throughput models of
// §2.2 and Appendix A.3 of the PipeMare paper: Table 1 normalized
// throughput, the equal-budget GPipe-vs-PipeMare latency analysis (optimum
// 0.3 at microbatch ratio α = √(3/2)), and its recompute variant (0.29).
// The paper's own time-to-accuracy numbers are computed from this model,
// so this package is the reproduction of those columns, not a proxy.
package throughput

import "math"

// Table1 returns the normalized throughput column of Table 1: bubble-free
// methods (PipeDream, PipeMare) run at 1.0; GPipe pays the fill/drain
// bubble N/(N+P−1).
func Table1GPipe(p, n int) float64 {
	return float64(n) / float64(n+p-1)
}

// Table1BubbleFree is the normalized throughput of PipeDream and PipeMare.
func Table1BubbleFree() float64 { return 1.0 }

// GPipeRelative returns GPipe's throughput relative to PipeMare under the
// equal activation-memory and compute budget model of Appendix A.3, as a
// function of the microbatch ratio α = M_GPipe / M_PipeMare:
//
//	l_fwd = max(α/3, 1), l_bwd = max(2α/3, 1), N_GPipe = P/α
//	throughput = P / ((l_fwd + l_bwd)·(N_GPipe + P)) = 1/((l_fwd+l_bwd)(1/α+1)).
func GPipeRelative(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	lf := math.Max(alpha/3, 1)
	lb := math.Max(2*alpha/3, 1)
	return 1 / ((lf + lb) * (1/alpha + 1))
}

// GPipeRelativeRecompute is the Appendix A.3 variant with PipeMare
// recompute enabled: forward and recompute each take 1/4 of the compute,
// backward 1/2, so l_fwd = max(α/4, 1) and l_bwd = max(3α/4, 1).
func GPipeRelativeRecompute(alpha float64) float64 {
	if alpha <= 0 {
		return 0
	}
	lf := math.Max(alpha/4, 1)
	lb := math.Max(3*alpha/4, 1)
	return 1 / ((lf + lb) * (1/alpha + 1))
}

// Maximize returns the argmax and max of f over (0, hi] by golden-section
// search refined with a fine grid (f is unimodal on the region of
// interest).
func Maximize(f func(float64) float64, hi float64) (bestAlpha, bestVal float64) {
	const steps = 200000
	for i := 1; i <= steps; i++ {
		a := hi * float64(i) / steps
		if v := f(a); v > bestVal {
			bestAlpha, bestVal = a, v
		}
	}
	return bestAlpha, bestVal
}

// GPipeOptimal returns the optimal microbatch ratio and the resulting
// maximum relative throughput (the paper's 0.3 at α = √(3/2)).
func GPipeOptimal() (alpha, thr float64) {
	return Maximize(GPipeRelative, 8)
}

// GPipeOptimalRecompute returns the optimum of the recompute variant
// (the paper's 0.29; exactly 1/(7/4+√3)).
func GPipeOptimalRecompute() (alpha, thr float64) {
	return Maximize(GPipeRelativeRecompute, 8)
}

// PaperGPipeThroughput is the constant the paper uses for GPipe in all
// Table 2/3 time-to-accuracy computations.
const PaperGPipeThroughput = 0.3

// Method mirrors the three pipeline methods for throughput lookups
// without importing the trainer package.
type Method int

// Method values.
const (
	GPipe Method = iota
	PipeDream
	PipeMare
)

// EndToEnd returns the normalized throughput a method achieves in the
// paper's end-to-end comparison: GPipe pays the equal-budget 0.3 factor,
// the asynchronous methods run bubble-free at 1.0.
func EndToEnd(m Method) float64 {
	if m == GPipe {
		return PaperGPipeThroughput
	}
	return 1.0
}
