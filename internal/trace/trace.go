// Package trace is the run-time event recorder behind pipemare's
// observability surface: engines, the replica layer, the wire transport
// and the checkpoint path emit spans (slot executions, commit phases,
// collectives with byte counts, wire round-trips) and instants (retries,
// heartbeats, evictions, replays, checkpoint writes/restores) into
// per-track append-only buffers, and the buffers export as
// Chrome/Perfetto trace-event JSON (WriteChrome) or reduce to an
// occupancy Report (bubble fraction, overlap efficiency, MFU).
//
// # Cost model
//
// Tracing must never perturb training. Three properties guarantee it:
//
//   - Zero cost when disabled: every method is a no-op on a nil
//     *Recorder or nil *Track, so instrumentation sites pay one nil
//     check and nothing else. No recorder is allocated unless the user
//     asked for one via pipemare.WithTrace.
//   - Allocation-bounded when enabled: each track owns one event slice
//     that grows to a hard cap (limit events); past the cap events are
//     counted as dropped, not recorded, so a long run cannot grow
//     memory without bound. Recording an event is a monotonic clock
//     read and a struct append — no formatting, no maps, no interfaces.
//   - Race-free by ownership, not locking: the Recorder's mutex guards
//     only the track registry. Event appends are unsynchronized because
//     every track has exactly one writer at a time, with the writer
//     handoffs riding the happens-before edges the engines already have
//     (worker spawn, WaitGroup joins, channel sends, the transport
//     member's own mutex). The -race equivalence tests pin this.
//
// # Determinism
//
// The recorder only reads the clock and appends to pre-owned buffers.
// It never draws randomness, never blocks, and never feeds anything
// back into scheduling or arithmetic, so training curves are
// bit-identical with tracing on or off — the repo-wide invariant, held
// by the trace-enabled equivalence tests.
package trace

import (
	"sync"
	"time"
)

// Track tid namespaces. Compute workers take tids [0, TidCollectives);
// the per-replica collective, wire and control tracks sit at fixed tids
// so exporters and the Report can classify events by track alone.
const (
	TidWorkerBase  = 0   // compute worker w of a replica → tid w
	TidCollectives = 100 // replica collectives: reduce/scatter/gather/broadcast, sharded commit phases
	TidWire        = 200 // transport round-trips to this replica's remote member
	TidControl     = 300 // run control: epoch marks, eval, checkpoint, faults
)

// Span and instant names. Interned constants so emission never formats
// strings; exporters and the Report classify by exact match.
const (
	NameFwd       = "fwd"
	NameBwd       = "bwd"
	NameRecompute = "recompute"

	NameCommitPrepare = "commit:prepare"
	NameCommitScale   = "commit:scale"
	NameCommitStep    = "commit:step"
	NameCommitFinish  = "commit:finish"

	NameReduce    = "reduce"
	NameScatter   = "scatter"
	NameGather    = "gather"
	NameBroadcast = "broadcast"

	NameRetry       = "retry"
	NameHeartbeat   = "heartbeat"
	NameEvict       = "evict"
	NameReplay      = "replay"
	NameCkptWrite   = "checkpoint:write"
	NameCkptRestore = "checkpoint:restore"
	NameEpoch       = "epoch"
	NameEval        = "eval"
	NameJoin        = "join"
	NameDemote      = "demote"
	NameRejoin      = "rejoin"
	NameHandoff     = "handoff"
)

// Event is one recorded span ('X') or instant ('i'). Timestamps are
// nanoseconds since the recorder's start on the monotonic clock.
type Event struct {
	Name  string
	Ph    byte  // 'X' = complete span, 'i' = instant
	Ts    int64 // start (spans) or occurrence (instants), ns
	Dur   int64 // span duration, ns; 0 for instants
	Stage int   // -1 when the event is not stage-scoped
	Micro int   // global microbatch slot; -1 when not microbatch-scoped
	Bytes int64 // payload bytes moved (collectives, wire); 0 when n/a
}

// Carrier is implemented by engine hosts that carry a recorder. Engines
// discover tracing by type-asserting their Host against it; a host
// without a recorder (or with tracing off) returns nil and every
// emission downstream becomes a no-op.
type Carrier interface {
	// Tracer returns the run's recorder (nil when tracing is off) and
	// the replica index of the trainer behind this host (0 = leader).
	Tracer() (*Recorder, int)
}

// FromCarrier extracts the recorder and replica index when v carries
// one, else (nil, 0).
func FromCarrier(v any) (*Recorder, int) {
	if c, ok := v.(Carrier); ok {
		return c.Tracer()
	}
	return nil, 0
}

// DefaultLimit is the per-track event cap: at ~64 bytes an event, a
// saturated track tops out near 16 MiB.
const DefaultLimit = 1 << 18

// Recorder collects events across tracks against one monotonic time
// base. The zero value is not usable; construct with New. A nil
// *Recorder is a valid "tracing off" recorder: every method no-ops.
type Recorder struct {
	start time.Time
	limit int

	mu     sync.Mutex
	tracks []*Track
}

// New returns a recorder with the default per-track event cap.
func New() *Recorder { return NewWithLimit(DefaultLimit) }

// NewWithLimit returns a recorder capping each track at limit events.
func NewWithLimit(limit int) *Recorder {
	if limit < 1 {
		limit = 1
	}
	return &Recorder{start: time.Now(), limit: limit}
}

// Now returns nanoseconds since the recorder started (monotonic), or 0
// on a nil recorder.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.start).Nanoseconds()
}

// Track returns the track for (pid, tid), creating it with the given
// display name on first use; nil on a nil recorder. pid is a replica
// index, tid a slot in the Tid* namespaces. The returned *Track must be
// written by one goroutine at a time (see the package comment).
func (r *Recorder) Track(pid, tid int, name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tracks {
		if t.Pid == pid && t.Tid == tid {
			return t
		}
	}
	t := &Track{rec: r, Pid: pid, Tid: tid, Name: name}
	r.tracks = append(r.tracks, t)
	return t
}

// Tracks snapshots the track registry. The tracks' event slices are not
// copied: call only when no writer is active (after Run returns, or
// between epochs) — the same quiescence WriteChrome and BuildReport
// require.
func (r *Recorder) Tracks() []*Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Track, len(r.tracks))
	copy(out, r.tracks)
	return out
}

// Dropped returns the total events discarded across tracks because a
// track hit its cap. Same quiescence requirement as Tracks.
func (r *Recorder) Dropped() int {
	n := 0
	for _, t := range r.Tracks() {
		n += t.dropped
	}
	return n
}

// Track is one timeline: a (pid, tid) pair with an append-only event
// buffer owned by a single writer at a time. A nil *Track no-ops every
// method, so disabled tracing costs one nil check per emission site.
type Track struct {
	rec     *Recorder
	Pid     int    // replica index
	Tid     int    // worker index or a Tid* constant
	Name    string // thread_name metadata in the Chrome export
	events  []Event
	dropped int
}

// Now returns the owning recorder's clock, or 0 on a nil track.
func (t *Track) Now() int64 {
	if t == nil {
		return 0
	}
	return t.rec.Now()
}

// Span records a complete span that started at startNs (a value from
// Now) and ends now.
func (t *Track) Span(name string, startNs int64, stage, micro int, bytes int64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Ph: 'X', Ts: startNs, Dur: t.rec.Now() - startNs,
		Stage: stage, Micro: micro, Bytes: bytes})
}

// Instant records a point event at the current time.
func (t *Track) Instant(name string, stage, micro int, bytes int64) {
	if t == nil {
		return
	}
	t.add(Event{Name: name, Ph: 'i', Ts: t.rec.Now(),
		Stage: stage, Micro: micro, Bytes: bytes})
}

func (t *Track) add(ev Event) {
	if len(t.events) >= t.rec.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the track's recorded events (not a copy). Same
// quiescence requirement as Recorder.Tracks.
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// DroppedEvents returns how many events this track discarded at its cap.
func (t *Track) DroppedEvents() int {
	if t == nil {
		return 0
	}
	return t.dropped
}
