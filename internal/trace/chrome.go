package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the JSON Perfetto and chrome://tracing load).
// Timestamps and durations are microseconds; fractional µs keep the
// recorder's nanosecond resolution.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the format ({"traceEvents": [...]});
// the object form (vs the bare array) lets viewers ignore trailing
// metadata and tolerates truncation less silently.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChrome serializes the recorder's tracks as Chrome trace-event
// JSON: one pid per replica (process_name metadata "replica N"), one
// tid per track (thread_name metadata), complete 'X' events for spans
// and thread-scoped 'i' events for instants, with stage/micro/bytes in
// args. Events are sorted by start time within each track, so ts is
// monotonic per (pid, tid). Call only when training is quiescent (after
// Run returns). A nil recorder writes an empty but valid trace.
func WriteChrome(w io.Writer, r *Recorder) error {
	tracks := r.Tracks()
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].Pid != tracks[j].Pid {
			return tracks[i].Pid < tracks[j].Pid
		}
		return tracks[i].Tid < tracks[j].Tid
	})

	out := chromeFile{DisplayUnit: "ns", TraceEvents: []chromeEvent{}}
	seenPid := map[int]bool{}
	for _, t := range tracks {
		if !seenPid[t.Pid] {
			seenPid[t.Pid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: t.Pid,
				Args: map[string]any{"name": fmt.Sprintf("replica %d", t.Pid)},
			})
		}
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("track %d", t.Tid)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: t.Pid, Tid: t.Tid,
			Args: map[string]any{"name": name},
		})

		evs := append([]Event(nil), t.Events()...)
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
		for _, ev := range evs {
			ce := chromeEvent{
				Name: ev.Name,
				Pid:  t.Pid,
				Tid:  t.Tid,
				Ts:   float64(ev.Ts) / 1e3,
				Args: eventArgs(ev),
			}
			switch ev.Ph {
			case 'X':
				d := float64(ev.Dur) / 1e3
				ce.Ph, ce.Dur = "X", &d
			default:
				ce.Ph, ce.S = "i", "t"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
		if n := t.DroppedEvents(); n > 0 {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "dropped_events", Ph: "M", Pid: t.Pid, Tid: t.Tid,
				Args: map[string]any{"count": n},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// eventArgs builds the args payload, omitting fields that are not set
// so the JSON stays compact. json.Marshal sorts map keys, keeping the
// output deterministic.
func eventArgs(ev Event) map[string]any {
	var args map[string]any
	set := func(k string, v any) {
		if args == nil {
			args = map[string]any{}
		}
		args[k] = v
	}
	if ev.Stage >= 0 {
		set("stage", ev.Stage)
	}
	if ev.Micro >= 0 {
		set("micro", ev.Micro)
	}
	if ev.Bytes > 0 {
		set("bytes", ev.Bytes)
	}
	return args
}
