package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Report reduces a recorded trace to the occupancy numbers the paper's
// schedule arguments are about: where worker time went (compute vs
// commit vs collectives vs bubbles) and how close the run came to the
// cost model's theoretical best.
type Report struct {
	WallNs int64 // span extent across all tracks (control spans included)

	ComputeNs    int64 // Σ fwd+bwd+recompute span durations
	CommitNs     int64 // Σ commit:* span durations
	CollectiveNs int64 // Σ reduce/scatter/gather/broadcast span durations
	WireNs       int64 // Σ wire-track span durations
	ControlNs    int64 // Σ control-track span durations (eval, checkpoint writes)
	BytesMoved   int64 // Σ bytes over collective + wire spans

	WorkerTracks int // tracks that executed at least one compute span
	Replicas     int // distinct replicas among those tracks

	StageBusyNs []int64 // per-stage compute time, indexed by stage

	// BubbleFraction is the share of aggregate worker capacity
	// (WorkerTracks × WallNs) not spent computing; OverlapEfficiency is
	// its complement — the realized fraction of perfect overlap.
	BubbleFraction    float64
	OverlapEfficiency float64

	// IdealNs is the cost model's lower bound on wall-clock for the
	// measured compute volume: no run can finish faster than its total
	// work spread over every worker, nor faster than the bottleneck
	// stage's serial work on one replica (max cost share from nn.Cost).
	// MFU is IdealNs / WallNs — 1.0 means the schedule extracted
	// everything the model says the hardware allows.
	IdealNs int64
	MFU     float64

	// Faults observed as instants: transient wire retries, heartbeats
	// consumed, evictions, replays, checkpoint writes/restores.
	Retries      int
	Heartbeats   int
	Evictions    int
	Replays      int
	CkptWrites   int
	CkptRestores int

	DroppedEvents int
}

// BuildReport derives a Report from the recorder. stageCosts is the
// per-stage cost vector from the nn.Cost model (Trainer.StageCosts);
// pass nil to skip the bottleneck bound (IdealNs then assumes perfect
// balance). Same quiescence requirement as WriteChrome. A nil recorder
// yields a zero report.
func BuildReport(r *Recorder, stageCosts []float64) Report {
	var rep Report
	var minTs, maxTs int64
	first := true
	replicas := map[int]bool{}

	extend := func(ev Event) {
		if first || ev.Ts < minTs {
			minTs = ev.Ts
		}
		if end := ev.Ts + ev.Dur; first || end > maxTs {
			maxTs = end
		}
		first = false
	}
	for _, t := range r.Tracks() {
		rep.DroppedEvents += t.DroppedEvents()
		if t.Tid == TidControl {
			// Control spans (eval, checkpoint writes) run on the trainer's
			// goroutine between minibatches: they are wall-clock the report
			// must account for, but never worker capacity.
			for _, ev := range t.Events() {
				rep.countInstant(ev)
				if ev.Ph != 'i' {
					extend(ev)
					rep.ControlNs += ev.Dur
				}
			}
			continue
		}
		hasCompute := false
		for _, ev := range t.Events() {
			if ev.Ph == 'i' {
				rep.countInstant(ev)
				continue
			}
			extend(ev)
			switch {
			case ev.Name == NameFwd || ev.Name == NameBwd || ev.Name == NameRecompute:
				hasCompute = true
				rep.ComputeNs += ev.Dur
				if ev.Stage >= 0 {
					for len(rep.StageBusyNs) <= ev.Stage {
						rep.StageBusyNs = append(rep.StageBusyNs, 0)
					}
					rep.StageBusyNs[ev.Stage] += ev.Dur
				}
			case t.Tid == TidWire:
				rep.WireNs += ev.Dur
				rep.BytesMoved += ev.Bytes
			case ev.Name == NameReduce || ev.Name == NameScatter ||
				ev.Name == NameGather || ev.Name == NameBroadcast:
				rep.CollectiveNs += ev.Dur
				rep.BytesMoved += ev.Bytes
			default: // commit:* and anything commit-like on a compute track
				rep.CommitNs += ev.Dur
			}
		}
		if hasCompute {
			rep.WorkerTracks++
			replicas[t.Pid] = true
		}
	}
	if !first {
		rep.WallNs = maxTs - minTs
	}
	rep.Replicas = len(replicas)

	if rep.WallNs > 0 && rep.WorkerTracks > 0 {
		capacity := float64(rep.WorkerTracks) * float64(rep.WallNs)
		rep.OverlapEfficiency = float64(rep.ComputeNs) / capacity
		rep.BubbleFraction = 1 - rep.OverlapEfficiency

		ideal := float64(rep.ComputeNs) / float64(rep.WorkerTracks)
		if len(stageCosts) > 0 && rep.Replicas > 0 {
			sum := 0.0
			maxc := 0.0
			for _, c := range stageCosts {
				sum += c
				if c > maxc {
					maxc = c
				}
			}
			if sum > 0 {
				bottleneck := float64(rep.ComputeNs) / float64(rep.Replicas) * (maxc / sum)
				if bottleneck > ideal {
					ideal = bottleneck
				}
			}
		}
		rep.IdealNs = int64(ideal)
		rep.MFU = ideal / float64(rep.WallNs)
	}
	return rep
}

// countInstant tallies fault-class events; checkpoint writes are spans
// (they have a duration) but count here too.
func (rep *Report) countInstant(ev Event) {
	switch ev.Name {
	case NameRetry:
		rep.Retries++
	case NameHeartbeat:
		rep.Heartbeats++
	case NameEvict:
		rep.Evictions++
	case NameReplay:
		rep.Replays++
	case NameCkptWrite:
		rep.CkptWrites++
	case NameCkptRestore:
		rep.CkptRestores++
	}
}

// Format writes the human-readable report. measuredWallNs, when > 0, is
// an externally clocked wall time to reconcile the trace against (the
// bench passes its epoch timer); the accounting line shows how much of
// it the trace explains.
func (rep Report) Format(w io.Writer, measuredWallNs int64) {
	d := func(ns int64) time.Duration { return time.Duration(ns) }
	fmt.Fprintf(w, "trace report: wall %v over %d worker track(s), %d replica(s)\n",
		d(rep.WallNs), rep.WorkerTracks, rep.Replicas)
	fmt.Fprintf(w, "  compute %v  commit %v  collectives %v  wire %v  control %v  (%d bytes moved)\n",
		d(rep.ComputeNs), d(rep.CommitNs), d(rep.CollectiveNs), d(rep.WireNs), d(rep.ControlNs), rep.BytesMoved)
	if len(rep.StageBusyNs) > 0 {
		fmt.Fprintf(w, "  stage busy:")
		for st, ns := range rep.StageBusyNs {
			fmt.Fprintf(w, " [%d] %v", st, d(ns))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  bubble fraction %.3f  overlap efficiency %.3f\n",
		rep.BubbleFraction, rep.OverlapEfficiency)
	fmt.Fprintf(w, "  ideal wall %v (cost-model bound)  MFU %.3f\n", d(rep.IdealNs), rep.MFU)
	if rep.Retries+rep.Heartbeats+rep.Evictions+rep.Replays+rep.CkptWrites+rep.CkptRestores > 0 {
		fmt.Fprintf(w, "  faults: %d retries, %d heartbeats, %d evictions, %d replays, %d ckpt writes, %d ckpt restores\n",
			rep.Retries, rep.Heartbeats, rep.Evictions, rep.Replays, rep.CkptWrites, rep.CkptRestores)
	}
	if measuredWallNs > 0 && rep.WallNs > 0 {
		fmt.Fprintf(w, "  accounted: trace wall is %.1f%% of measured wall %v\n",
			100*float64(rep.WallNs)/float64(measuredWallNs), d(measuredWallNs))
	}
	if rep.DroppedEvents > 0 {
		fmt.Fprintf(w, "  WARNING: %d events dropped at track caps; totals are partial\n", rep.DroppedEvents)
	}
}

// StageOrder returns stages sorted by descending busy time — handy for
// spotting the measured bottleneck.
func (rep Report) StageOrder() []int {
	order := make([]int, len(rep.StageBusyNs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return rep.StageBusyNs[order[a]] > rep.StageBusyNs[order[b]]
	})
	return order
}
