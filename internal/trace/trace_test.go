package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderIsInert pins the zero-cost-when-disabled contract:
// every method on a nil recorder or nil track must no-op, because the
// instrumentation sites call them unconditionally.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Fatal("nil recorder Now() != 0")
	}
	tk := r.Track(0, 0, "worker 0")
	if tk != nil {
		t.Fatal("nil recorder returned a live track")
	}
	tk.Span(NameFwd, tk.Now(), 0, 0, 0)
	tk.Instant(NameEvict, -1, -1, 0)
	if tk.Events() != nil || tk.DroppedEvents() != 0 {
		t.Fatal("nil track recorded something")
	}
	if r.Tracks() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder owns tracks")
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("nil-recorder trace is not JSON: %v", err)
	}
	rep := BuildReport(r, nil)
	if rep.WallNs != 0 || rep.WorkerTracks != 0 {
		t.Fatalf("nil-recorder report not zero: %+v", rep)
	}
}

func TestTrackCapCountsDrops(t *testing.T) {
	r := NewWithLimit(2)
	tk := r.Track(0, 0, "worker 0")
	for i := 0; i < 5; i++ {
		tk.Instant(NameEpoch, -1, -1, 0)
	}
	if got := len(tk.Events()); got != 2 {
		t.Fatalf("cap 2 track holds %d events", got)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestTrackRegistryDedupes(t *testing.T) {
	r := New()
	a := r.Track(1, TidCollectives, "collectives")
	b := r.Track(1, TidCollectives, "renamed")
	if a != b {
		t.Fatal("same (pid, tid) produced two tracks")
	}
	if a.Name != "collectives" {
		t.Fatalf("first registration's name lost: %q", a.Name)
	}
}

// synthetic builds a two-replica recorder with a known span layout:
// replica 0 worker 0 computes 100ns fwd + 100ns bwd on stage 0,
// replica 1 worker 0 computes 200ns fwd on stage 1, plus a commit span,
// a collective with bytes, and fault instants.
func synthetic() *Recorder {
	r := New()
	w0 := r.Track(0, 0, "worker 0")
	w0.add(Event{Name: NameFwd, Ph: 'X', Ts: 0, Dur: 100, Stage: 0, Micro: 1})
	w0.add(Event{Name: NameBwd, Ph: 'X', Ts: 150, Dur: 100, Stage: 0, Micro: 1})
	w0.add(Event{Name: NameCommitStep, Ph: 'X', Ts: 260, Dur: 40, Stage: -1, Micro: -1})
	w1 := r.Track(1, 0, "worker 0")
	w1.add(Event{Name: NameFwd, Ph: 'X', Ts: 50, Dur: 200, Stage: 1, Micro: 2})
	col := r.Track(0, TidCollectives, "collectives")
	col.add(Event{Name: NameReduce, Ph: 'X', Ts: 250, Dur: 50, Stage: -1, Micro: -1, Bytes: 4096})
	ctl := r.Track(0, TidControl, "control")
	ctl.add(Event{Name: NameEvict, Ph: 'i', Ts: 280, Stage: -1, Micro: -1})
	ctl.add(Event{Name: NameCkptWrite, Ph: 'X', Ts: 290, Dur: 5, Stage: -1, Micro: -1})
	return r
}

func TestBuildReportAccounting(t *testing.T) {
	rep := BuildReport(synthetic(), []float64{3, 1})
	if rep.WallNs != 300 { // [0, 300): the control span [290, 295) sits inside
		t.Fatalf("wall = %d, want 300", rep.WallNs)
	}
	if rep.ComputeNs != 400 || rep.CommitNs != 40 || rep.CollectiveNs != 50 || rep.ControlNs != 5 {
		t.Fatalf("compute/commit/collective/control = %d/%d/%d/%d, want 400/40/50/5",
			rep.ComputeNs, rep.CommitNs, rep.CollectiveNs, rep.ControlNs)
	}
	if rep.WorkerTracks != 2 || rep.Replicas != 2 {
		t.Fatalf("tracks/replicas = %d/%d, want 2/2", rep.WorkerTracks, rep.Replicas)
	}
	if len(rep.StageBusyNs) != 2 || rep.StageBusyNs[0] != 200 || rep.StageBusyNs[1] != 200 {
		t.Fatalf("stage busy = %v, want [200 200]", rep.StageBusyNs)
	}
	if rep.BytesMoved != 4096 {
		t.Fatalf("bytes = %d, want 4096", rep.BytesMoved)
	}
	// capacity = 2 tracks × 300ns; compute 400 → overlap 2/3, bubble 1/3.
	if diff := rep.OverlapEfficiency - 2.0/3.0; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("overlap = %v, want 2/3", rep.OverlapEfficiency)
	}
	// ideal = max(400/2, 400/2 replicas × 3/4 share) = max(200, 150) = 200.
	if rep.IdealNs != 200 {
		t.Fatalf("ideal = %d, want 200", rep.IdealNs)
	}
	if diff := rep.MFU - 200.0/300.0; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("MFU = %v, want 2/3", rep.MFU)
	}
	if rep.Evictions != 1 || rep.CkptWrites != 1 {
		t.Fatalf("evictions/ckpt = %d/%d, want 1/1", rep.Evictions, rep.CkptWrites)
	}
	if order := rep.StageOrder(); len(order) != 2 {
		t.Fatalf("stage order = %v", order)
	}
	var buf bytes.Buffer
	rep.Format(&buf, 310)
	out := buf.String()
	for _, want := range []string{"bubble fraction", "MFU", "accounted", "evictions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, synthetic()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	var metas, spans, instants int
	lastTs := map[[2]int]float64{}
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			continue
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected ph %q", ev.Ph)
		}
		key := [2]int{ev.Pid, ev.Tid}
		if ev.Ts < lastTs[key] {
			t.Fatalf("ts not monotonic on track %v", key)
		}
		lastTs[key] = ev.Ts
	}
	if metas == 0 || spans != 6 || instants != 1 {
		t.Fatalf("metas/spans/instants = %d/%d/%d, want >0/6/1", metas, spans, instants)
	}
	// The fwd span must carry its stage and micro in args.
	found := false
	for _, ev := range parsed.TraceEvents {
		if ev.Name == NameFwd && ev.Pid == 1 {
			found = true
			if ev.Args["stage"] != float64(1) || ev.Args["micro"] != float64(2) {
				t.Fatalf("fwd args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("replica 1 fwd span missing")
	}
}
