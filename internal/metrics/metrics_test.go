package metrics

import (
	"math"
	"testing"
)

func TestRunRecordAndBest(t *testing.T) {
	var r Run
	r.Record(1.0, 50, 10)
	r.Record(0.5, 80, 11)
	r.Record(0.4, 75, 12)
	if r.Epochs() != 3 {
		t.Fatalf("Epochs = %d", r.Epochs())
	}
	if r.Best() != 80 {
		t.Fatalf("Best = %g, want 80", r.Best())
	}
	if r.Diverged {
		t.Fatal("run should not be marked diverged")
	}
}

func TestRunDivergenceDetection(t *testing.T) {
	var r Run
	r.Record(math.NaN(), 0, 1e9)
	if !r.Diverged {
		t.Fatal("NaN loss must mark the run diverged")
	}
	var r2 Run
	r2.Record(math.Inf(1), 0, 1e12)
	if !r2.Diverged {
		t.Fatal("Inf loss must mark the run diverged")
	}
}

func TestEpochsToTarget(t *testing.T) {
	r := Run{Metric: []float64{10, 50, 93.9, 94.0, 95}}
	if got := r.EpochsToTarget(94); got != 4 {
		t.Fatalf("EpochsToTarget = %d, want 4", got)
	}
	if got := r.EpochsToTarget(99); got != -1 {
		t.Fatalf("unreached target = %d, want -1", got)
	}
}

func TestTimeToTargetPaperCIFAR(t *testing.T) {
	// Paper Table 2, CIFAR10: GPipe 83 epochs at throughput 0.3 vs
	// PipeMare 82 epochs at 1.0 (no warmup) → 3.3× speedup.
	gp := TimeToTarget(83, 0, 0.3, 0.3)
	pm := TimeToTarget(82, 0, 0.3, 1.0)
	s := Speedup(gp, pm)
	if math.Abs(s-83.0/0.3/82.0) > 1e-9 {
		t.Fatalf("speedup = %g", s)
	}
	if s < 3.3 || s > 3.45 {
		t.Fatalf("CIFAR speedup = %.2f, paper reports 3.3×", s)
	}
}

func TestTimeToTargetPaperIWSLT(t *testing.T) {
	// Paper Table 2, IWSLT14: GPipe 30 epochs at 0.3; PipeMare 35 epochs
	// with 10 synchronous warmup epochs → 1.7× speedup, 0.6 amortized
	// throughput.
	gp := TimeToTarget(30, 0, 0.3, 0.3)
	pm := TimeToTarget(35, 10, 0.3, 1.0)
	s := Speedup(gp, pm)
	if s < 1.65 || s > 1.75 {
		t.Fatalf("IWSLT speedup = %.2f, paper reports 1.7×", s)
	}
	th := AmortizedThroughput(35, 10, 0.3, 1.0)
	if th < 0.55 || th > 0.65 {
		t.Fatalf("amortized throughput = %.2f, paper reports 0.6", th)
	}
}

func TestTimeToTargetPaperWMT(t *testing.T) {
	// WMT17: GPipe 50 epochs at 0.3; PipeMare 54 epochs with 4 warmup →
	// 2.6× speedup, ≈0.9 amortized throughput.
	gp := TimeToTarget(50, 0, 0.3, 0.3)
	pm := TimeToTarget(54, 4, 0.3, 1.0)
	s := Speedup(gp, pm)
	if s < 2.55 || s > 2.7 {
		t.Fatalf("WMT speedup = %.2f, paper reports 2.6×", s)
	}
	th := AmortizedThroughput(54, 4, 0.3, 1.0)
	if th < 0.82 || th > 0.92 {
		t.Fatalf("amortized throughput = %.2f, paper reports ≈0.9", th)
	}
}

func TestTimeToTargetUnreached(t *testing.T) {
	if tt := TimeToTarget(-1, 0, 0.3, 1); !math.IsInf(tt, 1) {
		t.Fatalf("unreached target time = %g, want +Inf", tt)
	}
	if s := Speedup(100, math.Inf(1)); s != 0 {
		t.Fatalf("speedup against Inf = %g, want 0", s)
	}
}

func TestWarmupClamp(t *testing.T) {
	// Target reached during warmup: all epochs run at warmup throughput.
	tt := TimeToTarget(5, 10, 0.5, 1.0)
	if math.Abs(tt-10) > 1e-12 {
		t.Fatalf("time = %g, want 10 (5 epochs at 0.5)", tt)
	}
}
